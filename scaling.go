package cohesion

import (
	"fmt"
	"strings"
)

// ScalingPoint is one measurement of the scaling study: a kernel run at a
// given machine size under one memory model.
type ScalingPoint struct {
	Kernel   string
	Config   string
	Clusters int
	Cores    int
	Cycles   uint64
	Messages uint64
	// MessagesPerCore normalizes network load to machine size — the
	// paper's scalability argument is that hardware coherence's per-core
	// message cost grows with sharing degree while software coherence's
	// does not.
	MessagesPerCore float64
	ProbesSent      uint64
}

// ScalingStudy runs one kernel across machine sizes under SWcc, optimistic
// HWcc, and Cohesion, quantifying the paper's central motivation (§1–2):
// hardware coherence's network and directory costs grow with core count,
// and a hybrid model recovers software coherence's scalability for the
// data that permits it. The kernel's data set scales with the machine so
// per-core work stays roughly constant (weak scaling).
func ScalingStudy(kernel string, clusterCounts []int, seed int64, verify bool) ([]ScalingPoint, error) {
	if len(clusterCounts) == 0 {
		clusterCounts = []int{2, 4, 8, 16}
	}
	var out []ScalingPoint
	for _, clusters := range clusterCounts {
		base := ExpParams{Clusters: clusters}.expMachine()
		for _, pt := range []struct {
			name string
			cfg  MachineConfig
		}{
			{"SWcc", base.WithMode(SWcc)},
			{"HWcc", base.WithMode(HWcc).WithDirectory(DirInfinite, 0, 0)},
			{"Cohesion", base.WithMode(Cohesion)},
		} {
			res, err := Run(RunConfig{
				Machine: pt.cfg,
				Kernel:  kernel,
				Scale:   clusters, // weak scaling: data grows with machine
				Seed:    seed,
				Workers: 2 * clusters,
				Verify:  verify,
			})
			if err != nil {
				return nil, fmt.Errorf("scaling %s/%s@%d: %w", kernel, pt.name, clusters, err)
			}
			cores := pt.cfg.Cores()
			out = append(out, ScalingPoint{
				Kernel:          kernel,
				Config:          pt.name,
				Clusters:        clusters,
				Cores:           cores,
				Cycles:          res.Cycles(),
				Messages:        res.TotalMessages(),
				MessagesPerCore: float64(res.TotalMessages()) / float64(cores),
				ProbesSent:      res.Stats.ProbesSent,
			})
		}
	}
	return out, nil
}

// ScalingCSV renders scaling-study points.
func ScalingCSV(rows []ScalingPoint) string {
	var b strings.Builder
	b.WriteString("kernel,config,clusters,cores,cycles,messages,messages_per_core,probes\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%s,%s,%d,%d,%d,%d,%.2f,%d\n",
			r.Kernel, r.Config, r.Clusters, r.Cores, r.Cycles, r.Messages, r.MessagesPerCore, r.ProbesSent)
	}
	return b.String()
}
