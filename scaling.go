package cohesion

import (
	"fmt"
	"strings"

	"cohesion/internal/pool"
)

// ScalingPoint is one measurement of the scaling study: a kernel run at a
// given machine size under one memory model.
type ScalingPoint struct {
	Kernel   string
	Config   string
	Clusters int
	Cores    int
	Cycles   uint64
	Messages uint64
	// MessagesPerCore normalizes network load to machine size — the
	// paper's scalability argument is that hardware coherence's per-core
	// message cost grows with sharing degree while software coherence's
	// does not.
	MessagesPerCore float64
	ProbesSent      uint64
}

// ScalingStudy runs one kernel across machine sizes under SWcc, optimistic
// HWcc, and Cohesion, quantifying the paper's central motivation (§1–2):
// hardware coherence's network and directory costs grow with core count,
// and a hybrid model recovers software coherence's scalability for the
// data that permits it. The kernel's data set scales with the machine so
// per-core work stays roughly constant (weak scaling).
//
// The points run concurrently on parallel worker goroutines (0 = one per
// CPU, 1 = serial); results are slotted by point index, so the returned
// rows are identical at any worker count.
func ScalingStudy(kernel string, clusterCounts []int, seed int64, verify bool, parallel int) ([]ScalingPoint, error) {
	if len(clusterCounts) == 0 {
		clusterCounts = []int{2, 4, 8, 16}
	}
	type job struct {
		name     string
		clusters int
		cfg      MachineConfig
	}
	var jobs []job
	for _, clusters := range clusterCounts {
		base := ExpParams{Clusters: clusters}.expMachine()
		for _, pt := range []struct {
			name string
			cfg  MachineConfig
		}{
			{"SWcc", base.WithMode(SWcc)},
			{"HWcc", base.WithMode(HWcc).WithDirectory(DirInfinite, 0, 0)},
			{"Cohesion", base.WithMode(Cohesion)},
		} {
			jobs = append(jobs, job{name: pt.name, clusters: clusters, cfg: pt.cfg})
		}
	}
	return pool.MapErr(len(jobs), parallel, func(i int) (ScalingPoint, error) {
		j := jobs[i]
		res, err := Run(RunConfig{
			Machine: j.cfg,
			Kernel:  kernel,
			Scale:   j.clusters, // weak scaling: data grows with machine
			Seed:    seed,
			Workers: 2 * j.clusters,
			Verify:  verify,
		})
		if err != nil {
			return ScalingPoint{}, fmt.Errorf("scaling %s/%s@%d: %w", kernel, j.name, j.clusters, err)
		}
		cores := j.cfg.Cores()
		return ScalingPoint{
			Kernel:          kernel,
			Config:          j.name,
			Clusters:        j.clusters,
			Cores:           cores,
			Cycles:          res.Cycles(),
			Messages:        res.TotalMessages(),
			MessagesPerCore: float64(res.TotalMessages()) / float64(cores),
			ProbesSent:      res.Stats.ProbesSent,
		}, nil
	})
}

// ScalingCSV renders scaling-study points.
func ScalingCSV(rows []ScalingPoint) string {
	var b strings.Builder
	b.WriteString("kernel,config,clusters,cores,cycles,messages,messages_per_core,probes\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%s,%s,%d,%d,%d,%d,%.2f,%d\n",
			r.Kernel, r.Config, r.Clusters, r.Cores, r.Cycles, r.Messages, r.MessagesPerCore, r.ProbesSent)
	}
	return b.String()
}
