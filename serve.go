package cohesion

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strings"
	"time"

	"cohesion/internal/serve"
	"cohesion/internal/snapshot"
)

// JobSpec is the wire form of one service job (see internal/serve).
type JobSpec = serve.JobSpec

// JobView is a job's status snapshot.
type JobView = serve.JobView

// JobOutcome is a finished job's client-visible result.
type JobOutcome = serve.Outcome

// Job lifecycle states.
const (
	JobQueued   = serve.StateQueued
	JobRunning  = serve.StateRunning
	JobDone     = serve.StateDone
	JobCanceled = serve.StateCanceled
	JobFailed   = serve.StateFailed
)

// Admission errors surfaced by JobServer.Submit.
var (
	ErrServerSaturated = serve.ErrSaturated
	ErrServerDraining  = serve.ErrDraining
)

// ServeOptions configures a job service.
type ServeOptions struct {
	// Addr is the listen address for Serve ("127.0.0.1:0" picks a port).
	Addr string

	// StateDir holds job records and run checkpoints; a server restarted
	// on the same directory resumes its unfinished jobs bit-identically.
	StateDir string

	// Workers bounds concurrent simulations (0 = GOMAXPROCS); QueueDepth
	// bounds admitted-but-unstarted jobs beyond them (0 = 16). A full
	// queue sheds load with 429 + Retry-After.
	Workers    int
	QueueDepth int

	// CheckpointEvery is the crash-safe snapshot interval in executed
	// events for every job (0 = 25000).
	CheckpointEvery uint64

	// MaxJobLimits are server-wide ceilings clamped onto every job's
	// requested budgets (zero fields impose nothing).
	MaxJobLimits RunLimits

	// RetryAfter is the advisory backoff returned with 429s (0 = 1s).
	RetryAfter time.Duration

	// DrainTimeout bounds the graceful drain on shutdown (0 = 30s).
	DrainTimeout time.Duration

	// Logf receives operational log lines (nil = silent).
	Logf func(format string, args ...any)
}

// JobServer is the production front door over the simulator: an
// HTTP/JSON job service with admission control, per-job budgets,
// crash-safe persistence, and Prometheus metrics. Construct with
// NewJobServer; the full listen/drain lifecycle is Serve.
type JobServer struct {
	srv *serve.Server
	opt ServeOptions
}

// NewJobServer builds a job server, recovering any unfinished jobs
// persisted in opt.StateDir by a previous process.
func NewJobServer(opt ServeOptions) (*JobServer, error) {
	if opt.DrainTimeout <= 0 {
		opt.DrainTimeout = 30 * time.Second
	}
	s, err := serve.New(jobEngine{}, serve.Options{
		StateDir:        opt.StateDir,
		Workers:         opt.Workers,
		QueueDepth:      opt.QueueDepth,
		CheckpointEvery: opt.CheckpointEvery,
		MaxJobLimits:    opt.MaxJobLimits,
		RetryAfter:      opt.RetryAfter,
		Logf:            opt.Logf,
	})
	if err != nil {
		return nil, err
	}
	return &JobServer{srv: s, opt: opt}, nil
}

// Handler returns the HTTP API (see internal/serve for the routes).
func (js *JobServer) Handler() http.Handler { return js.srv.Handler() }

// Submit validates and admits one job programmatically, returning its ID.
func (js *JobServer) Submit(spec JobSpec) (string, error) { return js.srv.Submit(spec) }

// Job returns one job's status snapshot.
func (js *JobServer) Job(id string) (JobView, bool) { return js.srv.Job(id) }

// Jobs lists every job in submission order.
func (js *JobServer) Jobs() []JobView { return js.srv.Jobs() }

// Cancel cancels a job (queued: immediately; running: cooperatively).
func (js *JobServer) Cancel(id string) (JobView, bool) { return js.srv.Cancel(id) }

// Drain gracefully stops the server: intake closes, running jobs
// checkpoint and stop, queued jobs stay persisted for the next start.
func (js *JobServer) Drain(ctx context.Context) error { return js.srv.Drain(ctx) }

// Serve runs the full service lifecycle: listen on opt.Addr, serve the
// job API, and on ctx cancellation (SIGTERM in cohesion-serve) drain
// gracefully — running jobs write a final checkpoint and everything
// unfinished resumes on the next start. It returns once the drain and
// listener shutdown complete.
func Serve(ctx context.Context, opt ServeOptions) error {
	js, err := NewJobServer(opt)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", opt.Addr)
	if err != nil {
		return err
	}
	logf := opt.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	logf("listening on %s", ln.Addr())

	hsrv := &http.Server{Handler: js.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hsrv.Serve(ln) }()

	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}
	logf("draining (timeout %v)", opt.DrainTimeout)
	drainCtx, cancel := context.WithTimeout(context.Background(), opt.DrainTimeout)
	defer cancel()
	drainErr := js.Drain(drainCtx)
	shutCtx, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	_ = hsrv.Shutdown(shutCtx)
	if drainErr != nil {
		return drainErr
	}
	logf("drained cleanly")
	return nil
}

// jobEngine implements serve.Engine over the checkpointing facade: every
// job runs with crash-safe snapshots, and a recovered job resumes from
// its last checkpoint through the verified-replay path.
type jobEngine struct{}

func (jobEngine) Execute(ctx context.Context, spec JobSpec, ckptPath string, ckptEvery uint64, lim RunLimits, resume bool) (*JobOutcome, bool, error) {
	if resume {
		res, info, err := ResumeRun(ctx, ckptPath, ResumeOptions{Every: ckptEvery, Limits: lim})
		switch {
		case err == nil:
			return outcomeOf(res, nil), true, nil
		case errors.Is(err, ErrCanceled) || errors.Is(err, ErrBudgetExhausted):
			return outcomeOf(res, err), true, err
		case errors.Is(err, snapshot.ErrDiverged):
			// A divergent resume must fail loudly, never silently re-run:
			// it means the snapshot and the replay disagree about history.
			return nil, true, err
		case info == nil:
			// No usable snapshot (killed before the first checkpoint, or
			// both files torn): deterministic replay from scratch is
			// bit-identical anyway.
		default:
			// Snapshot loaded but the resume was rejected (e.g. the job's
			// own event budget ends at or before the snapshot point). A
			// fresh deterministic run reproduces the same end state.
		}
	}
	rc, err := specRunConfig(spec)
	if err != nil {
		return nil, false, err
	}
	rc.Limits = lim
	res, err := RunWithCheckpoints(ctx, rc, CheckpointConfig{Path: ckptPath, Every: ckptEvery})
	if err != nil {
		return outcomeOf(res, err), false, err
	}
	return outcomeOf(res, nil), false, nil
}

// specRunConfig maps a validated job spec onto a RunConfig.
func specRunConfig(spec JobSpec) (RunConfig, error) {
	spec = spec.Normalized()
	mode, ok := serve.ParseMode(spec.Mode)
	if !ok {
		return RunConfig{}, fmt.Errorf("cohesion: unknown mode %q", spec.Mode)
	}
	return RunConfig{
		Machine: ScaledConfig(spec.Clusters).WithMode(mode),
		Kernel:  spec.Kernel,
		Scale:   spec.Scale,
		Seed:    spec.Seed,
		Workers: spec.Workers,
		Verify:  spec.Verify,
	}, nil
}

// outcomeOf packages a (possibly partial) Result for the wire.
func outcomeOf(res *Result, stopErr error) *JobOutcome {
	if res == nil {
		return nil
	}
	out := &JobOutcome{
		MemFingerprint: fmt.Sprintf("%#016x", res.MemFingerprint),
		StatsDigest:    fmt.Sprintf("%#016x", statsDigestOf(&res.Stats)),
		Cycles:         res.Stats.Cycles,
		Events:         res.Stats.Events,
		Instructions:   res.Stats.Instructions,
		MessagesTotal:  res.TotalMessages(),
	}
	if stopErr != nil {
		out.Partial = true
		out.StopReason = firstLine(stopErr.Error())
	}
	return out
}

// firstLine truncates an error to its first line (the diagnostic body
// can be pages long; the wire wants the headline).
func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		s = s[:i]
	}
	const max = 240
	if len(s) > max {
		s = s[:max] + "…"
	}
	return s
}
