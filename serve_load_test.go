package cohesion

import (
	"context"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"testing"
	"time"
)

// TestServeLoadSaturationAndCorrectness hammers a deliberately tiny
// server (1 worker, queue depth 1) with concurrent clients:
//
//   - while the worker is pinned by a long job, a burst of submissions
//     must be answered deterministically — exactly one fills the queue
//     slot, every other client gets an immediate 429 (never a hang);
//   - every job that was accepted completes bit-correct against the
//     golden fingerprint matrix;
//   - after the drain, no goroutine survives the server.
func TestServeLoadSaturationAndCorrectness(t *testing.T) {
	golden := loadGoldenFingerprints(t)
	base := runtime.NumGoroutine()

	js, err := NewJobServer(ServeOptions{StateDir: t.TempDir(), Workers: 1, QueueDepth: 1})
	if err != nil {
		t.Fatalf("NewJobServer: %v", err)
	}
	ts := httptest.NewServer(js.Handler())
	defer ts.Close()
	c := &serveTestClient{t: t, base: ts.URL}

	// Pin the single worker with a multi-second job.
	longID, resp := c.submit(JobSpec{Kernel: "dmm", Mode: "cohesion", Clusters: 2, Scale: 12, Seed: 42})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("long submit: status %d", resp.StatusCode)
	}
	for st, _ := c.jobState(longID); st != "running"; st, _ = c.jobState(longID) {
		time.Sleep(time.Millisecond)
	}

	// Concurrent burst: queue depth 1 means exactly one acceptance.
	const clients = 8
	quick := JobSpec{Kernel: "heat", Mode: "swcc", Clusters: 2, Scale: 1, Seed: 42, Verify: true}
	var (
		mu       sync.Mutex
		accepted []string
		rejected int
		wg       sync.WaitGroup
	)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			id, resp := c.submit(quick)
			mu.Lock()
			defer mu.Unlock()
			switch resp.StatusCode {
			case http.StatusAccepted:
				accepted = append(accepted, id)
			case http.StatusTooManyRequests:
				if resp.Header.Get("Retry-After") == "" {
					t.Error("429 without a Retry-After header")
				}
				rejected++
			default:
				t.Errorf("burst submit: unexpected status %d", resp.StatusCode)
			}
		}()
	}
	wg.Wait()
	if len(accepted) != 1 || rejected != clients-1 {
		t.Fatalf("burst: %d accepted, %d rejected; want exactly 1 and %d",
			len(accepted), rejected, clients-1)
	}

	// Free the worker; the long job ends canceled (a client is entitled
	// to bail out of its own job under load).
	if code := c.cancel(longID); code != http.StatusAccepted {
		t.Fatalf("cancel long job = %d", code)
	}
	if st := c.waitTerminal(longID, 60*time.Second); st != "canceled" {
		t.Fatalf("long job state = %s, want canceled", st)
	}

	// The accepted burst job now runs to completion, bit-correct.
	for _, id := range accepted {
		if st := c.waitTerminal(id, 120*time.Second); st != "done" {
			t.Fatalf("accepted job %s state = %s, want done", id, st)
		}
		rb, _ := c.result(id)
		if rb.Outcome == nil || rb.Outcome.MemFingerprint != golden["heat/SWcc"] {
			t.Fatalf("accepted job %s fingerprint = %+v, golden %s",
				id, rb.Outcome, golden["heat/SWcc"])
		}
	}

	// With the server idle again, a second wave is all accepted (workers
	// drain the queue between submissions) or shed with 429 — but every
	// acceptance completes correctly. Sequential submits with one worker
	// and depth 1 can still race the drain of the previous job, so accept
	// either answer and verify what was admitted.
	var wave []string
	for i := 0; i < 6; i++ {
		id, resp := c.submit(quick)
		switch resp.StatusCode {
		case http.StatusAccepted:
			wave = append(wave, id)
		case http.StatusTooManyRequests:
		default:
			t.Fatalf("wave submit: status %d", resp.StatusCode)
		}
	}
	if len(wave) == 0 {
		t.Fatal("an idle server accepted nothing")
	}
	for _, id := range wave {
		if st := c.waitTerminal(id, 120*time.Second); st != "done" {
			t.Fatalf("wave job %s state = %s", id, st)
		}
		rb, _ := c.result(id)
		if rb.Outcome == nil || rb.Outcome.MemFingerprint != golden["heat/SWcc"] {
			t.Fatalf("wave job %s fingerprint mismatch: %+v", id, rb.Outcome)
		}
	}

	// Tear everything down in order — drain the pool, close the listener,
	// drop the client's keep-alive conns — then require the goroutine
	// count to settle back to the pre-server baseline.
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := js.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	ts.Close()
	http.DefaultClient.CloseIdleConnections()
	deadline := time.Now().Add(10 * time.Second)
	for runtime.NumGoroutine() > base && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > base {
		t.Fatalf("goroutines did not settle after drain: %d > baseline %d", n, base)
	}
}
