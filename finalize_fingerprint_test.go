package cohesion

import (
	"context"
	"testing"
)

// TestCohesionFinalizeFingerprintLockIn pins the finalize fingerprint's
// optimized implementation to its byte-level definition on a real
// Cohesion run — the case where the fast paths all engage: the preset
// region table is digested through cached per-block affine transforms
// and only run-dirtied blocks are rescanned. The reference below is a
// deliberately naive reimplementation of the documented digest (FNV-1a
// over lines in address order, line number then words, little-endian,
// each widened to eight bytes) driven through the Store's public image
// accessors, so any divergence between the optimized walk and the
// architectural memory image fails here at full protocol scale, not
// just on the synthetic stores the dram unit tests build.
func TestCohesionFinalizeFingerprintLockIn(t *testing.T) {
	for _, mode := range []Mode{SWcc, Cohesion} {
		t.Run(mode.String(), func(t *testing.T) {
			p, err := Prepare(RunConfig{
				Machine: ScaledConfig(4).WithMode(mode),
				Kernel:  "cg",
				Scale:   2,
				Seed:    42,
			})
			if err != nil {
				t.Fatal(err)
			}
			if err := p.Simulate(context.Background()); err != nil {
				t.Fatal(err)
			}
			res, err := p.Finalize()
			if err != nil {
				t.Fatal(err)
			}

			store := p.p.m.Store
			const (
				offset = 14695981039346656037
				prime  = 1099511628211
			)
			h := uint64(offset)
			mix64 := func(v uint64) {
				for i := 0; i < 8; i++ {
					h ^= v & 0xff
					h *= prime
					v >>= 8
				}
			}
			for _, line := range store.Lines() {
				words := store.ReadLine(line)
				mix64(uint64(line))
				for _, w := range words {
					mix64(uint64(w))
				}
			}
			if res.MemFingerprint != h {
				t.Errorf("%v: finalize fingerprint %#x, byte-definition reference %#x",
					mode, res.MemFingerprint, h)
			}
			// Recomputing on the drained store must be idempotent: the
			// summary bookkeeping the first walk consulted may not have
			// mutated the observable digest.
			if again := store.Fingerprint(); again != res.MemFingerprint {
				t.Errorf("%v: fingerprint not idempotent: %#x then %#x",
					mode, res.MemFingerprint, again)
			}
		})
	}
}
