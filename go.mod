module cohesion

go 1.23
