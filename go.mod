module cohesion

go 1.22
