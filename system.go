package cohesion

import (
	"cohesion/internal/machine"
	"cohesion/internal/rt"
	"cohesion/internal/stats"
)

// Ctx is the per-worker handle custom workloads program against: loads,
// stores, atomics, software flush/invalidate, barriers, the task queue,
// and the Table 2 Cohesion API (CohSWccRegion/CohHWccRegion).
type Ctx = rt.Ctx

// System couples a simulated machine with its software runtime, for
// writing custom workloads directly against the memory model (the
// benchmark kernels use exactly this interface). Allocate data with the
// runtime's Malloc (always hardware-coherent), CohMalloc (Cohesion-managed,
// initially SWcc), or GlobalAlloc (immutable, coarse-grain SWcc), spawn
// worker programs, then Simulate.
type System struct {
	m  *machine.Machine
	rt *rt.Runtime
}

// NewSystem builds a machine and its runtime for the given worker count.
func NewSystem(cfg MachineConfig, workers int) (*System, error) {
	m, err := machine.New(cfg)
	if err != nil {
		return nil, err
	}
	r, err := rt.New(m, workers)
	if err != nil {
		return nil, err
	}
	return &System{m: m, rt: r}, nil
}

// Runtime exposes allocation, host-side memory access, and domain queries.
func (s *System) Runtime() *rt.Runtime { return s.rt }

// Spawn launches a worker program on a global core index. codeBytes is
// the program's instruction footprint (drives L1I behaviour).
func (s *System) Spawn(core, codeBytes int, body func(*Ctx)) {
	s.rt.Spawn(core, codeBytes, body)
}

// Simulate runs to completion, checks protocol invariants, and drains
// dirty cache state to memory for host-side inspection.
func (s *System) Simulate() error {
	if err := s.m.Simulate(0); err != nil {
		return err
	}
	if err := s.m.CheckInvariants(); err != nil {
		return err
	}
	s.m.DrainToMemory()
	return nil
}

// Stats returns the run's measurements.
func (s *System) Stats() *stats.Run { return s.m.Run }
