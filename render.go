package cohesion

import (
	"fmt"
	"strings"

	"cohesion/internal/msg"
)

// CSV renderers for the figure results, for piping experiment output into
// plotting tools. Each returns a header line followed by one line per row.

func csvJoin(cells []string) string { return strings.Join(cells, ",") }

// csvFailure renders a row's Failed marker for the trailing "failed" CSV
// column, quoting it so embedded commas in the reason stay one field.
func csvFailure(failed string) string {
	if failed == "" {
		return ""
	}
	return `"` + strings.ReplaceAll(failed, `"`, `""`) + `"`
}

// BreakdownCSV renders Figure 2/8 rows.
func BreakdownCSV(rows []MessageBreakdown) string {
	var b strings.Builder
	head := []string{"kernel", "config", "total", "relative"}
	for _, k := range msg.Kinds() {
		head = append(head, strings.ReplaceAll(strings.ToLower(k.String()), " ", "_"))
	}
	head = append(head, "failed")
	b.WriteString(csvJoin(head) + "\n")
	for _, r := range rows {
		cells := []string{r.Kernel, r.Config, fmt.Sprint(r.Total), fmt.Sprintf("%.4f", r.Relative)}
		for _, k := range msg.Kinds() {
			cells = append(cells, fmt.Sprint(r.Counts[k]))
		}
		cells = append(cells, csvFailure(r.Failed))
		b.WriteString(csvJoin(cells) + "\n")
	}
	return b.String()
}

// FlushEfficiencyCSV renders Figure 3 rows.
func FlushEfficiencyCSV(rows []FlushEfficiency) string {
	var b strings.Builder
	b.WriteString("kernel,l2_kb,useful_inv,useful_wb,failed\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%s,%d,%.4f,%.4f,%s\n", r.Kernel, r.L2KB, r.UsefulInv, r.UsefulWB, csvFailure(r.Failed))
	}
	return b.String()
}

// DirSweepCSV renders Figure 9a/9b points (entries 0 = infinite baseline).
func DirSweepCSV(rows []DirSweepPoint) string {
	var b strings.Builder
	b.WriteString("kernel,entries_per_bank,cycles,slowdown,failed\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%s,%d,%d,%.4f,%s\n", r.Kernel, r.EntriesPerBank, r.Cycles, r.Slowdown, csvFailure(r.Failed))
	}
	return b.String()
}

// OccupancyCSV renders Figure 9c rows.
func OccupancyCSV(rows []OccupancyRow) string {
	var b strings.Builder
	b.WriteString("kernel,config,mean_total,mean_code,mean_heap_global,mean_stack,max_total,failed\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%s,%s,%.2f,%.2f,%.2f,%.2f,%d,%s\n",
			r.Kernel, r.Config, r.MeanTotal, r.MeanCode, r.MeanHeap, r.MeanStack, r.MaxTotal, csvFailure(r.Failed))
	}
	return b.String()
}

// LatencyCSV renders message-latency table rows.
func LatencyCSV(rows []MsgLatencyRow) string {
	var b strings.Builder
	b.WriteString("kernel,config,class,count,mean,p50,p90,p99,max,failed\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%s,%s,%s,%d,%.2f,%d,%d,%d,%d,%s\n",
			r.Kernel, r.Config, r.Class, r.Count, r.Mean, r.P50, r.P90, r.P99, r.Max, csvFailure(r.Failed))
	}
	return b.String()
}

// RuntimeCSV renders Figure 10 rows.
func RuntimeCSV(rows []RuntimeRow) string {
	var b strings.Builder
	b.WriteString("kernel,config,cycles,normalized,failed\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%s,%s,%d,%.4f,%s\n", r.Kernel, r.Config, r.Cycles, r.Normalized, csvFailure(r.Failed))
	}
	return b.String()
}
