// Package cohesion is a from-scratch reproduction of "Cohesion: A Hybrid
// Memory Model for Accelerators" (Kelm et al., ISCA 2010): a deterministic
// discrete-event simulator of the paper's 1024-core cached accelerator, a
// directory-based MSI hardware coherence protocol (HWcc), the Task Centric
// software coherence protocol (SWcc), and the Cohesion hybrid layer that
// migrates cache lines between the two coherence domains at run time —
// plus the eight benchmark kernels and the harness that regenerates every
// table and figure of the paper's evaluation.
//
// The package is a facade over the internal packages:
//
//	Run(RunConfig{...})          // simulate one kernel on one machine
//	Fig2(...), Fig8(...), ...    // regenerate the paper's figures
//	Table3Config(), ScaledConfig // machine configurations
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for measured
// results next to the paper's.
package cohesion

import (
	"context"
	"errors"
	"fmt"

	"cohesion/internal/addr"
	"cohesion/internal/config"
	"cohesion/internal/kernels"
	"cohesion/internal/machine"
	"cohesion/internal/msg"
	"cohesion/internal/rt"
	"cohesion/internal/runctl"
	"cohesion/internal/simerr"
	"cohesion/internal/stats"
	"cohesion/internal/trace"
)

// Mode selects the memory model (the paper's design points).
type Mode = config.Mode

// Memory model constants.
const (
	SWcc     = config.SWcc
	HWcc     = config.HWcc
	Cohesion = config.Cohesion
)

// DirKind selects the directory organization.
type DirKind = config.DirKind

// Directory organization constants.
const (
	DirNone      = config.DirNone
	DirInfinite  = config.DirInfinite
	DirSparse    = config.DirSparse
	DirLimited4B = config.DirLimited4B
)

// MachineConfig describes the simulated processor (see Table3Config).
type MachineConfig = config.Machine

// Table3Config returns the paper's full 1024-core Table 3 machine.
func Table3Config() MachineConfig { return config.Table3() }

// ScaledConfig returns a machine with Table 3 per-cluster geometry but
// fewer clusters, for fast experimentation.
func ScaledConfig(clusters int) MachineConfig { return config.Scaled(clusters) }

// FaultPlan configures the deterministic fault-injection layer (message
// drops, duplicate deliveries, delay spikes, directory NACKs). Set it on
// MachineConfig.Faults.
type FaultPlan = config.FaultPlan

// DefaultFaultPlan returns a recovery-enabled plan with moderate fault
// rates, seeded deterministically.
func DefaultFaultPlan(seed int64) FaultPlan { return config.DefaultFaultPlan(seed) }

// Structured-error sentinels for abnormal simulation ends; match with
// errors.Is. The error text carries the full diagnostic (cycle, stuck
// lines, directory state).
var (
	ErrDeadlock          = simerr.ErrDeadlock
	ErrRetryExhausted    = simerr.ErrRetryExhausted
	ErrProtocolInvariant = simerr.ErrProtocolInvariant
	ErrConfig            = simerr.ErrConfig

	// ErrCanceled reports a run ended by cooperative cancellation (its
	// context was canceled, e.g. SIGINT on the CLIs). RunCtx returns a
	// partial Result alongside it.
	ErrCanceled = simerr.ErrCanceled

	// ErrBudgetExhausted reports a run ended by a RunLimits budget.
	// Event and sim-cycle budgets stop deterministically (same seed +
	// same budget ⇒ bit-identical partial Result); wall-clock and memory
	// budgets are tagged non-reproducible in the diagnostic.
	ErrBudgetExhausted = simerr.ErrBudgetExhausted

	// ErrRunPanicked reports a simulation that panicked and was
	// contained by a supervising layer (an experiment sweep cell, a fuzz
	// iteration) instead of killing the process.
	ErrRunPanicked = simerr.ErrRunPanicked
)

// RunLimits bounds one simulation: deterministic budgets (MaxEvents,
// MaxCycles) and non-deterministic ones (WallBudget, MemSoftBytes),
// checked at the event-loop boundary (amortized every CheckEvery events
// for the non-deterministic set). The zero value imposes nothing.
type RunLimits = runctl.Limits

// KernelNames lists the eight benchmark kernels (paper §4.1).
func KernelNames() []string { return kernels.Names() }

// Addr is a byte address in the machine's single 32-bit address space
// (returned by the runtime's allocators, accepted by every Ctx operation).
type Addr = addr.Addr

// LineBytes is the cache-line size (Table 3: 32 bytes).
const LineBytes = addr.LineBytes

// MsgKind classifies L2-output messages (the Figures 2/8 legend).
type MsgKind = msg.Kind

// Message classes.
const (
	MsgReadReq   = msg.ReadReq
	MsgWriteReq  = msg.WriteReq
	MsgInstrReq  = msg.InstrReq
	MsgAtomic    = msg.Atomic
	MsgEviction  = msg.Eviction
	MsgSWFlush   = msg.SWFlush
	MsgReadRel   = msg.ReadRel
	MsgProbeResp = msg.ProbeResp
)

// MsgKinds lists the message classes in figure-legend order.
func MsgKinds() []MsgKind { return msg.Kinds() }

// RunConfig describes one simulation.
type RunConfig struct {
	Machine MachineConfig
	Kernel  string
	Scale   int   // data-set scale; 1 is the smallest
	Seed    int64 // workload generator seed
	Workers int   // cores running the kernel; 0 = 4 per cluster
	Verify  bool  // check kernel output against the golden reference

	// MaxCycles bounds the simulation (0 = generous default). Exceeding
	// it is a failure (ErrCycleLimit) — it is the runaway guard, not a
	// budget; use Limits for structured early ends with partial results.
	MaxCycles uint64

	// Limits are the run-lifecycle budgets (max events, max sim-cycles,
	// wall clock, memory soft limit). A budget-ended run returns a
	// partial Result together with an ErrBudgetExhausted error.
	Limits RunLimits

	// TraceCapacity, when positive, retains the last N protocol events in
	// Result.Stats.Trace for post-mortem inspection.
	TraceCapacity int

	// TraceSink, when non-nil, receives every protocol event as a
	// structured record for Chrome-trace/text export (see NewTraceSink).
	TraceSink *TraceSink

	// Coverage, when non-nil, records which protocol-transition edges the
	// run exercised. A single tracker may be shared across many runs (marks
	// are atomic) to aggregate coverage over a batch.
	Coverage *Coverage

	// Metrics, when true, collects sim-time histograms (message latency by
	// class, port waits, queue depths, directory occupancy) in
	// Result.Stats.Metrics.
	Metrics bool
}

// Coverage tracks which protocol-transition edges simulations exercised;
// see internal/trace for the edge catalog (documented in PROTOCOL.md §7).
type Coverage = trace.Coverage

// NewCoverage returns an empty protocol-transition coverage tracker.
func NewCoverage() *Coverage { return trace.NewCoverage() }

// TraceSink is a bounded ring of structured protocol events with
// Chrome-trace-event and text exporters.
type TraceSink = trace.Sink

// NewTraceSink returns a sink retaining up to capacity events (<= 0 uses
// trace.DefaultSinkCapacity).
func NewTraceSink(capacity int) *TraceSink { return trace.NewSink(capacity) }

// ProtocolEdgeNames lists the registered protocol-transition edge names in
// registry order.
func ProtocolEdgeNames() []string { return trace.EdgeNames() }

// Result is one simulation's measurements.
type Result struct {
	Kernel string
	Mode   Mode
	Config MachineConfig
	Stats  stats.Run

	// MemFingerprint digests the final memory image (after the exit drain);
	// two runs with identical configuration, workload seed, and fault seed
	// produce identical fingerprints.
	MemFingerprint uint64
}

// Messages returns the count for one L2-output message class.
func (r *Result) Messages(k msg.Kind) uint64 { return r.Stats.Messages[k] }

// TotalMessages sums all L2-output message classes (the Figs 2/8 stack).
func (r *Result) TotalMessages() uint64 { return r.Stats.TotalMessages() }

// Cycles is the simulated run time.
func (r *Result) Cycles() uint64 { return r.Stats.Cycles }

// Run simulates one kernel on one machine configuration, verifying output
// and protocol invariants.
func Run(rc RunConfig) (*Result, error) {
	return RunCtx(context.Background(), rc)
}

// RunCtx is Run with cooperative cancellation: the simulation checks ctx
// at the event-loop boundary and ends early with ErrCanceled when it is
// canceled. For canceled and budget-ended runs RunCtx returns a non-nil
// partial Result together with the error: the stats, trace ring, and
// memory fingerprint reflect the machine at the stop point (the dirty
// cache state is drained to memory first). When the stop was a
// deterministic budget (RunLimits.MaxEvents or MaxCycles), that partial
// Result is bit-identical across runs with the same seed and budget.
func RunCtx(ctx context.Context, rc RunConfig) (*Result, error) {
	p, err := prepareRun(rc)
	if err != nil {
		return nil, err
	}
	return p.run(ctx)
}

// Prepared is an assembled machine with its kernel spawned, stopped just
// before the first event — the construction half of Run split out so
// harnesses (cohesion-bench's steady-state measurements) can time and
// meter the simulation separately from machine assembly and workload
// setup. A Prepared is single-use: Run consumes it.
type Prepared struct {
	p *preparedRun
}

// Prepare assembles the machine for rc, attaches observability, builds
// the kernel, and spawns the workers, without firing any event.
func Prepare(rc RunConfig) (*Prepared, error) {
	p, err := prepareRun(rc)
	if err != nil {
		return nil, err
	}
	return &Prepared{p: p}, nil
}

// Run simulates the prepared machine to its end. Cancellation and budget
// semantics match RunCtx.
func (p *Prepared) Run(ctx context.Context) (*Result, error) { return p.p.run(ctx) }

// Simulate runs the event loop to quiescence (or a budget stop /
// cancellation) without finalizing: no invariant sweep, no cache drain,
// no verification, no fingerprint. It exists so harnesses can time the
// O(events) simulation separately from the O(machine-state) epilogue —
// Finalize completes the run. Use Run unless you are measuring.
func (p *Prepared) Simulate(ctx context.Context) error { return p.p.simulate(ctx) }

// Finalize checks protocol invariants, drains surviving dirty cache
// state to memory, verifies the kernel output if the run asked for it,
// and packages the Result. It must follow a successful Simulate.
func (p *Prepared) Finalize() (*Result, error) { return p.p.finalize() }

// preparedRun is an assembled machine with its kernel spawned, ready to
// simulate. The checkpoint layer prepares runs separately from executing
// them so a resume can install its checkpoint callback in between.
type preparedRun struct {
	rc   RunConfig
	m    *machine.Machine
	r    *rt.Runtime
	inst *kernels.Instance
}

// prepareRun assembles the machine, attaches observability, builds the
// kernel, and spawns the workers — everything up to the first event.
func prepareRun(rc RunConfig) (*preparedRun, error) {
	if rc.Scale < 1 {
		rc.Scale = 1
	}
	m, err := machine.New(rc.Machine)
	if err != nil {
		return nil, err
	}
	if rc.TraceCapacity > 0 {
		m.EnableTrace(rc.TraceCapacity)
	}
	m.Run.Sink = rc.TraceSink
	m.Run.Coverage = rc.Coverage
	if rc.Metrics {
		m.Run.Metrics = stats.NewMetrics()
	}
	workers := rc.Workers
	if workers == 0 {
		workers = 4 * rc.Machine.Clusters
	}
	if workers > rc.Machine.Cores() {
		return nil, fmt.Errorf("cohesion: %d workers exceed %d cores", workers, rc.Machine.Cores())
	}
	r, err := rt.New(m, workers)
	if err != nil {
		return nil, err
	}
	inst, err := kernels.Build(rc.Kernel, r, kernels.Params{Scale: rc.Scale, Seed: rc.Seed})
	if err != nil {
		return nil, err
	}
	// Spread workers evenly across clusters.
	perCluster := (workers + rc.Machine.Clusters - 1) / rc.Machine.Clusters
	started := 0
	for cl := 0; cl < rc.Machine.Clusters && started < workers; cl++ {
		for i := 0; i < perCluster && started < workers; i++ {
			r.Spawn(cl*rc.Machine.CoresPerCluster+i, inst.CodeBytes, inst.Worker)
			started++
		}
	}
	return &preparedRun{rc: rc, m: m, r: r, inst: inst}, nil
}

// run simulates a prepared run to its end (quiescence, budget, or
// cancellation) and packages the Result.
func (p *preparedRun) run(ctx context.Context) (*Result, error) {
	rc, m := p.rc, p.m
	if err := m.SimulateCtx(ctx, rc.MaxCycles, rc.Limits); err != nil {
		wrapped := fmt.Errorf("cohesion: %s on %s: %w", rc.Kernel, rc.Machine.Label, err)
		if errors.Is(err, ErrCanceled) || errors.Is(err, ErrBudgetExhausted) {
			// Graceful early end: the machine is already shut down; drain
			// the surviving dirty cache state so the partial fingerprint
			// covers everything the run computed up to the stop point.
			m.DrainToMemory()
			return p.result(), wrapped
		}
		return nil, wrapped
	}
	return p.finalize()
}

// simulate runs the event loop alone — the O(events) phase.
func (p *preparedRun) simulate(ctx context.Context) error {
	rc := p.rc
	if err := p.m.SimulateCtx(ctx, rc.MaxCycles, rc.Limits); err != nil {
		return fmt.Errorf("cohesion: %s on %s: %w", rc.Kernel, rc.Machine.Label, err)
	}
	return nil
}

// finalize completes a successfully simulated run: the invariant sweep,
// the dirty-state drain, optional output verification, and the Result
// with its memory fingerprint — the O(machine-state) epilogue.
func (p *preparedRun) finalize() (*Result, error) {
	rc, m := p.rc, p.m
	if err := m.CheckInvariants(); err != nil {
		return nil, fmt.Errorf("cohesion: %s: protocol invariant violated: %w", rc.Kernel, err)
	}
	m.DrainToMemory()
	if rc.Verify {
		if err := p.inst.Verify(p.r); err != nil {
			return nil, fmt.Errorf("cohesion: %w", err)
		}
	}
	return p.result(), nil
}

func (p *preparedRun) result() *Result {
	return &Result{
		Kernel:         p.rc.Kernel,
		Mode:           p.rc.Machine.Mode,
		Config:         p.rc.Machine,
		Stats:          *p.m.Run,
		MemFingerprint: p.m.Store.Fingerprint(),
	}
}
