package cohesion

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"reflect"
	"strings"
	"testing"

	"cohesion/internal/pool"
	"cohesion/internal/simerr"
	"cohesion/internal/stress"
)

// runBudgeted runs one kernel under a deterministic event budget and
// returns the partial result.
func runBudgeted(t *testing.T, budget uint64) *Result {
	t.Helper()
	res, err := Run(RunConfig{
		Machine: ScaledConfig(2),
		Kernel:  "heat",
		Scale:   1,
		Seed:    42,
		Limits:  RunLimits{MaxEvents: budget},
	})
	if !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("Run = %v, want ErrBudgetExhausted", err)
	}
	if res == nil {
		t.Fatal("budget-ended run returned no partial result")
	}
	return res
}

// TestPartialResultDeterministicAtEventBudget is the reproducibility
// acceptance check: a run canceled at a fixed event budget must produce a
// bit-identical partial memory fingerprint and stats on every execution
// with the same seed and budget.
func TestPartialResultDeterministicAtEventBudget(t *testing.T) {
	const budget = 4_000
	a := runBudgeted(t, budget)
	b := runBudgeted(t, budget)
	if a.MemFingerprint != b.MemFingerprint {
		t.Fatalf("partial fingerprints diverged: %#x vs %#x", a.MemFingerprint, b.MemFingerprint)
	}
	if !reflect.DeepEqual(a.Stats, b.Stats) {
		t.Fatalf("partial stats diverged:\n%+v\nvs\n%+v", a.Stats, b.Stats)
	}
	// A different budget must actually stop elsewhere — otherwise the
	// "budget" was never the thing ending the run.
	c := runBudgeted(t, 2*budget)
	if c.Stats.Cycles <= a.Stats.Cycles {
		t.Fatalf("doubling the budget did not advance the run: %d -> %d cycles", a.Stats.Cycles, c.Stats.Cycles)
	}
}

// fakeCellResult fabricates a deterministic Result for one sweep cell,
// derived only from the cell's kernel and configuration label.
func fakeCellResult(kernel, config string) *Result {
	h := fnv.New64a()
	h.Write([]byte(kernel + "/" + config))
	seed := h.Sum64()
	r := &Result{Kernel: kernel}
	for k := range r.Stats.Messages {
		r.Stats.Messages[k] = seed%1000 + uint64(k)*7
	}
	r.Stats.Cycles = seed % 100_000
	return r
}

// TestPanickedCellLeavesSweepBitIdentical is the graceful-degradation
// acceptance check: a panicked cell in a parallel experiment sweep must
// leave every other cell's rows bit-identical to a clean serial sweep,
// render as failed(...), and surface ErrRunPanicked on the sweep error.
func TestPanickedCellLeavesSweepBitIdentical(t *testing.T) {
	defer func() { runForTest = nil }()
	p := ExpParams{Kernels: []string{"heat", "fft", "sobel"}, Parallel: 1}

	runForTest = func(job runJob, _ ExpParams) (*Result, error) {
		return fakeCellResult(job.kernel, job.name), nil
	}
	clean, err := Fig8(p)
	if err != nil {
		t.Fatalf("clean sweep failed: %v", err)
	}

	// Same sweep, parallel, with one cell panicking mid-simulation.
	runForTest = func(job runJob, _ ExpParams) (*Result, error) {
		if job.kernel == "fft" && job.name == "HWccReal" {
			panic("injected cell panic")
		}
		return fakeCellResult(job.kernel, job.name), nil
	}
	p.Parallel = 8
	degraded, err := Fig8(p)
	if err == nil {
		t.Fatal("sweep with a panicked cell reported success")
	}
	if !errors.Is(err, ErrRunPanicked) {
		t.Fatalf("sweep error = %v, want ErrRunPanicked in the chain", err)
	}
	var pe *pool.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("sweep error %v does not expose *pool.PanicError", err)
	}
	if pe.Value != "injected cell panic" || len(pe.Stack) == 0 {
		t.Fatalf("PanicError lost the panic context: %+v", pe)
	}
	var sw *SweepError
	if !errors.As(err, &sw) {
		t.Fatalf("sweep error %v is not a *SweepError", err)
	}
	if len(sw.Cells) != 1 || sw.Cells[0].Kernel != "fft" {
		t.Fatalf("SweepError cells = %+v, want exactly the fft/HWccReal cell", sw.Cells)
	}

	if len(degraded) != len(clean) {
		t.Fatalf("degraded sweep has %d rows, clean has %d", len(degraded), len(clean))
	}
	failedRows := 0
	for i := range clean {
		if degraded[i].Failed != "" {
			failedRows++
			if degraded[i].Kernel != "fft" || degraded[i].Config != "HWccReal" {
				t.Fatalf("wrong cell failed: %s/%s", degraded[i].Kernel, degraded[i].Config)
			}
			if !strings.HasPrefix(degraded[i].Failed, "failed(") {
				t.Fatalf("failed cell marker %q missing failed(...) form", degraded[i].Failed)
			}
			continue
		}
		if !reflect.DeepEqual(clean[i], degraded[i]) {
			t.Fatalf("row %d (%s/%s) perturbed by the panicked cell:\nclean    %+v\ndegraded %+v",
				i, clean[i].Kernel, clean[i].Config, clean[i], degraded[i])
		}
	}
	if failedRows != 1 {
		t.Fatalf("%d failed rows, want exactly 1", failedRows)
	}
}

// TestSweepErrorMixedSentinels drives one sweep in which three different
// cells fail for three different reasons — cancellation, budget
// exhaustion, and a contained panic — and checks the aggregated
// *SweepError surfaces every category at once: errors.Is finds each
// sentinel, Unwrap() []error exposes exactly the failed cells, and the
// multi-line Error() names every failure.
func TestSweepErrorMixedSentinels(t *testing.T) {
	defer func() { runForTest = nil }()
	runForTest = func(job runJob, _ ExpParams) (*Result, error) {
		switch {
		case job.kernel == "heat" && job.name == "SWcc":
			return nil, fmt.Errorf("%s/%s: %w", job.kernel, job.name,
				simerr.New(ErrCanceled, 10, "machine", 0, "synthetic cancellation"))
		case job.kernel == "fft" && job.name == "HWccIdeal":
			return nil, fmt.Errorf("%s/%s: %w", job.kernel, job.name,
				simerr.New(ErrBudgetExhausted, 20, "machine", 0, "synthetic budget stop"))
		case job.kernel == "sobel" && job.name == "HWccReal":
			panic("mixed-sentinel boom")
		}
		return fakeCellResult(job.kernel, job.name), nil
	}

	p := ExpParams{Kernels: []string{"heat", "fft", "sobel"}, Parallel: 4}
	rows, err := Fig8(p)
	if err == nil {
		t.Fatal("sweep with three failing cells reported success")
	}
	var sw *SweepError
	if !errors.As(err, &sw) {
		t.Fatalf("sweep error %v is not a *SweepError", err)
	}
	if len(sw.Cells) != 3 {
		t.Fatalf("SweepError has %d cells, want 3: %+v", len(sw.Cells), sw.Cells)
	}
	if got := len(sw.Unwrap()); got != 3 {
		t.Fatalf("Unwrap() returned %d errors, want 3", got)
	}

	// One errors.Is per category against the single aggregated error: the
	// multi-error Unwrap must let each sentinel be found independently.
	for _, tc := range []struct {
		name     string
		sentinel error
	}{
		{"canceled", ErrCanceled},
		{"budget", ErrBudgetExhausted},
		{"panic", ErrRunPanicked},
	} {
		if !errors.Is(sw, tc.sentinel) {
			t.Errorf("errors.Is(sweep, %s sentinel) = false; sweep: %v", tc.name, sw)
		}
	}

	// The structured diagnostics survive aggregation too, not just the
	// sentinels: errors.As digs out a simerr.Error and the pool's
	// PanicError with its stack.
	var se *simerr.Error
	if !errors.As(sw, &se) {
		t.Fatalf("SweepError lost the structured cell errors")
	}
	var pe *pool.PanicError
	if !errors.As(sw, &pe) || pe.Value != "mixed-sentinel boom" {
		t.Fatalf("SweepError lost the contained panic: %+v", pe)
	}

	// Every failed cell is identified by kernel/config in the aggregate,
	// and the multi-line message names each additional failure.
	got := map[string]bool{}
	for _, c := range sw.Cells {
		got[c.Kernel+"/"+c.Config] = true
	}
	for _, want := range []string{"heat/SWcc", "fft/HWccIdeal", "sobel/HWccReal"} {
		if !got[want] {
			t.Errorf("SweepError cells %v missing %s", sw.Cells, want)
		}
	}
	if msg := sw.Error(); strings.Count(msg, "\n") != 2 {
		t.Errorf("SweepError message should carry one line per extra failure:\n%s", msg)
	}
	failed := 0
	for _, r := range rows {
		if r.Failed != "" {
			failed++
		}
	}
	if failed != 3 {
		t.Fatalf("%d rows marked failed, want 3", failed)
	}
}

// TestSweepCancellationPropagates cancels a sweep before it starts: every
// cell must fail fast with ErrCanceled instead of simulating.
func TestSweepCancellationPropagates(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p := ExpParams{Kernels: []string{"heat"}, Parallel: 2, Ctx: ctx}
	rows, err := Fig2(p)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("canceled sweep error = %v, want ErrCanceled", err)
	}
	for _, r := range rows {
		if r.Failed == "" {
			t.Fatalf("row %s/%s not marked failed under cancellation", r.Kernel, r.Config)
		}
	}
}

// TestSentinelMatrix sweeps every simerr sentinel across the error
// surfaces a supervising layer dispatches on: the raw structured error,
// the cohesion.Run wrapping, sweep aggregation, pool panic containment,
// and the fuzzer's replay classifier.
func TestSentinelMatrix(t *testing.T) {
	sentinels := []struct {
		name     string
		err      error
		category string // stress.SentinelOf class
	}{
		{"deadlock", ErrDeadlock, "deadlock"},
		{"retry-exhausted", ErrRetryExhausted, "retry-exhausted"},
		{"protocol-invariant", ErrProtocolInvariant, "protocol-invariant"},
		{"config", ErrConfig, "config"},
		{"canceled", ErrCanceled, "canceled"},
		{"budget-exhausted", ErrBudgetExhausted, "budget"},
		{"run-panicked", ErrRunPanicked, "panic"},
	}
	for _, tc := range sentinels {
		t.Run(tc.name, func(t *testing.T) {
			structured := simerr.New(tc.err, 123, "machine", 0, "synthetic %s", tc.name)

			// Surface 1: the structured error itself.
			if !errors.Is(structured, tc.err) {
				t.Fatalf("simerr.Error does not match its own sentinel %v", tc.err)
			}
			var se *simerr.Error
			if !errors.As(structured, &se) || se.Cycle != 123 {
				t.Fatalf("errors.As lost the structured diagnostic: %+v", se)
			}

			// Surface 2: the facade's Run wrapping.
			wrapped := fmt.Errorf("cohesion: heat on scaled-16c: %w", structured)
			if !errors.Is(wrapped, tc.err) {
				t.Fatalf("Run-style wrapping broke errors.Is for %v", tc.err)
			}

			// Surface 3: sweep aggregation over many cells.
			sweep := &SweepError{Total: 3, Cells: []CellFailure{
				{Index: 0, Kernel: "heat", Config: "SWcc", Err: errors.New("unrelated")},
				{Index: 2, Kernel: "fft", Config: "HWcc", Err: wrapped},
			}}
			if !errors.Is(sweep, tc.err) {
				t.Fatalf("SweepError does not surface %v from a cell", tc.err)
			}
			if !errors.As(sweep, &se) || se.Cycle != 123 {
				t.Fatalf("SweepError lost the structured cell error")
			}

			// Surface 4: the fuzzer's failure classifier.
			if got := stress.SentinelOf(structured); got != tc.category {
				t.Fatalf("stress.SentinelOf = %q, want %q", got, tc.category)
			}
			if cat := stress.CategoryOf(structured); !strings.HasPrefix(cat, tc.category) {
				t.Fatalf("stress.CategoryOf = %q, want %q prefix", cat, tc.category)
			}
		})
	}

	// Surface 5: pool panic containment produces the panic sentinel.
	_, errs := pool.MapCatch(2, 2, func(i int) (int, error) {
		if i == 1 {
			panic("matrix boom")
		}
		return i, nil
	})
	if !errors.Is(errs[1], ErrRunPanicked) {
		t.Fatalf("contained pool panic = %v, want ErrRunPanicked", errs[1])
	}
	if got := stress.SentinelOf(errs[1]); got != "panic" {
		t.Fatalf("SentinelOf(contained panic) = %q, want panic", got)
	}
}
