package cohesion

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"cohesion/internal/snapshot"
)

// ckptConfig is the small machine the checkpoint tests run on.
func ckptConfig(mode Mode) MachineConfig {
	cfg := ScaledConfig(2).WithMode(mode)
	if mode != SWcc {
		cfg = cfg.WithDirectory(DirInfinite, 0, 0)
	}
	return cfg
}

// TestResumeBitIdenticalAllKernels is the acceptance criterion: for all
// eight kernels (modes rotated), a run interrupted at three interior
// event counts and resumed from its snapshot produces a bit-identical
// memory fingerprint, Stats, and edge-coverage set to the run executed
// straight through.
func TestResumeBitIdenticalAllKernels(t *testing.T) {
	modes := []Mode{Cohesion, HWcc, SWcc}
	for i, kernel := range KernelNames() {
		kernel, mode := kernel, modes[i%len(modes)]
		t.Run(fmt.Sprintf("%s_%v", kernel, mode), func(t *testing.T) {
			t.Parallel()
			rc := RunConfig{
				Machine: ckptConfig(mode),
				Kernel:  kernel,
				Scale:   1,
				Seed:    42,
				Verify:  true,
			}
			report, err := SelfCheckResume(context.Background(), rc, 3, t.TempDir())
			if err != nil {
				t.Fatalf("SelfCheckResume: %v", err)
			}
			if report.Diverged {
				t.Fatalf("diverged at depth %d, first event %d, layers %v",
					report.DivergentDepth, report.FirstEvent, report.Layers)
			}
			if report.Resumed != len(report.Depths) || len(report.Depths) < 3 {
				t.Fatalf("resumed %d of depths %v, want at least 3 clean resumes", report.Resumed, report.Depths)
			}
		})
	}
}

// TestResumeFromPeriodicCheckpoint interrupts nothing: it lets a
// checkpointed run finish, then resumes from the last periodic snapshot
// and compares against the completed run.
func TestResumeFromPeriodicCheckpoint(t *testing.T) {
	rc := RunConfig{Machine: ckptConfig(Cohesion), Kernel: "heat", Scale: 1, Seed: 7, Verify: true}
	path := filepath.Join(t.TempDir(), "run.ckpt")

	straight, err := RunWithCheckpoints(context.Background(), rc, CheckpointConfig{Path: path, Every: 3_000})
	if err != nil {
		t.Fatalf("RunWithCheckpoints: %v", err)
	}
	res, info, err := ResumeRun(context.Background(), path, ResumeOptions{})
	if err != nil {
		t.Fatalf("ResumeRun: %v", err)
	}
	if info.Events == 0 || info.Events%3_000 != 0 {
		t.Fatalf("resumed from event %d, want a periodic multiple of 3000", info.Events)
	}
	if res.MemFingerprint != straight.MemFingerprint {
		t.Fatalf("fingerprint %#x vs %#x", res.MemFingerprint, straight.MemFingerprint)
	}
	if got, want := res.Stats.Digest(), straight.Stats.Digest(); got != want {
		t.Fatalf("stats digest %#x vs %#x", got, want)
	}
	if !reflect.DeepEqual(res.Stats.Snapshot(), straight.Stats.Snapshot()) {
		t.Fatal("stats snapshots differ")
	}
}

// TestResumeAfterTornWrite simulates a SIGKILL mid-snapshot-write: a
// valid committed snapshot with a torn staged temp file next to it. The
// resume must fall back to the committed snapshot and still reproduce
// the straight-through run bit-for-bit.
func TestResumeAfterTornWrite(t *testing.T) {
	rc := RunConfig{Machine: ckptConfig(HWcc), Kernel: "stencil", Scale: 1, Seed: 11, Verify: true}
	path := filepath.Join(t.TempDir(), "run.ckpt")

	interrupted := rc
	interrupted.Limits = RunLimits{MaxEvents: 4_000}
	if _, err := RunWithCheckpoints(context.Background(), interrupted, CheckpointConfig{Path: path}); !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("interrupted run: %v, want ErrBudgetExhausted", err)
	}
	// A later write killed partway through: garbage in the staging file.
	if err := os.WriteFile(snapshot.TmpPath(path), []byte(`{"magic":"cohesion-snap`), 0o644); err != nil {
		t.Fatal(err)
	}

	straight, err := RunCtx(context.Background(), rc)
	if err != nil {
		t.Fatalf("straight run: %v", err)
	}
	res, info, err := ResumeRun(context.Background(), path, ResumeOptions{})
	if err != nil {
		t.Fatalf("ResumeRun after torn write: %v", err)
	}
	if info.Source != path || info.Events != 4_000 {
		t.Fatalf("resumed from %s at event %d, want the committed snapshot at 4000", info.Source, info.Events)
	}
	if res.MemFingerprint != straight.MemFingerprint {
		t.Fatalf("fingerprint %#x vs %#x", res.MemFingerprint, straight.MemFingerprint)
	}
}

// TestResumeDetectsDivergence corrupts the replayed digest vector via
// the test seam and asserts the resume refuses to continue, naming the
// corrupted layer.
func TestResumeDetectsDivergence(t *testing.T) {
	rc := RunConfig{Machine: ckptConfig(Cohesion), Kernel: "sobel", Scale: 1, Seed: 3}
	path := filepath.Join(t.TempDir(), "run.ckpt")
	interrupted := rc
	interrupted.Limits = RunLimits{MaxEvents: 3_000}
	if _, err := RunWithCheckpoints(context.Background(), interrupted, CheckpointConfig{Path: path}); !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("interrupted run: %v, want ErrBudgetExhausted", err)
	}

	testDigestPerturb = func(d *snapshot.Digests) { d.Mem ^= 1 }
	defer func() { testDigestPerturb = nil }()

	_, _, err := ResumeRun(context.Background(), path, ResumeOptions{})
	if !errors.Is(err, snapshot.ErrDiverged) {
		t.Fatalf("ResumeRun = %v, want ErrDiverged", err)
	}
	var de *DivergenceError
	if !errors.As(err, &de) {
		t.Fatalf("ResumeRun error %T, want *DivergenceError", err)
	}
	if de.Events != 3_000 || len(de.Layers) != 1 || de.Layers[0][:3] != "mem" {
		t.Fatalf("divergence = %+v, want the mem layer at event 3000", de)
	}
}

// TestSelfCheckBisectsAndDumps forces a divergence (resume verification
// fails via the digest seam; one bisection replay is perturbed from a
// known event on) and asserts the harness bisects to that exact event
// and dumps both diagnostic states.
func TestSelfCheckBisectsAndDumps(t *testing.T) {
	const firstBad = 1_234
	testDigestPerturb = func(d *snapshot.Digests) { d.Mem ^= 1 }
	testReplayPerturb = func(replay int, st *snapshot.MachineState) {
		if replay == 1 && st.Events >= firstBad {
			st.Digests.Mem ^= 1
		}
	}
	defer func() { testDigestPerturb = nil; testReplayPerturb = nil }()

	dir := t.TempDir()
	rc := RunConfig{Machine: ckptConfig(HWcc), Kernel: "heat", Scale: 1, Seed: 5}
	report, err := SelfCheckResume(context.Background(), rc, 3, dir)
	if !errors.Is(err, snapshot.ErrDiverged) {
		t.Fatalf("SelfCheckResume = %v, want ErrDiverged", err)
	}
	if !report.Diverged {
		t.Fatal("report not marked diverged")
	}
	if report.FirstEvent != firstBad {
		t.Fatalf("bisected first divergent event %d, want %d", report.FirstEvent, firstBad)
	}
	if len(report.Layers) == 0 || report.Layers[0][:3] != "mem" {
		t.Fatalf("layers = %v, want mem first", report.Layers)
	}
	for _, dump := range []string{report.DumpA, report.DumpB} {
		var st snapshot.MachineState
		if _, err := snapshot.Load(dump, snapshot.KindRun, &st); err != nil {
			t.Fatalf("diagnostic dump %s unreadable: %v", dump, err)
		}
		if st.Events != firstBad {
			t.Fatalf("dump %s captured event %d, want %d", dump, st.Events, firstBad)
		}
	}
}

// TestResumeRejectsStaleBudget asserts a resume with an event budget at
// or below the snapshot point fails fast instead of replaying to an end
// before the resume point.
func TestResumeRejectsStaleBudget(t *testing.T) {
	rc := RunConfig{Machine: ckptConfig(HWcc), Kernel: "heat", Scale: 1, Seed: 5}
	path := filepath.Join(t.TempDir(), "run.ckpt")
	interrupted := rc
	interrupted.Limits = RunLimits{MaxEvents: 2_000}
	if _, err := RunWithCheckpoints(context.Background(), interrupted, CheckpointConfig{Path: path}); !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("interrupted run: %v, want ErrBudgetExhausted", err)
	}
	if _, _, err := ResumeRun(context.Background(), path, ResumeOptions{Limits: RunLimits{MaxEvents: 2_000}}); err == nil {
		t.Fatal("ResumeRun with a stale budget: want error")
	}
	// A budget past the snapshot point resumes and stops at the budget,
	// writing a fresh snapshot there for the next resume.
	res, _, err := ResumeRun(context.Background(), path, ResumeOptions{Limits: RunLimits{MaxEvents: 3_500}})
	if !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("ResumeRun to 3500 = %v, want ErrBudgetExhausted", err)
	}
	if res == nil || res.Stats.Events != 3_500 {
		t.Fatalf("partial resume result = %+v, want 3500 events", res)
	}
	var snap RunSnapshot
	env, _, lerr := snapshot.LoadRecover(path, snapshot.KindRun, &snap)
	if lerr != nil || env.Seq != 3_500 {
		t.Fatalf("snapshot after budgeted resume: seq %d err %v, want 3500", env.Seq, lerr)
	}
}
