package cohesion

import (
	"reflect"
	"testing"
)

// TestParallelFanoutDeterminism is the contract of the parallel experiment
// harness: the same figure regenerated serially (Parallel=1) and with
// several host goroutines must produce bit-identical tables. Each
// simulation owns all of its mutable state (event queue, memory store,
// instance PRNGs) and results are slotted by job index, so worker count
// and completion order must not be observable in any output.
func TestParallelFanoutDeterminism(t *testing.T) {
	base := ExpParams{Clusters: 2, Workers: 4, Scale: 1, Seed: 42,
		Kernels: []string{"heat", "cg"}, DirSizes: []int{32, 128}}

	serial, parallel := base, base
	serial.Parallel = 1
	parallel.Parallel = 4

	type figure struct {
		name string
		run  func(ExpParams) (any, error)
	}
	figures := []figure{
		{"Fig2", func(p ExpParams) (any, error) { return Fig2(p) }},
		{"Fig3", func(p ExpParams) (any, error) { return Fig3(p) }},
		{"Fig8", func(p ExpParams) (any, error) { return Fig8(p) }},
		{"Fig9a", func(p ExpParams) (any, error) { return Fig9Sweep(p, HWcc) }},
		{"Fig9c", func(p ExpParams) (any, error) { return Fig9c(p) }},
		{"Fig10", func(p ExpParams) (any, error) { return Fig10(p) }},
	}
	for _, f := range figures {
		f := f
		t.Run(f.name, func(t *testing.T) {
			t.Parallel()
			want, err := f.run(serial)
			if err != nil {
				t.Fatal(err)
			}
			got, err := f.run(parallel)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(want, got) {
				t.Errorf("parallel table differs from serial:\nserial:   %+v\nparallel: %+v", want, got)
			}
		})
	}
}

// TestParallelRunsIsolated runs the same configuration on several
// goroutines at once and checks every copy produces the serial run's
// fingerprint, cycle count, and message total — catching any shared
// mutable state between concurrent simulations (best run with -race).
func TestParallelRunsIsolated(t *testing.T) {
	rc := RunConfig{
		Machine: ScaledConfig(2).WithMode(Cohesion),
		Kernel:  "heat",
		Scale:   1,
		Seed:    42,
		Verify:  true,
	}
	want, err := Run(rc)
	if err != nil {
		t.Fatal(err)
	}
	const copies = 4
	results := make([]*Result, copies)
	errs := make([]error, copies)
	done := make(chan int, copies)
	for i := 0; i < copies; i++ {
		go func(i int) {
			results[i], errs[i] = Run(rc)
			done <- i
		}(i)
	}
	for i := 0; i < copies; i++ {
		<-done
	}
	for i := 0; i < copies; i++ {
		if errs[i] != nil {
			t.Fatalf("copy %d: %v", i, errs[i])
		}
		r := results[i]
		if r.MemFingerprint != want.MemFingerprint || r.Cycles() != want.Cycles() ||
			r.TotalMessages() != want.TotalMessages() {
			t.Errorf("copy %d diverged: fingerprint %#x/%#x cycles %d/%d messages %d/%d",
				i, r.MemFingerprint, want.MemFingerprint, r.Cycles(), want.Cycles(),
				r.TotalMessages(), want.TotalMessages())
		}
	}
}
