package runctl

import (
	"context"
	"errors"
	"testing"
	"time"

	"cohesion/internal/simerr"
)

func TestNewReturnsNilWhenNothingToEnforce(t *testing.T) {
	if c := New(context.Background(), Limits{}); c != nil {
		t.Fatal("New(Background, zero Limits) must be nil so the event loop skips the hook")
	}
	if c := New(nil, Limits{}); c != nil {
		t.Fatal("New(nil, zero Limits) must be nil")
	}
	if c := New(context.Background(), Limits{MaxEvents: 1}); c == nil {
		t.Fatal("a set budget must produce a controller")
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if c := New(ctx, Limits{}); c == nil {
		t.Fatal("a cancelable context must produce a controller")
	}
}

func TestEventBudgetStopsExactlyAtBudget(t *testing.T) {
	c := New(context.Background(), Limits{MaxEvents: 10})
	for fired := uint64(1); fired < 10; fired++ {
		if s := c.Check(fired, fired); s != nil {
			t.Fatalf("stopped early at event %d: %+v", fired, s)
		}
	}
	s := c.Check(10, 10)
	if s == nil {
		t.Fatal("event budget did not stop the run")
	}
	if !errors.Is(s.Sentinel, simerr.ErrBudgetExhausted) || !s.Deterministic {
		t.Fatalf("stop = %+v, want deterministic ErrBudgetExhausted", s)
	}
}

func TestCycleBudgetStopsPastBudget(t *testing.T) {
	c := New(context.Background(), Limits{MaxCycles: 100})
	if s := c.Check(1, 100); s != nil {
		t.Fatalf("stopped at the budget cycle itself: %+v", s)
	}
	s := c.Check(2, 101)
	if s == nil || !s.Deterministic || !errors.Is(s.Sentinel, simerr.ErrBudgetExhausted) {
		t.Fatalf("stop = %+v, want deterministic ErrBudgetExhausted past cycle 100", s)
	}
}

func TestCancellationIsAmortized(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // canceled before the run even starts
	c := New(ctx, Limits{CheckEvery: 8})
	fired := uint64(0)
	// The first 7 checks are within the amortization window: no stop yet
	// even though the context is long dead.
	for i := 0; i < 7; i++ {
		fired++
		if s := c.Check(fired, fired); s != nil {
			t.Fatalf("canceled context observed inside the amortization window (event %d)", fired)
		}
	}
	fired++
	s := c.Check(fired, fired)
	if s == nil || !errors.Is(s.Sentinel, simerr.ErrCanceled) {
		t.Fatalf("stop = %+v, want ErrCanceled at the amortization boundary", s)
	}
	if s.Deterministic {
		t.Fatal("cancellation must be tagged non-deterministic")
	}
}

func TestWallBudgetStops(t *testing.T) {
	c := New(context.Background(), Limits{WallBudget: time.Nanosecond, CheckEvery: 1})
	time.Sleep(time.Millisecond)
	s := c.Check(1, 1)
	if s == nil || !errors.Is(s.Sentinel, simerr.ErrBudgetExhausted) {
		t.Fatalf("stop = %+v, want ErrBudgetExhausted from the wall budget", s)
	}
	if s.Deterministic {
		t.Fatal("wall-clock stops must be tagged non-deterministic")
	}
}

func TestClamp(t *testing.T) {
	ceiling := Limits{MaxEvents: 100, MaxCycles: 1000, WallBudget: time.Second, MemSoftBytes: 1 << 20}
	cases := []struct {
		name string
		in   Limits
		want Limits
	}{
		{"zero adopts every ceiling", Limits{}, ceiling},
		{"looser budgets are tightened",
			Limits{MaxEvents: 200, MaxCycles: 5000, WallBudget: time.Minute, MemSoftBytes: 1 << 30}, ceiling},
		{"tighter budgets survive",
			Limits{MaxEvents: 5, MaxCycles: 7, WallBudget: time.Millisecond, MemSoftBytes: 16},
			Limits{MaxEvents: 5, MaxCycles: 7, WallBudget: time.Millisecond, MemSoftBytes: 16}},
		{"checkpoint schedule passes through",
			Limits{CheckpointEvery: 9, CheckpointAt: []uint64{3}},
			Limits{MaxEvents: 100, MaxCycles: 1000, WallBudget: time.Second, MemSoftBytes: 1 << 20,
				CheckpointEvery: 9, CheckpointAt: []uint64{3}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := Clamp(tc.in, ceiling)
			if got.MaxEvents != tc.want.MaxEvents || got.MaxCycles != tc.want.MaxCycles ||
				got.WallBudget != tc.want.WallBudget || got.MemSoftBytes != tc.want.MemSoftBytes ||
				got.CheckpointEvery != tc.want.CheckpointEvery || len(got.CheckpointAt) != len(tc.want.CheckpointAt) {
				t.Fatalf("Clamp = %+v, want %+v", got, tc.want)
			}
		})
	}
	// A zero ceiling imposes nothing.
	loose := Limits{MaxEvents: 1 << 40}
	if got := Clamp(loose, Limits{}); got.MaxEvents != loose.MaxEvents || got.WallBudget != 0 {
		t.Fatalf("Clamp with zero ceiling = %+v, want %+v unchanged", got, loose)
	}
}

func TestMemSoftLimitStops(t *testing.T) {
	// 1 byte soft limit: any live heap trips it. The memory check is the
	// sparsest of all (every CheckEvery*memEveryChecks events).
	c := New(context.Background(), Limits{MemSoftBytes: 1, CheckEvery: 1})
	var s *Stop
	for fired := uint64(1); fired <= memEveryChecks+1; fired++ {
		if s = c.Check(fired, fired); s != nil {
			break
		}
	}
	if s == nil || !errors.Is(s.Sentinel, simerr.ErrBudgetExhausted) {
		t.Fatalf("stop = %+v, want ErrBudgetExhausted from the memory soft limit", s)
	}
}
