// Package runctl is the run-lifecycle layer: cooperative cancellation
// and resource budgets for individual simulations. A Controller sits in
// the machine's event loop and decides, once per event, whether the run
// may continue. The checks are split by cost and determinism:
//
//   - Deterministic budgets (max events, max sim-cycles) are a pair of
//     integer compares evaluated on every event, so a run stopped by one
//     ends at an exact, reproducible point in the event sequence — same
//     seed + same budget ⇒ bit-identical partial machine state.
//   - Non-deterministic checks (context cancellation, wall-clock
//     deadline, memory soft limit) are amortized: they run once every
//     CheckEvery events, so the 10 ns/event engine never pays a syscall
//     or an atomic load per event. Their stop points depend on host
//     timing and are tagged non-reproducible in the diagnostics.
//
// When nothing is configured — background context, zero Limits — New
// returns nil and the event loop's only cost is one nil compare.
package runctl

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"time"

	"cohesion/internal/simerr"
)

// DefaultCheckEvery is the amortization interval for the
// non-deterministic checks (context, wall clock, memory): at typical
// engine speeds ~40 µs of wall time between checks.
const DefaultCheckEvery = 4096

// memEveryChecks spaces the runtime.ReadMemStats samples (it is far more
// expensive than a time.Now call): once every this many amortized
// checks, i.e. every CheckEvery * memEveryChecks events.
const memEveryChecks = 64

// Limits bounds one run. The zero value imposes nothing.
type Limits struct {
	// MaxEvents ends the run after exactly this many executed events
	// (deterministic). 0 = unlimited.
	MaxEvents uint64

	// MaxCycles ends the run after the first event past this simulated
	// cycle (deterministic). 0 = unlimited. Distinct from the machine's
	// runaway cycle guard: exhausting this budget is a structured
	// ErrBudgetExhausted end with partial results, not a failure.
	MaxCycles uint64

	// WallBudget ends the run after this much host wall-clock time
	// (non-deterministic, checked every CheckEvery events). 0 = none.
	WallBudget time.Duration

	// MemSoftBytes ends the run when the Go heap (runtime.ReadMemStats
	// HeapAlloc) exceeds this many bytes (non-deterministic, sampled
	// sparsely). 0 = none.
	MemSoftBytes uint64

	// CheckEvery overrides the amortization interval for the
	// non-deterministic checks. 0 = DefaultCheckEvery.
	CheckEvery uint64

	// CheckpointEvery asks for a checkpoint after every multiple of this
	// many executed events (deterministic: the schedule is a pure function
	// of the event count, so a checkpointed run's stop and snapshot points
	// replay identically). 0 = no periodic checkpoints.
	CheckpointEvery uint64

	// CheckpointAt asks for one checkpoint at each listed event count
	// (deterministic; sorted and deduplicated by New). The resume layer
	// uses it to re-capture state at a snapshot's exact event count.
	CheckpointAt []uint64
}

// Clamp tightens lim so no budget exceeds the corresponding ceiling: for
// each budget field, a non-zero ceiling replaces an unset (zero) or
// looser limit. Supervising layers — the job service admitting
// client-requested budgets — use it to impose server-wide caps without
// inspecting individual fields. Checkpoint scheduling fields are not
// budgets and pass through untouched.
func Clamp(lim, ceiling Limits) Limits {
	if ceiling.MaxEvents != 0 && (lim.MaxEvents == 0 || lim.MaxEvents > ceiling.MaxEvents) {
		lim.MaxEvents = ceiling.MaxEvents
	}
	if ceiling.MaxCycles != 0 && (lim.MaxCycles == 0 || lim.MaxCycles > ceiling.MaxCycles) {
		lim.MaxCycles = ceiling.MaxCycles
	}
	if ceiling.WallBudget != 0 && (lim.WallBudget == 0 || lim.WallBudget > ceiling.WallBudget) {
		lim.WallBudget = ceiling.WallBudget
	}
	if ceiling.MemSoftBytes != 0 && (lim.MemSoftBytes == 0 || lim.MemSoftBytes > ceiling.MemSoftBytes) {
		lim.MemSoftBytes = ceiling.MemSoftBytes
	}
	return lim
}

// active reports whether any budget is set.
func (l Limits) active() bool {
	return l.MaxEvents != 0 || l.MaxCycles != 0 || l.WallBudget != 0 || l.MemSoftBytes != 0 ||
		l.CheckpointEvery != 0 || len(l.CheckpointAt) != 0
}

// Stop is a controller's verdict that the run must end.
type Stop struct {
	// Sentinel is simerr.ErrCanceled or simerr.ErrBudgetExhausted.
	Sentinel error
	// Reason is the human-readable trigger, e.g. "event budget (50000
	// events) exhausted".
	Reason string
	// Deterministic is true when the stop point is a pure function of
	// the event sequence (event/cycle budgets) and false when it depends
	// on host timing (cancellation, wall clock, memory). Callers tag
	// non-deterministic partial results as non-reproducible.
	Deterministic bool
}

// Controller enforces a context and Limits over one run. It is owned by
// a single goroutine (the event loop); none of its state is shared.
type Controller struct {
	ctx      context.Context
	lim      Limits
	deadline time.Time // zero when WallBudget is unset

	every     uint64 // amortization interval
	countdown uint64 // events until the next amortized check
	memIn     int    // amortized checks until the next ReadMemStats

	ckptEvery uint64   // periodic checkpoint interval (0 = none)
	nextEvery uint64   // next periodic checkpoint event count
	ckptAt    []uint64 // one-shot checkpoint event counts, ascending
}

// New builds a controller, or returns nil when there is nothing to
// enforce (context can never be canceled and no limit is set) so the
// event loop can skip the per-event call entirely.
func New(ctx context.Context, lim Limits) *Controller {
	if ctx == nil {
		ctx = context.Background()
	}
	if ctx.Done() == nil && !lim.active() {
		return nil
	}
	every := lim.CheckEvery
	if every == 0 {
		every = DefaultCheckEvery
	}
	c := &Controller{
		ctx:       ctx,
		lim:       lim,
		every:     every,
		countdown: every,
		memIn:     memEveryChecks,
	}
	if lim.WallBudget > 0 {
		c.deadline = time.Now().Add(lim.WallBudget)
	}
	if lim.CheckpointEvery > 0 {
		c.ckptEvery = lim.CheckpointEvery
		c.nextEvery = lim.CheckpointEvery
	}
	if len(lim.CheckpointAt) > 0 {
		at := append([]uint64(nil), lim.CheckpointAt...)
		sort.Slice(at, func(i, j int) bool { return at[i] < at[j] })
		for _, n := range at {
			if n != 0 && (len(c.ckptAt) == 0 || c.ckptAt[len(c.ckptAt)-1] != n) {
				c.ckptAt = append(c.ckptAt, n)
			}
		}
	}
	return c
}

// CheckpointDue reports whether a deterministic checkpoint is scheduled
// at exactly this executed-event count, consuming the schedule entry. The
// machine calls it between events (after Check has allowed the run to
// continue), with fired increasing by one per call, so periodic
// checkpoints land at exact multiples of CheckpointEvery and one-shot
// points fire exactly once.
func (c *Controller) CheckpointDue(fired uint64) bool {
	due := false
	if c.ckptEvery != 0 && fired >= c.nextEvery {
		for c.nextEvery <= fired {
			c.nextEvery += c.ckptEvery
		}
		due = true
	}
	for len(c.ckptAt) > 0 && fired >= c.ckptAt[0] {
		c.ckptAt = c.ckptAt[1:]
		due = true
	}
	return due
}

// Check is called after every executed event with the cumulative event
// count and current simulated cycle. It returns nil while the run may
// continue, or the Stop that ends it. Deterministic budgets are
// evaluated on every call; the rest only when the amortization counter
// expires.
func (c *Controller) Check(fired, cycle uint64) *Stop {
	if c.lim.MaxEvents != 0 && fired >= c.lim.MaxEvents {
		return &Stop{
			Sentinel:      simerr.ErrBudgetExhausted,
			Reason:        fmt.Sprintf("event budget (%d events) exhausted", c.lim.MaxEvents),
			Deterministic: true,
		}
	}
	if c.lim.MaxCycles != 0 && cycle > c.lim.MaxCycles {
		return &Stop{
			Sentinel:      simerr.ErrBudgetExhausted,
			Reason:        fmt.Sprintf("sim-cycle budget (%d cycles) exhausted at cycle %d", c.lim.MaxCycles, cycle),
			Deterministic: true,
		}
	}
	if c.countdown--; c.countdown > 0 {
		return nil
	}
	c.countdown = c.every
	return c.checkSlow()
}

// checkSlow runs the amortized, non-deterministic checks.
func (c *Controller) checkSlow() *Stop {
	if err := c.ctx.Err(); err != nil {
		return &Stop{
			Sentinel: simerr.ErrCanceled,
			Reason:   fmt.Sprintf("context canceled (%v) [non-reproducible stop point]", err),
		}
	}
	if !c.deadline.IsZero() && time.Now().After(c.deadline) {
		return &Stop{
			Sentinel: simerr.ErrBudgetExhausted,
			Reason:   fmt.Sprintf("wall-clock budget (%v) exhausted [non-reproducible stop point]", c.lim.WallBudget),
		}
	}
	if c.lim.MemSoftBytes != 0 {
		if c.memIn--; c.memIn <= 0 {
			c.memIn = memEveryChecks
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			if ms.HeapAlloc > c.lim.MemSoftBytes {
				return &Stop{
					Sentinel: simerr.ErrBudgetExhausted,
					Reason: fmt.Sprintf("memory soft limit (%d MB) exceeded: heap %d MB [non-reproducible stop point]",
						c.lim.MemSoftBytes>>20, ms.HeapAlloc>>20),
				}
			}
		}
	}
	return nil
}
