package trace

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"testing"
)

func TestRecordStringKeepsSimTimeColumn(t *testing.T) {
	r := Record{Cycle: 42, Site: "home3", Event: "GrantS line=0x100"}
	s := r.String()
	if !strings.HasPrefix(s, "        42 ") {
		t.Fatalf("sim-time column missing or misaligned: %q", s)
	}
	if !strings.Contains(s, "home3") || !strings.Contains(s, "GrantS line=0x100") {
		t.Fatalf("record fields missing: %q", s)
	}
	// Alignment must hold regardless of how many words the event has (the
	// bug the shared renderer fixed: multi-word events lost the column).
	long := Record{Cycle: 7, Site: "cl0", Event: "ReadReq line=0x40 mshr=3 retry=1"}
	if !strings.HasPrefix(long.String(), "         7 ") {
		t.Fatalf("multi-word event lost the sim-time column: %q", long.String())
	}
}

func TestRecordName(t *testing.T) {
	if n := (Record{Event: "GrantS line=0x100"}).Name(); n != "GrantS" {
		t.Fatalf("Name = %q", n)
	}
	if n := (Record{Event: "Barrier"}).Name(); n != "Barrier" {
		t.Fatalf("Name = %q", n)
	}
}

func TestSinkRingWraparound(t *testing.T) {
	s := NewSink(4)
	for i := 0; i < 10; i++ {
		s.Add(Record{Cycle: uint64(i), Site: "cl0", Event: fmt.Sprintf("ev%d", i)})
	}
	if s.Total() != 10 {
		t.Fatalf("Total = %d, want 10", s.Total())
	}
	if s.Dropped() != 6 {
		t.Fatalf("Dropped = %d, want 6", s.Dropped())
	}
	recs := s.Records()
	if len(recs) != 4 {
		t.Fatalf("retained %d records, want 4", len(recs))
	}
	// Oldest first: cycles 6, 7, 8, 9.
	for i, r := range recs {
		if want := uint64(6 + i); r.Cycle != want {
			t.Fatalf("record %d cycle = %d, want %d", i, r.Cycle, want)
		}
	}
}

func TestSinkBelowCapacity(t *testing.T) {
	s := NewSink(0) // default capacity
	for i := 0; i < 100; i++ {
		s.Add(Record{Cycle: uint64(i)})
	}
	if s.Dropped() != 0 {
		t.Fatalf("Dropped = %d, want 0", s.Dropped())
	}
	recs := s.Records()
	if len(recs) != 100 || recs[0].Cycle != 0 || recs[99].Cycle != 99 {
		t.Fatalf("records wrong: len=%d", len(recs))
	}
}

func TestWriteTextMentionsDrops(t *testing.T) {
	s := NewSink(2)
	for i := 0; i < 5; i++ {
		s.Add(Record{Cycle: uint64(i), Site: "net", Event: "drop"})
	}
	var b bytes.Buffer
	if err := s.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "3 earlier records dropped") {
		t.Fatalf("drop notice missing:\n%s", out)
	}
	if n := strings.Count(out, "net"); n != 2 {
		t.Fatalf("%d record lines, want 2:\n%s", n, out)
	}
}

// chromeTrace mirrors the export schema for validation.
type chromeTrace struct {
	DisplayTimeUnit string `json:"displayTimeUnit"`
	TraceEvents     []struct {
		Name  string         `json:"name"`
		Cat   string         `json:"cat"`
		Phase string         `json:"ph"`
		TS    uint64         `json:"ts"`
		PID   int            `json:"pid"`
		TID   int            `json:"tid"`
		Scope string         `json:"s"`
		ID    string         `json:"id"`
		Args  map[string]any `json:"args"`
	} `json:"traceEvents"`
}

func TestWriteChromeJSON(t *testing.T) {
	s := NewSink(0)
	s.Add(Record{Cycle: 5, Site: "cl0", Event: "ReadReq line=0x40", ID: 0xabc, Phase: 'b'})
	s.Add(Record{Cycle: 9, Site: "home1", Event: "GrantS line=0x40"})
	s.Add(Record{Cycle: 12, Site: "cl0", Event: "settle line=0x40", ID: 0xabc, Phase: 'e'})

	var b bytes.Buffer
	if err := s.WriteChromeJSON(&b); err != nil {
		t.Fatal(err)
	}
	var tr chromeTrace
	if err := json.Unmarshal(b.Bytes(), &tr); err != nil {
		t.Fatalf("export is not valid JSON: %v\n%s", err, b.String())
	}
	if tr.DisplayTimeUnit != "ns" {
		t.Fatalf("displayTimeUnit = %q", tr.DisplayTimeUnit)
	}

	var threads []string
	var begins, ends, instants int
	for _, ev := range tr.TraceEvents {
		switch ev.Phase {
		case "M":
			if ev.Name != "thread_name" {
				t.Fatalf("unexpected metadata event %+v", ev)
			}
			threads = append(threads, ev.Args["name"].(string))
		case "b":
			begins++
			if ev.ID != "0xabc" || ev.Cat != "txn" {
				t.Fatalf("begin event wrong: %+v", ev)
			}
		case "e":
			ends++
			if ev.ID != "0xabc" {
				t.Fatalf("end event wrong: %+v", ev)
			}
		case "i":
			instants++
			if ev.Scope != "t" || ev.Name != "GrantS" || ev.TS != 9 {
				t.Fatalf("instant event wrong: %+v", ev)
			}
		default:
			t.Fatalf("unknown phase %q", ev.Phase)
		}
	}
	// Sites sorted: cl0 then home1.
	if len(threads) != 2 || threads[0] != "cl0" || threads[1] != "home1" {
		t.Fatalf("thread metadata wrong: %v", threads)
	}
	if begins != 1 || ends != 1 || instants != 1 {
		t.Fatalf("event mix wrong: %d begins, %d ends, %d instants", begins, ends, instants)
	}
}

func TestChromeJSONDeterministic(t *testing.T) {
	mk := func() string {
		s := NewSink(0)
		s.Add(Record{Cycle: 1, Site: "home2", Event: "a"})
		s.Add(Record{Cycle: 2, Site: "cl1", Event: "b"})
		var b bytes.Buffer
		if err := s.WriteChromeJSON(&b); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	if mk() != mk() {
		t.Fatal("repeated exports of the same records differ")
	}
}

func TestEdgeCatalogComplete(t *testing.T) {
	names := EdgeNames()
	if len(names) != EdgeCount {
		t.Fatalf("%d names for %d edges", len(names), EdgeCount)
	}
	seen := map[string]bool{}
	for i, name := range names {
		if name == "" || strings.HasPrefix(name, "edge(") {
			t.Fatalf("edge %d has no catalog name", i)
		}
		if seen[name] {
			t.Fatalf("duplicate edge name %q", name)
		}
		seen[name] = true
		prefix, _, ok := strings.Cut(name, ".")
		if !ok {
			t.Fatalf("edge name %q missing dotted group prefix", name)
		}
		switch prefix {
		case "msi", "dir", "l2", "coh", "rec":
		default:
			t.Fatalf("edge name %q has unknown group %q", name, prefix)
		}
	}
	if EdgeID(NumEdges).String() == "" {
		t.Fatal("out-of-range String must not be empty")
	}
}

func TestCoverageMarkAndUncovered(t *testing.T) {
	c := NewCoverage()
	if c.Covered() != 0 || len(c.Uncovered()) != EdgeCount {
		t.Fatal("fresh tracker not empty")
	}
	c.Mark(EdgeL2FillShared)
	c.Mark(EdgeL2FillShared)
	c.Mark(EdgeHomeReadMissAllocS)
	if c.Count(EdgeL2FillShared) != 2 {
		t.Fatalf("Count = %d", c.Count(EdgeL2FillShared))
	}
	if c.Covered() != 2 {
		t.Fatalf("Covered = %d", c.Covered())
	}
	for _, name := range c.Uncovered() {
		if name == EdgeL2FillShared.String() || name == EdgeHomeReadMissAllocS.String() {
			t.Fatalf("covered edge %q listed as uncovered", name)
		}
	}
}

func TestCoverageMerge(t *testing.T) {
	a, b := NewCoverage(), NewCoverage()
	a.Mark(EdgeL2FillShared)
	b.Mark(EdgeL2FillShared)
	b.Mark(EdgeCohToHWMerge)
	a.Merge(b)
	if a.Count(EdgeL2FillShared) != 2 || a.Count(EdgeCohToHWMerge) != 1 {
		t.Fatal("merge did not add counts")
	}
}

func TestCoverageReport(t *testing.T) {
	c := NewCoverage()
	c.Mark(EdgeHomeReadMissAllocS)
	rep := c.Report()
	if !strings.Contains(rep, "protocol edges covered: 1/") {
		t.Fatalf("summary line missing:\n%s", rep)
	}
	for _, g := range []string{"[msi]", "[dir]", "[l2]", "[coh]", "[rec]"} {
		if !strings.Contains(rep, g) {
			t.Fatalf("group header %s missing:\n%s", g, rep)
		}
	}
	if !strings.Contains(rep, "UNCOVERED") {
		t.Fatalf("uncovered marker missing:\n%s", rep)
	}
	if strings.Count(rep, "UNCOVERED") != EdgeCount-1 {
		t.Fatalf("wrong uncovered count:\n%s", rep)
	}
}
