// Package trace is the simulator's structured observability layer: one
// shared Record type for protocol events (used by the bounded post-mortem
// ring in internal/stats, the Debug mirrors in internal/core and
// internal/cluster, and the streaming Sink here), a bounded Sink that
// retains per-message lifecycle records and exports them as Chrome
// trace-event JSON or plain text, and a protocol-transition Coverage
// tracker (coverage.go) that turns "did we actually exercise the
// protocol?" into an asserted property.
//
// The package sits below internal/stats in the import graph and depends
// only on the standard library, so every component that already holds a
// *stats.Run can reach it without cycles.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Record is one protocol event. Site names the emitting component
// ("home3", "cl0", "net"); Event is the human-readable detail, whose
// first word doubles as the event name in Chrome exports. ID and Phase
// are set only on transaction-lifecycle records: Phase 'b' opens an
// async span when the L2 issues a request, 'e' closes it when the grant
// installs, and both carry the transaction ID so a viewer pairs them.
type Record struct {
	Cycle uint64 `json:"cycle"`
	Site  string `json:"site"`
	Event string `json:"event"`
	ID    uint64 `json:"id,omitempty"`
	Phase byte   `json:"ph,omitempty"`
}

// Name returns the record's short event name: the first word of Event.
func (r Record) Name() string {
	if i := strings.IndexByte(r.Event, ' '); i >= 0 {
		return r.Event[:i]
	}
	return r.Event
}

// String renders the record with the sim-time column always present,
// however many words the event detail has.
func (r Record) String() string {
	return fmt.Sprintf("%10d %-8s %s", r.Cycle, r.Site, r.Event)
}

// Sink is a bounded ring of Records fed by every traced component of one
// machine. When full the oldest records are overwritten, so after a run
// it holds the tail of the protocol history; Dropped reports how much of
// the head was lost. A Sink belongs to one simulation and is not
// goroutine-safe (the event loop is single-threaded).
type Sink struct {
	cap     int
	records []Record
	next    int
	total   uint64
}

// DefaultSinkCapacity bounds a sink when the caller does not choose one:
// large enough to hold every event of a small run, small enough that an
// instrumented sweep does not exhaust memory.
const DefaultSinkCapacity = 1 << 20

// NewSink builds a ring retaining up to capacity records (<=0 selects
// DefaultSinkCapacity).
func NewSink(capacity int) *Sink {
	if capacity <= 0 {
		capacity = DefaultSinkCapacity
	}
	return &Sink{cap: capacity}
}

// Add appends a record, evicting the oldest when full.
func (s *Sink) Add(r Record) {
	s.total++
	if len(s.records) < s.cap {
		s.records = append(s.records, r)
		return
	}
	s.records[s.next] = r
	s.next = (s.next + 1) % s.cap
}

// Total reports how many records were ever added.
func (s *Sink) Total() uint64 { return s.total }

// Dropped reports how many records were evicted from the ring.
func (s *Sink) Dropped() uint64 { return s.total - uint64(len(s.records)) }

// Records returns the retained records, oldest first.
func (s *Sink) Records() []Record {
	if len(s.records) < s.cap {
		out := make([]Record, len(s.records))
		copy(out, s.records)
		return out
	}
	out := make([]Record, 0, s.cap)
	out = append(out, s.records[s.next:]...)
	out = append(out, s.records[:s.next]...)
	return out
}

// WriteText writes the retained records as aligned text, one per line.
func (s *Sink) WriteText(w io.Writer) error {
	if d := s.Dropped(); d > 0 {
		if _, err := fmt.Fprintf(w, "... %d earlier records dropped ...\n", d); err != nil {
			return err
		}
	}
	for _, r := range s.Records() {
		if _, err := io.WriteString(w, r.String()+"\n"); err != nil {
			return err
		}
	}
	return nil
}

// chromeEvent is one entry of the Chrome trace-event JSON format
// (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU).
type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Phase string         `json:"ph"`
	TS    uint64         `json:"ts"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	ID    string         `json:"id,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// WriteChromeJSON writes the retained records in Chrome's trace-event
// JSON format (about://tracing and Perfetto both load it). One timeline
// thread per emitting site; timestamps are simulation cycles interpreted
// as microseconds. Instant records become thread-scoped instant events;
// lifecycle records (Phase 'b'/'e') become async begin/end pairs keyed by
// transaction ID, so each outstanding L2 transaction renders as a span
// from issue to install.
func (s *Sink) WriteChromeJSON(w io.Writer) error {
	records := s.Records()

	// Deterministic site -> tid mapping, sorted so repeated exports of the
	// same run are byte-identical.
	sites := make([]string, 0, 8)
	seen := make(map[string]int)
	for _, r := range records {
		if _, ok := seen[r.Site]; !ok {
			seen[r.Site] = 0
			sites = append(sites, r.Site)
		}
	}
	sort.Strings(sites)
	for i, site := range sites {
		seen[site] = i
	}

	events := make([]chromeEvent, 0, len(records)+len(sites))
	for i, site := range sites {
		events = append(events, chromeEvent{
			Name:  "thread_name",
			Phase: "M",
			PID:   0,
			TID:   i,
			Args:  map[string]any{"name": site},
		})
	}
	for _, r := range records {
		ev := chromeEvent{
			Name: r.Name(),
			Cat:  "protocol",
			TS:   r.Cycle,
			PID:  0,
			TID:  seen[r.Site],
			Args: map[string]any{"detail": r.Event},
		}
		switch r.Phase {
		case 'b', 'e':
			ev.Phase = string(rune(r.Phase))
			ev.Cat = "txn"
			ev.Name = "txn"
			ev.ID = fmt.Sprintf("%#x", r.ID)
		default:
			ev.Phase = "i"
			ev.Scope = "t"
		}
		events = append(events, ev)
	}

	enc := json.NewEncoder(w)
	return enc.Encode(map[string]any{
		"displayTimeUnit": "ns",
		"traceEvents":     events,
	})
}
