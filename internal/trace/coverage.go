package trace

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
)

// EdgeID identifies one legal transition of the protocol state machines:
// the MSI directory machine at the home banks (paper Fig 5), the
// Task-Centric SWcc states at the L2 (Fig 6), and the Cohesion
// domain-transition waits (Fig 7), plus the recovery paths of the fault
// layer. The catalog below is the authoritative edge list; PROTOCOL.md §7
// documents each name next to the state-machine walkthrough.
type EdgeID uint8

const (
	// --- MSI directory machine, home side (Fig 5 / PROTOCOL.md §3.2) ---
	EdgeHomeReadMissAllocS  EdgeID = iota // read/ifetch miss allocates a Shared entry
	EdgeHomeWriteMissAllocM               // write miss allocates a Modified entry
	EdgeHomeReadHitShared                 // read hit on S adds a sharer
	EdgeHomeReadRecallsM                  // read hit on M recalls the owner's dirty line
	EdgeHomeWriteRecallsM                 // write hit on M (other owner) recalls then re-grants
	EdgeHomeUpgradeDataless               // S->M upgrade for an existing sharer (no data)
	EdgeHomeUpgradeData                   // S->M upgrade for a non-sharer (data grant)
	EdgeHomeUpgradeInv                    // S->M upgrade invalidates the other sharers
	EdgeHomeEvictMerge                    // dirty eviction merges with no txn in flight
	EdgeHomeEvictDuringTxn                // dirty eviction lands inside an open txn
	EdgeHomeReadRelSharer                 // read release removes one of several sharers
	EdgeHomeReadRelDealloc                // read release empties the sharer set; entry freed
	EdgeHomeRecallWBData                  // ProbeWB returned the owner's dirty data
	EdgeHomeRecallWBAbsent                // ProbeWB found line absent; eviction already merged
	EdgeHomeRecallInv                     // recall invalidates a Shared entry's sharers
	EdgeHomeAtomicRecall                  // atomic/uncached op recalls a tracked line first
	EdgeHomeUncachedAtL3                  // atomic/uncached op served at the L3

	// --- Directory storage (sparse capacity, Dir4B pointers) ---
	EdgeDirCapacityEvict    // full set: LRU victim recalled to make room
	EdgeDirCapacityNack     // every way pinned: requester NACKed (DirNackOnCapacity)
	EdgeDirAllocRetryPinned // every way pinned: silent retry until one drains
	EdgeDirOverflowBcast    // Dir4B fifth sharer sets the broadcast bit
	EdgeDirBroadcastProbe   // probe fan-out used the broadcast (imprecise) set

	// --- Task-Centric SWcc + MSI, L2 side (Fig 6 / PROTOCOL.md §3.3) ---
	EdgeL2FillShared         // GrantShared fill installs a coherent S line
	EdgeL2FillModified       // GrantModified fill installs a coherent M line
	EdgeL2UpgradeDataless    // dataless GrantModified upgrades S in place
	EdgeL2MergeFill          // fill merges fetched words under local dirty words
	EdgeL2FillIncoherent     // GrantIncoherent installs a SWcc line
	EdgeL2StoreHitModified   // store hit on an M line
	EdgeL2StoreHitIncoherent // store hit on an incoherent (SWcc) line
	EdgeL2WriteAllocate      // pure-SWcc store miss write-allocates locally
	EdgeL2EvictDirtyHW       // replacement writes back a dirty M line
	EdgeL2EvictDirtyIncoh    // replacement writes back a dirty incoherent line
	EdgeL2EvictReadRel       // replacement releases a clean S line (read release)
	EdgeL2EvictSilent        // replacement drops a clean incoherent line silently
	EdgeL2FlushDirty         // WB instruction writes dirty words back
	EdgeL2FlushClean         // WB instruction found the line resident but clean
	EdgeL2FlushAbsent        // WB instruction found the line absent (wasted, Fig 3)
	EdgeL2InvDrop            // INV instruction dropped a resident line
	EdgeL2InvAbsent          // INV instruction found the line absent (wasted, Fig 3)
	EdgeL2MSHRStall          // all MSHRs busy: miss stalls until one drains
	EdgeL2ProbeInvClean      // ProbeInv invalidated a clean copy (ack)
	EdgeL2ProbeInvAbsent     // ProbeInv found the line absent
	EdgeL2ProbeWBData        // ProbeWB wrote the resident copy back
	EdgeL2ProbeWBAbsent      // ProbeWB found the line absent (eviction in flight)

	// --- Cohesion domain transitions (Fig 7 / PROTOCOL.md §3.4-3.6) ---
	EdgeCohDomainCoarse    // domain lookup answered by the coarse region table
	EdgeCohDomainFineSW    // fine-table bit read: line is SWcc
	EdgeCohDomainFineHW    // fine-table bit read: line is HWcc
	EdgeCohGrantIncoherent // SWcc-domain request granted incoherent
	EdgeCohToSWNoEntry     // HW=>SW with no directory entry (Case 1a)
	EdgeCohToSWInvShared   // HW=>SW invalidates a Shared entry (Case 2a)
	EdgeCohToSWRecallM     // HW=>SW recalls a Modified owner (Case 3a)
	EdgeCohToHWUncached    // SW=>HW capture found the line nowhere (Case 1b)
	EdgeCohToHWClean       // SW=>HW captured clean copies as sharers (Case 2b)
	EdgeCohToHWMerge       // SW=>HW wrote back and merged dirty copies (Case 3b)
	EdgeCohToHWUpgrade     // SW=>HW upgraded a single dirty owner in place (Case 4b)
	EdgeCohToHWOverlap     // SW=>HW found overlapping dirty words (Case 5b race)
	EdgeCohToHWRecallFirst // SW=>HW tore down a racing HW entry pre-broadcast
	EdgeCohWaitsTxn        // transition waited for a request txn on the line
	EdgeL2CaptureAbsent    // ProbeCapture: line not present
	EdgeL2CaptureClean     // ProbeCapture: clean copy becomes a hardware sharer
	EdgeL2CaptureDirty     // ProbeCapture: dirty words reported for phase two
	EdgeL2CaptureUpgrade   // ProbeUpgradeOwner applied (incoherent -> M)

	// --- Fault injection + protocol recovery ---
	EdgeRecNetDrop      // a retryable request was dropped in flight
	EdgeRecNetDup       // a retryable request was delivered twice
	EdgeRecHomeDupDrop  // home dedup discarded a duplicate delivery
	EdgeRecNackInjected // home sent an injected allocation NACK
	EdgeRecNackBackoff  // L2 backed off and retransmitted after a NACK
	EdgeRecTimeoutRetry // L2 retransmitted after a response timeout

	NumEdges // count; not an edge
)

// edgeNames maps every EdgeID to its stable catalog name, grouped by a
// dotted prefix: msi.* (directory MSI), dir.* (directory storage), l2.*
// (L2-side SWcc/MSI/capture), coh.* (Cohesion transitions), rec.*
// (fault recovery). These names appear in PROTOCOL.md §7 and in
// coverage reports; renaming one is a documentation change too.
var edgeNames = [NumEdges]string{
	EdgeHomeReadMissAllocS:  "msi.read_miss_alloc_s",
	EdgeHomeWriteMissAllocM: "msi.write_miss_alloc_m",
	EdgeHomeReadHitShared:   "msi.read_hit_add_sharer",
	EdgeHomeReadRecallsM:    "msi.read_recalls_modified",
	EdgeHomeWriteRecallsM:   "msi.write_recalls_modified",
	EdgeHomeUpgradeDataless: "msi.upgrade_sharer_dataless",
	EdgeHomeUpgradeData:     "msi.upgrade_nonsharer_data",
	EdgeHomeUpgradeInv:      "msi.upgrade_invalidates_sharers",
	EdgeHomeEvictMerge:      "msi.evict_merge",
	EdgeHomeEvictDuringTxn:  "msi.evict_during_txn",
	EdgeHomeReadRelSharer:   "msi.readrel_remove_sharer",
	EdgeHomeReadRelDealloc:  "msi.readrel_dealloc",
	EdgeHomeRecallWBData:    "msi.recall_wb_data",
	EdgeHomeRecallWBAbsent:  "msi.recall_wb_absorbed",
	EdgeHomeRecallInv:       "msi.recall_inv_sharers",
	EdgeHomeAtomicRecall:    "msi.atomic_recalls_tracked",
	EdgeHomeUncachedAtL3:    "msi.uncached_at_l3",

	EdgeDirCapacityEvict:    "dir.capacity_evict",
	EdgeDirCapacityNack:     "dir.capacity_nack",
	EdgeDirAllocRetryPinned: "dir.alloc_retry_pinned",
	EdgeDirOverflowBcast:    "dir.limited_overflow_broadcast",
	EdgeDirBroadcastProbe:   "dir.broadcast_probe",

	EdgeL2FillShared:         "l2.fill_shared",
	EdgeL2FillModified:       "l2.fill_modified",
	EdgeL2UpgradeDataless:    "l2.upgrade_dataless",
	EdgeL2MergeFill:          "l2.partial_merge_fill",
	EdgeL2FillIncoherent:     "l2.fill_incoherent",
	EdgeL2StoreHitModified:   "l2.store_hit_modified",
	EdgeL2StoreHitIncoherent: "l2.store_hit_incoherent",
	EdgeL2WriteAllocate:      "l2.swcc_write_allocate",
	EdgeL2EvictDirtyHW:       "l2.evict_dirty_hw",
	EdgeL2EvictDirtyIncoh:    "l2.evict_dirty_incoherent",
	EdgeL2EvictReadRel:       "l2.evict_clean_readrel",
	EdgeL2EvictSilent:        "l2.evict_silent",
	EdgeL2FlushDirty:         "l2.flush_dirty",
	EdgeL2FlushClean:         "l2.flush_clean",
	EdgeL2FlushAbsent:        "l2.flush_absent",
	EdgeL2InvDrop:            "l2.inv_drop",
	EdgeL2InvAbsent:          "l2.inv_absent",
	EdgeL2MSHRStall:          "l2.mshr_stall",
	EdgeL2ProbeInvClean:      "l2.probe_inv_clean",
	EdgeL2ProbeInvAbsent:     "l2.probe_inv_absent",
	EdgeL2ProbeWBData:        "l2.probe_wb_data",
	EdgeL2ProbeWBAbsent:      "l2.probe_wb_absent",

	EdgeCohDomainCoarse:    "coh.domain_coarse",
	EdgeCohDomainFineSW:    "coh.domain_fine_swcc",
	EdgeCohDomainFineHW:    "coh.domain_fine_hwcc",
	EdgeCohGrantIncoherent: "coh.grant_incoherent",
	EdgeCohToSWNoEntry:     "coh.tosw_no_entry",
	EdgeCohToSWInvShared:   "coh.tosw_inv_shared",
	EdgeCohToSWRecallM:     "coh.tosw_recall_modified",
	EdgeCohToHWUncached:    "coh.tohw_uncached",
	EdgeCohToHWClean:       "coh.tohw_clean_sharers",
	EdgeCohToHWMerge:       "coh.tohw_writeback_merge",
	EdgeCohToHWUpgrade:     "coh.tohw_upgrade_owner",
	EdgeCohToHWOverlap:     "coh.tohw_overlap_race",
	EdgeCohToHWRecallFirst: "coh.tohw_recall_first",
	EdgeCohWaitsTxn:        "coh.transition_waits_txn",
	EdgeL2CaptureAbsent:    "l2.capture_absent",
	EdgeL2CaptureClean:     "l2.capture_clean",
	EdgeL2CaptureDirty:     "l2.capture_dirty",
	EdgeL2CaptureUpgrade:   "l2.capture_upgrade_owner",

	EdgeRecNetDrop:      "rec.net_drop",
	EdgeRecNetDup:       "rec.net_dup",
	EdgeRecHomeDupDrop:  "rec.home_dup_drop",
	EdgeRecNackInjected: "rec.nack_injected",
	EdgeRecNackBackoff:  "rec.nack_backoff",
	EdgeRecTimeoutRetry: "rec.timeout_retry",
}

// String returns the edge's stable catalog name.
func (e EdgeID) String() string {
	if int(e) < len(edgeNames) && edgeNames[e] != "" {
		return edgeNames[e]
	}
	return fmt.Sprintf("edge(%d)", uint8(e))
}

// EdgeCount is the number of registered protocol edges.
const EdgeCount = int(NumEdges)

// EdgeNames lists every registered edge name in catalog order.
func EdgeNames() []string {
	out := make([]string, NumEdges)
	for i := range out {
		out[i] = EdgeID(i).String()
	}
	return out
}

// Coverage counts how often each protocol edge fired. Marks are atomic so
// one Coverage can aggregate across simulations running on parallel test
// or fuzz workers; everything else is read-side only.
type Coverage struct {
	counts [NumEdges]atomic.Uint64
}

// NewCoverage returns an empty tracker.
func NewCoverage() *Coverage { return &Coverage{} }

// Mark records one firing of edge e.
func (c *Coverage) Mark(e EdgeID) { c.counts[e].Add(1) }

// Count reports how often edge e fired.
func (c *Coverage) Count(e EdgeID) uint64 { return c.counts[e].Load() }

// Covered reports how many registered edges fired at least once.
func (c *Coverage) Covered() int {
	n := 0
	for i := range c.counts {
		if c.counts[i].Load() > 0 {
			n++
		}
	}
	return n
}

// Total reports the number of registered edges.
func (c *Coverage) Total() int { return EdgeCount }

// Uncovered lists the names of edges that never fired, sorted.
func (c *Coverage) Uncovered() []string {
	var out []string
	for i := range c.counts {
		if c.counts[i].Load() == 0 {
			out = append(out, EdgeID(i).String())
		}
	}
	sort.Strings(out)
	return out
}

// CountsByName exports every fired edge's count keyed by its stable
// catalog name. Checkpoints persist this map (names survive edge-ID
// renumbering across versions) and self-checks compare it to prove a
// resumed run marked the same edges the straight-through run did.
func (c *Coverage) CountsByName() map[string]uint64 {
	out := make(map[string]uint64)
	for i := range c.counts {
		if n := c.counts[i].Load(); n > 0 {
			out[EdgeID(i).String()] = n
		}
	}
	return out
}

// MergeNamed adds previously exported counts back into c. Names no
// longer in the catalog are returned rather than silently dropped.
func (c *Coverage) MergeNamed(counts map[string]uint64) (unknown []string) {
	byName := make(map[string]int, EdgeCount)
	for i := 0; i < EdgeCount; i++ {
		byName[EdgeID(i).String()] = i
	}
	for name, n := range counts {
		i, ok := byName[name]
		if !ok {
			unknown = append(unknown, name)
			continue
		}
		c.counts[i].Add(n)
	}
	sort.Strings(unknown)
	return unknown
}

// Merge adds another tracker's counts into c.
func (c *Coverage) Merge(o *Coverage) {
	for i := range c.counts {
		if n := o.counts[i].Load(); n > 0 {
			c.counts[i].Add(n)
		}
	}
}

// Report renders the per-edge counts grouped by prefix, uncovered edges
// marked, with a covered/total summary line first.
func (c *Coverage) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "protocol edges covered: %d/%d\n", c.Covered(), c.Total())
	group := ""
	for i := 0; i < EdgeCount; i++ {
		name := EdgeID(i).String()
		g, _, _ := strings.Cut(name, ".")
		if g != group {
			group = g
			fmt.Fprintf(&b, "[%s]\n", group)
		}
		n := c.counts[i].Load()
		mark := ""
		if n == 0 {
			mark = "  <-- UNCOVERED"
		}
		fmt.Fprintf(&b, "  %-34s %10d%s\n", name, n, mark)
	}
	return b.String()
}
