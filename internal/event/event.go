// Package event provides the deterministic discrete-event simulation engine
// that drives the Cohesion machine model.
//
// The engine is a binary-heap priority queue of (cycle, sequence, fn)
// triples. Events scheduled for the same cycle fire in the order they were
// scheduled, which makes every simulation run bit-for-bit reproducible: the
// machine model is single-threaded and all nondeterminism is confined to
// explicitly seeded PRNGs in workload generators.
package event

import "container/heap"

// Cycle is a point in simulated time, measured in core clock cycles.
type Cycle uint64

// Func is the body of a scheduled event. It runs exactly once, at the cycle
// it was scheduled for.
type Func func()

type item struct {
	at  Cycle
	seq uint64
	fn  Func
}

type eventHeap []item

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *eventHeap) Push(x any) { *h = append(*h, x.(item)) }

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	old[n-1] = item{}
	*h = old[:n-1]
	return it
}

// Queue is a discrete-event scheduler. The zero value is ready to use.
type Queue struct {
	h    eventHeap
	now  Cycle
	seq  uint64
	fire uint64
}

// Now reports the current simulated cycle: the cycle of the event being
// executed, or of the last executed event when called between events.
func (q *Queue) Now() Cycle { return q.now }

// Fired reports how many events have been executed so far.
func (q *Queue) Fired() uint64 { return q.fire }

// Pending reports how many events are scheduled but not yet executed.
func (q *Queue) Pending() int { return len(q.h) }

// At schedules fn to run at absolute cycle at. Scheduling in the past
// (at < Now) panics: it indicates a broken latency computation in the
// machine model, and silently reordering time would corrupt every
// downstream measurement.
func (q *Queue) At(at Cycle, fn Func) {
	if at < q.now {
		panic("event: scheduled in the past")
	}
	q.seq++
	heap.Push(&q.h, item{at: at, seq: q.seq, fn: fn})
}

// After schedules fn to run delay cycles from now.
func (q *Queue) After(delay Cycle, fn Func) {
	q.At(q.now+delay, fn)
}

// Step executes the single earliest pending event and reports whether one
// existed.
func (q *Queue) Step() bool {
	if len(q.h) == 0 {
		return false
	}
	it := heap.Pop(&q.h).(item)
	q.now = it.at
	q.fire++
	it.fn()
	return true
}

// Run executes events until the queue drains or the limit on executed
// events is reached. A limit of 0 means no limit. It returns the number of
// events executed by this call and whether the queue drained.
func (q *Queue) Run(limit uint64) (executed uint64, drained bool) {
	for {
		if limit != 0 && executed >= limit {
			return executed, false
		}
		if !q.Step() {
			return executed, true
		}
		executed++
	}
}

// RunUntil executes events with Now <= deadline. Events scheduled beyond
// the deadline remain pending. It reports whether the queue drained.
func (q *Queue) RunUntil(deadline Cycle) (drained bool) {
	for len(q.h) > 0 && q.h[0].at <= deadline {
		q.Step()
	}
	return len(q.h) == 0
}
