// Package event provides the deterministic discrete-event simulation engine
// that drives the Cohesion machine model.
//
// The engine is a 4-ary min-heap of (cycle, sequence, fn) triples over a
// reusable backing slice. Events scheduled for the same cycle fire in the
// order they were scheduled, which makes every simulation run bit-for-bit
// reproducible: the machine model is single-threaded and all nondeterminism
// is confined to explicitly seeded PRNGs in workload generators.
//
// The heap is inlined rather than built on container/heap: the standard
// interface forces every Push and Pop through an `any` boxing allocation,
// which on the simulator's hot path (one event per modelled latency) made
// the engine the dominant source of garbage. The generic heap below keeps
// items in a flat slice that is reused across events, so scheduling and
// firing allocate nothing in steady state. A 4-ary layout halves the tree
// depth of a binary heap and keeps the children of a node in one or two
// cache lines, which measures faster for the queue sizes simulations reach.
package event

// Cycle is a point in simulated time, measured in core clock cycles.
type Cycle uint64

// Func is the body of a scheduled event. It runs exactly once, at the cycle
// it was scheduled for.
type Func func()

type item struct {
	at  Cycle
	seq uint64
	fn  Func
}

// less orders items by cycle, ties broken by scheduling order. (at, seq)
// pairs are unique, so the order is total and any correct heap pops the
// exact same sequence — the determinism witness the tests pin down.
func (it item) less(o item) bool {
	return it.at < o.at || (it.at == o.at && it.seq < o.seq)
}

// ordered is the constraint for heap4 elements: a strict weak ordering on
// the concrete type. Instantiating the heap over a concrete type lets the
// compiler devirtualize and inline every comparison.
type ordered[T any] interface{ less(T) bool }

// heap4 is an inlined 4-ary min-heap over a reusable backing slice. The
// zero value is ready to use. It never shrinks its backing array, so in
// steady state push and pop perform no allocation.
type heap4[T ordered[T]] struct {
	s []T
}

func (h *heap4[T]) len() int { return len(h.s) }

// push inserts v, sifting it up toward the root.
func (h *heap4[T]) push(v T) {
	h.s = append(h.s, v)
	s := h.s
	i := len(s) - 1
	for i > 0 {
		p := (i - 1) >> 2
		if !v.less(s[p]) {
			break
		}
		s[i] = s[p]
		i = p
	}
	s[i] = v
}

// pop removes and returns the minimum. The caller must ensure the heap is
// non-empty. The vacated tail slot is zeroed so popped events release
// their closures to the collector.
func (h *heap4[T]) pop() T {
	s := h.s
	min := s[0]
	n := len(s) - 1
	v := s[n]
	var zero T
	s[n] = zero
	h.s = s[:n]
	if n > 0 {
		h.siftDown(v)
	}
	return min
}

// siftDown places v, conceptually at the root, into its final position.
func (h *heap4[T]) siftDown(v T) {
	s := h.s
	n := len(s)
	i := 0
	for {
		c := i<<2 + 1 // first child
		if c >= n {
			break
		}
		m := c // index of the smallest child
		end := c + 4
		if end > n {
			end = n
		}
		for j := c + 1; j < end; j++ {
			if s[j].less(s[m]) {
				m = j
			}
		}
		if !s[m].less(v) {
			break
		}
		s[i] = s[m]
		i = m
	}
	s[i] = v
}

// Queue is a discrete-event scheduler. The zero value is ready to use.
type Queue struct {
	h    heap4[item]
	now  Cycle
	seq  uint64
	fire uint64
}

// Now reports the current simulated cycle: the cycle of the event being
// executed, or of the last executed event when called between events.
func (q *Queue) Now() Cycle { return q.now }

// Fired reports how many events have been executed so far.
func (q *Queue) Fired() uint64 { return q.fire }

// Pending reports how many events are scheduled but not yet executed.
func (q *Queue) Pending() int { return q.h.len() }

// At schedules fn to run at absolute cycle at. Scheduling in the past
// (at < Now) panics: it indicates a broken latency computation in the
// machine model, and silently reordering time would corrupt every
// downstream measurement.
func (q *Queue) At(at Cycle, fn Func) {
	if at < q.now {
		panic("event: scheduled in the past")
	}
	q.seq++
	q.h.push(item{at: at, seq: q.seq, fn: fn})
}

// After schedules fn to run delay cycles from now.
func (q *Queue) After(delay Cycle, fn Func) {
	q.At(q.now+delay, fn)
}

// Step executes the single earliest pending event and reports whether one
// existed.
func (q *Queue) Step() bool {
	if q.h.len() == 0 {
		return false
	}
	it := q.h.pop()
	q.now = it.at
	q.fire++
	it.fn()
	return true
}

// Run executes events until the queue drains or the limit on executed
// events is reached. A limit of 0 means no limit. It returns the number of
// events executed by this call and whether the queue drained. The drain
// loop pops inline rather than calling Step per event, so the engine's
// hot loop is a single function with no per-event call overhead.
func (q *Queue) Run(limit uint64) (executed uint64, drained bool) {
	for {
		if limit != 0 && executed >= limit {
			return executed, false
		}
		if q.h.len() == 0 {
			return executed, true
		}
		it := q.h.pop()
		q.now = it.at
		q.fire++
		it.fn()
		executed++
	}
}

// RunUntil executes events with Now <= deadline. Events scheduled beyond
// the deadline remain pending. It reports whether the queue drained.
func (q *Queue) RunUntil(deadline Cycle) (drained bool) {
	for q.h.len() > 0 && q.h.s[0].at <= deadline {
		it := q.h.pop()
		q.now = it.at
		q.fire++
		it.fn()
	}
	return q.h.len() == 0
}
