// Package event provides the deterministic discrete-event simulation engine
// that drives the Cohesion machine model.
//
// The engine is a timing wheel backed by an overflow min-heap. Profiling
// showed the previous pure-heap design spending ~25% of whole-simulation
// CPU in sift/compare traffic: a simulation schedules almost every event a
// short, bounded latency ahead (cache and interconnect hops of a few
// cycles, DRAM accesses of a few hundred), so the O(log n) reordering work
// of a heap buys generality the workload never uses. The wheel makes the
// common case O(1): events within the wheel horizon are appended to the
// FIFO slot of their cycle, and because every slot holds exactly one cycle
// (the horizon equals the slot count), append order IS schedule order — the
// same (cycle, sequence) total order the heap maintained, witnessed by the
// conformance suite against the original container/heap implementation.
//
// Events beyond the horizon (retry timeouts, watchdog ticks, statistics
// samples) go to a small 4-ary overflow heap and migrate into the wheel as
// simulated time approaches them. Migration is eager — it happens whenever
// Now advances — which preserves the global ordering invariant: an overflow
// event always enters its slot before any same-cycle event can be scheduled
// directly, so slot FIFO order never contradicts sequence order.
//
// Events scheduled for the same cycle fire in the order they were
// scheduled, which makes every simulation run bit-for-bit reproducible: the
// machine model is single-threaded and all nondeterminism is confined to
// explicitly seeded PRNGs in workload generators. Scheduling and firing
// allocate nothing in steady state: slots and the overflow heap reuse their
// backing arrays.
package event

import "math/bits"

// Cycle is a point in simulated time, measured in core clock cycles.
type Cycle uint64

// Func is the body of a scheduled event. It runs exactly once, at the cycle
// it was scheduled for.
type Func func()

type item struct {
	at  Cycle
	seq uint64
	fn  Func
}

// less orders items by cycle, ties broken by scheduling order. (at, seq)
// pairs are unique, so the order is total and any correct heap pops the
// exact same sequence — the determinism witness the tests pin down.
func (it item) less(o item) bool {
	return it.at < o.at || (it.at == o.at && it.seq < o.seq)
}

// ordered is the constraint for heap4 elements: a strict weak ordering on
// the concrete type. Instantiating the heap over a concrete type lets the
// compiler devirtualize and inline every comparison.
type ordered[T any] interface{ less(T) bool }

// heap4 is an inlined 4-ary min-heap over a reusable backing slice. The
// zero value is ready to use. It never shrinks its backing array, so in
// steady state push and pop perform no allocation.
type heap4[T ordered[T]] struct {
	s []T
}

func (h *heap4[T]) len() int { return len(h.s) }

// push inserts v, sifting it up toward the root.
func (h *heap4[T]) push(v T) {
	h.s = append(h.s, v)
	s := h.s
	i := len(s) - 1
	for i > 0 {
		p := (i - 1) >> 2
		if !v.less(s[p]) {
			break
		}
		s[i] = s[p]
		i = p
	}
	s[i] = v
}

// pop removes and returns the minimum. The caller must ensure the heap is
// non-empty. The vacated tail slot is zeroed so popped events release
// their closures to the collector.
func (h *heap4[T]) pop() T {
	s := h.s
	min := s[0]
	n := len(s) - 1
	v := s[n]
	var zero T
	s[n] = zero
	h.s = s[:n]
	if n > 0 {
		h.siftDown(v)
	}
	return min
}

// siftDown places v, conceptually at the root, into its final position.
func (h *heap4[T]) siftDown(v T) {
	s := h.s
	n := len(s)
	i := 0
	for {
		c := i<<2 + 1 // first child
		if c >= n {
			break
		}
		m := c // index of the smallest child
		end := c + 4
		if end > n {
			end = n
		}
		for j := c + 1; j < end; j++ {
			if s[j].less(s[m]) {
				m = j
			}
		}
		if !s[m].less(v) {
			break
		}
		s[i] = s[m]
		i = m
	}
	s[i] = v
}

// Wheel geometry. The horizon must comfortably cover the machine model's
// common latencies (cache stages of 1-30 cycles, interconnect hops of a
// few, DRAM accesses of a few hundred, NACK backoff up to ~6400); only
// rare long timers (retry timeouts at 25000, statistics samples) overflow
// to the heap.
const (
	wheelBits = 13
	wheelSize = 1 << wheelBits
	wheelMask = wheelSize - 1
)

// slot holds the events of exactly one cycle within the wheel horizon, in
// schedule order. fns[:next] have fired; fns[next:] are pending. The
// backing array is retained across reuse.
type slot struct {
	at   Cycle
	next int
	fns  []Func
}

// Queue is a discrete-event scheduler. The zero value is ready to use.
type Queue struct {
	now  Cycle
	seq  uint64
	fire uint64

	pending int // scheduled but not yet executed, wheel + far

	// cur is the slot index currently being drained (its cycle is now),
	// or -1 when no drain is in progress. Same-cycle events scheduled
	// while draining append to the live slot and fire this cycle.
	cur int

	slots [wheelSize]slot
	occ   [wheelSize / 64]uint64 // bit per slot: has pending events

	// slotMem is the initial backing store for every slot's fns array,
	// carved out in one allocation on first use. Without it, a fresh
	// queue pays one append-growth allocation per slot it touches —
	// tens of thousands of small allocations front-loaded into short
	// runs, which the hot-path allocation gate rightly rejects. Slots
	// that outgrow their initial capacity reallocate individually.
	slotMem []Func

	far heap4[item] // events at >= now+wheelSize, ordered by (at, seq)
}

// slotCap0 is each slot's initial event capacity; busy cycles beyond it
// grow their slot's array through the normal append path. Sized above
// the busiest per-cycle burst any kernel reaches at bench scale (17, on
// dmm/gjk): below that, thousands of slots pay one growth allocation per
// fresh queue, which reads as a per-run allocation regression even
// though each is one-time.
const slotCap0 = 24

// initWheel carves every slot's initial fns array out of one backing
// allocation.
func (q *Queue) initWheel() {
	q.slotMem = make([]Func, wheelSize*slotCap0)
	for i := range q.slots {
		q.slots[i].fns = q.slotMem[i*slotCap0 : i*slotCap0 : (i+1)*slotCap0]
	}
}

// Now reports the current simulated cycle: the cycle of the event being
// executed, or of the last executed event when called between events.
func (q *Queue) Now() Cycle { return q.now }

// Fired reports how many events have been executed so far.
func (q *Queue) Fired() uint64 { return q.fire }

// Pending reports how many events are scheduled but not yet executed.
func (q *Queue) Pending() int { return q.pending }

// At schedules fn to run at absolute cycle at. Scheduling in the past
// (at < Now) panics: it indicates a broken latency computation in the
// machine model, and silently reordering time would corrupt every
// downstream measurement.
func (q *Queue) At(at Cycle, fn Func) {
	if at < q.now {
		panic("event: scheduled in the past")
	}
	q.seq++
	q.pending++
	if q.slotMem == nil {
		q.initWheel()
	}
	if at-q.now < wheelSize {
		s := &q.slots[at&wheelMask]
		s.at = at
		s.fns = append(s.fns, fn)
		q.occ[(at&wheelMask)>>6] |= 1 << (at & 63)
		return
	}
	q.far.push(item{at: at, seq: q.seq, fn: fn})
}

// After schedules fn to run delay cycles from now.
func (q *Queue) After(delay Cycle, fn Func) {
	q.At(q.now+delay, fn)
}

// migrate moves overflow events whose cycle has entered the wheel horizon
// into their slots. Called whenever now advances, before any event at the
// newly covered cycles can fire or be scheduled, so heap pop order (which
// is sequence order) becomes slot FIFO order.
func (q *Queue) migrate() {
	for q.far.len() > 0 && q.far.s[0].at-q.now < wheelSize {
		it := q.far.pop()
		s := &q.slots[it.at&wheelMask]
		s.at = it.at
		s.fns = append(s.fns, it.fn)
		q.occ[(it.at&wheelMask)>>6] |= 1 << (it.at & 63)
	}
}

// release retires an exhausted slot: clears its occupancy bit, zeroes the
// fn pointers so fired closures are collectable, and rewinds the backing
// array for reuse.
func (q *Queue) release(i int) {
	s := &q.slots[i]
	fns := s.fns
	for j := range fns {
		fns[j] = nil
	}
	s.fns = fns[:0]
	s.next = 0
	q.occ[i>>6] &^= 1 << (i & 63)
	if q.cur == i {
		q.cur = -1
	}
}

// scan returns the index of the first occupied slot at or after cycle
// `from` in circular order, or -1 if the wheel is empty. Slot cycles are
// within [now, now+wheelSize), so circular order from slot(from) is cycle
// order.
func (q *Queue) scan(from Cycle) int {
	start := int(from & wheelMask)
	w := start >> 6
	// First word: mask off slots before the start bit.
	if word := q.occ[w] &^ (1<<(start&63) - 1); word != 0 {
		return w<<6 + bits.TrailingZeros64(word)
	}
	// Remaining words in circular order; the loop's final iteration
	// revisits the first word, whose high bits are known clear, so any
	// hit there is a correctly wrapped low bit.
	for k := 1; k <= len(q.occ); k++ {
		i := (w + k) & (len(q.occ) - 1)
		if word := q.occ[i]; word != 0 {
			return i<<6 + bits.TrailingZeros64(word)
		}
	}
	return -1
}

// next dequeues the earliest pending event, advancing now to its cycle.
// ok is false when the queue is empty. The hot path — more events in the
// slot being drained — is a bounds check and an increment.
func (q *Queue) next() (fn Func, ok bool) {
	if q.cur >= 0 {
		s := &q.slots[q.cur]
		if s.next < len(s.fns) {
			fn = s.fns[s.next]
			s.next++
			q.pending--
			return fn, true
		}
		q.release(q.cur)
	}
	if i := q.scan(q.now); i >= 0 {
		s := &q.slots[i]
		q.cur = i
		if s.at != q.now {
			q.now = s.at
			q.migrate()
		}
		fn = s.fns[s.next]
		s.next++
		q.pending--
		return fn, true
	}
	if q.far.len() > 0 {
		it := q.far.pop()
		q.now = it.at
		q.migrate()
		q.pending--
		return it.fn, true
	}
	return fn, false
}

// peekAt reports the cycle of the earliest pending event. It retires an
// exhausted current slot as a side effect (pure bookkeeping; no event
// fires and now does not move).
func (q *Queue) peekAt() (Cycle, bool) {
	if q.cur >= 0 {
		s := &q.slots[q.cur]
		if s.next < len(s.fns) {
			return s.at, true
		}
		q.release(q.cur)
	}
	if i := q.scan(q.now); i >= 0 {
		return q.slots[i].at, true
	}
	if q.far.len() > 0 {
		return q.far.s[0].at, true
	}
	return 0, false
}

// Step executes the single earliest pending event and reports whether one
// existed.
func (q *Queue) Step() bool {
	fn, ok := q.next()
	if !ok {
		return false
	}
	q.fire++
	fn()
	return true
}

// Run executes events until the queue drains or the limit on executed
// events is reached. A limit of 0 means no limit. It returns the number of
// events executed by this call and whether the queue drained.
func (q *Queue) Run(limit uint64) (executed uint64, drained bool) {
	for {
		if limit != 0 && executed >= limit {
			return executed, false
		}
		fn, ok := q.next()
		if !ok {
			return executed, true
		}
		q.fire++
		fn()
		executed++
	}
}

// RunUntil executes events with Now <= deadline. Events scheduled beyond
// the deadline remain pending. It reports whether the queue drained.
func (q *Queue) RunUntil(deadline Cycle) (drained bool) {
	for {
		at, ok := q.peekAt()
		if !ok {
			return true
		}
		if at > deadline {
			return false
		}
		fn, _ := q.next()
		q.fire++
		fn()
	}
}
