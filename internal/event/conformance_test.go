package event

import (
	"container/heap"
	"math/rand"
	"testing"
)

// refQueue is the engine's original implementation — container/heap over
// interface-boxed items — kept here as the semantic reference. The
// production queue must fire the exact same (cycle, order) sequence for any
// interleaving of At, After, Step, Run, and RunUntil.
type refQueue struct {
	h    refHeap
	now  Cycle
	seq  uint64
	fire uint64
}

type refItem struct {
	at  Cycle
	seq uint64
	fn  Func
}

type refHeap []refItem

func (h refHeap) Len() int { return len(h) }
func (h refHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h refHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *refHeap) Push(x any)   { *h = append(*h, x.(refItem)) }
func (h *refHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	old[n-1] = refItem{}
	*h = old[:n-1]
	return it
}

func (q *refQueue) Now() Cycle    { return q.now }
func (q *refQueue) Fired() uint64 { return q.fire }

func (q *refQueue) At(at Cycle, fn Func) {
	if at < q.now {
		panic("event: scheduled in the past")
	}
	q.seq++
	heap.Push(&q.h, refItem{at: at, seq: q.seq, fn: fn})
}

func (q *refQueue) After(delay Cycle, fn Func) { q.At(q.now+delay, fn) }

func (q *refQueue) Step() bool {
	if len(q.h) == 0 {
		return false
	}
	it := heap.Pop(&q.h).(refItem)
	q.now = it.at
	q.fire++
	it.fn()
	return true
}

func (q *refQueue) Run(limit uint64) (executed uint64, drained bool) {
	for {
		if limit != 0 && executed >= limit {
			return executed, false
		}
		if !q.Step() {
			return executed, true
		}
		executed++
	}
}

func (q *refQueue) RunUntil(deadline Cycle) bool {
	for len(q.h) > 0 && q.h[0].at <= deadline {
		q.Step()
	}
	return len(q.h) == 0
}

// TestConformanceWithReferenceHeap drives the production queue and the old
// container/heap reference through identical random interleavings of At,
// After, Run, and RunUntil — including events that schedule more events —
// and asserts the fired sequences, Now(), Fired(), and drain reports agree
// step for step. This pins the 4-ary heap to the original's semantics.
func TestConformanceWithReferenceHeap(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		var q Queue
		var r refQueue
		var gotQ, gotR []Cycle

		// Cascading workload: each fired event may schedule 0-2 more, with
		// the same deterministic pattern on both queues.
		var spawnQ, spawnR func(depth int) Func
		spawnQ = func(depth int) Func {
			return func() {
				gotQ = append(gotQ, q.Now())
				if depth < 4 {
					q.After(Cycle(depth%3), spawnQ(depth+1))
				}
			}
		}
		spawnR = func(depth int) Func {
			return func() {
				gotR = append(gotR, r.Now())
				if depth < 4 {
					r.After(Cycle(depth%3), spawnR(depth+1))
				}
			}
		}

		for step := 0; step < 200; step++ {
			switch rng.Intn(5) {
			case 0: // absolute schedule
				at := q.Now() + Cycle(rng.Intn(20))
				q.At(at, spawnQ(0))
				r.At(at, spawnR(0))
			case 1: // relative schedule
				d := Cycle(rng.Intn(10))
				q.After(d, spawnQ(1))
				r.After(d, spawnR(1))
			case 2: // bounded run
				limit := uint64(rng.Intn(8))
				eq, dq := q.Run(limit)
				er, dr := r.Run(limit)
				if eq != er || dq != dr {
					t.Fatalf("seed %d: Run(%d) = (%d,%v) vs ref (%d,%v)", seed, limit, eq, dq, er, dr)
				}
			case 3: // run to a deadline
				dl := q.Now() + Cycle(rng.Intn(15))
				if dq, dr := q.RunUntil(dl), r.RunUntil(dl); dq != dr {
					t.Fatalf("seed %d: RunUntil(%d) = %v vs ref %v", seed, dl, dq, dr)
				}
			case 4: // single step
				if sq, sr := q.Step(), r.Step(); sq != sr {
					t.Fatalf("seed %d: Step = %v vs ref %v", seed, sq, sr)
				}
			}
			if q.Now() != r.Now() || q.Fired() != r.Fired() || q.Pending() != len(r.h) {
				t.Fatalf("seed %d step %d: state (now=%d fired=%d pending=%d) vs ref (now=%d fired=%d pending=%d)",
					seed, step, q.Now(), q.Fired(), q.Pending(), r.Now(), r.Fired(), len(r.h))
			}
		}
		q.Run(0)
		r.Run(0)
		if len(gotQ) != len(gotR) {
			t.Fatalf("seed %d: fired %d events vs ref %d", seed, len(gotQ), len(gotR))
		}
		for i := range gotQ {
			if gotQ[i] != gotR[i] {
				t.Fatalf("seed %d: firing sequences diverge at %d: %d vs %d", seed, i, gotQ[i], gotR[i])
			}
		}
	}
}

// nop is a package-level event body: taking its address allocates nothing,
// isolating the queue's own allocation behaviour.
func nop() {}

// TestZeroAllocSteadyState locks in the zero-allocations-per-event
// property: once the backing slice has grown to the working-set size,
// scheduling and firing allocate nothing.
func TestZeroAllocSteadyState(t *testing.T) {
	var q Queue
	// Warm up: grow every wheel slot's backing array to the steady-state
	// batch depth. The sliding 64-cycle batch window below visits every
	// slot of the wheel over time, so each slot must be warm.
	for d := 0; d < wheelSize; d++ {
		for k := 0; k < 16; k++ {
			q.After(Cycle(d), nop)
		}
	}
	q.Run(0)

	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < 1024; i++ {
			q.After(Cycle(i%64), nop)
		}
		q.Run(0)
	})
	if allocs != 0 {
		t.Fatalf("steady-state schedule+fire allocated %.1f times per 1024-event batch, want 0", allocs)
	}
}

// BenchmarkScheduleFire1M schedules and fires events in 1024-deep batches
// (the queue depth a busy simulation holds), one million-plus events per
// second of benchmark time. The -benchmem allocs/op figure is the property
// BENCH_results.json tracks: 0 in steady state.
func BenchmarkScheduleFire1M(b *testing.B) {
	var q Queue
	const batch = 1024
	for i := 0; i < batch; i++ { // pre-grow outside the timed region
		q.After(Cycle(i%64), nop)
	}
	q.Run(0)
	for i := 0; i < batch; i++ { // refill: the timed loop runs 1024 deep
		q.After(Cycle(i%64), nop)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.After(Cycle(i%64), nop)
		q.Step()
	}
}

// BenchmarkScheduleFireDeep measures push/pop cost at a deep queue (64K
// pending events), where the 4-ary layout's shallower tree pays off.
func BenchmarkScheduleFireDeep(b *testing.B) {
	var q Queue
	const depth = 1 << 16
	for i := 0; i < depth; i++ {
		q.After(Cycle(i%4096), nop)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.After(Cycle(i%4096), nop)
		q.Step()
	}
}
