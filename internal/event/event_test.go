package event

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestZeroValueUsable(t *testing.T) {
	var q Queue
	if q.Now() != 0 || q.Pending() != 0 || q.Fired() != 0 {
		t.Fatalf("zero value not clean: now=%d pending=%d fired=%d", q.Now(), q.Pending(), q.Fired())
	}
	if q.Step() {
		t.Fatal("Step on empty queue reported an event")
	}
}

func TestOrderingByCycle(t *testing.T) {
	var q Queue
	var got []int
	q.At(30, func() { got = append(got, 30) })
	q.At(10, func() { got = append(got, 10) })
	q.At(20, func() { got = append(got, 20) })
	q.Run(0)
	want := []int{10, 20, 30}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if q.Now() != 30 {
		t.Fatalf("Now = %d, want 30", q.Now())
	}
}

func TestFIFOWithinSameCycle(t *testing.T) {
	var q Queue
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		q.At(5, func() { got = append(got, i) })
	}
	q.Run(0)
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-cycle events reordered at %d: %v", i, got[:i+1])
		}
	}
}

func TestAfterRelativeToNow(t *testing.T) {
	var q Queue
	var fired Cycle
	q.At(10, func() {
		q.After(7, func() { fired = q.Now() })
	})
	q.Run(0)
	if fired != 17 {
		t.Fatalf("After fired at %d, want 17", fired)
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	var q Queue
	q.At(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		q.At(5, func() {})
	})
	q.Run(0)
}

func TestRunLimit(t *testing.T) {
	var q Queue
	n := 0
	for i := 0; i < 10; i++ {
		q.At(Cycle(i), func() { n++ })
	}
	exec, drained := q.Run(4)
	if exec != 4 || drained || n != 4 {
		t.Fatalf("Run(4) = (%d,%v), n=%d", exec, drained, n)
	}
	exec, drained = q.Run(0)
	if exec != 6 || !drained || n != 10 {
		t.Fatalf("Run(0) = (%d,%v), n=%d", exec, drained, n)
	}
}

func TestRunUntil(t *testing.T) {
	var q Queue
	n := 0
	for _, c := range []Cycle{1, 5, 9, 15, 20} {
		q.At(c, func() { n++ })
	}
	if q.RunUntil(9) {
		t.Fatal("RunUntil(9) claimed drained")
	}
	if n != 3 {
		t.Fatalf("n = %d after RunUntil(9), want 3", n)
	}
	if !q.RunUntil(100) {
		t.Fatal("RunUntil(100) did not drain")
	}
	if n != 5 {
		t.Fatalf("n = %d, want 5", n)
	}
}

func TestCascadingEvents(t *testing.T) {
	// An event chain where each event schedules the next must execute in
	// strictly nondecreasing time and run to completion.
	var q Queue
	depth := 0
	var step func()
	step = func() {
		depth++
		if depth < 1000 {
			q.After(1, step)
		}
	}
	q.At(0, step)
	q.Run(0)
	if depth != 1000 {
		t.Fatalf("chain depth = %d, want 1000", depth)
	}
	if q.Now() != 999 {
		t.Fatalf("Now = %d, want 999", q.Now())
	}
}

// Property: for any set of scheduled cycles, execution order is the sorted
// order (stably, by insertion sequence).
func TestQuickSortedExecution(t *testing.T) {
	f := func(cycles []uint16) bool {
		var q Queue
		type tag struct {
			at  Cycle
			seq int
		}
		var got []tag
		for i, c := range cycles {
			at := Cycle(c)
			i := i
			q.At(at, func() { got = append(got, tag{at, i}) })
		}
		q.Run(0)
		want := make([]tag, len(got))
		copy(want, got)
		sort.SliceStable(want, func(a, b int) bool {
			if want[a].at != want[b].at {
				return want[a].at < want[b].at
			}
			return want[a].seq < want[b].seq
		})
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return len(got) == len(cycles)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: two identical runs produce identical firing sequences
// (determinism), even with interleaved same-cycle events.
func TestDeterminism(t *testing.T) {
	run := func(seed int64) []Cycle {
		rng := rand.New(rand.NewSource(seed))
		var q Queue
		var trace []Cycle
		var spawn func()
		spawn = func() {
			trace = append(trace, q.Now())
			if len(trace) < 500 {
				q.After(Cycle(rng.Intn(4)), spawn)
			}
		}
		for i := 0; i < 5; i++ {
			q.At(Cycle(rng.Intn(10)), spawn)
		}
		q.Run(0)
		return trace
	}
	a, b := run(42), run(42)
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func BenchmarkScheduleAndFire(b *testing.B) {
	var q Queue
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q.After(Cycle(i%64), func() {})
		q.Step()
	}
}
