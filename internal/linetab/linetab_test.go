package linetab

import (
	"math/rand"
	"sort"
	"testing"

	"cohesion/internal/addr"
)

// TestTableConformance drives Table and a builtin map through identical
// randomized operation sequences — insert, overwrite, delete, lookup of
// present and absent keys — and checks full agreement after every step,
// including a periodic entry-set comparison via ForEach. Key distribution
// mimics the protocol workload: a small churning working set plus
// occasional cold keys, which maximizes tombstone traffic.
func TestTableConformance(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		var tab Table[int]
		ref := map[addr.Line]int{}
		key := func() addr.Line {
			if rng.Intn(8) == 0 {
				return addr.Line(rng.Uint64() >> 20) // cold key
			}
			return addr.Line(rng.Intn(48)) // hot working set
		}
		for op := 0; op < 20000; op++ {
			k := key()
			switch rng.Intn(4) {
			case 0, 1: // insert/overwrite
				v := rng.Int()
				tab.Put(k, v)
				ref[k] = v
			case 2: // delete
				got := tab.Delete(k)
				_, want := ref[k]
				if got != want {
					t.Fatalf("seed %d op %d: Delete(%#x) = %v, map says %v", seed, op, uint64(k), got, want)
				}
				delete(ref, k)
			case 3: // lookup
				gotV, gotOK := tab.Get(k)
				wantV, wantOK := ref[k]
				if gotOK != wantOK || (gotOK && gotV != wantV) {
					t.Fatalf("seed %d op %d: Get(%#x) = (%d,%v), map says (%d,%v)",
						seed, op, uint64(k), gotV, gotOK, wantV, wantOK)
				}
			}
			if tab.Len() != len(ref) {
				t.Fatalf("seed %d op %d: Len = %d, map has %d", seed, op, tab.Len(), len(ref))
			}
			if op%997 == 0 {
				seen := map[addr.Line]int{}
				tab.ForEach(func(l addr.Line, v int) { seen[l] = v })
				if len(seen) != len(ref) {
					t.Fatalf("seed %d op %d: ForEach visited %d entries, map has %d", seed, op, len(seen), len(ref))
				}
				for l, v := range ref {
					if seen[l] != v {
						t.Fatalf("seed %d op %d: ForEach saw %#x=%d, map has %d", seed, op, uint64(l), seen[l], v)
					}
				}
			}
		}
	}
}

// TestTableIterationDeterministic replays the same operation sequence into
// two tables and requires identical ForEach orders — the property the
// protocol layers rely on for deterministic drains and invariant walks
// (the builtin map deliberately randomizes this).
func TestTableIterationDeterministic(t *testing.T) {
	build := func() *Table[uint64] {
		rng := rand.New(rand.NewSource(7))
		var tab Table[uint64]
		for op := 0; op < 5000; op++ {
			k := addr.Line(rng.Intn(300))
			if rng.Intn(3) == 0 {
				tab.Delete(k)
			} else {
				tab.Put(k, uint64(op))
			}
		}
		return &tab
	}
	a, b := build(), build()
	var orderA, orderB []addr.Line
	a.ForEach(func(l addr.Line, _ uint64) { orderA = append(orderA, l) })
	b.ForEach(func(l addr.Line, _ uint64) { orderB = append(orderB, l) })
	if len(orderA) != len(orderB) {
		t.Fatalf("iteration lengths differ: %d vs %d", len(orderA), len(orderB))
	}
	for i := range orderA {
		if orderA[i] != orderB[i] {
			t.Fatalf("iteration order diverges at %d: %#x vs %#x", i, uint64(orderA[i]), uint64(orderB[i]))
		}
	}
}

// TestTableSlotReuse checks that a table whose working set stays bounded
// reaches a fixed capacity: delete/reinsert churn must recycle tombstones
// via rehash instead of growing without bound.
func TestTableSlotReuse(t *testing.T) {
	var tab Table[int]
	for i := 0; i < 100000; i++ {
		k := addr.Line(i % 24)
		tab.Put(k, i)
		tab.Delete(k)
	}
	if cap := len(tab.lines); cap > 256 {
		t.Fatalf("churning 24-line working set grew table to %d slots", cap)
	}
	if tab.Len() != 0 {
		t.Fatalf("Len = %d after balanced churn, want 0", tab.Len())
	}
}

// TestSetConformance drives Set against map[uint64]struct{} with periodic
// epoch Clears, matching the serviced-ID rotation at the home banks.
func TestSetConformance(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		var s Set
		ref := map[uint64]struct{}{}
		for op := 0; op < 20000; op++ {
			k := uint64(rng.Intn(2000))
			switch rng.Intn(4) {
			case 0, 1, 2:
				s.Add(k)
				ref[k] = struct{}{}
			case 3:
				if _, want := ref[k]; s.Has(k) != want {
					t.Fatalf("seed %d op %d: Has(%d) = %v, map says %v", seed, op, k, s.Has(k), want)
				}
			}
			if s.Len() != len(ref) {
				t.Fatalf("seed %d op %d: Len = %d, map has %d", seed, op, s.Len(), len(ref))
			}
			if op%4999 == 0 {
				s.Clear()
				ref = map[uint64]struct{}{}
			}
		}
	}
}

// TestSetClearRetainsCapacity locks in the zero-steady-state-allocation
// property the serviced-ID window depends on: after Clear, refilling to
// the same size must not allocate.
func TestSetClearRetainsCapacity(t *testing.T) {
	var s Set
	fill := func() {
		for i := uint64(0); i < 1000; i++ {
			s.Add(i)
		}
	}
	fill()
	s.Clear()
	allocs := testing.AllocsPerRun(10, func() {
		fill()
		s.Clear()
	})
	if allocs != 0 {
		t.Fatalf("Clear+refill allocated %.1f times, want 0", allocs)
	}
}

// TestTableZeroValue checks the zero value works for every operation.
func TestTableZeroValue(t *testing.T) {
	var tab Table[*int]
	if _, ok := tab.Get(1); ok {
		t.Fatal("Get on zero table found a value")
	}
	if tab.Delete(1) {
		t.Fatal("Delete on zero table reported presence")
	}
	tab.ForEach(func(addr.Line, *int) { t.Fatal("ForEach on zero table visited an entry") })
	v := 9
	tab.Put(1, &v)
	if got, ok := tab.Get(1); !ok || *got != 9 {
		t.Fatalf("Get after first Put = (%v,%v)", got, ok)
	}
}

// TestTableKeysSorted is a helper-style regression: ForEach must visit
// each live entry exactly once (no duplicates through tombstone reuse).
func TestTableKeysSorted(t *testing.T) {
	var tab Table[int]
	rng := rand.New(rand.NewSource(3))
	want := map[addr.Line]bool{}
	for i := 0; i < 3000; i++ {
		k := addr.Line(rng.Intn(100))
		if rng.Intn(2) == 0 {
			tab.Put(k, i)
			want[k] = true
		} else {
			tab.Delete(k)
			delete(want, k)
		}
	}
	var got []uint64
	tab.ForEach(func(l addr.Line, _ int) { got = append(got, uint64(l)) })
	sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
	for i := 1; i < len(got); i++ {
		if got[i] == got[i-1] {
			t.Fatalf("ForEach visited line %#x twice", got[i])
		}
	}
	if len(got) != len(want) {
		t.Fatalf("ForEach visited %d entries, want %d", len(got), len(want))
	}
}
