// Package linetab provides the open-addressed hash tables the protocol
// hot paths use in place of builtin maps: an addr.Line-keyed table
// (L2 transaction tracking, the infinite directory) and a uint64 set
// (serviced-request dedup at the home banks).
//
// The builtin map is general: it hashes with a per-process random seed,
// iterates in randomized order, and grows through buckets with overflow
// chains. The protocol layers need none of that generality — keys are
// line numbers that already mix well under one multiplicative hash, the
// working set churns (a transaction table holds tens of in-flight lines,
// inserted and deleted millions of times), and determinism is a hard
// requirement everywhere. These tables use linear probing over a
// power-of-two slot array with tombstone deletion, and iterate in slot
// order, which is a pure function of the operation history — two
// identical simulations visit entries identically, so iteration feeds
// directly into invariant checks and drains without sorting.
//
// Values are typically pointers into caller-owned free lists (l2txn,
// directory.Entry), which keeps entry addresses stable across table
// growth — the table stores and moves only (key, pointer) pairs.
// Semantics are conformance-tested against the builtin map on randomized
// operation sequences.
package linetab

import "cohesion/internal/addr"

// slot states. Tombstones keep probe chains intact across deletion; they
// are reclaimed wholesale on the next grow/rehash.
const (
	empty uint8 = iota
	full
	tomb
)

const minCap = 16

// hash is Fibonacci multiplicative hashing; the high bits (taken by the
// caller's shift) are well mixed even for sequential keys.
func hash(k uint64) uint64 { return k * 0x9E3779B97F4A7C15 }

// Table is an open-addressed map from addr.Line to V. The zero value is
// an empty table ready for use.
type Table[V any] struct {
	lines []addr.Line
	vals  []V
	state []uint8
	shift uint // index = hash >> shift; len(lines) == 1<<(64-shift)
	live  int  // full slots
	used  int  // full + tombstone slots
}

// Len reports the number of entries.
func (t *Table[V]) Len() int { return t.live }

// Get returns the value stored for line.
func (t *Table[V]) Get(line addr.Line) (v V, ok bool) {
	if t.live == 0 {
		return v, false
	}
	mask := uint64(len(t.lines) - 1)
	for i := hash(uint64(line)) >> t.shift; ; i = (i + 1) & mask {
		switch t.state[i] {
		case empty:
			return v, false
		case full:
			if t.lines[i] == line {
				return t.vals[i], true
			}
		}
	}
}

// Put inserts or replaces the value for line.
func (t *Table[V]) Put(line addr.Line, v V) {
	if t.used*4 >= len(t.lines)*3 {
		t.grow()
	}
	mask := uint64(len(t.lines) - 1)
	ins := -1 // first tombstone on the probe path, reusable for insert
	for i := hash(uint64(line)) >> t.shift; ; i = (i + 1) & mask {
		switch t.state[i] {
		case empty:
			if ins < 0 {
				ins = int(i)
				t.used++
			}
			t.lines[ins] = line
			t.vals[ins] = v
			t.state[ins] = full
			t.live++
			return
		case full:
			if t.lines[i] == line {
				t.vals[i] = v
				return
			}
		case tomb:
			if ins < 0 {
				ins = int(i)
			}
		}
	}
}

// Delete removes line's entry, reporting whether it was present.
func (t *Table[V]) Delete(line addr.Line) bool {
	if t.live == 0 {
		return false
	}
	mask := uint64(len(t.lines) - 1)
	for i := hash(uint64(line)) >> t.shift; ; i = (i + 1) & mask {
		switch t.state[i] {
		case empty:
			return false
		case full:
			if t.lines[i] == line {
				var zero V
				t.vals[i] = zero
				t.state[i] = tomb
				t.live--
				return true
			}
		}
	}
}

// ForEach visits every entry in slot order — a deterministic function of
// the operation history. fn must not mutate the table.
func (t *Table[V]) ForEach(fn func(addr.Line, V)) {
	for i, s := range t.state {
		if s == full {
			fn(t.lines[i], t.vals[i])
		}
	}
}

// grow rehashes, reclaiming every tombstone: doubling capacity when the
// table is genuinely at least half live, rehashing in place otherwise —
// a churning table of stable size settles at a fixed capacity.
func (t *Table[V]) grow() {
	newCap := len(t.lines)
	switch {
	case newCap == 0:
		newCap = minCap
	case 2*t.live >= newCap:
		newCap *= 2
	}
	oldLines, oldVals, oldState := t.lines, t.vals, t.state
	t.lines = make([]addr.Line, newCap)
	t.vals = make([]V, newCap)
	t.state = make([]uint8, newCap)
	t.shift = 64 - uint(log2(newCap))
	t.live, t.used = 0, 0
	mask := uint64(newCap - 1)
	for j, s := range oldState {
		if s != full {
			continue
		}
		line := oldLines[j]
		for i := hash(uint64(line)) >> t.shift; ; i = (i + 1) & mask {
			if t.state[i] != full {
				t.lines[i] = line
				t.vals[i] = oldVals[j]
				t.state[i] = full
				t.live++
				t.used++
				break
			}
		}
	}
}

func log2(n int) int {
	b := 0
	for 1<<b < n {
		b++
	}
	return b
}

// Set is an open-addressed set of uint64 keys with the same probing and
// determinism properties as Table. The zero value is ready for use.
// Clear retains capacity, so an epoch-rotated set (the home banks'
// serviced-ID window) reaches a steady state with no allocation.
type Set struct {
	keys  []uint64
	state []uint8
	shift uint
	live  int
	used  int
}

// Len reports the number of keys in the set.
func (s *Set) Len() int { return s.live }

// Has reports whether k is in the set.
func (s *Set) Has(k uint64) bool {
	if s.live == 0 {
		return false
	}
	mask := uint64(len(s.keys) - 1)
	for i := hash(k) >> s.shift; ; i = (i + 1) & mask {
		switch s.state[i] {
		case empty:
			return false
		case full:
			if s.keys[i] == k {
				return true
			}
		}
	}
}

// Add inserts k.
func (s *Set) Add(k uint64) {
	if s.used*4 >= len(s.keys)*3 {
		s.grow()
	}
	mask := uint64(len(s.keys) - 1)
	ins := -1
	for i := hash(k) >> s.shift; ; i = (i + 1) & mask {
		switch s.state[i] {
		case empty:
			if ins < 0 {
				ins = int(i)
				s.used++
			}
			s.keys[ins] = k
			s.state[ins] = full
			s.live++
			return
		case full:
			if s.keys[i] == k {
				return
			}
		case tomb:
			if ins < 0 {
				ins = int(i)
			}
		}
	}
}

// Clear empties the set, retaining capacity.
func (s *Set) Clear() {
	for i := range s.state {
		s.state[i] = empty
	}
	s.live, s.used = 0, 0
}

func (s *Set) grow() {
	newCap := len(s.keys)
	switch {
	case newCap == 0:
		newCap = minCap
	case 2*s.live >= newCap:
		newCap *= 2
	}
	oldKeys, oldState := s.keys, s.state
	s.keys = make([]uint64, newCap)
	s.state = make([]uint8, newCap)
	s.shift = 64 - uint(log2(newCap))
	s.live, s.used = 0, 0
	mask := uint64(newCap - 1)
	for j, st := range oldState {
		if st != full {
			continue
		}
		k := oldKeys[j]
		for i := hash(k) >> s.shift; ; i = (i + 1) & mask {
			if s.state[i] != full {
				s.keys[i] = k
				s.state[i] = full
				s.live++
				s.used++
				break
			}
		}
	}
}
