package directory

import (
	"math/rand"
	"testing"
	"testing/quick"

	"cohesion/internal/addr"
)

func TestSharersBasics(t *testing.T) {
	var s Sharers
	if !s.Empty() || s.Count() != 0 {
		t.Fatal("zero value not empty")
	}
	if !s.Add(0) || !s.Add(127) || !s.Add(63) || !s.Add(64) {
		t.Fatal("Add of new members returned false")
	}
	if s.Add(63) {
		t.Fatal("Add of member returned true")
	}
	if s.Count() != 4 || !s.Has(127) || s.Has(1) {
		t.Fatalf("set state wrong: count=%d", s.Count())
	}
	var got []int
	s.ForEach(func(c int) { got = append(got, c) })
	want := []int{0, 63, 64, 127}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ForEach order = %v", got)
		}
	}
	if !s.Remove(0) || s.Remove(0) {
		t.Fatal("Remove semantics wrong")
	}
	if s.Count() != 3 {
		t.Fatalf("count after remove = %d", s.Count())
	}
}

func TestQuickSharersMatchesMap(t *testing.T) {
	f := func(ops []uint8) bool {
		var s Sharers
		model := map[int]bool{}
		for _, op := range ops {
			c := int(op % MaxClusters)
			if op&0x80 != 0 {
				if s.Remove(c) != model[c] {
					return false
				}
				delete(model, c)
			} else {
				if s.Add(c) == model[c] {
					return false
				}
				model[c] = true
			}
		}
		return s.Count() == len(model)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func testStorageCommon(t *testing.T, d Directory) {
	t.Helper()
	if d.Count() != 0 || d.Lookup(1) != nil {
		t.Fatal("fresh directory not empty")
	}
	e := d.Allocate(1)
	if e.Line != 1 || e.State != Shared || !e.Sharers.Empty() {
		t.Fatal("fresh entry not default")
	}
	e.Sharers.Add(3)
	e.State = Modified
	e.Owner = 3
	got := d.Lookup(1)
	if got == nil || got.State != Modified || got.Owner != 3 {
		t.Fatal("Lookup lost state")
	}
	if d.Count() != 1 {
		t.Fatalf("Count = %d", d.Count())
	}
	d.Remove(1)
	if d.Count() != 0 || d.Lookup(1) != nil {
		t.Fatal("Remove failed")
	}
	d.Remove(1) // removing absent line is a no-op
}

func TestInfiniteStorage(t *testing.T) { testStorageCommon(t, NewInfinite()) }
func TestSparseStorage(t *testing.T)   { testStorageCommon(t, NewSparse(64, 4, false)) }
func TestLimitedStorage(t *testing.T)  { testStorageCommon(t, NewSparse(64, 4, true)) }

func TestInfiniteNeverEvicts(t *testing.T) {
	d := NewInfinite()
	for i := addr.Line(0); i < 10000; i++ {
		if !d.HasRoom(i) || d.Victim(i) != nil {
			t.Fatal("infinite directory reported pressure")
		}
		d.Allocate(i)
	}
	if d.Count() != 10000 {
		t.Fatalf("Count = %d", d.Count())
	}
}

func TestSparseVictimSelection(t *testing.T) {
	d := NewSparse(4, 2, false) // 2 sets x 2 ways
	d.Allocate(0)               // set 0
	d.Allocate(2)               // set 0
	if d.HasRoom(4) {
		t.Fatal("full set reported room")
	}
	d.Lookup(0) // make 0 MRU
	v := d.Victim(4)
	if v == nil || v.Line != 2 {
		t.Fatalf("victim = %v, want line 2", v)
	}
	// Pinned entries are not evictable.
	v.Pinned = true
	d.Lookup(2) // bump so 0 would be LRU... but pin was on 2
	v2 := d.Victim(4)
	if v2 == nil || v2.Line != 0 {
		t.Fatalf("victim with pin = %v, want line 0", v2)
	}
	e0 := d.Lookup(0)
	e0.Pinned = true
	if d.Victim(4) != nil {
		t.Fatal("fully pinned set returned a victim")
	}
	if d.HasRoom(4) {
		t.Fatal("fully pinned set reported room")
	}
	// Other set unaffected.
	if !d.HasRoom(1) {
		t.Fatal("set 1 should have room")
	}
}

func TestSparseAllocatePanicsWithoutRoom(t *testing.T) {
	d := NewSparse(2, 2, false)
	d.Allocate(0)
	d.Allocate(2)
	defer func() {
		if recover() == nil {
			t.Fatal("Allocate without room succeeded")
		}
	}()
	d.Allocate(4)
}

func TestAllocateResidentPanics(t *testing.T) {
	for _, d := range []Directory{NewInfinite(), NewSparse(8, 2, false)} {
		d.Allocate(5)
		func() {
			defer func() {
				if recover() == nil {
					t.Error("double Allocate succeeded")
				}
			}()
			d.Allocate(5)
		}()
	}
}

func TestCountByClass(t *testing.T) {
	d := NewSparse(64, 4, false)
	d.Allocate(addr.LineOf(addr.CodeBase))
	d.Allocate(addr.LineOf(addr.HeapBase))
	d.Allocate(addr.LineOf(addr.HeapBase + 32))
	d.Allocate(addr.LineOf(addr.StackBase))
	by := d.CountByClass()
	if by[addr.ClassCode] != 1 || by[addr.ClassHeapGlobal] != 2 || by[addr.ClassStack] != 1 {
		t.Fatalf("CountByClass = %v", by)
	}
	d.Remove(addr.LineOf(addr.HeapBase))
	if d.CountByClass()[addr.ClassHeapGlobal] != 1 {
		t.Fatal("CountByClass after Remove wrong")
	}

	di := NewInfinite()
	di.Allocate(addr.LineOf(addr.StackBase))
	if di.CountByClass()[addr.ClassStack] != 1 {
		t.Fatal("infinite CountByClass wrong")
	}
}

func TestAddSharerLimitedOverflow(t *testing.T) {
	d := NewSparse(8, 2, true)
	e := d.Allocate(0)
	for c := 0; c < LimitedPointers; c++ {
		AddSharer(d, e, c)
	}
	if e.Broadcast {
		t.Fatal("broadcast set before overflow")
	}
	AddSharer(d, e, 10) // fifth sharer
	if !e.Broadcast {
		t.Fatal("broadcast not set on overflow")
	}
	// Re-adding an existing sharer never overflows.
	full := NewSparse(8, 2, true)
	e2 := full.Allocate(0)
	for c := 0; c < LimitedPointers; c++ {
		AddSharer(full, e2, c)
	}
	AddSharer(full, e2, 2)
	if e2.Broadcast {
		t.Fatal("re-add set broadcast")
	}
	// Full-map never broadcasts.
	fm := NewSparse(8, 2, false)
	e3 := fm.Allocate(0)
	for c := 0; c < 20; c++ {
		AddSharer(fm, e3, c)
	}
	if e3.Broadcast {
		t.Fatal("full-map set broadcast")
	}
}

// Property: sparse storage never exceeds capacity and Lookup/Remove agree
// with a model when the controller respects Victim discipline.
func TestQuickSparseModel(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := NewSparse(16, 4, false)
		model := map[addr.Line]bool{}
		for i := 0; i < 1000; i++ {
			line := addr.Line(rng.Intn(64))
			switch rng.Intn(3) {
			case 0:
				if d.Lookup(line) != nil {
					continue
				}
				if !d.HasRoom(line) {
					v := d.Victim(line)
					if v == nil {
						return false // nothing pinned in this test
					}
					delete(model, v.Line)
					d.Remove(v.Line)
				}
				d.Allocate(line)
				model[line] = true
			case 1:
				if (d.Lookup(line) != nil) != model[line] {
					return false
				}
			case 2:
				d.Remove(line)
				delete(model, line)
			}
			if d.Count() != len(model) || d.Count() > 16 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestAreaModelMatchesPaper(t *testing.T) {
	in := PaperAreaInputs()

	fm := AreaFullMapSparse(in)
	// Paper: 9.28 MB, 113% of L2. Our accounting (146 bits x 512K entries)
	// gives 9.125 MiB / 114%; accept a small tolerance for the paper's
	// rounding.
	if fm.BitsPerEntry != 146 {
		t.Fatalf("full-map bits/entry = %d, want 146", fm.BitsPerEntry)
	}
	mb := float64(fm.Bytes) / (1 << 20)
	if mb < 8.8 || mb > 9.6 {
		t.Fatalf("full-map = %.2f MB, paper says 9.28", mb)
	}
	if fm.PercentOfL2 < 108 || fm.PercentOfL2 > 120 {
		t.Fatalf("full-map %% of L2 = %.1f, paper says 113", fm.PercentOfL2)
	}

	d4 := AreaDir4B(in)
	if d4.BitsPerEntry != 46 {
		t.Fatalf("Dir4B bits/entry = %d, want 46", d4.BitsPerEntry)
	}
	mb = float64(d4.Bytes) / (1 << 20)
	if mb < 2.7 || mb > 3.0 {
		t.Fatalf("Dir4B = %.2f MB, paper says 2.88", mb)
	}
	if d4.PercentOfL2 < 33 || d4.PercentOfL2 > 37 {
		t.Fatalf("Dir4B %% of L2 = %.1f, paper says 35.1", d4.PercentOfL2)
	}

	dt := AreaDuplicateTags(in, 1)
	kb := float64(dt.Bytes) / 1024
	if kb != 736 {
		t.Fatalf("duplicate tags = %.1f KB, paper says 736", kb)
	}
	if p := dt.PercentOfL2; p < 8.5 || p > 9.5 {
		t.Fatalf("duplicate tags %% of L2 = %.2f, paper says 8.98", p)
	}
	dt8 := AreaDuplicateTags(in, 8)
	if dt8.Bytes != 8*dt.Bytes {
		t.Fatal("replicas do not scale linearly")
	}

	if len(AreaTable(in)) != 4 {
		t.Fatal("AreaTable size wrong")
	}
	if fm.String() == "" || dt.String() == "" {
		t.Fatal("empty String()")
	}
}

func BenchmarkSparseLookup(b *testing.B) {
	d := NewSparse(16<<10, 128, false)
	for i := 0; i < 16<<10; i++ {
		d.Allocate(addr.Line(i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if d.Lookup(addr.Line(i&(16<<10-1))) == nil {
			b.Fatal("miss")
		}
	}
}

func BenchmarkInfiniteLookup(b *testing.B) {
	d := NewInfinite()
	for i := 0; i < 16<<10; i++ {
		d.Allocate(addr.Line(i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if d.Lookup(addr.Line(i&(16<<10-1))) == nil {
			b.Fatal("miss")
		}
	}
}

func BenchmarkSharersForEach(b *testing.B) {
	var s Sharers
	for c := 0; c < MaxClusters; c += 3 {
		s.Add(c)
	}
	n := 0
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.ForEach(func(int) { n++ })
	}
	_ = n
}
