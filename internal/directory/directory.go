// Package directory implements the on-die directory storage the HWcc
// protocol uses to track sharers of cache lines (paper §3.2).
//
// Three organizations are provided, matching the paper's design points:
//
//   - Infinite: a full-map directory with unbounded capacity and full
//     associativity. This is the optimistic "HWcc ideal" bound that
//     eliminates directory evictions entirely.
//   - Sparse: a realistic set-associative sparse full-map directory
//     (16K entries × 128 ways per L3 bank in Table 3). Entries exist only
//     for lines present in at least one L2; capacity evictions invalidate
//     all sharers of the victim line.
//   - Limited (Dir4B): sparse storage whose entries hold at most four
//     sharer pointers; adding a fifth sharer sets a broadcast bit, after
//     which invalidations must be broadcast to every cluster.
//
// One directory bank is collocated with each L3 bank; requests for a line
// are serialized through its home bank, so the storage layer here is
// purely sequential state.
package directory

import (
	"math/bits"

	"cohesion/internal/addr"
	"cohesion/internal/linetab"
	"cohesion/internal/simerr"
)

// MaxClusters bounds the sharer bitset width (the Table 3 machine has 128).
const MaxClusters = 128

// LimitedPointers is the pointer count of the Dir4B scheme.
const LimitedPointers = 4

// Sharers is a fixed-width bitset of cluster IDs.
type Sharers [MaxClusters / 64]uint64

// Add sets cluster c; it reports whether c was newly added.
func (s *Sharers) Add(c int) bool {
	w, b := c/64, uint(c%64)
	if s[w]&(1<<b) != 0 {
		return false
	}
	s[w] |= 1 << b
	return true
}

// Remove clears cluster c; it reports whether c was present.
func (s *Sharers) Remove(c int) bool {
	w, b := c/64, uint(c%64)
	if s[w]&(1<<b) == 0 {
		return false
	}
	s[w] &^= 1 << b
	return true
}

// Has reports whether cluster c is in the set.
func (s Sharers) Has(c int) bool { return s[c/64]&(1<<uint(c%64)) != 0 }

// Count returns the number of sharers.
func (s Sharers) Count() int {
	n := 0
	for _, w := range s {
		n += bits.OnesCount64(w)
	}
	return n
}

// Empty reports whether no sharers remain.
func (s Sharers) Empty() bool { return s == Sharers{} }

// ForEach calls fn for each sharer in ascending cluster order.
func (s Sharers) ForEach(fn func(cluster int)) {
	for wi, w := range s {
		for ; w != 0; w &= w - 1 {
			fn(wi*64 + bits.TrailingZeros64(w))
		}
	}
}

// State is the directory's view of a line.
type State uint8

const (
	// Shared: one or more clusters hold the line clean.
	Shared State = iota
	// Modified: exactly one cluster owns the line dirty.
	Modified
)

func (s State) String() string {
	if s == Shared {
		return "S"
	}
	return "M"
}

// Entry is one directory entry. For Modified lines Owner identifies the
// owning cluster and Sharers contains only the owner. For limited
// directories Broadcast means the precise sharer set was lost to pointer
// overflow and invalidations must go to every cluster.
type Entry struct {
	Line      addr.Line
	State     State
	Sharers   Sharers
	Owner     int
	Broadcast bool
	Pinned    bool // a directory transaction is in flight on this line

	lastUse uint64
}

// Directory is the storage interface shared by all three organizations.
type Directory interface {
	// Lookup returns the entry for line, or nil.
	Lookup(line addr.Line) *Entry
	// HasRoom reports whether Allocate(line) would succeed without a
	// capacity eviction.
	HasRoom(line addr.Line) bool
	// Victim returns the entry that must be torn down before line can be
	// allocated, or nil if there is room. Pinned entries are never chosen;
	// if every candidate is pinned, Victim returns nil and HasRoom false —
	// the controller must retry after a transaction drains.
	Victim(line addr.Line) *Entry
	// Allocate installs a fresh Shared entry with no sharers. It panics if
	// the line is resident or there is no room.
	Allocate(line addr.Line) *Entry
	// Remove deallocates the entry for line if present.
	Remove(line addr.Line)
	// Count reports the number of allocated entries.
	Count() int
	// CountByClass breaks Count down by address class (Fig 9c).
	CountByClass() [addr.NumClasses]uint64
	// ForEach visits every allocated entry.
	ForEach(fn func(*Entry))
	// Limited reports whether the organization is pointer-limited (Dir4B);
	// the protocol consults this when adding sharers.
	Limited() bool
}

// AddSharer records cluster as a sharer of e, honoring the pointer limit
// of limited organizations: when a fifth sharer arrives, the broadcast bit
// is set and the precise set is no longer trusted. It reports whether this
// call newly set the broadcast bit (a pointer overflow).
func AddSharer(d Directory, e *Entry, cluster int) bool {
	overflow := d.Limited() && !e.Broadcast && !e.Sharers.Has(cluster) && e.Sharers.Count() >= LimitedPointers
	if overflow {
		e.Broadcast = true
	}
	e.Sharers.Add(cluster)
	return overflow
}

// --- Infinite full-map ---

// infinite stores entries in an open-addressed table with a free list of
// Entry records: pointers handed out by Lookup/Allocate stay stable while
// the line is resident (the table moves only pointers on growth), and
// steady-state allocate/remove churn recycles records instead of
// allocating.
type infinite struct {
	entries linetab.Table[*freeEntry]
	free    *freeEntry
}

// freeEntry chains recycled Entry records. Entry itself carries no link
// field (it is the public protocol type), so the free list wraps it.
type freeEntry struct {
	e    Entry
	next *freeEntry
}

// NewInfinite returns the optimistic unbounded full-map directory.
func NewInfinite() Directory {
	return &infinite{}
}

func (d *infinite) Lookup(line addr.Line) *Entry {
	if f, ok := d.entries.Get(line); ok {
		return &f.e
	}
	return nil
}
func (d *infinite) HasRoom(addr.Line) bool  { return true }
func (d *infinite) Victim(addr.Line) *Entry { return nil }
func (d *infinite) Limited() bool           { return false }

func (d *infinite) Allocate(line addr.Line) *Entry {
	if _, ok := d.entries.Get(line); ok {
		// The cycle is unknown at this layer; machine.Simulate fills it in
		// when it recovers the panic.
		panic(simerr.Invariant(0, "directory", uint64(line.Base()), "Allocate of resident line"))
	}
	f := d.free
	if f == nil {
		f = &freeEntry{}
	} else {
		d.free = f.next
		f.next = nil
	}
	f.e = Entry{Line: line}
	d.entries.Put(line, f)
	return &f.e
}

func (d *infinite) Remove(line addr.Line) {
	f, ok := d.entries.Get(line)
	if !ok {
		return
	}
	d.entries.Delete(line)
	f.next = d.free
	d.free = f
}

func (d *infinite) Count() int { return d.entries.Len() }

func (d *infinite) CountByClass() [addr.NumClasses]uint64 {
	var out [addr.NumClasses]uint64
	d.entries.ForEach(func(line addr.Line, _ *freeEntry) {
		out[addr.Classify(line.Base())]++
	})
	return out
}

func (d *infinite) ForEach(fn func(*Entry)) {
	d.entries.ForEach(func(_ addr.Line, f *freeEntry) { fn(&f.e) })
}

// --- Sparse set-associative (full-map or limited) ---

type sparse struct {
	sets    [][]Entry
	ways    int
	mask    uint64 // nsets-1 when nsets is a power of two, else 0
	tick    uint64
	count   int
	limited bool
	byClass [addr.NumClasses]uint64

	// occ has one bit per slot (set*ways+way), set while the slot is
	// allocated. ForEach scans it instead of streaming the whole entry
	// array — the Table 3 sparse geometry is 16K sets × 128 ways of
	// ~40-byte entries per bank, most of it empty at end of run when the
	// invariant sweep walks it.
	occ []uint64
}

// NewSparse returns a set-associative sparse directory of the given total
// entry count. assoc 0 means fully associative (one set).
func NewSparse(entries, assoc int, limited bool) Directory {
	if entries < 1 {
		panic(simerr.Config("directory needs at least one entry"))
	}
	if assoc <= 0 || assoc > entries {
		assoc = entries
	}
	if entries%assoc != 0 {
		panic(simerr.Config("directory entries %d not a multiple of assoc %d", entries, assoc))
	}
	nsets := entries / assoc
	d := &sparse{
		sets:    make([][]Entry, nsets),
		ways:    assoc,
		limited: limited,
		occ:     make([]uint64, (entries+63)/64),
	}
	if nsets&(nsets-1) == 0 {
		d.mask = uint64(nsets - 1)
	}
	for i := range d.sets {
		d.sets[i] = make([]Entry, assoc)
	}
	return d
}

// set indexes by mask when the set count is a power of two (every real
// geometry), falling back to modulo for odd test-constructed ones.
func (d *sparse) set(line addr.Line) []Entry {
	return d.sets[d.setIdx(line)]
}

func (d *sparse) setIdx(line addr.Line) uint64 {
	if d.mask != 0 || len(d.sets) == 1 {
		return uint64(line) & d.mask
	}
	return uint64(line) % uint64(len(d.sets))
}

func (d *sparse) markSlot(setIdx uint64, w int) {
	i := setIdx*uint64(d.ways) + uint64(w)
	d.occ[i>>6] |= 1 << (i & 63)
}

func (d *sparse) clearSlot(setIdx uint64, w int) {
	i := setIdx*uint64(d.ways) + uint64(w)
	d.occ[i>>6] &^= 1 << (i & 63)
}

// findWay returns the way holding line in set si, or -1. It scans the
// occupancy bitmap rather than the entry array: the Table 3 sets are
// 128 ways (~7KB of entries) and mostly empty, so a miss costs two word
// loads instead of a 7KB stream. This is the directory's hottest lookup
// path (one per L3-side request plus the end-of-run inclusivity sweep).
func (d *sparse) findWay(si uint64, line addr.Line) int {
	set := d.sets[si]
	lo := si * uint64(d.ways)
	hi := lo + uint64(d.ways)
	for base := lo &^ 63; base < hi; base += 64 {
		word := d.occ[base>>6]
		if base < lo {
			word &^= 1<<(lo-base) - 1
		}
		if hi-base < 64 {
			word &= 1<<(hi-base) - 1
		}
		for ; word != 0; word &= word - 1 {
			w := int(base + uint64(bits.TrailingZeros64(word)) - lo)
			if set[w].Line == line {
				return w
			}
		}
	}
	return -1
}

func (d *sparse) Limited() bool { return d.limited }

func (d *sparse) Lookup(line addr.Line) *Entry {
	si := d.setIdx(line)
	if w := d.findWay(si, line); w >= 0 {
		e := &d.sets[si][w]
		d.tick++
		e.lastUse = d.tick
		return e
	}
	return nil
}

func (d *sparse) HasRoom(line addr.Line) bool {
	set := d.set(line)
	for i := range set {
		if set[i].lastUse == 0 {
			return true
		}
	}
	return false
}

func (d *sparse) Victim(line addr.Line) *Entry {
	set := d.set(line)
	var victim *Entry
	for i := range set {
		e := &set[i]
		if e.lastUse == 0 {
			return nil // room available
		}
		if e.Pinned {
			continue
		}
		if victim == nil || e.lastUse < victim.lastUse {
			victim = e
		}
	}
	return victim
}

func (d *sparse) Allocate(line addr.Line) *Entry {
	si := d.setIdx(line)
	set := d.sets[si]
	slotW := -1
	for i := range set {
		e := &set[i]
		if e.lastUse != 0 && e.Line == line {
			panic(simerr.Invariant(0, "directory", uint64(line.Base()), "Allocate of resident line"))
		}
		if e.lastUse == 0 && slotW < 0 {
			slotW = i
		}
	}
	if slotW < 0 {
		panic(simerr.Invariant(0, "directory", uint64(line.Base()), "Allocate with no room in set"))
	}
	d.tick++
	set[slotW] = Entry{Line: line, lastUse: d.tick}
	d.count++
	d.byClass[addr.Classify(line.Base())]++
	d.markSlot(si, slotW)
	return &set[slotW]
}

func (d *sparse) Remove(line addr.Line) {
	si := d.setIdx(line)
	if w := d.findWay(si, line); w >= 0 {
		d.byClass[addr.Classify(line.Base())]--
		d.sets[si][w] = Entry{}
		d.count--
		d.clearSlot(si, w)
	}
}

func (d *sparse) Count() int { return d.count }

func (d *sparse) CountByClass() [addr.NumClasses]uint64 { return d.byClass }

func (d *sparse) ForEach(fn func(*Entry)) {
	ways := uint64(d.ways)
	for wi, word := range d.occ {
		for ; word != 0; word &= word - 1 {
			i := uint64(wi)<<6 + uint64(bits.TrailingZeros64(word))
			fn(&d.sets[i/ways][i%ways])
		}
	}
}
