// Package directory implements the on-die directory storage the HWcc
// protocol uses to track sharers of cache lines (paper §3.2).
//
// Three organizations are provided, matching the paper's design points:
//
//   - Infinite: a full-map directory with unbounded capacity and full
//     associativity. This is the optimistic "HWcc ideal" bound that
//     eliminates directory evictions entirely.
//   - Sparse: a realistic set-associative sparse full-map directory
//     (16K entries × 128 ways per L3 bank in Table 3). Entries exist only
//     for lines present in at least one L2; capacity evictions invalidate
//     all sharers of the victim line.
//   - Limited (Dir4B): sparse storage whose entries hold at most four
//     sharer pointers; adding a fifth sharer sets a broadcast bit, after
//     which invalidations must be broadcast to every cluster.
//
// One directory bank is collocated with each L3 bank; requests for a line
// are serialized through its home bank, so the storage layer here is
// purely sequential state.
package directory

import (
	"math/bits"

	"cohesion/internal/addr"
	"cohesion/internal/simerr"
)

// MaxClusters bounds the sharer bitset width (the Table 3 machine has 128).
const MaxClusters = 128

// LimitedPointers is the pointer count of the Dir4B scheme.
const LimitedPointers = 4

// Sharers is a fixed-width bitset of cluster IDs.
type Sharers [MaxClusters / 64]uint64

// Add sets cluster c; it reports whether c was newly added.
func (s *Sharers) Add(c int) bool {
	w, b := c/64, uint(c%64)
	if s[w]&(1<<b) != 0 {
		return false
	}
	s[w] |= 1 << b
	return true
}

// Remove clears cluster c; it reports whether c was present.
func (s *Sharers) Remove(c int) bool {
	w, b := c/64, uint(c%64)
	if s[w]&(1<<b) == 0 {
		return false
	}
	s[w] &^= 1 << b
	return true
}

// Has reports whether cluster c is in the set.
func (s Sharers) Has(c int) bool { return s[c/64]&(1<<uint(c%64)) != 0 }

// Count returns the number of sharers.
func (s Sharers) Count() int {
	n := 0
	for _, w := range s {
		n += bits.OnesCount64(w)
	}
	return n
}

// Empty reports whether no sharers remain.
func (s Sharers) Empty() bool { return s == Sharers{} }

// ForEach calls fn for each sharer in ascending cluster order.
func (s Sharers) ForEach(fn func(cluster int)) {
	for wi, w := range s {
		for ; w != 0; w &= w - 1 {
			fn(wi*64 + bits.TrailingZeros64(w))
		}
	}
}

// State is the directory's view of a line.
type State uint8

const (
	// Shared: one or more clusters hold the line clean.
	Shared State = iota
	// Modified: exactly one cluster owns the line dirty.
	Modified
)

func (s State) String() string {
	if s == Shared {
		return "S"
	}
	return "M"
}

// Entry is one directory entry. For Modified lines Owner identifies the
// owning cluster and Sharers contains only the owner. For limited
// directories Broadcast means the precise sharer set was lost to pointer
// overflow and invalidations must go to every cluster.
type Entry struct {
	Line      addr.Line
	State     State
	Sharers   Sharers
	Owner     int
	Broadcast bool
	Pinned    bool // a directory transaction is in flight on this line

	lastUse uint64
}

// Directory is the storage interface shared by all three organizations.
type Directory interface {
	// Lookup returns the entry for line, or nil.
	Lookup(line addr.Line) *Entry
	// HasRoom reports whether Allocate(line) would succeed without a
	// capacity eviction.
	HasRoom(line addr.Line) bool
	// Victim returns the entry that must be torn down before line can be
	// allocated, or nil if there is room. Pinned entries are never chosen;
	// if every candidate is pinned, Victim returns nil and HasRoom false —
	// the controller must retry after a transaction drains.
	Victim(line addr.Line) *Entry
	// Allocate installs a fresh Shared entry with no sharers. It panics if
	// the line is resident or there is no room.
	Allocate(line addr.Line) *Entry
	// Remove deallocates the entry for line if present.
	Remove(line addr.Line)
	// Count reports the number of allocated entries.
	Count() int
	// CountByClass breaks Count down by address class (Fig 9c).
	CountByClass() [addr.NumClasses]uint64
	// ForEach visits every allocated entry.
	ForEach(fn func(*Entry))
	// Limited reports whether the organization is pointer-limited (Dir4B);
	// the protocol consults this when adding sharers.
	Limited() bool
}

// AddSharer records cluster as a sharer of e, honoring the pointer limit
// of limited organizations: when a fifth sharer arrives, the broadcast bit
// is set and the precise set is no longer trusted. It reports whether this
// call newly set the broadcast bit (a pointer overflow).
func AddSharer(d Directory, e *Entry, cluster int) bool {
	overflow := d.Limited() && !e.Broadcast && !e.Sharers.Has(cluster) && e.Sharers.Count() >= LimitedPointers
	if overflow {
		e.Broadcast = true
	}
	e.Sharers.Add(cluster)
	return overflow
}

// --- Infinite full-map ---

type infinite struct {
	entries map[addr.Line]*Entry
}

// NewInfinite returns the optimistic unbounded full-map directory.
func NewInfinite() Directory {
	return &infinite{entries: make(map[addr.Line]*Entry)}
}

func (d *infinite) Lookup(line addr.Line) *Entry { return d.entries[line] }
func (d *infinite) HasRoom(addr.Line) bool       { return true }
func (d *infinite) Victim(addr.Line) *Entry      { return nil }
func (d *infinite) Limited() bool                { return false }

func (d *infinite) Allocate(line addr.Line) *Entry {
	if d.entries[line] != nil {
		// The cycle is unknown at this layer; machine.Simulate fills it in
		// when it recovers the panic.
		panic(simerr.Invariant(0, "directory", uint64(line.Base()), "Allocate of resident line"))
	}
	e := &Entry{Line: line}
	d.entries[line] = e
	return e
}

func (d *infinite) Remove(line addr.Line) { delete(d.entries, line) }
func (d *infinite) Count() int            { return len(d.entries) }

func (d *infinite) CountByClass() [addr.NumClasses]uint64 {
	var out [addr.NumClasses]uint64
	for line := range d.entries {
		out[addr.Classify(line.Base())]++
	}
	return out
}

func (d *infinite) ForEach(fn func(*Entry)) {
	for _, e := range d.entries {
		fn(e)
	}
}

// --- Sparse set-associative (full-map or limited) ---

type sparse struct {
	sets    [][]Entry
	ways    int
	tick    uint64
	count   int
	limited bool
	byClass [addr.NumClasses]uint64
}

// NewSparse returns a set-associative sparse directory of the given total
// entry count. assoc 0 means fully associative (one set).
func NewSparse(entries, assoc int, limited bool) Directory {
	if entries < 1 {
		panic(simerr.Config("directory needs at least one entry"))
	}
	if assoc <= 0 || assoc > entries {
		assoc = entries
	}
	if entries%assoc != 0 {
		panic(simerr.Config("directory entries %d not a multiple of assoc %d", entries, assoc))
	}
	nsets := entries / assoc
	d := &sparse{sets: make([][]Entry, nsets), ways: assoc, limited: limited}
	for i := range d.sets {
		d.sets[i] = make([]Entry, assoc)
	}
	return d
}

func (d *sparse) set(line addr.Line) []Entry {
	return d.sets[uint64(line)%uint64(len(d.sets))]
}

func (d *sparse) Limited() bool { return d.limited }

func (d *sparse) Lookup(line addr.Line) *Entry {
	set := d.set(line)
	for i := range set {
		if set[i].lastUse != 0 && set[i].Line == line {
			d.tick++
			set[i].lastUse = d.tick
			return &set[i]
		}
	}
	return nil
}

func (d *sparse) HasRoom(line addr.Line) bool {
	set := d.set(line)
	for i := range set {
		if set[i].lastUse == 0 {
			return true
		}
	}
	return false
}

func (d *sparse) Victim(line addr.Line) *Entry {
	set := d.set(line)
	var victim *Entry
	for i := range set {
		e := &set[i]
		if e.lastUse == 0 {
			return nil // room available
		}
		if e.Pinned {
			continue
		}
		if victim == nil || e.lastUse < victim.lastUse {
			victim = e
		}
	}
	return victim
}

func (d *sparse) Allocate(line addr.Line) *Entry {
	set := d.set(line)
	var slot *Entry
	for i := range set {
		e := &set[i]
		if e.lastUse != 0 && e.Line == line {
			panic(simerr.Invariant(0, "directory", uint64(line.Base()), "Allocate of resident line"))
		}
		if e.lastUse == 0 && slot == nil {
			slot = e
		}
	}
	if slot == nil {
		panic(simerr.Invariant(0, "directory", uint64(line.Base()), "Allocate with no room in set"))
	}
	d.tick++
	*slot = Entry{Line: line, lastUse: d.tick}
	d.count++
	d.byClass[addr.Classify(line.Base())]++
	return slot
}

func (d *sparse) Remove(line addr.Line) {
	set := d.set(line)
	for i := range set {
		if set[i].lastUse != 0 && set[i].Line == line {
			d.byClass[addr.Classify(line.Base())]--
			set[i] = Entry{}
			d.count--
			return
		}
	}
}

func (d *sparse) Count() int { return d.count }

func (d *sparse) CountByClass() [addr.NumClasses]uint64 { return d.byClass }

func (d *sparse) ForEach(fn func(*Entry)) {
	for s := range d.sets {
		for w := range d.sets[s] {
			if d.sets[s][w].lastUse != 0 {
				fn(&d.sets[s][w])
			}
		}
	}
}
