package directory

import "fmt"

// AreaInputs describes the machine for the §4.4 storage-overhead model.
type AreaInputs struct {
	Clusters        int // number of L2 caches (sharer-vector width)
	L2LinesPerCache int // 2048 for the 64 KB Table-3 L2
	L2TotalBytes    int // aggregate L2 capacity (8 MB in the paper)
	EntriesPerBank  int // sparse/limited directory entries per L3 bank
	Banks           int
}

// PaperAreaInputs returns the Table-3 machine the paper's §4.4 numbers
// assume: 128 L2s × 2048 lines (256K lines, 8 MB), 16K entries per bank,
// 32 banks.
func PaperAreaInputs() AreaInputs {
	return AreaInputs{
		Clusters:        128,
		L2LinesPerCache: 2048,
		L2TotalBytes:    8 << 20,
		EntriesPerBank:  16 << 10,
		Banks:           32,
	}
}

// AreaEstimate is one scheme's storage cost.
type AreaEstimate struct {
	Scheme       string
	BitsPerEntry int
	Entries      int
	Bytes        int
	PercentOfL2  float64
}

func (a AreaEstimate) String() string {
	return fmt.Sprintf("%-28s %3d bits x %7d entries = %8.3f MB (%5.1f%% of L2)",
		a.Scheme, a.BitsPerEntry, a.Entries, float64(a.Bytes)/(1<<20), a.PercentOfL2)
}

// Bits per entry, from the paper's §4.4 accounting: a full-map entry holds
// one sharer bit per L2 plus 2 state bits; sparse schemes add 16 tag bits;
// Dir4B holds four 7-bit pointers (28 bits) plus 2 state bits; duplicate
// tags cost 21 tag bits plus 2 state bits per L2 line.
const (
	stateBits   = 2
	sparseTag   = 16
	dir4BSharer = 28
	dupTagBits  = 21
)

func estimate(scheme string, bitsPerEntry, entries, l2Bytes int) AreaEstimate {
	bytes := (bitsPerEntry*entries + 7) / 8
	return AreaEstimate{
		Scheme:       scheme,
		BitsPerEntry: bitsPerEntry,
		Entries:      entries,
		Bytes:        bytes,
		PercentOfL2:  100 * float64(bytes) / float64(l2Bytes),
	}
}

// AreaFullMapSparse estimates the realizable sparse full-map directory
// (the paper's "full-map ... 9.28 MB (113% of L2)" point).
func AreaFullMapSparse(in AreaInputs) AreaEstimate {
	bits := in.Clusters + stateBits + sparseTag
	return estimate("sparse full-map", bits, in.EntriesPerBank*in.Banks, in.L2TotalBytes)
}

// AreaDir4B estimates the limited-pointer directory (paper: "2.88 MB
// (35.1% of L2)").
func AreaDir4B(in AreaInputs) AreaEstimate {
	bits := dir4BSharer + stateBits + sparseTag
	return estimate("Dir4B sparse", bits, in.EntriesPerBank*in.Banks, in.L2TotalBytes)
}

// AreaDuplicateTags estimates a duplicate-tag scheme with the given number
// of replicas across L3 banks (paper: "736 KB * Nreplicas", 1x-8x).
func AreaDuplicateTags(in AreaInputs, replicas int) AreaEstimate {
	bits := dupTagBits + stateBits
	entries := in.Clusters * in.L2LinesPerCache * replicas
	e := estimate(fmt.Sprintf("duplicate tags (x%d)", replicas), bits, entries, in.L2TotalBytes)
	return e
}

// AreaTable returns all §4.4 estimates for a machine.
func AreaTable(in AreaInputs) []AreaEstimate {
	return []AreaEstimate{
		AreaFullMapSparse(in),
		AreaDir4B(in),
		AreaDuplicateTags(in, 1),
		AreaDuplicateTags(in, 8),
	}
}
