// Package cluster models one eight-core cluster of the baseline machine
// (paper §3.1): simple in-order cores with private L1 instruction and data
// caches, sharing a unified L2 cache whose controller implements the
// L2 side of all three memory models — HWcc (MSI requests, probe
// handling, read releases), SWcc (write-allocate without directory
// involvement, per-word dirty bits, software flush/invalidate), and
// Cohesion (the per-line incoherent bit and capture probes).
//
// Cores execute workload programs on runtime coroutines (iter.Pull): the
// machine resumes a program with its last result and receives the next
// operation in one direct stack switch, with no goroutine, channel, or
// scheduler involvement. The machine and the program still alternate
// strictly — exactly one of them runs at any moment — so the simulation
// stays single-threaded and deterministic, and programs may freely touch
// host-side state (statistics, allocators, golden models) between
// operations.
package cluster

import (
	"fmt"
	"iter"
	"sort"

	"cohesion/internal/addr"
	"cohesion/internal/cache"
	"cohesion/internal/config"
	"cohesion/internal/event"
	"cohesion/internal/linetab"
	"cohesion/internal/msg"
	"cohesion/internal/oracle"
	"cohesion/internal/simerr"
	"cohesion/internal/stats"
	"cohesion/internal/trace"
)

// Debug mirrors L2 trace events to stdout in addition to the run's
// bounded TraceLog; tests may flip it while diagnosing failures. The
// stdout mirror prints the shared trace.Record rendering, so every line
// carries the sim-time column.
var Debug = false

// HomeSend routes a request to the home bank of its line and delivers the
// response; installed by the machine assembly.
type HomeSend func(req msg.Req, onResp func(msg.Resp))

// OpKind enumerates the operations a workload program can issue.
type OpKind uint8

const (
	OpLoad OpKind = iota
	OpStore
	OpAtomic
	OpUncLoad
	OpUncStore
	OpFlush // software writeback (WB) of one line
	OpInv   // software invalidate (INV) of one line
	OpWork  // Cycles of non-memory computation
	OpDone  // program finished
)

func (k OpKind) String() string {
	switch k {
	case OpLoad:
		return "load"
	case OpStore:
		return "store"
	case OpAtomic:
		return "atomic"
	case OpUncLoad:
		return "unc-load"
	case OpUncStore:
		return "unc-store"
	case OpFlush:
		return "flush"
	case OpInv:
		return "inv"
	case OpWork:
		return "work"
	case OpDone:
		return "done"
	}
	return fmt.Sprintf("OpKind(%d)", uint8(k))
}

// Op is one operation yielded by a workload program.
type Op struct {
	Kind   OpKind
	Addr   addr.Addr
	Value  uint32
	AOp    msg.AtomicOp
	Op2    uint32
	Cycles int64 // OpWork only
}

// Core is one in-order core. Programs interact with it only through Do,
// from inside the program coroutine; everything else belongs to the
// machine side.
type Core struct {
	ID      int // global core id
	cluster *Cluster
	l1i     *cache.Cache
	l1d     *cache.Cache

	// Coroutine handles for the program (iter.Pull over its op stream).
	// next resumes the program with the value left in resp and returns
	// the operation it yields; stop unwinds a suspended program.
	next  func() (Op, bool)
	stop  func()
	yield func(Op) bool
	resp  uint32

	// opq queues result-free operations (stores, compute, flushes)
	// issued by the program via DoAsync without suspending it: a
	// coroutine switch costs more than issuing the operation itself, so
	// the program runs ahead — host-side only — and the machine drains
	// the queue one operation per completion, exactly as if each had
	// been yielded individually. Per-core program order, issue timing,
	// and the global event schedule are bit-identical to the unbatched
	// execution; the only thing that moves is when program host code
	// runs, which by construction cannot observe simulated state except
	// through result-bearing (still synchronous) operations. deferred
	// holds the synchronous operation the program yielded while queued
	// operations were still pending; it issues after the queue drains.
	opq         []Op
	opqHead     int
	deferred    Op
	hasDeferred bool

	pc       int // instruction index within the kernel code footprint
	codeBase addr.Addr
	codeLen  int // code footprint in bytes

	started bool
	done    bool
	pending Op

	ifetchLine addr.Line   // line being instruction-fetched
	opBorn     event.Cycle // send time of the in-flight uncached/flush request

	raceTrapped bool // a table write's ack carried a race exception

	// Pre-bound continuation funcs for the per-operation issue ladder
	// (fetch -> ifetch -> execute -> access -> complete). Binding them
	// once at construction keeps the hot path from allocating a fresh
	// closure per operation; they are scheduled millions of times per
	// simulation. Each reads the in-flight operation from c.pending (a
	// core has exactly one operation in flight), so no per-op state needs
	// capturing.
	fetchFn        func() // cl.fetchNext(c)
	stepFn         func() // cl.step(c)
	completeZeroFn func() // cl.complete(c, 0)
	executeFn      func() // cl.execute(c)
	ifetchL2Fn     func() // cl.ifetchL2(c)
	ifetchFillFn   func() // cl.ifetchFill(c)
	l2LoadFn       func() // cl.l2Load(c)
	l2StoreFn      func() // cl.l2Store(c)
	flushFn        func() // cl.flush(c)
	invFn          func() // cl.inv(c)
	uncachedRespFn func(msg.Resp)
	flushRespFn    func(msg.Resp)
}

// coreShutdown is the panic value Do raises to unwind a program coroutine
// when the machine aborts a run; StartCore's wrapper swallows it.
type coreShutdown struct{}

// Do issues one operation and suspends the program until it completes,
// returning the operation's result (loaded value, atomic's old value).
// It must be called only from inside the core's program. If the cluster
// has been shut down (the machine aborted the run), Do unwinds the
// program instead of suspending forever.
func (c *Core) Do(o Op) uint32 {
	if !c.yield(o) {
		panic(coreShutdown{})
	}
	return c.resp
}

// asyncBatchCap bounds how far a program may run ahead of the machine
// through DoAsync before it is forced to suspend and let the queue drain.
const asyncBatchCap = 64

// DoAsync issues a result-free operation without suspending the program.
// The operation is queued and issued by the machine in program order,
// with the same per-operation timing as a synchronous Do; the program
// suspends at its next Do (or when the queue fills) until every queued
// operation has completed. Must only be called from inside the core's
// program, and only for operations whose result is discarded.
func (c *Core) DoAsync(o Op) {
	if len(c.opq) < asyncBatchCap {
		c.opq = append(c.opq, o)
		return
	}
	if !c.yield(o) {
		panic(coreShutdown{})
	}
}

// TakeRaceTrap reports and clears the core's pending race exception (set
// when a CohHWccRegion acknowledgement flagged a Figure 7 Case 5b race
// under config.TrapOnRace). Called from the program.
func (c *Core) TakeRaceTrap() bool {
	was := c.raceTrapped
	c.raceTrapped = false
	return was
}

// SetCode positions the core's instruction stream inside a kernel's code
// footprint; every operation advances the PC by one instruction and
// misses in the L1I/L2 fetch real lines from the code segment.
func (c *Core) SetCode(base addr.Addr, bytes int) {
	if bytes < addr.WordBytes {
		bytes = addr.WordBytes
	}
	c.codeBase, c.codeLen, c.pc = base, bytes, 0
}

// advance produces the core's next operation: first any operations the
// program queued through DoAsync (in program order), then a synchronous
// operation deferred behind them, and only then — with the queue empty —
// does it resume the program coroutine. A program that returns without
// yielding (only possible after an unwind) reads as done.
func (c *Core) advance() {
	if c.opqHead < len(c.opq) {
		c.pending = c.takeQueued()
		return
	}
	if c.hasDeferred {
		c.pending = c.deferred
		c.deferred = Op{}
		c.hasDeferred = false
		return
	}
	op, ok := c.next()
	if !ok {
		op = Op{Kind: OpDone}
	}
	// The resume may have queued operations before yielding op; they
	// precede it in program order.
	if c.opqHead < len(c.opq) {
		c.deferred, c.hasDeferred = op, true
		c.pending = c.takeQueued()
		return
	}
	c.pending = op
}

// takeQueued pops the next DoAsync-queued operation, rewinding the queue
// storage for reuse once drained.
func (c *Core) takeQueued() Op {
	op := c.opq[c.opqHead]
	c.opqHead++
	if c.opqHead == len(c.opq) {
		c.opq = c.opq[:0]
		c.opqHead = 0
	}
	return op
}

// Cluster is eight cores, their L1s, and the shared L2.
type Cluster struct {
	ID   int
	name string // "cl<id>", precomputed for the trace hot path
	cfg  config.Machine
	q    *event.Queue
	run  *stats.Run

	l2     *cache.Cache
	toHome HomeSend
	Cores  []*Core
	orc    *oracle.Oracle // nil unless the online coherence oracle is enabled

	l2busy event.Cycle

	// txns tracks in-flight L2 transactions by line. An open-addressed
	// table rather than a map: the working set is tens of lines churning
	// millions of times, and its deterministic slot-order iteration feeds
	// the watchdog and stuck reports directly.
	txns linetab.Table[*l2txn]
	seq  uint64 // transaction-ID sequence (per cluster)

	// freeTxn heads the cluster's l2txn free list. Transactions recycle
	// through it so steady-state misses allocate nothing; see l2txn for
	// the staleness rules that make recycling safe.
	freeTxn *l2txn

	onCoreDone func() // machine hook: a core's program completed

	stopped bool
}

// l2txn is an in-flight L2 miss/upgrade for one line. Operations arriving
// for the line while it is outstanding queue as retries.
//
// Records are pooled per cluster. Two staleness guards make recycling
// safe against ABA (a record freed and re-used for a new transaction on
// the same line): responses carry the transaction ID they answer (a
// response whose ID differs from the record's current ID is stale), and
// gen is monotonic across reuse — it is never reset — so a timer armed
// for an old incarnation can never match the current generation.
type l2txn struct {
	line    addr.Line
	id      uint64 // transaction ID shared by every retransmission; 0 = untracked
	kind    msg.ReqKind
	upgrade bool
	bornAt  event.Cycle

	gen      int // bumped on every (re)send; cancels stale timers; never reset
	timeouts int // timeout-driven retransmissions spent
	nacks    int // NACK-driven retransmissions spent

	retries []func()

	respFn   func(msg.Resp) // prebound response handler for every attempt
	nextFree *l2txn
}

// Timeout/retry defaults and NACK backoff parameters. Timeout-driven
// retransmission is armed only under fault injection with recovery on;
// NACK backoff is part of the base protocol (capacity NACKs can occur
// whenever DirNackOnCapacity is set, faults or not).
const (
	defaultRetryTimeout = 25000 // cycles before the first retransmission
	defaultRetryLimit   = 12    // timeout retransmissions before giving up
	nackBackoffBase     = 64    // cycles; doubles per consecutive NACK (capped)
	nackRetryBudget     = 100   // NACKs tolerated per transaction
)

// New builds a cluster. toHome and onCoreDone are installed by the machine.
func New(id int, cfg config.Machine, q *event.Queue, run *stats.Run) *Cluster {
	cl := &Cluster{
		ID:   id,
		name: fmt.Sprintf("cl%d", id),
		cfg:  cfg,
		q:    q,
		run:  run,
		l2:   cache.New(cfg.L2Size, cfg.L2Assoc),
	}
	for i := 0; i < cfg.CoresPerCluster; i++ {
		c := &Core{
			ID:      id*cfg.CoresPerCluster + i,
			cluster: cl,
			l1i:     cache.New(cfg.L1ISize, cfg.L1IAssoc),
			l1d:     cache.New(cfg.L1DSize, cfg.L1DAssoc),
			codeLen: addr.WordBytes,
		}
		c.fetchFn = func() { cl.fetchNext(c) }
		c.stepFn = func() { cl.step(c) }
		c.completeZeroFn = func() { cl.complete(c, 0) }
		c.executeFn = func() { cl.execute(c) }
		c.ifetchL2Fn = func() { cl.ifetchL2(c) }
		c.ifetchFillFn = func() { cl.ifetchFill(c) }
		c.l2LoadFn = func() { cl.l2Load(c) }
		c.l2StoreFn = func() { cl.l2Store(c) }
		c.flushFn = func() { cl.flush(c) }
		c.invFn = func() { cl.inv(c) }
		c.uncachedRespFn = func(resp msg.Resp) { cl.uncachedResp(c, resp) }
		c.flushRespFn = func(msg.Resp) {
			if m := cl.run.Metrics; m != nil {
				m.MsgLatency[msg.SWFlush].Observe(uint64(cl.q.Now() - c.opBorn))
			}
			cl.complete(c, 0)
		}
		cl.Cores = append(cl.Cores, c)
	}
	return cl
}

// Shutdown unwinds any program coroutines still suspended mid-operation
// after an aborted run. It is idempotent and must only be called once the
// event loop has stopped (the programs unwind without touching machine
// state). Normally-completed programs have already finished; Shutdown
// exists for the early-return paths — deadlock, retry exhaustion, cycle
// limit, oracle violation — where cores are still mid-operation. Stopping
// a finished (or never-resumed) coroutine is a no-op, so the loop needs
// no per-core state check.
func (cl *Cluster) Shutdown() {
	if cl.stopped {
		return
	}
	cl.stopped = true
	for _, c := range cl.Cores {
		if c.stop != nil {
			c.stop()
		}
	}
}

// Wire installs the machine glue.
func (cl *Cluster) Wire(toHome HomeSend, onCoreDone func()) {
	cl.toHome = toHome
	cl.onCoreDone = onCoreDone
}

// SetOracle attaches the online coherence oracle; the cluster reports
// every completed load/store, install, probe effect, flush, and eviction
// to it. A nil oracle (the default) costs nothing on the hot paths.
func (cl *Cluster) SetOracle(o *oracle.Oracle) { cl.orc = o }

// L2 exposes the shared cache for invariant checks and end-of-run drains.
func (cl *Cluster) L2() *cache.Cache { return cl.l2 }

// Pending reports whether the L2 has outstanding transactions.
func (cl *Cluster) Pending() bool { return cl.txns.Len() > 0 }

// OldestTxn reports the cluster's longest-outstanding L2 transaction
// (age and line), ties broken by lowest line address so the answer is
// deterministic. ok is false when no transaction is outstanding. The
// watchdog uses it to catch a single wedged transaction even while
// other cores keep completing operations (e.g. spin-waiting pollers).
func (cl *Cluster) OldestTxn(now event.Cycle) (age event.Cycle, line addr.Line, ok bool) {
	cl.txns.ForEach(func(l addr.Line, t *l2txn) {
		a := now - t.bornAt
		if !ok || a > age || (a == age && l < line) {
			age, line, ok = a, l, true
		}
	})
	return age, line, ok
}

// StartCore launches a program on core index i. The program runs on a
// runtime coroutine; the first operation is fetched when the core's first
// issue event fires.
func (cl *Cluster) StartCore(i int, program func(c *Core)) {
	c := cl.Cores[i]
	if c.started {
		panic(simerr.Invariant(uint64(cl.q.Now()), cl.site(), 0, "core %d started twice", c.ID))
	}
	c.started = true
	c.next, c.stop = iter.Pull(func(yield func(Op) bool) {
		c.yield = yield
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(coreShutdown); !ok {
					panic(r)
				}
			}
		}()
		program(c)
		yield(Op{Kind: OpDone})
	})
	cl.q.After(1, c.fetchFn)
}

// fetchNext resumes the program until it yields its next operation, then
// steps it. The strict alternation keeps simulation deterministic:
// exactly one of machine and program runs at any moment.
func (cl *Cluster) fetchNext(c *Core) {
	c.advance()
	cl.step(c)
}

func (cl *Cluster) step(c *Core) {
	if c.pending.Kind == OpDone {
		c.done = true
		// The program is parked in its final yield; stop finishes the
		// coroutine so nothing lingers across the thousands of
		// simulations a parallel sweep runs per process.
		c.stop()
		if cl.onCoreDone != nil {
			cl.onCoreDone()
		}
		return
	}
	cl.ifetch(c)
}

// complete resumes the program with the op's result, runs it until it
// yields its next operation, and schedules that operation's issue one
// cycle later. Resuming here — rather than when the issue event fires —
// is what keeps the strict machine/program alternation: the event loop
// never runs concurrently with program code, so programs may freely touch
// host-side state (statistics, allocators, golden models) between
// operations.
func (cl *Cluster) complete(c *Core, v uint32) {
	cl.run.ForwardProgress++
	c.resp = v
	c.advance()
	cl.q.After(1, c.stepFn)
}

// ifetch models the instruction stream: each operation advances the PC by
// one instruction within the kernel's code footprint; L1I misses access
// the L2, and L2 misses fetch the code line from the L3 (counted as
// Instruction Requests, always coherence-free reads for code).
func (cl *Cluster) ifetch(c *Core) {
	cl.run.Instructions++
	pcAddr := c.codeBase + addr.Addr((c.pc*addr.WordBytes)%c.codeLen)
	c.pc++
	line := addr.LineOf(pcAddr)
	if c.l1i.Lookup(line) != nil {
		cl.execute(c)
		return
	}
	c.ifetchLine = line
	cl.l2Stage(c.ifetchL2Fn)
}

// ifetchL2 is the L2 stage of an instruction fetch that missed the L1I.
func (cl *Cluster) ifetchL2(c *Core) {
	line := c.ifetchLine
	if cl.l2.Lookup(line) != nil {
		c.l1i.Allocate(line) // code is clean; victims drop silently
		cl.execute(c)
		return
	}
	cl.joinTxn(line, false, c.ifetchFillFn, msg.ReqInstr)
}

// ifetchFill resumes an instruction fetch once its L2 fill settled.
func (cl *Cluster) ifetchFill(c *Core) {
	line := c.ifetchLine
	if cl.l2.Peek(line) != nil && c.l1i.Peek(line) == nil {
		c.l1i.Allocate(line)
	}
	cl.execute(c)
}

// l2Stage schedules fn after the L2 access latency, serializing on the
// cluster's shared L2 port.
func (cl *Cluster) l2Stage(fn func()) {
	start := cl.q.Now()
	if cl.l2busy > start {
		start = cl.l2busy
	}
	if m := cl.run.Metrics; m != nil {
		m.L2PortWait.Observe(uint64(start - cl.q.Now()))
	}
	cl.l2busy = start + 1
	cl.q.At(start+event.Cycle(cl.cfg.L2Latency), fn)
}

func (cl *Cluster) execute(c *Core) {
	o := c.pending
	switch o.Kind {
	case OpWork:
		cl.run.Instructions += uint64(o.Cycles)
		cl.q.After(event.Cycle(o.Cycles), c.completeZeroFn)
	case OpLoad:
		cl.load(c)
	case OpStore:
		cl.l2Stage(c.l2StoreFn)
	case OpAtomic, OpUncLoad, OpUncStore:
		cl.uncached(c)
	case OpFlush:
		cl.l2Stage(c.flushFn)
	case OpInv:
		cl.l2Stage(c.invFn)
	default:
		panic(simerr.Invariant(uint64(cl.q.Now()), cl.site(), uint64(addr.LineOf(o.Addr).Base()),
			"unknown op kind %d from core %d", o.Kind, c.ID))
	}
}

// trace records an L2-side protocol event in the run's TraceLog and
// structured sink (and on stdout when Debug is set). Hot call sites guard
// on run.Tracing() || Debug themselves: a variadic call boxes its
// arguments at the call site even when tracing is off.
func (cl *Cluster) trace(format string, args ...any) {
	if !cl.run.Tracing() && !Debug {
		return
	}
	rec := stats.TraceEntry{Cycle: uint64(cl.q.Now()), Site: cl.name, Event: fmt.Sprintf(format, args...)}
	cl.run.Emit(rec)
	if Debug {
		fmt.Println(rec.String())
	}
}

// traceTxn records one endpoint of a tracked transaction's lifecycle span
// (phase 'b' at first transmission, 'e' at settle). The Chrome exporter
// pairs the endpoints by transaction ID into an async span, so retry storms
// and NACK convoys are visible as long bars in the trace viewer.
func (cl *Cluster) traceTxn(phase byte, id uint64, format string, args ...any) {
	if !cl.run.Tracing() {
		return
	}
	cl.run.Emit(stats.TraceEntry{
		Cycle: uint64(cl.q.Now()),
		Site:  cl.name,
		Event: fmt.Sprintf(format, args...),
		ID:    id,
		Phase: phase,
	})
}

// send counts and transmits a request to the line's home bank.
func (cl *Cluster) send(req msg.Req, onResp func(msg.Resp)) {
	req.Cluster = cl.ID
	cl.run.CountMessage(req.Kind.Class())
	cl.toHome(req, onResp)
}

// load returns the word at the pending op's address through the L1D/L2
// hierarchy.
func (cl *Cluster) load(c *Core) {
	a := c.pending.Addr
	line := addr.LineOf(a)
	bit := cache.WordBit(a)
	if c.l1d.Lookup(line) != nil {
		e := cl.l2.Peek(line)
		if e == nil {
			panic(simerr.Invariant(uint64(cl.q.Now()), cl.site(), uint64(line.Base()),
				"L1D/L2 inclusion broken: line in core %d's L1D but absent from L2", c.ID))
		}
		if e.ValidMask&bit != 0 {
			v := e.Data[addr.WordIndex(a)]
			if cl.orc != nil {
				cl.orc.LoadObserved(cl.ID, a, v)
			}
			cl.complete(c, v)
			return
		}
		// The line is resident but this word was never filled (SWcc
		// write-allocate leaves partial lines): fall through to a fetch.
	}
	cl.l2Stage(c.l2LoadFn)
}

func (cl *Cluster) l2Load(c *Core) {
	a := c.pending.Addr
	line := addr.LineOf(a)
	bit := cache.WordBit(a)
	if e := cl.l2.Lookup(line); e != nil && e.ValidMask&bit != 0 {
		if c.l1d.Peek(line) == nil {
			c.l1d.Allocate(line) // tags only; L1D victims drop silently
		}
		v := e.Data[addr.WordIndex(a)]
		if cl.orc != nil {
			cl.orc.LoadObserved(cl.ID, a, v)
		}
		cl.complete(c, v)
		return
	}
	// Miss, or resident with the needed word invalid: fetch and merge.
	cl.joinTxn(line, false, c.l2LoadFn, msg.ReqRead)
}

// l2Store writes the pending op's word. Stores are write-through to the
// L2 and need write permission there: Modified under HWcc, or the
// incoherent bit under SWcc/Cohesion. In pure SWcc mode a store miss
// write-allocates locally with per-word valid/dirty bits and sends no
// message at all (paper §2.1: "Writes can be issued as write-allocates
// under SWcc without waiting on a directory response").
func (cl *Cluster) l2Store(c *Core) {
	a, v := c.pending.Addr, c.pending.Value
	line := addr.LineOf(a)
	bit := cache.WordBit(a)
	e := cl.l2.Lookup(line)
	if e != nil {
		if e.Incoherent || e.State == cache.StateModified {
			if e.Incoherent {
				cl.run.Edge(trace.EdgeL2StoreHitIncoherent)
			} else {
				cl.run.Edge(trace.EdgeL2StoreHitModified)
			}
			if cl.orc != nil {
				cl.orc.StoreObserved(cl.ID, a, v, e.Incoherent)
			}
			e.Data[addr.WordIndex(a)] = v
			e.ValidMask |= bit
			e.DirtyMask |= bit
			cl.complete(c, 0)
			return
		}
		// Shared under HWcc: upgrade.
		cl.joinTxn(line, true, c.l2StoreFn, msg.ReqWrite)
		return
	}
	if cl.cfg.Mode == config.SWcc {
		cl.run.Edge(trace.EdgeL2WriteAllocate)
		ne, victim, evicted := cl.l2.Allocate(line)
		if evicted {
			cl.evictVictim(victim)
		}
		ne.Incoherent = true
		ne.ValidMask = bit
		ne.DirtyMask = bit
		ne.Data[addr.WordIndex(a)] = v
		if cl.orc != nil {
			cl.orc.StoreObserved(cl.ID, a, v, true)
		}
		cl.complete(c, 0)
		return
	}
	cl.joinTxn(line, true, c.l2StoreFn, msg.ReqWrite)
}

// allocTxn takes a transaction record from the free list (or allocates
// the pool's next record) and resets its per-incarnation state. gen is
// deliberately NOT reset: see l2txn.
func (cl *Cluster) allocTxn(line addr.Line, kind msg.ReqKind) *l2txn {
	t := cl.freeTxn
	if t == nil {
		t = &l2txn{}
		t.respFn = func(resp msg.Resp) { cl.handleResp(t.line, t, resp) }
	} else {
		cl.freeTxn = t.nextFree
		t.nextFree = nil
	}
	t.line = line
	t.kind = kind
	t.id = 0
	t.upgrade = false
	t.bornAt = cl.q.Now()
	t.timeouts = 0
	t.nacks = 0
	return t
}

// releaseTxn returns a settled record to the free list, dropping retry
// references so settled continuations are not kept alive.
func (cl *Cluster) releaseTxn(t *l2txn) {
	for i := range t.retries {
		t.retries[i] = nil
	}
	t.retries = t.retries[:0]
	t.nextFree = cl.freeTxn
	cl.freeTxn = t
}

// joinTxn coalesces misses: if a transaction is outstanding for the line
// the retry queues behind it; otherwise a request of the given kind is
// sent and the response installed.
func (cl *Cluster) joinTxn(line addr.Line, write bool, retry func(), kind msg.ReqKind) {
	if t, ok := cl.txns.Get(line); ok {
		t.retries = append(t.retries, retry)
		return
	}
	if cl.txns.Len() >= cl.cfg.L2MSHRs {
		// All miss-status registers busy: stall and retry when one drains.
		cl.run.Edge(trace.EdgeL2MSHRStall)
		cl.q.After(event.Cycle(cl.cfg.L2Latency), retry)
		return
	}
	t := cl.allocTxn(line, kind)
	t.upgrade = write && cl.l2.Peek(line) != nil
	if kind.Retryable() {
		cl.seq++
		t.id = uint64(cl.ID)<<32 | cl.seq // seq starts at 1, so IDs are nonzero
	}
	t.retries = append(t.retries, retry)
	cl.txns.Put(line, t)
	if e := cl.l2.Peek(line); e != nil {
		e.Pinned = true
	}
	cl.sendAttempt(line, t)
}

// sendAttempt transmits one (re)try of the transaction's request and arms
// its retransmission timer. Every attempt carries the same transaction ID,
// so the home deduplicates whatever subset of attempts survives the
// network.
func (cl *Cluster) sendAttempt(line addr.Line, t *l2txn) {
	t.gen++
	// Open the trace span only on the incarnation's first transmission
	// (gen is monotonic across pool reuse, so it cannot distinguish
	// incarnations; the retry counters reset per incarnation and every
	// retransmission path bumps one before resending).
	if t.id != 0 && t.timeouts == 0 && t.nacks == 0 && cl.run.Tracing() {
		cl.traceTxn('b', t.id, "%v line=%#x", t.kind, uint64(line))
	}
	cl.send(msg.Req{Kind: t.kind, Line: line, ID: t.id}, t.respFn)
	cl.armTimeout(line, t, t.gen)
}

// handleResp settles (or retries) a transaction when a response arrives.
func (cl *Cluster) handleResp(line addr.Line, t *l2txn, resp msg.Resp) {
	if cur, _ := cl.txns.Get(line); cur != t || (resp.ID != 0 && resp.ID != t.id) {
		// A late response to an attempt of an already-settled transaction
		// (the home normally dedups these away; defense in depth). The ID
		// check catches the recycled-record case: the pool may have reused
		// the record for a new transaction on the same line.
		cl.run.StaleResponses++
		cl.trace("stale-resp line=%#x grant=%v", uint64(line), resp.Grant)
		return
	}
	if resp.Grant == msg.GrantNack {
		cl.nackBackoff(line, t)
		return
	}
	if cl.run.Tracing() || Debug {
		cl.trace("install line=%#x grant=%v", uint64(line), resp.Grant)
		if t.id != 0 {
			cl.traceTxn('e', t.id, "%v line=%#x grant=%v", t.kind, uint64(line), resp.Grant)
		}
	}
	if m := cl.run.Metrics; m != nil {
		m.MsgLatency[t.kind.Class()].Observe(uint64(cl.q.Now() - t.bornAt))
		m.TxnRetries.Observe(uint64(t.timeouts + t.nacks))
	}
	cl.install(line, resp)
	cl.txns.Delete(line)
	for _, r := range t.retries {
		cl.q.After(0, r)
	}
	cl.releaseTxn(t)
}

// nackBackoff schedules a retransmission after a directory NACK, with
// capped exponential backoff so contending clusters spread out.
func (cl *Cluster) nackBackoff(line addr.Line, t *l2txn) {
	t.nacks++
	if t.nacks > nackRetryBudget {
		panic(simerr.New(simerr.ErrRetryExhausted, uint64(cl.q.Now()), cl.site(), uint64(line.Base()),
			"%v NACKed %d times since cycle %d", t.kind, t.nacks, t.bornAt))
	}
	cl.run.NackRetries++
	cl.run.Edge(trace.EdgeRecNackBackoff)
	shift := t.nacks - 1
	if shift > 6 {
		shift = 6
	}
	delay := event.Cycle(nackBackoffBase) << uint(shift)
	cl.trace("nack line=%#x attempt=%d backoff=%d", uint64(line), t.nacks, delay)
	gen := t.gen
	cl.q.After(delay, func() {
		if cur, _ := cl.txns.Get(line); cur != t || t.gen != gen {
			return
		}
		cl.sendAttempt(line, t)
	})
}

// armTimeout schedules the transaction's retransmission check. A fired
// timer whose generation is stale (the transaction settled — even if the
// record was recycled, generations are never reset — or was already
// retransmitted) does nothing.
func (cl *Cluster) armTimeout(line addr.Line, t *l2txn, gen int) {
	if t.id == 0 || !(cl.cfg.Faults.Enabled && cl.cfg.Faults.Recovery) {
		return
	}
	timeout := event.Cycle(cl.cfg.L2RetryTimeout)
	if timeout == 0 {
		timeout = defaultRetryTimeout
	}
	limit := cl.cfg.L2RetryLimit
	if limit == 0 {
		limit = defaultRetryLimit
	}
	shift := t.timeouts
	if shift > 5 {
		shift = 5
	}
	cl.q.After(timeout<<uint(shift), func() {
		if cur, _ := cl.txns.Get(line); cur != t || t.gen != gen {
			return
		}
		t.timeouts++
		if t.timeouts > limit {
			panic(simerr.New(simerr.ErrRetryExhausted, uint64(cl.q.Now()), cl.site(), uint64(line.Base()),
				"%v outstanding since cycle %d after %d timeout retransmissions", t.kind, t.bornAt, t.timeouts-1))
		}
		cl.run.L2Retries++
		cl.run.Edge(trace.EdgeRecTimeoutRetry)
		cl.trace("timeout-retry line=%#x attempt=%d", uint64(line), t.timeouts)
		cl.sendAttempt(line, t)
	})
}

// site names this cluster in diagnostics.
func (cl *Cluster) site() string { return cl.name }

// install applies a fill/upgrade response to the L2.
func (cl *Cluster) install(line addr.Line, resp msg.Resp) {
	e := cl.l2.Peek(line)
	fresh := e == nil
	if fresh {
		// Fresh fill (or the line was invalidated while upgrading and the
		// home sent data).
		if !resp.HasData {
			panic(simerr.Invariant(uint64(cl.q.Now()), cl.site(), uint64(line.Base()),
				"dataless %v response for absent line", resp.Grant))
		}
		var victim cache.Entry
		var evicted bool
		e, victim, evicted = cl.l2.Allocate(line)
		if evicted {
			cl.evictVictim(victim)
		}
		e.Data = resp.Data
		e.ValidMask = cache.FullMask
	} else {
		e.Pinned = false
		if resp.HasData {
			// Merge fetched words under locally dirty ones (SWcc partial
			// lines keep their write-allocated words).
			cl.run.Edge(trace.EdgeL2MergeFill)
			for w := 0; w < addr.WordsPerLine; w++ {
				if e.ValidMask&(1<<w) == 0 {
					e.Data[w] = resp.Data[w]
				}
			}
			e.ValidMask = cache.FullMask
		}
	}
	switch resp.Grant {
	case msg.GrantShared:
		if fresh {
			cl.run.Edge(trace.EdgeL2FillShared)
		}
		e.Incoherent = false
		e.State = cache.StateShared
	case msg.GrantModified:
		if fresh {
			cl.run.Edge(trace.EdgeL2FillModified)
		} else if !resp.HasData {
			cl.run.Edge(trace.EdgeL2UpgradeDataless)
		}
		e.Incoherent = false
		e.State = cache.StateModified
	case msg.GrantIncoherent:
		if fresh {
			cl.run.Edge(trace.EdgeL2FillIncoherent)
		}
		e.Incoherent = true
		e.State = cache.StateInvalid
	}
	if cl.orc != nil {
		cl.orc.InstallObserved(cl.ID, e)
	}
}

// uncached performs atomic and uncached word operations at the L3,
// bypassing the local caches (the paper's atom.* instructions and
// uncached loads/stores used by the runtime).
func (cl *Cluster) uncached(c *Core) {
	o := c.pending
	kind := msg.ReqAtomic
	switch o.Kind {
	case OpUncLoad:
		kind = msg.ReqUncLoad
	case OpUncStore:
		kind = msg.ReqUncStore
	}
	req := msg.Req{
		Kind:     kind,
		Line:     addr.LineOf(o.Addr),
		Addr:     addr.WordAlign(o.Addr),
		Op:       o.AOp,
		Operand:  o.Value,
		Operand2: o.Op2,
	}
	c.opBorn = cl.q.Now()
	cl.send(req, c.uncachedRespFn)
}

// uncachedResp settles an uncached/atomic operation. All three kinds
// share the Atomic accounting class, so the latency histogram index is
// constant.
func (cl *Cluster) uncachedResp(c *Core, resp msg.Resp) {
	if m := cl.run.Metrics; m != nil {
		m.MsgLatency[msg.Atomic].Observe(uint64(cl.q.Now() - c.opBorn))
	}
	if resp.RaceException {
		c.raceTrapped = true
	}
	cl.complete(c, resp.Value)
}

// flush implements the software WB instruction for the line containing
// the pending op's address: dirty words are written back to the L3 and
// the line stays resident clean. Flushes of absent lines are the wasted
// operations of Figure 3. Runs after the L2 stage latency.
func (cl *Cluster) flush(c *Core) {
	line := addr.LineOf(c.pending.Addr)
	cl.run.WBIssued++
	e := cl.l2.Peek(line)
	if e == nil {
		cl.run.Edge(trace.EdgeL2FlushAbsent)
		cl.complete(c, 0)
		return
	}
	cl.run.WBUseful++
	if e.DirtyMask == 0 {
		cl.run.Edge(trace.EdgeL2FlushClean)
		cl.complete(c, 0)
		return
	}
	cl.run.Edge(trace.EdgeL2FlushDirty)
	req := msg.Req{Kind: msg.ReqSWFlush, Line: line, Mask: e.DirtyMask, Data: e.Data}
	e.DirtyMask = 0
	if cl.orc != nil {
		cl.orc.WritebackObserved(cl.ID, line, req.Mask, req.Data)
	}
	c.opBorn = cl.q.Now()
	cl.send(req, c.flushRespFn)
}

// inv implements the software INV instruction: the line is dropped
// locally. Incoherent lines drop silently (clean SWcc drops send no
// message, paper §3.4); hardware-coherent lines are surrendered properly
// so the directory stays consistent (dirty data written back, clean copies
// released). Runs after the L2 stage latency.
func (cl *Cluster) inv(c *Core) {
	line := addr.LineOf(c.pending.Addr)
	cl.run.InvIssued++
	e := cl.l2.Peek(line)
	if e == nil || e.Pinned {
		cl.run.Edge(trace.EdgeL2InvAbsent)
		cl.complete(c, 0)
		return
	}
	cl.run.InvUseful++
	cl.run.Edge(trace.EdgeL2InvDrop)
	cl.dropLine(e)
	cl.complete(c, 0)
}

// dropLine implements the INV instruction's removal: incoherent lines are
// discarded outright — dirty words included; invalidation means the data
// is not wanted — while hardware-coherent lines are surrendered properly
// so the directory stays consistent.
func (cl *Cluster) dropLine(e *cache.Entry) {
	line := e.Line
	if cl.orc != nil {
		cl.orc.EvictObserved(cl.ID, e, !e.Incoherent)
	}
	if !e.Incoherent {
		cl.surrender(*e)
	}
	cl.l2.Invalidate(line)
	cl.invalidateL1(line)
}

// evictVictim handles a line displaced by an allocation.
func (cl *Cluster) evictVictim(victim cache.Entry) {
	if cl.orc != nil {
		cl.orc.EvictObserved(cl.ID, &victim, true)
	}
	cl.invalidateL1(victim.Line)
	cl.surrender(victim)
}

// surrender emits the message an L2 owes the home when giving up a line:
// dirty data is written back (Cache Evictions); clean hardware-coherent
// lines send a read release when the protocol uses them; clean incoherent
// lines drop silently.
func (cl *Cluster) surrender(e cache.Entry) {
	switch {
	case e.Incoherent:
		if e.DirtyMask != 0 {
			cl.run.Edge(trace.EdgeL2EvictDirtyIncoh)
			cl.send(msg.Req{Kind: msg.ReqEvict, Line: e.Line, Mask: e.DirtyMask, Data: e.Data}, nil)
		} else {
			cl.run.Edge(trace.EdgeL2EvictSilent)
		}
	case e.State == cache.StateModified:
		cl.run.Edge(trace.EdgeL2EvictDirtyHW)
		cl.send(msg.Req{Kind: msg.ReqEvict, Line: e.Line, Mask: e.DirtyMask, Data: e.Data}, nil)
	case e.State == cache.StateShared && cl.cfg.ReadReleases:
		cl.run.Edge(trace.EdgeL2EvictReadRel)
		cl.send(msg.Req{Kind: msg.ReqReadRel, Line: e.Line}, nil)
	default:
		cl.run.Edge(trace.EdgeL2EvictSilent)
	}
}

func (cl *Cluster) invalidateL1(line addr.Line) {
	for _, c := range cl.Cores {
		c.l1d.Invalidate(line)
		c.l1i.Invalidate(line)
	}
}

// HandleProbe services a directory probe, replying through reply (the
// machine glue counts the reply as a Probe Response and routes it back).
func (cl *Cluster) HandleProbe(p msg.Probe, reply func(msg.ProbeReply)) {
	if cl.orc != nil {
		// Observe every reply at the moment it leaves (after the L2 entry
		// was mutated), so the oracle's holder model tracks probe effects.
		inner := reply
		reply = func(rep msg.ProbeReply) {
			cl.orc.ProbeApplied(cl.ID, p, rep)
			inner(rep)
		}
	}
	e := cl.l2.Peek(p.Line)
	if cl.run.Tracing() || Debug {
		cl.trace("probe %v line=%#x present=%v", p.Kind, uint64(p.Line), e != nil)
	}
	base := msg.ProbeReply{Cluster: cl.ID, Line: p.Line}
	switch p.Kind {
	case msg.ProbeInv:
		if e == nil {
			cl.run.Edge(trace.EdgeL2ProbeInvAbsent)
			base.Kind = msg.ReplyAck
			reply(base)
			return
		}
		if e.DirtyMask != 0 {
			// Defensive: every live ProbeInv path targets clean copies
			// (capture-clean clears the incoherent bit synchronously, and
			// stores on Shared serialize behind the home's pinned txn), so
			// this branch is unreachable today. Kept so a future protocol
			// change cannot silently lose dirty data; deliberately not a
			// registered coverage edge (PROTOCOL.md §7).
			base.Kind = msg.ReplyData
			base.Mask = e.DirtyMask
			base.Data = e.Data
		} else {
			cl.run.Edge(trace.EdgeL2ProbeInvClean)
			base.Kind = msg.ReplyAck
		}
		cl.l2.Invalidate(p.Line)
		cl.invalidateL1(p.Line)
		reply(base)

	case msg.ProbeWB:
		if e == nil {
			cl.run.Edge(trace.EdgeL2ProbeWBAbsent)
			base.Kind = msg.ReplyAck // eviction in flight; home will merge it
			reply(base)
			return
		}
		cl.run.Edge(trace.EdgeL2ProbeWBData)
		base.Kind = msg.ReplyData
		base.Mask = e.DirtyMask
		base.Data = e.Data
		cl.l2.Invalidate(p.Line)
		cl.invalidateL1(p.Line)
		reply(base)

	case msg.ProbeCapture:
		switch {
		case e == nil:
			cl.run.Edge(trace.EdgeL2CaptureAbsent)
			base.Kind = msg.ReplyNotPresent
		case e.DirtyMask != 0:
			// Report dirty words; phase two decides writeback vs upgrade.
			cl.run.Edge(trace.EdgeL2CaptureDirty)
			base.Kind = msg.ReplyDirty
			base.Mask = e.DirtyMask
		default:
			// Clean: the line becomes a hardware sharer in place.
			cl.run.Edge(trace.EdgeL2CaptureClean)
			e.Incoherent = false
			e.State = cache.StateShared
			base.Kind = msg.ReplyClean
		}
		reply(base)

	case msg.ProbeUpgradeOwner:
		if e == nil {
			base.Kind = msg.ReplyNotPresent
			reply(base)
			return
		}
		cl.run.Edge(trace.EdgeL2CaptureUpgrade)
		e.Incoherent = false
		e.State = cache.StateModified
		base.Kind = msg.ReplyAck
		reply(base)

	default:
		panic(simerr.Invariant(uint64(cl.q.Now()), cl.site(), uint64(p.Line.Base()),
			"unknown probe kind %v", p.Kind))
	}
}

// StuckReport describes the cluster's unfinished work — outstanding L2
// transactions and cores blocked mid-operation — for deadlock diagnostics.
// Returns nil when nothing is outstanding. Lines are sorted so the report
// is deterministic.
func (cl *Cluster) StuckReport(now event.Cycle) []string {
	var out []string
	lines := make([]addr.Line, 0, cl.txns.Len())
	cl.txns.ForEach(func(line addr.Line, _ *l2txn) { lines = append(lines, line) })
	sort.Slice(lines, func(i, j int) bool { return lines[i] < lines[j] })
	for _, line := range lines {
		t, _ := cl.txns.Get(line)
		out = append(out, fmt.Sprintf(
			"cl%d: %v line=%#x outstanding %d cycles (id=%#x, %d waiters, %d timeouts, %d nacks)",
			cl.ID, t.kind, uint64(line.Base()), now-t.bornAt, t.id, len(t.retries), t.timeouts, t.nacks))
	}
	for _, c := range cl.Cores {
		if c.started && !c.done && c.pending.Kind != OpDone {
			out = append(out, fmt.Sprintf("cl%d: core %d blocked on %v addr=%#x",
				cl.ID, c.ID, c.pending.Kind, uint64(c.pending.Addr)))
		}
	}
	return out
}

// DrainDirty force-writes every dirty word in the L2 to the backing store
// via fn; used by the machine at simulation end so host-side verification
// sees final values (the hardware analogue is the chip's exit flush).
func (cl *Cluster) DrainDirty(fn func(line addr.Line, mask uint8, data [addr.WordsPerLine]uint32)) {
	cl.l2.ForEach(func(e *cache.Entry) {
		if e.DirtyMask != 0 {
			fn(e.Line, e.DirtyMask, e.Data)
		}
	})
}
