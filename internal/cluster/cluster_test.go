package cluster

import (
	"testing"

	"cohesion/internal/addr"
	"cohesion/internal/cache"
	"cohesion/internal/config"
	"cohesion/internal/event"
	"cohesion/internal/msg"
	"cohesion/internal/stats"
)

// fakeHome scripts the home side of the protocol: every outbound request
// is recorded, and a responder decides the reply (immediately, with a
// small delay, to model the network round trip).
type fakeHome struct {
	t       *testing.T
	q       *event.Queue
	reqs    []msg.Req
	respond func(req msg.Req) *msg.Resp // nil = no response (fire-and-forget)
}

func (f *fakeHome) send(req msg.Req, onResp func(msg.Resp)) {
	f.reqs = append(f.reqs, req)
	if f.respond == nil {
		if onResp != nil {
			f.t.Fatalf("no responder for %v", req.Kind)
		}
		return
	}
	resp := f.respond(req)
	if resp == nil {
		return
	}
	if onResp == nil {
		return
	}
	r := *resp
	f.q.After(5, func() { onResp(r) })
}

// grantAll responds to every request with the "obvious" grant: data for
// reads/writes, values for uncached ops.
func grantAll(store map[addr.Addr]uint32, grant func(msg.Req) msg.Grant) func(msg.Req) *msg.Resp {
	return func(req msg.Req) *msg.Resp {
		switch req.Kind {
		case msg.ReqRead, msg.ReqWrite, msg.ReqInstr:
			resp := msg.Resp{Grant: grant(req), HasData: true}
			for w := 0; w < addr.WordsPerLine; w++ {
				resp.Data[w] = store[req.Line.Base()+addr.Addr(4*w)]
			}
			return &resp
		case msg.ReqSWFlush:
			for w := 0; w < addr.WordsPerLine; w++ {
				if req.Mask&(1<<w) != 0 {
					store[req.Line.Base()+addr.Addr(4*w)] = req.Data[w]
				}
			}
			return &msg.Resp{Grant: msg.GrantNone}
		case msg.ReqEvict:
			for w := 0; w < addr.WordsPerLine; w++ {
				if req.Mask&(1<<w) != 0 {
					store[req.Line.Base()+addr.Addr(4*w)] = req.Data[w]
				}
			}
			return nil
		case msg.ReqReadRel:
			return nil
		case msg.ReqUncLoad:
			return &msg.Resp{Value: store[addr.WordAlign(req.Addr)]}
		case msg.ReqUncStore:
			store[addr.WordAlign(req.Addr)] = req.Operand
			return &msg.Resp{}
		case msg.ReqAtomic:
			old := store[addr.WordAlign(req.Addr)]
			store[addr.WordAlign(req.Addr)] = req.Op.Apply(old, req.Operand, req.Operand2)
			return &msg.Resp{Value: old}
		}
		return nil
	}
}

type fixture struct {
	t    *testing.T
	q    *event.Queue
	run  *stats.Run
	cl   *Cluster
	home *fakeHome
	mem  map[addr.Addr]uint32
	done int
}

func newFixture(t *testing.T, mode config.Mode) *fixture {
	t.Helper()
	cfg := config.Scaled(1).WithMode(mode)
	if mode != config.SWcc {
		cfg = cfg.WithDirectory(config.DirInfinite, 0, 0)
	}
	f := &fixture{t: t, q: &event.Queue{}, run: &stats.Run{}, mem: map[addr.Addr]uint32{}}
	f.home = &fakeHome{t: t, q: f.q}
	f.cl = New(0, cfg, f.q, f.run)
	f.cl.Wire(f.home.send, func() { f.done++ })
	return f
}

// exec runs a program on core 0 to completion.
func (f *fixture) exec(body func(c *Core)) {
	f.execOn(0, body)
	f.q.Run(0)
	if f.done == 0 {
		f.t.Fatal("program did not finish")
	}
}

func (f *fixture) execOn(core int, body func(c *Core)) {
	f.cl.StartCore(core, func(c *Core) {
		c.SetCode(addr.CodeBase, 64) // one code line: a single ifetch miss
		body(c)
	})
}

func (f *fixture) kinds() []msg.ReqKind {
	out := make([]msg.ReqKind, len(f.home.reqs))
	for i, r := range f.home.reqs {
		out[i] = r.Kind
	}
	return out
}

func (f *fixture) countKind(k msg.ReqKind) int {
	n := 0
	for _, r := range f.home.reqs {
		if r.Kind == k {
			n++
		}
	}
	return n
}

const dataAddr = addr.Addr(addr.HeapBase)

func TestClusterLoadMissFillsAndCaches(t *testing.T) {
	f := newFixture(t, config.HWcc)
	f.mem[dataAddr] = 42
	f.home.respond = grantAll(f.mem, func(msg.Req) msg.Grant { return msg.GrantShared })
	var v1, v2 uint32
	f.exec(func(c *Core) {
		v1 = c.Do(Op{Kind: OpLoad, Addr: dataAddr})
		v2 = c.Do(Op{Kind: OpLoad, Addr: dataAddr + 4})
	})
	if v1 != 42 || v2 != 0 {
		t.Fatalf("loads = %d, %d", v1, v2)
	}
	if f.countKind(msg.ReqRead) != 1 {
		t.Fatalf("read requests = %d, want 1 (second load hits)", f.countKind(msg.ReqRead))
	}
	e := f.cl.L2().Peek(addr.LineOf(dataAddr))
	if e == nil || e.State != cache.StateShared || e.Incoherent {
		t.Fatalf("L2 entry = %+v", e)
	}
}

func TestClusterStoreMissThenHit(t *testing.T) {
	f := newFixture(t, config.HWcc)
	f.home.respond = grantAll(f.mem, func(req msg.Req) msg.Grant {
		if req.Kind == msg.ReqWrite {
			return msg.GrantModified
		}
		return msg.GrantShared
	})
	f.exec(func(c *Core) {
		c.Do(Op{Kind: OpStore, Addr: dataAddr, Value: 7})
		c.Do(Op{Kind: OpStore, Addr: dataAddr + 4, Value: 8}) // hits in M
	})
	if f.countKind(msg.ReqWrite) != 1 {
		t.Fatalf("write requests = %d, want 1", f.countKind(msg.ReqWrite))
	}
	e := f.cl.L2().Peek(addr.LineOf(dataAddr))
	if e == nil || e.State != cache.StateModified || e.DirtyMask != 0b11 {
		t.Fatalf("entry = %+v", e)
	}
	if e.Data[0] != 7 || e.Data[1] != 8 {
		t.Fatal("store data wrong")
	}
}

func TestClusterUpgradeFromShared(t *testing.T) {
	f := newFixture(t, config.HWcc)
	f.home.respond = grantAll(f.mem, func(req msg.Req) msg.Grant {
		if req.Kind == msg.ReqWrite {
			return msg.GrantModified
		}
		return msg.GrantShared
	})
	// Upgrade responses carry no data when the requester was a sharer.
	base := f.home.respond
	f.home.respond = func(req msg.Req) *msg.Resp {
		if req.Kind == msg.ReqWrite {
			return &msg.Resp{Grant: msg.GrantModified} // dataless upgrade
		}
		return base(req)
	}
	f.exec(func(c *Core) {
		_ = c.Do(Op{Kind: OpLoad, Addr: dataAddr}) // line S
		c.Do(Op{Kind: OpStore, Addr: dataAddr, Value: 9})
	})
	e := f.cl.L2().Peek(addr.LineOf(dataAddr))
	if e == nil || e.State != cache.StateModified || e.Data[0] != 9 {
		t.Fatalf("entry = %+v", e)
	}
}

func TestClusterSWccStoreMissIsSilent(t *testing.T) {
	f := newFixture(t, config.SWcc)
	f.home.respond = grantAll(f.mem, func(msg.Req) msg.Grant { return msg.GrantIncoherent })
	f.exec(func(c *Core) {
		c.Do(Op{Kind: OpStore, Addr: dataAddr, Value: 3})
	})
	if n := f.countKind(msg.ReqWrite); n != 0 {
		t.Fatalf("SWcc store sent %d write requests", n)
	}
	e := f.cl.L2().Peek(addr.LineOf(dataAddr))
	if e == nil || !e.Incoherent || e.ValidMask != 1 || e.DirtyMask != 1 {
		t.Fatalf("entry = %+v", e)
	}
}

func TestClusterPartialLineFetchMergePreservesDirty(t *testing.T) {
	f := newFixture(t, config.SWcc)
	f.mem[dataAddr] = 1000 // stale memory under the locally dirty word
	f.mem[dataAddr+8] = 30
	f.home.respond = grantAll(f.mem, func(msg.Req) msg.Grant { return msg.GrantIncoherent })
	var other, own uint32
	f.exec(func(c *Core) {
		c.Do(Op{Kind: OpStore, Addr: dataAddr, Value: 5}) // partial allocate
		other = c.Do(Op{Kind: OpLoad, Addr: dataAddr + 8})
		own = c.Do(Op{Kind: OpLoad, Addr: dataAddr})
	})
	if other != 30 {
		t.Fatalf("fetched word = %d", other)
	}
	if own != 5 {
		t.Fatalf("locally dirty word = %d (stale memory leaked in)", own)
	}
	e := f.cl.L2().Peek(addr.LineOf(dataAddr))
	if e.ValidMask != cache.FullMask || e.DirtyMask != 1 {
		t.Fatalf("masks = %x/%x", e.ValidMask, e.DirtyMask)
	}
}

func TestClusterMissCoalescing(t *testing.T) {
	// Two cores missing on the same line produce one request.
	f := newFixture(t, config.HWcc)
	f.home.respond = grantAll(f.mem, func(msg.Req) msg.Grant { return msg.GrantShared })
	got := make([]uint32, 2)
	f.mem[dataAddr] = 77
	f.execOn(0, func(c *Core) { got[0] = c.Do(Op{Kind: OpLoad, Addr: dataAddr}) })
	f.execOn(1, func(c *Core) { got[1] = c.Do(Op{Kind: OpLoad, Addr: dataAddr}) })
	f.q.Run(0)
	if f.done != 2 {
		t.Fatal("programs did not finish")
	}
	if got[0] != 77 || got[1] != 77 {
		t.Fatalf("loads = %v", got)
	}
	if n := f.countKind(msg.ReqRead); n != 1 {
		t.Fatalf("read requests = %d, want 1 (coalesced)", n)
	}
}

func TestClusterFlushSemantics(t *testing.T) {
	f := newFixture(t, config.SWcc)
	f.home.respond = grantAll(f.mem, func(msg.Req) msg.Grant { return msg.GrantIncoherent })
	f.exec(func(c *Core) {
		c.Do(Op{Kind: OpFlush, Addr: dataAddr}) // absent: wasted
		c.Do(Op{Kind: OpStore, Addr: dataAddr, Value: 11})
		c.Do(Op{Kind: OpFlush, Addr: dataAddr}) // dirty: writes back
		c.Do(Op{Kind: OpFlush, Addr: dataAddr}) // clean now: no message
	})
	if f.run.WBIssued != 3 || f.run.WBUseful != 2 {
		t.Fatalf("wb issued/useful = %d/%d, want 3/2", f.run.WBIssued, f.run.WBUseful)
	}
	if n := f.countKind(msg.ReqSWFlush); n != 1 {
		t.Fatalf("flush messages = %d, want 1", n)
	}
	if f.mem[dataAddr] != 11 {
		t.Fatal("flush data lost")
	}
	e := f.cl.L2().Peek(addr.LineOf(dataAddr))
	if e == nil || e.DirtyMask != 0 {
		t.Fatal("flush must leave the line resident and clean")
	}
}

func TestClusterInvSemantics(t *testing.T) {
	f := newFixture(t, config.HWcc)
	f.home.respond = grantAll(f.mem, func(req msg.Req) msg.Grant {
		if req.Kind == msg.ReqWrite {
			return msg.GrantModified
		}
		return msg.GrantShared
	})
	other := dataAddr + 0x4000
	f.exec(func(c *Core) {
		c.Do(Op{Kind: OpInv, Addr: dataAddr}) // absent: wasted
		_ = c.Do(Op{Kind: OpLoad, Addr: dataAddr})
		c.Do(Op{Kind: OpInv, Addr: dataAddr}) // clean coherent: read release
		c.Do(Op{Kind: OpStore, Addr: other, Value: 5})
		c.Do(Op{Kind: OpInv, Addr: other}) // dirty coherent: eviction message
	})
	if f.run.InvIssued != 3 || f.run.InvUseful != 2 {
		t.Fatalf("inv issued/useful = %d/%d", f.run.InvIssued, f.run.InvUseful)
	}
	if f.countKind(msg.ReqReadRel) != 1 || f.countKind(msg.ReqEvict) != 1 {
		t.Fatalf("messages = %v", f.kinds())
	}
	if f.cl.L2().Peek(addr.LineOf(dataAddr)) != nil || f.cl.L2().Peek(addr.LineOf(other)) != nil {
		t.Fatal("invalidated lines still present")
	}
	if f.mem[other] != 5 {
		t.Fatal("dirty data from coherent inv lost")
	}
}

func TestClusterSWccInvDropsDirtySilently(t *testing.T) {
	// INV on an incoherent dirty line discards the data with no message —
	// the documented (sharp-edged) SWcc semantics.
	f := newFixture(t, config.SWcc)
	f.home.respond = grantAll(f.mem, func(msg.Req) msg.Grant { return msg.GrantIncoherent })
	f.exec(func(c *Core) {
		c.Do(Op{Kind: OpStore, Addr: dataAddr, Value: 9})
		c.Do(Op{Kind: OpInv, Addr: dataAddr})
	})
	if f.countKind(msg.ReqEvict)+f.countKind(msg.ReqSWFlush) != 0 {
		t.Fatalf("messages = %v, want none", f.kinds())
	}
	if _, ok := f.mem[dataAddr]; ok {
		t.Fatal("dropped data reached memory")
	}
}

func TestClusterEvictionMessages(t *testing.T) {
	// Overfill one L2 set; victims must emit the right messages.
	f := newFixture(t, config.HWcc)
	f.home.respond = grantAll(f.mem, func(req msg.Req) msg.Grant {
		if req.Kind == msg.ReqWrite {
			return msg.GrantModified
		}
		return msg.GrantShared
	})
	setStride := addr.Addr(64 << 10 / 16) // lines mapping to the same set
	f.exec(func(c *Core) {
		c.Do(Op{Kind: OpStore, Addr: dataAddr, Value: 1}) // will become the victim
		for i := 1; i <= 16; i++ {
			_ = c.Do(Op{Kind: OpLoad, Addr: dataAddr + addr.Addr(i)*setStride})
		}
	})
	if f.countKind(msg.ReqEvict) == 0 {
		t.Fatalf("no dirty eviction: %v", f.kinds())
	}
	if f.mem[dataAddr] != 1 {
		t.Fatal("evicted dirty data lost")
	}
}

func TestClusterReadReleaseToggle(t *testing.T) {
	run := func(releases bool) int {
		f := newFixture(t, config.HWcc)
		f.cl.cfg.ReadReleases = releases
		f.home.respond = grantAll(f.mem, func(msg.Req) msg.Grant { return msg.GrantShared })
		setStride := addr.Addr(64 << 10 / 16)
		f.exec(func(c *Core) {
			for i := 0; i <= 16; i++ { // one more than the ways
				_ = c.Do(Op{Kind: OpLoad, Addr: dataAddr + addr.Addr(i)*setStride})
			}
		})
		return f.countKind(msg.ReqReadRel)
	}
	if run(true) == 0 {
		t.Fatal("no read releases with the protocol enabled")
	}
	if run(false) != 0 {
		t.Fatal("read releases sent despite ablation")
	}
}

func TestClusterProbeMatrix(t *testing.T) {
	f := newFixture(t, config.Cohesion)
	f.home.respond = grantAll(f.mem, func(req msg.Req) msg.Grant {
		if req.Kind == msg.ReqWrite {
			return msg.GrantModified
		}
		return msg.GrantShared
	})
	probe := func(k msg.ProbeKind, line addr.Line) msg.ProbeReply {
		var out msg.ProbeReply
		f.cl.HandleProbe(msg.Probe{Kind: k, Line: line}, func(r msg.ProbeReply) { out = r })
		return out
	}

	absent := addr.LineOf(dataAddr + 0x10000)
	if r := probe(msg.ProbeInv, absent); r.Kind != msg.ReplyAck {
		t.Fatalf("inv absent = %v", r.Kind)
	}
	if r := probe(msg.ProbeWB, absent); r.Kind != msg.ReplyAck {
		t.Fatalf("wb absent = %v", r.Kind)
	}
	if r := probe(msg.ProbeCapture, absent); r.Kind != msg.ReplyNotPresent {
		t.Fatalf("capture absent = %v", r.Kind)
	}
	if r := probe(msg.ProbeUpgradeOwner, absent); r.Kind != msg.ReplyNotPresent {
		t.Fatalf("upgrade absent = %v", r.Kind)
	}

	// Install a dirty coherent line, then probe it.
	f.exec(func(c *Core) {
		c.Do(Op{Kind: OpStore, Addr: dataAddr, Value: 5})
	})
	line := addr.LineOf(dataAddr)
	r := probe(msg.ProbeWB, line)
	if r.Kind != msg.ReplyData || r.Mask != 1 || r.Data[0] != 5 {
		t.Fatalf("wb dirty = %+v", r)
	}
	if f.cl.L2().Peek(line) != nil {
		t.Fatal("ProbeWB left the line resident")
	}

	// A clean incoherent line: capture turns it into a hardware sharer.
	swAddr := dataAddr + 0x8000
	base := f.home.respond
	f.home.respond = func(req msg.Req) *msg.Resp {
		if req.Line == addr.LineOf(swAddr) {
			resp := base(req)
			resp.Grant = msg.GrantIncoherent
			return resp
		}
		return base(req)
	}
	f.done = 0
	f.execOn(1, func(c *Core) { _ = c.Do(Op{Kind: OpLoad, Addr: swAddr}) })
	f.q.Run(0)
	r = probe(msg.ProbeCapture, addr.LineOf(swAddr))
	if r.Kind != msg.ReplyClean {
		t.Fatalf("capture clean = %v", r.Kind)
	}
	e := f.cl.L2().Peek(addr.LineOf(swAddr))
	if e == nil || e.Incoherent || e.State != cache.StateShared {
		t.Fatalf("captured line = %+v", e)
	}

	// A dirty incoherent line: capture reports dirty and keeps the line;
	// upgrade-owner then makes it Modified in place.
	swAddr2 := dataAddr + 0xC000
	f.done = 0
	f.execOn(2, func(c *Core) { c.Do(Op{Kind: OpStore, Addr: swAddr2, Value: 8}) })
	f.q.Run(0)
	// Force the line incoherent-dirty (the fake home granted M; rewrite).
	e2 := f.cl.L2().Peek(addr.LineOf(swAddr2))
	e2.Incoherent = true
	e2.State = cache.StateInvalid
	r = probe(msg.ProbeCapture, addr.LineOf(swAddr2))
	if r.Kind != msg.ReplyDirty || r.Mask != 1 {
		t.Fatalf("capture dirty = %+v", r)
	}
	if f.cl.L2().Peek(addr.LineOf(swAddr2)) == nil {
		t.Fatal("capture evicted the dirty line")
	}
	r = probe(msg.ProbeUpgradeOwner, addr.LineOf(swAddr2))
	if r.Kind != msg.ReplyAck {
		t.Fatalf("upgrade = %v", r.Kind)
	}
	e2 = f.cl.L2().Peek(addr.LineOf(swAddr2))
	if e2.Incoherent || e2.State != cache.StateModified || e2.DirtyMask != 1 {
		t.Fatalf("upgraded line = %+v", e2)
	}
}

func TestClusterIFetchSharedCodeLine(t *testing.T) {
	// Two cores share the L2's code line: one instruction request total.
	f := newFixture(t, config.HWcc)
	f.home.respond = grantAll(f.mem, func(msg.Req) msg.Grant { return msg.GrantShared })
	f.execOn(0, func(c *Core) { c.Do(Op{Kind: OpWork, Cycles: 1}) })
	f.execOn(1, func(c *Core) { c.Do(Op{Kind: OpWork, Cycles: 1}) })
	f.q.Run(0)
	if n := f.countKind(msg.ReqInstr); n != 1 {
		t.Fatalf("instruction requests = %d, want 1", n)
	}
}

func TestClusterLargeCodeFootprintMisses(t *testing.T) {
	f := newFixture(t, config.HWcc)
	f.home.respond = grantAll(f.mem, func(msg.Req) msg.Grant { return msg.GrantShared })
	f.cl.StartCore(0, func(c *Core) {
		c.SetCode(addr.CodeBase, 4<<10) // 4 KB footprint > 2 KB L1I
		for i := 0; i < 3000; i++ {
			c.Do(Op{Kind: OpWork, Cycles: 1})
		}
	})
	f.q.Run(0)
	if n := f.countKind(msg.ReqInstr); n < 100 {
		t.Fatalf("instruction requests = %d, want many (footprint exceeds L1I)", n)
	}
}

func TestClusterUncachedOps(t *testing.T) {
	f := newFixture(t, config.HWcc)
	f.home.respond = grantAll(f.mem, func(msg.Req) msg.Grant { return msg.GrantShared })
	var old, v uint32
	f.exec(func(c *Core) {
		c.Do(Op{Kind: OpUncStore, Addr: dataAddr, Value: 40})
		old = c.Do(Op{Kind: OpAtomic, Addr: dataAddr, AOp: msg.AtomicAdd, Value: 2})
		v = c.Do(Op{Kind: OpUncLoad, Addr: dataAddr})
	})
	if old != 40 || v != 42 {
		t.Fatalf("old=%d v=%d", old, v)
	}
	// None of these touched the L2.
	if f.cl.L2().Peek(addr.LineOf(dataAddr)) != nil {
		t.Fatal("uncached op allocated a cache line")
	}
}

func TestClusterDrainDirty(t *testing.T) {
	f := newFixture(t, config.SWcc)
	f.home.respond = grantAll(f.mem, func(msg.Req) msg.Grant { return msg.GrantIncoherent })
	f.exec(func(c *Core) {
		c.Do(Op{Kind: OpStore, Addr: dataAddr, Value: 1})
		c.Do(Op{Kind: OpStore, Addr: dataAddr + 0x1000, Value: 2})
	})
	seen := map[addr.Line]uint8{}
	f.cl.DrainDirty(func(line addr.Line, mask uint8, data [addr.WordsPerLine]uint32) {
		seen[line] = mask
	})
	if len(seen) != 2 {
		t.Fatalf("drained %d lines, want 2", len(seen))
	}
}

func TestClusterStartCoreTwicePanics(t *testing.T) {
	f := newFixture(t, config.HWcc)
	f.home.respond = grantAll(f.mem, func(msg.Req) msg.Grant { return msg.GrantShared })
	f.exec(func(c *Core) {})
	defer func() {
		if recover() == nil {
			t.Fatal("double StartCore accepted")
		}
	}()
	f.cl.StartCore(0, func(c *Core) {})
}

func TestClusterMSHRLimitStallsNotDeadlocks(t *testing.T) {
	// With a single MSHR, concurrent misses from different cores stall and
	// retry; every load must still complete with the right value.
	f := newFixture(t, config.HWcc)
	f.cl.cfg.L2MSHRs = 1
	f.home.respond = grantAll(f.mem, func(msg.Req) msg.Grant { return msg.GrantShared })
	for w := 0; w < 4; w++ {
		f.mem[dataAddr+addr.Addr(0x1000*w)] = uint32(100 + w)
	}
	got := make([]uint32, 4)
	for c := 0; c < 4; c++ {
		c := c
		f.execOn(c, func(core *Core) {
			got[c] = core.Do(Op{Kind: OpLoad, Addr: dataAddr + addr.Addr(0x1000*c)})
		})
	}
	f.q.Run(0)
	if f.done != 4 {
		t.Fatalf("only %d cores finished", f.done)
	}
	for c := 0; c < 4; c++ {
		if got[c] != uint32(100+c) {
			t.Fatalf("core %d loaded %d", c, got[c])
		}
	}
}
