package stats

import (
	"fmt"
	"strings"

	"cohesion/internal/trace"
)

// TraceEntry is one protocol event retained by the bounded trace log. It
// is the shared record type of internal/trace, so the post-mortem ring,
// the streaming sink, and the Debug stdout mirrors all render events
// identically (sim-time column included).
type TraceEntry = trace.Record

// TraceLog is a fixed-capacity ring of protocol events. When full, the
// oldest entries are overwritten — after a run it holds the tail of the
// protocol history, which is what post-mortem debugging wants.
type TraceLog struct {
	cap     int
	entries []TraceEntry
	next    int
	total   uint64
}

// NewTraceLog builds a ring holding up to capacity entries.
func NewTraceLog(capacity int) *TraceLog {
	if capacity < 1 {
		capacity = 1
	}
	return &TraceLog{cap: capacity}
}

// Add appends an event, evicting the oldest when full.
func (l *TraceLog) Add(cycle uint64, site, event string) {
	l.AddRecord(TraceEntry{Cycle: cycle, Site: site, Event: event})
}

// AddRecord appends a prepared record, evicting the oldest when full.
func (l *TraceLog) AddRecord(e TraceEntry) {
	l.total++
	if len(l.entries) < l.cap {
		l.entries = append(l.entries, e)
		return
	}
	l.entries[l.next] = e
	l.next = (l.next + 1) % l.cap
}

// Total reports how many events were ever added.
func (l *TraceLog) Total() uint64 { return l.total }

// Entries returns the retained events, oldest first.
func (l *TraceLog) Entries() []TraceEntry {
	if len(l.entries) < l.cap {
		out := make([]TraceEntry, len(l.entries))
		copy(out, l.entries)
		return out
	}
	out := make([]TraceEntry, 0, l.cap)
	out = append(out, l.entries[l.next:]...)
	out = append(out, l.entries[:l.next]...)
	return out
}

// Dump renders the retained tail of the trace.
func (l *TraceLog) Dump() string {
	var b strings.Builder
	if dropped := l.total - uint64(len(l.entries)); dropped > 0 {
		fmt.Fprintf(&b, "... %d earlier events dropped ...\n", dropped)
	}
	for _, e := range l.Entries() {
		b.WriteString(e.String())
		b.WriteString("\n")
	}
	return b.String()
}

// Tracing reports whether any event consumer is attached; emitters use it
// to skip the Sprintf that renders an event's detail.
func (r *Run) Tracing() bool { return r.Trace != nil || r.Sink != nil }

// Emit hands a prepared record to every attached consumer.
func (r *Run) Emit(rec TraceEntry) {
	if r.Trace != nil {
		r.Trace.AddRecord(rec)
	}
	if r.Sink != nil {
		r.Sink.Add(rec)
	}
}

// TraceEvent records a protocol event when tracing is enabled; it is a
// no-op (and avoids the Sprintf) otherwise.
func (r *Run) TraceEvent(cycle uint64, site, format string, args ...any) {
	if !r.Tracing() {
		return
	}
	r.Emit(TraceEntry{Cycle: cycle, Site: site, Event: fmt.Sprintf(format, args...)})
}

// Edge marks a protocol-transition edge as exercised when a coverage
// tracker is attached; nil-checked so the hot paths pay one branch.
func (r *Run) Edge(e trace.EdgeID) {
	if r.Coverage != nil {
		r.Coverage.Mark(e)
	}
}
