package stats

import (
	"fmt"
	"strings"
)

// TraceEntry is one protocol event retained by the bounded trace log.
type TraceEntry struct {
	Cycle uint64
	Site  string // component that emitted it, e.g. "home3", "cl0"
	Event string
}

func (e TraceEntry) String() string {
	return fmt.Sprintf("%10d %-8s %s", e.Cycle, e.Site, e.Event)
}

// TraceLog is a fixed-capacity ring of protocol events. When full, the
// oldest entries are overwritten — after a run it holds the tail of the
// protocol history, which is what post-mortem debugging wants.
type TraceLog struct {
	cap     int
	entries []TraceEntry
	next    int
	total   uint64
}

// NewTraceLog builds a ring holding up to capacity entries.
func NewTraceLog(capacity int) *TraceLog {
	if capacity < 1 {
		capacity = 1
	}
	return &TraceLog{cap: capacity}
}

// Add appends an event, evicting the oldest when full.
func (l *TraceLog) Add(cycle uint64, site, event string) {
	l.total++
	e := TraceEntry{Cycle: cycle, Site: site, Event: event}
	if len(l.entries) < l.cap {
		l.entries = append(l.entries, e)
		return
	}
	l.entries[l.next] = e
	l.next = (l.next + 1) % l.cap
}

// Total reports how many events were ever added.
func (l *TraceLog) Total() uint64 { return l.total }

// Entries returns the retained events, oldest first.
func (l *TraceLog) Entries() []TraceEntry {
	if len(l.entries) < l.cap {
		out := make([]TraceEntry, len(l.entries))
		copy(out, l.entries)
		return out
	}
	out := make([]TraceEntry, 0, l.cap)
	out = append(out, l.entries[l.next:]...)
	out = append(out, l.entries[:l.next]...)
	return out
}

// Dump renders the retained tail of the trace.
func (l *TraceLog) Dump() string {
	var b strings.Builder
	if dropped := l.total - uint64(len(l.entries)); dropped > 0 {
		fmt.Fprintf(&b, "... %d earlier events dropped ...\n", dropped)
	}
	for _, e := range l.Entries() {
		b.WriteString(e.String())
		b.WriteString("\n")
	}
	return b.String()
}

// TraceEvent records a protocol event when tracing is enabled; it is a
// no-op (and avoids the Sprintf) otherwise.
func (r *Run) TraceEvent(cycle uint64, site, format string, args ...any) {
	if r.Trace == nil {
		return
	}
	r.Trace.Add(cycle, site, fmt.Sprintf(format, args...))
}
