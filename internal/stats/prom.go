package stats

import (
	"fmt"
	"io"
)

// WriteProm emits the histogram in Prometheus text exposition format as
// a classic cumulative histogram: one <name>_bucket series per occupied
// log2 bucket boundary plus the +Inf bucket, then <name>_sum and
// <name>_count. labels, when non-empty, is a comma-joined list of
// already-rendered label pairs (`kernel="heat"`) applied to every
// series. The serving layer uses it to expose job latencies without a
// Prometheus client dependency.
func (h *Histogram) WriteProm(w io.Writer, name, labels string) {
	with := func(extra string) string {
		switch {
		case labels == "" && extra == "":
			return ""
		case labels == "":
			return "{" + extra + "}"
		case extra == "":
			return "{" + labels + "}"
		}
		return "{" + labels + "," + extra + "}"
	}
	// The highest occupied bucket bounds the emitted series, so a scrape
	// scales with the observed range rather than the 65-bucket capacity.
	top := -1
	for i, n := range h.Buckets {
		if n > 0 {
			top = i
		}
	}
	var cum uint64
	for i := 0; i <= top; i++ {
		cum += h.Buckets[i]
		// Bucket i holds values v with bits.Len64(v) == i: exactly 0 for
		// i = 0, the range [2^(i-1), 2^i) otherwise — so the inclusive
		// upper bound is 2^i - 1.
		le := uint64(0)
		if i > 0 {
			le = 1<<uint(i) - 1
		}
		fmt.Fprintf(w, "%s_bucket%s %d\n", name, with(fmt.Sprintf("le=%q", fmt.Sprint(le))), cum)
	}
	fmt.Fprintf(w, "%s_bucket%s %d\n", name, with(`le="+Inf"`), h.Count)
	fmt.Fprintf(w, "%s_sum%s %d\n", name, with(""), h.Sum)
	fmt.Fprintf(w, "%s_count%s %d\n", name, with(""), h.Count)
}
