package stats

import (
	"encoding/json"
	"hash/fnv"

	"cohesion/internal/addr"
	"cohesion/internal/msg"
)

// Snapshot is the serializable image of a Run's cumulative counters —
// everything a checkpoint must persist so a resumed run reports the same
// statistics as an uninterrupted one. The observability attachments
// (Trace, Sink, Coverage, Metrics) are deliberately excluded: they are
// live instruments re-attached by the resuming process, not state.
type Snapshot struct {
	Messages   [msg.NumKinds]uint64 `json:"messages"`
	ProbesSent uint64               `json:"probes_sent"`

	InvIssued uint64 `json:"inv_issued,omitempty"`
	InvUseful uint64 `json:"inv_useful,omitempty"`
	WBIssued  uint64 `json:"wb_issued,omitempty"`
	WBUseful  uint64 `json:"wb_useful,omitempty"`

	TransitionsToSW uint64 `json:"transitions_to_sw,omitempty"`
	TransitionsToHW uint64 `json:"transitions_to_hw,omitempty"`

	DirEvictions  uint64 `json:"dir_evictions,omitempty"`
	DirBroadcasts uint64 `json:"dir_broadcasts,omitempty"`
	OverlapRaces  uint64 `json:"overlap_races,omitempty"`

	FaultDrops  uint64 `json:"fault_drops,omitempty"`
	FaultDups   uint64 `json:"fault_dups,omitempty"`
	FaultDelays uint64 `json:"fault_delays,omitempty"`
	NacksSent   uint64 `json:"nacks_sent,omitempty"`

	L2Retries      uint64 `json:"l2_retries,omitempty"`
	NackRetries    uint64 `json:"nack_retries,omitempty"`
	StaleResponses uint64 `json:"stale_responses,omitempty"`
	DupsDropped    uint64 `json:"dups_dropped,omitempty"`

	ForwardProgress uint64 `json:"forward_progress"`

	DRAMReads  uint64 `json:"dram_reads"`
	DRAMWrites uint64 `json:"dram_writes"`

	Instructions uint64 `json:"instructions"`
	Cycles       uint64 `json:"cycles"`
	Events       uint64 `json:"events"`

	NetMessages uint64 `json:"net_messages"`
	NetBytes    uint64 `json:"net_bytes"`

	Occupancy OccupancySnap    `json:"occupancy"`
	Phases    []PhaseMark      `json:"phases,omitempty"`
	Timeline  []TimelineSample `json:"timeline,omitempty"`
}

// OccupancySnap is the serializable form of OccupancySampler.
type OccupancySnap struct {
	Samples  uint64                  `json:"samples"`
	SumTotal uint64                  `json:"sum_total"`
	SumClass [addr.NumClasses]uint64 `json:"sum_class"`
	MaxTotal uint64                  `json:"max_total"`
}

// Snap exports the sampler's accumulated sums.
func (o *OccupancySampler) Snap() OccupancySnap {
	return OccupancySnap{Samples: o.samples, SumTotal: o.sumTotal, SumClass: o.sumClass, MaxTotal: o.maxTotal}
}

// Sampler reconstructs a sampler from a snapshot.
func (s OccupancySnap) Sampler() OccupancySampler {
	return OccupancySampler{samples: s.Samples, sumTotal: s.SumTotal, sumClass: s.SumClass, maxTotal: s.MaxTotal}
}

// Snapshot exports every cumulative counter.
func (r *Run) Snapshot() Snapshot {
	return Snapshot{
		Messages:        r.Messages,
		ProbesSent:      r.ProbesSent,
		InvIssued:       r.InvIssued,
		InvUseful:       r.InvUseful,
		WBIssued:        r.WBIssued,
		WBUseful:        r.WBUseful,
		TransitionsToSW: r.TransitionsToSW,
		TransitionsToHW: r.TransitionsToHW,
		DirEvictions:    r.DirEvictions,
		DirBroadcasts:   r.DirBroadcasts,
		OverlapRaces:    r.OverlapRaces,
		FaultDrops:      r.FaultDrops,
		FaultDups:       r.FaultDups,
		FaultDelays:     r.FaultDelays,
		NacksSent:       r.NacksSent,
		L2Retries:       r.L2Retries,
		NackRetries:     r.NackRetries,
		StaleResponses:  r.StaleResponses,
		DupsDropped:     r.DupsDropped,
		ForwardProgress: r.ForwardProgress,
		DRAMReads:       r.DRAMReads,
		DRAMWrites:      r.DRAMWrites,
		Instructions:    r.Instructions,
		Cycles:          r.Cycles,
		Events:          r.Events,
		NetMessages:     r.NetMessages,
		NetBytes:        r.NetBytes,
		Occupancy:       r.Occupancy.Snap(),
		Phases:          append([]PhaseMark(nil), r.PhaseMarks...),
		Timeline:        append([]TimelineSample(nil), r.Timeline...),
	}
}

// ToRun reconstructs a Run holding the snapshot's counters. The caller
// re-attaches any live observability instruments afterwards.
func (s Snapshot) ToRun() Run {
	return Run{
		Messages:        s.Messages,
		ProbesSent:      s.ProbesSent,
		InvIssued:       s.InvIssued,
		InvUseful:       s.InvUseful,
		WBIssued:        s.WBIssued,
		WBUseful:        s.WBUseful,
		TransitionsToSW: s.TransitionsToSW,
		TransitionsToHW: s.TransitionsToHW,
		DirEvictions:    s.DirEvictions,
		DirBroadcasts:   s.DirBroadcasts,
		OverlapRaces:    s.OverlapRaces,
		FaultDrops:      s.FaultDrops,
		FaultDups:       s.FaultDups,
		FaultDelays:     s.FaultDelays,
		NacksSent:       s.NacksSent,
		L2Retries:       s.L2Retries,
		NackRetries:     s.NackRetries,
		StaleResponses:  s.StaleResponses,
		DupsDropped:     s.DupsDropped,
		ForwardProgress: s.ForwardProgress,
		DRAMReads:       s.DRAMReads,
		DRAMWrites:      s.DRAMWrites,
		Instructions:    s.Instructions,
		Cycles:          s.Cycles,
		Events:          s.Events,
		NetMessages:     s.NetMessages,
		NetBytes:        s.NetBytes,
		Occupancy:       s.Occupancy.Sampler(),
		PhaseMarks:      append([]PhaseMark(nil), s.Phases...),
		Timeline:        append([]TimelineSample(nil), s.Timeline...),
	}
}

// Digest hashes every cumulative counter, giving the checkpoint layer a
// cheap equality probe for the stats layer. JSON field order is fixed by
// the Snapshot struct, so the digest is deterministic.
func (r *Run) Digest() uint64 {
	b, err := json.Marshal(r.Snapshot())
	if err != nil {
		// Snapshot holds only integers and fixed structs; Marshal cannot
		// fail. Keep a defensive distinct value anyway.
		return ^uint64(0)
	}
	h := fnv.New64a()
	h.Write(b)
	return h.Sum64()
}
