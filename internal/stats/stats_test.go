package stats

import (
	"math"
	"strings"
	"testing"

	"cohesion/internal/addr"
	"cohesion/internal/msg"
)

func TestCountAndTotal(t *testing.T) {
	var r Run
	r.CountMessage(msg.ReadReq)
	r.CountMessage(msg.ReadReq)
	r.CountMessage(msg.SWFlush)
	if r.Messages[msg.ReadReq] != 2 || r.Messages[msg.SWFlush] != 1 {
		t.Fatalf("counts wrong: %v", r.Messages)
	}
	if r.TotalMessages() != 3 {
		t.Fatalf("total = %d", r.TotalMessages())
	}
}

func TestUsefulFractions(t *testing.T) {
	var r Run
	if r.UsefulInvFraction() != 0 || r.UsefulWBFraction() != 0 {
		t.Fatal("empty run fractions should be 0")
	}
	r.InvIssued, r.InvUseful = 10, 4
	r.WBIssued, r.WBUseful = 8, 8
	if math.Abs(r.UsefulInvFraction()-0.4) > 1e-12 {
		t.Fatalf("inv fraction = %f", r.UsefulInvFraction())
	}
	if r.UsefulWBFraction() != 1.0 {
		t.Fatalf("wb fraction = %f", r.UsefulWBFraction())
	}
}

func TestOccupancySampler(t *testing.T) {
	var o OccupancySampler
	if o.MeanTotal() != 0 || o.MaxTotal() != 0 || o.MeanClass(addr.ClassCode) != 0 {
		t.Fatal("empty sampler not zero")
	}
	var s1, s2 [addr.NumClasses]uint64
	s1[addr.ClassCode] = 2
	s1[addr.ClassHeapGlobal] = 10
	s1[addr.ClassStack] = 4
	s2[addr.ClassHeapGlobal] = 30
	o.Sample(s1)
	o.Sample(s2)
	if o.Samples() != 2 {
		t.Fatalf("samples = %d", o.Samples())
	}
	if got := o.MeanTotal(); got != 23 { // (16+30)/2
		t.Fatalf("mean total = %f", got)
	}
	if got := o.MeanClass(addr.ClassHeapGlobal); got != 20 {
		t.Fatalf("mean heap = %f", got)
	}
	if got := o.MeanClass(addr.ClassStack); got != 2 {
		t.Fatalf("mean stack = %f", got)
	}
	if o.MaxTotal() != 30 {
		t.Fatalf("max = %d", o.MaxTotal())
	}
}

func TestRunString(t *testing.T) {
	var r Run
	r.Cycles = 100
	r.CountMessage(msg.Atomic)
	r.InvIssued, r.InvUseful = 2, 1
	r.TransitionsToHW = 3
	r.ProbesSent = 7
	var cls [addr.NumClasses]uint64
	cls[addr.ClassStack] = 5
	r.Occupancy.Sample(cls)
	s := r.String()
	for _, want := range []string{"cycles=100", "Uncached/Atomic", "inv useful 0.500", "toHW=3", "Probes", "mean=5.0"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q:\n%s", want, s)
		}
	}
}

func TestTable(t *testing.T) {
	tb := Table{Header: []string{"kernel", "value"}}
	tb.Add("stencil", "1.0")
	tb.Add("cg", "2.5")
	tb.Sort()
	if tb.Rows[0][0] != "cg" {
		t.Fatalf("sort failed: %v", tb.Rows)
	}
	s := tb.String()
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("table has %d lines:\n%s", len(lines), s)
	}
	if !strings.HasPrefix(lines[0], "kernel") || !strings.Contains(lines[1], "cg") {
		t.Fatalf("table formatting wrong:\n%s", s)
	}
}
