// Package stats collects the measurements the paper's evaluation reports:
// L2-output message counts by class (Figs 2, 8), SWcc coherence-instruction
// efficiency (Fig 3), directory occupancy over time with an address-class
// breakdown (Fig 9c), and end-to-end run time (Figs 9a/9b, 10).
package stats

import (
	"fmt"
	"sort"
	"strings"

	"cohesion/internal/addr"
	"cohesion/internal/msg"
	"cohesion/internal/trace"
)

// Run accumulates every measurement for one simulation.
type Run struct {
	// Messages counts L2-output messages by class (the Figs 2/8 stack).
	Messages [msg.NumKinds]uint64

	// ProbesSent counts directory-to-L2 probe messages (invalidations,
	// writeback requests, and SW-to-HW clean-capture broadcasts). Not part
	// of the figures' stacks, but reported for network-load analysis.
	ProbesSent uint64

	// SWcc coherence-instruction efficiency (Fig 3). "Useful" operations
	// found the target line valid in the L2.
	InvIssued, InvUseful uint64
	WBIssued, WBUseful   uint64

	// Cohesion domain transitions performed by the directory.
	TransitionsToSW, TransitionsToHW uint64

	// Directory behaviour.
	DirEvictions  uint64 // entries evicted for capacity (sparse/limited)
	DirBroadcasts uint64 // Dir4B overflow broadcasts

	// OverlapRaces counts SW-to-HW captures that found the same word dirty
	// in more than one L2 — the paper's Figure 7 Case 5b software race.
	OverlapRaces uint64

	// Fault injection (counts of injected events; see internal/fault).
	FaultDrops  uint64 // requests dropped in flight
	FaultDups   uint64 // requests delivered twice
	FaultDelays uint64 // link traversals given a delay spike
	NacksSent   uint64 // allocation NACKs sent by home banks (injected + capacity)

	// Protocol recovery (the requester/home side of the resilience layer).
	L2Retries      uint64 // timeout-driven retransmissions
	NackRetries    uint64 // retransmissions after a directory NACK
	StaleResponses uint64 // responses discarded for already-settled transactions
	DupsDropped    uint64 // duplicate request deliveries dropped by home dedup

	// ForwardProgress counts completed core operations plus home-side
	// transaction grants; the machine's watchdog declares deadlock when it
	// stops advancing while cores are still active.
	ForwardProgress uint64

	// DRAM line transfers.
	DRAMReads, DRAMWrites uint64

	// Core activity.
	Instructions uint64 // memory + coherence instructions executed
	Cycles       uint64 // simulated run time

	// Events counts discrete events executed by the simulation's event
	// queue (filled in by the machine at the end of a run). Events per
	// wall-clock second is the simulator's throughput metric, tracked by
	// cmd/cohesion-bench.
	Events uint64

	// Network load (filled in by the machine at the end of a run).
	NetMessages uint64
	NetBytes    uint64

	// Occupancy samples the allocated-directory-entry count every
	// SamplePeriod cycles (Fig 9c).
	Occupancy OccupancySampler

	// Trace, when non-nil, retains the tail of the protocol event history
	// (see TraceLog). Enabled via machine.Machine.EnableTrace.
	Trace *TraceLog

	// Sink, when non-nil, streams every protocol event into the bounded
	// structured-trace ring for Chrome-trace/text export (internal/trace).
	Sink *trace.Sink

	// Coverage, when non-nil, marks protocol-transition edges as they
	// fire. It may be shared by many simulations (marks are atomic) to
	// aggregate coverage across a test or fuzz batch.
	Coverage *trace.Coverage

	// Metrics, when non-nil, collects sim-time histograms (message
	// latency by class, port waits, queue depths, directory occupancy).
	Metrics *Metrics

	// PhaseMarks records each global barrier release: the cycle it
	// happened and the cumulative message count at that point, giving a
	// per-phase traffic breakdown for bulk-synchronous workloads.
	PhaseMarks []PhaseMark

	// Timeline samples cumulative traffic alongside the occupancy sampler
	// (every SamplePeriod cycles), for traffic-over-time plots.
	Timeline []TimelineSample
}

// PhaseMark is one barrier release.
type PhaseMark struct {
	Cycle    uint64
	Messages uint64
}

// MarkPhase appends a barrier-release mark (bounded against runaway
// phase counts).
func (r *Run) MarkPhase(cycle uint64) {
	if len(r.PhaseMarks) < 1<<16 {
		r.PhaseMarks = append(r.PhaseMarks, PhaseMark{Cycle: cycle, Messages: r.TotalMessages()})
	}
}

// TimelineSample is one periodic traffic observation.
type TimelineSample struct {
	Cycle      uint64
	Messages   uint64 // cumulative L2-output messages
	Probes     uint64 // cumulative directory probes
	DirEntries uint64 // currently allocated directory entries
}

// SamplePeriod is the directory-occupancy sampling interval in cycles
// (the paper samples every 1000 cycles).
const SamplePeriod = 1000

// CountMessage records one L2-output message of class k.
func (r *Run) CountMessage(k msg.Kind) { r.Messages[k]++ }

// TotalMessages sums the L2-output message classes.
func (r *Run) TotalMessages() uint64 {
	var t uint64
	for _, n := range r.Messages {
		t += n
	}
	return t
}

// OccupancySampler tracks time-averaged and maximum directory occupancy,
// broken down by address class (code / heap+global / stack).
type OccupancySampler struct {
	samples  uint64
	sumTotal uint64
	sumClass [addr.NumClasses]uint64
	maxTotal uint64
}

// Sample records one observation of the current per-class entry counts.
func (o *OccupancySampler) Sample(byClass [addr.NumClasses]uint64) {
	o.samples++
	var total uint64
	for c, n := range byClass {
		o.sumClass[c] += n
		total += n
	}
	o.sumTotal += total
	if total > o.maxTotal {
		o.maxTotal = total
	}
}

// Samples reports the number of observations taken.
func (o *OccupancySampler) Samples() uint64 { return o.samples }

// MeanTotal returns the time-averaged total number of allocated entries.
func (o *OccupancySampler) MeanTotal() float64 {
	if o.samples == 0 {
		return 0
	}
	return float64(o.sumTotal) / float64(o.samples)
}

// MeanClass returns the time-averaged entry count for one address class.
func (o *OccupancySampler) MeanClass(c addr.Class) float64 {
	if o.samples == 0 {
		return 0
	}
	return float64(o.sumClass[c]) / float64(o.samples)
}

// MaxTotal returns the maximum observed total entry count.
func (o *OccupancySampler) MaxTotal() uint64 { return o.maxTotal }

// UsefulInvFraction returns the Fig-3 "useful invalidations" ratio.
func (r *Run) UsefulInvFraction() float64 { return frac(r.InvUseful, r.InvIssued) }

// UsefulWBFraction returns the Fig-3 "useful writebacks" ratio.
func (r *Run) UsefulWBFraction() float64 { return frac(r.WBUseful, r.WBIssued) }

func frac(num, den uint64) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// String renders a compact human-readable report.
func (r *Run) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cycles=%d instructions=%d messages=%d\n", r.Cycles, r.Instructions, r.TotalMessages())
	for _, k := range msg.Kinds() {
		if r.Messages[k] > 0 {
			fmt.Fprintf(&b, "  %-28s %d\n", k.String(), r.Messages[k])
		}
	}
	if r.ProbesSent > 0 {
		fmt.Fprintf(&b, "  %-28s %d\n", "Probes (dir->L2)", r.ProbesSent)
	}
	if r.InvIssued+r.WBIssued > 0 {
		fmt.Fprintf(&b, "  swcc inv useful %.3f (%d/%d) wb useful %.3f (%d/%d)\n",
			r.UsefulInvFraction(), r.InvUseful, r.InvIssued,
			r.UsefulWBFraction(), r.WBUseful, r.WBIssued)
	}
	if r.TransitionsToHW+r.TransitionsToSW > 0 {
		fmt.Fprintf(&b, "  transitions toHW=%d toSW=%d\n", r.TransitionsToHW, r.TransitionsToSW)
	}
	if r.Occupancy.Samples() > 0 {
		fmt.Fprintf(&b, "  directory mean=%.1f max=%d entries\n", r.Occupancy.MeanTotal(), r.Occupancy.MaxTotal())
	}
	if r.FaultDrops+r.FaultDups+r.FaultDelays+r.NacksSent > 0 {
		fmt.Fprintf(&b, "  faults injected: drops=%d dups=%d delays=%d nacks=%d\n",
			r.FaultDrops, r.FaultDups, r.FaultDelays, r.NacksSent)
	}
	if r.L2Retries+r.NackRetries+r.StaleResponses+r.DupsDropped > 0 {
		fmt.Fprintf(&b, "  recovery: retries=%d nack-retries=%d stale-resp=%d dup-dropped=%d\n",
			r.L2Retries, r.NackRetries, r.StaleResponses, r.DupsDropped)
	}
	return b.String()
}

// Table renders rows of label/value pairs aligned in columns; used by the
// experiment harness for figure output.
type Table struct {
	Header []string
	Rows   [][]string
}

// Add appends a row.
func (t *Table) Add(cells ...string) { t.Rows = append(t.Rows, cells) }

// Sort orders rows lexicographically by the first column.
func (t *Table) Sort() {
	sort.SliceStable(t.Rows, func(i, j int) bool { return t.Rows[i][0] < t.Rows[j][0] })
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	width := make([]int, len(t.Header))
	for i, h := range t.Header {
		width[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(width) && len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", width[i], c)
		}
		b.WriteString("\n")
	}
	writeRow(t.Header)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}
