package stats

import (
	"fmt"
	"math/bits"

	"cohesion/internal/msg"
)

// histBuckets is the bucket count of a log2 histogram: bucket i holds
// observations v with bits.Len64(v) == i, i.e. bucket 0 is exactly 0 and
// bucket i>0 covers [2^(i-1), 2^i).
const histBuckets = 65

// Histogram is a power-of-two-bucketed histogram of sim-time (or count)
// observations. Fixed-size and allocation-free so one can live inline in
// every metric slot.
type Histogram struct {
	Count   uint64
	Sum     uint64
	Min     uint64
	Max     uint64
	Buckets [histBuckets]uint64
}

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	if h.Count == 0 || v < h.Min {
		h.Min = v
	}
	if v > h.Max {
		h.Max = v
	}
	h.Count++
	h.Sum += v
	h.Buckets[bits.Len64(v)]++
}

// Mean returns the average observation (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}

// Quantile returns an upper bound on the q-quantile (0 < q <= 1): the top
// of the first bucket whose cumulative count reaches q*Count, clamped to
// the observed maximum. Returns 0 when empty.
func (h *Histogram) Quantile(q float64) uint64 {
	if h.Count == 0 {
		return 0
	}
	target := uint64(q * float64(h.Count))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i, n := range h.Buckets {
		cum += n
		if cum >= target {
			if i == 0 {
				return 0
			}
			top := uint64(1)<<uint(i) - 1
			if top > h.Max {
				top = h.Max
			}
			return top
		}
	}
	return h.Max
}

// HistSummary is a histogram's exportable digest (BENCH_results.json and
// the -json outputs).
type HistSummary struct {
	Count uint64  `json:"count"`
	Mean  float64 `json:"mean"`
	P50   uint64  `json:"p50"`
	P90   uint64  `json:"p90"`
	P99   uint64  `json:"p99"`
	Max   uint64  `json:"max"`
}

// Summarize digests the histogram.
func (h *Histogram) Summarize() HistSummary {
	return HistSummary{
		Count: h.Count,
		Mean:  h.Mean(),
		P50:   h.Quantile(0.50),
		P90:   h.Quantile(0.90),
		P99:   h.Quantile(0.99),
		Max:   h.Max,
	}
}

// Metrics is the per-run metrics registry: sim-time histograms sampled at
// the protocol's natural observation points. Attached to a Run only on
// request (cohesion.RunConfig.Metrics); every observation site is
// nil-checked so disabled runs pay one branch.
type Metrics struct {
	// MsgLatency is the issue-to-settle latency of L2 transactions by
	// their L2-output message class (ReadReq, WriteReq, InstrReq from the
	// miss path; Atomic from the uncached path; SWFlush from flushes).
	MsgLatency [msg.NumKinds]Histogram

	// HomePortWait and L2PortWait are cycles a message waited for the
	// single L3-bank / L2 port beyond its pipeline latency.
	HomePortWait Histogram
	L2PortWait   Histogram

	// HomeQueueDepth samples, at each enqueue, how many requests were
	// already waiting on the target line's transaction slot.
	HomeQueueDepth Histogram

	// DirOccupancy samples total allocated directory entries alongside
	// the occupancy sampler (every SamplePeriod cycles).
	DirOccupancy Histogram

	// TxnRetries is the per-settled-transaction count of retransmissions
	// (NACK backoffs plus timeout retries).
	TxnRetries Histogram
}

// NewMetrics returns an empty registry.
func NewMetrics() *Metrics { return &Metrics{} }

// MetricsExport is the JSON shape of a metrics registry.
type MetricsExport struct {
	MsgLatency     map[string]HistSummary `json:"msg_latency"`
	HomePortWait   HistSummary            `json:"home_port_wait"`
	L2PortWait     HistSummary            `json:"l2_port_wait"`
	HomeQueueDepth HistSummary            `json:"home_queue_depth"`
	DirOccupancy   HistSummary            `json:"dir_occupancy"`
	TxnRetries     HistSummary            `json:"txn_retries"`
}

// Export digests every histogram for JSON output. Empty message classes
// are omitted.
func (m *Metrics) Export() MetricsExport {
	out := MetricsExport{
		MsgLatency:     map[string]HistSummary{},
		HomePortWait:   m.HomePortWait.Summarize(),
		L2PortWait:     m.L2PortWait.Summarize(),
		HomeQueueDepth: m.HomeQueueDepth.Summarize(),
		DirOccupancy:   m.DirOccupancy.Summarize(),
		TxnRetries:     m.TxnRetries.Summarize(),
	}
	for _, k := range msg.Kinds() {
		if m.MsgLatency[k].Count > 0 {
			out.MsgLatency[k.String()] = m.MsgLatency[k].Summarize()
		}
	}
	return out
}

// Summary renders the registry as an aligned table for text output.
func (m *Metrics) Summary() *Table {
	t := &Table{Header: []string{"metric", "count", "mean", "p50", "p90", "p99", "max"}}
	row := func(name string, h *Histogram) {
		if h.Count == 0 {
			return
		}
		s := h.Summarize()
		t.Add(name,
			fmt.Sprintf("%d", s.Count), fmt.Sprintf("%.1f", s.Mean),
			fmt.Sprintf("%d", s.P50), fmt.Sprintf("%d", s.P90),
			fmt.Sprintf("%d", s.P99), fmt.Sprintf("%d", s.Max))
	}
	for _, k := range msg.Kinds() {
		row("latency: "+k.String(), &m.MsgLatency[k])
	}
	row("home port wait", &m.HomePortWait)
	row("l2 port wait", &m.L2PortWait)
	row("home queue depth", &m.HomeQueueDepth)
	row("dir occupancy", &m.DirOccupancy)
	row("txn retries", &m.TxnRetries)
	return t
}
