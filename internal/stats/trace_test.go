package stats

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestTraceLogRingBasics(t *testing.T) {
	l := NewTraceLog(3)
	if l.Total() != 0 || len(l.Entries()) != 0 {
		t.Fatal("fresh log not empty")
	}
	l.Add(1, "a", "one")
	l.Add(2, "b", "two")
	es := l.Entries()
	if len(es) != 2 || es[0].Event != "one" || es[1].Event != "two" {
		t.Fatalf("entries = %+v", es)
	}
	l.Add(3, "c", "three")
	l.Add(4, "d", "four") // evicts "one"
	l.Add(5, "e", "five") // evicts "two"
	es = l.Entries()
	if len(es) != 3 {
		t.Fatalf("%d entries, want 3", len(es))
	}
	want := []string{"three", "four", "five"}
	for i, w := range want {
		if es[i].Event != w {
			t.Fatalf("entries = %+v", es)
		}
	}
	if l.Total() != 5 {
		t.Fatalf("Total = %d", l.Total())
	}
	d := l.Dump()
	if !strings.Contains(d, "2 earlier events dropped") || !strings.Contains(d, "five") {
		t.Fatalf("Dump:\n%s", d)
	}
}

func TestTraceLogMinimumCapacity(t *testing.T) {
	l := NewTraceLog(0)
	l.Add(1, "x", "a")
	l.Add(2, "x", "b")
	es := l.Entries()
	if len(es) != 1 || es[0].Event != "b" {
		t.Fatalf("entries = %+v", es)
	}
}

func TestTraceEventNilSafe(t *testing.T) {
	var r Run
	r.TraceEvent(1, "x", "should be dropped %d", 1) // Trace is nil: no-op
	r.Trace = NewTraceLog(4)
	r.TraceEvent(2, "home0", "line %#x", 0x40)
	es := r.Trace.Entries()
	if len(es) != 1 || es[0].Site != "home0" || !strings.Contains(es[0].Event, "0x40") {
		t.Fatalf("entries = %+v", es)
	}
	if es[0].String() == "" {
		t.Fatal("empty render")
	}
}

// Property: the ring always keeps exactly the last min(n, cap) events in
// insertion order.
func TestQuickTraceRingKeepsTail(t *testing.T) {
	f := func(capRaw uint8, n uint8) bool {
		capacity := int(capRaw%16) + 1
		l := NewTraceLog(capacity)
		for i := 0; i < int(n); i++ {
			l.Add(uint64(i), "s", string(rune('a'+i%26)))
		}
		es := l.Entries()
		want := int(n)
		if want > capacity {
			want = capacity
		}
		if len(es) != want {
			return false
		}
		for i, e := range es {
			expect := int(n) - want + i
			if e.Cycle != uint64(expect) {
				return false
			}
		}
		return l.Total() == uint64(n)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
