package stats

import (
	"strings"
	"testing"
)

// TestHistogramWriteProm checks the exposition is a well-formed classic
// Prometheus histogram: cumulative buckets in increasing le order, a
// +Inf bucket equal to the count, and matching sum/count series.
func TestHistogramWriteProm(t *testing.T) {
	var h Histogram
	for _, v := range []uint64{0, 1, 1, 3, 100} {
		h.Observe(v)
	}
	var b strings.Builder
	h.WriteProm(&b, "job_latency_ms", `kernel="heat"`)
	out := b.String()

	for _, want := range []string{
		`job_latency_ms_bucket{kernel="heat",le="0"} 1`,   // the single 0
		`job_latency_ms_bucket{kernel="heat",le="1"} 3`,   // + two 1s
		`job_latency_ms_bucket{kernel="heat",le="3"} 4`,   // + the 3
		`job_latency_ms_bucket{kernel="heat",le="127"} 5`, // + the 100
		`job_latency_ms_bucket{kernel="heat",le="+Inf"} 5`,
		`job_latency_ms_sum{kernel="heat"} 105`,
		`job_latency_ms_count{kernel="heat"} 5`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}

	// Cumulative counts must be non-decreasing line to line.
	var prev int64 = -1
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if !strings.HasPrefix(line, "job_latency_ms_bucket") {
			continue
		}
		var n int64
		if _, err := fmtSscanLast(line, &n); err != nil {
			t.Fatalf("unparseable line %q: %v", line, err)
		}
		if n < prev {
			t.Fatalf("bucket counts decreased at %q", line)
		}
		prev = n
	}
}

// TestHistogramWritePromEmptyAndUnlabeled: an empty histogram still emits
// a valid +Inf/sum/count triple, and no labels means no braces.
func TestHistogramWritePromEmptyAndUnlabeled(t *testing.T) {
	var h Histogram
	var b strings.Builder
	h.WriteProm(&b, "x", "")
	out := b.String()
	for _, want := range []string{`x_bucket{le="+Inf"} 0`, "x_sum 0", "x_count 0"} {
		if !strings.Contains(out, want+"\n") {
			t.Fatalf("empty exposition missing %q:\n%s", want, out)
		}
	}
}

// fmtSscanLast parses the final whitespace-separated field as an int64.
func fmtSscanLast(line string, n *int64) (int, error) {
	fields := strings.Fields(line)
	last := fields[len(fields)-1]
	var v int64
	for _, c := range last {
		if c < '0' || c > '9' {
			return 0, errNotDigit
		}
		v = v*10 + int64(c-'0')
	}
	*n = v
	return 1, nil
}

var errNotDigit = &parseErr{}

type parseErr struct{}

func (*parseErr) Error() string { return "non-digit in count" }
