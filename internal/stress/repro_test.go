package stress

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cohesion/internal/addr"
)

// saveRepro writes a valid corruption repro and returns it with its path.
func saveRepro(t *testing.T) (Repro, string) {
	t.Helper()
	p, err := Generate(Config{Seed: 5, Mode: "cohesion", InjectCorrupt: true})
	if err != nil {
		t.Fatal(err)
	}
	res := RunProgram(p)
	if res.Err == nil {
		t.Fatal("planted corruption was not detected")
	}
	r := NewRepro(p, res)
	path := filepath.Join(t.TempDir(), "repro.json")
	if err := r.Save(path); err != nil {
		t.Fatal(err)
	}
	return r, path
}

// TestLoadReproRejectsMalformedFiles: every way a repro file can be
// broken — truncated JSON, wrong version, unknown op kind, out-of-range
// operands, excess core schedules — must be rejected at load time with an
// error naming the offending field, never deferred to a mid-replay panic.
func TestLoadReproRejectsMalformedFiles(t *testing.T) {
	valid, path := saveRepro(t)
	if _, err := LoadRepro(path); err != nil {
		t.Fatalf("valid repro rejected: %v", err)
	}

	// Truncated file: cut the JSON mid-document.
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	truncated := filepath.Join(t.TempDir(), "truncated.json")
	if err := os.WriteFile(truncated, b[:len(b)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadRepro(truncated); err == nil || !strings.Contains(err.Error(), "bad repro file") {
		t.Fatalf("truncated repro error = %v, want bad-repro rejection", err)
	}

	// Structural mutations, each named by field in the error.
	cases := []struct {
		name    string
		mutate  func(*Repro)
		wantSub string
	}{
		{"wrong version", func(r *Repro) { r.Version = 99 }, "version: 99"},
		{"bad config", func(r *Repro) { r.Program.Cfg.Clusters = 999 }, "program.cfg"},
		{"unknown op kind", func(r *Repro) { r.Program.Cores[0].Ops[0].Kind = "zz" },
			"program.cores[0].ops[0].k"},
		{"line out of range", func(r *Repro) {
			r.Program.Cores[0].Ops[0].Line = r.Program.Cfg.WithDefaults().Lines + 1
		}, "program.cores[0].ops[0].l"},
		{"word out of range", func(r *Repro) { r.Program.Cores[0].Ops[0].Word = addr.WordsPerLine },
			"program.cores[0].ops[0].w"},
		{"excess cores", func(r *Repro) {
			cfg := r.Program.Cfg.WithDefaults()
			for len(r.Program.Cores) <= cfg.Clusters*cfg.WorkersPerCluster {
				r.Program.Cores = append(r.Program.Cores, coreOps{})
			}
		}, "program.cores:"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			bad := valid
			bad.Program.Cores = append([]coreOps(nil), valid.Program.Cores...)
			if len(bad.Program.Cores) > 0 {
				bad.Program.Cores[0].Ops = append([]Op(nil), valid.Program.Cores[0].Ops...)
			}
			tc.mutate(&bad)
			p := filepath.Join(t.TempDir(), "bad.json")
			if err := bad.Save(p); err != nil {
				t.Fatal(err)
			}
			_, err := LoadRepro(p)
			if err == nil || !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("LoadRepro = %v, want error naming %q", err, tc.wantSub)
			}
		})
	}

	// Fewer cores than worker slots is legal: the shrinker drops cores.
	short := valid
	short.Program.Cores = valid.Program.Cores[:1]
	if err := short.Validate(); err != nil {
		t.Fatalf("shrunken-core repro rejected: %v", err)
	}
}
