package stress

import (
	"context"
	"errors"
	"testing"

	"cohesion/internal/runctl"
	"cohesion/internal/simerr"
)

// TestRunProgramPanicContained feeds RunProgramOpts a program whose core
// count exceeds the machine — StartProgram panics inside the run — and
// asserts the supervisor converts the panic into a classified result
// instead of crashing the process, so a fuzz batch can write a repro for
// the crashing input and keep going.
func TestRunProgramPanicContained(t *testing.T) {
	p := Program{Cfg: Config{Seed: 1, Mode: "hwcc"}}
	p.Cores = make([]coreOps, 4096) // far more cores than any fuzz machine
	res := RunProgramOpts(p, RunOpts{})
	if res.Err == nil {
		t.Fatal("oversized program ran clean; expected a contained panic")
	}
	if !errors.Is(res.Err, simerr.ErrRunPanicked) {
		t.Fatalf("res.Err = %v, want ErrRunPanicked", res.Err)
	}
	if SentinelOf(res.Err) != "panic" {
		t.Fatalf("SentinelOf = %q, want panic", SentinelOf(res.Err))
	}
	// The classification must be stable enough for Replay/Shrink matching.
	if CategoryOf(res.Err) != CategoryOf(res.Err) || CategoryOf(res.Err) == "" {
		t.Fatalf("CategoryOf unstable or empty: %q", CategoryOf(res.Err))
	}
}

// TestRunProgramCanceled cancels a stress run up front and checks the
// cooperative-cancellation path classifies as "canceled".
func TestRunProgramCanceled(t *testing.T) {
	cfg := Config{Seed: 7, Mode: "hwcc"}
	p, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res := RunProgramOpts(p, RunOpts{Ctx: ctx, Limits: runctl.Limits{CheckEvery: 1}})
	if !errors.Is(res.Err, simerr.ErrCanceled) {
		t.Fatalf("res.Err = %v, want ErrCanceled", res.Err)
	}
	if SentinelOf(res.Err) != "canceled" {
		t.Fatalf("SentinelOf = %q, want canceled", SentinelOf(res.Err))
	}
}

// TestRunProgramEventBudget ends a stress run on a deterministic event
// budget twice and checks the partial stop is reproducible and classified
// as "budget".
func TestRunProgramEventBudget(t *testing.T) {
	cfg := Config{Seed: 11, Mode: "cohesion"}
	p, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	run := func() Result {
		return RunProgramOpts(p, RunOpts{Limits: runctl.Limits{MaxEvents: 2_000}})
	}
	a, b := run(), run()
	if !errors.Is(a.Err, simerr.ErrBudgetExhausted) {
		t.Fatalf("a.Err = %v, want ErrBudgetExhausted", a.Err)
	}
	if SentinelOf(a.Err) != "budget" {
		t.Fatalf("SentinelOf = %q, want budget", SentinelOf(a.Err))
	}
	if a.Cycles != b.Cycles {
		t.Fatalf("budget stop not reproducible: %d vs %d cycles", a.Cycles, b.Cycles)
	}
}
