package stress

import (
	"context"
	"runtime/debug"

	"cohesion/internal/addr"
	"cohesion/internal/cluster"
	"cohesion/internal/config"
	"cohesion/internal/machine"
	"cohesion/internal/msg"
	"cohesion/internal/region"
	"cohesion/internal/runctl"
	"cohesion/internal/simerr"
	"cohesion/internal/stats"
	"cohesion/internal/trace"
)

// maxCycles bounds a stress run; legitimate programs finish far earlier,
// and wedges are caught by the watchdog long before this.
const maxCycles = 500_000_000

// BuildMachine constructs the pressure machine for a stress config: a
// deliberately small L2 (constant evictions and recalls) and a small
// sparse directory, with the online oracle always attached.
func BuildMachine(cfg Config) (*machine.Machine, error) {
	mc := config.Scaled(cfg.Clusters).WithMode(cfg.mode())
	if cfg.mode() != config.SWcc {
		entries, assoc := 256, 8
		if cfg.DirEntries > 0 {
			entries = cfg.DirEntries
		}
		if cfg.DirAssoc > 0 {
			assoc = cfg.DirAssoc
		}
		kind := config.DirSparse
		switch cfg.Dir {
		case "dir4b":
			kind = config.DirLimited4B
		case "infinite":
			kind = config.DirInfinite
		}
		mc = mc.WithDirectory(kind, entries, assoc)
		mc.DirNackOnCapacity = cfg.NackOnCapacity
	}
	mc.L2Size = 1 << 10 // 32 lines: fuzz lines collide and evict constantly
	mc.L2Assoc = 4
	if cfg.MSHRs > 0 {
		mc.L2MSHRs = cfg.MSHRs
	}
	mc.OracleEnabled = true
	mc.TraceRingSize = cfg.TraceRing
	if cfg.Faults {
		mc.Faults = config.DefaultFaultPlan(cfg.FaultSeed)
	}
	mc.Label = "stress-" + cfg.Mode
	return machine.New(mc)
}

// Result is one stress run's outcome. Err is nil for a clean run; Cycles
// and Fingerprint are the determinism witnesses (two runs of the same
// Program must agree bit-for-bit).
type Result struct {
	Err         error
	Cycles      uint64
	Events      uint64 // executed events (set on every path, failures included)
	Fingerprint uint64
	Checks      uint64 // oracle invariant evaluations
	Trace       []stats.TraceEntry
}

// RunOpts attaches observability consumers and lifecycle controls to a
// stress run.
type RunOpts struct {
	// Coverage, when non-nil, records which protocol-transition edges the
	// run exercised (shared trackers aggregate across a batch).
	Coverage *trace.Coverage
	// Sink, when non-nil, streams every protocol event for export.
	Sink *trace.Sink
	// Metrics enables the sim-time histogram registry.
	Metrics bool
	// Ctx, when non-nil, cancels the run cooperatively at the event-loop
	// boundary (the run ends with simerr.ErrCanceled).
	Ctx context.Context
	// Limits bounds the run (max events / sim-cycles deterministically,
	// wall clock and memory best-effort); the run ends with
	// simerr.ErrBudgetExhausted when one trips.
	Limits runctl.Limits
	// CheckpointAt adds one-shot deterministic checkpoint firing points
	// (executed-event counts) on top of Limits.CheckpointAt.
	CheckpointAt []uint64
	// OnCheckpoint, when non-nil, runs between events at every checkpoint
	// point with the quiescent machine; returning an error aborts the run.
	OnCheckpoint func(events, cycle uint64, m *machine.Machine) error
}

// RunProgram executes a stress program to completion or first failure
// (oracle violation, deadlock, retry exhaustion, quiescence invariant).
func RunProgram(p Program) Result { return RunProgramOpts(p, RunOpts{}) }

// RunProgramOpts is RunProgram with observability consumers and lifecycle
// controls attached. A panic anywhere inside the simulation is contained:
// it comes back as a Result whose Err matches simerr.ErrRunPanicked (with
// the stack in the error text), so a fuzz batch survives a crashing input
// and can write a repro for it instead of killing the process.
func RunProgramOpts(p Program, opts RunOpts) (res Result) {
	defer func() {
		if r := recover(); r != nil {
			res.Err = simerr.Panicked(r, debug.Stack())
		}
	}()
	cfg := p.Cfg.WithDefaults()
	if err := cfg.Validate(); err != nil {
		return Result{Err: err}
	}
	m, err := BuildMachine(cfg)
	if err != nil {
		return Result{Err: err}
	}
	m.Run.Coverage = opts.Coverage
	m.Run.Sink = opts.Sink
	if opts.Metrics {
		m.Run.Metrics = stats.NewMetrics()
	}
	if cfg.mode() == config.Cohesion {
		// Odd-indexed lines (the private corruption line included, when
		// odd) start in the SWcc domain, matching LineAddr's split.
		for i := 1; i <= cfg.Lines; i += 2 {
			m.PresetSWcc(addr.Range{Base: cfg.LineAddr(i), Size: addr.LineBytes})
		}
	}
	banks := m.Cfg.L3Banks
	for ci := range p.Cores {
		ops := p.Cores[ci].Ops
		core := (ci/cfg.WorkersPerCluster)*m.Cfg.CoresPerCluster + ci%cfg.WorkersPerCluster
		m.StartProgram(core, func(c *cluster.Core) {
			c.SetCode(addr.CodeBase, 256)
			for _, op := range ops {
				execOp(m, c, cfg, banks, op)
			}
		})
	}
	ctx := opts.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	limits := opts.Limits
	if len(opts.CheckpointAt) > 0 {
		limits.CheckpointAt = append(append([]uint64(nil), limits.CheckpointAt...), opts.CheckpointAt...)
	}
	if opts.OnCheckpoint != nil {
		m.SetCheckpointFunc(func(events, cycle uint64) error {
			return opts.OnCheckpoint(events, cycle, m)
		})
	}
	err = m.SimulateCtx(ctx, maxCycles, limits)
	if err == nil {
		err = m.CheckInvariants()
	}
	if err == nil {
		m.DrainToMemory()
		res.Fingerprint = m.Store.Fingerprint()
		res.Cycles = m.Run.Cycles
	} else {
		res.Cycles = uint64(m.Q.Now())
	}
	res.Events = m.Q.Fired()
	res.Err = err
	if m.Run.Trace != nil {
		res.Trace = m.Run.Trace.Entries()
	}
	if o := m.Oracle(); o != nil {
		res.Checks = o.Checks
	}
	return res
}

var atomicOps = []msg.AtomicOp{msg.AtomicAdd, msg.AtomicOr, msg.AtomicXchg}

// execOp performs one schedule step on a core. The corrupt op runs
// host-side — the machine is paused between Do calls — and models a
// protocol corrupting memory behind the oracle's back.
func execOp(m *machine.Machine, c *cluster.Core, cfg Config, banks int, op Op) {
	a := cfg.LineAddr(op.Line) + addr.Addr(op.Word*addr.WordBytes)
	switch op.Kind {
	case OpLoad:
		c.Do(cluster.Op{Kind: cluster.OpLoad, Addr: a})
	case OpStore:
		c.Do(cluster.Op{Kind: cluster.OpStore, Addr: a, Value: op.Value})
	case OpAtomic:
		c.Do(cluster.Op{Kind: cluster.OpAtomic, Addr: a, AOp: atomicOps[op.Value%3], Value: op.Value})
	case OpUncLoad:
		c.Do(cluster.Op{Kind: cluster.OpUncLoad, Addr: a})
	case OpUncStore:
		c.Do(cluster.Op{Kind: cluster.OpUncStore, Addr: a, Value: op.Value})
	case OpFlush:
		c.Do(cluster.Op{Kind: cluster.OpFlush, Addr: a})
	case OpInv:
		c.Do(cluster.Op{Kind: cluster.OpInv, Addr: a})
	case OpToSW, OpToHW:
		wa := region.TblWordAddr(a, banks)
		bit := uint32(1) << region.TblBitIndex(a)
		if op.Kind == OpToSW {
			c.Do(cluster.Op{Kind: cluster.OpAtomic, Addr: wa, AOp: msg.AtomicOr, Value: bit})
		} else {
			c.Do(cluster.Op{Kind: cluster.OpAtomic, Addr: wa, AOp: msg.AtomicAnd, Value: ^bit})
		}
	case OpWork:
		c.Do(cluster.Op{Kind: cluster.OpWork, Cycles: int64(op.Value)})
	case OpCorrupt:
		m.Store.WriteWord(a, op.Value)
	}
}
