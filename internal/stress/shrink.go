package stress

// Shrink reduces a failing program to a smaller one that still fails with
// the same category (see CategoryOf): whole cores are dropped (last to
// first), each
// surviving core's schedule is delta-debugged (chunk sizes halving from
// n/2 to 1), and finally unused trailing clusters are trimmed. maxRuns
// bounds the total candidate executions (0 = a generous default). Returns
// the shrunken program and the number of candidate runs spent.
func Shrink(p Program, category string, maxRuns int) (Program, int) {
	if maxRuns <= 0 {
		maxRuns = 500
	}
	runs := 0
	fails := func(q Program) bool {
		if runs >= maxRuns {
			return false
		}
		runs++
		return CategoryOf(RunProgram(q).Err) == category
	}

	// Pass 1: drop whole cores, last to first, to a fixpoint.
	for again := true; again; {
		again = false
		for ci := len(p.Cores) - 1; ci >= 0 && len(p.Cores) > 1; ci-- {
			q := p
			q.Cores = append(append([]coreOps{}, p.Cores[:ci]...), p.Cores[ci+1:]...)
			if fails(q) {
				p = q
				again = true
			}
		}
	}

	// Pass 2: ddmin each core's schedule.
	for ci := range p.Cores {
		p.Cores[ci].Ops = shrinkOps(p.Cores[ci].Ops, func(ops []Op) bool {
			q := p
			q.Cores = append([]coreOps{}, p.Cores...)
			q.Cores[ci].Ops = ops
			return fails(q)
		})
	}

	// Pass 3: trim clusters no remaining core maps to.
	used := 0
	for ci := range p.Cores {
		if cl := ci/p.Cfg.WorkersPerCluster + 1; cl > used {
			used = cl
		}
	}
	if used >= 1 && used < p.Cfg.Clusters {
		q := p
		q.Cfg.Clusters = used
		if fails(q) {
			p = q
		}
	}
	return p, runs
}

// shrinkOps is the ddmin inner loop: repeatedly try deleting chunks,
// halving the chunk size whenever a full sweep removes nothing.
func shrinkOps(ops []Op, fails func([]Op) bool) []Op {
	for chunk := len(ops) / 2; chunk >= 1; {
		removed := false
		for start := 0; start < len(ops); {
			end := start + chunk
			if end > len(ops) {
				end = len(ops)
			}
			cand := append(append([]Op{}, ops[:start]...), ops[end:]...)
			if fails(cand) {
				ops = cand
				removed = true
				// Re-test the same start index against the shifted tail.
			} else {
				start += chunk
			}
		}
		if !removed {
			chunk /= 2
		}
	}
	return ops
}
