package stress

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"strings"

	"cohesion/internal/addr"
	"cohesion/internal/machine"
	"cohesion/internal/simerr"
	"cohesion/internal/stats"
)

// Repro is a self-contained failure reproduction: the exact program (its
// Config includes every seed), how the run failed, and the tail of the
// protocol trace ring at failure time. It serializes to JSON.
type Repro struct {
	Version  int                `json:"version"`
	Program  Program            `json:"program"`
	Failure  string             `json:"failure"`  // the full error text
	Sentinel string             `json:"sentinel"` // failure class, see SentinelOf
	Category string             `json:"category"` // finer tag, see CategoryOf
	Cycles   uint64             `json:"cycles"`
	Trace    []stats.TraceEntry `json:"trace,omitempty"`
}

const reproVersion = 1

// SentinelOf classifies a run error into a stable string used to decide
// whether a replay or a shrunken candidate reproduces "the same" failure.
func SentinelOf(err error) string {
	switch {
	case err == nil:
		return "none"
	case errors.Is(err, simerr.ErrProtocolInvariant):
		return "protocol-invariant"
	case errors.Is(err, simerr.ErrDeadlock):
		return "deadlock"
	case errors.Is(err, simerr.ErrRetryExhausted):
		return "retry-exhausted"
	case errors.Is(err, machine.ErrCycleLimit):
		return "cycle-limit"
	case errors.Is(err, simerr.ErrConfig):
		return "config"
	case errors.Is(err, simerr.ErrRunPanicked):
		return "panic"
	case errors.Is(err, simerr.ErrCanceled):
		return "canceled"
	case errors.Is(err, simerr.ErrBudgetExhausted):
		return "budget"
	}
	return "other"
}

// CategoryOf refines SentinelOf with the leading phrase of a structured
// diagnostic (e.g. "protocol-invariant/stale grant"), so that replay and
// shrinking track the specific violation rather than just its class —
// without it, a shrinker can wander from one protocol bug to a different
// one that shares the sentinel.
func CategoryOf(err error) string {
	s := SentinelOf(err)
	var se *simerr.Error
	if errors.As(err, &se) && se.Detail != "" {
		head := se.Detail
		if i := strings.IndexByte(head, ':'); i > 0 {
			head = head[:i]
		}
		if len(head) <= 48 {
			return s + "/" + head
		}
	}
	return s
}

// NewRepro packages a failed run for the repro file.
func NewRepro(p Program, res Result) Repro {
	failure := ""
	if res.Err != nil {
		failure = res.Err.Error()
	}
	return Repro{
		Version:  reproVersion,
		Program:  p,
		Failure:  failure,
		Sentinel: SentinelOf(res.Err),
		Category: CategoryOf(res.Err),
		Cycles:   res.Cycles,
		Trace:    res.Trace,
	}
}

// Save writes the repro as indented JSON.
func (r Repro) Save(path string) error {
	b, err := json.MarshalIndent(r, "", " ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// LoadRepro reads a repro file back, validating its schema and version so
// a malformed or truncated file is rejected with a named-field error at
// load time instead of panicking mid-replay.
func LoadRepro(path string) (Repro, error) {
	var r Repro
	b, err := os.ReadFile(path)
	if err != nil {
		return r, err
	}
	if err := json.Unmarshal(b, &r); err != nil {
		return r, fmt.Errorf("stress: bad repro file %s: %w", path, err)
	}
	if err := r.Validate(); err != nil {
		return r, fmt.Errorf("stress: bad repro file %s: %w", path, err)
	}
	return r, nil
}

// validOpKinds is the op-kind whitelist Validate checks schedules against.
var validOpKinds = map[string]bool{
	OpLoad: true, OpStore: true, OpAtomic: true, OpUncLoad: true,
	OpUncStore: true, OpFlush: true, OpInv: true, OpToSW: true,
	OpToHW: true, OpWork: true, OpCorrupt: true,
}

// Validate checks a repro's structural invariants — version, config
// ranges, core count, and every op's kind and operand ranges — naming the
// offending field in the error. A repro that passes cannot send Replay
// into an out-of-range access or an unknown-op panic.
func (r Repro) Validate() error {
	if r.Version != reproVersion {
		return fmt.Errorf("version: %d, want %d", r.Version, reproVersion)
	}
	cfg := r.Program.Cfg.WithDefaults()
	if err := cfg.Validate(); err != nil {
		return fmt.Errorf("program.cfg: %w", err)
	}
	// Shrinking may drop whole cores, so fewer schedules than the machine
	// has worker slots is fine; more would map onto nonexistent cores.
	if max := cfg.Clusters * cfg.WorkersPerCluster; len(r.Program.Cores) > max {
		return fmt.Errorf("program.cores: %d schedules exceed the config's %d worker cores (%d clusters x %d workers)",
			len(r.Program.Cores), max, cfg.Clusters, cfg.WorkersPerCluster)
	}
	for ci, core := range r.Program.Cores {
		for oi, op := range core.Ops {
			field := fmt.Sprintf("program.cores[%d].ops[%d]", ci, oi)
			if !validOpKinds[op.Kind] {
				return fmt.Errorf("%s.k: unknown op kind %q", field, op.Kind)
			}
			// Line index cfg.Lines is the private corruption-motif line.
			if op.Line < 0 || op.Line > cfg.Lines {
				return fmt.Errorf("%s.l: line index %d outside [0, %d]", field, op.Line, cfg.Lines)
			}
			if op.Word < 0 || op.Word >= addr.WordsPerLine {
				return fmt.Errorf("%s.w: word index %d outside [0, %d)", field, op.Word, addr.WordsPerLine)
			}
		}
	}
	return nil
}

// Replay re-executes a repro's program and reports whether the same
// failure reproduced. Repros that predate the category field fall back to
// the coarser sentinel match.
func Replay(r Repro) (Result, bool) {
	res := RunProgram(r.Program)
	if r.Category != "" {
		return res, r.Sentinel != "none" && CategoryOf(res.Err) == r.Category
	}
	return res, r.Sentinel != "none" && SentinelOf(res.Err) == r.Sentinel
}
