package stress

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"cohesion/internal/machine"
	"cohesion/internal/snapshot"
)

// CheckpointReport is the outcome of one CheckpointStress probe: the
// randomly-drawn checkpoint depths exercised and, on divergence, where
// and how the replays disagreed.
type CheckpointReport struct {
	Depths   []uint64 // executed-event counts probed (sorted)
	Verified int      // depths whose replay matched the reference bit-for-bit

	Diverged   bool
	FirstDepth uint64   // depth that exposed the divergence
	Layers     []string // digest layers (or final-state fields) that differ

	// Base-run witnesses the replays are held to.
	BaseEvents      uint64
	BaseCycles      uint64
	BaseFingerprint uint64
	BaseChecks      uint64
	BaseCategory    string // failure category of the base run ("none" if clean)
}

// CheckpointStress validates the checkpoint/restore determinism contract
// against one stress program: it runs the program once as the base run,
// draws n random interior event counts from seed, re-runs the program
// capturing the full per-layer digest vector at every drawn depth (the
// reference), and then for each depth runs the program once more as a
// simulated kill-and-restore — replaying from scratch, verifying the
// digest vector at the depth, and continuing to the end, where the final
// cycles, fingerprint, oracle-check count, and failure category must all
// match the base run. Any mismatch reports snapshot.ErrDiverged with the
// differing layers named, exactly as a real resume would.
func CheckpointStress(p Program, n int, seed int64) (*CheckpointReport, error) {
	if n < 1 {
		n = 3
	}
	base := RunProgramOpts(p, RunOpts{})
	rep := &CheckpointReport{
		BaseEvents:      base.Events,
		BaseCycles:      base.Cycles,
		BaseFingerprint: base.Fingerprint,
		BaseChecks:      base.Checks,
		BaseCategory:    CategoryOf(base.Err),
	}
	if base.Events < 4 {
		return rep, fmt.Errorf("stress: program too short to checkpoint (%d events)", base.Events)
	}

	rng := rand.New(rand.NewSource(seed))
	seen := map[uint64]bool{}
	for i := 0; i < 16*n && len(rep.Depths) < n; i++ {
		d := 1 + uint64(rng.Int63n(int64(base.Events-2)))
		if !seen[d] {
			seen[d] = true
			rep.Depths = append(rep.Depths, d)
		}
	}
	sort.Slice(rep.Depths, func(i, j int) bool { return rep.Depths[i] < rep.Depths[j] })

	// Reference run: capture the digest vector at every drawn depth.
	refDigests := map[uint64]snapshot.Digests{}
	ref := RunProgramOpts(p, RunOpts{
		CheckpointAt: rep.Depths,
		OnCheckpoint: func(events, _ uint64, m *machine.Machine) error {
			refDigests[events] = m.Digests()
			return nil
		},
	})
	if err := rep.compareFinal("reference run", ref); err != nil {
		return rep, err
	}

	// One simulated kill-and-restore per depth: replay, verify at the
	// depth, continue to the end, hold the finals to the base run.
	for _, d := range rep.Depths {
		d := d
		var layers []string
		fired := false
		run := RunProgramOpts(p, RunOpts{
			CheckpointAt: []uint64{d},
			OnCheckpoint: func(events, _ uint64, m *machine.Machine) error {
				if events != d {
					return nil
				}
				fired = true
				want, ok := refDigests[d]
				if !ok {
					layers = []string{fmt.Sprintf("events (reference run never checkpointed at %d)", d)}
					return nil
				}
				layers = m.Digests().Diff(want)
				return nil
			},
		})
		if _, ok := refDigests[d]; ok && !fired {
			layers = append(layers, fmt.Sprintf("events (replay never checkpointed at %d)", d))
		}
		if len(layers) > 0 {
			rep.Diverged = true
			rep.FirstDepth = d
			rep.Layers = layers
			return rep, fmt.Errorf("%w: replay digests differ at event %d: %s",
				snapshot.ErrDiverged, d, strings.Join(layers, ", "))
		}
		if err := rep.compareFinal(fmt.Sprintf("replay through event %d", d), run); err != nil {
			rep.FirstDepth = d
			return rep, err
		}
		rep.Verified++
	}
	return rep, nil
}

// compareFinal holds one run's end state to the base run's witnesses.
func (r *CheckpointReport) compareFinal(label string, got Result) error {
	var diffs []string
	if got.Events != r.BaseEvents {
		diffs = append(diffs, fmt.Sprintf("events (%d vs %d)", got.Events, r.BaseEvents))
	}
	if got.Cycles != r.BaseCycles {
		diffs = append(diffs, fmt.Sprintf("cycles (%d vs %d)", got.Cycles, r.BaseCycles))
	}
	if got.Fingerprint != r.BaseFingerprint {
		diffs = append(diffs, fmt.Sprintf("fingerprint (%#x vs %#x)", got.Fingerprint, r.BaseFingerprint))
	}
	if got.Checks != r.BaseChecks {
		diffs = append(diffs, fmt.Sprintf("oracle checks (%d vs %d)", got.Checks, r.BaseChecks))
	}
	if c := CategoryOf(got.Err); c != r.BaseCategory {
		diffs = append(diffs, fmt.Sprintf("failure category (%s vs %s)", c, r.BaseCategory))
	}
	if len(diffs) == 0 {
		return nil
	}
	r.Diverged = true
	r.Layers = diffs
	return fmt.Errorf("%w: %s final state differs from the base run: %s",
		snapshot.ErrDiverged, label, strings.Join(diffs, ", "))
}
