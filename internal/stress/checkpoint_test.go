package stress

import (
	"errors"
	"strings"
	"testing"

	"cohesion/internal/snapshot"
)

// TestCheckpointStressVerifiesCleanProgram: on a clean deterministic
// program, every randomly-drawn checkpoint depth must verify — the replay
// digest vector matches the reference at the depth and the final state
// matches the base run bit-for-bit.
func TestCheckpointStressVerifiesCleanProgram(t *testing.T) {
	p, err := Generate(Config{Seed: 21, Mode: "cohesion", Clusters: 2, OpsPerCore: 60})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := CheckpointStress(p, 4, 11)
	if err != nil {
		t.Fatalf("CheckpointStress: %v", err)
	}
	if len(rep.Depths) == 0 || rep.Verified != len(rep.Depths) {
		t.Fatalf("verified %d of %d depths", rep.Verified, len(rep.Depths))
	}
	if rep.Diverged {
		t.Fatalf("clean program reported divergence: %v", rep.Layers)
	}
	if rep.BaseCategory != "none" {
		t.Fatalf("base category = %q, want none", rep.BaseCategory)
	}
	for i := 1; i < len(rep.Depths); i++ {
		if rep.Depths[i] <= rep.Depths[i-1] {
			t.Fatalf("depths not sorted/unique: %v", rep.Depths)
		}
	}
	// Seeded draws are reproducible: the same probe yields the same depths.
	rep2, err := CheckpointStress(p, 4, 11)
	if err != nil {
		t.Fatalf("second CheckpointStress: %v", err)
	}
	if len(rep2.Depths) != len(rep.Depths) {
		t.Fatalf("same seed drew %v then %v", rep.Depths, rep2.Depths)
	}
	for i := range rep.Depths {
		if rep2.Depths[i] != rep.Depths[i] {
			t.Fatalf("same seed drew %v then %v", rep.Depths, rep2.Depths)
		}
	}
}

// TestCheckpointStressVerifiesFailingProgram: a program that fails (the
// planted corruption motif) must still checkpoint deterministically —
// every replay reproduces the same failure category, cycles, and
// fingerprint as the base run.
func TestCheckpointStressVerifiesFailingProgram(t *testing.T) {
	p, err := Generate(Config{Seed: 5, Mode: "cohesion", InjectCorrupt: true})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := CheckpointStress(p, 3, 7)
	if err != nil {
		t.Fatalf("CheckpointStress on failing program: %v", err)
	}
	if rep.BaseCategory != "protocol-invariant/corrupt uncached load" {
		t.Fatalf("base category = %q, want the planted corruption", rep.BaseCategory)
	}
	if rep.Verified != len(rep.Depths) || rep.Diverged {
		t.Fatalf("failing program did not verify: %d/%d depths, diverged=%v %v",
			rep.Verified, len(rep.Depths), rep.Diverged, rep.Layers)
	}
}

// TestCheckpointCompareFinalFlagsEveryLayer exercises the divergence
// reporting path directly: each perturbed final-state field must be named
// in the error and wrap snapshot.ErrDiverged.
func TestCheckpointCompareFinalFlagsEveryLayer(t *testing.T) {
	base := Result{Events: 100, Cycles: 2000, Fingerprint: 0xabc, Checks: 50}
	cases := []struct {
		layer   string
		perturb func(*Result)
	}{
		{"events", func(r *Result) { r.Events++ }},
		{"cycles", func(r *Result) { r.Cycles++ }},
		{"fingerprint", func(r *Result) { r.Fingerprint ^= 1 }},
		{"oracle checks", func(r *Result) { r.Checks++ }},
		{"failure category", func(r *Result) { r.Err = errors.New("late failure") }},
	}
	for _, tc := range cases {
		rep := &CheckpointReport{
			BaseEvents:      base.Events,
			BaseCycles:      base.Cycles,
			BaseFingerprint: base.Fingerprint,
			BaseChecks:      base.Checks,
			BaseCategory:    "none",
		}
		got := base
		tc.perturb(&got)
		err := rep.compareFinal("replay", got)
		if err == nil {
			t.Fatalf("%s: perturbed final state not flagged", tc.layer)
		}
		if !errors.Is(err, snapshot.ErrDiverged) {
			t.Fatalf("%s: error %v does not wrap snapshot.ErrDiverged", tc.layer, err)
		}
		if !strings.Contains(err.Error(), tc.layer) {
			t.Fatalf("%s: error %q does not name the differing layer", tc.layer, err)
		}
		if !rep.Diverged || len(rep.Layers) != 1 {
			t.Fatalf("%s: report not marked diverged with one layer: %+v", tc.layer, rep)
		}
	}

	// And the all-match case stays silent.
	rep := &CheckpointReport{BaseEvents: 100, BaseCycles: 2000, BaseFingerprint: 0xabc, BaseChecks: 50, BaseCategory: "none"}
	if err := rep.compareFinal("replay", base); err != nil || rep.Diverged {
		t.Fatalf("identical final state flagged: %v", err)
	}
}
