package stress

import (
	"errors"
	"path/filepath"
	"reflect"
	"testing"

	"cohesion/internal/simerr"
)

// opCount is the total schedule length of a program.
func opCount(p Program) int {
	n := 0
	for _, c := range p.Cores {
		n += len(c.Ops)
	}
	return n
}

func TestGenerateDeterministic(t *testing.T) {
	for _, mode := range []string{"hwcc", "swcc", "cohesion"} {
		a, err := Generate(Config{Seed: 42, Mode: mode})
		if err != nil {
			t.Fatal(err)
		}
		b, err := Generate(Config{Seed: 42, Mode: mode})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("mode %s: same seed generated different programs", mode)
		}
		c, err := Generate(Config{Seed: 43, Mode: mode})
		if err != nil {
			t.Fatal(err)
		}
		if reflect.DeepEqual(a.Cores, c.Cores) {
			t.Errorf("mode %s: different seeds generated identical schedules", mode)
		}
	}
}

func TestRunDeterministic(t *testing.T) {
	p, err := Generate(Config{Seed: 7, Mode: "cohesion", Clusters: 2, OpsPerCore: 60})
	if err != nil {
		t.Fatal(err)
	}
	r1 := RunProgram(p)
	r2 := RunProgram(p)
	if r1.Err != nil || r2.Err != nil {
		t.Fatalf("clean program failed: %v / %v", r1.Err, r2.Err)
	}
	if r1.Cycles != r2.Cycles || r1.Fingerprint != r2.Fingerprint {
		t.Errorf("nondeterministic run: cycles %d vs %d, fingerprint %#x vs %#x",
			r1.Cycles, r2.Cycles, r1.Fingerprint, r2.Fingerprint)
	}
	if r1.Checks == 0 {
		t.Error("oracle performed no checks during a stress run")
	}
}

func TestFuzzSmoke(t *testing.T) {
	modes := []string{"cohesion", "hwcc", "swcc"}
	for i := 0; i < 24; i++ {
		cfg := Config{Seed: int64(1000 + i*137), Mode: modes[i%3], OpsPerCore: 50}
		if i%4 == 3 {
			cfg.Faults = true
			cfg.FaultSeed = int64(i)
		}
		p, err := Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res := RunProgram(p)
		if res.Err != nil {
			t.Errorf("seed %d mode %s faults=%v: %v", cfg.Seed, cfg.Mode, cfg.Faults, res.Err)
		}
	}
}

func TestCorruptionDetectedAndReproRoundTrip(t *testing.T) {
	p, err := Generate(Config{Seed: 5, Mode: "cohesion", InjectCorrupt: true})
	if err != nil {
		t.Fatal(err)
	}
	res := RunProgram(p)
	if res.Err == nil {
		t.Fatal("planted corruption was not detected")
	}
	if !errors.Is(res.Err, simerr.ErrProtocolInvariant) {
		t.Fatalf("corruption surfaced as %v, want ErrProtocolInvariant", res.Err)
	}
	cat := CategoryOf(res.Err)
	if cat != "protocol-invariant/corrupt uncached load" {
		t.Fatalf("category = %q, want protocol-invariant/corrupt uncached load", cat)
	}
	if len(res.Trace) == 0 {
		t.Error("failing run captured no trace ring")
	}
	if len(res.Trace) > p.Cfg.WithDefaults().TraceRing {
		t.Errorf("trace ring holds %d entries, capacity %d", len(res.Trace), p.Cfg.WithDefaults().TraceRing)
	}

	path := filepath.Join(t.TempDir(), "repro.json")
	r := NewRepro(p, res)
	if err := r.Save(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadRepro(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back.Program, p) {
		t.Error("repro program did not survive the JSON round trip")
	}
	if back.Category != cat {
		t.Errorf("repro category = %q, want %q", back.Category, cat)
	}
	res2, same := Replay(back)
	if !same {
		t.Fatalf("replay did not reproduce: got %v", res2.Err)
	}
}

func TestShrinkYieldsSmallerFailingProgram(t *testing.T) {
	p, err := Generate(Config{Seed: 9, Mode: "cohesion", InjectCorrupt: true})
	if err != nil {
		t.Fatal(err)
	}
	res := RunProgram(p)
	if res.Err == nil {
		t.Fatal("planted corruption was not detected")
	}
	cat := CategoryOf(res.Err)
	q, runs := Shrink(p, cat, 300)
	if runs == 0 {
		t.Fatal("shrinker did not run any candidates")
	}
	if opCount(q) >= opCount(p) {
		t.Errorf("shrunk program has %d ops, original %d — not strictly smaller", opCount(q), opCount(p))
	}
	res2 := RunProgram(q)
	if CategoryOf(res2.Err) != cat {
		t.Errorf("shrunk program fails as %q, want %q", CategoryOf(res2.Err), cat)
	}
	// The corruption motif is 3 ops on one core; the shrinker should get
	// close to that.
	if opCount(q) > 12 {
		t.Errorf("shrunk program still has %d ops, expected a near-minimal schedule", opCount(q))
	}
}

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
	}{
		{"bad mode", Config{Mode: "msi"}},
		{"clusters high", Config{Mode: "hwcc", Clusters: 65}},
		{"lines high", Config{Mode: "hwcc", Lines: 5000}},
		{"ops high", Config{Mode: "hwcc", OpsPerCore: 2_000_000}},
		{"workers high", Config{Mode: "hwcc", WorkersPerCluster: 9}},
		{"negative ring", Config{Mode: "hwcc", TraceRing: -1}},
	}
	for _, tc := range cases {
		cfg := tc.cfg.WithDefaults()
		err := cfg.Validate()
		if !errors.Is(err, simerr.ErrConfig) {
			t.Errorf("%s: Validate = %v, want ErrConfig", tc.name, err)
		}
		if _, err := Generate(tc.cfg); !errors.Is(err, simerr.ErrConfig) {
			t.Errorf("%s: Generate = %v, want ErrConfig", tc.name, err)
		}
	}
}
