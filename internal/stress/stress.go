// Package stress implements a randomized protocol stress fuzzer for the
// simulator: seeded random task programs mix HWcc and SWcc loads, stores,
// atomics, flushes, invalidates, and line-granularity coherence-domain
// transitions across many cores, run on a deliberately small L2 and
// sparse directory for eviction and recall pressure, with the online
// coherence oracle (internal/oracle) watching every event.
//
// Everything is deterministic: a Config fully determines the generated
// Program, and a Program fully determines the simulation (including any
// injected faults). A failing program round-trips through a JSON repro
// file (seed, config, op schedule, protocol trace ring) that Replay
// re-executes and Shrink reduces to a minimal still-failing schedule.
package stress

import (
	"math/rand"

	"cohesion/internal/addr"
	"cohesion/internal/config"
	"cohesion/internal/simerr"
)

// Config parameterizes program generation and the machine it runs on.
type Config struct {
	// Seed drives the program generator (and nothing else).
	Seed int64 `json:"seed"`

	// Mode is the memory model: "hwcc", "swcc", or "cohesion".
	Mode string `json:"mode"`

	// Clusters is the machine size (8 cores per cluster).
	Clusters int `json:"clusters"`

	// Lines is the number of shared fuzzed lines. Their addresses stride
	// across L3 banks and L2 sets; under Cohesion, odd-indexed lines start
	// in the SWcc domain (preset fine-grain table bits).
	Lines int `json:"lines"`

	// OpsPerCore is the length of each core's random op schedule.
	OpsPerCore int `json:"ops_per_core"`

	// WorkersPerCluster is how many cores per cluster run a schedule.
	WorkersPerCluster int `json:"workers_per_cluster"`

	// Faults composes the run with the deterministic fault-injection layer
	// (drops, duplicates, delay spikes, NACKs) seeded by FaultSeed.
	Faults    bool  `json:"faults,omitempty"`
	FaultSeed int64 `json:"fault_seed,omitempty"`

	// InjectCorrupt plants a memory-corruption motif in core 0's schedule
	// (a host-side store-behind-the-protocol's-back); the oracle must
	// catch it. Used to validate the detection pipeline end to end.
	InjectCorrupt bool `json:"inject_corrupt,omitempty"`

	// TraceRing is the protocol trace ring capacity captured into repro
	// files (0 selects a default of 256).
	TraceRing int `json:"trace_ring,omitempty"`

	// MSHRs overrides the per-cluster L2 miss-status-register count
	// (0 keeps the machine default). Small values force MSHR stalls.
	MSHRs int `json:"mshrs,omitempty"`

	// Dir selects the directory organization: "" or "sparse" (the stress
	// default), "dir4b" (pointer-limited), or "infinite". Ignored in swcc
	// mode, which runs directory-less.
	Dir string `json:"dir,omitempty"`

	// DirEntries and DirAssoc override the per-bank directory geometry
	// (0 keeps the stress defaults of 256 entries, 8-way). Tiny
	// directories force capacity evictions and allocation stalls.
	DirEntries int `json:"dir_entries,omitempty"`
	DirAssoc   int `json:"dir_assoc,omitempty"`

	// NackOnCapacity makes home banks NACK allocations when every
	// candidate directory way is pinned, instead of silently retrying.
	NackOnCapacity bool `json:"nack_on_capacity,omitempty"`
}

// WithDefaults fills zero-valued knobs with sensible defaults.
func (c Config) WithDefaults() Config {
	if c.Mode == "" {
		c.Mode = "cohesion"
	}
	if c.Clusters == 0 {
		c.Clusters = 2
	}
	if c.Lines == 0 {
		c.Lines = 16
	}
	if c.OpsPerCore == 0 {
		c.OpsPerCore = 80
	}
	if c.WorkersPerCluster == 0 {
		c.WorkersPerCluster = 4
	}
	if c.TraceRing == 0 {
		c.TraceRing = 256
	}
	return c
}

// Validate rejects unusable configurations with simerr.ErrConfig.
func (c Config) Validate() error {
	switch c.Mode {
	case "hwcc", "swcc", "cohesion":
	default:
		return simerr.Config("stress: unknown mode %q (want hwcc, swcc, or cohesion)", c.Mode)
	}
	switch {
	case c.Clusters < 1 || c.Clusters > 64:
		return simerr.Config("stress: Clusters = %d outside [1, 64]", c.Clusters)
	case c.Lines < 1 || c.Lines > 4096:
		return simerr.Config("stress: Lines = %d outside [1, 4096]", c.Lines)
	case c.OpsPerCore < 1 || c.OpsPerCore > 1_000_000:
		return simerr.Config("stress: OpsPerCore = %d outside [1, 1000000]", c.OpsPerCore)
	case c.WorkersPerCluster < 1 || c.WorkersPerCluster > 8:
		return simerr.Config("stress: WorkersPerCluster = %d outside [1, 8]", c.WorkersPerCluster)
	case c.TraceRing < 0:
		return simerr.Config("stress: TraceRing must be non-negative")
	case c.MSHRs < 0:
		return simerr.Config("stress: MSHRs must be non-negative")
	case c.DirEntries < 0 || c.DirAssoc < 0:
		return simerr.Config("stress: directory geometry must be non-negative")
	}
	switch c.Dir {
	case "", "sparse", "dir4b", "infinite":
	default:
		return simerr.Config("stress: unknown dir %q (want sparse, dir4b, or infinite)", c.Dir)
	}
	return nil
}

func (c Config) mode() config.Mode {
	switch c.Mode {
	case "swcc":
		return config.SWcc
	case "hwcc":
		return config.HWcc
	}
	return config.Cohesion
}

// Op kinds. Short tags keep repro files compact and readable.
const (
	OpLoad     = "ld"      // cached load
	OpStore    = "st"      // cached store
	OpAtomic   = "at"      // uncached atomic (add/or/xchg by Value%3)
	OpUncLoad  = "uld"     // uncached load
	OpUncStore = "ust"     // uncached store
	OpFlush    = "fl"      // software writeback of the line
	OpInv      = "inv"     // software invalidate of the line
	OpToSW     = "tosw"    // region-table flip: line to the SWcc domain
	OpToHW     = "tohw"    // region-table flip: line to the HWcc domain
	OpWork     = "wk"      // a few cycles of non-memory work
	OpCorrupt  = "corrupt" // host-side store corruption (oracle must catch)
)

// Op is one step of a core's schedule.
type Op struct {
	Kind  string `json:"k"`
	Line  int    `json:"l"`           // fuzz-line index (Lines = the private corruption line)
	Word  int    `json:"w,omitempty"` // word within the line
	Value uint32 `json:"v,omitempty"`
}

// coreOps is one core's op schedule.
type coreOps struct {
	Ops []Op `json:"ops"`
}

// Program is a fully-determined stress run: the configuration plus one op
// schedule per participating core (core index ci runs on cluster
// ci/WorkersPerCluster).
type Program struct {
	Cfg   Config    `json:"cfg"`
	Cores []coreOps `json:"cores"`
}

// lineStride spaces fuzz lines so that both the L3 bank index (address
// bits >= 11) and the L2 set index vary across lines, with enough lines
// mapping near each other to keep eviction pressure on the small fuzz L2.
const lineStride = 2048 + addr.LineBytes

// LineAddr maps a fuzz-line index to its base address. Under Cohesion,
// odd indices live on the preset-SWcc side of the heap.
func (c Config) LineAddr(i int) addr.Addr {
	base := addr.HeapBase
	if c.Mode == "cohesion" && i%2 == 1 {
		base = addr.CohHeapBase
	}
	return base + addr.Addr(i*lineStride)
}

// weighted op menu per mode.
type menuEntry struct {
	kind   string
	weight int
}

func (c Config) menu() []menuEntry {
	m := []menuEntry{
		{OpLoad, 30},
		{OpStore, 30},
		{OpAtomic, 6},
		{OpUncLoad, 3},
		{OpUncStore, 3},
		{OpWork, 5},
	}
	if c.Mode != "hwcc" {
		m = append(m, menuEntry{OpFlush, 8}, menuEntry{OpInv, 6})
	}
	if c.Mode == "cohesion" {
		m = append(m, menuEntry{OpToSW, 4}, menuEntry{OpToHW, 4})
	}
	return m
}

// Generate builds the deterministic random program for a configuration.
// The same Config (seed included) always yields the same Program.
func Generate(cfg Config) (Program, error) {
	cfg = cfg.WithDefaults()
	if err := cfg.Validate(); err != nil {
		return Program{}, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	menu := cfg.menu()
	total := 0
	for _, e := range menu {
		total += e.weight
	}
	pick := func() string {
		n := rng.Intn(total)
		for _, e := range menu {
			if n < e.weight {
				return e.kind
			}
			n -= e.weight
		}
		return OpLoad
	}
	p := Program{Cfg: cfg}
	cores := cfg.Clusters * cfg.WorkersPerCluster
	for ci := 0; ci < cores; ci++ {
		ops := make([]Op, 0, cfg.OpsPerCore)
		for len(ops) < cfg.OpsPerCore {
			op := Op{
				Kind: pick(),
				Line: rng.Intn(cfg.Lines),
				Word: rng.Intn(addr.WordsPerLine),
			}
			switch op.Kind {
			case OpStore, OpUncStore, OpAtomic:
				op.Value = rng.Uint32()
			case OpWork:
				op.Value = uint32(rng.Intn(100) + 1) // cycles
			}
			ops = append(ops, op)
		}
		p.Cores = append(p.Cores, coreOps{ops})
	}
	if cfg.InjectCorrupt && len(p.Cores) > 0 {
		// The corruption motif targets a private line (index Lines) no
		// random op touches: an uncached store plants a known value, the
		// corrupt op silently flips the backing store behind the
		// protocol's back, and the uncached load must surface the lie.
		v := rng.Uint32()
		private := cfg.Lines
		motif := []Op{
			{Kind: OpUncStore, Line: private, Word: 0, Value: v},
			{Kind: OpCorrupt, Line: private, Word: 0, Value: v ^ 0xdeadbeef},
			{Kind: OpUncLoad, Line: private, Word: 0},
		}
		ops := p.Cores[0].Ops
		at := len(ops) / 2
		p.Cores[0].Ops = append(ops[:at:at], append(motif, ops[at:]...)...)
	}
	return p, nil
}
