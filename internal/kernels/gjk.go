package kernels

import (
	"math/rand"

	"cohesion/internal/rt"
)

// BuildGJK is convex collision detection over object pairs. Each tiny task
// runs support-function queries (the core primitive of the GJK algorithm)
// for one pair of convex point clouds along a fixed direction set,
// producing a separation estimate and an intersection flag. The paper's
// gjk is characterized by very small tasks whose scheduling overhead — the
// atomic task-queue dequeues — rivals their compute (§4.5); the workload
// here preserves exactly that granularity. The full GJK simplex iteration
// is replaced by the separating-axis support sweep (a documented
// substitution: same data-access structure — immutable vertex sets,
// write-once per-pair outputs — and the same support-function inner loop).
func BuildGJK(r *rt.Runtime, p Params) (*Instance, error) {
	const (
		verts = 16 // vertices per convex object
		ndirs = 13
	)
	pairs := 24 * p.Scale
	objects := 8 + 4*p.Scale
	rng := rand.New(rand.NewSource(p.Seed + 7))

	// Direction set: axes, face diagonals, cube diagonals (classic SAT set).
	dirs := [][3]float32{
		{1, 0, 0}, {0, 1, 0}, {0, 0, 1},
		{1, 1, 0}, {1, -1, 0}, {1, 0, 1}, {1, 0, -1}, {0, 1, 1}, {0, 1, -1},
		{1, 1, 1}, {1, 1, -1}, {1, -1, 1}, {-1, 1, 1},
	}

	objA := r.GlobalAlloc(uint64(4 * objects * verts * 3))
	pairIdx := r.GlobalAlloc(uint64(4 * pairs * 2))
	// Per-pair outputs are tiny and irregular — flushing a line per word
	// is not worth it, so under Cohesion they stay hardware-coherent.
	outSep := r.Malloc(uint64(4 * pairs))
	outHit := r.Malloc(uint64(4 * pairs))

	ov := make([]float32, objects*verts*3)
	for o := 0; o < objects; o++ {
		// A convex-ish cloud: random points around a random center.
		var cx, cy, cz float32
		cx = float32(rng.Intn(640)) / 16
		cy = float32(rng.Intn(640)) / 16
		cz = float32(rng.Intn(640)) / 16
		for v := 0; v < verts; v++ {
			i := (o*verts + v) * 3
			ov[i] = cx + float32(rng.Intn(64)-32)/16
			ov[i+1] = cy + float32(rng.Intn(64)-32)/16
			ov[i+2] = cz + float32(rng.Intn(64)-32)/16
			r.WriteF32(w(objA, i), ov[i])
			r.WriteF32(w(objA, i+1), ov[i+1])
			r.WriteF32(w(objA, i+2), ov[i+2])
		}
	}
	pair := make([][2]int, pairs)
	for i := range pair {
		a := rng.Intn(objects)
		b := rng.Intn(objects)
		if b == a {
			b = (a + 1) % objects
		}
		pair[i] = [2]int{a, b}
		r.WriteWord(w(pairIdx, 2*i), uint32(a))
		r.WriteWord(w(pairIdx, 2*i+1), uint32(b))
	}

	// support computes max/min of v . d over an object's vertices.
	type supFn func(load func(i int) float32, obj int, d [3]float32) (max, min float32)
	support := func(load func(i int) float32, obj int, d [3]float32) (mx, mn float32) {
		for v := 0; v < verts; v++ {
			i := (obj*verts + v) * 3
			dot := load(i)*d[0] + load(i+1)*d[1] + load(i+2)*d[2]
			if v == 0 || dot > mx {
				mx = dot
			}
			if v == 0 || dot < mn {
				mn = dot
			}
		}
		return
	}
	var _ supFn = support

	sepOf := func(load func(i int) float32, a, b int) (float32, bool) {
		best := float32(0)
		first := true
		for _, d := range dirs {
			maxA, minA := support(load, a, d)
			maxB, minB := support(load, b, d)
			// Gap along d (positive means separated on this axis).
			gap := minB - maxA
			if g2 := minA - maxB; g2 > gap {
				gap = g2
			}
			if first || gap > best {
				best = gap
				first = false
			}
		}
		return best, best <= 0
	}

	wantSep := make([]float32, pairs)
	wantHit := make([]uint32, pairs)
	for i, pr := range pair {
		s, hit := sepOf(func(j int) float32 { return ov[j] }, pr[0], pr[1])
		wantSep[i] = s
		if hit {
			wantHit[i] = 1
		}
	}

	worker := func(x *rt.Ctx) {
		x.ParallelFor(pairs, func(task int) {
			f := openFrame(x, 8)
			a := int(x.Load(w(pairIdx, 2*task)))
			b := int(x.Load(w(pairIdx, 2*task+1)))
			s, hit := sepOf(func(j int) float32 {
				x.Work(1)
				return x.LoadF32(w(objA, j))
			}, a, b)
			x.StoreF32(w(outSep, task), s)
			var h uint32
			if hit {
				h = 1
			}
			x.Store(w(outHit, task), h)
			x.FlushIfSWcc(w(outSep, task), 4)
			x.FlushIfSWcc(w(outHit, task), 4)
			f.close()
		})
	}

	verify := func(r *rt.Runtime) error {
		if err := verifyF32(r, "gjk.sep", uint64(outSep), func(i int) float32 { return r.ReadF32(w(outSep, i)) }, wantSep); err != nil {
			return err
		}
		for i := range wantHit {
			if got := r.ReadWord(w(outHit, i)); got != wantHit[i] {
				return errf("gjk: pair %d hit=%d, want %d", i, got, wantHit[i])
			}
		}
		return nil
	}
	return &Instance{Name: "gjk", CodeBytes: 4 << 10, Worker: worker, Verify: verify}, nil
}
