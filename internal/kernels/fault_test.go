package kernels

import (
	"fmt"
	"testing"

	"cohesion/internal/config"
	"cohesion/internal/machine"
	"cohesion/internal/rt"
)

// runKernelWithFaults runs one kernel under a fault plan, verifying output
// and invariants, and returns the machine for stats inspection.
func runKernelWithFaults(t *testing.T, name string, mode config.Mode, plan config.FaultPlan) *machine.Machine {
	t.Helper()
	cfg := modeCfg(mode)
	cfg.Faults = plan
	cfg.L2RetryTimeout = 5_000 // recover promptly so fault runs stay fast
	m, err := machine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r, err := rt.New(m, 8)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := Build(name, r, Params{Scale: 1, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	for wkr := 0; wkr < 8; wkr++ {
		r.Spawn(wkr*2, inst.CodeBytes, inst.Worker)
	}
	if err := m.Simulate(500_000_000); err != nil {
		t.Fatalf("%s/%v: %v", name, mode, err)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatalf("%s/%v invariants: %v", name, mode, err)
	}
	m.DrainToMemory()
	if err := inst.Verify(r); err != nil {
		t.Fatalf("%s/%v verify under faults: %v", name, mode, err)
	}
	return m
}

// Every kernel must produce bit-correct output under the default fault
// plan (drops, duplicates, delay spikes, allocation NACKs) with recovery
// enabled, across multiple fault seeds. The aggregate counters prove the
// plans actually injected faults rather than passing vacuously.
func TestKernelsVerifyUnderFaults(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		seed := seed
		t.Run(fmt.Sprint("seed", seed), func(t *testing.T) {
			t.Parallel()
			var drops, dups, retries uint64
			for _, name := range Names() {
				m := runKernelWithFaults(t, name, config.Cohesion, config.DefaultFaultPlan(seed))
				drops += m.Run.FaultDrops
				dups += m.Run.FaultDups
				retries += m.Run.L2Retries
			}
			if drops == 0 || dups == 0 {
				t.Fatalf("fault plan seed %d injected nothing (drops=%d dups=%d)", seed, drops, dups)
			}
			if drops > 0 && retries == 0 {
				t.Fatalf("seed %d: %d drops but no retransmissions", seed, drops)
			}
		})
	}
}

// Two runs with the same workload seed and the same fault seed must be
// bit-identical: same cycle count, same message and fault counters, same
// final memory image.
func TestFaultDeterminism(t *testing.T) {
	a := runKernelWithFaults(t, "heat", config.Cohesion, config.DefaultFaultPlan(7))
	b := runKernelWithFaults(t, "heat", config.Cohesion, config.DefaultFaultPlan(7))
	counters := []struct {
		name string
		a, b uint64
	}{
		{"Cycles", a.Run.Cycles, b.Run.Cycles},
		{"TotalMessages", a.Run.TotalMessages(), b.Run.TotalMessages()},
		{"FaultDrops", a.Run.FaultDrops, b.Run.FaultDrops},
		{"FaultDups", a.Run.FaultDups, b.Run.FaultDups},
		{"FaultDelays", a.Run.FaultDelays, b.Run.FaultDelays},
		{"NacksSent", a.Run.NacksSent, b.Run.NacksSent},
		{"L2Retries", a.Run.L2Retries, b.Run.L2Retries},
		{"NackRetries", a.Run.NackRetries, b.Run.NackRetries},
		{"DupsDropped", a.Run.DupsDropped, b.Run.DupsDropped},
	}
	for _, c := range counters {
		if c.a != c.b {
			t.Errorf("%s differs across identical fault runs: %d vs %d", c.name, c.a, c.b)
		}
	}
	if fa, fb := a.Store.Fingerprint(), b.Store.Fingerprint(); fa != fb {
		t.Errorf("memory fingerprint differs: %#x vs %#x", fa, fb)
	}
}
