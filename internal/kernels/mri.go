package kernels

import (
	"fmt"
	"math"
	"math/rand"

	"cohesion/internal/rt"
)

// errf is fmt.Errorf, shared by kernel verifiers.
func errf(format string, args ...any) error { return fmt.Errorf(format, args...) }

// BuildMRI is non-Cartesian MRI reconstruction (the FHd computation): for
// every voxel, accumulate cos/sin phase contributions over all k-space
// samples. It is the paper's arithmetic-intensity-bound kernel (§4.5: mri
// is "limited by ... execution efficiency due to its high arithmetic
// intensity") — each sample costs trigonometric work, modelled with Work
// cycles per term. Inputs (sample trajectory and voxel coordinates) are
// immutable and read-shared; the per-voxel output is written once.
func BuildMRI(r *rt.Runtime, p Params) (*Instance, error) {
	samples := 32 * p.Scale
	voxels := 32 * p.Scale
	voxPerTask := 4
	tasks := (voxels + voxPerTask - 1) / voxPerTask
	rng := rand.New(rand.NewSource(p.Seed + 8))

	kTraj := r.GlobalAlloc(uint64(4 * samples * 5)) // kx ky kz phiR phiI
	vox := r.GlobalAlloc(uint64(4 * voxels * 3))    // x y z
	outR := r.CohMalloc(uint64(4 * voxels))
	outI := r.CohMalloc(uint64(4 * voxels))

	kt := make([]float32, samples*5)
	for i := range kt {
		kt[i] = float32(rng.Intn(256)-128) / 256
		r.WriteF32(w(kTraj, i), kt[i])
	}
	xyz := make([]float32, voxels*3)
	for i := range xyz {
		xyz[i] = float32(rng.Intn(64)) / 8
		r.WriteF32(w(vox, i), xyz[i])
	}

	fhd := func(loadK, loadV func(i int) float32, v int) (float32, float32) {
		var sr, si float32
		vx, vy, vz := loadV(v*3), loadV(v*3+1), loadV(v*3+2)
		for s := 0; s < samples; s++ {
			kx, ky, kz := loadK(s*5), loadK(s*5+1), loadK(s*5+2)
			phiR, phiI := loadK(s*5+3), loadK(s*5+4)
			arg := float64(2 * math.Pi * (kx*vx + ky*vy + kz*vz))
			c := float32(math.Cos(arg))
			sn := float32(math.Sin(arg))
			sr += phiR*c - phiI*sn
			si += phiI*c + phiR*sn
		}
		return sr, si
	}

	wantR := make([]float32, voxels)
	wantI := make([]float32, voxels)
	for v := 0; v < voxels; v++ {
		wantR[v], wantI[v] = fhd(
			func(i int) float32 { return kt[i] },
			func(i int) float32 { return xyz[i] }, v)
	}

	worker := func(x *rt.Ctx) {
		x.ParallelFor(tasks, func(task int) {
			f := openFrame(x, 12)
			lo, hi := task*voxPerTask, (task+1)*voxPerTask
			if hi > voxels {
				hi = voxels
			}
			for v := lo; v < hi; v++ {
				sr, si := fhd(
					func(i int) float32 { x.Work(12); return x.LoadF32(w(kTraj, i)) }, // trig-heavy inner loop
					func(i int) float32 { return x.LoadF32(w(vox, i)) }, v)
				x.StoreF32(w(outR, v), sr)
				x.StoreF32(w(outI, v), si)
			}
			x.FlushIfSWcc(w(outR, lo), uint64(4*(hi-lo)))
			x.FlushIfSWcc(w(outI, lo), uint64(4*(hi-lo)))
			f.close()
		})
	}

	verify := func(r *rt.Runtime) error {
		if err := verifyF32(r, "mri.re", uint64(outR), func(i int) float32 { return r.ReadF32(w(outR, i)) }, wantR); err != nil {
			return err
		}
		return verifyF32(r, "mri.im", uint64(outI), func(i int) float32 { return r.ReadF32(w(outI, i)) }, wantI)
	}
	return &Instance{Name: "mri", CodeBytes: 2 << 10, Worker: worker, Verify: verify}, nil
}
