package kernels

import (
	"fmt"
	"testing"

	"cohesion/internal/addr"
	"cohesion/internal/config"
	"cohesion/internal/machine"
	"cohesion/internal/rt"
)

// runWith is runKernel with explicit worker count and scale.
func runWith(t *testing.T, name string, mode config.Mode, scale, workers int, seed int64) *rt.Runtime {
	t.Helper()
	m, err := machine.New(modeCfg(mode))
	if err != nil {
		t.Fatal(err)
	}
	r, err := rt.New(m, workers)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := Build(name, r, Params{Scale: scale, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	for wkr := 0; wkr < workers; wkr++ {
		r.Spawn(wkr*(m.Cfg.Cores()/workers), inst.CodeBytes, inst.Worker)
	}
	if err := m.Simulate(500_000_000); err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatalf("%s invariants: %v", name, err)
	}
	m.DrainToMemory()
	if err := inst.Verify(r); err != nil {
		t.Fatalf("%s verify: %v", name, err)
	}
	return r
}

// Scale must grow the work for every kernel (guards against a kernel
// ignoring its Params).
func TestScaleGrowsWork(t *testing.T) {
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			small := runWith(t, name, config.Cohesion, 1, 4, 5)
			large := runWith(t, name, config.Cohesion, 2, 4, 5)
			if large.M.Run.Instructions <= small.M.Run.Instructions {
				t.Fatalf("instructions did not grow with scale: %d -> %d",
					small.M.Run.Instructions, large.M.Run.Instructions)
			}
		})
	}
}

// The seed must change the workload data (guards against a kernel
// ignoring it). The op-stream shape is deliberately value-independent, so
// compare the generated input data instead of timing.
func TestSeedChangesWorkload(t *testing.T) {
	a := runWith(t, "kmeans", config.Cohesion, 1, 4, 1)
	b := runWith(t, "kmeans", config.Cohesion, 1, 4, 2)
	base := a.Globals.Span().Base
	differs := false
	for i := 0; i < 64; i++ {
		if a.ReadWord(base+addr.Addr(4*i)) != b.ReadWord(base+addr.Addr(4*i)) {
			differs = true
			break
		}
	}
	if !differs {
		t.Fatal("different seeds produced identical input data")
	}
}

// Verified results must hold for odd worker counts too (task distribution
// must not assume workers divide tasks).
func TestOddWorkerCounts(t *testing.T) {
	for _, name := range []string{"heat", "cg", "kmeans"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			runWith(t, name, config.Cohesion, 1, 3, 9)
			runWith(t, name, config.SWcc, 1, 5, 9)
		})
	}
}

// A single worker degenerates to sequential execution and must still
// verify in every mode (exercises the task queue's termination path).
func TestSingleWorker(t *testing.T) {
	for _, mode := range []config.Mode{config.SWcc, config.HWcc, config.Cohesion} {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			t.Parallel()
			runWith(t, "dmm", mode, 1, 1, 3)
		})
	}
}

// Cohesion placement: the deliberately hardware-managed kernels (cg's
// reducer structures, kmeans' accumulators, gjk's outputs) must show
// directory occupancy; the pure-BSP kernels must not (their data lives
// entirely in the SWcc domain).
func TestCohesionPlacementSplitsDomains(t *testing.T) {
	wantTracked := map[string]bool{
		"cg": true, "gjk": true, "kmeans": true,
		"dmm": false, "heat": false, "mri": false, "sobel": false, "stencil": false,
	}
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			r := runWith(t, name, config.Cohesion, 2, 4, 11)
			mean := r.M.Run.Occupancy.MeanTotal()
			if wantTracked[name] && mean == 0 {
				t.Fatalf("%s: expected directory occupancy under Cohesion, got none", name)
			}
			if !wantTracked[name] && mean != 0 {
				t.Fatalf("%s: expected zero directory occupancy, got %.1f", name, mean)
			}
		})
	}
}

// Under pure HWcc every kernel populates the directory; under pure SWcc
// there is no directory at all and no probes ever.
func TestModeInvariantsAcrossKernels(t *testing.T) {
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			hw := runWith(t, name, config.HWcc, 1, 4, 13)
			if hw.M.Run.Occupancy.MaxTotal() == 0 {
				t.Fatalf("%s: HWcc never used the directory", name)
			}
			sw := runWith(t, name, config.SWcc, 1, 4, 13)
			if sw.M.Run.ProbesSent != 0 {
				t.Fatalf("%s: SWcc sent %d probes", name, sw.M.Run.ProbesSent)
			}
			if sw.M.Run.TransitionsToHW+sw.M.Run.TransitionsToSW != 0 {
				t.Fatalf("%s: SWcc performed transitions", name)
			}
		})
	}
}

// Kernels must verify under perturbed network interleavings: seeded link
// jitter explores different event orders without breaking the per-link
// ordering the protocol requires.
func TestKernelsRobustToNetworkJitter(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		seed := seed
		t.Run(fmt.Sprint("seed", seed), func(t *testing.T) {
			t.Parallel()
			for _, mode := range []config.Mode{config.SWcc, config.HWcc, config.Cohesion} {
				cfg := modeCfg(mode)
				cfg.NetJitter = 6
				cfg.NetJitterSeed = seed
				m, err := machine.New(cfg)
				if err != nil {
					t.Fatal(err)
				}
				r, err := rt.New(m, 8)
				if err != nil {
					t.Fatal(err)
				}
				inst, err := Build("heat", r, Params{Scale: 1, Seed: 17})
				if err != nil {
					t.Fatal(err)
				}
				for wkr := 0; wkr < 8; wkr++ {
					r.Spawn(wkr*2, inst.CodeBytes, inst.Worker)
				}
				if err := m.Simulate(500_000_000); err != nil {
					t.Fatalf("%v: %v", mode, err)
				}
				if err := m.CheckInvariants(); err != nil {
					t.Fatalf("%v invariants: %v", mode, err)
				}
				m.DrainToMemory()
				if err := inst.Verify(r); err != nil {
					t.Fatalf("%v verify under jitter: %v", mode, err)
				}
			}
		})
	}
}
