package kernels

import (
	"math/rand"

	"cohesion/internal/addr"
	"cohesion/internal/rt"
)

// BuildHeat is the 2D Jacobi heat stencil: T sweeps over an n x n interior
// with a fixed boundary, ping-ponging between two grids. Each task owns a
// block of rows; across sweeps the producer of a row block and its reader
// may land on different clusters, so software coherence must eagerly
// flush written rows and lazily invalidate the rows a task is about to
// read (exactly the Figure 3 idiom).
func BuildHeat(r *rt.Runtime, p Params) (*Instance, error) {
	n := 16 * p.Scale // interior size
	const iters = 4
	stride := n + 2
	words := stride * stride
	rng := rand.New(rand.NewSource(p.Seed + 2))

	grid := [2]addr.Addr{
		r.CohMalloc(uint64(4 * words)),
		r.CohMalloc(uint64(4 * words)),
	}
	cur := make([]float32, words)
	for i := range cur {
		cur[i] = float32(rng.Intn(1000)) / 100
		r.WriteF32(w(grid[0], i), cur[i])
		r.WriteF32(w(grid[1], i), cur[i]) // boundaries identical in both
	}
	// Golden: T Jacobi sweeps in float32.
	next := make([]float32, words)
	copy(next, cur)
	for t := 0; t < iters; t++ {
		for i := 1; i <= n; i++ {
			for j := 1; j <= n; j++ {
				k := i*stride + j
				next[k] = 0.25 * (cur[k-1] + cur[k+1] + cur[k-stride] + cur[k+stride])
			}
		}
		cur, next = next, cur
	}
	want := cur

	rowsPerTask := 2
	tasks := (n + rowsPerTask - 1) / rowsPerTask
	rowAddr := func(g addr.Addr, row int) addr.Addr { return w(g, row*stride) }

	worker := func(x *rt.Ctx) {
		for t := 0; t < iters; t++ {
			src, dst := grid[t%2], grid[(t+1)%2]
			x.ParallelFor(tasks, func(task int) {
				f := openFrame(x, 12)
				r0 := 1 + task*rowsPerTask
				r1 := r0 + rowsPerTask
				if r1 > n+1 {
					r1 = n + 1
				}
				// Lazy invalidation of the input rows this task reads
				// (they were produced by arbitrary clusters last sweep).
				x.InvIfSWcc(rowAddr(src, r0-1), uint64(4*stride*(r1-r0+2)))
				for i := r0; i < r1; i++ {
					for j := 1; j <= n; j++ {
						k := i*stride + j
						v := 0.25 * (x.LoadF32(w(src, k-1)) + x.LoadF32(w(src, k+1)) +
							x.LoadF32(w(src, k-stride)) + x.LoadF32(w(src, k+stride)))
						x.Work(4)
						x.StoreF32(w(dst, k), v)
					}
				}
				// Eager writeback of produced rows.
				x.FlushIfSWcc(rowAddr(dst, r0), uint64(4*stride*(r1-r0)))
				f.close()
			})
		}
	}

	verify := func(r *rt.Runtime) error {
		final := grid[iters%2]
		return verifyF32(r, "heat", uint64(final), func(i int) float32 { return r.ReadF32(w(final, i)) }, want)
	}
	return &Instance{Name: "heat", CodeBytes: 2 << 10, Worker: worker, Verify: verify}, nil
}
