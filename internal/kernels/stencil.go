package kernels

import (
	"math/rand"

	"cohesion/internal/addr"
	"cohesion/internal/rt"
)

// BuildStencil is the 3D 7-point stencil: T sweeps over an n^3 interior
// with fixed boundaries, ping-ponging between two volumes. Tasks own z
// slabs; the halo planes they read were produced by neighboring tasks on
// arbitrary clusters, making this the heaviest flush/invalidate kernel.
func BuildStencil(r *rt.Runtime, p Params) (*Instance, error) {
	n := 6 * p.Scale
	const iters = 2
	s := n + 2 // padded dimension
	words := s * s * s
	rng := rand.New(rand.NewSource(p.Seed + 4))

	vol := [2]addr.Addr{
		r.CohMalloc(uint64(4 * words)),
		r.CohMalloc(uint64(4 * words)),
	}
	cur := make([]float32, words)
	for i := range cur {
		cur[i] = float32(rng.Intn(1000)) / 50
		r.WriteF32(w(vol[0], i), cur[i])
		r.WriteF32(w(vol[1], i), cur[i])
	}
	idx := func(z, y, xx int) int { return (z*s+y)*s + xx }
	next := make([]float32, words)
	copy(next, cur)
	for t := 0; t < iters; t++ {
		for z := 1; z <= n; z++ {
			for y := 1; y <= n; y++ {
				for xx := 1; xx <= n; xx++ {
					k := idx(z, y, xx)
					next[k] = (cur[k] + cur[k-1] + cur[k+1] +
						cur[k-s] + cur[k+s] + cur[k-s*s] + cur[k+s*s]) / 7
				}
			}
		}
		cur, next = next, cur
	}
	want := cur

	planeWords := s * s
	worker := func(x *rt.Ctx) {
		for t := 0; t < iters; t++ {
			src, dst := vol[t%2], vol[(t+1)%2]
			x.ParallelFor(n, func(task int) { // one z-plane per task
				f := openFrame(x, 12)
				z := 1 + task
				// Lazy invalidation: the three source planes this task reads.
				x.InvIfSWcc(w(src, (z-1)*planeWords), uint64(4*3*planeWords))
				for y := 1; y <= n; y++ {
					for xx := 1; xx <= n; xx++ {
						k := idx(z, y, xx)
						v := (x.LoadF32(w(src, k)) + x.LoadF32(w(src, k-1)) + x.LoadF32(w(src, k+1)) +
							x.LoadF32(w(src, k-s)) + x.LoadF32(w(src, k+s)) +
							x.LoadF32(w(src, k-s*s)) + x.LoadF32(w(src, k+s*s))) / 7
						x.Work(7)
						x.StoreF32(w(dst, k), v)
					}
				}
				// Eager writeback of the produced plane.
				x.FlushIfSWcc(w(dst, z*planeWords), uint64(4*planeWords))
				f.close()
			})
		}
	}

	verify := func(r *rt.Runtime) error {
		final := vol[iters%2]
		return verifyF32(r, "stencil", uint64(final), func(i int) float32 { return r.ReadF32(w(final, i)) }, want)
	}
	return &Instance{Name: "stencil", CodeBytes: 3 << 10, Worker: worker, Verify: verify}, nil
}
