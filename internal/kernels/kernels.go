// Package kernels implements the paper's eight benchmark kernels (§4.1) as
// barrier-synchronized task-queue programs over the simulated memory
// system: conjugate gradient (cg), dense matrix multiply (dmm), collision
// detection (gjk), 2D stencil (heat), k-means clustering (kmeans), medical
// image reconstruction (mri), edge detection (sobel), and 3D stencil
// (stencil).
//
// Every kernel computes real values and verifies its output against a
// sequential golden implementation, in all three memory models. Coherence
// behaviour follows the paper's variants (§4.1): SWcc variants issue
// explicit flush/invalidate instructions at task boundaries; HWcc variants
// issue none; Cohesion variants keep them only for data placed in the
// SWcc domain. Kernels express this uniformly through the runtime's
// FlushIfSWcc/InvIfSWcc helpers and by choosing, per data structure,
// between the incoherent heap (software-managed under Cohesion) and the
// coherent heap (hardware-managed under Cohesion).
package kernels

import (
	"fmt"
	"sort"

	"cohesion/internal/addr"
	"cohesion/internal/rt"
)

// Params scales a kernel instance. Scale 1 is test-sized; the experiment
// harness uses larger scales. Seed feeds the workload generators.
type Params struct {
	Scale int
	Seed  int64
}

// Instance is a ready-to-run kernel: the per-worker program plus its
// output check.
type Instance struct {
	Name      string
	CodeBytes int // instruction footprint driving L1I/instruction traffic
	Worker    func(x *rt.Ctx)
	Verify    func(r *rt.Runtime) error
}

// Builder constructs a kernel instance against a runtime, allocating and
// initializing its data set.
type Builder func(r *rt.Runtime, p Params) (*Instance, error)

// Registry maps kernel names to builders, in the paper's naming.
var Registry = map[string]Builder{
	"cg":      BuildCG,
	"dmm":     BuildDMM,
	"gjk":     BuildGJK,
	"heat":    BuildHeat,
	"kmeans":  BuildKMeans,
	"mri":     BuildMRI,
	"sobel":   BuildSobel,
	"stencil": BuildStencil,
}

// Names returns the kernel names in the paper's (alphabetical) order.
func Names() []string {
	out := make([]string, 0, len(Registry))
	for n := range Registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Build looks up and runs a builder.
func Build(name string, r *rt.Runtime, p Params) (*Instance, error) {
	b, ok := Registry[name]
	if !ok {
		return nil, fmt.Errorf("kernels: unknown kernel %q", name)
	}
	if p.Scale < 1 {
		p.Scale = 1
	}
	return b(r, p)
}

// frame models a task's activation record on the worker's private stack:
// live registers spill at task entry and restore at task exit. This is
// where the paper's HWcc directory spends a noticeable share of its
// entries ("on average, the stack alone only represents 15% of the
// directory resources", §4.3); under Cohesion the stacks fall in a
// coarse-grain SWcc region and never touch the directory.
type frame struct {
	x     *rt.Ctx
	base  addr.Addr
	words int
}

// openFrame spills words live registers to a fresh stack frame.
func openFrame(x *rt.Ctx, words int) frame {
	base := x.StackAlloc(words)
	for i := 0; i < words; i++ {
		x.Store(base+addr.Addr(4*i), uint32(i))
	}
	return frame{x: x, base: base, words: words}
}

// close restores the spilled registers and pops the frame.
func (f frame) close() {
	var s uint32
	for i := 0; i < f.words; i++ {
		s += f.x.Load(f.base + addr.Addr(4*i))
	}
	_ = s
	f.x.FrameReset()
}

// approxEqual compares float32 results with a relative/absolute tolerance
// wide enough for benign re-association differences but tight enough to
// catch coherence bugs (which corrupt values wholesale).
func approxEqual(a, b float32) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	m := a
	if m < 0 {
		m = -m
	}
	if bb := b; bb > m {
		m = bb
	} else if -bb > m {
		m = -bb
	}
	return d <= 1e-3*m+1e-5
}

func verifyF32(r *rt.Runtime, name string, base uint64, got func(i int) float32, want []float32) error {
	for i, w := range want {
		g := got(i)
		if !approxEqual(g, w) {
			return fmt.Errorf("%s: element %d = %v, want %v", name, i, g, w)
		}
	}
	_ = base
	return nil
}
