package kernels

import (
	"testing"

	"cohesion/internal/config"
	"cohesion/internal/machine"
	"cohesion/internal/msg"
	"cohesion/internal/rt"
)

func modeCfg(mode config.Mode) config.Machine {
	cfg := config.Scaled(2).WithMode(mode)
	if mode != config.SWcc {
		cfg = cfg.WithDirectory(config.DirInfinite, 0, 0)
	}
	// Every kernel test runs under the online coherence oracle: any stale
	// value, illegal MSI state, or bad domain transition fails the run at
	// the violating event.
	cfg.OracleEnabled = true
	return cfg
}

// runKernel builds and runs one kernel on a 16-core machine and returns
// the runtime for inspection. Verification and invariants are mandatory.
func runKernel(t *testing.T, name string, mode config.Mode, scale int) *rt.Runtime {
	t.Helper()
	m, err := machine.New(modeCfg(mode))
	if err != nil {
		t.Fatal(err)
	}
	workers := 8
	r, err := rt.New(m, workers)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := Build(name, r, Params{Scale: scale, Seed: 12345})
	if err != nil {
		t.Fatal(err)
	}
	for wkr := 0; wkr < workers; wkr++ {
		// Spread workers across both clusters.
		r.Spawn(wkr*2, inst.CodeBytes, inst.Worker)
	}
	if err := m.Simulate(500_000_000); err != nil {
		t.Fatalf("%s/%v: %v", name, mode, err)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatalf("%s/%v invariants: %v", name, mode, err)
	}
	m.DrainToMemory()
	if err := inst.Verify(r); err != nil {
		t.Fatalf("%s/%v verify: %v", name, mode, err)
	}
	return r
}

func TestAllKernelsAllModes(t *testing.T) {
	for _, name := range Names() {
		for _, mode := range []config.Mode{config.SWcc, config.HWcc, config.Cohesion} {
			name, mode := name, mode
			t.Run(name+"/"+mode.String(), func(t *testing.T) {
				t.Parallel()
				runKernel(t, name, mode, 1)
			})
		}
	}
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"cg", "dmm", "gjk", "heat", "kmeans", "mri", "sobel", "stencil"}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("Names() = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Names() = %v, want %v", got, want)
		}
	}
	if _, err := Build("nope", nil, Params{}); err == nil {
		t.Fatal("unknown kernel accepted")
	}
}

func TestKernelDeterminism(t *testing.T) {
	a := runKernel(t, "heat", config.Cohesion, 1)
	b := runKernel(t, "heat", config.Cohesion, 1)
	if a.M.Run.Cycles != b.M.Run.Cycles || a.M.Run.TotalMessages() != b.M.Run.TotalMessages() {
		t.Fatalf("nondeterministic: cycles %d/%d messages %d/%d",
			a.M.Run.Cycles, b.M.Run.Cycles, a.M.Run.TotalMessages(), b.M.Run.TotalMessages())
	}
}

func TestSWccIssuesCoherenceInstructions(t *testing.T) {
	r := runKernel(t, "heat", config.SWcc, 1)
	if r.M.Run.InvIssued == 0 || r.M.Run.WBIssued == 0 {
		t.Fatalf("SWcc heat issued inv=%d wb=%d", r.M.Run.InvIssued, r.M.Run.WBIssued)
	}
}

func TestHWccIssuesNone(t *testing.T) {
	r := runKernel(t, "heat", config.HWcc, 1)
	if r.M.Run.InvIssued != 0 || r.M.Run.WBIssued != 0 {
		t.Fatalf("HWcc heat issued inv=%d wb=%d, want none", r.M.Run.InvIssued, r.M.Run.WBIssued)
	}
}

func TestKMeansAtomicsShapeAcrossModes(t *testing.T) {
	// The paper's kmeans signature: SWcc (and HWcc) are dominated by
	// uncached atomics; the Cohesion variant reduces them by relying on
	// hardware coherence (§4.2).
	sw := runKernel(t, "kmeans", config.SWcc, 1)
	coh := runKernel(t, "kmeans", config.Cohesion, 1)
	if coh.M.Run.Messages[msg.Atomic] >= sw.M.Run.Messages[msg.Atomic] {
		t.Fatalf("Cohesion kmeans atomics (%d) not below SWcc (%d)",
			coh.M.Run.Messages[msg.Atomic], sw.M.Run.Messages[msg.Atomic])
	}
}

func TestCohesionUsesTransitionsOnlyWhenAsked(t *testing.T) {
	// None of the base kernels transition domains mid-run; their Cohesion
	// benefit comes from placement (incoherent heap + coarse regions).
	r := runKernel(t, "dmm", config.Cohesion, 1)
	if r.M.Run.TransitionsToHW != 0 || r.M.Run.TransitionsToSW != 0 {
		t.Fatalf("unexpected transitions: %d/%d", r.M.Run.TransitionsToHW, r.M.Run.TransitionsToSW)
	}
}
