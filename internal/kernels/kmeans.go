package kernels

import (
	"fmt"
	"math/rand"

	"cohesion/internal/addr"
	"cohesion/internal/config"
	"cohesion/internal/rt"
)

// BuildKMeans is k-means clustering. The assignment phase histograms
// points into clusters; under SWcc and HWcc this is done the way the
// paper's benchmark does it — per-point uncached atomic read-modify-write
// operations, which dominate the kernel's traffic (paper §2.1: kmeans "is
// dominated by atomic read-modify-write histogramming operations"). The
// Cohesion variant exploits hardware coherence to accumulate into
// per-task partial sums merged with plain cached accesses, the
// optimization the paper credits for Cohesion's kmeans win (§4.2).
// Accumulation uses 8.8 fixed point so every variant is bit-deterministic.
func BuildKMeans(r *rt.Runtime, p Params) (*Instance, error) {
	const (
		dims  = 4
		k     = 4
		iters = 3
		fx    = 256 // fixed-point scale
	)
	points := 64 * p.Scale
	ptsPerTask := 8
	tasks := (points + ptsPerTask - 1) / ptsPerTask
	rng := rand.New(rand.NewSource(p.Seed + 5))

	// Centroid, histogram, and partial slots are padded to a full cache
	// line (8 words) so per-structure invalidates and flushes never touch
	// a neighbor's dirty words and partial slots do not false-share.
	const slot = 8
	pts := r.GlobalAlloc(uint64(4 * points * dims))
	cent := r.Malloc(uint64(4 * k * slot)) // HWcc under Cohesion
	sums := r.Malloc(uint64(4 * k * slot)) // fixed-point sums + count
	part := r.Malloc(uint64(4 * tasks * k * slot))
	assign := r.CohMalloc(uint64(4 * points))

	pv := make([]float32, points*dims)
	for i := range pv {
		pv[i] = float32(rng.Intn(16*fx)) / fx
		r.WriteF32(w(pts, i), pv[i])
	}
	cv := make([]float32, k*dims)
	for c := 0; c < k; c++ {
		for d := 0; d < dims; d++ {
			cv[c*dims+d] = pv[(c*points/k)*dims+d]
			r.WriteF32(w(cent, c*slot+d), cv[c*dims+d])
		}
	}

	nearest := func(cents []float32, p []float32) int {
		best, bi := float32(0), 0
		for c := 0; c < k; c++ {
			var d2 float32
			for d := 0; d < dims; d++ {
				df := p[d] - cents[c*dims+d]
				d2 += df * df
			}
			if c == 0 || d2 < best {
				best, bi = d2, c
			}
		}
		return bi
	}

	// Golden: same fixed-point accumulation, sequential.
	wantAssign := make([]uint32, points)
	{
		cents := append([]float32(nil), cv...)
		for t := 0; t < iters; t++ {
			cnt := make([]uint32, k)
			sum := make([]uint32, k*dims)
			for i := 0; i < points; i++ {
				c := nearest(cents, pv[i*dims:(i+1)*dims])
				wantAssign[i] = uint32(c)
				cnt[c]++
				for d := 0; d < dims; d++ {
					sum[c*dims+d] += uint32(pv[i*dims+d] * fx)
				}
			}
			for c := 0; c < k; c++ {
				if cnt[c] == 0 {
					continue
				}
				for d := 0; d < dims; d++ {
					cents[c*dims+d] = float32(sum[c*dims+d]) / fx / float32(cnt[c])
				}
			}
		}
		cv = cents
	}

	sumIdx := func(c, d int) int { return c*slot + d } // d == dims is the count
	worker := func(x *rt.Ctx) {
		cohesion := x.Mode() == config.Cohesion
		for t := 0; t < iters; t++ {
			if !cohesion {
				// Zero the shared histogram with uncached stores.
				x.ParallelFor(k, func(c int) {
					for d := 0; d <= dims; d++ {
						x.UncStore(w(sums, sumIdx(c, d)), 0)
					}
				})
			}
			x.ParallelFor(tasks, func(task int) {
				f := openFrame(x, 12)
				// Read the current centroids once per task.
				x.InvIfSWcc(cent, uint64(4*k*slot))
				cents := make([]float32, k*dims)
				for c := 0; c < k; c++ {
					for d := 0; d < dims; d++ {
						cents[c*dims+d] = x.LoadF32(w(cent, c*slot+d))
					}
				}
				var lc [k]uint32
				var ls [k * dims]uint32
				lo, hi := task*ptsPerTask, (task+1)*ptsPerTask
				if hi > points {
					hi = points
				}
				for i := lo; i < hi; i++ {
					var pt [dims]float32
					for d := 0; d < dims; d++ {
						pt[d] = x.LoadF32(w(pts, i*dims+d))
					}
					x.Work(2 * k * dims) // distance arithmetic
					c := nearest(cents, pt[:])
					x.Store(w(assign, i), uint32(c))
					if cohesion {
						lc[c]++
						for d := 0; d < dims; d++ {
							ls[c*dims+d] += uint32(pt[d] * fx)
						}
					} else {
						// The paper's histogramming: uncached atomics.
						x.AtomicAdd(w(sums, sumIdx(c, dims)), 1)
						for d := 0; d < dims; d++ {
							x.AtomicAdd(w(sums, sumIdx(c, d)), uint32(pt[d]*fx))
						}
					}
				}
				if cohesion {
					for c := 0; c < k; c++ {
						base := (task*k + c) * slot
						for d := 0; d < dims; d++ {
							x.Store(w(part, base+d), ls[c*dims+d])
						}
						x.Store(w(part, base+dims), lc[c])
					}
				}
				x.FlushIfSWcc(w(assign, lo), uint64(4*(hi-lo)))
				f.close()
			})
			// Update phase: one task per centroid.
			x.ParallelFor(k, func(c int) {
				var cnt uint32
				var sum [dims]uint32
				if cohesion {
					for task := 0; task < tasks; task++ {
						base := (task*k + c) * slot
						for d := 0; d < dims; d++ {
							sum[d] += x.Load(w(part, base+d))
						}
						cnt += x.Load(w(part, base+dims))
					}
				} else {
					x.InvIfSWcc(w(sums, sumIdx(c, 0)), uint64(4*slot))
					for d := 0; d < dims; d++ {
						sum[d] = x.Load(w(sums, sumIdx(c, d)))
					}
					cnt = x.Load(w(sums, sumIdx(c, dims)))
				}
				if cnt != 0 {
					for d := 0; d < dims; d++ {
						x.StoreF32(w(cent, c*slot+d), float32(sum[d])/fx/float32(cnt))
					}
					x.FlushIfSWcc(w(cent, c*slot), uint64(4*dims))
				}
				x.Work(4 * dims)
			})
		}
	}

	verify := func(r *rt.Runtime) error {
		for i := 0; i < points; i++ {
			if got := r.ReadWord(w(assign, i)); got != wantAssign[i] {
				return fmt.Errorf("kmeans: point %d assigned to %d, want %d", i, got, wantAssign[i])
			}
		}
		return verifyF32(r, "kmeans", uint64(cent),
			func(i int) float32 { return r.ReadF32(w(cent, (i/dims)*slot+i%dims)) }, cv)
	}
	_ = addr.Addr(0)
	return &Instance{Name: "kmeans", CodeBytes: 3 << 10, Worker: worker, Verify: verify}, nil
}
