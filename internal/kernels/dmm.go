package kernels

import (
	"fmt"
	"math/rand"

	"cohesion/internal/addr"
	"cohesion/internal/rt"
)

// w returns the address of word i of a word array at base.
func w(base addr.Addr, i int) addr.Addr { return base + addr.Addr(4*i) }

// BuildDMM is dense matrix multiply: C = A x B over n x n float32
// matrices. A and B are immutable inputs (read-shared); each task owns a
// block of C rows, written once and flushed eagerly under software
// coherence — the paper's regular, barrier-free-sharing workload.
func BuildDMM(r *rt.Runtime, p Params) (*Instance, error) {
	n := 12 * p.Scale
	rng := rand.New(rand.NewSource(p.Seed + 1))

	a := r.GlobalAlloc(uint64(4 * n * n))
	b := r.GlobalAlloc(uint64(4 * n * n))
	c := r.CohMalloc(uint64(4 * n * n))

	av := make([]float32, n*n)
	bv := make([]float32, n*n)
	for i := range av {
		av[i] = float32(rng.Intn(64)-32) / 8
		bv[i] = float32(rng.Intn(64)-32) / 8
		r.WriteF32(w(a, i), av[i])
		r.WriteF32(w(b, i), bv[i])
	}
	want := make([]float32, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var s float32
			for k := 0; k < n; k++ {
				s += av[i*n+k] * bv[k*n+j]
			}
			want[i*n+j] = s
		}
	}

	worker := func(x *rt.Ctx) {
		x.ParallelFor(n, func(row int) {
			f := openFrame(x, 12)
			for j := 0; j < n; j++ {
				var s float32
				for k := 0; k < n; k++ {
					s += x.LoadF32(w(a, row*n+k)) * x.LoadF32(w(b, k*n+j))
					x.Work(2) // multiply-add
				}
				x.StoreF32(w(c, row*n+j), s)
			}
			x.FlushIfSWcc(w(c, row*n), uint64(4*n))
			f.close()
		})
	}

	verify := func(r *rt.Runtime) error {
		return verifyF32(r, "dmm", uint64(c), func(i int) float32 { return r.ReadF32(w(c, i)) }, want)
	}
	if n < 1 {
		return nil, fmt.Errorf("dmm: bad scale")
	}
	return &Instance{Name: "dmm", CodeBytes: 2 << 10, Worker: worker, Verify: verify}, nil
}
