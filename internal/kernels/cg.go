package kernels

import (
	"fmt"
	"math"
	"math/rand"

	"cohesion/internal/addr"
	"cohesion/internal/rt"
)

// BuildCG is a conjugate-gradient solve of the 2D 5-point Laplacian system
// A x = b over an n x n grid (matrix-free SpMV), the paper's irregular
// reduction-heavy kernel: five bulk-synchronous phases per iteration
// (SpMV + dot partials, dot reduce, axpy + residual partials, scalar
// update, direction update), with scalars and partial-sum slots bouncing
// between a single reducer task and all workers every phase — the sharing
// pattern where software coherence pays its full flush/invalidate tax.
func BuildCG(r *rt.Runtime, p Params) (*Instance, error) {
	n := 8 * p.Scale
	N := n * n
	const iters = 3
	rowsPerTask := 2
	tasks := n / rowsPerTask
	rng := rand.New(rand.NewSource(p.Seed + 6))

	// Vectors live on the incoherent heap (SWcc under Cohesion); the
	// scalar block and partial slots are padded to full lines.
	bV := r.GlobalAlloc(uint64(4 * N))
	xV := r.CohMalloc(uint64(4 * N))
	rV := r.CohMalloc(uint64(4 * N))
	pV := r.CohMalloc(uint64(4 * N))
	// q, the scalars, and the partial-sum slots are the kernel's
	// fine-grained, reducer-shared structures: under Cohesion they stay on
	// the coherent heap (hardware-managed), which is exactly the sharing
	// pattern the paper keeps HWcc for; the block-owned vectors go on the
	// incoherent heap.
	qV := r.Malloc(uint64(4 * N))
	scal := r.Malloc(32)                     // rr(0) pq(1) alpha(2) beta(3)
	partA := r.Malloc(uint64(4 * 8 * tasks)) // line-padded partial slots
	partB := r.Malloc(uint64(4 * 8 * tasks))

	bv := make([]float32, N)
	for i := range bv {
		bv[i] = float32(rng.Intn(200)-100) / 64
		r.WriteF32(w(bV, i), bv[i])
		r.WriteF32(w(rV, i), bv[i]) // r0 = b (x0 = 0)
		r.WriteF32(w(pV, i), bv[i]) // p0 = r0
	}

	// The matrix-free operator: (A p)[i,j] = 4 p[i,j] - neighbors
	// (Dirichlet boundary: off-grid terms are zero).
	apply := func(pv []float32, i, j int) float32 {
		k := i*n + j
		v := 4 * pv[k]
		if j > 0 {
			v -= pv[k-1]
		}
		if j < n-1 {
			v -= pv[k+1]
		}
		if i > 0 {
			v -= pv[k-n]
		}
		if i < n-1 {
			v -= pv[k+n]
		}
		return v
	}

	// Golden CG with the same task decomposition and reduction order.
	wantX := make([]float32, N)
	wantR := append([]float32(nil), bv...)
	{
		xg := wantX
		rg := wantR
		pg := append([]float32(nil), bv...)
		qg := make([]float32, N)
		partial := make([]float32, tasks)
		reduce := func() float32 {
			var s float32
			for t := 0; t < tasks; t++ {
				s += partial[t]
			}
			return s
		}
		var rr float32
		for t := 0; t < tasks; t++ {
			partial[t] = 0
			for i := t * rowsPerTask; i < (t+1)*rowsPerTask; i++ {
				for j := 0; j < n; j++ {
					partial[t] += rg[i*n+j] * rg[i*n+j]
				}
			}
		}
		rr = reduce()
		for it := 0; it < iters; it++ {
			for t := 0; t < tasks; t++ {
				partial[t] = 0
				for i := t * rowsPerTask; i < (t+1)*rowsPerTask; i++ {
					for j := 0; j < n; j++ {
						q := apply(pg, i, j)
						qg[i*n+j] = q
						partial[t] += pg[i*n+j] * q
					}
				}
			}
			alpha := rr / reduce()
			for t := 0; t < tasks; t++ {
				partial[t] = 0
				for i := t * rowsPerTask; i < (t+1)*rowsPerTask; i++ {
					for j := 0; j < n; j++ {
						k := i*n + j
						xg[k] += alpha * pg[k]
						rg[k] -= alpha * qg[k]
						partial[t] += rg[k] * rg[k]
					}
				}
			}
			rrNew := reduce()
			beta := rrNew / rr
			rr = rrNew
			for t := 0; t < tasks; t++ {
				for i := t * rowsPerTask; i < (t+1)*rowsPerTask; i++ {
					for j := 0; j < n; j++ {
						k := i*n + j
						pg[k] = rg[k] + beta*pg[k]
					}
				}
			}
		}
	}

	blockAddr := func(v addr.Addr, task int) addr.Addr { return w(v, task*rowsPerTask*n) }
	blockBytes := uint64(4 * rowsPerTask * n)
	// haloAddr covers a task's p-block plus one row either side.
	invHalo := func(x *rt.Ctx, v addr.Addr, task int) {
		lo := task*rowsPerTask - 1
		rows := rowsPerTask + 2
		if lo < 0 {
			lo, rows = 0, rowsPerTask+1
		}
		if lo+rows > n { // clamp to the grid's last row
			rows = n - lo
		}
		x.InvIfSWcc(w(v, lo*n), uint64(4*rows*n))
	}
	reducePhase := func(x *rt.Ctx, part addr.Addr, dst int) {
		// Single reducer task: sums partial slots into scalar word dst.
		x.ParallelFor(1, func(int) {
			x.InvIfSWcc(part, uint64(4*8*tasks))
			x.InvIfSWcc(scal, 32)
			var s float32
			for t := 0; t < tasks; t++ {
				s += x.LoadF32(w(part, 8*t))
				x.Work(1)
			}
			x.StoreF32(w(scal, dst), s)
			x.FlushIfSWcc(scal, 32)
		})
	}

	worker := func(x *rt.Ctx) {
		// rr0 = r . r
		x.ParallelFor(tasks, func(t int) {
			invHalo(x, rV, t)
			var s float32
			for i := 0; i < rowsPerTask*n; i++ {
				v := x.LoadF32(w(rV, t*rowsPerTask*n+i))
				s += v * v
				x.Work(2)
			}
			x.StoreF32(w(partA, 8*t), s)
			x.FlushIfSWcc(w(partA, 8*t), 4)
		})
		reducePhase(x, partA, 0) // rr

		for it := 0; it < iters; it++ {
			// Phase 1: q = A p, partial pq.
			x.ParallelFor(tasks, func(t int) {
				f := openFrame(x, 12)
				invHalo(x, pV, t)
				var s float32
				for i := t * rowsPerTask; i < (t+1)*rowsPerTask; i++ {
					for j := 0; j < n; j++ {
						k := i*n + j
						v := 4 * x.LoadF32(w(pV, k))
						if j > 0 {
							v -= x.LoadF32(w(pV, k-1))
						}
						if j < n-1 {
							v -= x.LoadF32(w(pV, k+1))
						}
						if i > 0 {
							v -= x.LoadF32(w(pV, k-n))
						}
						if i < n-1 {
							v -= x.LoadF32(w(pV, k+n))
						}
						x.Work(5)
						x.StoreF32(w(qV, k), v)
						s += x.LoadF32(w(pV, k)) * v
					}
				}
				x.StoreF32(w(partA, 8*t), s)
				x.FlushIfSWcc(blockAddr(qV, t), blockBytes)
				x.FlushIfSWcc(w(partA, 8*t), 4)
				f.close()
			})
			// Phase 2: alpha = rr / pq.
			x.ParallelFor(1, func(int) {
				x.InvIfSWcc(partA, uint64(4*8*tasks))
				x.InvIfSWcc(scal, 32)
				var pq float32
				for t := 0; t < tasks; t++ {
					pq += x.LoadF32(w(partA, 8*t))
					x.Work(1)
				}
				rr := x.LoadF32(w(scal, 0))
				x.StoreF32(w(scal, 2), rr/pq)
				x.FlushIfSWcc(scal, 32)
			})
			// Phase 3: x += alpha p; r -= alpha q; partial rr.
			x.ParallelFor(tasks, func(t int) {
				f := openFrame(x, 12)
				x.InvIfSWcc(scal, 32)
				alpha := x.LoadF32(w(scal, 2))
				x.InvIfSWcc(blockAddr(pV, t), blockBytes)
				x.InvIfSWcc(blockAddr(qV, t), blockBytes)
				x.InvIfSWcc(blockAddr(xV, t), blockBytes)
				x.InvIfSWcc(blockAddr(rV, t), blockBytes)
				var s float32
				for i := 0; i < rowsPerTask*n; i++ {
					k := t*rowsPerTask*n + i
					xv := x.LoadF32(w(xV, k)) + alpha*x.LoadF32(w(pV, k))
					x.StoreF32(w(xV, k), xv)
					rv := x.LoadF32(w(rV, k)) - alpha*x.LoadF32(w(qV, k))
					x.StoreF32(w(rV, k), rv)
					s += rv * rv
					x.Work(6)
				}
				x.StoreF32(w(partB, 8*t), s)
				x.FlushIfSWcc(blockAddr(xV, t), blockBytes)
				x.FlushIfSWcc(blockAddr(rV, t), blockBytes)
				x.FlushIfSWcc(w(partB, 8*t), 4)
				f.close()
			})
			// Phase 4: beta = rrNew / rr; rr = rrNew.
			x.ParallelFor(1, func(int) {
				x.InvIfSWcc(partB, uint64(4*8*tasks))
				x.InvIfSWcc(scal, 32)
				var rrNew float32
				for t := 0; t < tasks; t++ {
					rrNew += x.LoadF32(w(partB, 8*t))
					x.Work(1)
				}
				rr := x.LoadF32(w(scal, 0))
				x.StoreF32(w(scal, 3), rrNew/rr)
				x.StoreF32(w(scal, 0), rrNew)
				x.FlushIfSWcc(scal, 32)
			})
			// Phase 5: p = r + beta p.
			x.ParallelFor(tasks, func(t int) {
				x.InvIfSWcc(scal, 32)
				beta := x.LoadF32(w(scal, 3))
				x.InvIfSWcc(blockAddr(rV, t), blockBytes)
				x.InvIfSWcc(blockAddr(pV, t), blockBytes)
				for i := 0; i < rowsPerTask*n; i++ {
					k := t*rowsPerTask*n + i
					x.StoreF32(w(pV, k), x.LoadF32(w(rV, k))+beta*x.LoadF32(w(pV, k)))
					x.Work(2)
				}
				x.FlushIfSWcc(blockAddr(pV, t), blockBytes)
			})
		}
	}

	verify := func(r *rt.Runtime) error {
		if err := verifyF32(r, "cg.x", uint64(xV), func(i int) float32 { return r.ReadF32(w(xV, i)) }, wantX); err != nil {
			return err
		}
		if err := verifyF32(r, "cg.r", uint64(rV), func(i int) float32 { return r.ReadF32(w(rV, i)) }, wantR); err != nil {
			return err
		}
		// Sanity: CG must actually have reduced the residual.
		var rr0, rrT float64
		for i := 0; i < N; i++ {
			rr0 += float64(bv[i]) * float64(bv[i])
			rrT += float64(wantR[i]) * float64(wantR[i])
		}
		if math.Sqrt(rrT) > 0.9*math.Sqrt(rr0) {
			return fmt.Errorf("cg: residual did not decrease (%g -> %g)", rr0, rrT)
		}
		return nil
	}
	return &Instance{Name: "cg", CodeBytes: 6 << 10, Worker: worker, Verify: verify}, nil
}
