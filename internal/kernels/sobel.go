package kernels

import (
	"math/rand"

	"cohesion/internal/rt"
)

// BuildSobel is 3x3 Sobel edge detection over an n x n image with a halo:
// a single data-parallel phase with an immutable read-shared input and a
// write-once output — the most coherence-friendly of the eight kernels.
func BuildSobel(r *rt.Runtime, p Params) (*Instance, error) {
	n := 24 * p.Scale
	stride := n + 2
	rng := rand.New(rand.NewSource(p.Seed + 3))

	img := r.GlobalAlloc(uint64(4 * stride * stride))
	out := r.CohMalloc(uint64(4 * n * n))

	pix := make([]float32, stride*stride)
	for i := range pix {
		pix[i] = float32(rng.Intn(256))
		r.WriteF32(w(img, i), pix[i])
	}
	abs := func(f float32) float32 {
		if f < 0 {
			return -f
		}
		return f
	}
	want := make([]float32, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			k := (i+1)*stride + (j + 1)
			gx := (pix[k-stride+1] + 2*pix[k+1] + pix[k+stride+1]) -
				(pix[k-stride-1] + 2*pix[k-1] + pix[k+stride-1])
			gy := (pix[k+stride-1] + 2*pix[k+stride] + pix[k+stride+1]) -
				(pix[k-stride-1] + 2*pix[k-stride] + pix[k-stride+1])
			want[i*n+j] = abs(gx) + abs(gy)
		}
	}

	rowsPerTask := 3
	tasks := (n + rowsPerTask - 1) / rowsPerTask

	worker := func(x *rt.Ctx) {
		x.ParallelFor(tasks, func(task int) {
			f := openFrame(x, 12)
			r0 := task * rowsPerTask
			r1 := r0 + rowsPerTask
			if r1 > n {
				r1 = n
			}
			for i := r0; i < r1; i++ {
				for j := 0; j < n; j++ {
					k := (i+1)*stride + (j + 1)
					gx := (x.LoadF32(w(img, k-stride+1)) + 2*x.LoadF32(w(img, k+1)) + x.LoadF32(w(img, k+stride+1))) -
						(x.LoadF32(w(img, k-stride-1)) + 2*x.LoadF32(w(img, k-1)) + x.LoadF32(w(img, k+stride-1)))
					gy := (x.LoadF32(w(img, k+stride-1)) + 2*x.LoadF32(w(img, k+stride)) + x.LoadF32(w(img, k+stride+1))) -
						(x.LoadF32(w(img, k-stride-1)) + 2*x.LoadF32(w(img, k-stride)) + x.LoadF32(w(img, k-stride+1)))
					x.Work(6)
					v := gx
					if v < 0 {
						v = -v
					}
					g := gy
					if g < 0 {
						g = -g
					}
					x.StoreF32(w(out, i*n+j), v+g)
				}
				x.FlushIfSWcc(w(out, i*n), uint64(4*n))
			}
			f.close()
		})
	}

	verify := func(r *rt.Runtime) error {
		return verifyF32(r, "sobel", uint64(out), func(i int) float32 { return r.ReadF32(w(out, i)) }, want)
	}
	return &Instance{Name: "sobel", CodeBytes: 2 << 10, Worker: worker, Verify: verify}, nil
}
