package rt

import (
	"fmt"
	"sort"

	"cohesion/internal/addr"
)

// Heap is a first-fit free-list allocator over a range of the simulated
// address space. Allocation metadata is kept host-side: the paper's libc
// heaps keep allocator metadata in memory, but benchmark setup happens
// before timed execution, so modelling metadata traffic would only add
// noise to the measured phases (see DESIGN.md).
//
// Two instances exist per runtime: the conventional coherent heap
// (16-byte minimum allocation, always HWcc — Table 2's malloc/free) and
// the incoherent heap (64-byte minimum so allocation metadata could stay
// coherent, lines initially SWcc — Table 2's coh_malloc/coh_free).
type Heap struct {
	name     string
	span     addr.Range
	minAlloc uint64
	free     []addr.Range // sorted by base, coalesced
	live     map[addr.Addr]uint64
}

// NewHeap builds an allocator over span with the given minimum allocation
// granule (allocations are rounded up to it; it must be a power of two).
func NewHeap(name string, span addr.Range, minAlloc uint64) *Heap {
	if minAlloc == 0 || minAlloc&(minAlloc-1) != 0 {
		panic("rt: heap granule must be a power of two")
	}
	return &Heap{
		name:     name,
		span:     span,
		minAlloc: minAlloc,
		free:     []addr.Range{span},
		live:     make(map[addr.Addr]uint64),
	}
}

func (h *Heap) round(size uint64) uint64 {
	if size == 0 {
		size = 1
	}
	return (size + h.minAlloc - 1) &^ (h.minAlloc - 1)
}

// Alloc returns the base of a fresh block of at least size bytes, aligned
// to the heap granule. It fails when the heap is exhausted.
func (h *Heap) Alloc(size uint64) (addr.Addr, error) {
	size = h.round(size)
	for i, r := range h.free {
		if r.Size < size {
			continue
		}
		base := r.Base
		if r.Size == size {
			h.free = append(h.free[:i], h.free[i+1:]...)
		} else {
			h.free[i] = addr.Range{Base: r.Base + addr.Addr(size), Size: r.Size - size}
		}
		h.live[base] = size
		return base, nil
	}
	return 0, fmt.Errorf("rt: %s heap exhausted allocating %d bytes", h.name, size)
}

// MustAlloc is Alloc for setup code where exhaustion is a programming error.
func (h *Heap) MustAlloc(size uint64) addr.Addr {
	a, err := h.Alloc(size)
	if err != nil {
		panic(err)
	}
	return a
}

// Free returns a block to the heap, coalescing with neighbors. Freeing an
// address that is not a live allocation base is an error.
func (h *Heap) Free(base addr.Addr) error {
	size, ok := h.live[base]
	if !ok {
		return fmt.Errorf("rt: %s heap: free of non-allocated address %#x", h.name, uint64(base))
	}
	delete(h.live, base)
	r := addr.Range{Base: base, Size: size}
	i := sort.Search(len(h.free), func(i int) bool { return h.free[i].Base > r.Base })
	h.free = append(h.free, addr.Range{})
	copy(h.free[i+1:], h.free[i:])
	h.free[i] = r
	// Coalesce with successor, then predecessor.
	if i+1 < len(h.free) && h.free[i].End() == h.free[i+1].Base {
		h.free[i].Size += h.free[i+1].Size
		h.free = append(h.free[:i+1], h.free[i+2:]...)
	}
	if i > 0 && h.free[i-1].End() == h.free[i].Base {
		h.free[i-1].Size += h.free[i].Size
		h.free = append(h.free[:i], h.free[i+1:]...)
	}
	return nil
}

// LiveBytes reports the total currently-allocated size.
func (h *Heap) LiveBytes() uint64 {
	var n uint64
	for _, s := range h.live {
		n += s
	}
	return n
}

// FreeBytes reports the total unallocated size.
func (h *Heap) FreeBytes() uint64 {
	var n uint64
	for _, r := range h.free {
		n += r.Size
	}
	return n
}

// Span returns the heap's full address range.
func (h *Heap) Span() addr.Range { return h.span }

// Contains reports whether a falls inside the heap's range.
func (h *Heap) Contains(a addr.Addr) bool { return h.span.Contains(a) }
