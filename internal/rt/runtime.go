// Package rt is the Cohesion runtime: the software half of the hybrid
// memory model (paper §3.3, §3.5). It provides
//
//   - the Table 2 programmer API: Malloc/Free on the coherent heap,
//     CohMalloc/CohFree on the incoherent heap, and the
//     CohSWccRegion/CohHWccRegion domain-transition calls, implemented as
//     uncached atomics on the fine-grain region table;
//   - the Task Centric Memory Model's bulk-synchronous substrate: a
//     global task queue driven by atomic fetch-and-add and a
//     sense-reversing barrier of uncached operations, both generating the
//     real "Uncached/Atomic" traffic the paper's figures account for;
//   - region-table initialization at load time: coarse-grain SWcc ranges
//     for the code segment, per-core stacks, and immutable globals, and
//     SWcc fine-table bits for the incoherent heap;
//   - the Ctx handle kernels program against: loads, stores, atomics,
//     software flush/invalidate, stack scratch, and compute-work ops.
package rt

import (
	"fmt"
	"math"

	"cohesion/internal/addr"
	"cohesion/internal/cluster"
	"cohesion/internal/config"
	"cohesion/internal/machine"
	"cohesion/internal/msg"
	"cohesion/internal/region"
)

// Segment sizes carved out at load time.
const (
	codeSegBytes    = 1 << 20  // coarse-SWcc code region
	globalSegBytes  = 24 << 20 // immutable globals (coarse-SWcc)
	heapBytes       = 256 << 20
	cohHeapBytes    = 256 << 20
	syncSegBytes    = 1 << 20 // uncached runtime words (barrier, queues)
	maxParallelFors = 1 << 14
)

// Runtime ties a machine to its software runtime state.
type Runtime struct {
	M        *machine.Machine
	Heap     *Heap // coherent heap (Table 2 malloc)
	CohHeap  *Heap // incoherent heap (Table 2 coh_malloc)
	Globals  *Heap // immutable global data (coarse-grain SWcc region)
	NWorkers int

	barCount  addr.Addr
	barSense  addr.Addr
	queueBase addr.Addr
	syncLimit addr.Addr // end of this partition's synchronization segment
}

// New sets up the runtime for a machine: segment layout, coarse regions,
// and the incoherent heap's initial SWcc table bits. workers is the number
// of cores that will run programs (they must call Barrier together).
func New(m *machine.Machine, workers int) (*Runtime, error) {
	return NewPartition(m, workers, 0, 1)
}

// NewPartition sets up one of nslots co-scheduled applications sharing a
// machine (the paper's §2.3 use case: the runtime "managing coherence
// needs across applications"). Each partition receives disjoint slices of
// the heaps, the immutable-globals segment, and the synchronization words
// (its barrier and task queue are private); the code segment, stacks, and
// region tables are machine-wide. Callers must spawn each partition's
// workers on disjoint cores.
func NewPartition(m *machine.Machine, workers, slot, nslots int) (*Runtime, error) {
	if workers < 1 || workers > m.Cfg.Cores() {
		return nil, fmt.Errorf("rt: %d workers on a %d-core machine", workers, m.Cfg.Cores())
	}
	if nslots < 1 || slot < 0 || slot >= nslots {
		return nil, fmt.Errorf("rt: bad partition %d/%d", slot, nslots)
	}
	heapSlice := heapBytes / uint64(nslots)
	cohSlice := cohHeapBytes / uint64(nslots)
	globSlice := globalSegBytes / uint64(nslots)
	syncSlice := uint64(syncSegBytes / nslots)
	r := &Runtime{
		M:        m,
		NWorkers: workers,
		Heap: NewHeap("coherent",
			addr.Range{Base: addr.HeapBase + addr.Addr(uint64(slot)*heapSlice), Size: heapSlice}, 16),
		CohHeap: NewHeap("incoherent",
			addr.Range{Base: addr.CohHeapBase + addr.Addr(uint64(slot)*cohSlice), Size: cohSlice}, 64),
		Globals: NewHeap("globals",
			addr.Range{Base: addr.GlobalBase + syncSegBytes + addr.Addr(uint64(slot)*globSlice), Size: globSlice}, 32),
	}
	syncBase := addr.GlobalBase + addr.Addr(uint64(slot)*syncSlice)
	r.barCount = syncBase
	r.barSense = syncBase + 4
	r.queueBase = syncBase + 64
	r.syncLimit = syncBase + addr.Addr(syncSlice)

	// Load-time coarse-grain SWcc regions (paper §3.5): code, constant
	// (immutable) data, per-core stacks. Machine-wide; the first partition
	// registers them.
	if m.Coarse == nil || m.Coarse.Len() == 0 {
		stackSpan := uint64(m.Cfg.Cores() * m.Cfg.StackBytesPerCore)
		for _, reg := range []addr.Range{
			{Base: addr.CodeBase, Size: codeSegBytes},
			{Base: addr.GlobalBase + syncSegBytes, Size: globalSegBytes},
			{Base: addr.StackBase, Size: stackSpan},
		} {
			if err := m.AddCoarseRegion(reg); err != nil {
				return nil, err
			}
		}
		// The incoherent heap starts in the SWcc domain (paper §3.6: "All
		// lines that may transition between coherence domains are initially
		// allocated using the incoherent heap ... the initial state of
		// these lines is SWcc"), recorded in the fine-grain table.
		m.PresetSWcc(addr.Range{Base: addr.CohHeapBase, Size: cohHeapBytes})
	}
	return r, nil
}

// Malloc allocates on the coherent heap: data is always HWcc (Table 2).
func (r *Runtime) Malloc(size uint64) addr.Addr { return r.Heap.MustAlloc(size) }

// Free releases a coherent-heap allocation.
func (r *Runtime) Free(p addr.Addr) {
	if err := r.Heap.Free(p); err != nil {
		panic(err)
	}
}

// CohMalloc allocates on the incoherent heap: lines start SWcc and may
// transition between domains (Table 2; 64-byte minimum allocation).
func (r *Runtime) CohMalloc(size uint64) addr.Addr { return r.CohHeap.MustAlloc(size) }

// CohFree releases an incoherent-heap allocation.
func (r *Runtime) CohFree(p addr.Addr) {
	if err := r.CohHeap.Free(p); err != nil {
		panic(err)
	}
}

// GlobalAlloc allocates immutable input data; under Cohesion it falls in a
// coarse-grain SWcc region and is never tracked by the directory.
func (r *Runtime) GlobalAlloc(size uint64) addr.Addr { return r.Globals.MustAlloc(size) }

// StackOf returns a core's fixed-size private stack range (paper §3.5:
// fixed-size stacks were found sufficient).
func (r *Runtime) StackOf(coreID int) addr.Range {
	return addr.Range{
		Base: addr.StackBase + addr.Addr(coreID*r.M.Cfg.StackBytesPerCore),
		Size: uint64(r.M.Cfg.StackBytesPerCore),
	}
}

// IsSWccDomain reports whether an address currently belongs to the SWcc
// domain: everything under pure SWcc, nothing under pure HWcc, and the
// region tables' verdict under Cohesion. Kernels use it to decide whether
// explicit flush/invalidate instructions are required for a structure.
func (r *Runtime) IsSWccDomain(a addr.Addr) bool {
	switch r.M.Cfg.Mode {
	case config.SWcc:
		return true
	case config.HWcc:
		return false
	}
	if r.M.Coarse != nil && r.M.Coarse.Contains(a) {
		return true
	}
	return r.M.Fine != nil && r.M.Fine.IsSWcc(a)
}

// --- host-side data initialization (pre-run) ---

// WriteWord/ReadWord access the backing store directly; used by kernel
// setup and verification outside simulated time.
func (r *Runtime) WriteWord(a addr.Addr, v uint32) { r.M.Store.WriteWord(a, v) }
func (r *Runtime) ReadWord(a addr.Addr) uint32     { return r.M.Store.ReadWord(a) }

// WriteF32/ReadF32 are float32 views of simulated words.
func (r *Runtime) WriteF32(a addr.Addr, f float32) { r.M.Store.WriteWord(a, math.Float32bits(f)) }
func (r *Runtime) ReadF32(a addr.Addr) float32     { return math.Float32frombits(r.M.Store.ReadWord(a)) }

// --- worker contexts ---

// Ctx is the per-worker handle kernels program against. All methods park
// the calling program coroutine until the simulated operation completes.
type Ctx struct {
	rt       *Runtime
	c        *cluster.Core
	sense    uint32
	phase    int
	stack    addr.Range
	stackTop addr.Addr
}

// Spawn starts a worker program on the given global core. The body runs
// as a coroutine inside the simulation; all workers must reach the
// same sequence of Barrier/ParallelFor calls.
func (r *Runtime) Spawn(coreID int, codeBytes int, body func(x *Ctx)) {
	r.M.StartProgram(coreID, func(c *cluster.Core) {
		c.SetCode(addr.CodeBase, codeBytes)
		st := r.StackOf(coreID)
		x := &Ctx{rt: r, c: c, stack: st, stackTop: st.Base}
		body(x)
	})
}

// Mode reports the run's memory model.
func (x *Ctx) Mode() config.Mode { return x.rt.M.Cfg.Mode }

// CoreID returns the worker's global core number.
func (x *Ctx) CoreID() int { return x.c.ID }

// Runtime returns the owning runtime.
func (x *Ctx) Runtime() *Runtime { return x.rt }

// Load returns the word at a.
func (x *Ctx) Load(a addr.Addr) uint32 {
	return x.c.Do(cluster.Op{Kind: cluster.OpLoad, Addr: a})
}

// Store writes the word at a. Stores are result-free, so they are issued
// asynchronously: the program keeps running (host-side) while the machine
// drains the store at its normal issue slot, preserving per-core program
// order and exact timing while skipping a coroutine switch per store.
func (x *Ctx) Store(a addr.Addr, v uint32) {
	x.c.DoAsync(cluster.Op{Kind: cluster.OpStore, Addr: a, Value: v})
}

// LoadF32/StoreF32 are float32 views.
func (x *Ctx) LoadF32(a addr.Addr) float32     { return math.Float32frombits(x.Load(a)) }
func (x *Ctx) StoreF32(a addr.Addr, f float32) { x.Store(a, math.Float32bits(f)) }

// Work models n cycles of non-memory computation (arithmetic).
func (x *Ctx) Work(n int) {
	if n > 0 {
		x.c.DoAsync(cluster.Op{Kind: cluster.OpWork, Cycles: int64(n)})
	}
}

// Atomic performs an uncached read-modify-write at the L3, returning the
// old value (the paper's atom.* instructions).
func (x *Ctx) Atomic(a addr.Addr, op msg.AtomicOp, operand uint32) uint32 {
	return x.c.Do(cluster.Op{Kind: cluster.OpAtomic, Addr: a, AOp: op, Value: operand})
}

// AtomicAdd is fetch-and-add; it returns the pre-add value.
func (x *Ctx) AtomicAdd(a addr.Addr, v uint32) uint32 { return x.Atomic(a, msg.AtomicAdd, v) }

// AtomicCAS swaps in swap when the word equals compare; it returns the
// observed value.
func (x *Ctx) AtomicCAS(a addr.Addr, compare, swap uint32) uint32 {
	return x.c.Do(cluster.Op{Kind: cluster.OpAtomic, Addr: a, AOp: msg.AtomicCAS, Value: compare, Op2: swap})
}

// UncLoad/UncStore access a word at the L3, bypassing the local caches.
func (x *Ctx) UncLoad(a addr.Addr) uint32 {
	return x.c.Do(cluster.Op{Kind: cluster.OpUncLoad, Addr: a})
}

// UncStore writes a word at the L3, bypassing the local caches.
func (x *Ctx) UncStore(a addr.Addr, v uint32) {
	x.c.Do(cluster.Op{Kind: cluster.OpUncStore, Addr: a, Value: v})
}

// FlushLine issues the software WB instruction for the line containing a.
func (x *Ctx) FlushLine(a addr.Addr) {
	x.c.DoAsync(cluster.Op{Kind: cluster.OpFlush, Addr: a})
}

// InvLine issues the software INV instruction for the line containing a.
func (x *Ctx) InvLine(a addr.Addr) {
	x.c.DoAsync(cluster.Op{Kind: cluster.OpInv, Addr: a})
}

// FlushRange writes back every line of [base, base+size) (eager writeback
// of task output data, paper Fig 3). The line walk is inline — no slice of
// covered lines is materialized on this hot path.
func (x *Ctx) FlushRange(base addr.Addr, size uint64) {
	if size == 0 {
		return
	}
	for a, end := addr.LineAlign(base), base+addr.Addr(size); a < end; a += addr.LineBytes {
		x.FlushLine(a)
	}
}

// InvRange invalidates every line of [base, base+size) (lazy invalidation
// of input data, paper Fig 3).
func (x *Ctx) InvRange(base addr.Addr, size uint64) {
	if size == 0 {
		return
	}
	for a, end := addr.LineAlign(base), base+addr.Addr(size); a < end; a += addr.LineBytes {
		x.InvLine(a)
	}
}

// IsSWccDomain is Runtime.IsSWccDomain answered through the worker's
// cluster region-lookup cache: under Cohesion a fine-table consultation
// hits the small per-cluster cache instead of re-deriving the table-word
// permutation and reading the backing store on every call. Both paths are
// host-side (no simulated cycles); the cached answer is kept consistent by
// the table's mutation generation.
func (x *Ctx) IsSWccDomain(a addr.Addr) bool {
	r := x.rt
	switch r.M.Cfg.Mode {
	case config.SWcc:
		return true
	case config.HWcc:
		return false
	}
	if r.M.Coarse != nil && r.M.Coarse.Contains(a) {
		return true
	}
	if caches := r.M.RegionCaches; len(caches) > 0 {
		return caches[x.c.ID/r.M.Cfg.CoresPerCluster].IsSWcc(a)
	}
	return r.M.Fine != nil && r.M.Fine.IsSWcc(a)
}

// FlushIfSWcc flushes the range only when it lives in the SWcc domain —
// the Cohesion variant of a kernel keeps its coherence instructions only
// for software-managed data (paper §4.1).
func (x *Ctx) FlushIfSWcc(base addr.Addr, size uint64) {
	if x.IsSWccDomain(base) {
		x.FlushRange(base, size)
	}
}

// InvIfSWcc invalidates the range only when it lives in the SWcc domain.
func (x *Ctx) InvIfSWcc(base addr.Addr, size uint64) {
	if x.IsSWccDomain(base) {
		x.InvRange(base, size)
	}
}

// --- Cohesion domain transitions (Table 2) ---

// CohSWccRegion moves [ptr, ptr+size) into the SWcc domain. The runtime
// groups lines by fine-grain-table word and issues one atom.or per word;
// the directory snoops the writes and performs the HWcc=>SWcc protocol
// before acknowledging (paper §3.6). Outside Cohesion mode it is a no-op.
func (x *Ctx) CohSWccRegion(ptr addr.Addr, size uint64) {
	x.tableUpdate(ptr, size, true)
}

// CohHWccRegion moves [ptr, ptr+size) into the HWcc domain (atom.and).
func (x *Ctx) CohHWccRegion(ptr addr.Addr, size uint64) {
	x.tableUpdate(ptr, size, false)
}

// RaceTrapped reports and clears a pending Case 5b race exception raised
// by an earlier CohHWccRegion call, when the machine runs with
// TrapOnRace (paper §3.6's debugging aid). Without the trap the capture
// still converges; the merged value of a raced word is undefined.
func (x *Ctx) RaceTrapped() bool { return x.c.TakeRaceTrap() }

func (x *Ctx) tableUpdate(ptr addr.Addr, size uint64, toSW bool) {
	if x.Mode() != config.Cohesion || size == 0 {
		return
	}
	banks := x.rt.M.Cfg.L3Banks
	// Group line bits by table word (the hybrid.tbloff hash keeps a word's
	// lines within one bank, so each atomic lands on the lines' home bank).
	masks := make(map[addr.Addr]uint32)
	var order []addr.Addr
	for _, l := range addr.LinesCovering(ptr, size) {
		wa := region.TblWordAddr(l.Base(), banks)
		if _, ok := masks[wa]; !ok {
			order = append(order, wa)
		}
		masks[wa] |= 1 << region.TblBitIndex(l.Base())
	}
	for _, wa := range order {
		if toSW {
			x.Atomic(wa, msg.AtomicOr, masks[wa])
		} else {
			x.Atomic(wa, msg.AtomicAnd, ^masks[wa])
		}
	}
}

// --- BSP substrate ---

// backoff bounds for barrier/idle spinning.
const (
	spinMin = 16
	spinMax = 256
)

// Barrier joins the runtime's global sense-reversing barrier: an atomic
// arrival count plus an uncached sense word that spinning workers poll
// with exponential backoff.
func (x *Ctx) Barrier() {
	next := x.sense + 1
	arrived := x.AtomicAdd(x.rt.barCount, 1) + 1
	if arrived == uint32(x.rt.NWorkers) {
		x.UncStore(x.rt.barCount, 0)
		x.UncStore(x.rt.barSense, next)
		x.rt.M.Run.MarkPhase(uint64(x.rt.M.Q.Now()))
	} else {
		wait := spinMin
		for x.UncLoad(x.rt.barSense) != next {
			x.Work(wait)
			if wait < spinMax {
				wait *= 2
			}
		}
	}
	x.sense = next
}

// ParallelFor executes ntasks tasks across all workers via the global
// atomic task queue, then joins a barrier. Every worker must call it with
// the same arguments in the same order (the bulk-synchronous pattern).
// body receives the task index.
func (x *Ctx) ParallelFor(ntasks int, body func(task int)) {
	x.phase++
	if x.phase >= maxParallelFors {
		panic("rt: too many ParallelFor phases")
	}
	ctr := x.rt.queueBase + addr.Addr(4*x.phase)
	for {
		idx := int(x.AtomicAdd(ctr, 1))
		if idx >= ntasks {
			break
		}
		body(idx)
	}
	x.Barrier()
}

// ParallelForDistributed is ParallelFor with per-worker task counters
// instead of one global queue: worker w starts with the task range
// [w*n/W, (w+1)*n/W) behind a private atomic counter, and workers that
// exhaust their own range harvest directly from other workers' counters.
// This spreads the task-dequeue atomics across L3 banks instead of
// aiming them all at one, while keeping exactly-once execution: every
// claim is a fetch-and-add on some worker's counter. Termination requires
// each worker to sweep every other worker's counter once, an
// O(workers^2) scan — BenchmarkAblationTaskQueue shows that at simulated
// scales this costs more than the central-counter contention it removes,
// so the default ParallelFor keeps the paper's central queue.
func (x *Ctx) ParallelForDistributed(ntasks int, body func(task int)) {
	x.phase++
	if x.phase >= maxParallelFors {
		panic("rt: too many ParallelFor phases")
	}
	W := x.rt.NWorkers
	// Per-phase counter block, one counter per worker. Counters are strided
	// at DRAM-row granularity (2 KB) so they land in different L3 banks —
	// the whole point is spreading dequeue traffic across banks. Fresh
	// space per phase keeps the counters zero-initialized; the guard bounds
	// the phase count this buys within the partition's sync segment.
	const ctrStride = 2048
	base := x.rt.queueBase + addr.Addr(4*maxParallelFors) + addr.Addr(x.phase*W*ctrStride)
	if base+addr.Addr(W*ctrStride) >= x.rt.syncLimit {
		panic("rt: distributed queue space exhausted")
	}
	ctr := func(w int) addr.Addr { return base + addr.Addr(w*ctrStride) }
	lo := func(w int) int { return w * ntasks / W }
	hi := func(w int) int { return (w + 1) * ntasks / W }

	// Gang-local worker identity: arrival order at a registration counter
	// (word 1 of worker 0's counter line), stable within the phase.
	me := int(x.AtomicAdd(ctr(0)+4, 1)) % W

	run := func(w int) bool {
		idx := int(x.AtomicAdd(ctr(w), 1)) + lo(w)
		if idx >= hi(w) {
			return false
		}
		body(idx)
		return true
	}
	for run(me) {
	}
	// Harvest leftover tasks from the other workers' ranges.
	for off := 1; off < W; off++ {
		v := (me + off) % W
		for run(v) {
		}
	}
	x.Barrier()
}

// --- stack scratch ---

// StackAlloc reserves words of the worker's private stack frame and
// returns their base address; FrameReset pops everything. Stack accesses
// are where the paper's HWcc directory spends ~15% of its entries.
func (x *Ctx) StackAlloc(words int) addr.Addr {
	need := addr.Addr(words * addr.WordBytes)
	if x.stackTop+need > x.stack.End() {
		panic(fmt.Sprintf("rt: stack overflow on core %d", x.c.ID))
	}
	base := x.stackTop
	x.stackTop += need
	return base
}

// FrameReset pops the worker's whole scratch stack.
func (x *Ctx) FrameReset() { x.stackTop = x.stack.Base }
