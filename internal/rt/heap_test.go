package rt

import (
	"math/rand"
	"testing"
	"testing/quick"

	"cohesion/internal/addr"
)

func testSpan() addr.Range { return addr.Range{Base: 0x1000, Size: 4096} }

func TestHeapAllocAlignmentAndGranule(t *testing.T) {
	h := NewHeap("t", testSpan(), 64)
	a := h.MustAlloc(1)
	b := h.MustAlloc(65)
	if a%64 != 0 || b%64 != 0 {
		t.Fatal("allocations not granule-aligned")
	}
	if b-a < 64 {
		t.Fatal("first allocation not rounded to granule")
	}
	if b-a != 64 {
		t.Fatalf("first-fit placement gap = %d", b-a)
	}
	if h.LiveBytes() != 64+128 {
		t.Fatalf("LiveBytes = %d", h.LiveBytes())
	}
}

func TestHeapExhaustion(t *testing.T) {
	h := NewHeap("t", testSpan(), 16)
	if _, err := h.Alloc(5000); err == nil {
		t.Fatal("oversized allocation succeeded")
	}
	h.MustAlloc(4096)
	if _, err := h.Alloc(16); err == nil {
		t.Fatal("allocation from empty heap succeeded")
	}
}

func TestHeapFreeAndCoalesce(t *testing.T) {
	h := NewHeap("t", testSpan(), 16)
	a := h.MustAlloc(1024)
	b := h.MustAlloc(1024)
	c := h.MustAlloc(1024)
	_ = b
	if err := h.Free(a); err != nil {
		t.Fatal(err)
	}
	if err := h.Free(c); err != nil {
		t.Fatal(err)
	}
	if err := h.Free(b); err != nil { // coalesces both sides
		t.Fatal(err)
	}
	if h.FreeBytes() != 4096 || h.LiveBytes() != 0 {
		t.Fatalf("free=%d live=%d after full free", h.FreeBytes(), h.LiveBytes())
	}
	// After coalescing, a full-span allocation must fit again.
	if _, err := h.Alloc(4096); err != nil {
		t.Fatalf("coalescing failed: %v", err)
	}
}

func TestHeapDoubleFreeRejected(t *testing.T) {
	h := NewHeap("t", testSpan(), 16)
	a := h.MustAlloc(64)
	if err := h.Free(a); err != nil {
		t.Fatal(err)
	}
	if err := h.Free(a); err == nil {
		t.Fatal("double free accepted")
	}
	if err := h.Free(a + 4); err == nil {
		t.Fatal("interior free accepted")
	}
}

func TestHeapBadGranulePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-power-of-two granule accepted")
		}
	}()
	NewHeap("t", testSpan(), 48)
}

// Property: live allocations never overlap, stay in the span, and
// live+free bytes always equal the span size.
func TestQuickHeapInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := NewHeap("q", testSpan(), 32)
		type blk struct {
			base addr.Addr
			size uint64
		}
		var blocks []blk
		for i := 0; i < 300; i++ {
			if rng.Intn(2) == 0 || len(blocks) == 0 {
				size := uint64(rng.Intn(300) + 1)
				a, err := h.Alloc(size)
				if err != nil {
					continue
				}
				rounded := (size + 31) &^ 31
				nr := addr.Range{Base: a, Size: rounded}
				if !testSpan().Contains(a) || !testSpan().Contains(nr.End()-1) {
					return false
				}
				for _, b := range blocks {
					if nr.Overlaps(addr.Range{Base: b.base, Size: b.size}) {
						return false
					}
				}
				blocks = append(blocks, blk{a, rounded})
			} else {
				i := rng.Intn(len(blocks))
				if h.Free(blocks[i].base) != nil {
					return false
				}
				blocks = append(blocks[:i], blocks[i+1:]...)
			}
			if h.LiveBytes()+h.FreeBytes() != 4096 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
