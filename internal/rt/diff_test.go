package rt

import (
	"fmt"
	"math/rand"
	"testing"

	"cohesion/internal/addr"
	"cohesion/internal/config"
	"cohesion/internal/machine"
)

// Differential fuzzing: a randomly generated bulk-synchronous program must
// produce a bit-identical memory image under SWcc, HWcc, and Cohesion, and
// match a host-side golden model. Any divergence is a coherence bug in one
// of the three protocol stacks.
//
// The generated programs follow the Task Centric discipline the paper's
// benchmarks use (ping-pong buffers, as in heat/stencil): phase ph writes
// task-disjoint blocks of buffer ph%2 and reads arbitrary words of the
// other buffer (produced last phase), invalidating read lines lazily and
// flushing written blocks eagerly. Reads never race same-phase writes —
// the discipline the model requires — but block boundaries, line sharing
// between adjacent blocks, and cross-cluster read sets are all random.

type fuzzProgram struct {
	phases  int
	tasks   int // per phase
	words   int // per buffer
	workers int
	seed    int64
}

type fuzzOp struct {
	write bool
	word  int
	val   uint32
}

type fuzzPlan struct {
	ops    [][][]fuzzOp // [phase][task] -> op list
	golden [2][]uint32  // final contents of both buffers
}

func buildPlan(p fuzzProgram) *fuzzPlan {
	rng := rand.New(rand.NewSource(p.seed))
	var mem [2][]uint32
	mem[0] = make([]uint32, p.words)
	mem[1] = make([]uint32, p.words)
	plan := &fuzzPlan{}
	blockWords := p.words / p.tasks
	for ph := 0; ph < p.phases; ph++ {
		wbuf, rbuf := ph%2, (ph+1)%2
		phaseOps := make([][]fuzzOp, p.tasks)
		staged := map[int]uint32{}
		for task := 0; task < p.tasks; task++ {
			lo := task * blockWords
			n := 4 + rng.Intn(8)
			var ops []fuzzOp
			acc := uint32(ph*1000 + task)
			for i := 0; i < n; i++ {
				if rng.Intn(3) == 0 {
					w := rng.Intn(p.words) // read the other buffer, anywhere
					ops = append(ops, fuzzOp{write: false, word: w})
					acc = acc*31 + mem[rbuf][w]
				} else {
					w := lo + rng.Intn(blockWords) // write own block
					val := acc*2654435761 + uint32(i) + 1
					ops = append(ops, fuzzOp{write: true, word: w, val: val})
					staged[w] = val
				}
			}
			phaseOps[task] = ops
		}
		for w, v := range staged {
			mem[wbuf][w] = v
		}
		plan.ops = append(plan.ops, phaseOps)
	}
	plan.golden[0] = mem[0]
	plan.golden[1] = mem[1]
	return plan
}

// fuzzWorker runs the plan's phases; migrate, when non-nil, is called by
// worker 0 at the given phase boundary (the mid-run transition variant).
func fuzzWorker(p fuzzProgram, plan *fuzzPlan, buf [2]addr.Addr, wk int,
	migrateAt int, migrate func(x *Ctx)) func(x *Ctx) {
	blockWords := p.words / p.tasks
	wordAddr := func(b, w int) addr.Addr { return buf[b] + addr.Addr(4*w) }
	return func(x *Ctx) {
		for ph := 0; ph < p.phases; ph++ {
			if migrate != nil && ph == migrateAt {
				if wk == 0 {
					migrate(x)
				}
				x.Barrier()
			}
			wbuf, rbuf := ph%2, (ph+1)%2
			phaseOps := plan.ops[ph]
			x.ParallelFor(p.tasks, func(task int) {
				lo := task * blockWords
				// Lazy invalidation of the read buffer (stable this phase).
				x.InvIfSWcc(buf[rbuf], uint64(4*p.words))
				for _, op := range phaseOps[task] {
					if op.write {
						x.Store(wordAddr(wbuf, op.word), op.val)
					} else {
						_ = x.Load(wordAddr(rbuf, op.word))
					}
				}
				// Eager writeback of the task's block of the write buffer.
				x.FlushIfSWcc(wordAddr(wbuf, lo), uint64(4*blockWords))
			})
		}
	}
}

func checkImage(t *testing.T, label string, m *machine.Machine, buf [2]addr.Addr, plan *fuzzPlan, words int) {
	t.Helper()
	for b := 0; b < 2; b++ {
		for w := 0; w < words; w++ {
			got := m.Store.ReadWord(buf[b] + addr.Addr(4*w))
			if got != plan.golden[b][w] {
				t.Fatalf("%s: buffer %d word %d = %#x, want %#x", label, b, w, got, plan.golden[b][w])
			}
		}
	}
}

func runFuzz(t *testing.T, p fuzzProgram, plan *fuzzPlan, mode config.Mode) {
	t.Helper()
	cfg := config.Scaled(2).WithMode(mode)
	if mode != config.SWcc {
		cfg = cfg.WithDirectory(config.DirInfinite, 0, 0)
	}
	m, err := machine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r, err := New(m, p.workers)
	if err != nil {
		t.Fatal(err)
	}
	buf := [2]addr.Addr{
		r.CohMalloc(uint64(4 * p.words)),
		r.CohMalloc(uint64(4 * p.words)),
	}
	for wk := 0; wk < p.workers; wk++ {
		r.Spawn(wk*2, 1024, fuzzWorker(p, plan, buf, wk, -1, nil))
	}
	if err := m.Simulate(500_000_000); err != nil {
		t.Fatalf("%v: %v", mode, err)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatalf("%v invariants: %v", mode, err)
	}
	m.DrainToMemory()
	checkImage(t, mode.String(), m, buf, plan, p.words)
}

func TestDifferentialFuzzAcrossModes(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			p := fuzzProgram{phases: 6, tasks: 8, words: 256, workers: 6, seed: seed}
			plan := buildPlan(p)
			for _, mode := range []config.Mode{config.SWcc, config.HWcc, config.Cohesion} {
				runFuzz(t, p, plan, mode)
			}
		})
	}
}

// The same random program with the whole data set migrated to HWcc
// halfway through the run: the coherence instructions become no-ops for
// the second half and the image must still match the golden model.
func TestDifferentialFuzzWithMidRunTransition(t *testing.T) {
	p := fuzzProgram{phases: 6, tasks: 8, words: 256, workers: 6, seed: 42}
	plan := buildPlan(p)

	cfg := config.Scaled(2).WithMode(config.Cohesion).WithDirectory(config.DirInfinite, 0, 0)
	m, err := machine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r, err := New(m, p.workers)
	if err != nil {
		t.Fatal(err)
	}
	buf := [2]addr.Addr{
		r.CohMalloc(uint64(4 * p.words)),
		r.CohMalloc(uint64(4 * p.words)),
	}
	migrate := func(x *Ctx) {
		x.CohHWccRegion(buf[0], uint64(4*p.words))
		x.CohHWccRegion(buf[1], uint64(4*p.words))
	}
	for wk := 0; wk < p.workers; wk++ {
		r.Spawn(wk*2, 1024, fuzzWorker(p, plan, buf, wk, p.phases/2, migrate))
	}
	if err := m.Simulate(500_000_000); err != nil {
		t.Fatal(err)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	m.DrainToMemory()
	checkImage(t, "mid-run transition", m, buf, plan, p.words)
	if m.Run.TransitionsToHW == 0 {
		t.Fatal("mid-run migration never happened")
	}
}
