package rt

import (
	"testing"

	"cohesion/internal/addr"
	"cohesion/internal/config"
	"cohesion/internal/machine"
	"cohesion/internal/msg"
)

func newRT(t *testing.T, cfg config.Machine, workers int) *Runtime {
	t.Helper()
	m, err := machine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r, err := New(m, workers)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func runRT(t *testing.T, r *Runtime) {
	t.Helper()
	if err := r.M.Simulate(100_000_000); err != nil {
		t.Fatal(err)
	}
	if err := r.M.CheckInvariants(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
	r.M.DrainToMemory()
}

func cohCfg(clusters int) config.Machine {
	return config.Scaled(clusters).WithMode(config.Cohesion).WithDirectory(config.DirInfinite, 0, 0)
}

func TestTable2APIDomains(t *testing.T) {
	r := newRT(t, cohCfg(2), 1)
	hw := r.Malloc(128)
	sw := r.CohMalloc(128)
	glob := r.GlobalAlloc(128)
	if r.IsSWccDomain(hw) {
		t.Fatal("malloc data must be HWcc")
	}
	if !r.IsSWccDomain(sw) {
		t.Fatal("coh_malloc data must start SWcc")
	}
	if !r.IsSWccDomain(glob) {
		t.Fatal("immutable globals must be coarse SWcc")
	}
	if !r.IsSWccDomain(r.StackOf(0).Base) {
		t.Fatal("stacks must be coarse SWcc")
	}
	r.Free(hw)
	r.CohFree(sw)
	// CohMalloc respects the 64-byte minimum (paper §3.5).
	a := r.CohMalloc(1)
	b := r.CohMalloc(1)
	if b-a < 64 {
		t.Fatalf("incoherent heap granule %d < 64", b-a)
	}
}

func TestModeDomainDefaults(t *testing.T) {
	rSW := newRT(t, config.Scaled(1).WithMode(config.SWcc), 1)
	if !rSW.IsSWccDomain(rSW.Malloc(32)) {
		t.Fatal("SWcc mode: everything is software-managed")
	}
	rHW := newRT(t, config.Scaled(1).WithMode(config.HWcc).WithDirectory(config.DirInfinite, 0, 0), 1)
	if rHW.IsSWccDomain(rHW.CohMalloc(64)) {
		t.Fatal("HWcc mode: nothing is software-managed")
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	r := newRT(t, cohCfg(2), 4)
	flag := r.Malloc(64)
	violations := 0
	for w := 0; w < 4; w++ {
		w := w
		r.Spawn(w*2, 256, func(x *Ctx) {
			// Before the barrier, worker 0 sets the flag; after the
			// barrier everyone must observe it (HWcc data).
			if w == 0 {
				x.Store(flag, 7)
			}
			x.Work(10 * (w + 1)) // skew arrival times
			x.Barrier()
			if x.Load(flag) != 7 {
				violations++
			}
			x.Barrier()
		})
	}
	runRT(t, r)
	if violations != 0 {
		t.Fatalf("%d workers read stale data after barrier", violations)
	}
}

func TestParallelForRunsEachTaskOnce(t *testing.T) {
	r := newRT(t, cohCfg(2), 4)
	out := r.Malloc(4 * 64)
	for w := 0; w < 4; w++ {
		r.Spawn(w*4, 256, func(x *Ctx) {
			x.ParallelFor(64, func(task int) {
				x.AtomicAdd(out+addr.Addr(task*4), 1)
			})
			x.ParallelFor(32, func(task int) {
				x.AtomicAdd(out+addr.Addr(task*4), 100)
			})
		})
	}
	runRT(t, r)
	for i := 0; i < 64; i++ {
		want := uint32(1)
		if i < 32 {
			want = 101
		}
		if got := r.ReadWord(out + addr.Addr(i*4)); got != want {
			t.Fatalf("task %d ran %d times (word=%d)", i, got%100, got)
		}
	}
	if r.M.Run.Messages[msg.Atomic] == 0 {
		t.Fatal("task queue produced no atomic traffic")
	}
}

func TestFlushInvHelpersRespectDomain(t *testing.T) {
	r := newRT(t, cohCfg(1), 1)
	sw := r.CohMalloc(256)
	hw := r.Malloc(256)
	r.Spawn(0, 256, func(x *Ctx) {
		for i := 0; i < 8; i++ {
			x.Store(sw+addr.Addr(i*32), 1)
			x.Store(hw+addr.Addr(i*32), 1)
		}
		x.FlushIfSWcc(sw, 256) // issues 8 flushes
		x.FlushIfSWcc(hw, 256) // no-op: HWcc domain
		x.InvIfSWcc(hw, 256)   // no-op
	})
	runRT(t, r)
	if got := r.M.Run.WBIssued; got != 8 {
		t.Fatalf("WBIssued = %d, want 8", got)
	}
	if r.M.Run.InvIssued != 0 {
		t.Fatal("invalidates issued for HWcc data")
	}
}

func TestCohRegionTransitionsRoundTrip(t *testing.T) {
	r := newRT(t, cohCfg(2), 1)
	data := r.CohMalloc(256) // 8 lines, SWcc
	r.Spawn(0, 256, func(x *Ctx) {
		for i := 0; i < 8; i++ {
			x.Store(data+addr.Addr(i*32), uint32(i+1)) // dirty SWcc
		}
		x.CohHWccRegion(data, 256) // captures all 8 lines
		if v := x.Load(data + 32); v != 2 {
			t.Errorf("post-capture load = %d", v)
		}
		x.CohSWccRegion(data, 256) // back to SWcc
	})
	runRT(t, r)
	if r.M.Run.TransitionsToHW != 8 || r.M.Run.TransitionsToSW != 8 {
		t.Fatalf("transitions toHW=%d toSW=%d, want 8/8", r.M.Run.TransitionsToHW, r.M.Run.TransitionsToSW)
	}
	if !r.IsSWccDomain(data) {
		t.Fatal("region did not return to SWcc")
	}
	for i := 0; i < 8; i++ {
		if got := r.ReadWord(data + addr.Addr(i*32)); got != uint32(i+1) {
			t.Fatalf("word %d = %d after round trip", i, got)
		}
	}
}

func TestCohRegionNoopOutsideCohesion(t *testing.T) {
	r := newRT(t, config.Scaled(1).WithMode(config.SWcc), 1)
	data := r.CohMalloc(128)
	r.Spawn(0, 256, func(x *Ctx) {
		x.Store(data, 5)
		x.CohHWccRegion(data, 128) // must be a no-op, not a table write
	})
	runRT(t, r)
	if r.M.Run.TransitionsToHW != 0 {
		t.Fatal("transition ran outside Cohesion mode")
	}
}

func TestStackScratch(t *testing.T) {
	r := newRT(t, cohCfg(1), 1)
	var sum uint32
	r.Spawn(0, 256, func(x *Ctx) {
		s := x.StackAlloc(16)
		for i := 0; i < 16; i++ {
			x.Store(s+addr.Addr(i*4), uint32(i))
		}
		for i := 0; i < 16; i++ {
			sum += x.Load(s + addr.Addr(i*4))
		}
		x.FrameReset()
		s2 := x.StackAlloc(16)
		if s2 != s {
			t.Error("FrameReset did not pop")
		}
	})
	runRT(t, r)
	if sum != 120 {
		t.Fatalf("stack sum = %d, want 120", sum)
	}
}

func TestStackOverflowPanicsInProgram(t *testing.T) {
	r := newRT(t, cohCfg(1), 1)
	recovered := false
	r.Spawn(0, 256, func(x *Ctx) {
		defer func() {
			if recover() != nil {
				recovered = true
			}
		}()
		x.StackAlloc(1 << 20)
	})
	runRT(t, r)
	if !recovered {
		t.Fatal("stack overflow not detected")
	}
}

func TestFloat32Views(t *testing.T) {
	r := newRT(t, cohCfg(1), 1)
	a := r.Malloc(64)
	r.WriteF32(a, 3.25)
	var got float32
	r.Spawn(0, 256, func(x *Ctx) {
		got = x.LoadF32(a)
		x.StoreF32(a+4, got*2)
	})
	runRT(t, r)
	if got != 3.25 || r.ReadF32(a+4) != 6.5 {
		t.Fatalf("float views wrong: %v %v", got, r.ReadF32(a+4))
	}
}

func TestNewRejectsBadWorkerCount(t *testing.T) {
	m, err := machine.New(cohCfg(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(m, 0); err == nil {
		t.Fatal("0 workers accepted")
	}
	if _, err := New(m, 9); err == nil {
		t.Fatal("too many workers accepted")
	}
}

func TestPhaseMarksRecorded(t *testing.T) {
	r := newRT(t, cohCfg(2), 4)
	for w := 0; w < 4; w++ {
		r.Spawn(w*2, 256, func(x *Ctx) {
			x.ParallelFor(8, func(task int) { x.Work(10) })
			x.ParallelFor(8, func(task int) { x.Work(10) })
			x.Barrier()
		})
	}
	runRT(t, r)
	marks := r.M.Run.PhaseMarks
	if len(marks) != 3 { // two ParallelFor barriers + one explicit
		t.Fatalf("phase marks = %d, want 3", len(marks))
	}
	for i := 1; i < len(marks); i++ {
		if marks[i].Cycle <= marks[i-1].Cycle {
			t.Fatal("phase marks not increasing")
		}
		if marks[i].Messages < marks[i-1].Messages {
			t.Fatal("cumulative messages decreased")
		}
	}
}

func TestTimelineSampled(t *testing.T) {
	r := newRT(t, cohCfg(1), 1)
	d := r.Malloc(4096)
	r.Spawn(0, 256, func(x *Ctx) {
		for i := 0; i < 200; i++ {
			x.Store(d+addr.Addr(i*4%4096), uint32(i))
			x.Work(40)
		}
	})
	runRT(t, r)
	tl := r.M.Run.Timeline
	if len(tl) == 0 {
		t.Fatal("no timeline samples")
	}
	for i := 1; i < len(tl); i++ {
		if tl[i].Cycle <= tl[i-1].Cycle || tl[i].Messages < tl[i-1].Messages {
			t.Fatal("timeline not monotone")
		}
	}
}

func TestPartitionsAreDisjointAndIndependent(t *testing.T) {
	m, err := machine.New(cohCfg(2))
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewPartition(m, 2, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewPartition(m, 2, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Heap spans must not overlap.
	for _, pair := range [][2]*Heap{{a.Heap, b.Heap}, {a.CohHeap, b.CohHeap}, {a.Globals, b.Globals}} {
		if pair[0].Span().Overlaps(pair[1].Span()) {
			t.Fatalf("partition heaps overlap: %v vs %v", pair[0].Span(), pair[1].Span())
		}
	}
	// Each partition runs its own task loop with a private barrier; both
	// must complete with their own counters intact.
	outA := a.Malloc(64)
	outB := b.Malloc(64)
	for w := 0; w < 2; w++ {
		a.Spawn(w, 256, func(x *Ctx) { // cluster 0
			x.ParallelFor(10, func(task int) { x.AtomicAdd(outA, 1) })
		})
		b.Spawn(8+w, 256, func(x *Ctx) { // cluster 1
			x.ParallelFor(20, func(task int) { x.AtomicAdd(outB, 1) })
			x.Barrier()
		})
	}
	if err := m.Simulate(100_000_000); err != nil {
		t.Fatal(err)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if got := m.Store.ReadWord(outA); got != 10 {
		t.Fatalf("partition A counter = %d, want 10", got)
	}
	if got := m.Store.ReadWord(outB); got != 20 {
		t.Fatalf("partition B counter = %d, want 20", got)
	}
}

func TestPartitionRejectsBadSlots(t *testing.T) {
	m, err := machine.New(cohCfg(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewPartition(m, 1, 2, 2); err == nil {
		t.Fatal("slot >= nslots accepted")
	}
	if _, err := NewPartition(m, 1, -1, 2); err == nil {
		t.Fatal("negative slot accepted")
	}
	if _, err := NewPartition(m, 1, 0, 0); err == nil {
		t.Fatal("zero slots accepted")
	}
}

func TestParallelForDistributedRunsEachTaskOnce(t *testing.T) {
	r := newRT(t, cohCfg(2), 5) // odd worker count: uneven ranges
	out := r.Malloc(4 * 97)
	for w := 0; w < 5; w++ {
		r.Spawn(w*3, 256, func(x *Ctx) {
			x.ParallelForDistributed(97, func(task int) {
				x.AtomicAdd(out+addr.Addr(task*4), 1)
			})
			// A second phase with a different size reuses fresh counters.
			x.ParallelForDistributed(13, func(task int) {
				x.AtomicAdd(out+addr.Addr(task*4), 100)
			})
		})
	}
	runRT(t, r)
	for i := 0; i < 97; i++ {
		want := uint32(1)
		if i < 13 {
			want = 101
		}
		if got := r.ReadWord(out + addr.Addr(i*4)); got != want {
			t.Fatalf("task %d count = %d, want %d", i, got, want)
		}
	}
}

func TestParallelForDistributedHarvestsImbalance(t *testing.T) {
	// All the work is "owned" by whichever workers' ranges cover it, but a
	// skewed body (task 0..9 heavy) forces others to harvest; everything
	// must still run exactly once.
	r := newRT(t, cohCfg(2), 4)
	out := r.Malloc(4 * 32)
	for w := 0; w < 4; w++ {
		r.Spawn(w*4, 256, func(x *Ctx) {
			x.ParallelForDistributed(32, func(task int) {
				if task < 8 {
					x.Work(2000) // heavy head
				}
				x.AtomicAdd(out+addr.Addr(task*4), 1)
			})
		})
	}
	runRT(t, r)
	for i := 0; i < 32; i++ {
		if got := r.ReadWord(out + addr.Addr(i*4)); got != 1 {
			t.Fatalf("task %d ran %d times", i, got)
		}
	}
}
