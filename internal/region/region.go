// Package region implements Cohesion's two region-tracking structures
// (paper §3.4, Figure 5):
//
//   - The coarse-grain region table: a small on-die structure holding a
//     handful of address ranges that are permanently in the SWcc domain —
//     code, per-core stacks, and immutable global data. It is consulted in
//     parallel with the directory on every L3 access.
//   - The fine-grain region table: an in-memory bitmap with one bit per
//     32-byte line (16 MB for a 4 GB space) that marks which lines are in
//     the SWcc domain. The bitmap lives at addr.TableBase, strided across
//     the L3 banks so that the table slice describing a line is homed at
//     the same bank as the line itself; the runtime toggles bits with
//     uncached atomics and the directory snoops those writes.
//
// The paper adds a hybrid.tbloff instruction to compute the bank-local
// table offset so software stays microarchitecture-agnostic; TblWordAddr
// is that instruction.
package region

import (
	"fmt"

	"cohesion/internal/addr"
	"cohesion/internal/dram"
)

// CoarseTable is the on-die SWcc range table. Lookups are over a few
// entries only (three in the paper: code, stacks, immutable globals).
type CoarseTable struct {
	ranges []addr.Range
}

// Add registers a range as permanently software-coherent. Overlapping an
// existing range is rejected: the runtime sets these up once at load time.
func (t *CoarseTable) Add(r addr.Range) error {
	if r.Size == 0 {
		return fmt.Errorf("region: empty coarse range %v", r)
	}
	for _, have := range t.ranges {
		if have.Overlaps(r) {
			return fmt.Errorf("region: coarse range %v overlaps %v", r, have)
		}
	}
	t.ranges = append(t.ranges, r)
	return nil
}

// Contains reports whether a falls in any registered SWcc range.
func (t *CoarseTable) Contains(a addr.Addr) bool {
	for _, r := range t.ranges {
		if r.Contains(a) {
			return true
		}
	}
	return false
}

// Len reports the number of registered ranges.
func (t *CoarseTable) Len() int { return len(t.ranges) }

// Ranges returns a copy of the registered ranges in registration order
// (the checkpoint layer serializes and digests them).
func (t *CoarseTable) Ranges() []addr.Range {
	return append([]addr.Range(nil), t.ranges...)
}

// bankShift is the low bit of the bank-select field in a byte address:
// addr[10..0] stay within one bank row (the paper's DRAM-row stride), and
// the next log2(banks) bits pick the L3 bank.
const bankShift = 11

// BankOf maps a byte address to its home L3 bank. banks must be a power
// of two.
func BankOf(a addr.Addr, banks int) int {
	return int((uint64(a) >> bankShift) & uint64(banks-1))
}

// HomeBankOfLine maps a line to its home L3 bank.
func HomeBankOfLine(l addr.Line, banks int) int {
	return BankOf(l.Base(), banks)
}

// TblWordAddr is the hybrid.tbloff instruction: it returns the word-aligned
// address of the fine-grain-table word holding the bit for target address
// a, in a machine with the given L3 bank count (power of two).
//
// The permutation keeps the table word in the same L3 bank as a itself, so
// a bank never queries another bank on a table lookup, and is a bijection
// from line numbers to (word, bit) pairs. Bits a[9..5] select the bit
// within the 32-bit word, as in the paper's footnote.
func TblWordAddr(a addr.Addr, banks int) addr.Addr {
	k := uint(0)
	for 1<<k < banks {
		k++
	}
	v := uint64(a)
	bit := func(lo, n uint) uint64 { return (v >> lo) & (1<<n - 1) }

	// Byte offset bits (24 total for the 16 MB table):
	//   off[1:0]        = a[9:8]    (word-internal byte, conceptually)
	//   off[2]          = a[10]
	//   off[10+k:11]    = a[10+k:11] (bank bits, preserved in place)
	//   off[3:10]       = a[18+k:11+k]
	//   off[23:11+k]    = a[31:19+k]
	off := bit(8, 3) // a[10..8] -> off[2..0]
	off |= bit(11+k, 8) << 3
	off |= bit(11, k) << 11
	off |= bit(19+k, 13-k) << (11 + k)
	return addr.TableBase + addr.Addr(off&^3)
}

// TblBitIndex returns the bit position (0..31) of address a's line within
// its table word: a[9..5].
func TblBitIndex(a addr.Addr) uint { return uint(a>>5) & 31 }

// InvTblAddr inverts TblWordAddr/TblBitIndex: given the word-aligned table
// address and a bit index within that word, it returns the line whose
// domain that bit tracks. The directory uses this to decode which lines a
// snooped table write transitions (paper §3.6).
func InvTblAddr(wordAddr addr.Addr, bit uint, banks int) addr.Line {
	k := uint(0)
	for 1<<k < banks {
		k++
	}
	off := uint64(wordAddr - addr.TableBase)
	field := func(lo, n uint) uint64 { return (off >> lo) & (1<<n - 1) }

	var a uint64
	a |= uint64(bit&31) << 5     // a[9..5]
	a |= field(2, 1) << 10       // a[10]
	a |= field(11, k) << 11      // bank bits a[10+k..11]
	a |= field(3, 8) << (11 + k) // a[18+k..11+k]
	a |= field(11+k, 13-k) << (19 + k)
	return addr.LineOf(addr.Addr(a))
}

// FineTable provides typed access to the fine-grain bitmap stored in
// memory. A set bit means the line is in the SWcc domain; the default
// (zeroed memory) keeps everything hardware-coherent, matching the
// paper's "default behavior for Cohesion is to keep all of memory
// coherent in the HWcc domain".
type FineTable struct {
	store *dram.Store
	banks int

	// gen counts table mutations; lookup caches layered over the table
	// (Cache) compare it against their fill generation and drop all
	// entries when it moves. Host-side writers bump it via Set/Clear/
	// SetRange; the directory bumps it explicitly (Invalidate) when a
	// snooped in-simulation table write changes bits.
	gen uint64
}

// NewFineTable wraps the backing store for a machine with the given L3
// bank count.
func NewFineTable(store *dram.Store, banks int) *FineTable {
	if banks < 1 || banks&(banks-1) != 0 {
		panic("region: bank count must be a power of two")
	}
	return &FineTable{store: store, banks: banks}
}

// IsSWcc reports whether the line containing a is marked software-coherent.
func (t *FineTable) IsSWcc(a addr.Addr) bool {
	w := t.store.ReadWord(TblWordAddr(a, t.banks))
	return w&(1<<TblBitIndex(a)) != 0
}

// Set marks the line containing a as SWcc, returning the table word
// address that was modified (the runtime issues its atomic there).
func (t *FineTable) Set(a addr.Addr) addr.Addr {
	wa := TblWordAddr(a, t.banks)
	t.store.WriteWord(wa, t.store.ReadWord(wa)|1<<TblBitIndex(a))
	t.gen++
	return wa
}

// Clear marks the line containing a as HWcc.
func (t *FineTable) Clear(a addr.Addr) addr.Addr {
	wa := TblWordAddr(a, t.banks)
	t.store.WriteWord(wa, t.store.ReadWord(wa)&^(1<<TblBitIndex(a)))
	t.gen++
	return wa
}

// Gen reports the table's mutation generation.
func (t *FineTable) Gen() uint64 { return t.gen }

// Invalidate records an out-of-band table mutation (a snooped atomic that
// the directory wrote through the backing store directly), dropping every
// Cache layered over this table.
func (t *FineTable) Invalidate() { t.gen++ }

// SetRange bulk-marks every line of [r.Base, r.End()) as SWcc. One table
// word covers a contiguous, 1 KB-aligned block of the address space
// (bits a[9..5] select the bit within the word), so interior blocks are
// written a word at a time; ragged edges fall back to per-line sets. Used
// by load-time runtime initialization, outside simulated time.
func (t *FineTable) SetRange(r addr.Range) {
	a := addr.LineAlign(r.Base)
	end := addr.LineAlignUp(r.End())
	const block = 1 << 10
	for a < end {
		if a%block == 0 && a+block <= end {
			t.store.WriteWord(TblWordAddr(a, t.banks), ^uint32(0))
			a += block
			continue
		}
		t.Set(a)
		a += addr.LineBytes
	}
	t.gen++
}

// InTableRange reports whether a falls inside the table's own storage;
// the directory snoops writes in this range (paper §3.6).
func InTableRange(a addr.Addr) bool {
	return a >= addr.TableBase && a < addr.TableBase+addr.TableBytes
}

// cacheEntries and cacheBlockBytes size the per-cluster fine-table lookup
// cache: one entry caches the table word covering one 1 KB-aligned block
// of the address space (32 lines — bits a[9..5] select the bit within the
// word, so TblWordAddr is constant over the block).
const (
	cacheEntries    = 64
	cacheBlockBytes = 1 << 10
)

// Cache is a small direct-mapped, host-side lookup cache over a FineTable,
// one per cluster. Kernels consult the fine-grain table on the hot path
// (FlushIfSWcc / InvIfSWcc decide per structure whether software coherence
// instructions are needed); the cache answers repeat lookups within a 1 KB
// block without re-deriving the table-word permutation or touching the
// backing store. It is a pure host-structure: fills and hits charge no
// simulated cycles, so timing and fingerprints are unchanged.
//
// Coherence: every entry is tagged with the FineTable generation observed
// at fill time. Any table mutation — host-side Set/Clear/SetRange or a
// directory-snooped in-simulation table write (domain transition) — bumps
// the generation, and the next lookup drops the whole cache. Consistency
// of live entries is asserted at quiescence by machine.CheckInvariants
// via Check.
type Cache struct {
	fine *FineTable
	gen  uint64

	// Hits and Misses count lookups answered from / filled into the
	// cache since construction (observability for tests and reports).
	Hits, Misses uint64

	tags  [cacheEntries]addr.Addr // block base | 1; 0 = empty
	words [cacheEntries]uint32
}

// NewCache builds an empty lookup cache over fine.
func NewCache(fine *FineTable) *Cache { return &Cache{fine: fine} }

// IsSWcc reports whether the line containing a is marked software-coherent,
// filling the cache on a miss.
func (c *Cache) IsSWcc(a addr.Addr) bool {
	if g := c.fine.gen; g != c.gen {
		c.tags = [cacheEntries]addr.Addr{}
		c.gen = g
	}
	block := a &^ (cacheBlockBytes - 1)
	idx := (uint64(a) / cacheBlockBytes) % cacheEntries
	if c.tags[idx] == block|1 {
		c.Hits++
	} else {
		c.words[idx] = c.fine.store.ReadWord(TblWordAddr(a, c.fine.banks))
		c.tags[idx] = block | 1
		c.Misses++
	}
	return c.words[idx]&(1<<TblBitIndex(a)) != 0
}

// Check verifies every live entry against the backing table. A cache whose
// generation is behind the table's holds no live entries (they are dropped
// wholesale on the next lookup) and passes vacuously.
func (c *Cache) Check() error {
	if c.gen != c.fine.gen {
		return nil
	}
	for i, tag := range c.tags {
		if tag == 0 {
			continue
		}
		base := tag &^ 1
		if want := c.fine.store.ReadWord(TblWordAddr(base, c.fine.banks)); c.words[i] != want {
			return fmt.Errorf("region: cache entry %d (block %#x) holds %#x, table says %#x",
				i, uint64(base), c.words[i], want)
		}
	}
	return nil
}
