package region

import (
	"math/rand"
	"testing"

	"cohesion/internal/addr"
	"cohesion/internal/dram"
)

// TestCacheMatchesTable drives random lookups interleaved with random
// mutations and requires the cached answer to equal an uncached table read
// every time, with Check passing throughout.
func TestCacheMatchesTable(t *testing.T) {
	ft := NewFineTable(dram.NewStore(), 4)
	c := NewCache(ft)
	rng := rand.New(rand.NewSource(7))
	span := uint64(1 << 20)
	randAddr := func() addr.Addr {
		return addr.CohHeapBase + addr.Addr(rng.Uint64()%span)
	}
	for i := 0; i < 20000; i++ {
		switch rng.Intn(10) {
		case 0:
			ft.Set(randAddr())
		case 1:
			ft.Clear(randAddr())
		case 2:
			base := randAddr() &^ (addr.LineBytes - 1)
			ft.SetRange(addr.Range{Base: base, Size: uint64(rng.Intn(4096) + 1)})
		default:
			a := randAddr()
			if got, want := c.IsSWcc(a), ft.IsSWcc(a); got != want {
				t.Fatalf("lookup %d: cache says %v, table says %v for %#x", i, got, want, uint64(a))
			}
		}
		if err := c.Check(); err != nil {
			t.Fatalf("lookup %d: %v", i, err)
		}
	}
	if c.Hits == 0 || c.Misses == 0 {
		t.Fatalf("degenerate traffic: %d hits, %d misses", c.Hits, c.Misses)
	}
}

// TestCacheInvalidate covers the directory's out-of-band path: a snooped
// table write mutates the store directly, then Invalidate must drop the
// stale entry.
func TestCacheInvalidate(t *testing.T) {
	store := dram.NewStore()
	ft := NewFineTable(store, 4)
	c := NewCache(ft)
	a := addr.CohHeapBase + 0x400
	if c.IsSWcc(a) {
		t.Fatal("line SWcc before any set")
	}
	// Write the table word behind the cache's back, as the home bank does
	// when it applies a snooped atomic.
	wa := TblWordAddr(a, 4)
	store.WriteWord(wa, store.ReadWord(wa)|1<<TblBitIndex(a))
	if c.IsSWcc(a) {
		t.Fatal("cache observed an unannounced write") // still caching the old word
	}
	ft.Invalidate()
	if !c.IsSWcc(a) {
		t.Fatal("cache survived Invalidate")
	}
	if err := c.Check(); err != nil {
		t.Fatal(err)
	}
}

// TestCacheCheckDetectsCorruption corrupts a live entry and requires Check
// to fail — the quiescence invariant CheckInvariants relies on.
func TestCacheCheckDetectsCorruption(t *testing.T) {
	ft := NewFineTable(dram.NewStore(), 4)
	c := NewCache(ft)
	a := addr.CohHeapBase + 0x1234
	ft.Set(a)
	if !c.IsSWcc(a) {
		t.Fatal("set line not SWcc")
	}
	for i := range c.tags {
		if c.tags[i] != 0 {
			c.words[i] ^= 1 << 31
		}
	}
	if err := c.Check(); err == nil {
		t.Fatal("Check accepted a corrupted entry")
	}
}

// TestCacheHitSharing verifies the block granularity: lines within one
// 1 KB block share an entry, so 32 sequential line lookups cost one miss.
func TestCacheHitSharing(t *testing.T) {
	ft := NewFineTable(dram.NewStore(), 4)
	ft.SetRange(addr.Range{Base: addr.CohHeapBase, Size: 1 << 10})
	c := NewCache(ft)
	for off := addr.Addr(0); off < 1<<10; off += addr.LineBytes {
		if !c.IsSWcc(addr.CohHeapBase + off) {
			t.Fatalf("offset %#x not SWcc", uint64(off))
		}
	}
	if c.Misses != 1 || c.Hits != 31 {
		t.Fatalf("expected 1 miss + 31 hits, got %d misses, %d hits", c.Misses, c.Hits)
	}
}
