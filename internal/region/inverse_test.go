package region

import (
	"testing"
	"testing/quick"

	"cohesion/internal/addr"
)

// Property: InvTblAddr is the exact inverse of (TblWordAddr, TblBitIndex)
// for every bank count used by the simulator.
func TestQuickInverseRoundTrip(t *testing.T) {
	f := func(raw uint32, banksel uint8) bool {
		banks := 1 << (banksel % 6) // 1..32
		a := addr.LineAlign(addr.Addr(raw))
		wa := TblWordAddr(a, banks)
		bit := TblBitIndex(a)
		return InvTblAddr(wa, bit, banks) == addr.LineOf(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestInverseKnownValues(t *testing.T) {
	for _, banks := range []int{1, 8, 32} {
		for _, a := range []addr.Addr{0, 0x20, addr.CohHeapBase, addr.StackBase + 0x40, 0x7fff_ffe0} {
			wa, bit := TblWordAddr(a, banks), TblBitIndex(a)
			if got := InvTblAddr(wa, bit, banks); got != addr.LineOf(a) {
				t.Fatalf("banks=%d a=%#x: inverse = %#x, want %#x",
					banks, uint64(a), uint64(got.Base()), uint64(addr.LineAlign(a)))
			}
		}
	}
}
