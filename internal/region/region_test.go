package region

import (
	"testing"
	"testing/quick"

	"cohesion/internal/addr"
	"cohesion/internal/dram"
)

func TestCoarseTable(t *testing.T) {
	var ct CoarseTable
	if ct.Contains(0x1000) {
		t.Fatal("empty table contains")
	}
	if err := ct.Add(addr.Range{Base: 0x1000, Size: 0x1000}); err != nil {
		t.Fatal(err)
	}
	if err := ct.Add(addr.Range{Base: addr.StackBase, Size: 0x4000}); err != nil {
		t.Fatal(err)
	}
	if ct.Len() != 2 {
		t.Fatalf("Len = %d", ct.Len())
	}
	if !ct.Contains(0x1000) || !ct.Contains(0x1fff) || ct.Contains(0x2000) {
		t.Fatal("coarse containment wrong")
	}
	if !ct.Contains(addr.StackBase + 100) {
		t.Fatal("stack range missing")
	}
	if err := ct.Add(addr.Range{Base: 0x1800, Size: 16}); err == nil {
		t.Fatal("overlap accepted")
	}
	if err := ct.Add(addr.Range{Base: 0x9000, Size: 0}); err == nil {
		t.Fatal("empty range accepted")
	}
}

func TestBankOf(t *testing.T) {
	if BankOf(0, 32) != 0 {
		t.Fatal("bank of 0")
	}
	if BankOf(1<<11, 32) != 1 || BankOf(2<<11, 32) != 2 || BankOf(32<<11, 32) != 0 {
		t.Fatal("bank striding wrong")
	}
	// Addresses within one 2KB row share a bank.
	if BankOf(0x1234, 32) != BankOf(0x1000, 32) {
		t.Fatal("row locality broken")
	}
	if HomeBankOfLine(addr.LineOf(3<<11), 8) != 3 {
		t.Fatal("HomeBankOfLine wrong")
	}
}

func TestTblWordAddrBankLocality(t *testing.T) {
	// The table word for any address must live in the same L3 bank as the
	// address itself, for every bank count.
	for _, banks := range []int{1, 2, 4, 8, 16, 32} {
		for _, a := range []addr.Addr{0, 0x1000, 0x12345678, 0x7fffffe0, 0xdeadbee0, 0x4000_0040} {
			wa := TblWordAddr(a, banks)
			if !InTableRange(wa) {
				t.Fatalf("banks=%d a=%#x: table addr %#x outside table", banks, uint64(a), uint64(wa))
			}
			if wa&3 != 0 {
				t.Fatalf("table addr %#x not word aligned", uint64(wa))
			}
			if BankOf(wa, banks) != BankOf(a, banks) {
				t.Fatalf("banks=%d a=%#x bank %d but table addr %#x bank %d",
					banks, uint64(a), BankOf(a, banks), uint64(wa), BankOf(wa, banks))
			}
		}
	}
}

// Property: (word address, bit index) is injective over lines — no two
// distinct lines share a table bit.
func TestQuickTblBijective(t *testing.T) {
	f := func(x, y uint32, banksel uint8) bool {
		banks := 1 << (banksel % 6)
		a, b := addr.LineAlign(addr.Addr(x)), addr.LineAlign(addr.Addr(y))
		if a == b {
			return true
		}
		wa, ba := TblWordAddr(a, banks), TblBitIndex(a)
		wb, bb := TblWordAddr(b, banks), TblBitIndex(b)
		return wa != wb || ba != bb
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

// Property: all addresses within one line map to the same table bit.
func TestQuickTblLineGranularity(t *testing.T) {
	f := func(x uint32, off uint8) bool {
		a := addr.LineAlign(addr.Addr(x))
		b := a + addr.Addr(off%addr.LineBytes)
		return TblWordAddr(a, 8) == TblWordAddr(b, 8) && TblBitIndex(a) == TblBitIndex(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFineTable(t *testing.T) {
	store := dram.NewStore()
	ft := NewFineTable(store, 8)
	a := addr.Addr(0x4000_0040)
	if ft.IsSWcc(a) {
		t.Fatal("default must be HWcc (bit clear)")
	}
	wa := ft.Set(a)
	if !ft.IsSWcc(a) {
		t.Fatal("Set did not take")
	}
	if !InTableRange(wa) {
		t.Fatal("Set returned non-table address")
	}
	// Neighboring line unaffected.
	if ft.IsSWcc(a + addr.LineBytes) {
		t.Fatal("neighbor bit set")
	}
	// Same line, different word: still SWcc.
	if !ft.IsSWcc(a + 4) {
		t.Fatal("line granularity broken")
	}
	ft.Clear(a)
	if ft.IsSWcc(a) {
		t.Fatal("Clear did not take")
	}
}

func TestFineTableManyLines(t *testing.T) {
	store := dram.NewStore()
	ft := NewFineTable(store, 32)
	// Set a dense run of lines and verify exactly those are SWcc.
	base := addr.Addr(0x4000_0000)
	for i := 0; i < 256; i++ {
		ft.Set(base + addr.Addr(i*addr.LineBytes))
	}
	for i := 0; i < 512; i++ {
		a := base + addr.Addr(i*addr.LineBytes)
		if ft.IsSWcc(a) != (i < 256) {
			t.Fatalf("line %d: IsSWcc = %v", i, ft.IsSWcc(a))
		}
	}
}

func TestNewFineTableBadBanks(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-power-of-two banks accepted")
		}
	}()
	NewFineTable(dram.NewStore(), 3)
}

func TestInTableRange(t *testing.T) {
	if InTableRange(addr.TableBase-1) || !InTableRange(addr.TableBase) ||
		!InTableRange(addr.TableBase+addr.TableBytes-1) || InTableRange(addr.TableBase+addr.TableBytes) {
		t.Fatal("table range boundaries wrong")
	}
}

func TestSetRangeMatchesPerLineSet(t *testing.T) {
	// Bulk SetRange must mark exactly the same bits as per-line Set, for
	// ragged and aligned ranges alike.
	cases := []addr.Range{
		{Base: addr.CohHeapBase, Size: 4096},       // block-aligned
		{Base: addr.CohHeapBase + 96, Size: 3000},  // ragged both ends
		{Base: addr.CohHeapBase + 0x3e0, Size: 64}, // straddles a block edge
		{Base: addr.CohHeapBase + 1, Size: 33},     // unaligned base/size
	}
	for _, r := range cases {
		bulk := NewFineTable(dram.NewStore(), 8)
		bulk.SetRange(r)
		ref := NewFineTable(dram.NewStore(), 8)
		for _, l := range addr.LinesCovering(r.Base, r.Size) {
			ref.Set(l.Base())
		}
		lo := addr.LineAlign(r.Base) - 2048
		hi := addr.LineAlignUp(r.End()) + 2048
		for a := lo; a < hi; a += addr.LineBytes {
			if bulk.IsSWcc(a) != ref.IsSWcc(a) {
				t.Fatalf("range %v: mismatch at %#x (bulk=%v)", r, uint64(a), bulk.IsSWcc(a))
			}
		}
	}
}
