package region

import (
	"testing"

	"cohesion/internal/addr"
	"cohesion/internal/dram"
)

// The tbloff hash runs on every Cohesion directory miss; its host cost
// matters for simulation throughput.

func BenchmarkTblWordAddr(b *testing.B) {
	b.ReportAllocs()
	var sink addr.Addr
	for i := 0; i < b.N; i++ {
		sink = TblWordAddr(addr.Addr(i)<<5, 32)
	}
	_ = sink
}

func BenchmarkInvTblAddr(b *testing.B) {
	wa := TblWordAddr(addr.CohHeapBase, 32)
	b.ReportAllocs()
	var sink addr.Line
	for i := 0; i < b.N; i++ {
		sink = InvTblAddr(wa, uint(i&31), 32)
	}
	_ = sink
}

func BenchmarkFineTableIsSWcc(b *testing.B) {
	ft := NewFineTable(dram.NewStore(), 32)
	ft.SetRange(addr.Range{Base: addr.CohHeapBase, Size: 1 << 20})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ft.IsSWcc(addr.CohHeapBase + addr.Addr((i<<5)&0xfffff))
	}
}
