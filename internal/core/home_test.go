package core

import (
	"testing"

	"cohesion/internal/addr"
	"cohesion/internal/config"
	"cohesion/internal/directory"
	"cohesion/internal/dram"
	"cohesion/internal/event"
	"cohesion/internal/msg"
	"cohesion/internal/region"
	"cohesion/internal/stats"
)

// harness drives one Home directly, with probes intercepted so tests can
// inspect them and reply at chosen times — the races the protocol must
// tolerate are reproduced exactly.
type harness struct {
	t     *testing.T
	q     *event.Queue
	run   *stats.Run
	store *dram.Store
	home  *Home
	cfg   config.Machine

	probes []*probeRec
	auto   func(p msg.Probe, cluster int) *msg.ProbeReply // nil = manual
}

type probeRec struct {
	cluster int
	probe   msg.Probe
	reply   func(msg.ProbeReply)
	replied bool
}

// respBox captures a response to an injected request.
type respBox struct {
	done bool
	resp msg.Resp
}

func newHarness(t *testing.T, mode config.Mode, kind config.DirKind, entries, assoc, clusters int) *harness {
	t.Helper()
	cfg := config.Scaled(clusters)
	cfg.Clusters = clusters
	cfg.L3Banks = 1
	cfg.DRAMChannels = 1
	cfg.L3Size = 32 << 10
	cfg.Mode = mode
	cfg.Directory = kind
	cfg.DirEntriesPerBank = entries
	cfg.DirAssoc = assoc

	h := &harness{
		t:     t,
		q:     &event.Queue{},
		run:   &stats.Run{},
		store: dram.NewStore(),
		cfg:   cfg,
	}
	mem := dram.NewController(h.q, h.run, 1, 1, cfg.DRAMLatency, cfg.DRAMCyclesPerLine)
	var dir directory.Directory
	switch kind {
	case config.DirInfinite:
		dir = directory.NewInfinite()
	case config.DirSparse:
		dir = directory.NewSparse(entries, assoc, false)
	case config.DirLimited4B:
		dir = directory.NewSparse(entries, assoc, true)
	}
	var coarse *region.CoarseTable
	var fine *region.FineTable
	if mode == config.Cohesion {
		coarse = &region.CoarseTable{}
		fine = region.NewFineTable(h.store, 1)
	}
	probe := func(cluster int, p msg.Probe, onReply func(msg.ProbeReply)) {
		rec := &probeRec{cluster: cluster, probe: p}
		rec.reply = func(rep msg.ProbeReply) {
			if rec.replied {
				t.Fatalf("double reply to probe %v", p)
			}
			rec.replied = true
			rep.Cluster = cluster
			rep.Line = p.Line
			onReply(rep)
		}
		h.probes = append(h.probes, rec)
		if h.auto != nil {
			if rep := h.auto(p, cluster); rep != nil {
				h.q.After(2, func() { rec.reply(*rep) })
			}
		}
	}
	h.home = NewHome(0, cfg, h.q, h.run, h.store, mem, dir, coarse, fine, probe, nil)
	return h
}

func (h *harness) send(req msg.Req) *respBox {
	box := &respBox{}
	h.home.HandleReq(req, func(r msg.Resp) {
		if box.done {
			h.t.Fatal("double response")
		}
		box.done = true
		box.resp = r
	})
	return box
}

// sendNoReply injects a fire-and-forget message (evictions, releases).
func (h *harness) sendNoReply(req msg.Req) {
	h.home.HandleReq(req, nil)
}

func (h *harness) runAll() { h.q.Run(0) }

// runFor advances bounded simulated time; used when a retry loop keeps the
// queue non-empty until the test intervenes.
func (h *harness) runFor(cycles event.Cycle) { h.q.RunUntil(h.q.Now() + cycles) }

func (h *harness) dir() directory.Directory { return h.home.Directory() }

func rd(cluster int, line addr.Line) msg.Req {
	return msg.Req{Kind: msg.ReqRead, Cluster: cluster, Line: line}
}
func wr(cluster int, line addr.Line) msg.Req {
	return msg.Req{Kind: msg.ReqWrite, Cluster: cluster, Line: line}
}

const testLine = addr.Line(0x1000000)

func TestHomeReadAllocatesShared(t *testing.T) {
	h := newHarness(t, config.HWcc, config.DirInfinite, 0, 0, 2)
	h.store.WriteWord(testLine.Base(), 42)
	box := h.send(rd(0, testLine))
	h.runAll()
	if !box.done || box.resp.Grant != msg.GrantShared || !box.resp.HasData {
		t.Fatalf("resp = %+v", box.resp)
	}
	if box.resp.Data[0] != 42 {
		t.Fatalf("data = %d", box.resp.Data[0])
	}
	e := h.dir().Lookup(testLine)
	if e == nil || e.State != directory.Shared || !e.Sharers.Has(0) || e.Pinned {
		t.Fatalf("entry = %+v", e)
	}
}

func TestHomeSecondReaderJoins(t *testing.T) {
	h := newHarness(t, config.HWcc, config.DirInfinite, 0, 0, 2)
	h.send(rd(0, testLine))
	h.runAll()
	box := h.send(rd(1, testLine))
	h.runAll()
	if !box.done || box.resp.Grant != msg.GrantShared {
		t.Fatal("second reader not granted")
	}
	e := h.dir().Lookup(testLine)
	if e.Sharers.Count() != 2 {
		t.Fatalf("sharers = %d", e.Sharers.Count())
	}
	if h.run.ProbesSent != 0 {
		t.Fatal("read sharing sent probes")
	}
}

func TestHomeWriteUpgradesAndInvalidatesOthers(t *testing.T) {
	h := newHarness(t, config.HWcc, config.DirInfinite, 0, 0, 2)
	h.send(rd(0, testLine))
	h.send(rd(1, testLine))
	h.runAll()

	box := h.send(wr(0, testLine)) // upgrade; cluster 1 must be probed
	h.runAll()
	if box.done {
		t.Fatal("granted before invalidation ack")
	}
	if len(h.probes) != 1 || h.probes[0].cluster != 1 || h.probes[0].probe.Kind != msg.ProbeInv {
		t.Fatalf("probes = %+v", h.probes)
	}
	h.probes[0].reply(msg.ProbeReply{Kind: msg.ReplyAck})
	h.runAll()
	if !box.done || box.resp.Grant != msg.GrantModified {
		t.Fatalf("resp = %+v", box.resp)
	}
	if box.resp.HasData {
		t.Fatal("upgrade of a sharer must not resend data")
	}
	e := h.dir().Lookup(testLine)
	if e.State != directory.Modified || e.Owner != 0 {
		t.Fatalf("entry = %+v", e)
	}
}

func TestHomeWriteMissGetsData(t *testing.T) {
	h := newHarness(t, config.HWcc, config.DirInfinite, 0, 0, 2)
	box := h.send(wr(1, testLine))
	h.runAll()
	if !box.done || box.resp.Grant != msg.GrantModified || !box.resp.HasData {
		t.Fatalf("resp = %+v", box.resp)
	}
}

func TestHomeReadRecallsModified(t *testing.T) {
	h := newHarness(t, config.HWcc, config.DirInfinite, 0, 0, 2)
	h.send(wr(0, testLine))
	h.runAll()

	box := h.send(rd(1, testLine))
	h.runAll()
	if box.done {
		t.Fatal("granted before writeback")
	}
	if len(h.probes) != 1 || h.probes[0].probe.Kind != msg.ProbeWB || h.probes[0].cluster != 0 {
		t.Fatalf("probes = %+v", h.probes)
	}
	var data [addr.WordsPerLine]uint32
	data[3] = 777
	h.probes[0].reply(msg.ProbeReply{Kind: msg.ReplyData, Mask: 1 << 3, Data: data})
	h.runAll()
	if !box.done || box.resp.Grant != msg.GrantShared || box.resp.Data[3] != 777 {
		t.Fatalf("resp = %+v", box.resp)
	}
	if h.store.ReadWord(testLine.Base()+12) != 777 {
		t.Fatal("writeback not merged")
	}
}

// The eviction race: a ProbeWB finds the line absent because the owner's
// dirty eviction is in flight. Link FIFO means the eviction arrives first
// in the real machine; the harness reproduces both orders.
func TestHomeRecallEvictionRaceEvictFirst(t *testing.T) {
	h := newHarness(t, config.HWcc, config.DirInfinite, 0, 0, 2)
	h.send(wr(0, testLine))
	h.runAll()

	box := h.send(rd(1, testLine)) // triggers ProbeWB to cluster 0
	h.runAll()
	// The eviction arrives while the probe is in flight...
	var data [addr.WordsPerLine]uint32
	data[0] = 555
	h.sendNoReply(msg.Req{Kind: msg.ReqEvict, Cluster: 0, Line: testLine, Mask: 1, Data: data})
	h.runAll()
	// ...then the probe reply reports the line gone.
	h.probes[0].reply(msg.ProbeReply{Kind: msg.ReplyAck})
	h.runAll()
	if !box.done || box.resp.Data[0] != 555 {
		t.Fatalf("resp = %+v (done=%v)", box.resp, box.done)
	}
}

func TestHomeRecallEvictionRaceAckFirst(t *testing.T) {
	// Defensive path: the ack arrives before the eviction (cannot happen
	// over FIFO links, but the controller must not wedge if it does).
	h := newHarness(t, config.HWcc, config.DirInfinite, 0, 0, 2)
	h.send(wr(0, testLine))
	h.runAll()
	box := h.send(rd(1, testLine))
	h.runAll()
	h.probes[0].reply(msg.ProbeReply{Kind: msg.ReplyAck}) // line gone, no data
	h.runAll()
	if box.done {
		t.Fatal("completed without the dirty data")
	}
	var data [addr.WordsPerLine]uint32
	data[0] = 99
	h.sendNoReply(msg.Req{Kind: msg.ReqEvict, Cluster: 0, Line: testLine, Mask: 1, Data: data})
	h.runAll()
	if !box.done || box.resp.Data[0] != 99 {
		t.Fatalf("resp = %+v (done=%v)", box.resp, box.done)
	}
}

func TestHomeRequestsQueuePerLine(t *testing.T) {
	h := newHarness(t, config.HWcc, config.DirInfinite, 0, 0, 4)
	h.send(wr(0, testLine))
	h.runAll()

	// Two readers arrive while the line is owned; they serialize behind
	// the recall.
	box1 := h.send(rd(1, testLine))
	box2 := h.send(rd(2, testLine))
	h.runAll()
	if box1.done || box2.done {
		t.Fatal("granted before recall completed")
	}
	h.probes[0].reply(msg.ProbeReply{Kind: msg.ReplyData, Mask: 0})
	h.runAll()
	if !box1.done || !box2.done {
		t.Fatalf("queued requests not drained: %v %v", box1.done, box2.done)
	}
	e := h.dir().Lookup(testLine)
	if e.State != directory.Shared || !e.Sharers.Has(1) || !e.Sharers.Has(2) {
		t.Fatalf("entry = %+v", e)
	}
}

func TestHomeEvictRemovesOwnership(t *testing.T) {
	h := newHarness(t, config.HWcc, config.DirInfinite, 0, 0, 2)
	h.send(wr(0, testLine))
	h.runAll()
	var data [addr.WordsPerLine]uint32
	data[1] = 5
	h.sendNoReply(msg.Req{Kind: msg.ReqEvict, Cluster: 0, Line: testLine, Mask: 2, Data: data})
	h.runAll()
	if h.dir().Lookup(testLine) != nil {
		t.Fatal("entry survived owner eviction")
	}
	if h.store.ReadWord(testLine.Base()+4) != 5 {
		t.Fatal("eviction data lost")
	}
}

func TestHomeReadReleaseBookkeeping(t *testing.T) {
	h := newHarness(t, config.HWcc, config.DirInfinite, 0, 0, 2)
	h.send(rd(0, testLine))
	h.send(rd(1, testLine))
	h.runAll()
	h.sendNoReply(msg.Req{Kind: msg.ReqReadRel, Cluster: 0, Line: testLine})
	h.runAll()
	e := h.dir().Lookup(testLine)
	if e == nil || e.Sharers.Has(0) || !e.Sharers.Has(1) {
		t.Fatalf("entry = %+v", e)
	}
	h.sendNoReply(msg.Req{Kind: msg.ReqReadRel, Cluster: 1, Line: testLine})
	h.runAll()
	if h.dir().Lookup(testLine) != nil {
		t.Fatal("entry not deallocated at zero sharers")
	}
	// Stale releases (entry gone) are ignored.
	h.sendNoReply(msg.Req{Kind: msg.ReqReadRel, Cluster: 1, Line: testLine})
	h.runAll()
}

func TestHomeSparseEvictionRecallsVictim(t *testing.T) {
	// One entry total: the second line's allocation must tear down the
	// first line's entry, invalidating its sharer.
	h := newHarness(t, config.HWcc, config.DirSparse, 1, 1, 2)
	h.send(rd(0, testLine))
	h.runAll()

	other := testLine + 1
	box := h.send(rd(1, other))
	h.runAll()
	if box.done {
		t.Fatal("granted before victim recall")
	}
	if len(h.probes) != 1 || h.probes[0].probe.Line != testLine || h.probes[0].probe.Kind != msg.ProbeInv {
		t.Fatalf("probes = %+v", h.probes)
	}
	h.probes[0].reply(msg.ProbeReply{Kind: msg.ReplyAck})
	h.runAll()
	if !box.done {
		t.Fatal("allocation did not proceed after victim recall")
	}
	if h.dir().Lookup(testLine) != nil || h.dir().Lookup(other) == nil {
		t.Fatal("directory contents wrong after eviction")
	}
	if h.run.DirEvictions != 1 {
		t.Fatalf("DirEvictions = %d", h.run.DirEvictions)
	}
}

func TestHomeAllocRetriesWhilePinned(t *testing.T) {
	// The only candidate entry is pinned by an in-flight transaction; the
	// allocation retries until the transaction drains.
	h := newHarness(t, config.HWcc, config.DirSparse, 1, 1, 3)
	h.send(wr(0, testLine))
	h.runAll()
	boxA := h.send(rd(1, testLine)) // recall in flight: entry pinned
	h.runAll()

	boxB := h.send(rd(2, testLine+1)) // different line, same (only) set
	h.runFor(200)                     // retry loop spins while the entry is pinned
	if boxB.done {
		t.Fatal("allocated into a pinned set")
	}
	h.probes[0].reply(msg.ProbeReply{Kind: msg.ReplyData, Mask: 0})
	h.runAll()
	if !boxA.done {
		t.Fatal("A stuck after recall reply")
	}
	// B's retry now evicts A's (unpinned) entry, probing its sharer.
	if len(h.probes) != 2 || h.probes[1].probe.Kind != msg.ProbeInv || h.probes[1].probe.Line != testLine {
		t.Fatalf("probes = %+v", h.probes)
	}
	h.probes[1].reply(msg.ProbeReply{Kind: msg.ReplyAck})
	h.runAll()
	if !boxB.done {
		t.Fatal("B stuck after victim recall")
	}
}

func TestHomeAtomicRecallsAndApplies(t *testing.T) {
	h := newHarness(t, config.HWcc, config.DirInfinite, 0, 0, 2)
	h.send(wr(0, testLine))
	h.runAll()

	box := h.send(msg.Req{
		Kind: msg.ReqAtomic, Cluster: 1, Line: testLine,
		Addr: testLine.Base(), Op: msg.AtomicAdd, Operand: 10,
	})
	h.runAll()
	if box.done {
		t.Fatal("atomic completed without recalling the owner")
	}
	var data [addr.WordsPerLine]uint32
	data[0] = 100
	h.probes[0].reply(msg.ProbeReply{Kind: msg.ReplyData, Mask: 1, Data: data})
	h.runAll()
	if !box.done || box.resp.Value != 100 {
		t.Fatalf("resp = %+v", box.resp)
	}
	if h.store.ReadWord(testLine.Base()) != 110 {
		t.Fatalf("memory = %d", h.store.ReadWord(testLine.Base()))
	}
	if h.dir().Lookup(testLine) != nil {
		t.Fatal("atomic left the line tracked")
	}
}

func TestHomeUncachedOps(t *testing.T) {
	h := newHarness(t, config.HWcc, config.DirInfinite, 0, 0, 2)
	a := testLine.Base() + 8
	box := h.send(msg.Req{Kind: msg.ReqUncStore, Cluster: 0, Line: testLine, Addr: a, Operand: 33})
	h.runAll()
	if !box.done {
		t.Fatal("uncached store not acked")
	}
	box = h.send(msg.Req{Kind: msg.ReqUncLoad, Cluster: 1, Line: testLine, Addr: a})
	h.runAll()
	if !box.done || box.resp.Value != 33 {
		t.Fatalf("uncached load = %+v", box.resp)
	}
}

func TestHomeSWFlushAckedAndMerged(t *testing.T) {
	h := newHarness(t, config.SWcc, config.DirNone, 0, 0, 2)
	var data [addr.WordsPerLine]uint32
	data[2] = 9
	box := h.send(msg.Req{Kind: msg.ReqSWFlush, Cluster: 0, Line: testLine, Mask: 4, Data: data})
	h.runAll()
	if !box.done {
		t.Fatal("flush not acked")
	}
	if h.store.ReadWord(testLine.Base()+8) != 9 {
		t.Fatal("flush not merged")
	}
}

func TestHomeSWccModeGrantsIncoherent(t *testing.T) {
	h := newHarness(t, config.SWcc, config.DirNone, 0, 0, 2)
	box := h.send(rd(0, testLine))
	h.runAll()
	if !box.done || box.resp.Grant != msg.GrantIncoherent {
		t.Fatalf("resp = %+v", box.resp)
	}
}

func TestHomeDir4BBroadcastRecall(t *testing.T) {
	clusters := 6
	h := newHarness(t, config.HWcc, config.DirLimited4B, 8, 0, clusters)
	for c := 0; c < clusters; c++ {
		h.send(rd(c, testLine))
	}
	h.runAll()
	e := h.dir().Lookup(testLine)
	if e == nil || !e.Broadcast {
		t.Fatalf("entry not overflowed: %+v", e)
	}
	// A write now probes every other cluster (broadcast).
	h.auto = func(p msg.Probe, cluster int) *msg.ProbeReply {
		return &msg.ProbeReply{Kind: msg.ReplyAck}
	}
	box := h.send(wr(0, testLine))
	h.runAll()
	if !box.done {
		t.Fatal("broadcast write never completed")
	}
	if len(h.probes) != clusters-1 {
		t.Fatalf("probed %d clusters, want %d", len(h.probes), clusters-1)
	}
	if h.run.DirBroadcasts == 0 {
		t.Fatal("broadcast not counted")
	}
}

func TestHomeCohesionCoarseRegionIncoherent(t *testing.T) {
	h := newHarness(t, config.Cohesion, config.DirInfinite, 0, 0, 2)
	if err := h.home.coarse.Add(addr.Range{Base: addr.StackBase, Size: 1 << 16}); err != nil {
		t.Fatal(err)
	}
	line := addr.LineOf(addr.StackBase)
	box := h.send(rd(0, line))
	h.runAll()
	if !box.done || box.resp.Grant != msg.GrantIncoherent {
		t.Fatalf("resp = %+v", box.resp)
	}
	if h.dir().Lookup(line) != nil {
		t.Fatal("coarse-region line tracked")
	}
}

func TestHomeCohesionFineTableDecidesDomain(t *testing.T) {
	h := newHarness(t, config.Cohesion, config.DirInfinite, 0, 0, 2)
	swLine := addr.LineOf(addr.CohHeapBase)
	h.home.fine.Set(swLine.Base())

	box := h.send(rd(0, swLine))
	h.runAll()
	if box.resp.Grant != msg.GrantIncoherent {
		t.Fatalf("SWcc-bit line granted %v", box.resp.Grant)
	}
	hwLine := swLine + 1
	box = h.send(rd(0, hwLine))
	h.runAll()
	if box.resp.Grant != msg.GrantShared {
		t.Fatalf("clear-bit line granted %v", box.resp.Grant)
	}
}

func TestHomeTableSnoopMultiBitSerialized(t *testing.T) {
	// One atomic flipping several table bits triggers one transition per
	// line, serialized, before the atomic is acknowledged.
	h := newHarness(t, config.Cohesion, config.DirInfinite, 0, 0, 2)
	base := addr.LineOf(addr.CohHeapBase)
	// Pick three lines that share a table word.
	wa := region.TblWordAddr(base.Base(), 1)
	var mask uint32
	lines := 0
	for i := addr.Line(0); i < 64 && lines < 3; i++ {
		l := base + i
		if region.TblWordAddr(l.Base(), 1) == wa {
			mask |= 1 << region.TblBitIndex(l.Base())
			lines++
		}
	}
	h.auto = func(p msg.Probe, cluster int) *msg.ProbeReply {
		return &msg.ProbeReply{Kind: msg.ReplyNotPresent}
	}
	box := h.send(msg.Req{
		Kind: msg.ReqAtomic, Cluster: 0,
		Line: addr.LineOf(wa), Addr: wa,
		Op: msg.AtomicOr, Operand: mask,
	})
	h.runAll()
	if !box.done {
		t.Fatal("table atomic not acked")
	}
	if h.run.TransitionsToSW != 3 {
		t.Fatalf("TransitionsToSW = %d, want 3", h.run.TransitionsToSW)
	}
	// Clearing the bits transitions back; SW->HW broadcasts capture
	// probes to every cluster per line.
	h.probes = nil
	box = h.send(msg.Req{
		Kind: msg.ReqAtomic, Cluster: 0,
		Line: addr.LineOf(wa), Addr: wa,
		Op: msg.AtomicAnd, Operand: ^mask,
	})
	h.runAll()
	if !box.done || h.run.TransitionsToHW != 3 {
		t.Fatalf("toHW = %d (done=%v)", h.run.TransitionsToHW, box.done)
	}
	if len(h.probes) != 3*2 {
		t.Fatalf("capture probes = %d, want 6", len(h.probes))
	}
}

func TestHomeCaptureUpgradeOwnerEvictedBetweenPhases(t *testing.T) {
	// Case 4b where the would-be owner evicts between the capture reply
	// and the upgrade probe: the entry must be dropped, data preserved.
	h := newHarness(t, config.Cohesion, config.DirInfinite, 0, 0, 2)
	line := addr.LineOf(addr.CohHeapBase)
	h.home.fine.Set(line.Base())

	step := 0
	h.auto = func(p msg.Probe, cluster int) *msg.ProbeReply {
		switch p.Kind {
		case msg.ProbeCapture:
			step++
			if cluster == 0 {
				return &msg.ProbeReply{Kind: msg.ReplyDirty, Mask: 1}
			}
			return &msg.ProbeReply{Kind: msg.ReplyNotPresent}
		case msg.ProbeUpgradeOwner:
			// Owner evicted; its eviction already merged (simulate it).
			var data [addr.WordsPerLine]uint32
			data[0] = 42
			h.sendNoReply(msg.Req{Kind: msg.ReqEvict, Cluster: 0, Line: line, Mask: 1, Data: data})
			return &msg.ProbeReply{Kind: msg.ReplyNotPresent}
		}
		return &msg.ProbeReply{Kind: msg.ReplyAck}
	}
	box := h.send(msg.Req{
		Kind: msg.ReqAtomic, Cluster: 1,
		Line: addr.LineOf(region.TblWordAddr(line.Base(), 1)),
		Addr: region.TblWordAddr(line.Base(), 1),
		Op:   msg.AtomicAnd, Operand: ^(uint32(1) << region.TblBitIndex(line.Base())),
	})
	h.runAll()
	if !box.done {
		t.Fatal("transition wedged on evicted owner")
	}
	if h.dir().Lookup(line) != nil {
		t.Fatal("stale entry for evicted owner")
	}
	if h.store.ReadWord(line.Base()) != 42 {
		t.Fatal("owner's data lost")
	}
}

func TestHomeInstrReqTrackedUnderHWcc(t *testing.T) {
	h := newHarness(t, config.HWcc, config.DirInfinite, 0, 0, 2)
	line := addr.LineOf(addr.CodeBase)
	box := h.send(msg.Req{Kind: msg.ReqInstr, Cluster: 0, Line: line})
	h.runAll()
	if box.resp.Grant != msg.GrantShared {
		t.Fatalf("instr grant = %v", box.resp.Grant)
	}
	if h.dir().Lookup(line) == nil {
		t.Fatal("code line untracked under pure HWcc")
	}
}

func TestHomePendingReflectsState(t *testing.T) {
	h := newHarness(t, config.HWcc, config.DirInfinite, 0, 0, 2)
	if h.home.Pending() {
		t.Fatal("fresh home pending")
	}
	h.send(wr(0, testLine))
	h.runAll()
	h.send(rd(1, testLine)) // recall outstanding
	h.runAll()
	if !h.home.Pending() {
		t.Fatal("recall not reflected in Pending")
	}
	h.probes[0].reply(msg.ProbeReply{Kind: msg.ReplyData, Mask: 0})
	h.runAll()
	if h.home.Pending() {
		t.Fatal("still pending after drain")
	}
}

// A software flush arriving for a line mid-capture merges immediately and
// must not wedge the transition.
func TestHomeFlushDuringCapture(t *testing.T) {
	h := newHarness(t, config.Cohesion, config.DirInfinite, 0, 0, 2)
	line := addr.LineOf(addr.CohHeapBase)
	h.home.fine.Set(line.Base())

	// Start the SW->HW transition; hold the capture replies.
	wa := region.TblWordAddr(line.Base(), 1)
	box := h.send(msg.Req{
		Kind: msg.ReqAtomic, Cluster: 1, Line: addr.LineOf(wa), Addr: wa,
		Op: msg.AtomicAnd, Operand: ^(uint32(1) << region.TblBitIndex(line.Base())),
	})
	h.runAll()
	if len(h.probes) != 2 {
		t.Fatalf("capture probes = %d", len(h.probes))
	}
	// A flush lands while the capture is outstanding.
	var data [addr.WordsPerLine]uint32
	data[2] = 77
	fbox := h.send(msg.Req{Kind: msg.ReqSWFlush, Cluster: 0, Line: line, Mask: 4, Data: data})
	h.runAll()
	if !fbox.done {
		t.Fatal("flush not acked during capture")
	}
	if h.store.ReadWord(line.Base()+8) != 77 {
		t.Fatal("flush not merged during capture")
	}
	// Finish the capture (both clusters report clean-or-absent).
	h.probes[0].reply(msg.ProbeReply{Kind: msg.ReplyNotPresent})
	h.probes[1].reply(msg.ProbeReply{Kind: msg.ReplyClean})
	h.runAll()
	if !box.done {
		t.Fatal("transition wedged")
	}
}

// UncStore to a table word triggers transitions just like an atomic.
func TestHomeUncStoreToTableSnooped(t *testing.T) {
	h := newHarness(t, config.Cohesion, config.DirInfinite, 0, 0, 2)
	line := addr.LineOf(addr.CohHeapBase)
	wa := region.TblWordAddr(line.Base(), 1)
	bit := uint32(1) << region.TblBitIndex(line.Base())
	box := h.send(msg.Req{Kind: msg.ReqUncStore, Cluster: 0, Line: addr.LineOf(wa), Addr: wa, Operand: bit})
	h.runAll()
	if !box.done {
		t.Fatal("store not acked")
	}
	if h.run.TransitionsToSW != 1 {
		t.Fatalf("toSW = %d, want 1", h.run.TransitionsToSW)
	}
	if !h.home.fine.IsSWcc(line.Base()) {
		t.Fatal("bit not set")
	}
}

// Writing a table word to the value it already holds is not a transition.
func TestHomeTableIdempotentWriteNoTransition(t *testing.T) {
	h := newHarness(t, config.Cohesion, config.DirInfinite, 0, 0, 2)
	line := addr.LineOf(addr.CohHeapBase)
	wa := region.TblWordAddr(line.Base(), 1)
	bit := uint32(1) << region.TblBitIndex(line.Base())
	h.home.fine.Set(line.Base())
	box := h.send(msg.Req{
		Kind: msg.ReqAtomic, Cluster: 0, Line: addr.LineOf(wa), Addr: wa,
		Op: msg.AtomicOr, Operand: bit, // already set
	})
	h.runAll()
	if !box.done {
		t.Fatal("atomic not acked")
	}
	if h.run.TransitionsToSW+h.run.TransitionsToHW != 0 {
		t.Fatal("idempotent table write caused a transition")
	}
}
