package core

import (
	"cohesion/internal/addr"
	"cohesion/internal/config"
	"cohesion/internal/directory"
	"cohesion/internal/msg"
	"cohesion/internal/region"
	"cohesion/internal/trace"
)

// domainOf decides which coherence domain the dispatched line (which has
// no directory entry) belongs to, then resumes via domainDecided. In SWcc
// mode everything is software-managed; in HWcc mode everything is
// hardware-managed; under Cohesion the coarse-grain region table is
// consulted for free (it is a small on-die structure accessed in parallel
// with the directory), then the fine-grain in-memory bitmap, whose lookup
// costs at least an L3 access (paper §3.4).
func (h *Home) domainOf(s *svc) {
	switch h.cfg.Mode {
	case config.SWcc:
		h.domainDecided(s, true)
		return
	case config.HWcc:
		h.domainDecided(s, false)
		return
	}
	base := s.req.Line.Base()
	if h.coarse != nil && h.coarse.Contains(base) {
		h.run.Edge(trace.EdgeCohDomainCoarse)
		h.domainDecided(s, true)
		return
	}
	if h.fine == nil {
		h.domainDecided(s, false)
		return
	}
	s.tableWord = region.TblWordAddr(base, h.cfg.L3Banks)
	h.tableAccess(s)
}

// tableRead finishes a fine-grain table consultation: it reads the word
// (now resident or timed), extracts the line's bit, and resumes dispatch.
func (h *Home) tableRead(s *svc) {
	base := s.req.Line.Base()
	word := h.store.ReadWord(s.tableWord)
	sw := word&(1<<region.TblBitIndex(base)) != 0
	if sw {
		h.run.Edge(trace.EdgeCohDomainFineSW)
	} else {
		h.run.Edge(trace.EdgeCohDomainFineHW)
	}
	h.domainDecided(s, sw)
}

// transitionChanged runs the coherence-domain transitions for every table
// bit flipped by a snooped write to table word wordAddr, serialized
// line-by-line ("If a request for multiple line state transitions occurs,
// the directory serializes the requests line-by-line", paper §3.6), then
// runs cont.
func (h *Home) transitionChanged(wordAddr addr.Addr, changed, newWord uint32, cont func(raced bool)) {
	var lines []addr.Line
	var toSW []bool
	for bit := uint(0); bit < 32; bit++ {
		if changed&(1<<bit) == 0 {
			continue
		}
		lines = append(lines, region.InvTblAddr(addr.WordAlign(wordAddr), bit, h.cfg.L3Banks))
		toSW = append(toSW, newWord&(1<<bit) != 0)
	}
	if h.orc != nil {
		// Mark every affected line transitioning up front: the table write
		// is already visible, so a racing request for line i may be
		// serviced under the new domain before its serialized transition
		// protocol runs.
		for i := range lines {
			h.orc.TransitionStart(lines[i], toSW[i])
		}
	}
	anyRace := false
	var step func(i int)
	step = func(i int) {
		if i == len(lines) {
			cont(anyRace)
			return
		}
		next := func(raced bool) {
			anyRace = anyRace || raced
			step(i + 1)
		}
		if toSW[i] {
			h.transitionToSW(lines[i], next)
		} else {
			h.transitionToHW(lines[i], next)
		}
	}
	step(0)
}

// acquireLine grabs the transaction slot of a data line for a transition,
// retrying while a regular request holds it.
func (h *Home) acquireLine(line addr.Line, body func()) {
	if _, busy := h.txns.Get(line); busy {
		h.run.Edge(trace.EdgeCohWaitsTxn)
		h.q.After(retryDelay, func() { h.acquireLine(line, body) })
		return
	}
	h.txns.Put(line, h.allocTxn())
	body()
}

// transitionToSW implements HWcc => SWcc (paper Figure 7a): any directory
// state for the line is torn down — sharers invalidated (Case 2a) or the
// owner's dirty data written back (Case 3a) — leaving the current value in
// the L3/memory and the line in no L2. Case 1a (no entry) needs no action
// beyond the already-written table bit.
func (h *Home) transitionToSW(line addr.Line, cont func(raced bool)) {
	h.run.TransitionsToSW++
	h.trace("transition toSW line=%#x", uint64(line))
	h.acquireLine(line, func() {
		finish := func() {
			if h.orc != nil {
				h.orc.TransitionDone(line, true)
			}
			h.completeTxn(line)
			cont(false)
		}
		e := h.dir.Lookup(line)
		if e == nil {
			h.run.Edge(trace.EdgeCohToSWNoEntry)
			finish()
			return
		}
		if e.State == directory.Modified {
			h.run.Edge(trace.EdgeCohToSWRecallM)
		} else {
			h.run.Edge(trace.EdgeCohToSWInvShared)
		}
		e.Pinned = true
		h.recallEntry(line, e, finish)
	})
}

// transitionToHW implements SWcc => HWcc (paper Figure 7b): the directory
// broadcasts a "clean capture" probe to every cluster. Clean copies become
// hardware sharers in place (Cases 1b/2b); a single dirty copy with no
// other sharers is upgraded to owner without a writeback (Case 4b's
// optimization); mixed or multiple dirty copies are written back and
// invalidated, with the L3 merging disjoint write sets (Case 3b), and
// overlapping dirty words — the paper's Case 5b software race — are
// counted and merged in cluster order.
func (h *Home) transitionToHW(line addr.Line, cont func(raced bool)) {
	h.run.TransitionsToHW++
	h.trace("transition toHW line=%#x (capture broadcast)", uint64(line))
	h.acquireLine(line, func() {
		broadcast := func() {
			replies := make([]msg.ProbeReply, 0, h.cfg.Clusters)
			pending := h.cfg.Clusters
			for c := 0; c < h.cfg.Clusters; c++ {
				h.sendProbe(c, msg.Probe{Kind: msg.ProbeCapture, Line: line}, func(rep msg.ProbeReply) {
					replies = append(replies, rep)
					pending--
					if pending == 0 {
						h.captureDecide(line, replies, cont)
					}
				})
			}
		}
		// The table bit is visible the moment it is written, so a request
		// serialized ahead of this transition may already have read the new
		// domain and created a directory entry (hardware grants) for the
		// line. Tear that state down first: recalled copies land in the L3,
		// and only pre-flip incoherent copies remain for the capture to see.
		if e := h.dir.Lookup(line); e != nil {
			h.run.Edge(trace.EdgeCohToHWRecallFirst)
			e.Pinned = true
			h.recallEntry(line, e, broadcast)
			return
		}
		broadcast()
	})
}

// captureDecide is the second phase of a SW=>HW transition, run once every
// cluster has answered the capture broadcast.
func (h *Home) captureDecide(line addr.Line, replies []msg.ProbeReply, cont func(raced bool)) {
	var clean, dirty []msg.ProbeReply
	for _, rep := range replies {
		switch rep.Kind {
		case msg.ReplyClean:
			clean = append(clean, rep)
		case msg.ReplyDirty:
			dirty = append(dirty, rep)
		}
	}
	raced := false
	finish := func() {
		if h.orc != nil {
			h.orc.TransitionDone(line, false)
		}
		h.completeTxn(line)
		cont(raced)
	}

	switch {
	case len(dirty) == 0 && len(clean) == 0:
		// Cached nowhere (Figure 7b Case 1b): no entry needed until the
		// next request allocates one.
		h.run.Edge(trace.EdgeCohToHWUncached)
		finish()

	case len(dirty) == 0:
		// Clean copies only (Case 2b): they already cleared their
		// incoherent bits; record them as hardware sharers.
		h.run.Edge(trace.EdgeCohToHWClean)
		h.allocEntry(line, nil, func(e *directory.Entry) {
			e.State = directory.Shared
			for _, rep := range clean {
				h.addSharer(e, rep.Cluster)
			}
			finish()
		})

	case len(dirty) == 1 && len(clean) == 0:
		// Single dirty writer (Case 4b): upgrade in place, no writeback.
		h.run.Edge(trace.EdgeCohToHWUpgrade)
		owner := dirty[0].Cluster
		h.allocEntry(line, nil, func(e *directory.Entry) {
			e.State = directory.Modified
			e.Owner = owner
			h.addSharer(e, owner)
			h.sendProbe(owner, msg.Probe{Kind: msg.ProbeUpgradeOwner, Line: line}, func(rep msg.ProbeReply) {
				if rep.Kind == msg.ReplyNotPresent {
					// The owner evicted between phases; its dirty eviction
					// has already merged (link FIFO), so the line is simply
					// uncached now.
					h.dir.Remove(line)
				}
				finish()
			})
		})

	default:
		// Mixed sharers or multiple writers (Cases 3b/5b): write back every
		// dirty copy, invalidate every clean copy; the per-word masks let
		// the L3 merge disjoint write sets. Overlap is the Case 5b race.
		h.run.Edge(trace.EdgeCohToHWMerge)
		var seen uint8
		for _, rep := range dirty {
			if seen&rep.Mask != 0 {
				h.run.OverlapRaces++
				raced = true
				h.run.Edge(trace.EdgeCohToHWOverlap)
			}
			seen |= rep.Mask
		}
		pending := len(dirty) + len(clean)
		step := func(rep msg.ProbeReply) {
			h.absorbReplyData(line, rep)
			pending--
			if pending == 0 {
				finish()
			}
		}
		for _, rep := range dirty {
			h.sendProbe(rep.Cluster, msg.Probe{Kind: msg.ProbeWB, Line: line}, step)
		}
		for _, rep := range clean {
			h.sendProbe(rep.Cluster, msg.Probe{Kind: msg.ProbeInv, Line: line}, step)
		}
	}
}
