// Package core implements the paper's primary contribution: the home-node
// controller that unifies a directory-based MSI hardware coherence protocol
// (HWcc), service for software-managed coherence (SWcc), and the Cohesion
// transition protocol that migrates lines between the two domains at run
// time (paper §3).
//
// One Home instance sits at each L3 cache bank, collocated with its
// directory bank (paper §3.2: "One bank of the directory is attached to
// each L3 cache bank. All directory requests are serialized through a home
// directory bank, thus avoiding many of the potential races in three-party
// directory protocols"). Every request that can change protocol state
// acquires the target line's transaction slot for its full service time,
// so per-line state transitions are totally ordered at the home. Messages
// travel over the interconnect via callbacks installed by the machine
// assembly, which guarantees point-to-point FIFO ordering; the controller
// relies on that ordering in one place: a dirty eviction (ReqEvict) sent
// by an L2 always arrives before that L2's reply to a later probe of the
// same line, so a writeback probe that finds the line absent can complete
// with the already-merged data.
package core

import (
	"fmt"

	"cohesion/internal/addr"
	"cohesion/internal/cache"
	"cohesion/internal/config"
	"cohesion/internal/directory"
	"cohesion/internal/dram"
	"cohesion/internal/event"
	"cohesion/internal/msg"
	"cohesion/internal/region"
	"cohesion/internal/stats"
)

// ProbeFunc delivers a probe to a cluster's L2 and routes the reply back.
type ProbeFunc func(cluster int, p msg.Probe, onReply func(msg.ProbeReply))

// Home is one L3 bank plus its directory slice and region-table port.
type Home struct {
	bank  int
	cfg   config.Machine
	q     *event.Queue
	run   *stats.Run
	store *dram.Store
	mem   *dram.Controller
	dir   directory.Directory // nil in SWcc mode
	l3    *cache.Cache        // this bank's tag array (values live in store)

	coarse *region.CoarseTable // nil unless Cohesion with coarse table
	fine   *region.FineTable   // nil unless Cohesion

	probe ProbeFunc

	// busyUntil models the single L3/directory port (Table 3: one R/W
	// port per bank): request processing serializes through it.
	busyUntil event.Cycle

	txns    map[addr.Line]*txn
	waiting map[addr.Line][]waiter
}

// portOccupancy is how long one request occupies the bank's port.
const portOccupancy = 2

// retryDelay is the backoff used when a flow must wait for an unrelated
// in-flight transaction (pinned directory set, busy transition target).
const retryDelay = 8

type waiter struct {
	req   msg.Req
	reply func(msg.Resp)
}

// txn is one line's in-flight transaction. Only one exists per line; every
// other request for the line queues behind it.
type txn struct {
	wbArrived bool   // a ReqEvict for the line arrived during the txn
	onWB      func() // resume point for a probe that found the line absent
}

// NewHome builds the controller for one bank. dir is nil for SWcc-only
// machines; coarse/fine are nil unless the machine runs Cohesion (coarse
// additionally nil when the coarse-table ablation is off).
func NewHome(bank int, cfg config.Machine, q *event.Queue, run *stats.Run,
	store *dram.Store, mem *dram.Controller, dir directory.Directory,
	coarse *region.CoarseTable, fine *region.FineTable, probe ProbeFunc) *Home {
	return &Home{
		bank:    bank,
		cfg:     cfg,
		q:       q,
		run:     run,
		store:   store,
		mem:     mem,
		dir:     dir,
		l3:      cache.New(cfg.L3BankSize(), cfg.L3Assoc),
		coarse:  coarse,
		fine:    fine,
		probe:   probe,
		txns:    make(map[addr.Line]*txn),
		waiting: make(map[addr.Line][]waiter),
	}
}

// Directory exposes the bank's directory for occupancy sampling and
// invariant checks. It is nil in SWcc mode.
func (h *Home) Directory() directory.Directory { return h.dir }

// Pending reports whether the bank has in-flight transactions or queued
// requests (used by the machine's quiescence check).
func (h *Home) Pending() bool { return len(h.txns) > 0 || len(h.waiting) > 0 }

// HandleReq is the entry point for a request arriving from the network.
// reply, when non-nil, routes the response back to the requesting L2.
func (h *Home) HandleReq(req msg.Req, reply func(msg.Resp)) {
	// Serialize through the bank port, then charge the L3 pipeline.
	start := h.q.Now()
	if h.busyUntil > start {
		start = h.busyUntil
	}
	h.busyUntil = start + portOccupancy
	h.q.At(start+event.Cycle(h.cfg.L3Latency), func() { h.process(req, reply) })
}

// trace records a home-side protocol event in the run's TraceLog (and on
// stdout when Debug is set).
func (h *Home) trace(format string, args ...any) {
	h.run.TraceEvent(uint64(h.q.Now()), fmt.Sprintf("home%d", h.bank), format, args...)
	if Debug {
		fmt.Printf("[home%d] "+format+"\n", append([]any{h.bank}, args...)...)
	}
}

func (h *Home) process(req msg.Req, reply func(msg.Resp)) {
	switch req.Kind {
	case msg.ReqEvict:
		h.handleEvict(req)
	case msg.ReqSWFlush:
		h.mergeToL3(req.Line, req.Mask, req.Data)
		if reply != nil {
			reply(msg.Resp{Grant: msg.GrantNone})
		}
	case msg.ReqReadRel:
		h.handleReadRel(req)
	default:
		// Reads, writes, instruction fetches, atomics, and uncached ops all
		// serialize through the line's transaction slot.
		if h.txns[req.Line] != nil {
			h.waiting[req.Line] = append(h.waiting[req.Line], waiter{req, reply})
			return
		}
		h.start(req, reply)
	}
}

// start opens the line's transaction slot and runs the request. Callers
// must have checked that no transaction is in flight.
func (h *Home) start(req msg.Req, reply func(msg.Resp)) {
	line := req.Line
	if h.txns[line] != nil {
		panic(fmt.Sprintf("core: transaction collision on line %#x", uint64(line)))
	}
	h.txns[line] = &txn{}
	h.trace("start %v line=%#x cluster=%d", req.Kind, uint64(line), req.Cluster)
	done := func(resp msg.Resp) {
		h.trace("done %v line=%#x cluster=%d grant=%v", req.Kind, uint64(line), req.Cluster, resp.Grant)
		// Send the response BEFORE retiring the transaction: retiring
		// drains the next queued request, which may immediately probe the
		// cluster just granted — the grant must win the (FIFO) link or the
		// probe would observe the line before its fill arrives.
		if reply != nil {
			reply(resp)
		}
		h.completeTxn(line)
	}
	switch req.Kind {
	case msg.ReqRead, msg.ReqWrite, msg.ReqInstr:
		h.dispatch(req, done)
	case msg.ReqAtomic, msg.ReqUncStore:
		h.atomicFlow(req, done)
	case msg.ReqUncLoad:
		h.dataAccess(req.Line, func([addr.WordsPerLine]uint32) {
			done(msg.Resp{Grant: msg.GrantNone, Value: h.store.ReadWord(req.Addr)})
		})
	default:
		panic(fmt.Sprintf("core: unhandled request kind %v", req.Kind))
	}
}

// completeTxn retires the line's transaction, unpins its directory entry,
// and synchronously starts the next queued request if any.
func (h *Home) completeTxn(line addr.Line) {
	if h.dir != nil {
		if e := h.dir.Lookup(line); e != nil {
			e.Pinned = false
		}
	}
	delete(h.txns, line)
	ws := h.waiting[line]
	if len(ws) == 0 {
		delete(h.waiting, line)
		return
	}
	w := ws[0]
	if len(ws) == 1 {
		delete(h.waiting, line)
	} else {
		h.waiting[line] = ws[1:]
	}
	h.start(w.req, w.reply)
}

// handleEvict merges a dirty writeback (no transaction slot needed: the
// merge is value-safe at any time, and directory bookkeeping is guarded).
func (h *Home) handleEvict(req msg.Req) {
	h.mergeToL3(req.Line, req.Mask, req.Data)
	if t := h.txns[req.Line]; t != nil {
		// An in-flight transaction may be waiting for exactly this data.
		t.wbArrived = true
		if t.onWB != nil {
			cont := t.onWB
			t.onWB = nil
			cont()
		}
		return
	}
	if h.dir != nil {
		if e := h.dir.Lookup(req.Line); e != nil && e.State == directory.Modified && e.Owner == req.Cluster {
			h.dir.Remove(req.Line)
		}
	}
}

// handleReadRel drops a sharer after a clean eviction; the entry is
// deallocated when the sharer count reaches zero (paper §3.2). Stale
// releases (entry already evicted or re-owned) are ignored.
func (h *Home) handleReadRel(req msg.Req) {
	if h.dir == nil {
		return
	}
	e := h.dir.Lookup(req.Line)
	if e == nil || e.State != directory.Shared {
		return
	}
	e.Sharers.Remove(req.Cluster)
	if e.Sharers.Empty() && !e.Pinned && !e.Broadcast {
		h.dir.Remove(req.Line)
	}
}

// dispatch services a read/write/ifetch holding the line's txn slot.
func (h *Home) dispatch(req msg.Req, done func(msg.Resp)) {
	if h.dir != nil {
		if e := h.dir.Lookup(req.Line); e != nil {
			e.Pinned = true
			h.dispatchHWHit(req, done, e)
			return
		}
	}
	// Directory miss: decide the line's coherence domain.
	h.domainOf(req.Line, func(sw bool) {
		if sw {
			h.dataAccess(req.Line, func(data [addr.WordsPerLine]uint32) {
				done(msg.Resp{Grant: msg.GrantIncoherent, HasData: true, Data: data})
			})
			return
		}
		h.grantFresh(req, done)
	})
}

// grantFresh allocates a directory entry for an untracked HWcc line and
// grants the request.
func (h *Home) grantFresh(req msg.Req, done func(msg.Resp)) {
	h.allocEntry(req.Line, func(e *directory.Entry) {
		grant := msg.GrantShared
		if req.Kind == msg.ReqWrite {
			e.State = directory.Modified
			e.Owner = req.Cluster
			grant = msg.GrantModified
		} else {
			e.State = directory.Shared
		}
		directory.AddSharer(h.dir, e, req.Cluster)
		h.dataAccess(req.Line, func(data [addr.WordsPerLine]uint32) {
			done(msg.Resp{Grant: grant, HasData: true, Data: data})
		})
	})
}

// dispatchHWHit services a request that hit a (now pinned) directory entry.
func (h *Home) dispatchHWHit(req msg.Req, done func(msg.Resp), e *directory.Entry) {
	switch req.Kind {
	case msg.ReqRead, msg.ReqInstr:
		if e.State == directory.Shared {
			directory.AddSharer(h.dir, e, req.Cluster)
			h.dataAccess(req.Line, func(data [addr.WordsPerLine]uint32) {
				done(msg.Resp{Grant: msg.GrantShared, HasData: true, Data: data})
			})
			return
		}
		// Modified in another cluster: recall the dirty data, then grant
		// fresh. (The owner is invalidated rather than downgraded; with the
		// L3 as the communication point this costs one re-fetch if the old
		// owner reads again — the paper's rationale for omitting E/O.)
		h.recallEntry(req.Line, e, func() {
			h.grantFresh(req, done)
		})

	case msg.ReqWrite:
		if e.State == directory.Modified {
			// Owned dirty by another cluster (link FIFO ordering rules out
			// a cluster racing its own ownership).
			h.recallEntry(req.Line, e, func() {
				h.grantFresh(req, done)
			})
			return
		}
		// Shared: invalidate every other sharer, then grant Modified.
		wasSharer := e.Sharers.Has(req.Cluster)
		targets := h.probeTargets(e, req.Cluster)
		finish := func() {
			e.State = directory.Modified
			e.Owner = req.Cluster
			e.Broadcast = false
			e.Sharers = directory.Sharers{}
			directory.AddSharer(h.dir, e, req.Cluster)
			if wasSharer {
				done(msg.Resp{Grant: msg.GrantModified})
				return
			}
			h.dataAccess(req.Line, func(data [addr.WordsPerLine]uint32) {
				done(msg.Resp{Grant: msg.GrantModified, HasData: true, Data: data})
			})
		}
		if len(targets) == 0 {
			finish()
			return
		}
		pending := len(targets)
		for _, c := range targets {
			h.sendProbe(c, msg.Probe{Kind: msg.ProbeInv, Line: req.Line}, func(rep msg.ProbeReply) {
				h.absorbReplyData(req.Line, rep)
				pending--
				if pending == 0 {
					finish()
				}
			})
		}

	default:
		panic("core: dispatchHWHit on non-RWI request")
	}
}

// atomicFlow performs an uncached atomic or uncached store at the L3. If
// the word's line is hardware-tracked it is recalled first so the
// operation observes the globally latest value. Writes that land in the
// fine-grain region table are snooped: changed bits trigger coherence
// domain transitions, and the requester is not acknowledged until they
// complete (paper §3.6).
func (h *Home) atomicFlow(req msg.Req, done func(msg.Resp)) {
	if h.dir != nil {
		if e := h.dir.Lookup(req.Line); e != nil {
			e.Pinned = true
			h.recallEntry(req.Line, e, func() {
				h.atomicFlow(req, done)
			})
			return
		}
	}
	old := h.store.ReadWord(req.Addr)
	var next uint32
	if req.Kind == msg.ReqUncStore {
		next = req.Operand
	} else {
		next = req.Op.Apply(old, req.Operand, req.Operand2)
	}
	h.store.WriteWord(req.Addr, next)
	h.touchL3Word(req.Addr)

	if h.fine != nil && region.InTableRange(req.Addr) && old != next {
		h.transitionChanged(req.Addr, old^next, next, func(raced bool) {
			done(msg.Resp{
				Grant:         msg.GrantNone,
				Value:         old,
				RaceException: raced && h.cfg.TrapOnRace,
			})
		})
		return
	}
	done(msg.Resp{Grant: msg.GrantNone, Value: old})
}

// recallEntry tears down a directory entry under the line's held txn slot:
// sharers are invalidated (Shared) or the owner's dirty data written back
// (Modified), the entry is removed, and cont runs. The line's data ends up
// current in the L3/store and absent from every L2 — exactly the paper's
// Figure 7(a) right-hand states.
func (h *Home) recallEntry(line addr.Line, e *directory.Entry, cont func()) {
	h.trace("recall line=%#x state=%v owner=%d", uint64(line), e.State, e.Owner)
	e.Pinned = true
	if e.State == directory.Modified {
		owner := e.Owner
		finish := func() {
			h.dir.Remove(line)
			cont()
		}
		h.sendProbe(owner, msg.Probe{Kind: msg.ProbeWB, Line: line}, func(rep msg.ProbeReply) {
			if rep.Kind == msg.ReplyData {
				h.mergeToL3(line, rep.Mask, rep.Data)
				finish()
				return
			}
			// Line absent at the owner: the dirty eviction is (or was) in
			// flight. Link FIFO ordering means it normally arrived already.
			t := h.txns[line]
			if t != nil && !t.wbArrived {
				h.trace("recall line=%#x waiting for writeback", uint64(line))
				t.onWB = finish
				return
			}
			finish()
		})
		return
	}
	targets := h.probeTargets(e, -1)
	if len(targets) == 0 {
		h.dir.Remove(line)
		cont()
		return
	}
	pending := len(targets)
	for _, c := range targets {
		h.sendProbe(c, msg.Probe{Kind: msg.ProbeInv, Line: line}, func(rep msg.ProbeReply) {
			h.absorbReplyData(line, rep)
			pending--
			if pending == 0 {
				h.dir.Remove(line)
				cont()
			}
		})
	}
}

// absorbReplyData merges dirty data carried on a probe reply (an L2 may
// answer an invalidation with dirty words if its copy was modified).
func (h *Home) absorbReplyData(line addr.Line, rep msg.ProbeReply) {
	if rep.Kind == msg.ReplyData && rep.Mask != 0 {
		h.mergeToL3(line, rep.Mask, rep.Data)
	}
}

// allocEntry obtains a directory entry for line, evicting a victim entry
// (invalidating its sharers — the directory is inclusive of the L2s) when
// the set is full. The fresh entry is pinned; the caller's txn completion
// unpins it.
func (h *Home) allocEntry(line addr.Line, cont func(*directory.Entry)) {
	if h.dir.HasRoom(line) {
		e := h.dir.Allocate(line)
		e.Pinned = true
		cont(e)
		return
	}
	v := h.dir.Victim(line)
	if v == nil {
		// Every candidate way is pinned by an in-flight transaction;
		// retry once one drains.
		h.q.After(retryDelay, func() { h.allocEntry(line, cont) })
		return
	}
	victimLine := v.Line
	if h.txns[victimLine] != nil {
		// An unpinned entry whose line has a transaction should not exist,
		// but never race it: back off and retry.
		h.q.After(retryDelay, func() { h.allocEntry(line, cont) })
		return
	}
	h.run.DirEvictions++
	h.txns[victimLine] = &txn{}
	h.recallEntry(victimLine, v, func() {
		h.completeTxn(victimLine)
		h.allocEntry(line, cont)
	})
}

// probeTargets lists the clusters to probe for an entry, excluding skip
// (-1 to exclude none). Overflowed Dir4B entries probe every cluster.
func (h *Home) probeTargets(e *directory.Entry, skip int) []int {
	var out []int
	if e.Broadcast {
		h.run.DirBroadcasts++
		for c := 0; c < h.cfg.Clusters; c++ {
			if c != skip {
				out = append(out, c)
			}
		}
		return out
	}
	e.Sharers.ForEach(func(c int) {
		if c != skip {
			out = append(out, c)
		}
	})
	return out
}

func (h *Home) sendProbe(cluster int, p msg.Probe, onReply func(msg.ProbeReply)) {
	h.run.ProbesSent++
	h.trace("%v line=%#x -> cl%d", p.Kind, uint64(p.Line), cluster)
	h.probe(cluster, p, onReply)
}
