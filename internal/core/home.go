// Package core implements the paper's primary contribution: the home-node
// controller that unifies a directory-based MSI hardware coherence protocol
// (HWcc), service for software-managed coherence (SWcc), and the Cohesion
// transition protocol that migrates lines between the two domains at run
// time (paper §3).
//
// One Home instance sits at each L3 cache bank, collocated with its
// directory bank (paper §3.2: "One bank of the directory is attached to
// each L3 cache bank. All directory requests are serialized through a home
// directory bank, thus avoiding many of the potential races in three-party
// directory protocols"). Every request that can change protocol state
// acquires the target line's transaction slot for its full service time,
// so per-line state transitions are totally ordered at the home. Messages
// travel over the interconnect via callbacks installed by the machine
// assembly, which guarantees point-to-point FIFO ordering; the controller
// relies on that ordering in one place: a dirty eviction (ReqEvict) sent
// by an L2 always arrives before that L2's reply to a later probe of the
// same line, so a writeback probe that finds the line absent can complete
// with the already-merged data.
package core

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"

	"cohesion/internal/addr"
	"cohesion/internal/cache"
	"cohesion/internal/config"
	"cohesion/internal/directory"
	"cohesion/internal/dram"
	"cohesion/internal/event"
	"cohesion/internal/fault"
	"cohesion/internal/linetab"
	"cohesion/internal/msg"
	"cohesion/internal/oracle"
	"cohesion/internal/region"
	"cohesion/internal/simerr"
	"cohesion/internal/stats"
	"cohesion/internal/trace"
)

// ProbeFunc delivers a probe to a cluster's L2 and routes the reply back.
type ProbeFunc func(cluster int, p msg.Probe, onReply func(msg.ProbeReply))

// Home is one L3 bank plus its directory slice and region-table port.
type Home struct {
	bank  int
	name  string // "home<bank>", precomputed for the trace hot path
	cfg   config.Machine
	q     *event.Queue
	run   *stats.Run
	store *dram.Store
	mem   *dram.Controller
	dir   directory.Directory // nil in SWcc mode
	l3    *cache.Cache        // this bank's tag array (values live in store)

	coarse *region.CoarseTable // nil unless Cohesion with coarse table
	fine   *region.FineTable   // nil unless Cohesion

	probe ProbeFunc

	// faults, when non-nil, injects directory-allocation NACKs (the drop/
	// duplicate/delay decisions live at the machine and network layers).
	faults *fault.Plan

	// orc, when non-nil, is the online coherence oracle; the home reports
	// every grant, atomic, uncached load, writeback merge, and domain
	// transition to it.
	orc *oracle.Oracle

	// busyUntil models the single L3/directory port (Table 3: one R/W
	// port per bank): request processing serializes through it.
	busyUntil event.Cycle

	txns    linetab.Table[*txn]
	waiting linetab.Table[*svc] // FIFO linked list per line, oldest first

	// Free lists for the bank's pooled hot-path records: service records
	// (one per request in flight), transaction slots, and probe-reply
	// staging records. Steady-state traffic recycles all three.
	freeSvc *svc
	freeTx  *txn
	freeRet *probeRet
	freeRec *recall

	// targets is the reusable probe fan-out scratch; probeTargets fills
	// it and every caller iterates the result synchronously before the
	// next probeTargets call can run, so one buffer per bank suffices.
	targets []int

	// serviced/prevServiced record the transaction IDs this bank has already
	// granted (two generations, rotated at servicedGenSize, so the set stays
	// bounded). A request whose ID is present is a duplicate delivery or a
	// spurious retransmission whose original succeeded; it is dropped without
	// touching directory state — re-servicing a write whose requester has
	// since evicted the line would fabricate a stale Modified entry.
	// linetab.Set rather than a map so rotation swaps and clears the two
	// sets in place — the old scheme re-made a 64K-entry map every rotation,
	// the single remaining allocation source on long HWcc runs.
	serviced     linetab.Set
	prevServiced linetab.Set
}

// portOccupancy is how long one request occupies the bank's port.
const portOccupancy = 2

// retryDelay is the backoff used when a flow must wait for an unrelated
// in-flight transaction (pinned directory set, busy transition target).
const retryDelay = 8

// servicedGenSize bounds each generation of the serviced-ID set. Rotation
// is safe because the port occupancy means a bank cannot grant this many
// transactions within any plausible retransmission window.
const servicedGenSize = 1 << 16

// txn is one line's in-flight transaction. Only one exists per line; every
// other request for the line queues behind it. Records are pooled on the
// bank; recycling is safe because every reference goes through the txns
// map (nothing captures a *txn across events).
type txn struct {
	wbArrived bool   // a ReqEvict for the line arrived during the txn
	onWB      func() // resume point for a probe that found the line absent
	nextFree  *txn
}

func (h *Home) allocTxn() *txn {
	t := h.freeTx
	if t == nil {
		return &txn{}
	}
	h.freeTx = t.nextFree
	t.nextFree = nil
	t.wbArrived = false
	t.onWB = nil
	return t
}

// svc is one request's service record: the request, its reply route, and
// the in-flight state its flow threads through the bank's asynchronous
// stages (domain lookup, data access, probe fan-out). The continuation
// funcs are bound once per record, so the steady-state request flows —
// dispatch, grant, upgrade, atomic — run without allocating; per-request
// state is rewritten on reuse. Each flow is linear (one continuation
// outstanding per record at a time), and a record is freed exactly once,
// in finish (or immediately, for the slot-free message kinds), before its
// reply is sent — everything finish needs is read into locals first.
type svc struct {
	h     *Home
	req   msg.Req
	reply func(msg.Resp)

	grant     msg.Grant                       // grant to issue once data arrives
	wasSharer bool                            // upgrade: requester already shared the line
	dirEntry  *directory.Entry                // upgrade: entry being converted
	tableWord addr.Addr                       // region-table word under consultation
	atomicOld uint32                          // atomic: pre-update value
	pending   int                             // outstanding probe replies (fan-in)
	dataCont  func([addr.WordsPerLine]uint32) // resume point for an L3 data miss

	nextWait *svc // FIFO link in the line's waiting list
	nextFree *svc

	processFn     func()
	grantDataFn   func([addr.WordsPerLine]uint32)
	uncLoadFn     func([addr.WordsPerLine]uint32)
	tableReadFn   func()
	tableMissFn   func()
	dataMissFn    func()
	allocDoneFn   func(*directory.Entry)
	nackFn        func()
	grantFreshFn  func()
	upgradeRepFn  func(msg.ProbeReply)
	atomicRetryFn func()
	transDoneFn   func(raced bool)
}

func (h *Home) allocSvc() *svc {
	s := h.freeSvc
	if s == nil {
		s = &svc{h: h}
		s.processFn = func() { s.h.process(s) }
		s.grantDataFn = func(data [addr.WordsPerLine]uint32) {
			s.h.finish(s, msg.Resp{Grant: s.grant, HasData: true, Data: data})
		}
		s.uncLoadFn = func([addr.WordsPerLine]uint32) {
			s.h.run.Edge(trace.EdgeHomeUncachedAtL3)
			v := s.h.store.ReadWord(s.req.Addr)
			if s.h.orc != nil {
				s.h.orc.UncLoadObserved(s.req.Addr, v)
			}
			s.h.finish(s, msg.Resp{Grant: msg.GrantNone, Value: v})
		}
		s.tableReadFn = func() { s.h.tableRead(s) }
		s.tableMissFn = func() {
			if s.h.cfg.TableCachedInL3 {
				s.h.installL3(addr.LineOf(s.tableWord))
			}
			s.h.tableRead(s)
		}
		s.dataMissFn = func() {
			line := s.req.Line
			s.h.installL3(line)
			cont := s.dataCont
			s.dataCont = nil
			cont(s.h.store.ReadLine(line))
		}
		s.allocDoneFn = func(e *directory.Entry) { s.h.allocDone(s, e) }
		s.nackFn = func() {
			s.h.run.NacksSent++
			s.h.run.Edge(trace.EdgeDirCapacityNack)
			s.h.trace("nack (capacity) %v line=%#x cluster=%d", s.req.Kind, uint64(s.req.Line), s.req.Cluster)
			s.h.finish(s, msg.Resp{Grant: msg.GrantNack})
		}
		s.grantFreshFn = func() { s.h.grantFresh(s) }
		s.upgradeRepFn = func(rep msg.ProbeReply) {
			s.h.absorbReplyData(s.req.Line, rep)
			s.pending--
			if s.pending == 0 {
				s.h.upgradeFinish(s)
			}
		}
		s.atomicRetryFn = func() { s.h.atomicFlow(s) }
		s.transDoneFn = func(raced bool) {
			s.h.finish(s, msg.Resp{
				Grant:         msg.GrantNone,
				Value:         s.atomicOld,
				RaceException: raced && s.h.cfg.TrapOnRace,
			})
		}
		return s
	}
	h.freeSvc = s.nextFree
	s.nextFree = nil
	return s
}

func (h *Home) releaseSvc(s *svc) {
	s.reply = nil
	s.dirEntry = nil
	s.dataCont = nil
	s.nextWait = nil
	s.nextFree = h.freeSvc
	h.freeSvc = s
}

// probeRet stages one probe reply back through the bank's port (see
// sendProbe); pooled so the round trip allocates nothing.
type probeRet struct {
	h       *Home
	rep     msg.ProbeReply
	onReply func(msg.ProbeReply)

	recvFn   func(msg.ProbeReply)
	stageFn  func()
	nextFree *probeRet
}

func (h *Home) allocProbeRet() *probeRet {
	pr := h.freeRet
	if pr == nil {
		pr = &probeRet{h: h}
		pr.recvFn = func(rep msg.ProbeReply) {
			pr.rep = rep
			pr.h.stage(pr.stageFn)
		}
		pr.stageFn = func() {
			onReply, rep := pr.onReply, pr.rep
			pr.onReply = nil
			pr.nextFree = pr.h.freeRet
			pr.h.freeRet = pr
			onReply(rep)
		}
		return pr
	}
	h.freeRet = pr.nextFree
	pr.nextFree = nil
	return pr
}

// recall is the pooled continuation record for one recallEntry flow: a
// writeback round trip (Modified) or an invalidation fan-out with a
// pending count (Shared). The reply funcs are bound once per record,
// like svc's, so recalls — the protocol's hottest eviction and
// domain-transition path — run without allocating. finishFn fires
// exactly once per life (it may be parked on a txn's onWB hook while an
// in-flight dirty eviction drains) and releases the record before
// running the caller's continuation, which may start the next recall.
type recall struct {
	h        *Home
	line     addr.Line
	cont     func()
	pending  int
	nextFree *recall

	wbRepFn  func(msg.ProbeReply)
	invRepFn func(msg.ProbeReply)
	finishFn func()
}

func (h *Home) allocRecall(line addr.Line, cont func()) *recall {
	r := h.freeRec
	if r == nil {
		r = &recall{h: h}
		r.finishFn = func() {
			r.h.dir.Remove(r.line)
			cont := r.cont
			r.h.releaseRecall(r)
			cont()
		}
		r.wbRepFn = func(rep msg.ProbeReply) {
			if rep.Kind == msg.ReplyData {
				r.h.run.Edge(trace.EdgeHomeRecallWBData)
				r.h.mergeToL3(r.line, rep.Mask, rep.Data)
				r.finishFn()
				return
			}
			// Line absent at the owner: the dirty eviction is (or was) in
			// flight. Link FIFO ordering means it normally arrived already.
			r.h.run.Edge(trace.EdgeHomeRecallWBAbsent)
			t, _ := r.h.txns.Get(r.line)
			if t != nil && !t.wbArrived {
				r.h.trace("recall line=%#x waiting for writeback", uint64(r.line))
				t.onWB = r.finishFn
				return
			}
			r.finishFn()
		}
		r.invRepFn = func(rep msg.ProbeReply) {
			r.h.absorbReplyData(r.line, rep)
			r.pending--
			if r.pending == 0 {
				r.finishFn()
			}
		}
	} else {
		h.freeRec = r.nextFree
		r.nextFree = nil
	}
	r.line = line
	r.cont = cont
	return r
}

func (h *Home) releaseRecall(r *recall) {
	r.cont = nil
	r.nextFree = h.freeRec
	h.freeRec = r
}

// NewHome builds the controller for one bank. dir is nil for SWcc-only
// machines; coarse/fine are nil unless the machine runs Cohesion (coarse
// additionally nil when the coarse-table ablation is off).
func NewHome(bank int, cfg config.Machine, q *event.Queue, run *stats.Run,
	store *dram.Store, mem *dram.Controller, dir directory.Directory,
	coarse *region.CoarseTable, fine *region.FineTable, probe ProbeFunc,
	faults *fault.Plan) *Home {
	return &Home{
		bank:   bank,
		name:   fmt.Sprintf("home%d", bank),
		cfg:    cfg,
		q:      q,
		run:    run,
		store:  store,
		mem:    mem,
		dir:    dir,
		l3:     cache.New(cfg.L3BankSize(), cfg.L3Assoc),
		coarse: coarse,
		fine:   fine,
		probe:  probe,
		faults: faults,
	}
}

// SetOracle attaches the online coherence oracle.
func (h *Home) SetOracle(o *oracle.Oracle) { h.orc = o }

// site names this bank in diagnostics and traces.
func (h *Home) site() string { return h.name }

// alreadyServiced reports whether a transaction ID has been granted.
func (h *Home) alreadyServiced(id uint64) bool {
	return h.serviced.Has(id) || h.prevServiced.Has(id)
}

// markServiced records a granted transaction ID, rotating generations to
// keep the set bounded. Rotation swaps the two sets and clears the stale
// one in place, so it allocates nothing once both have reached size.
func (h *Home) markServiced(id uint64) {
	if h.serviced.Len() >= servicedGenSize {
		h.serviced, h.prevServiced = h.prevServiced, h.serviced
		h.serviced.Clear()
	}
	h.serviced.Add(id)
}

// dropDup discards a duplicate delivery (or spurious retransmission whose
// original already succeeded). No reply is sent: the requester either has
// its grant already or will discard the extra response as stale.
func (h *Home) dropDup(req msg.Req) {
	h.run.DupsDropped++
	h.run.Edge(trace.EdgeRecHomeDupDrop)
	h.trace("dup-drop %v line=%#x cluster=%d id=%#x", req.Kind, uint64(req.Line), req.Cluster, req.ID)
}

// Directory exposes the bank's directory for occupancy sampling and
// invariant checks. It is nil in SWcc mode.
func (h *Home) Directory() directory.Directory { return h.dir }

// Pending reports whether the bank has in-flight transactions or queued
// requests (used by the machine's quiescence check).
func (h *Home) Pending() bool { return h.txns.Len() > 0 || h.waiting.Len() > 0 }

// StuckReport describes the bank's in-flight and queued transactions —
// line, waiter count, and the directory's view of the line — for deadlock
// diagnostics. Returns nil when idle. Lines are sorted so the report is
// deterministic.
func (h *Home) StuckReport(now event.Cycle) []string {
	if !h.Pending() {
		return nil
	}
	seen := make(map[addr.Line]bool, h.txns.Len()+h.waiting.Len())
	var lines []addr.Line
	h.txns.ForEach(func(line addr.Line, _ *txn) {
		if !seen[line] {
			seen[line] = true
			lines = append(lines, line)
		}
	})
	h.waiting.ForEach(func(line addr.Line, _ *svc) {
		if !seen[line] {
			seen[line] = true
			lines = append(lines, line)
		}
	})
	sort.Slice(lines, func(i, j int) bool { return lines[i] < lines[j] })
	out := make([]string, 0, len(lines))
	for _, line := range lines {
		var b strings.Builder
		fmt.Fprintf(&b, "home%d: line=%#x", h.bank, uint64(line.Base()))
		if t, _ := h.txns.Get(line); t != nil {
			b.WriteString(" txn in flight")
			if t.onWB != nil {
				b.WriteString(" (awaiting writeback)")
			}
		}
		if n := h.waitDepth(line); n > 0 {
			fmt.Fprintf(&b, " %d queued", n)
		}
		if h.dir != nil {
			if e := h.dir.Lookup(line); e != nil {
				fmt.Fprintf(&b, " dir{state=%v owner=%d sharers=%d pinned=%v}",
					e.State, e.Owner, e.Sharers.Count(), e.Pinned)
			} else {
				b.WriteString(" dir{no entry}")
			}
		}
		out = append(out, b.String())
	}
	return out
}

// HandleReq is the entry point for a request arriving from the network.
// reply, when non-nil, routes the response back to the requesting L2.
func (h *Home) HandleReq(req msg.Req, reply func(msg.Resp)) {
	s := h.allocSvc()
	s.req, s.reply = req, reply
	h.stage(s.processFn)
}

// stage serializes an arriving message through the bank's single port and
// charges the L3 pipeline latency before fn runs. Port slots are granted
// in arrival order, so two messages from the same cluster — which the
// network delivers in send order — are also processed in send order.
func (h *Home) stage(fn func()) {
	start := h.q.Now()
	if h.busyUntil > start {
		start = h.busyUntil
	}
	if m := h.run.Metrics; m != nil {
		m.HomePortWait.Observe(uint64(start - h.q.Now()))
	}
	h.busyUntil = start + portOccupancy
	h.q.At(start+event.Cycle(h.cfg.L3Latency), fn)
}

// trace records a home-side protocol event in the run's TraceLog and
// structured sink (and on stdout when Debug is set). The Debug mirror
// prints the shared Record rendering, sim-time column included.
func (h *Home) trace(format string, args ...any) {
	if !h.run.Tracing() && !Debug {
		return
	}
	rec := stats.TraceEntry{Cycle: uint64(h.q.Now()), Site: h.name, Event: fmt.Sprintf(format, args...)}
	h.run.Emit(rec)
	if Debug {
		fmt.Println(rec.String())
	}
}

func (h *Home) process(s *svc) {
	req := s.req
	switch req.Kind {
	case msg.ReqEvict:
		h.releaseSvc(s)
		h.handleEvict(req)
	case msg.ReqSWFlush:
		reply := s.reply
		h.releaseSvc(s)
		h.mergeToL3(req.Line, req.Mask, req.Data)
		if reply != nil {
			reply(msg.Resp{Grant: msg.GrantNone})
		}
	case msg.ReqReadRel:
		h.releaseSvc(s)
		h.handleReadRel(req)
	default:
		// Reads, writes, instruction fetches, atomics, and uncached ops all
		// serialize through the line's transaction slot.
		if req.ID != 0 && h.alreadyServiced(req.ID) {
			h.releaseSvc(s)
			h.dropDup(req)
			return
		}
		if _, busy := h.txns.Get(req.Line); busy {
			if m := h.run.Metrics; m != nil {
				m.HomeQueueDepth.Observe(uint64(h.waitDepth(req.Line)))
			}
			h.enqueueWaiter(s)
			return
		}
		h.start(s)
	}
}

// start opens the line's transaction slot and runs the request. Callers
// must have checked that no transaction is in flight.
func (h *Home) start(s *svc) {
	req := s.req
	line := req.Line
	if req.ID != 0 && h.alreadyServiced(req.ID) {
		// A duplicate that queued behind its own original: the original has
		// completed (and marked the ID) by the time the queue drains here.
		h.releaseSvc(s)
		h.dropDup(req)
		h.drainWaiting(line)
		return
	}
	if _, busy := h.txns.Get(line); busy {
		panic(simerr.Invariant(uint64(h.q.Now()), h.site(), uint64(line.Base()),
			"transaction collision servicing %v from cluster %d", req.Kind, req.Cluster))
	}
	h.txns.Put(line, h.allocTxn())
	if h.run.Tracing() || Debug {
		h.trace("start %v line=%#x cluster=%d", req.Kind, uint64(line), req.Cluster)
	}
	switch req.Kind {
	case msg.ReqRead, msg.ReqWrite, msg.ReqInstr:
		h.dispatch(s)
	case msg.ReqAtomic, msg.ReqUncStore:
		h.atomicFlow(s)
	case msg.ReqUncLoad:
		h.dataAccess(s, s.uncLoadFn)
	default:
		panic(simerr.Invariant(uint64(h.q.Now()), h.site(), uint64(line.Base()),
			"unhandled request kind %v from cluster %d", req.Kind, req.Cluster))
	}
}

// finish completes a request's service: it stamps and sends the response,
// frees the service record, and retires the line's transaction.
func (h *Home) finish(s *svc, resp msg.Resp) {
	req, reply := s.req, s.reply
	resp.ID = req.ID // echo so the requester can discard late aliases
	if h.run.Tracing() || Debug {
		h.trace("done %v line=%#x cluster=%d grant=%v", req.Kind, uint64(req.Line), req.Cluster, resp.Grant)
	}
	if h.orc != nil {
		// Value/domain/ownership checks happen at grant time, the same
		// event that read the store, so the comparison cannot race
		// in-flight merges or transitions.
		h.orc.GrantObserved(req, resp)
	}
	if req.ID != 0 && resp.Grant != msg.GrantNack {
		// NACKed transactions are NOT marked: the requester will
		// retransmit the same ID and must be serviced then.
		h.markServiced(req.ID)
	}
	h.releaseSvc(s)
	// Send the response BEFORE retiring the transaction: retiring
	// drains the next queued request, which may immediately probe the
	// cluster just granted — the grant must win the (FIFO) link or the
	// probe would observe the line before its fill arrives.
	if reply != nil {
		reply(resp)
	}
	h.completeTxn(req.Line)
}

// enqueueWaiter appends the service record to its line's FIFO wait list.
func (h *Home) enqueueWaiter(s *svc) {
	s.nextWait = nil
	head, ok := h.waiting.Get(s.req.Line)
	if !ok {
		h.waiting.Put(s.req.Line, s)
		return
	}
	for head.nextWait != nil {
		head = head.nextWait
	}
	head.nextWait = s
}

// waitDepth counts the requests queued on a line.
func (h *Home) waitDepth(line addr.Line) int {
	n := 0
	s, _ := h.waiting.Get(line)
	for ; s != nil; s = s.nextWait {
		n++
	}
	return n
}

// completeTxn retires the line's transaction, unpins its directory entry,
// and synchronously starts the next queued request if any.
func (h *Home) completeTxn(line addr.Line) {
	if h.dir != nil {
		if e := h.dir.Lookup(line); e != nil {
			e.Pinned = false
		}
	}
	if t, _ := h.txns.Get(line); t != nil {
		h.txns.Delete(line)
		t.onWB = nil
		t.nextFree = h.freeTx
		h.freeTx = t
	}
	h.drainWaiting(line)
}

// drainWaiting starts the next request queued on the line, if any. The
// line's transaction slot must be free.
func (h *Home) drainWaiting(line addr.Line) {
	s, _ := h.waiting.Get(line)
	if s == nil {
		return
	}
	if s.nextWait == nil {
		h.waiting.Delete(line)
	} else {
		h.waiting.Put(line, s.nextWait)
		s.nextWait = nil
	}
	h.start(s)
}

// handleEvict merges a dirty writeback (no transaction slot needed: the
// merge is value-safe at any time, and directory bookkeeping is guarded).
func (h *Home) handleEvict(req msg.Req) {
	h.mergeToL3(req.Line, req.Mask, req.Data)
	if t, _ := h.txns.Get(req.Line); t != nil {
		// An in-flight transaction may be waiting for exactly this data.
		h.run.Edge(trace.EdgeHomeEvictDuringTxn)
		t.wbArrived = true
		if t.onWB != nil {
			cont := t.onWB
			t.onWB = nil
			cont()
		}
		return
	}
	h.run.Edge(trace.EdgeHomeEvictMerge)
	if h.dir != nil {
		if e := h.dir.Lookup(req.Line); e != nil && e.State == directory.Modified && e.Owner == req.Cluster {
			h.dir.Remove(req.Line)
		}
	}
}

// handleReadRel drops a sharer after a clean eviction; the entry is
// deallocated when the sharer count reaches zero (paper §3.2). Stale
// releases (entry already evicted or re-owned) are ignored.
func (h *Home) handleReadRel(req msg.Req) {
	if h.dir == nil {
		return
	}
	e := h.dir.Lookup(req.Line)
	if e == nil || e.State != directory.Shared {
		return
	}
	if !e.Sharers.Remove(req.Cluster) {
		return // stale release: the entry was re-created without this sharer
	}
	if e.Sharers.Empty() && !e.Pinned && !e.Broadcast {
		h.dir.Remove(req.Line)
		h.run.Edge(trace.EdgeHomeReadRelDealloc)
		return
	}
	h.run.Edge(trace.EdgeHomeReadRelSharer)
}

// addSharer records a sharer on a directory entry, marking the Dir4B
// pointer-overflow edge when the broadcast bit is newly set.
func (h *Home) addSharer(e *directory.Entry, cluster int) {
	if directory.AddSharer(h.dir, e, cluster) {
		h.run.Edge(trace.EdgeDirOverflowBcast)
	}
}

// dispatch services a read/write/ifetch holding the line's txn slot.
func (h *Home) dispatch(s *svc) {
	if h.dir != nil {
		if e := h.dir.Lookup(s.req.Line); e != nil {
			e.Pinned = true
			h.dispatchHWHit(s, e)
			return
		}
	}
	// Directory miss: decide the line's coherence domain.
	h.domainOf(s)
}

// domainDecided resumes a dispatched directory miss once the line's
// coherence domain is known (domainOf may have gone to the region table).
func (h *Home) domainDecided(s *svc, sw bool) {
	if sw {
		h.run.Edge(trace.EdgeCohGrantIncoherent)
		s.grant = msg.GrantIncoherent
		h.dataAccess(s, s.grantDataFn)
		return
	}
	h.grantFresh(s)
}

// grantFresh allocates a directory entry for an untracked HWcc line and
// grants the request.
func (h *Home) grantFresh(s *svc) {
	req := s.req
	if h.faults != nil && req.ID != 0 && h.faults.NackAlloc() {
		h.run.NacksSent++
		h.run.Edge(trace.EdgeRecNackInjected)
		h.trace("nack (injected) %v line=%#x cluster=%d", req.Kind, uint64(req.Line), req.Cluster)
		h.finish(s, msg.Resp{Grant: msg.GrantNack})
		return
	}
	var nack func()
	if h.cfg.DirNackOnCapacity && req.ID != 0 {
		nack = s.nackFn
	}
	h.allocEntry(req.Line, nack, s.allocDoneFn)
}

// allocDone finishes grantFresh once a directory entry is allocated.
func (h *Home) allocDone(s *svc, e *directory.Entry) {
	req := s.req
	if req.Kind == msg.ReqWrite {
		e.State = directory.Modified
		e.Owner = req.Cluster
		s.grant = msg.GrantModified
		h.run.Edge(trace.EdgeHomeWriteMissAllocM)
	} else {
		e.State = directory.Shared
		s.grant = msg.GrantShared
		h.run.Edge(trace.EdgeHomeReadMissAllocS)
	}
	h.addSharer(e, req.Cluster)
	h.dataAccess(s, s.grantDataFn)
}

// dispatchHWHit services a request that hit a (now pinned) directory entry.
func (h *Home) dispatchHWHit(s *svc, e *directory.Entry) {
	req := s.req
	switch req.Kind {
	case msg.ReqRead, msg.ReqInstr:
		if e.State == directory.Shared {
			h.run.Edge(trace.EdgeHomeReadHitShared)
			h.addSharer(e, req.Cluster)
			s.grant = msg.GrantShared
			h.dataAccess(s, s.grantDataFn)
			return
		}
		// Modified in another cluster: recall the dirty data, then grant
		// fresh. (The owner is invalidated rather than downgraded; with the
		// L3 as the communication point this costs one re-fetch if the old
		// owner reads again — the paper's rationale for omitting E/O.)
		h.run.Edge(trace.EdgeHomeReadRecallsM)
		h.recallEntry(req.Line, e, s.grantFreshFn)

	case msg.ReqWrite:
		if e.State == directory.Modified {
			if e.Owner == req.Cluster {
				// The requester already owns the line: a duplicate or
				// retransmission that slipped past dedup. Re-grant in place —
				// recalling would probe the requester for its own writeback.
				h.trace("re-grant M line=%#x cluster=%d", uint64(req.Line), req.Cluster)
				s.grant = msg.GrantModified
				h.dataAccess(s, s.grantDataFn)
				return
			}
			// Owned dirty by another cluster.
			h.run.Edge(trace.EdgeHomeWriteRecallsM)
			h.recallEntry(req.Line, e, s.grantFreshFn)
			return
		}
		// Shared: invalidate every other sharer, then grant Modified.
		s.dirEntry = e
		s.wasSharer = e.Sharers.Has(req.Cluster)
		targets := h.probeTargets(e, req.Cluster)
		if len(targets) == 0 {
			h.upgradeFinish(s)
			return
		}
		h.run.Edge(trace.EdgeHomeUpgradeInv)
		s.pending = len(targets)
		for _, c := range targets {
			h.sendProbe(c, msg.Probe{Kind: msg.ProbeInv, Line: req.Line}, s.upgradeRepFn)
		}

	default:
		panic(simerr.Invariant(uint64(h.q.Now()), h.site(), uint64(req.Line.Base()),
			"dispatchHWHit on non-RWI request %v", req.Kind))
	}
}

// upgradeFinish converts a Shared entry to Modified for the upgrading
// requester once every other sharer has been invalidated.
func (h *Home) upgradeFinish(s *svc) {
	e := s.dirEntry
	req := s.req
	s.dirEntry = nil
	e.State = directory.Modified
	e.Owner = req.Cluster
	e.Broadcast = false
	e.Sharers = directory.Sharers{}
	h.addSharer(e, req.Cluster)
	if s.wasSharer {
		h.run.Edge(trace.EdgeHomeUpgradeDataless)
		h.finish(s, msg.Resp{Grant: msg.GrantModified})
		return
	}
	h.run.Edge(trace.EdgeHomeUpgradeData)
	s.grant = msg.GrantModified
	h.dataAccess(s, s.grantDataFn)
}

// atomicFlow performs an uncached atomic or uncached store at the L3. If
// the word's line is hardware-tracked it is recalled first so the
// operation observes the globally latest value. Writes that land in the
// fine-grain region table are snooped: changed bits trigger coherence
// domain transitions, and the requester is not acknowledged until they
// complete (paper §3.6).
func (h *Home) atomicFlow(s *svc) {
	req := s.req
	if h.dir != nil {
		if e := h.dir.Lookup(req.Line); e != nil {
			e.Pinned = true
			h.run.Edge(trace.EdgeHomeAtomicRecall)
			h.recallEntry(req.Line, e, s.atomicRetryFn)
			return
		}
	}
	old := h.store.ReadWord(req.Addr)
	var next uint32
	if req.Kind == msg.ReqUncStore {
		next = req.Operand
	} else {
		next = req.Op.Apply(old, req.Operand, req.Operand2)
	}
	// Observe before the write: the oracle's lazy shadow of this line must
	// capture the pre-update store contents.
	if h.orc != nil {
		h.orc.AtomicObserved(req.Addr, old, next)
	}
	h.store.WriteWord(req.Addr, next)
	h.touchL3Word(req.Addr)

	if h.fine != nil && region.InTableRange(req.Addr) && old != next {
		// The write went through the store directly; drop the host-side
		// region-lookup caches layered over the table.
		h.fine.Invalidate()
		s.atomicOld = old
		h.transitionChanged(req.Addr, old^next, next, s.transDoneFn)
		return
	}
	h.finish(s, msg.Resp{Grant: msg.GrantNone, Value: old})
}

// recallEntry tears down a directory entry under the line's held txn slot:
// sharers are invalidated (Shared) or the owner's dirty data written back
// (Modified), the entry is removed, and cont runs. The line's data ends up
// current in the L3/store and absent from every L2 — exactly the paper's
// Figure 7(a) right-hand states.
func (h *Home) recallEntry(line addr.Line, e *directory.Entry, cont func()) {
	if h.run.Tracing() || Debug {
		h.trace("recall line=%#x state=%v owner=%d", uint64(line), e.State, e.Owner)
	}
	e.Pinned = true
	if e.State == directory.Modified {
		r := h.allocRecall(line, cont)
		h.sendProbe(e.Owner, msg.Probe{Kind: msg.ProbeWB, Line: line}, r.wbRepFn)
		return
	}
	targets := h.probeTargets(e, -1)
	if len(targets) == 0 {
		h.dir.Remove(line)
		cont()
		return
	}
	h.run.Edge(trace.EdgeHomeRecallInv)
	r := h.allocRecall(line, cont)
	r.pending = len(targets)
	for _, c := range targets {
		h.sendProbe(c, msg.Probe{Kind: msg.ProbeInv, Line: line}, r.invRepFn)
	}
}

// absorbReplyData merges dirty data carried on a probe reply (an L2 may
// answer an invalidation with dirty words if its copy was modified).
func (h *Home) absorbReplyData(line addr.Line, rep msg.ProbeReply) {
	if rep.Kind == msg.ReplyData && rep.Mask != 0 {
		h.mergeToL3(line, rep.Mask, rep.Data)
	}
}

// allocEntry obtains a directory entry for line, evicting a victim entry
// (invalidating its sharers — the directory is inclusive of the L2s) when
// the set is full. The fresh entry is pinned; the caller's txn completion
// unpins it. nack, when non-nil, is invoked instead of stalling when every
// candidate way is pinned by in-flight transactions (capacity NACK); when
// nil the allocation silently retries until a way drains.
func (h *Home) allocEntry(line addr.Line, nack func(), cont func(*directory.Entry)) {
	if h.dir.HasRoom(line) {
		e := h.dir.Allocate(line)
		e.Pinned = true
		cont(e)
		return
	}
	v := h.dir.Victim(line)
	if v == nil {
		// Every candidate way is pinned by an in-flight transaction.
		if nack != nil {
			nack()
			return
		}
		// Retry once one drains.
		h.run.Edge(trace.EdgeDirAllocRetryPinned)
		h.q.After(retryDelay, func() { h.allocEntry(line, nack, cont) })
		return
	}
	victimLine := v.Line
	if _, busy := h.txns.Get(victimLine); busy {
		// An unpinned entry whose line has a transaction should not exist,
		// but never race it: back off and retry.
		h.q.After(retryDelay, func() { h.allocEntry(line, nack, cont) })
		return
	}
	h.run.DirEvictions++
	h.run.Edge(trace.EdgeDirCapacityEvict)
	h.txns.Put(victimLine, h.allocTxn())
	h.recallEntry(victimLine, v, func() {
		h.completeTxn(victimLine)
		h.allocEntry(line, nack, cont)
	})
}

// probeTargets lists the clusters to probe for an entry, excluding skip
// (-1 to exclude none). Overflowed Dir4B entries probe every cluster.
// The returned slice is the bank's reusable scratch: callers iterate it
// synchronously (the fan-out loop runs to completion before any other
// bank code can call probeTargets again) and sendProbe does not retain it.
func (h *Home) probeTargets(e *directory.Entry, skip int) []int {
	out := h.targets[:0]
	if e.Broadcast {
		h.run.DirBroadcasts++
		h.run.Edge(trace.EdgeDirBroadcastProbe)
		for c := 0; c < h.cfg.Clusters; c++ {
			if c != skip {
				out = append(out, c)
			}
		}
		h.targets = out
		return out
	}
	for wi, w := range e.Sharers {
		for ; w != 0; w &= w - 1 {
			if c := wi*64 + bits.TrailingZeros64(w); c != skip {
				out = append(out, c)
			}
		}
	}
	h.targets = out
	return out
}

// sendProbe routes a probe to a cluster. The reply is staged back through
// the bank's port via a pooled probeRet record: a probe reply is a message
// arriving at the bank like any other and must serialize through the port
// behind messages that arrived first. Without this, a reply can overtake
// the same cluster's earlier flush or eviction inside the bank — the
// network delivered both in send order, but the flush was still sitting in
// the port pipeline — and a recall would then grant pre-writeback data.
func (h *Home) sendProbe(cluster int, p msg.Probe, onReply func(msg.ProbeReply)) {
	h.run.ProbesSent++
	if h.run.Tracing() || Debug {
		h.trace("%v line=%#x -> cl%d", p.Kind, uint64(p.Line), cluster)
	}
	pr := h.allocProbeRet()
	pr.onReply = onReply
	h.probe(cluster, p, pr.recvFn)
}
