package core

import (
	"cohesion/internal/addr"
	"cohesion/internal/cache"
)

// nopDone is the shared completion for DRAM accesses that need no action
// when they finish (dirty-victim writebacks).
func nopDone() {}

// dataAccess produces the current contents of the request's line at this
// bank, charging DRAM timing on an L3 tag miss, then calls cont (one of
// the record's prebound continuations — grant-with-data or uncached-load).
// The architectural values always live in the backing store (the L3 is
// modelled write-through value-wise; its tags and dirty bits drive timing
// and DRAM traffic only).
func (h *Home) dataAccess(s *svc, cont func([addr.WordsPerLine]uint32)) {
	line := s.req.Line
	if h.l3.Lookup(line) != nil {
		cont(h.store.ReadLine(line))
		return
	}
	s.dataCont = cont
	h.mem.Access(h.bank, line, false, s.dataMissFn)
}

// installL3 allocates a tag for line, paying a DRAM write for a dirty
// victim.
func (h *Home) installL3(line addr.Line) {
	if h.l3.Peek(line) != nil {
		return // a racing fill beat us to it
	}
	_, victim, evicted := h.l3.Allocate(line)
	if evicted && victim.DirtyMask != 0 {
		h.mem.Access(h.bank, victim.Line, true, nopDone)
	}
}

// mergeToL3 applies a masked writeback: values merge into the backing
// store; the L3 tag is write-allocated and marked dirty so a later
// eviction pays the DRAM write.
func (h *Home) mergeToL3(line addr.Line, mask uint8, data [addr.WordsPerLine]uint32) {
	if h.orc != nil {
		h.orc.MemMerged(line, mask, data)
	}
	h.store.MergeLine(line, mask, data)
	e := h.l3.Lookup(line)
	if e == nil {
		h.installL3(line)
		e = h.l3.Lookup(line)
	}
	e.DirtyMask |= mask
	e.ValidMask = cache.FullMask
}

// touchL3Word marks the line of an atomically-updated word dirty if its
// tag is resident; atomics bypass the caches otherwise.
func (h *Home) touchL3Word(a addr.Addr) {
	if e := h.l3.Peek(addr.LineOf(a)); e != nil {
		e.DirtyMask |= cache.WordBit(a)
	}
}

// tableAccess reads the record's fine-grain region table word (set in
// s.tableWord) and resumes via tableRead. When the table is cached in the
// L3 (the default; the table is outside the L2 coherence protocol so this
// is safe, paper §3.4) a resident tag answers after the table-port
// latency; otherwise the read goes to DRAM.
func (h *Home) tableAccess(s *svc) {
	line := addr.LineOf(s.tableWord)
	if h.cfg.TableCachedInL3 && h.l3.Lookup(line) != nil {
		// Minimum one extra cycle for the serialized table lookup.
		h.q.After(1, s.tableReadFn)
		return
	}
	h.mem.Access(h.bank, line, false, s.tableMissFn)
}
