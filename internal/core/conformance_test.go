package core

import (
	"fmt"
	"testing"

	"cohesion/internal/config"
	"cohesion/internal/directory"
	"cohesion/internal/msg"
)

// Conformance matrix: every (initial directory state) x (incoming request)
// combination, with the expected probes, grant, and final directory state.
// This is the home controller's MSI transition table, checked exhaustively.

type dirState uint8

const (
	stNone dirState = iota // no entry
	stS1                   // Shared, cluster 0
	stS2                   // Shared, clusters 0 and 1
	stM0                   // Modified, owner cluster 0
)

func (s dirState) String() string {
	return [...]string{"I", "S{0}", "S{0,1}", "M0"}[s]
}

// prepare drives the home into the given initial state for testLine.
func prepare(t *testing.T, h *harness, s dirState) {
	t.Helper()
	h.auto = func(p msg.Probe, cluster int) *msg.ProbeReply {
		t.Fatalf("prepare should not need probes (state %v)", s)
		return nil
	}
	switch s {
	case stNone:
	case stS1:
		h.send(rd(0, testLine))
	case stS2:
		h.send(rd(0, testLine))
		h.send(rd(1, testLine))
	case stM0:
		h.send(wr(0, testLine))
	}
	h.runAll()
	h.probes = nil
	h.auto = nil
	h.run.ProbesSent = 0
}

type expect struct {
	grant      msg.Grant
	hasData    bool
	probeKinds []msg.ProbeKind // in issue order; ack'd automatically
	finalState dirState
}

func TestConformanceMatrix(t *testing.T) {
	cases := []struct {
		initial dirState
		req     msg.Req
		want    expect
	}{
		// --- reads ---
		{stNone, rd(2, testLine), expect{msg.GrantShared, true, nil, stS1orOther}},
		{stS1, rd(1, testLine), expect{msg.GrantShared, true, nil, stS2}},
		{stS2, rd(2, testLine), expect{msg.GrantShared, true, nil, stS2}}, // superset
		{stM0, rd(1, testLine), expect{msg.GrantShared, true, []msg.ProbeKind{msg.ProbeWB}, stS1orOther}},

		// --- writes ---
		{stNone, wr(2, testLine), expect{msg.GrantModified, true, nil, stMOther}},
		{stS1, wr(0, testLine), expect{msg.GrantModified, false, nil, stM0}},                              // sole-sharer upgrade
		{stS1, wr(1, testLine), expect{msg.GrantModified, true, []msg.ProbeKind{msg.ProbeInv}, stMOther}}, // non-sharer write
		{stS2, wr(0, testLine), expect{msg.GrantModified, false, []msg.ProbeKind{msg.ProbeInv}, stM0}},    // upgrade, other sharer probed
		{stM0, wr(1, testLine), expect{msg.GrantModified, true, []msg.ProbeKind{msg.ProbeWB}, stMOther}},  // ownership transfer

		// --- instruction fetches behave as reads ---
		{stNone, msg.Req{Kind: msg.ReqInstr, Cluster: 2, Line: testLine}, expect{msg.GrantShared, true, nil, stS1orOther}},
		{stM0, msg.Req{Kind: msg.ReqInstr, Cluster: 1, Line: testLine}, expect{msg.GrantShared, true, []msg.ProbeKind{msg.ProbeWB}, stS1orOther}},

		// --- atomics recall whatever is cached, then untrack ---
		{stNone, atomicReq(2), expect{msg.GrantNone, false, nil, stNone}},
		{stS1, atomicReq(2), expect{msg.GrantNone, false, []msg.ProbeKind{msg.ProbeInv}, stNone}},
		{stS2, atomicReq(2), expect{msg.GrantNone, false, []msg.ProbeKind{msg.ProbeInv, msg.ProbeInv}, stNone}},
		{stM0, atomicReq(2), expect{msg.GrantNone, false, []msg.ProbeKind{msg.ProbeWB}, stNone}},
	}

	for _, c := range cases {
		c := c
		t.Run(fmt.Sprintf("%v/%v-cl%d", c.initial, c.req.Kind, c.req.Cluster), func(t *testing.T) {
			h := newHarness(t, config.HWcc, config.DirInfinite, 0, 0, 4)
			prepare(t, h, c.initial)

			var issued []msg.ProbeKind
			h.auto = func(p msg.Probe, cluster int) *msg.ProbeReply {
				issued = append(issued, p.Kind)
				if p.Kind == msg.ProbeWB {
					return &msg.ProbeReply{Kind: msg.ReplyData, Mask: 1}
				}
				return &msg.ProbeReply{Kind: msg.ReplyAck}
			}
			box := h.send(c.req)
			h.runAll()
			if !box.done {
				t.Fatal("request never completed")
			}
			if box.resp.Grant != c.want.grant {
				t.Fatalf("grant = %v, want %v", box.resp.Grant, c.want.grant)
			}
			if box.resp.HasData != c.want.hasData {
				t.Fatalf("hasData = %v, want %v", box.resp.HasData, c.want.hasData)
			}
			if len(issued) != len(c.want.probeKinds) {
				t.Fatalf("probes = %v, want %v", issued, c.want.probeKinds)
			}
			for i, k := range c.want.probeKinds {
				if issued[i] != k {
					t.Fatalf("probe %d = %v, want %v (all %v)", i, issued[i], k, issued)
				}
			}
			checkFinal(t, h, c.req, c.want.finalState)
		})
	}
}

// Synthetic final-state markers for requester-dependent outcomes.
const (
	stS1orOther dirState = 100 + iota // Shared with exactly the requester
	stMOther                          // Modified, owner = requester
)

func atomicReq(cluster int) msg.Req {
	return msg.Req{
		Kind: msg.ReqAtomic, Cluster: cluster, Line: testLine,
		Addr: testLine.Base(), Op: msg.AtomicAdd, Operand: 1,
	}
}

func checkFinal(t *testing.T, h *harness, req msg.Req, want dirState) {
	t.Helper()
	e := h.dir().Lookup(testLine)
	switch want {
	case stNone:
		if e != nil {
			t.Fatalf("final entry = %+v, want none", e)
		}
	case stS1orOther:
		if e == nil || e.State != directory.Shared || !e.Sharers.Has(req.Cluster) || e.Sharers.Count() != 1 {
			t.Fatalf("final entry = %+v, want S{requester}", e)
		}
	case stS2:
		if e == nil || e.State != directory.Shared || e.Sharers.Count() < 2 || !e.Sharers.Has(req.Cluster) {
			t.Fatalf("final entry = %+v, want S including requester and another", e)
		}
	case stM0:
		if e == nil || e.State != directory.Modified || e.Owner != 0 {
			t.Fatalf("final entry = %+v, want M owner 0", e)
		}
	case stMOther:
		if e == nil || e.State != directory.Modified || e.Owner != req.Cluster {
			t.Fatalf("final entry = %+v, want M owner %d", e, req.Cluster)
		}
	default:
		t.Fatalf("bad expectation %v", want)
	}
	if e != nil && e.Pinned {
		t.Fatal("entry left pinned after completion")
	}
	if h.home.Pending() {
		t.Fatal("home left pending")
	}
}

// Every terminal state of the matrix must also be reachable repeatedly:
// chain all transitions on one line and end consistent.
func TestConformanceChained(t *testing.T) {
	h := newHarness(t, config.HWcc, config.DirInfinite, 0, 0, 4)
	h.auto = func(p msg.Probe, cluster int) *msg.ProbeReply {
		if p.Kind == msg.ProbeWB {
			return &msg.ProbeReply{Kind: msg.ReplyData, Mask: 1}
		}
		return &msg.ProbeReply{Kind: msg.ReplyAck}
	}
	seq := []msg.Req{
		rd(0, testLine), rd(1, testLine), rd(2, testLine), // S{0,1,2}
		wr(3, testLine), // M3 after 3 invs
		rd(0, testLine), // recall, S{0}
		wr(0, testLine), // silent upgrade
		atomicReq(1),    // recall + untrack
		rd(2, testLine), // fresh S{2}
	}
	for i, req := range seq {
		box := h.send(req)
		h.runAll()
		if !box.done {
			t.Fatalf("step %d (%v) wedged", i, req.Kind)
		}
	}
	e := h.dir().Lookup(testLine)
	if e == nil || e.State != directory.Shared || !e.Sharers.Has(2) || e.Sharers.Count() != 1 {
		t.Fatalf("final entry = %+v", e)
	}
}
