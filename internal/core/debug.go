package core

// Debug mirrors protocol trace events to stdout in addition to the run's
// bounded TraceLog; tests may flip it while diagnosing failures.
var Debug = false
