package core

// Debug mirrors protocol trace events to stdout in addition to the run's
// bounded TraceLog; tests may flip it while diagnosing failures. The
// stdout mirror prints the same trace.Record the TraceLog and structured
// sink retain, so every line carries the sim-time column regardless of
// how many words the event detail has.
var Debug = false
