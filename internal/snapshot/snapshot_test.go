package snapshot

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

type payload struct {
	Name  string `json:"name"`
	Count uint64 `json:"count"`
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	in := payload{Name: "heat", Count: 42}
	b, err := Encode(KindRun, 7, in)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	var out payload
	env, err := Decode(b, KindRun, &out)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if env.Seq != 7 || env.Kind != KindRun || env.Version != Version {
		t.Fatalf("envelope = %+v", env)
	}
	if out != in {
		t.Fatalf("payload round-trip: got %+v want %+v", out, in)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := Decode([]byte("not json at all"), KindRun, nil); !errors.Is(err, ErrNotSnapshot) {
		t.Fatalf("garbage: err = %v, want ErrNotSnapshot", err)
	}
	if _, err := Decode([]byte(`{"magic":"something-else","version":1}`), KindRun, nil); !errors.Is(err, ErrNotSnapshot) {
		t.Fatalf("wrong magic: err = %v, want ErrNotSnapshot", err)
	}
}

func TestDecodeRejectsVersionKindChecksum(t *testing.T) {
	b, err := Encode(KindRun, 1, payload{Name: "x"})
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}

	bad := strings.Replace(string(b), `"version":1`, `"version":99`, 1)
	if _, err := Decode([]byte(bad), KindRun, nil); !errors.Is(err, ErrVersion) {
		t.Fatalf("version: err = %v, want ErrVersion", err)
	}

	if _, err := Decode(b, KindSweep, nil); !errors.Is(err, ErrKind) {
		t.Fatalf("kind: err = %v, want ErrKind", err)
	}

	corrupt := strings.Replace(string(b), `"name":"x"`, `"name":"y"`, 1)
	if _, err := Decode([]byte(corrupt), KindRun, nil); !errors.Is(err, ErrChecksum) {
		t.Fatalf("checksum: err = %v, want ErrChecksum", err)
	}
}

func TestWriteAtomicAndLoad(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	if err := WriteAtomic(path, KindRun, 3, payload{Name: "fft", Count: 9}); err != nil {
		t.Fatalf("WriteAtomic: %v", err)
	}
	if _, err := os.Stat(TmpPath(path)); !os.IsNotExist(err) {
		t.Fatalf("temp file left behind after commit: %v", err)
	}
	var out payload
	env, err := Load(path, KindRun, &out)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if env.Seq != 3 || out.Name != "fft" || out.Count != 9 {
		t.Fatalf("loaded env=%+v payload=%+v", env, out)
	}
}

// A kill during the staged write leaves a torn temp file next to a
// complete previous snapshot; recovery must use the previous snapshot.
func TestLoadRecoverTornTmpFallsBackToCommitted(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	if err := WriteAtomic(path, KindRun, 5, payload{Name: "good", Count: 5}); err != nil {
		t.Fatalf("WriteAtomic: %v", err)
	}
	full, err := Encode(KindRun, 6, payload{Name: "torn", Count: 6})
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	if err := os.WriteFile(TmpPath(path), full[:len(full)/2], 0o644); err != nil {
		t.Fatalf("writing torn tmp: %v", err)
	}

	var out payload
	env, src, err := LoadRecover(path, KindRun, &out)
	if err != nil {
		t.Fatalf("LoadRecover: %v", err)
	}
	if src != path || env.Seq != 5 || out.Name != "good" {
		t.Fatalf("recovered src=%s env=%+v payload=%+v, want committed snapshot", src, env, out)
	}
}

// A kill between the staged fsync and the rename leaves the newest
// snapshot in the temp file; recovery must prefer it by sequence.
func TestLoadRecoverNewerValidTmpWins(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	if err := WriteAtomic(path, KindRun, 5, payload{Name: "old", Count: 5}); err != nil {
		t.Fatalf("WriteAtomic: %v", err)
	}
	newer, err := Encode(KindRun, 6, payload{Name: "new", Count: 6})
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	if err := os.WriteFile(TmpPath(path), newer, 0o644); err != nil {
		t.Fatalf("writing tmp: %v", err)
	}

	var out payload
	env, src, err := LoadRecover(path, KindRun, &out)
	if err != nil {
		t.Fatalf("LoadRecover: %v", err)
	}
	if src != TmpPath(path) || env.Seq != 6 || out.Name != "new" {
		t.Fatalf("recovered src=%s env=%+v payload=%+v, want temp snapshot", src, env, out)
	}
}

func TestLoadRecoverTornCommittedUsesTmp(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	full, err := Encode(KindRun, 2, payload{Name: "tmp-only", Count: 2})
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	if err := os.WriteFile(path, []byte("torn"), 0o644); err != nil {
		t.Fatalf("writing torn committed file: %v", err)
	}
	if err := os.WriteFile(TmpPath(path), full, 0o644); err != nil {
		t.Fatalf("writing tmp: %v", err)
	}

	var out payload
	_, src, err := LoadRecover(path, KindRun, &out)
	if err != nil {
		t.Fatalf("LoadRecover: %v", err)
	}
	if src != TmpPath(path) || out.Name != "tmp-only" {
		t.Fatalf("recovered src=%s payload=%+v, want temp snapshot", src, out)
	}
}

func TestLoadRecoverNothingValid(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	if _, _, err := LoadRecover(path, KindRun, nil); err == nil {
		t.Fatal("LoadRecover on missing files: want error")
	}
	if err := os.WriteFile(path, []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadRecover(path, KindRun, nil); !errors.Is(err, ErrNotSnapshot) {
		t.Fatalf("LoadRecover on junk: err = %v, want ErrNotSnapshot", err)
	}
}

func TestDigestsDiff(t *testing.T) {
	a := Digests{Events: 10, Cycle: 5, Mem: 1, Stats: 2}
	if d := a.Diff(a); d != nil {
		t.Fatalf("self-diff = %v, want nil", d)
	}
	b := a
	b.Mem = 99
	b.Inflight = 7
	d := a.Diff(b)
	if len(d) != 2 || !strings.HasPrefix(d[0], "mem ") || !strings.HasPrefix(d[1], "inflight ") {
		t.Fatalf("diff = %v, want mem then inflight", d)
	}
}

func TestDiffStates(t *testing.T) {
	a := &MachineState{
		Mem:      []MemLine{{Line: 1, Data: [8]uint32{1}}, {Line: 2}},
		Inflight: []string{"cl0: txn 1"},
	}
	b := &MachineState{
		Mem:      []MemLine{{Line: 1, Data: [8]uint32{2}}, {Line: 2}},
		Inflight: []string{"cl0: txn 1", "cl1: txn 9"},
	}
	out := DiffStates(a, b)
	joined := strings.Join(out, "\n")
	if !strings.Contains(joined, "mem: first differing line 0x1") {
		t.Fatalf("diff missing mem line: %v", out)
	}
	if !strings.Contains(joined, "inflight: first differing report line #1") {
		t.Fatalf("diff missing inflight: %v", out)
	}
	if out := DiffStates(a, a); out != nil {
		t.Fatalf("self-diff = %v, want nil", out)
	}
}

func TestBisect(t *testing.T) {
	// Divergence begins at event 137: agree(n) is true for n < 137.
	const first = 137
	probes := 0
	at, err := Bisect(0, 10_000, func(n uint64) (bool, error) {
		probes++
		return n < first, nil
	})
	if err != nil {
		t.Fatalf("Bisect: %v", err)
	}
	if at != first {
		t.Fatalf("Bisect = %d, want %d", at, first)
	}
	if probes > 15 {
		t.Fatalf("Bisect used %d probes for a 10k range, want <= ~log2", probes)
	}

	// Divergence at the very first candidate.
	at, err = Bisect(10, 11, func(n uint64) (bool, error) { return false, nil })
	if err != nil || at != 11 {
		t.Fatalf("Bisect tight range = %d, %v", at, err)
	}

	// Probe errors propagate.
	wantErr := errors.New("replay failed")
	if _, err := Bisect(0, 100, func(n uint64) (bool, error) { return false, wantErr }); !errors.Is(err, wantErr) {
		t.Fatalf("Bisect probe error: %v", err)
	}

	// Empty range is an error.
	if _, err := Bisect(5, 5, nil); err == nil {
		t.Fatal("Bisect empty range: want error")
	}
}

func TestHasherMatchesFNVReference(t *testing.T) {
	// Two different mixes must differ; same mix must be stable.
	h1 := NewHasher()
	h1.U64(1)
	h1.U32(2)
	h1.Bool(true)
	h1.String("abc")
	h2 := NewHasher()
	h2.U64(1)
	h2.U32(2)
	h2.Bool(true)
	h2.String("abc")
	if h1.Sum() != h2.Sum() {
		t.Fatal("hasher not deterministic")
	}
	h3 := NewHasher()
	h3.U64(1)
	h3.U32(2)
	h3.Bool(false)
	h3.String("abc")
	if h1.Sum() == h3.Sum() {
		t.Fatal("hasher ignored a boolean")
	}
}
