// Package snapshot is the checkpoint/restore substrate: a versioned,
// checksummed file envelope with crash-safe atomic writes, plus the
// serializable data types and per-layer digests that let a resumed run
// prove it reconstructed the exact machine state the snapshot recorded.
//
// Crash-safety protocol. A snapshot is always written to <path>.tmp
// first, fsynced, then renamed over <path>. A reader that finds <path>
// torn (or missing) falls back to <path>.tmp; when both decode, the one
// with the higher sequence number wins. A SIGKILL at any instant
// therefore leaves at most one torn file and at least one complete,
// checksummed snapshot to resume from.
//
// Determinism contract. The simulator's event loop is a closure-driven
// discrete-event engine whose core programs run as coroutines, so a
// snapshot does not serialize continuations. Instead it records the
// run's full data state (memory image, cache and directory entries,
// region tables, stats) plus a per-layer digest vector at an exact
// executed-event count. Restore rebuilds the machine from the recorded
// spec and replays deterministically to that event count — replay from
// the same seeds is bit-exact, which PRs 1-6 lock in with fingerprint
// tests — then verifies every layer digest before continuing. A resumed
// run is therefore bit-identical to an uninterrupted one, and any
// nondeterminism is caught at the resume point and named by layer
// instead of silently corrupting results.
package snapshot

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
)

// Magic identifies snapshot files; Version is the envelope format
// version. Payload-shape changes bump Version so stale snapshots are
// rejected with a clear error instead of misdecoding.
const (
	Magic   = "cohesion-snapshot"
	Version = 1
)

// Kind distinguishes the snapshot payloads carried by the envelope.
type Kind string

// Registered snapshot kinds.
const (
	KindRun   Kind = "run"   // one simulation (RunSnapshot at the root)
	KindSweep Kind = "sweep" // an experiment sweep's per-cell results
	KindFuzz  Kind = "fuzz"  // a fuzz batch's progress counters
	KindJob   Kind = "job"   // a job-service record (internal/serve)
)

// Structured load errors; match with errors.Is.
var (
	ErrNotSnapshot = errors.New("snapshot: not a snapshot file")
	ErrVersion     = errors.New("snapshot: unsupported snapshot version")
	ErrKind        = errors.New("snapshot: wrong snapshot kind")
	ErrChecksum    = errors.New("snapshot: checksum mismatch (torn or corrupted write)")

	// ErrDiverged reports that a resumed run's replayed state did not
	// match the digests recorded in its snapshot (see Digests.Diff).
	ErrDiverged = errors.New("snapshot: resumed run diverged from recorded state")
)

// Envelope is the on-disk frame around every snapshot payload.
type Envelope struct {
	Magic    string          `json:"magic"`
	Version  int             `json:"version"`
	Kind     Kind            `json:"kind"`
	Seq      uint64          `json:"seq"`      // writer-monotonic (event count, cell count, iteration)
	Checksum string          `json:"checksum"` // sha256 of the payload bytes
	Payload  json.RawMessage `json:"payload"`
}

// Encode frames a payload value in a checksummed envelope.
func Encode(kind Kind, seq uint64, payload any) ([]byte, error) {
	pb, err := json.Marshal(payload)
	if err != nil {
		return nil, fmt.Errorf("snapshot: encoding %s payload: %w", kind, err)
	}
	sum := sha256.Sum256(pb)
	env := Envelope{
		Magic:    Magic,
		Version:  Version,
		Kind:     kind,
		Seq:      seq,
		Checksum: hex.EncodeToString(sum[:]),
		Payload:  pb,
	}
	b, err := json.Marshal(env)
	if err != nil {
		return nil, fmt.Errorf("snapshot: encoding envelope: %w", err)
	}
	return append(b, '\n'), nil
}

// Decode validates an envelope (magic, version, kind, checksum) and
// unmarshals its payload into out.
func Decode(b []byte, kind Kind, out any) (Envelope, error) {
	var env Envelope
	if err := json.Unmarshal(b, &env); err != nil {
		return env, fmt.Errorf("%w: %v", ErrNotSnapshot, err)
	}
	if env.Magic != Magic {
		return env, fmt.Errorf("%w: magic %q", ErrNotSnapshot, env.Magic)
	}
	if env.Version != Version {
		return env, fmt.Errorf("%w: file version %d, want %d", ErrVersion, env.Version, Version)
	}
	if env.Kind != kind {
		return env, fmt.Errorf("%w: file holds %q, want %q", ErrKind, env.Kind, kind)
	}
	sum := sha256.Sum256(env.Payload)
	if hex.EncodeToString(sum[:]) != env.Checksum {
		return env, ErrChecksum
	}
	if out != nil {
		if err := json.Unmarshal(env.Payload, out); err != nil {
			return env, fmt.Errorf("snapshot: decoding %s payload: %w", kind, err)
		}
	}
	return env, nil
}

// TmpPath is the temp-file name WriteAtomic stages a snapshot in before
// the rename; LoadRecover checks it as the fallback after a crash.
func TmpPath(path string) string { return path + ".tmp" }

// WriteAtomic stages the envelope in <path>.tmp, fsyncs it, then renames
// it over <path>, so a reader never observes a half-written <path> and a
// crash at any point leaves a complete previous snapshot behind.
func WriteAtomic(path string, kind Kind, seq uint64, payload any) error {
	b, err := Encode(kind, seq, payload)
	if err != nil {
		return err
	}
	tmp := TmpPath(path)
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("snapshot: %w", err)
	}
	if _, err := f.Write(b); err != nil {
		f.Close()
		return fmt.Errorf("snapshot: writing %s: %w", tmp, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("snapshot: syncing %s: %w", tmp, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("snapshot: closing %s: %w", tmp, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("snapshot: committing %s: %w", path, err)
	}
	return nil
}

// Load reads and validates one snapshot file.
func Load(path string, kind Kind, out any) (Envelope, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return Envelope{}, fmt.Errorf("snapshot: %w", err)
	}
	env, err := Decode(b, kind, out)
	if err != nil {
		return env, fmt.Errorf("snapshot file %s: %w", path, err)
	}
	return env, nil
}

// LoadRecover loads the newest valid snapshot among <path> and
// <path>.tmp (a crash mid-write can leave either torn; a crash between
// the staged write and the rename leaves the newer snapshot in the temp
// file). It returns the envelope, the file actually used, and an error
// only when no valid snapshot exists at either location.
func LoadRecover(path string, kind Kind, out any) (Envelope, string, error) {
	type candidate struct {
		env Envelope
		src string
		raw json.RawMessage
	}
	var best *candidate
	var firstErr error
	for _, src := range []string{path, TmpPath(path)} {
		b, err := os.ReadFile(src)
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("snapshot: %w", err)
			}
			continue
		}
		env, err := Decode(b, kind, nil)
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("snapshot file %s: %w", src, err)
			}
			continue
		}
		if best == nil || env.Seq > best.env.Seq {
			best = &candidate{env: env, src: src, raw: env.Payload}
		}
	}
	if best == nil {
		if firstErr == nil {
			firstErr = fmt.Errorf("snapshot: no snapshot at %s", path)
		}
		return Envelope{}, "", firstErr
	}
	if out != nil {
		if err := json.Unmarshal(best.raw, out); err != nil {
			return best.env, best.src, fmt.Errorf("snapshot file %s: decoding %s payload: %w", best.src, kind, err)
		}
	}
	return best.env, best.src, nil
}
