package snapshot

import (
	"fmt"
	"sort"

	"cohesion/internal/addr"
	"cohesion/internal/stats"
)

// Hasher is the FNV-1a accumulator the digest layers share. It matches
// the mixing the DRAM store's Fingerprint uses, so every layer digest in
// the system speaks the same 64-bit language.
type Hasher struct{ h uint64 }

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// NewHasher returns a fresh accumulator.
func NewHasher() *Hasher { return &Hasher{h: fnvOffset} }

// U64 mixes one 64-bit value, a byte at a time.
func (s *Hasher) U64(v uint64) {
	for i := 0; i < 8; i++ {
		s.h ^= v & 0xff
		s.h *= fnvPrime
		v >>= 8
	}
}

// U32 mixes one 32-bit value.
func (s *Hasher) U32(v uint32) { s.U64(uint64(v)) }

// U8 mixes one byte.
func (s *Hasher) U8(v uint8) {
	s.h ^= uint64(v)
	s.h *= fnvPrime
}

// Bool mixes one boolean.
func (s *Hasher) Bool(v bool) {
	if v {
		s.U8(1)
	} else {
		s.U8(0)
	}
}

// Int mixes one int.
func (s *Hasher) Int(v int) { s.U64(uint64(int64(v))) }

// String mixes a length-prefixed string.
func (s *Hasher) String(v string) {
	s.U64(uint64(len(v)))
	for i := 0; i < len(v); i++ {
		s.U8(v[i])
	}
}

// Sum returns the accumulated digest.
func (s *Hasher) Sum() uint64 { return s.h }

// Digests is the per-layer digest vector captured at one between-events
// boundary. Comparing vectors localizes a resume divergence to the first
// simulator layer whose replayed state differs from the recorded one.
type Digests struct {
	Events   uint64 `json:"events"`   // executed events at the capture point
	Cycle    uint64 `json:"cycle"`    // simulated cycle at the capture point
	QueueLen uint64 `json:"queuelen"` // events pending in the queue
	Mem      uint64 `json:"mem"`      // DRAM store image
	L2       uint64 `json:"l2"`       // every cluster's L2 entries (state, masks, data)
	Dir      uint64 `json:"dir"`      // every home bank's directory entries
	Region   uint64 `json:"region"`   // coarse region table (the fine bitmap lives in Mem)
	Oracle   uint64 `json:"oracle"`   // oracle shadow state (0 when disabled)
	Stats    uint64 `json:"stats"`    // cumulative Run counters
	Inflight uint64 `json:"inflight"` // outstanding L2/home transactions and timers
}

// layer names in fixed report order.
var digestLayers = []struct {
	name string
	get  func(*Digests) uint64
}{
	{"events", func(d *Digests) uint64 { return d.Events }},
	{"cycle", func(d *Digests) uint64 { return d.Cycle }},
	{"queuelen", func(d *Digests) uint64 { return d.QueueLen }},
	{"mem", func(d *Digests) uint64 { return d.Mem }},
	{"l2", func(d *Digests) uint64 { return d.L2 }},
	{"dir", func(d *Digests) uint64 { return d.Dir }},
	{"region", func(d *Digests) uint64 { return d.Region }},
	{"oracle", func(d *Digests) uint64 { return d.Oracle }},
	{"stats", func(d *Digests) uint64 { return d.Stats }},
	{"inflight", func(d *Digests) uint64 { return d.Inflight }},
}

// Diff names every layer whose digest differs between d and o, in fixed
// catalog order. An empty result means the vectors agree bit-for-bit.
func (d Digests) Diff(o Digests) []string {
	var out []string
	for _, l := range digestLayers {
		if a, b := l.get(&d), l.get(&o); a != b {
			out = append(out, fmt.Sprintf("%s (%#x vs %#x)", l.name, a, b))
		}
	}
	return out
}

// MemLine is one written line of the DRAM store.
type MemLine struct {
	Line uint64                    `json:"line"`
	Data [addr.WordsPerLine]uint32 `json:"data"`
}

// CacheLine is one valid L2 entry of one cluster.
type CacheLine struct {
	Cluster    int                       `json:"cluster"`
	Line       uint64                    `json:"line"`
	State      uint8                     `json:"state"`
	Incoherent bool                      `json:"incoherent,omitempty"`
	Pinned     bool                      `json:"pinned,omitempty"`
	ValidMask  uint8                     `json:"valid_mask"`
	DirtyMask  uint8                     `json:"dirty_mask,omitempty"`
	Data       [addr.WordsPerLine]uint32 `json:"data"`
}

// DirEntry is one allocated directory entry of one home bank.
type DirEntry struct {
	Bank      int    `json:"bank"`
	Line      uint64 `json:"line"`
	State     uint8  `json:"state"`
	Owner     int    `json:"owner"`
	Sharers   []int  `json:"sharers,omitempty"`
	Broadcast bool   `json:"broadcast,omitempty"`
	Pinned    bool   `json:"pinned,omitempty"`
}

// RegionRange is one coarse-grain SWcc range.
type RegionRange struct {
	Base uint64 `json:"base"`
	Size uint64 `json:"size"`
}

// MachineState is the complete serialized data state of one machine at a
// between-events boundary: the memory image, the dirty (and clean) cache
// lines, the directory machine states, the Cohesion region map, the
// in-flight transaction report, the oracle digest, and cumulative stats.
// It is what a checkpoint persists and what a divergence dump contains.
type MachineState struct {
	Events   uint64         `json:"events"`
	Cycle    uint64         `json:"cycle"`
	Digests  Digests        `json:"digests"`
	Mem      []MemLine      `json:"mem"`
	L2       []CacheLine    `json:"l2,omitempty"`
	Dir      []DirEntry     `json:"dir,omitempty"`
	Coarse   []RegionRange  `json:"coarse,omitempty"`
	Inflight []string       `json:"inflight,omitempty"` // outstanding-transaction report lines
	Stats    stats.Snapshot `json:"stats"`
}

// DiffStates reports, layer by layer, where two machine states differ —
// the post-mortem companion to Digests.Diff for divergence dumps. It
// names the first differing item per layer rather than dumping all of
// both states.
func DiffStates(a, b *MachineState) []string {
	var out []string
	if d := a.Digests.Diff(b.Digests); len(d) > 0 {
		out = append(out, "digests: "+fmt.Sprint(d))
	}
	if line, ok := firstMemDiff(a.Mem, b.Mem); !ok {
		out = append(out, fmt.Sprintf("mem: first differing line %#x", line))
	}
	if i := firstStringDiff(cacheKeys(a.L2), cacheKeys(b.L2)); i != "" {
		out = append(out, "l2: first differing entry "+i)
	}
	if i := firstStringDiff(dirKeys(a.Dir), dirKeys(b.Dir)); i != "" {
		out = append(out, "dir: first differing entry "+i)
	}
	if i := firstStringDiff(a.Inflight, b.Inflight); i != "" {
		out = append(out, "inflight: first differing report line "+i)
	}
	return out
}

func firstMemDiff(a, b []MemLine) (uint64, bool) {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return a[i].Line, false
		}
	}
	if len(a) != len(b) {
		longer := a
		if len(b) > len(a) {
			longer = b
		}
		return longer[n].Line, false
	}
	return 0, true
}

func cacheKeys(ls []CacheLine) []string {
	out := make([]string, len(ls))
	for i, l := range ls {
		out[i] = fmt.Sprintf("cl%d line %#x st%d v%#x d%#x %v", l.Cluster, l.Line, l.State, l.ValidMask, l.DirtyMask, l.Data)
	}
	return out
}

func dirKeys(es []DirEntry) []string {
	out := make([]string, len(es))
	for i, e := range es {
		out[i] = fmt.Sprintf("bank%d line %#x st%d own%d sh%v bc%v", e.Bank, e.Line, e.State, e.Owner, e.Sharers, e.Broadcast)
	}
	return out
}

func firstStringDiff(a, b []string) string {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return fmt.Sprintf("#%d: %q vs %q", i, a[i], b[i])
		}
	}
	if len(a) != len(b) {
		return fmt.Sprintf("#%d: present in one state only", n)
	}
	return ""
}

// SortMem orders a memory dump by line address (capture helpers build it
// sorted already; dump consumers can re-sort defensively).
func SortMem(mem []MemLine) {
	sort.Slice(mem, func(i, j int) bool { return mem[i].Line < mem[j].Line })
}

// Bisect locates the first point in (lo, hi] at which agree reports
// false, given that agree(lo) held (lo itself is never probed) and
// agree(hi) did not. The resume self-check uses it with "replay the run
// twice to event N and compare digests" as the predicate, narrowing a
// whole-run divergence to the first divergent event in O(log n) replays.
func Bisect(lo, hi uint64, agree func(at uint64) (bool, error)) (uint64, error) {
	if hi <= lo {
		return hi, fmt.Errorf("snapshot: bisect range [%d, %d] is empty", lo, hi)
	}
	for hi-lo > 1 {
		mid := lo + (hi-lo)/2
		ok, err := agree(mid)
		if err != nil {
			return 0, fmt.Errorf("snapshot: bisect probe at event %d: %w", mid, err)
		}
		if ok {
			lo = mid
		} else {
			hi = mid
		}
	}
	return hi, nil
}
