// Package prof is a minimal reader for the pprof profile.proto format —
// just enough to aggregate flat/cumulative costs per function from the
// CPU and allocation profiles the Go runtime emits. It exists so the
// repository's profiling harness (cohesion-profile, cohesion-bench's
// hotpath section) can attribute profile weight without an external
// pprof dependency; anything deeper (graphs, source listing) is
// `go tool pprof` territory.
//
// The subset parsed: sample values, location → line → function chains,
// function names, and sample-type metadata. Unknown fields are skipped
// per protobuf wire rules, so future profile.proto additions are
// harmless.
package prof

import (
	"compress/gzip"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Profile is a decoded pprof profile, resolved to function names.
type Profile struct {
	// SampleTypes names each value column (e.g. "samples/count",
	// "cpu/nanoseconds" for a CPU profile; "alloc_objects/count",
	// "alloc_space/bytes" for an allocation profile).
	SampleTypes []string

	// Samples holds one entry per profile sample: the stack as function
	// names, leaf (innermost frame) first, and the value columns.
	Samples []Sample
}

// Sample is one stack sample with its value columns.
type Sample struct {
	Stack  []string // function names, leaf first
	Values []int64
}

// Cost is one function's aggregated weight in a profile.
type Cost struct {
	Name string
	Flat int64 // weight of samples with this function as the leaf
	Cum  int64 // weight of samples with this function anywhere on the stack
}

// Parse decodes a pprof profile from r. Both gzip-compressed (the
// runtime's output) and raw protobuf bytes are accepted.
func Parse(r io.Reader) (*Profile, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	if len(data) >= 2 && data[0] == 0x1f && data[1] == 0x8b {
		zr, err := gzip.NewReader(strings.NewReader(string(data)))
		if err != nil {
			return nil, fmt.Errorf("prof: gunzip: %w", err)
		}
		if data, err = io.ReadAll(zr); err != nil {
			return nil, fmt.Errorf("prof: gunzip: %w", err)
		}
	}
	return decodeProfile(data)
}

// TopN aggregates per-function flat/cumulative weight over the given
// value column and returns the n heaviest by flat cost (all of them if
// n <= 0), plus the column's total.
func (p *Profile) TopN(valueIndex, n int) (costs []Cost, total int64) {
	agg := map[string]*Cost{}
	for _, s := range p.Samples {
		if valueIndex >= len(s.Values) {
			continue
		}
		v := s.Values[valueIndex]
		total += v
		seen := map[string]bool{}
		for i, name := range s.Stack {
			c := agg[name]
			if c == nil {
				c = &Cost{Name: name}
				agg[name] = c
			}
			if i == 0 {
				c.Flat += v
			}
			if !seen[name] {
				c.Cum += v
				seen[name] = true
			}
		}
	}
	costs = make([]Cost, 0, len(agg))
	for _, c := range agg {
		costs = append(costs, *c)
	}
	sort.Slice(costs, func(i, j int) bool {
		if costs[i].Flat != costs[j].Flat {
			return costs[i].Flat > costs[j].Flat
		}
		return costs[i].Name < costs[j].Name
	})
	if n > 0 && n < len(costs) {
		costs = costs[:n]
	}
	return costs, total
}

// ByPackage aggregates the given value column by the innermost frame
// whose function name has the given prefix (e.g. "cohesion") — the
// subsystem that asked for the time — mirroring the allocation
// breakdown's attribution rule. Samples with no matching frame fall
// into "(runtime)".
func (p *Profile) ByPackage(valueIndex int, prefix string) (costs []Cost, total int64) {
	agg := map[string]*Cost{}
	for _, s := range p.Samples {
		if valueIndex >= len(s.Values) {
			continue
		}
		v := s.Values[valueIndex]
		total += v
		pkg := "(runtime)"
		for _, name := range s.Stack {
			if strings.HasPrefix(name, prefix) {
				pkg = packageOf(name)
				break
			}
		}
		c := agg[pkg]
		if c == nil {
			c = &Cost{Name: pkg}
			agg[pkg] = c
		}
		c.Flat += v
	}
	costs = make([]Cost, 0, len(agg))
	for _, c := range agg {
		costs = append(costs, *c)
	}
	sort.Slice(costs, func(i, j int) bool {
		if costs[i].Flat != costs[j].Flat {
			return costs[i].Flat > costs[j].Flat
		}
		return costs[i].Name < costs[j].Name
	})
	return costs, total
}

// packageOf trims a fully qualified function name to its package path
// ("cohesion/internal/cluster.(*Cluster).load" → "cohesion/internal/cluster").
// Generic instantiation suffixes ("pkg.F[go.shape...]") are cut first so
// the shape arguments' own slashes and dots don't confuse the split.
func packageOf(name string) string {
	if br := strings.IndexByte(name, '['); br >= 0 {
		name = name[:br]
	}
	slash := strings.LastIndexByte(name, '/')
	if dot := strings.IndexByte(name[slash+1:], '.'); dot >= 0 {
		return name[:slash+1+dot]
	}
	return name
}

// ValueIndex returns the column whose type name matches (e.g. "cpu",
// "alloc_objects"), or the last column if absent (pprof convention: the
// default sample value is the last).
func (p *Profile) ValueIndex(typ string) int {
	for i, st := range p.SampleTypes {
		if strings.HasPrefix(st, typ+"/") || st == typ {
			return i
		}
	}
	if len(p.SampleTypes) == 0 {
		return 0
	}
	return len(p.SampleTypes) - 1
}

// --- protobuf wire decoding (profile.proto subset) ---

type decoder struct {
	data []byte
	pos  int
}

func (d *decoder) varint() (uint64, error) {
	var v uint64
	for shift := uint(0); shift < 64; shift += 7 {
		if d.pos >= len(d.data) {
			return 0, io.ErrUnexpectedEOF
		}
		b := d.data[d.pos]
		d.pos++
		v |= uint64(b&0x7f) << shift
		if b&0x80 == 0 {
			return v, nil
		}
	}
	return 0, fmt.Errorf("prof: varint overflow")
}

// field reads the next field tag; returns fieldNum, wireType.
func (d *decoder) field() (int, int, error) {
	tag, err := d.varint()
	if err != nil {
		return 0, 0, err
	}
	return int(tag >> 3), int(tag & 7), nil
}

// bytes reads a length-delimited payload.
func (d *decoder) bytes() ([]byte, error) {
	n, err := d.varint()
	if err != nil {
		return nil, err
	}
	if uint64(d.pos)+n > uint64(len(d.data)) {
		return nil, io.ErrUnexpectedEOF
	}
	b := d.data[d.pos : d.pos+int(n)]
	d.pos += int(n)
	return b, nil
}

// skip consumes a field of the given wire type.
func (d *decoder) skip(wire int) error {
	switch wire {
	case 0:
		_, err := d.varint()
		return err
	case 1:
		if d.pos+8 > len(d.data) {
			return io.ErrUnexpectedEOF
		}
		d.pos += 8
		return nil
	case 2:
		_, err := d.bytes()
		return err
	case 5:
		if d.pos+4 > len(d.data) {
			return io.ErrUnexpectedEOF
		}
		d.pos += 4
		return nil
	}
	return fmt.Errorf("prof: unsupported wire type %d", wire)
}

// packedVarints decodes a packed repeated varint payload (also accepts a
// single unpacked value when wire type 0 was used).
func packedVarints(b []byte) ([]uint64, error) {
	d := &decoder{data: b}
	var out []uint64
	for d.pos < len(d.data) {
		v, err := d.varint()
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

type rawSample struct {
	locIDs []uint64
	values []int64
}

type rawLocation struct {
	id      uint64
	funcIDs []uint64 // from Line messages, in order (innermost first)
}

type rawFunction struct {
	id   uint64
	name int64 // string table index
}

type rawValueType struct {
	typ, unit int64
}

func decodeProfile(data []byte) (*Profile, error) {
	d := &decoder{data: data}
	var (
		sampleTypes []rawValueType
		samples     []rawSample
		locations   []rawLocation
		functions   []rawFunction
		strtab      []string
	)
	for d.pos < len(d.data) {
		num, wire, err := d.field()
		if err != nil {
			return nil, err
		}
		switch num {
		case 1: // sample_type
			b, err := d.bytes()
			if err != nil {
				return nil, err
			}
			vt, err := decodeValueType(b)
			if err != nil {
				return nil, err
			}
			sampleTypes = append(sampleTypes, vt)
		case 2: // sample
			b, err := d.bytes()
			if err != nil {
				return nil, err
			}
			s, err := decodeSample(b)
			if err != nil {
				return nil, err
			}
			samples = append(samples, s)
		case 4: // location
			b, err := d.bytes()
			if err != nil {
				return nil, err
			}
			loc, err := decodeLocation(b)
			if err != nil {
				return nil, err
			}
			locations = append(locations, loc)
		case 5: // function
			b, err := d.bytes()
			if err != nil {
				return nil, err
			}
			fn, err := decodeFunction(b)
			if err != nil {
				return nil, err
			}
			functions = append(functions, fn)
		case 6: // string_table
			b, err := d.bytes()
			if err != nil {
				return nil, err
			}
			strtab = append(strtab, string(b))
		default:
			if err := d.skip(wire); err != nil {
				return nil, err
			}
		}
	}

	str := func(i int64) string {
		if i < 0 || int(i) >= len(strtab) {
			return ""
		}
		return strtab[i]
	}
	funcName := make(map[uint64]string, len(functions))
	for _, f := range functions {
		funcName[f.id] = str(f.name)
	}
	locFrames := make(map[uint64][]string, len(locations))
	for _, loc := range locations {
		frames := make([]string, 0, len(loc.funcIDs))
		for _, fid := range loc.funcIDs {
			frames = append(frames, funcName[fid])
		}
		locFrames[loc.id] = frames
	}

	p := &Profile{}
	for _, vt := range sampleTypes {
		p.SampleTypes = append(p.SampleTypes, str(vt.typ)+"/"+str(vt.unit))
	}
	for _, rs := range samples {
		s := Sample{Values: rs.values}
		for _, lid := range rs.locIDs {
			s.Stack = append(s.Stack, locFrames[lid]...)
		}
		p.Samples = append(p.Samples, s)
	}
	return p, nil
}

func decodeValueType(b []byte) (rawValueType, error) {
	d := &decoder{data: b}
	var vt rawValueType
	for d.pos < len(d.data) {
		num, wire, err := d.field()
		if err != nil {
			return vt, err
		}
		switch num {
		case 1:
			v, err := d.varint()
			if err != nil {
				return vt, err
			}
			vt.typ = int64(v)
		case 2:
			v, err := d.varint()
			if err != nil {
				return vt, err
			}
			vt.unit = int64(v)
		default:
			if err := d.skip(wire); err != nil {
				return vt, err
			}
		}
	}
	return vt, nil
}

func decodeSample(b []byte) (rawSample, error) {
	d := &decoder{data: b}
	var s rawSample
	for d.pos < len(d.data) {
		num, wire, err := d.field()
		if err != nil {
			return s, err
		}
		switch {
		case num == 1 && wire == 2: // packed location_id
			raw, err := d.bytes()
			if err != nil {
				return s, err
			}
			ids, err := packedVarints(raw)
			if err != nil {
				return s, err
			}
			s.locIDs = append(s.locIDs, ids...)
		case num == 1 && wire == 0:
			v, err := d.varint()
			if err != nil {
				return s, err
			}
			s.locIDs = append(s.locIDs, v)
		case num == 2 && wire == 2: // packed value
			raw, err := d.bytes()
			if err != nil {
				return s, err
			}
			vals, err := packedVarints(raw)
			if err != nil {
				return s, err
			}
			for _, v := range vals {
				s.values = append(s.values, int64(v))
			}
		case num == 2 && wire == 0:
			v, err := d.varint()
			if err != nil {
				return s, err
			}
			s.values = append(s.values, int64(v))
		default:
			if err := d.skip(wire); err != nil {
				return s, err
			}
		}
	}
	return s, nil
}

func decodeLocation(b []byte) (rawLocation, error) {
	d := &decoder{data: b}
	var loc rawLocation
	for d.pos < len(d.data) {
		num, wire, err := d.field()
		if err != nil {
			return loc, err
		}
		switch num {
		case 1:
			v, err := d.varint()
			if err != nil {
				return loc, err
			}
			loc.id = v
		case 4: // Line message
			raw, err := d.bytes()
			if err != nil {
				return loc, err
			}
			ld := &decoder{data: raw}
			for ld.pos < len(ld.data) {
				lnum, lwire, err := ld.field()
				if err != nil {
					return loc, err
				}
				if lnum == 1 && lwire == 0 {
					fid, err := ld.varint()
					if err != nil {
						return loc, err
					}
					loc.funcIDs = append(loc.funcIDs, fid)
					continue
				}
				if err := ld.skip(lwire); err != nil {
					return loc, err
				}
			}
		default:
			if err := d.skip(wire); err != nil {
				return loc, err
			}
		}
	}
	return loc, nil
}

func decodeFunction(b []byte) (rawFunction, error) {
	d := &decoder{data: b}
	var fn rawFunction
	for d.pos < len(d.data) {
		num, wire, err := d.field()
		if err != nil {
			return fn, err
		}
		switch num {
		case 1:
			v, err := d.varint()
			if err != nil {
				return fn, err
			}
			fn.id = v
		case 2:
			v, err := d.varint()
			if err != nil {
				return fn, err
			}
			fn.name = int64(v)
		default:
			if err := d.skip(wire); err != nil {
				return fn, err
			}
		}
	}
	return fn, nil
}
