package pool

import (
	"sync"
	"sync/atomic"
)

// Runner is the persistent sibling of Do: a fixed group of worker
// goroutines draining a bounded FIFO queue for the life of a service.
// Where Do fans one batch out and joins, a Runner accepts work for as
// long as it is open and applies backpressure by refusing — TrySubmit
// never blocks, so a saturated service sheds load (HTTP 429) instead of
// queuing unboundedly. Item order is FIFO per queue; assignment of items
// to workers is racy, exactly as with Do, so the processing function must
// own all the state it touches for one item.
type Runner[T any] struct {
	queue    chan T
	process  func(T)
	inflight atomic.Int64

	mu     sync.Mutex
	closed bool
	wg     sync.WaitGroup
}

// NewRunner starts workers goroutines (at least one) draining a queue of
// the given depth. A depth of 0 makes TrySubmit succeed only when a
// worker is free to take the item immediately.
func NewRunner[T any](workers, depth int, process func(T)) *Runner[T] {
	if workers < 1 {
		workers = 1
	}
	if depth < 0 {
		depth = 0
	}
	r := &Runner[T]{queue: make(chan T, depth), process: process}
	r.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer r.wg.Done()
			for v := range r.queue {
				r.inflight.Add(1)
				func() {
					defer r.inflight.Add(-1)
					r.process(v)
				}()
			}
		}()
	}
	return r
}

// TrySubmit enqueues v, or reports false without blocking when the queue
// is full or the runner is closed. A false return is the backpressure
// signal: the caller decides whether to retry, reject, or drop.
func (r *Runner[T]) TrySubmit(v T) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return false
	}
	select {
	case r.queue <- v:
		return true
	default:
		return false
	}
}

// QueueLen is the number of items accepted but not yet taken by a worker.
func (r *Runner[T]) QueueLen() int { return len(r.queue) }

// Cap is the queue depth TrySubmit admits up to.
func (r *Runner[T]) Cap() int { return cap(r.queue) }

// InFlight is the number of items currently being processed by workers.
func (r *Runner[T]) InFlight() int { return int(r.inflight.Load()) }

// Close stops intake, lets the workers drain the queue, and joins them.
// Callers that want queued-but-unstarted items abandoned rather than run
// flip their own state before closing so process becomes a no-op for
// them. Close is idempotent and safe to race with TrySubmit.
func (r *Runner[T]) Close() {
	r.mu.Lock()
	if !r.closed {
		r.closed = true
		close(r.queue)
	}
	r.mu.Unlock()
	r.wg.Wait()
}
