// Package pool fans independent jobs out across host cores with
// deterministic result ordering. It is the substrate under the experiment
// harness: every figure of the paper's evaluation is a sweep of
// independent simulations, and each simulation is single-threaded and
// self-contained (its own event queue, memory image, and seeded PRNGs),
// so they parallelize perfectly — the only requirement is that results
// come back slotted by job index, never by completion order, so the
// assembled tables are bit-identical at any worker count.
package pool

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"cohesion/internal/simerr"
)

// Workers resolves a requested parallelism: n >= 1 is taken as-is, and
// n <= 0 selects GOMAXPROCS (the -parallel flag's default).
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// Do runs job(i) for every i in [0, n) across at most workers goroutines
// (resolved via Workers). Jobs are claimed from an atomic counter, so the
// assignment of jobs to goroutines is racy — callers must make job(i)
// write only state owned by index i. Do returns when every job has
// finished. With workers <= 1 resolved to 1, jobs run inline on the
// calling goroutine in index order, byte-for-byte the serial harness.
//
// A panic inside a job is captured and re-raised on the calling goroutine
// once all workers have stopped (the lowest-index panic wins, so the
// failure surfaced is deterministic). This keeps simerr-style diagnostic
// panics flowing to the caller exactly as they do in a serial run.
func Do(n, workers int, job func(i int)) {
	if n <= 0 {
		return
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			job(i)
		}
		return
	}

	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		mu       sync.Mutex
		panicked = -1
		panicVal any
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				func() {
					defer func() {
						if r := recover(); r != nil {
							mu.Lock()
							if panicked == -1 || i < panicked {
								panicked, panicVal = i, r
							}
							mu.Unlock()
						}
					}()
					job(i)
				}()
			}
		}()
	}
	wg.Wait()
	if panicked != -1 {
		panic(panicVal)
	}
}

// Map runs fn(i) for every i in [0, n) across at most workers goroutines
// and returns the results slotted by index.
func Map[T any](n, workers int, fn func(i int) T) []T {
	out := make([]T, n)
	Do(n, workers, func(i int) { out[i] = fn(i) })
	return out
}

// MapErr runs fn(i) for every i in [0, n) across at most workers
// goroutines. All jobs run to completion even when some fail; if any
// failed, the error of the lowest-index failure is returned (so the
// reported error does not depend on completion order) along with a nil
// slice. Otherwise the results are returned slotted by index.
func MapErr[T any](n, workers int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	errs := make([]error, n)
	Do(n, workers, func(i int) { out[i], errs[i] = fn(i) })
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// PanicError is one job's contained panic: the recovered value, the
// panicking goroutine's stack, and the job index. It matches
// errors.Is(err, simerr.ErrRunPanicked), so supervising layers dispatch
// on it like any other structured run failure.
type PanicError struct {
	Index int    // job index that panicked
	Value any    // recovered panic value
	Stack []byte // stack of the panicking goroutine at recover time
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("%v: job %d panicked: %v\n%s", simerr.ErrRunPanicked, e.Index, e.Value, e.Stack)
}

func (e *PanicError) Unwrap() error { return simerr.ErrRunPanicked }

// MapCatch is MapErr with panic containment and per-job failure
// reporting: every job runs to completion, a panicking job is recovered
// into a *PanicError in its own slot instead of crashing the sweep, and
// both slices come back slotted by index — errs[i] non-nil means out[i]
// is the zero value and the rest of the sweep is untouched. Because
// failures are slotted (not raced), the caller's view is deterministic
// at any worker count: same jobs ⇒ same errs, including which job is
// reported first by layers that canonicalize on the lowest index.
func MapCatch[T any](n, workers int, fn func(i int) (T, error)) ([]T, []error) {
	out := make([]T, n)
	errs := make([]error, n)
	Do(n, workers, func(i int) {
		defer func() {
			if r := recover(); r != nil {
				var zero T
				out[i], errs[i] = zero, &PanicError{Index: i, Value: r, Stack: debug.Stack()}
			}
		}()
		out[i], errs[i] = fn(i)
	})
	return out, errs
}
