// Package pool fans independent jobs out across host cores with
// deterministic result ordering. It is the substrate under the experiment
// harness: every figure of the paper's evaluation is a sweep of
// independent simulations, and each simulation is single-threaded and
// self-contained (its own event queue, memory image, and seeded PRNGs),
// so they parallelize perfectly — the only requirement is that results
// come back slotted by job index, never by completion order, so the
// assembled tables are bit-identical at any worker count.
package pool

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a requested parallelism: n >= 1 is taken as-is, and
// n <= 0 selects GOMAXPROCS (the -parallel flag's default).
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// Do runs job(i) for every i in [0, n) across at most workers goroutines
// (resolved via Workers). Jobs are claimed from an atomic counter, so the
// assignment of jobs to goroutines is racy — callers must make job(i)
// write only state owned by index i. Do returns when every job has
// finished. With workers <= 1 resolved to 1, jobs run inline on the
// calling goroutine in index order, byte-for-byte the serial harness.
//
// A panic inside a job is captured and re-raised on the calling goroutine
// once all workers have stopped (the lowest-index panic wins, so the
// failure surfaced is deterministic). This keeps simerr-style diagnostic
// panics flowing to the caller exactly as they do in a serial run.
func Do(n, workers int, job func(i int)) {
	if n <= 0 {
		return
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			job(i)
		}
		return
	}

	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		mu       sync.Mutex
		panicked = -1
		panicVal any
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				func() {
					defer func() {
						if r := recover(); r != nil {
							mu.Lock()
							if panicked == -1 || i < panicked {
								panicked, panicVal = i, r
							}
							mu.Unlock()
						}
					}()
					job(i)
				}()
			}
		}()
	}
	wg.Wait()
	if panicked != -1 {
		panic(panicVal)
	}
}

// Map runs fn(i) for every i in [0, n) across at most workers goroutines
// and returns the results slotted by index.
func Map[T any](n, workers int, fn func(i int) T) []T {
	out := make([]T, n)
	Do(n, workers, func(i int) { out[i] = fn(i) })
	return out
}

// MapErr runs fn(i) for every i in [0, n) across at most workers
// goroutines. All jobs run to completion even when some fail; if any
// failed, the error of the lowest-index failure is returned (so the
// reported error does not depend on completion order) along with a nil
// slice. Otherwise the results are returned slotted by index.
func MapErr[T any](n, workers int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	errs := make([]error, n)
	Do(n, workers, func(i int) { out[i], errs[i] = fn(i) })
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
