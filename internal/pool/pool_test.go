package pool

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestMapSlotsByIndex(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 8} {
		got := Map(100, workers, func(i int) int { return i * i })
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestSerialAndParallelIdentical(t *testing.T) {
	job := func(i int) string { return fmt.Sprintf("job-%03d", i*7%13) }
	serial := Map(200, 1, job)
	parallel := Map(200, 8, job)
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("results diverge at %d: %q vs %q", i, serial[i], parallel[i])
		}
	}
}

func TestWorkersResolution(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(0) = %d, want GOMAXPROCS = %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(-3) = %d, want GOMAXPROCS", got)
	}
	if got := Workers(5); got != 5 {
		t.Fatalf("Workers(5) = %d, want 5", got)
	}
}

func TestEveryJobRunsExactlyOnce(t *testing.T) {
	const n = 1000
	var counts [n]atomic.Int32
	Do(n, 8, func(i int) { counts[i].Add(1) })
	for i := range counts {
		if c := counts[i].Load(); c != 1 {
			t.Fatalf("job %d ran %d times", i, c)
		}
	}
}

func TestMapErrReportsLowestIndexFailure(t *testing.T) {
	errLow, errHigh := errors.New("low"), errors.New("high")
	for _, workers := range []int{1, 8} {
		_, err := MapErr(100, workers, func(i int) (int, error) {
			switch i {
			case 97:
				return 0, errHigh
			case 13:
				return 0, errLow
			}
			return i, nil
		})
		if !errors.Is(err, errLow) {
			t.Fatalf("workers=%d: err = %v, want lowest-index error %v", workers, err, errLow)
		}
	}
}

func TestPanicPropagatesLowestIndex(t *testing.T) {
	defer func() {
		r := recover()
		if r != "boom-3" {
			t.Fatalf("recovered %v, want boom-3", r)
		}
	}()
	Do(10, 4, func(i int) {
		if i == 3 || i == 8 {
			panic(fmt.Sprintf("boom-%d", i))
		}
	})
	t.Fatal("Do did not re-panic")
}

func TestZeroJobs(t *testing.T) {
	ran := false
	Do(0, 4, func(int) { ran = true })
	if ran {
		t.Fatal("job ran for n=0")
	}
	if out := Map(0, 4, func(i int) int { return i }); len(out) != 0 {
		t.Fatalf("Map(0) returned %d results", len(out))
	}
}
