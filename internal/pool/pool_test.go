package pool

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"

	"cohesion/internal/simerr"
)

func TestMapSlotsByIndex(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 8} {
		got := Map(100, workers, func(i int) int { return i * i })
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestSerialAndParallelIdentical(t *testing.T) {
	job := func(i int) string { return fmt.Sprintf("job-%03d", i*7%13) }
	serial := Map(200, 1, job)
	parallel := Map(200, 8, job)
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("results diverge at %d: %q vs %q", i, serial[i], parallel[i])
		}
	}
}

func TestWorkersResolution(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(0) = %d, want GOMAXPROCS = %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(-3) = %d, want GOMAXPROCS", got)
	}
	if got := Workers(5); got != 5 {
		t.Fatalf("Workers(5) = %d, want 5", got)
	}
}

func TestEveryJobRunsExactlyOnce(t *testing.T) {
	const n = 1000
	var counts [n]atomic.Int32
	Do(n, 8, func(i int) { counts[i].Add(1) })
	for i := range counts {
		if c := counts[i].Load(); c != 1 {
			t.Fatalf("job %d ran %d times", i, c)
		}
	}
}

func TestMapErrReportsLowestIndexFailure(t *testing.T) {
	errLow, errHigh := errors.New("low"), errors.New("high")
	for _, workers := range []int{1, 8} {
		_, err := MapErr(100, workers, func(i int) (int, error) {
			switch i {
			case 97:
				return 0, errHigh
			case 13:
				return 0, errLow
			}
			return i, nil
		})
		if !errors.Is(err, errLow) {
			t.Fatalf("workers=%d: err = %v, want lowest-index error %v", workers, err, errLow)
		}
	}
}

func TestPanicPropagatesLowestIndex(t *testing.T) {
	defer func() {
		r := recover()
		if r != "boom-3" {
			t.Fatalf("recovered %v, want boom-3", r)
		}
	}()
	Do(10, 4, func(i int) {
		if i == 3 || i == 8 {
			panic(fmt.Sprintf("boom-%d", i))
		}
	})
	t.Fatal("Do did not re-panic")
}

func TestMapCatchContainsPanics(t *testing.T) {
	errPlain := errors.New("plain failure")
	for _, workers := range []int{1, 4} {
		out, errs := MapCatch(10, workers, func(i int) (int, error) {
			switch i {
			case 3:
				panic("boom-3")
			case 6:
				return 0, errPlain
			}
			return i * 10, nil
		})
		for i := 0; i < 10; i++ {
			switch i {
			case 3:
				var pe *PanicError
				if !errors.As(errs[3], &pe) {
					t.Fatalf("workers=%d: errs[3] = %v, want *PanicError", workers, errs[3])
				}
				if pe.Index != 3 || pe.Value != "boom-3" || len(pe.Stack) == 0 {
					t.Fatalf("workers=%d: PanicError missing context: %+v", workers, pe)
				}
				if !errors.Is(errs[3], simerr.ErrRunPanicked) {
					t.Fatalf("workers=%d: contained panic does not match ErrRunPanicked", workers)
				}
			case 6:
				if !errors.Is(errs[6], errPlain) {
					t.Fatalf("workers=%d: errs[6] = %v, want plain error", workers, errs[6])
				}
			default:
				if errs[i] != nil || out[i] != i*10 {
					t.Fatalf("workers=%d: slot %d perturbed by contained failures: out=%d errs=%v",
						workers, i, out[i], errs[i])
				}
			}
		}
	}
}

func TestZeroJobs(t *testing.T) {
	ran := false
	Do(0, 4, func(int) { ran = true })
	if ran {
		t.Fatal("job ran for n=0")
	}
	if out := Map(0, 4, func(i int) int { return i }); len(out) != 0 {
		t.Fatalf("Map(0) returned %d results", len(out))
	}
}
