package pool

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestRunnerProcessesEverythingAccepted floods a small runner from many
// goroutines and checks exactly the accepted items are processed, each
// once, and that rejections only happen under genuine saturation.
func TestRunnerProcessesEverythingAccepted(t *testing.T) {
	var processed atomic.Int64
	slow := make(chan struct{})
	r := NewRunner[int](2, 2, func(int) {
		<-slow
		processed.Add(1)
	})

	var accepted, rejected atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if r.TrySubmit(i) {
				accepted.Add(1)
			} else {
				rejected.Add(1)
			}
		}(i)
	}
	wg.Wait()
	// 2 workers + depth 2: at most 4 items can be admitted while the
	// processing function blocks.
	if a := accepted.Load(); a > 4 {
		t.Fatalf("accepted %d items with 2 workers and depth 2", a)
	}
	if rejected.Load() == 0 {
		t.Fatal("no submission was rejected under saturation")
	}
	close(slow)
	r.Close()
	if got, want := processed.Load(), accepted.Load(); got != want {
		t.Fatalf("processed %d of %d accepted items", got, want)
	}
}

// TestRunnerCloseJoinsWorkers checks Close leaves no worker goroutine
// behind and that TrySubmit after Close refuses instead of panicking.
func TestRunnerCloseJoinsWorkers(t *testing.T) {
	base := runtime.NumGoroutine()
	r := NewRunner[int](4, 8, func(int) {})
	for i := 0; i < 8; i++ {
		r.TrySubmit(i)
	}
	r.Close()
	r.Close() // idempotent
	if r.TrySubmit(99) {
		t.Fatal("TrySubmit succeeded after Close")
	}
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > base && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > base {
		t.Fatalf("goroutines did not settle after Close: %d > baseline %d", n, base)
	}
}

// TestRunnerCloseRacesWithSubmit hammers TrySubmit from many goroutines
// while Close runs: no send-on-closed-channel panic, no deadlock.
func TestRunnerCloseRacesWithSubmit(t *testing.T) {
	r := NewRunner[int](2, 4, func(int) {})
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				r.TrySubmit(j)
			}
		}()
	}
	r.Close()
	wg.Wait()
}

// TestRunnerGauges checks QueueLen/InFlight/Cap reflect a held item.
func TestRunnerGauges(t *testing.T) {
	started := make(chan struct{}, 3)
	release := make(chan struct{})
	r := NewRunner[int](1, 3, func(int) {
		started <- struct{}{}
		<-release
	})
	// LIFO: release the worker first, then join it.
	defer r.Close()
	defer close(release)
	if r.Cap() != 3 {
		t.Fatalf("Cap = %d, want 3", r.Cap())
	}
	r.TrySubmit(1)
	<-started
	if r.InFlight() != 1 {
		t.Fatalf("InFlight = %d, want 1", r.InFlight())
	}
	r.TrySubmit(2)
	r.TrySubmit(3)
	if r.QueueLen() != 2 {
		t.Fatalf("QueueLen = %d, want 2", r.QueueLen())
	}
}
