package oracle

import (
	"sort"

	"cohesion/internal/addr"
	"cohesion/internal/snapshot"
)

// Fingerprint digests the oracle's complete shadow state — per-line
// domain beliefs, in-flight transitions, shadow memory, latest-value
// references, staleness masks, in-flight publishes, and per-cluster
// holder models — plus the cumulative check count. Lines and holders are
// visited in sorted order so the digest is independent of map iteration.
// The checkpoint layer uses it to prove a replayed run rebuilt the exact
// oracle state the original run had at the same event count.
func (o *Oracle) Fingerprint() uint64 {
	keys := make([]addr.Line, 0, len(o.lines))
	for l := range o.lines {
		keys = append(keys, l)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })

	h := snapshot.NewHasher()
	h.U64(o.Checks)
	h.Int(len(keys))
	for _, l := range keys {
		s := o.lines[l]
		h.U64(uint64(l))
		h.Bool(s.sw)
		h.Int(s.transDepth)
		h.Bool(s.transTarget)
		for _, w := range s.mem {
			h.U32(w)
		}
		for _, w := range s.latest {
			h.U32(w)
		}
		h.U8(s.unstable)
		h.Int(len(s.inflight))
		for _, p := range s.inflight {
			h.U8(p.mask)
			for _, w := range p.data {
				h.U32(w)
			}
		}
		o.eachHolder(s, func(c int, hd *holder) {
			h.Int(c)
			h.U8(uint8(hd.state))
			h.U8(hd.valid)
			h.U8(hd.dirty)
			for _, w := range hd.data {
				h.U32(w)
			}
		})
	}
	return h.Sum()
}
