// Package oracle implements an online coherence conformance checker: a
// shadow sequential memory plus a per-line coherence-domain and ownership
// model that observes every completed load, store, atomic, grant, probe,
// writeback, and Cohesion domain transition through hooks threaded into
// the cluster (L2) and home (directory/L3) controllers.
//
// The oracle is a pure observer — it never alters protocol behaviour or
// timing — and it fails fast: the moment an observed value, MSI state, or
// Figure 6–7 transition is inconsistent with the model it panics with a
// simerr.ErrProtocolInvariant diagnostic, which machine.Simulate recovers
// into an ordinary error. A protocol bug is therefore reported at the
// cycle it manifests, not cycles later at quiescence (where a self-healing
// bug would be invisible to Machine.CheckInvariants).
//
// Checked invariants (see PROTOCOL.md for the mapping to the paper's
// Figures 5–7):
//
//   - Per-location sequential consistency in the HWcc domain: a coherent
//     load or grant must return the globally latest committed value for
//     each word, except where legal SWcc-era staleness survives a clean
//     capture (tracked per word and suppressed until the next
//     serializing write).
//   - MSI legality: at most one Modified holder per line; stores require
//     recorded ownership; probe replies must agree with the holder's
//     recorded dirty set and data.
//   - Value integrity: every grant's fill data, atomic's read value, and
//     merged writeback must agree with the shadow memory, which replays
//     every architecturally-completed write.
//   - Domain legality (Cohesion): HWcc grants only for lines the model
//     believes hardware-coherent, GrantIncoherent only for SWcc-domain
//     lines, and each region-table flip must move the line away from its
//     current (or pending, when flips nest) domain and tear down the old
//     domain's state completely by the time the last pending flip's
//     protocol finishes.
package oracle

import (
	"fmt"
	"sort"

	"cohesion/internal/addr"
	"cohesion/internal/cache"
	"cohesion/internal/config"
	"cohesion/internal/dram"
	"cohesion/internal/event"
	"cohesion/internal/msg"
	"cohesion/internal/region"
	"cohesion/internal/simerr"
)

// holderState is the oracle's belief about one cluster's copy of a line.
type holderState uint8

const (
	holderShared holderState = iota
	holderModified
	holderIncoherent
)

func (s holderState) String() string {
	switch s {
	case holderShared:
		return "Shared"
	case holderModified:
		return "Modified"
	case holderIncoherent:
		return "Incoherent"
	}
	return fmt.Sprintf("holderState(%d)", uint8(s))
}

// holder mirrors one L2's copy of a line: protocol state plus the per-word
// valid/dirty masks and data the oracle expects the cache to return.
type holder struct {
	state holderState
	valid uint8
	dirty uint8
	data  [addr.WordsPerLine]uint32
}

// lineShadow is the oracle's model of one line.
type lineShadow struct {
	// sw is the believed coherence domain (true = SWcc). transDepth counts
	// snooped region-table flips whose Figure 7 protocol has not yet
	// completed; while it is non-zero, domain and freshness checks are
	// suppressed (requests racing a transition may legally be serviced
	// under either domain). Nested flips are legal: the table write of an
	// opposing flip lands while the first line transition is still in
	// flight, and the home serializes the per-line protocols afterwards.
	// transTarget is the domain after the most recent table write (only
	// meaningful while transDepth > 0).
	sw          bool
	transDepth  int
	transTarget bool

	// mem shadows the backing store (L3/DRAM) contents: every observed
	// merge (writeback, flush, atomic) updates it, so grant fill data must
	// always match it exactly.
	mem [addr.WordsPerLine]uint32

	// latest is the globally most recent committed value of each word —
	// the per-location sequential-consistency reference. In the HWcc
	// domain every coherent read must return it; in the SWcc domain it is
	// advisory only (software orders visibility) and is reconciled at
	// domain transitions.
	latest [addr.WordsPerLine]uint32

	// unstable marks words where legal staleness survives in hardware
	// sharers: a clean SWcc copy captured in place by a SW→HW transition
	// may hold data older than memory (paper Fig 7b Case 2b). Freshness
	// checks are suppressed for these words until the next serializing
	// write (Modified store or atomic) invalidates the stale copies.
	unstable uint8

	// inflight records dirty data that an L2 has committed toward memory
	// (a software flush or a published eviction) whose merge has not yet
	// been observed at the home. Such words are architecturally published:
	// a domain-transition reconciliation must treat them as the latest
	// value even though the shadow memory does not hold them yet, and the
	// merge, when it lands, is legal.
	inflight []publish

	holders map[int]*holder
}

// publish is one masked writeback in flight toward the home.
type publish struct {
	mask uint8
	data [addr.WordsPerLine]uint32
}

// transitioning reports whether any domain flip of the line is in flight.
func (s *lineShadow) transitioning() bool { return s.transDepth > 0 }

// publishedValue returns the most recently published, not-yet-merged value
// of a word, if a flush or eviction carrying it is still in flight.
func (s *lineShadow) publishedValue(w int) (uint32, bool) {
	bit := uint8(1) << w
	for i := len(s.inflight) - 1; i >= 0; i-- {
		if s.inflight[i].mask&bit != 0 {
			return s.inflight[i].data[w], true
		}
	}
	return 0, false
}

// consumePublish retires one in-flight published word whose value matches a
// merge just observed at the home, reporting whether one existed.
func (s *lineShadow) consumePublish(w int, v uint32) bool {
	bit := uint8(1) << w
	for i := range s.inflight {
		p := &s.inflight[i]
		if p.mask&bit != 0 && p.data[w] == v {
			p.mask &^= bit
			if p.mask == 0 {
				s.inflight = append(s.inflight[:i], s.inflight[i+1:]...)
			}
			return true
		}
	}
	return false
}

// Oracle is the online conformance checker for one machine. All methods
// must be called from the simulation event loop (single-threaded).
type Oracle struct {
	cfg    config.Machine
	q      *event.Queue
	store  *dram.Store
	coarse *region.CoarseTable
	fine   *region.FineTable

	lines map[addr.Line]*lineShadow

	// Checks counts individual invariant evaluations (tests assert the
	// oracle actually observed traffic).
	Checks uint64
}

// New builds an oracle observing the given machine substrate. coarse and
// fine may be nil (non-Cohesion machines).
func New(cfg config.Machine, q *event.Queue, store *dram.Store,
	coarse *region.CoarseTable, fine *region.FineTable) *Oracle {
	return &Oracle{
		cfg:    cfg,
		q:      q,
		store:  store,
		coarse: coarse,
		fine:   fine,
		lines:  make(map[addr.Line]*lineShadow),
	}
}

// fail raises the violation as a protocol-invariant panic; machine.Simulate
// recovers it into an error, so the run fails at the violating cycle.
func (o *Oracle) fail(line addr.Line, format string, args ...any) {
	panic(simerr.Invariant(uint64(o.q.Now()), "oracle", uint64(line.Base()), format, args...))
}

// domainOf computes a line's current coherence domain the same way the
// home controller does (coarse table, then the fine-grain bitmap).
func (o *Oracle) domainOf(line addr.Line) bool {
	switch o.cfg.Mode {
	case config.SWcc:
		return true
	case config.HWcc:
		return false
	}
	base := line.Base()
	if o.coarse != nil && o.coarse.Contains(base) {
		return true
	}
	return o.fine != nil && o.fine.IsSWcc(base)
}

// lineFor returns the shadow for a line, creating it lazily on first
// touch. Lazy creation is sound: before the first observed access nothing
// is cached anywhere, the store holds the architectural value (pre-run
// initialization included), and the region tables hold the current domain
// — any earlier change would itself have been an observed event.
func (o *Oracle) lineFor(line addr.Line) *lineShadow {
	s := o.lines[line]
	if s == nil {
		s = o.newShadow(line, o.domainOf(line))
	}
	return s
}

func (o *Oracle) newShadow(line addr.Line, sw bool) *lineShadow {
	s := &lineShadow{
		sw:      sw,
		mem:     o.store.ReadLine(line),
		holders: make(map[int]*holder),
	}
	s.latest = s.mem
	o.lines[line] = s
	return s
}

// eachHolder visits holders in cluster order so diagnostics and checks are
// deterministic regardless of map iteration order.
func (o *Oracle) eachHolder(s *lineShadow, fn func(cluster int, h *holder)) {
	for c := 0; c < o.cfg.Clusters; c++ {
		if h := s.holders[c]; h != nil {
			fn(c, h)
		}
	}
}

// modifiedOwner reports the cluster the oracle believes owns the line in
// Modified state (-1 if none).
func (o *Oracle) modifiedOwner(s *lineShadow) int {
	owner := -1
	o.eachHolder(s, func(c int, h *holder) {
		if h.state == holderModified && owner < 0 {
			owner = c
		}
	})
	return owner
}

// LoadObserved checks a completed (cached) load: the value must match the
// oracle's copy of the loading cluster's cached word, and a coherent load
// of a stable word must additionally return the globally latest value.
func (o *Oracle) LoadObserved(cluster int, a addr.Addr, v uint32) {
	line := addr.LineOf(a)
	w := addr.WordIndex(a)
	bit := cache.WordBit(a)
	s := o.lineFor(line)
	h := s.holders[cluster]
	if h == nil || h.valid&bit == 0 {
		return // nothing recorded to verify against
	}
	o.Checks++
	if v != h.data[w] {
		o.fail(line, "stale read: cluster %d load of %#x returned %#x but the oracle's copy of its cached word is %#x",
			cluster, uint64(a), v, h.data[w])
	}
	if h.state != holderIncoherent && !s.transitioning() && s.unstable&bit == 0 && v != s.latest[w] {
		o.fail(line, "SC violation: cluster %d coherent load of %#x returned %#x but the latest committed value is %#x",
			cluster, uint64(a), v, s.latest[w])
	}
}

// StoreObserved checks a completed L2 store. A coherent store requires the
// cluster to be the line's sole recorded Modified owner (MSI write
// legality); an incoherent store requires the line to be in the SWcc
// domain. Either way the shadow holder and the latest-value model advance.
func (o *Oracle) StoreObserved(cluster int, a addr.Addr, v uint32, incoherent bool) {
	line := addr.LineOf(a)
	w := addr.WordIndex(a)
	bit := cache.WordBit(a)
	s := o.lineFor(line)
	o.Checks++
	if incoherent {
		if !s.sw && !s.transitioning() && o.cfg.Mode == config.Cohesion {
			o.fail(line, "domain violation: cluster %d performed an incoherent (SWcc) store to %#x but the line is in the HWcc domain",
				cluster, uint64(a))
		}
		h := s.holders[cluster]
		if h == nil {
			h = &holder{state: holderIncoherent}
			s.holders[cluster] = h
		}
		h.state = holderIncoherent
		h.valid |= bit
		h.dirty |= bit
		h.data[w] = v
		s.latest[w] = v
		return
	}
	h := s.holders[cluster]
	if h == nil || h.state != holderModified {
		owner := o.modifiedOwner(s)
		got := "no copy at all"
		if h != nil {
			got = fmt.Sprintf("a %v copy", h.state)
		}
		if owner >= 0 {
			o.fail(line, "double owner: cluster %d stored to %#x in Modified state but the oracle records %s there — cluster %d is the recorded owner",
				cluster, uint64(a), got, owner)
		}
		o.fail(line, "ownership violation: cluster %d stored to %#x in Modified state but the oracle records %s and no owner",
			cluster, uint64(a), got)
	}
	if other := o.modifiedOwner(s); other >= 0 && other != cluster {
		o.fail(line, "double owner: clusters %d and %d both hold %#x in Modified state", other, cluster, uint64(a))
	}
	h.valid |= bit
	h.dirty |= bit
	h.data[w] = v
	s.latest[w] = v
	s.unstable &^= bit
}

// InstallObserved resynchronizes the shadow holder from the real post-fill
// L2 entry. It performs no checks — fill data was already validated at
// grant time, and a wholesale resync heals ghost holders left by
// fault-injected duplicate grants.
func (o *Oracle) InstallObserved(cluster int, e *cache.Entry) {
	s := o.lineFor(e.Line)
	h := s.holders[cluster]
	if h == nil {
		h = &holder{}
		s.holders[cluster] = h
	}
	switch {
	case e.Incoherent:
		h.state = holderIncoherent
	case e.State == cache.StateModified:
		h.state = holderModified
	default:
		h.state = holderShared
	}
	h.valid = e.ValidMask
	h.dirty = e.DirtyMask
	h.data = e.Data
}

// GrantObserved checks a home-side grant at the moment the response is
// sent (value checks here, rather than at install time, sidestep in-flight
// races: the shadow memory is compared at the same event that read it).
func (o *Oracle) GrantObserved(req msg.Req, resp msg.Resp) {
	switch resp.Grant {
	case msg.GrantShared, msg.GrantModified:
		s := o.lineFor(req.Line)
		o.Checks++
		if s.sw && !s.transitioning() {
			o.fail(req.Line, "domain violation: %v granted to cluster %d for a line in the SWcc domain", resp.Grant, req.Cluster)
		}
		requesterOwns := false
		if h := s.holders[req.Cluster]; h != nil && h.state == holderModified {
			requesterOwns = true
		}
		if resp.Grant == msg.GrantModified {
			o.eachHolder(s, func(c int, h *holder) {
				if c != req.Cluster && h.state == holderModified {
					o.fail(req.Line, "double owner: Modified granted to cluster %d while cluster %d still owns the line",
						req.Cluster, c)
				}
			})
		}
		if !resp.HasData {
			return
		}
		for w := 0; w < addr.WordsPerLine; w++ {
			if resp.Data[w] != s.mem[w] {
				o.fail(req.Line, "corrupt fill: %v to cluster %d carries %#x for word %d but the shadow memory holds %#x",
					resp.Grant, req.Cluster, resp.Data[w], w, s.mem[w])
			}
			bit := uint8(1) << w
			if !requesterOwns && !s.transitioning() && s.unstable&bit == 0 && s.mem[w] != s.latest[w] {
				o.fail(req.Line, "stale grant: %v to cluster %d delivers word %d = %#x but the latest committed value is %#x",
					resp.Grant, req.Cluster, w, s.mem[w], s.latest[w])
			}
		}

	case msg.GrantIncoherent:
		s := o.lineFor(req.Line)
		o.Checks++
		if !s.sw && !s.transitioning() {
			o.fail(req.Line, "domain violation: GrantIncoherent to cluster %d for a line in the HWcc domain", req.Cluster)
		}
		if !resp.HasData {
			return
		}
		for w := 0; w < addr.WordsPerLine; w++ {
			if resp.Data[w] != s.mem[w] {
				o.fail(req.Line, "corrupt fill: GrantIncoherent to cluster %d carries %#x for word %d but the shadow memory holds %#x",
					req.Cluster, resp.Data[w], w, s.mem[w])
			}
		}
	}
}

// ProbeApplied checks a cluster's probe reply at the moment it is sent
// (after the L2 entry was mutated) and advances the holder model.
func (o *Oracle) ProbeApplied(cluster int, p msg.Probe, rep msg.ProbeReply) {
	s := o.lineFor(p.Line)
	h := s.holders[cluster]
	switch p.Kind {
	case msg.ProbeInv, msg.ProbeWB:
		if h != nil {
			o.Checks++
			if rep.Kind == msg.ReplyData {
				if rep.Mask != h.dirty {
					o.fail(p.Line, "writeback mask mismatch: cluster %d's %v reply reports dirty words %#08b but the oracle records %#08b",
						cluster, p.Kind, rep.Mask, h.dirty)
				}
				for w := 0; w < addr.WordsPerLine; w++ {
					bit := uint8(1) << w
					if rep.Mask&bit != 0 && h.valid&bit != 0 && rep.Data[w] != h.data[w] {
						o.fail(p.Line, "corrupt writeback: cluster %d's %v reply carries %#x for word %d but the oracle's copy is %#x",
							cluster, p.Kind, rep.Data[w], w, h.data[w])
					}
				}
			} else if h.dirty != 0 {
				o.fail(p.Line, "lost dirty data: cluster %d answered %v with %v but the oracle records dirty words %#08b",
					cluster, p.Kind, rep.Kind, h.dirty)
			}
		}
		delete(s.holders, cluster)

	case msg.ProbeCapture:
		switch rep.Kind {
		case msg.ReplyNotPresent:
			delete(s.holders, cluster)
		case msg.ReplyClean:
			o.Checks++
			if h != nil && h.dirty != 0 {
				o.fail(p.Line, "illegal SWcc→HWcc flip: cluster %d's capture reply claims its incoherent copy is clean but the oracle records dirty words %#08b — a dirty incoherent line must write back or upgrade, never capture clean (Fig 7b)",
					cluster, h.dirty)
			}
			if h == nil {
				h = &holder{}
				s.holders[cluster] = h
			}
			h.state = holderShared
			h.dirty = 0
			// A captured clean copy may legally be older than memory
			// (Fig 7b Case 2b): mark those words so freshness checks stay
			// quiet until the next serializing write removes the copy.
			for w := 0; w < addr.WordsPerLine; w++ {
				bit := uint8(1) << w
				if h.valid&bit != 0 && h.data[w] != s.mem[w] {
					s.unstable |= bit
				}
			}
		case msg.ReplyDirty:
			o.Checks++
			if h == nil || h.dirty == 0 {
				o.fail(p.Line, "fabricated dirty capture: cluster %d's capture reply claims dirty words %#08b but the oracle records a clean or absent copy",
					cluster, rep.Mask)
			}
			if rep.Mask != h.dirty {
				o.fail(p.Line, "capture mask mismatch: cluster %d reports dirty words %#08b but the oracle records %#08b",
					cluster, rep.Mask, h.dirty)
			}
		}

	case msg.ProbeUpgradeOwner:
		if rep.Kind == msg.ReplyNotPresent {
			delete(s.holders, cluster)
			return
		}
		if h == nil {
			h = &holder{}
			s.holders[cluster] = h
		}
		h.state = holderModified
		// The upgraded owner's dirty words are now the latest committed
		// values (Fig 7b Case 4b: single writer upgraded without
		// writeback, so memory is stale for exactly those words). Its
		// clean valid words, conversely, may legally be older than memory
		// — an uncached atomic or store can advance memory behind an
		// incoherent copy — the same surviving staleness as a clean
		// capture (Case 2b), so mark them unstable until a serializing
		// write replaces them.
		for w := 0; w < addr.WordsPerLine; w++ {
			bit := uint8(1) << w
			switch {
			case h.dirty&bit != 0:
				s.latest[w] = h.data[w]
			case h.valid&bit != 0 && h.data[w] != s.mem[w]:
				s.unstable |= bit
			}
		}
	}
}

// EvictObserved checks and retires a holder when its L2 gives up the line.
// published reports whether the cluster surrenders the line to the home
// (capacity eviction, or INV of a hardware-coherent copy): dirty words are
// then about to be written back and must match the oracle's copy. An INV of
// an incoherent line instead discards its dirty words outright (INV
// semantics), so they are neither checked nor recorded as in flight.
func (o *Oracle) EvictObserved(cluster int, e *cache.Entry, published bool) {
	s := o.lineFor(e.Line)
	h := s.holders[cluster]
	if h != nil && !e.Incoherent && e.DirtyMask != 0 {
		o.Checks++
		for w := 0; w < addr.WordsPerLine; w++ {
			bit := uint8(1) << w
			if e.DirtyMask&bit != 0 && h.valid&bit != 0 && e.Data[w] != h.data[w] {
				o.fail(e.Line, "corrupt eviction: cluster %d evicts %#x for word %d but the oracle's copy is %#x",
					cluster, e.Data[w], w, h.data[w])
			}
		}
	}
	if published && e.DirtyMask != 0 {
		s.inflight = append(s.inflight, publish{mask: e.DirtyMask, data: e.Data})
	}
	delete(s.holders, cluster)
}

// WritebackObserved checks a software flush (WB instruction): the written
// data must match the oracle's copy of the flushing cluster's dirty words,
// which become clean (the line stays resident).
func (o *Oracle) WritebackObserved(cluster int, line addr.Line, mask uint8, data [addr.WordsPerLine]uint32) {
	s := o.lineFor(line)
	s.inflight = append(s.inflight, publish{mask: mask, data: data})
	h := s.holders[cluster]
	if h == nil {
		return
	}
	o.Checks++
	for w := 0; w < addr.WordsPerLine; w++ {
		bit := uint8(1) << w
		if mask&bit != 0 && h.valid&bit != 0 && data[w] != h.data[w] {
			o.fail(line, "corrupt flush: cluster %d writes back %#x for word %d but the oracle's copy is %#x",
				cluster, data[w], w, h.data[w])
		}
	}
	h.dirty &^= mask
}

// MemMerged advances the shadow memory when the home merges a masked
// writeback (eviction, flush, probe reply). In the HWcc domain the merged
// words must be the latest committed values — hardware writebacks can only
// carry data that went through an observed Modified store.
func (o *Oracle) MemMerged(line addr.Line, mask uint8, data [addr.WordsPerLine]uint32) {
	s := o.lineFor(line)
	o.Checks++
	for w := 0; w < addr.WordsPerLine; w++ {
		bit := uint8(1) << w
		if mask&bit == 0 {
			continue
		}
		// A merge may legally deliver a value older than latest when it is
		// the arrival of a writeback published earlier (e.g. a flush issued
		// mid-transition whose line has since been upgraded and re-written):
		// match it against the in-flight set, retiring the record.
		published := s.consumePublish(w, data[w])
		if !published && !s.sw && !s.transitioning() && s.unstable&bit == 0 && data[w] != s.latest[w] {
			o.fail(line, "corrupt writeback merge: word %d merges %#x but the latest committed value is %#x",
				w, data[w], s.latest[w])
		}
		s.mem[w] = data[w]
		if s.sw || s.transitioning() {
			s.latest[w] = data[w]
		}
	}
}

// AtomicObserved checks an uncached atomic or uncached store performed at
// the L3: the read-modify-write's old value must be the shadow memory's,
// and — for hardware-coherent lines, which are recalled first — also the
// globally latest value. The new value becomes both.
func (o *Oracle) AtomicObserved(a addr.Addr, old, next uint32) {
	line := addr.LineOf(a)
	w := addr.WordIndex(a)
	bit := cache.WordBit(a)
	s := o.lineFor(line)
	o.Checks++
	if old != s.mem[w] {
		o.fail(line, "corrupt atomic: read %#x at %#x but the shadow memory holds %#x", old, uint64(a), s.mem[w])
	}
	if !s.sw && !s.transitioning() && s.unstable&bit == 0 && old != s.latest[w] {
		o.fail(line, "stale atomic: read %#x at %#x but the latest committed value is %#x — the line was not recalled",
			old, uint64(a), s.latest[w])
	}
	s.mem[w] = next
	s.latest[w] = next
	if !s.sw {
		s.unstable &^= bit
	}
}

// UncLoadObserved checks an uncached load: it reads memory directly (no
// recall), so it must return exactly the shadow memory's word.
func (o *Oracle) UncLoadObserved(a addr.Addr, v uint32) {
	line := addr.LineOf(a)
	s := o.lineFor(line)
	o.Checks++
	if v != s.mem[addr.WordIndex(a)] {
		o.fail(line, "corrupt uncached load: read %#x at %#x but the shadow memory holds %#x",
			v, uint64(a), s.mem[addr.WordIndex(a)])
	}
}

// TransitionStart records a snooped region-table flip for one line, before
// its Figure 7 protocol begins. The flip must move the line away from its
// effective domain: the committed domain, or — when flips are nested (an
// opposing table write landing while an earlier transition is still in
// flight, which the home serializes afterwards) — the pending target.
func (o *Oracle) TransitionStart(line addr.Line, toSW bool) {
	s := o.lines[line]
	if s == nil {
		// First observation of this line is its own transition. The table
		// bit is already flipped when the snoop fires, so domainOf would
		// read the post-flip domain; the pre-flip domain is by definition
		// the opposite of the target.
		s = o.newShadow(line, !toSW)
	}
	o.Checks++
	effective := s.sw
	if s.transDepth > 0 {
		effective = s.transTarget
	}
	if effective == toSW {
		o.fail(line, "redundant transition: table flip to %s but the oracle already believes the line is headed to %s",
			domainName(toSW), domainName(effective))
	}
	s.transDepth++
	s.transTarget = toSW
}

// TransitionDone checks the completed Figure 7 protocol: a flip to SWcc
// must have torn down every coherent copy (Fig 7a), a flip to HWcc must
// have captured, upgraded, or invalidated every incoherent copy (Fig 7b).
// The latest-value model is reconciled with the post-transition state.
// With nested flips, only the final completion is checked — intermediate
// states are legally mixed, since later table writes are already visible
// while earlier per-line protocols run.
func (o *Oracle) TransitionDone(line addr.Line, toSW bool) {
	s := o.lineFor(line)
	o.Checks++
	if s.transDepth == 0 {
		o.fail(line, "unmatched transition completion: a flip to %s finishes but none is in flight", domainName(toSW))
	}
	s.transDepth--
	if s.transDepth > 0 {
		return // a nested opposing flip is still pending; check at its end
	}
	toSW = s.transTarget
	if toSW {
		o.eachHolder(s, func(c int, h *holder) {
			if h.state != holderIncoherent {
				o.fail(line, "incomplete HWcc→SWcc transition: cluster %d still holds the line in %v after the teardown (Fig 7a)",
					c, h.state)
			}
		})
		// The committed value of each word is the shadow memory's, unless a
		// published writeback is still in flight toward it.
		for w := 0; w < addr.WordsPerLine; w++ {
			if v, ok := s.publishedValue(w); ok {
				s.latest[w] = v
			} else {
				s.latest[w] = s.mem[w]
			}
		}
		s.unstable = 0
		s.sw = true
	} else {
		o.eachHolder(s, func(c int, h *holder) {
			if h.state == holderIncoherent {
				o.fail(line, "incomplete SWcc→HWcc transition: cluster %d still holds the line incoherently after the capture (Fig 7b)",
					c)
			}
		})
		// Precedence per word: a surviving owner's dirty copy is newest;
		// then a published writeback still in flight (a flush issued during
		// the transition commits its value even though the merge lands
		// later); then the shadow memory.
		owner := o.modifiedOwner(s)
		for w := 0; w < addr.WordsPerLine; w++ {
			bit := uint8(1) << w
			switch {
			case owner >= 0 && s.holders[owner].dirty&bit != 0:
				s.latest[w] = s.holders[owner].data[w]
			default:
				if v, ok := s.publishedValue(w); ok {
					s.latest[w] = v
				} else {
					s.latest[w] = s.mem[w]
				}
			}
		}
		s.sw = false
	}
}

// CheckDomains verifies at quiescence that the region tables agree with
// the oracle's domain model for every line it tracked, and that no
// transition is still marked in flight. isSW is the machine's combined
// coarse+fine table lookup. Region-table lines themselves are skipped
// (their domain bits are ordinary data to the tables).
func (o *Oracle) CheckDomains(isSW func(addr.Line) bool) error {
	var bad error
	// Deterministic order: scan by sorted line address.
	lines := make([]addr.Line, 0, len(o.lines))
	for line := range o.lines {
		lines = append(lines, line)
	}
	sortLines(lines)
	for _, line := range lines {
		s := o.lines[line]
		if s.transitioning() {
			return fmt.Errorf("oracle: line %#x still mid-transition at quiescence", uint64(line.Base()))
		}
		if o.cfg.Mode != config.Cohesion || region.InTableRange(line.Base()) {
			continue
		}
		if got := isSW(line); got != s.sw {
			bad = fmt.Errorf("oracle: line %#x region table says SWcc=%v but the oracle's domain model says SWcc=%v",
				uint64(line.Base()), got, s.sw)
			break
		}
	}
	return bad
}

// TrackedLines reports how many lines the oracle has shadowed (tests).
func (o *Oracle) TrackedLines() int { return len(o.lines) }

func sortLines(lines []addr.Line) {
	sort.Slice(lines, func(i, j int) bool { return lines[i] < lines[j] })
}

func domainName(sw bool) string {
	if sw {
		return "SWcc"
	}
	return "HWcc"
}
