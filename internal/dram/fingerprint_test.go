package dram

import (
	"math/bits"
	"slices"
	"testing"

	"cohesion/internal/addr"
)

// slowFingerprint is the reference digest: the same walk as Fingerprint
// but with the block-transform fast path disabled — every written table
// line goes through the byte-defined mixLine fold. The fast path's
// contract is bit-identity with this.
func slowFingerprint(s *Store) uint64 {
	lines := make([]addr.Line, 0, len(s.lines))
	for line := range s.lines {
		lines = append(lines, line)
	}
	slices.Sort(lines)
	h := uint64(fnv64Offset)
	for _, line := range lines {
		h = mixLine(h, line, s.lines[line])
	}
	var buf [addr.WordsPerLine]uint32
	for wi, w := range s.tblWritten {
		for ; w != 0; w &= w - 1 {
			li := wi*64 + bits.TrailingZeros64(w)
			w0 := li * addr.WordsPerLine
			copy(buf[:], s.tbl[w0:w0+addr.WordsPerLine])
			h = mixLine(h, tblLine0+addr.Line(li), &buf)
		}
	}
	return h
}

// fillBlock writes every word of table block wi with pattern through the
// public write path, so the written/dirty bookkeeping is exercised too.
func fillBlock(s *Store, wi int, pattern uint32) {
	base := addr.TableBase + addr.Addr(wi*blockWords*addr.WordBytes)
	for w := 0; w < blockWords; w++ {
		s.WriteWord(base+addr.Addr(w*addr.WordBytes), pattern)
	}
}

// TestBlockXformMatchesByteLoop checks the affine identity the fast path
// rests on: folding a fully-written uniform 64-line block into the
// running FNV state via the composed transform h*mult + add[h&0xff] must
// equal 64 consecutive mixLine folds, for any incoming state. Block
// indices at both ends of the table and a spread of patterns (including
// ones whose low bytes collide across lanes) are crossed with hash
// states covering every low-byte lane.
func TestBlockXformMatchesByteLoop(t *testing.T) {
	var buf [addr.WordsPerLine]uint32
	hs := []uint64{fnv64Offset, 0, 1, ^uint64(0), 0x0123456789abcdef}
	// One state per low-byte lane: the add table is indexed by h&0xff.
	for lane := 0; lane < 256; lane++ {
		hs = append(hs, 0xdeadbeef00+uint64(lane))
	}
	for _, wi := range []int{0, 7, 255, tblLines/blockLines - 1} {
		for _, pattern := range []uint32{0, ^uint32(0), 0xdeadbeef, 0x01010101} {
			x := blockXformFor(wi, pattern)
			for i := range buf {
				buf[i] = pattern
			}
			for _, h0 := range hs {
				want := h0
				for j := 0; j < blockLines; j++ {
					want = mixLine(want, tblLine0+addr.Line(wi*blockLines+j), &buf)
				}
				got := h0*x.mult + x.add[h0&0xff]
				if got != want {
					t.Fatalf("block %d pattern %#x h0 %#x: xform %#x, byte loop %#x",
						wi, pattern, h0, got, want)
				}
			}
		}
	}
}

// TestFingerprintFastPathMatchesLineWalk builds a store mixing every
// table-block shape the fast path discriminates — fully-written uniform
// (eligible), fully-written non-uniform, ragged (partially written) —
// plus ordinary map lines, and demands Fingerprint agree bit for bit
// with the fast-path-free reference walk at every step, including after
// rewrites that flip a block's uniformity in both directions (the dirty
// bits must invalidate stale summaries).
func TestFingerprintFastPathMatchesLineWalk(t *testing.T) {
	s := NewStore()
	check := func(stage string) {
		t.Helper()
		if got, want := s.Fingerprint(), slowFingerprint(s); got != want {
			t.Fatalf("%s: fast-path fingerprint %#x, reference %#x", stage, got, want)
		}
	}

	// Ordinary map lines on both sides of the heap.
	s.WriteWord(0x100, 42)
	s.WriteWord(0x8000_0000, 7)
	check("map lines only")

	fillBlock(s, 0, ^uint32(0)) // uniform, fast-path eligible
	fillBlock(s, 3, 0)          // uniform all-zero
	check("uniform blocks")

	fillBlock(s, 5, ^uint32(0))
	s.WriteWord(addr.TableBase+addr.Addr(5*blockWords*addr.WordBytes)+64, 0x1234)
	check("non-uniform block")

	// Ragged: only the first 3 lines of block 7 written.
	base7 := addr.TableBase + addr.Addr(7*blockWords*addr.WordBytes)
	for w := 0; w < 3*addr.WordsPerLine; w++ {
		s.WriteWord(base7+addr.Addr(w*addr.WordBytes), 9)
	}
	check("ragged block")

	// SummarizeTable (the preset-time refresh) must not change the result.
	s.SummarizeTable()
	check("after SummarizeTable")

	// Break block 0's uniformity, then restore it: both transitions go
	// through the dirty bits.
	s.WriteWord(addr.TableBase+32, 0xabcd)
	check("uniform -> non-uniform")
	s.WriteWord(addr.TableBase+32, ^uint32(0))
	check("non-uniform -> uniform")

	// Repaint a uniform block with a different pattern: the cached
	// summary must not serve the old transform.
	fillBlock(s, 3, 0x5555aaaa)
	check("pattern change")
}
