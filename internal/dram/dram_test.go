package dram

import (
	"testing"
	"testing/quick"

	"cohesion/internal/addr"
	"cohesion/internal/event"
	"cohesion/internal/stats"
)

func TestStoreReadWrite(t *testing.T) {
	s := NewStore()
	if s.ReadWord(0x100) != 0 {
		t.Fatal("untouched memory not zero")
	}
	s.WriteWord(0x100, 42)
	s.WriteWord(0x104, 7)
	if s.ReadWord(0x100) != 42 || s.ReadWord(0x104) != 7 {
		t.Fatal("readback wrong")
	}
	// Unaligned address reads the containing word.
	if s.ReadWord(0x102) != 42 {
		t.Fatal("word containment wrong")
	}
	if s.LinesTouched() != 1 {
		t.Fatalf("LinesTouched = %d", s.LinesTouched())
	}
}

func TestReadLineAndMerge(t *testing.T) {
	s := NewStore()
	line := addr.LineOf(0x200)
	s.WriteWord(0x200, 1)
	s.WriteWord(0x21c, 8)
	l := s.ReadLine(line)
	if l[0] != 1 || l[7] != 8 {
		t.Fatalf("ReadLine = %v", l)
	}
	// Merge words 1 and 2 only; words 0 and 7 must survive.
	var data [addr.WordsPerLine]uint32
	data[1], data[2] = 100, 200
	data[0] = 999 // masked out; must not land
	s.MergeLine(line, 0b0000_0110, data)
	got := s.ReadLine(line)
	if got[0] != 1 || got[1] != 100 || got[2] != 200 || got[7] != 8 {
		t.Fatalf("after merge: %v", got)
	}
	// Empty mask is a no-op even on unseen lines.
	s.MergeLine(addr.Line(0xdead), 0, data)
	if s.ReadLine(addr.Line(0xdead)) != ([addr.WordsPerLine]uint32{}) {
		t.Fatal("empty-mask merge modified memory")
	}
}

// Property: disjoint merges from two writers commute (the paper's multiple-
// writer merge guarantee for disjoint write sets).
func TestQuickDisjointMergesCommute(t *testing.T) {
	f := func(maskA, maskB uint8, a, b [addr.WordsPerLine]uint32) bool {
		maskB &^= maskA // force disjoint
		line := addr.Line(5)

		s1 := NewStore()
		s1.MergeLine(line, maskA, a)
		s1.MergeLine(line, maskB, b)

		s2 := NewStore()
		s2.MergeLine(line, maskB, b)
		s2.MergeLine(line, maskA, a)

		return s1.ReadLine(line) == s2.ReadLine(line)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestControllerLatencyAndBandwidth(t *testing.T) {
	var q event.Queue
	var run stats.Run
	c := NewController(&q, &run, 2, 8, 100, 4)

	if c.ChannelForBank(0) != 0 || c.ChannelForBank(3) != 0 || c.ChannelForBank(4) != 1 {
		t.Fatal("bank->channel mapping wrong")
	}

	var done []event.Cycle
	// Three back-to-back accesses to the SAME line on channel 0: the first
	// is a row miss (100 cycles); the rest hit the open row (50 cycles)
	// after winning the channel at 4-cycle occupancy spacing.
	line := addr.Line(0)
	for i := 0; i < 3; i++ {
		c.Access(0, line, false, func() { done = append(done, q.Now()) })
	}
	// One access on channel 1: independent (its own row miss).
	c.Access(4, line, true, func() { done = append(done, q.Now()) })
	q.Run(0)

	// Channel 0: starts at 0,4,8 -> completions 100, 54, 58. Channel 1:
	// start 0 -> 100. Events fire in time order: 54, 58, 100, 100.
	want := []event.Cycle{54, 58, 100, 100}
	if len(done) != 4 {
		t.Fatalf("completions = %v", done)
	}
	for i, w := range want {
		if done[i] != w {
			t.Fatalf("completion %d at %d, want %d (all: %v)", i, done[i], w, done)
		}
	}
	if run.DRAMReads != 3 || run.DRAMWrites != 1 {
		t.Fatalf("stats reads=%d writes=%d", run.DRAMReads, run.DRAMWrites)
	}
	if c.RowHits != 2 || c.RowMisses != 2 {
		t.Fatalf("row hits/misses = %d/%d, want 2/2", c.RowHits, c.RowMisses)
	}
}

func TestRowBufferLocality(t *testing.T) {
	var q event.Queue
	c := NewController(&q, nil, 1, 4, 100, 4)
	sameRow := []addr.Line{0, 1, 2, 3}                       // within one 2 KB row
	otherRow := addr.Line(BanksPerChannel * (1 << (11 - 5))) // same bank, different row
	for _, l := range sameRow {
		c.Access(0, l, false, func() {})
	}
	q.Run(0)
	if c.RowMisses != 1 || c.RowHits != 3 {
		t.Fatalf("same-row: hits/misses = %d/%d, want 3/1", c.RowHits, c.RowMisses)
	}
	c.Access(0, otherRow, false, func() {})
	c.Access(0, sameRow[0], false, func() {})
	q.Run(0)
	// Both are row misses: the second because otherRow closed row 0 in the
	// same bank.
	if c.RowMisses != 3 {
		t.Fatalf("bank conflict not modelled: misses = %d, want 3", c.RowMisses)
	}
}

func TestDifferentBanksKeepRowsOpen(t *testing.T) {
	var q event.Queue
	c := NewController(&q, nil, 1, 4, 100, 4)
	bank0 := addr.Line(0)
	bank1 := addr.Line(1 << (11 - 5)) // next 2 KB row -> next DRAM bank
	c.Access(0, bank0, false, func() {})
	c.Access(0, bank1, false, func() {})
	c.Access(0, bank0, false, func() {}) // bank 0's row still open
	c.Access(0, bank1, false, func() {})
	q.Run(0)
	if c.RowHits != 2 || c.RowMisses != 2 {
		t.Fatalf("hits/misses = %d/%d, want 2/2", c.RowHits, c.RowMisses)
	}
}

func TestQueueDelay(t *testing.T) {
	var q event.Queue
	c := NewController(&q, nil, 1, 4, 100, 4)
	if c.QueueDelay(0) != 0 {
		t.Fatal("idle channel has delay")
	}
	c.Access(0, 0, false, func() {})
	c.Access(0, 0, false, func() {})
	if c.QueueDelay(0) != 8 {
		t.Fatalf("QueueDelay = %d, want 8", c.QueueDelay(0))
	}
	q.Run(0)
}

func TestBadGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad geometry accepted")
		}
	}()
	var q event.Queue
	NewController(&q, nil, 3, 8, 100, 4)
}
