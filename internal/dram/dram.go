// Package dram provides the off-chip memory substrate: a word-addressed
// backing store holding the architectural value of every memory location,
// and a GDDR5-like timing model — per-channel bandwidth queueing over
// banked devices with open-row buffers (a row hit costs column access
// only; a row miss pays precharge + activate).
//
// The paper's simulator uses a cycle-accurate GDDR5 model; this model
// keeps the two effects the evaluation depends on — channel queueing
// under load and row-locality sensitivity — without modelling individual
// command buses. The substitution is documented in DESIGN.md.
package dram

import (
	"math/bits"
	"slices"

	"cohesion/internal/addr"
	"cohesion/internal/event"
	"cohesion/internal/stats"
)

// Geometry of the dense fine-grain-table segment.
const (
	tblWords = addr.TableBytes / addr.WordBytes
	tblLines = addr.TableBytes / addr.LineBytes
	tblLine0 = addr.Line(addr.TableBase >> addr.LineShift)
)

// Store holds the architectural contents of memory, one 32-bit word at a
// time, organized by cache line. Lines never written read as zero.
//
// The fine-grain region table segment [addr.TableBase, +TableBytes) is
// held densely instead of in the line map: Cohesion presets table words
// covering the whole incoherent heap at load time, which would swamp the
// map (and the address-ordered fingerprint walk) with tens of thousands
// of lines. The dense arrays are allocated lazily on the first
// table-range write, so SWcc/HWcc machines never pay for them. The two
// representations are observationally identical: Lines, ReadLine,
// LinesTouched, and Fingerprint present the merged image in address
// order, with a table line participating once any of its words has been
// written (even with zero), exactly as a map entry would.
type Store struct {
	lines map[addr.Line]*[addr.WordsPerLine]uint32

	tbl        []uint32 // table words, indexed by (addr-TableBase)/WordBytes
	tblWritten []uint64 // one bit per table line: line has been written

	// Per-block (64 lines = one tblWritten word) summaries feeding the
	// fingerprint fast path: a dirty bit set on every table write, and a
	// lazily recomputed "uniform" bit + pattern consulted by Fingerprint
	// (see fingerprint.go).
	tblDirty   []uint64
	tblUniform []uint64
	tblPattern []uint32
}

// NewStore returns an empty memory image.
func NewStore() *Store {
	return &Store{lines: make(map[addr.Line]*[addr.WordsPerLine]uint32)}
}

// inTable reports whether a falls in the dense table segment.
func inTable(a addr.Addr) bool {
	return a >= addr.TableBase && a-addr.TableBase < addr.TableBytes
}

// ensureTbl allocates the dense segment on first table-range write.
func (s *Store) ensureTbl() {
	if s.tbl == nil {
		s.tbl = make([]uint32, tblWords)
		s.tblWritten = make([]uint64, tblLines/64)
		nblocks := tblLines / blockLines
		s.tblDirty = make([]uint64, (nblocks+63)/64)
		s.tblUniform = make([]uint64, (nblocks+63)/64)
		s.tblPattern = make([]uint32, nblocks)
	}
}

// ReadWord returns the word containing address a.
func (s *Store) ReadWord(a addr.Addr) uint32 {
	if inTable(a) {
		if s.tbl == nil {
			return 0
		}
		return s.tbl[(a-addr.TableBase)>>addr.WordShift]
	}
	l := s.lines[addr.LineOf(a)]
	if l == nil {
		return 0
	}
	return l[addr.WordIndex(a)]
}

// WriteWord stores v into the word containing address a.
func (s *Store) WriteWord(a addr.Addr, v uint32) {
	if inTable(a) {
		s.ensureTbl()
		off := a - addr.TableBase
		s.tbl[off>>addr.WordShift] = v
		li := uint(off >> addr.LineShift)
		s.tblWritten[li/64] |= 1 << (li % 64)
		s.markTblDirty(li)
		return
	}
	line := addr.LineOf(a)
	l := s.lines[line]
	if l == nil {
		l = new([addr.WordsPerLine]uint32)
		s.lines[line] = l
	}
	l[addr.WordIndex(a)] = v
}

// ReadLine copies the full contents of a line.
func (s *Store) ReadLine(line addr.Line) [addr.WordsPerLine]uint32 {
	if base := line.Base(); inTable(base) {
		var out [addr.WordsPerLine]uint32
		if s.tbl != nil {
			w0 := (base - addr.TableBase) >> addr.WordShift
			copy(out[:], s.tbl[w0:w0+addr.WordsPerLine])
		}
		return out
	}
	if l := s.lines[line]; l != nil {
		return *l
	}
	return [addr.WordsPerLine]uint32{}
}

// MergeLine writes back the words of data selected by mask (bit i = word i),
// leaving other words untouched. This implements the paper's per-word
// dirty-bit merge that lets the L3 combine disjoint write sets from
// multiple SWcc writers.
func (s *Store) MergeLine(line addr.Line, mask uint8, data [addr.WordsPerLine]uint32) {
	if mask == 0 {
		return
	}
	if base := line.Base(); inTable(base) {
		s.ensureTbl()
		w0 := (base - addr.TableBase) >> addr.WordShift
		for w := 0; w < addr.WordsPerLine; w++ {
			if mask&(1<<w) != 0 {
				s.tbl[w0+addr.Addr(w)] = data[w]
			}
		}
		li := uint(line - tblLine0)
		s.tblWritten[li/64] |= 1 << (li % 64)
		s.markTblDirty(li)
		return
	}
	l := s.lines[line]
	if l == nil {
		l = new([addr.WordsPerLine]uint32)
		s.lines[line] = l
	}
	for w := 0; w < addr.WordsPerLine; w++ {
		if mask&(1<<w) != 0 {
			l[w] = data[w]
		}
	}
}

// tblLinesTouched counts written table lines.
func (s *Store) tblLinesTouched() int {
	n := 0
	for _, w := range s.tblWritten {
		n += bits.OnesCount64(w)
	}
	return n
}

// LinesTouched reports how many distinct lines have ever been written.
func (s *Store) LinesTouched() int { return len(s.lines) + s.tblLinesTouched() }

// Lines returns every written line in address order (the checkpoint layer
// serializes the image line by line).
func (s *Store) Lines() []addr.Line {
	lines := make([]addr.Line, 0, len(s.lines)+s.tblLinesTouched())
	for line := range s.lines {
		lines = append(lines, line)
	}
	slices.Sort(lines)
	// The table segment is the top of the address space: every written
	// table line sorts after every map line.
	for wi, w := range s.tblWritten {
		for ; w != 0; w &= w - 1 {
			li := wi*64 + bits.TrailingZeros64(w)
			lines = append(lines, tblLine0+addr.Line(li))
		}
	}
	return lines
}

// fnv64Prime and fnv64Offset are the FNV-1a constants for the fingerprint.
const (
	fnv64Prime  = 1099511628211
	fnv64Offset = 14695981039346656037
)

// fnv64Prime4 is fnv64Prime^4 mod 2^64: mixing a zero byte is
// h = (h^0)*p = h*p, so a run of four zero bytes is one multiply.
var fnv64Prime4 = func() uint64 {
	p := uint64(fnv64Prime)
	return p * p * p * p
}()

// mixLine folds one line (its number, then its eight words) into the
// running FNV-1a state. The digest is defined byte by byte,
// little-endian, with both the line number and each word widened to
// eight bytes; the zero upper halves collapse into multiplies by
// fnv64Prime4, which is bit-identical to the byte loop and roughly
// halves the serial chain (the Cohesion table preset makes end-of-run
// fingerprints mix ~32K table lines, so this is hot).
func mixLine(h uint64, line addr.Line, words *[addr.WordsPerLine]uint32) uint64 {
	v := uint64(line)
	for i := 0; i < 4; i++ {
		h ^= v & 0xff
		h *= fnv64Prime
		v >>= 8
	}
	if v == 0 { // always, in a 32-bit address space
		h *= fnv64Prime4
	} else {
		for i := 0; i < 4; i++ {
			h ^= v & 0xff
			h *= fnv64Prime
			v >>= 8
		}
	}
	for _, w := range words {
		v = uint64(w)
		for i := 0; i < 4; i++ {
			h ^= v & 0xff
			h *= fnv64Prime
			v >>= 8
		}
		h *= fnv64Prime4 // bytes 4..7 of the widened word are zero
	}
	return h
}

// Fingerprint digests the full memory image (FNV-1a over lines in address
// order), independent of map iteration order: equal images yield equal
// fingerprints. Determinism tests use it to compare whole runs cheaply.
func (s *Store) Fingerprint() uint64 {
	lines := make([]addr.Line, 0, len(s.lines))
	for line := range s.lines {
		lines = append(lines, line)
	}
	slices.Sort(lines)
	h := uint64(fnv64Offset)
	for _, line := range lines {
		h = mixLine(h, line, s.lines[line])
	}
	// Table lines sort after everything in the map (top of the address
	// space), so they are mixed last, in ascending order. A fully-written
	// uniform block (the overwhelmingly common case: the Cohesion preset
	// paints the table in solid runs) is folded in with one cached affine
	// transform instead of ~4600 dependent multiplies; ragged or
	// non-uniform blocks take the per-line path with the concrete running
	// state, so the result is bit-identical either way.
	var buf [addr.WordsPerLine]uint32
	for wi, w := range s.tblWritten {
		if w == 0 {
			continue
		}
		if w == ^uint64(0) {
			if pattern, ok := s.blockUniform(wi); ok {
				x := blockXformFor(wi, pattern)
				h = h*x.mult + x.add[h&0xff]
				continue
			}
		}
		for ; w != 0; w &= w - 1 {
			li := wi*64 + bits.TrailingZeros64(w)
			w0 := li * addr.WordsPerLine
			copy(buf[:], s.tbl[w0:w0+addr.WordsPerLine])
			h = mixLine(h, tblLine0+addr.Line(li), &buf)
		}
	}
	return h
}

// Device geometry: a 2 KB row (the paper's footnote strides the address
// space across controllers at DRAM-row granularity, addr[10..0] within a
// row) and sixteen banks per channel.
const (
	rowShift        = 11 // log2(2 KB row)
	BanksPerChannel = 16
)

// Controller models the DRAM channels' timing. Each channel is a FIFO
// resource (a line transfer occupies it for OccupancyCycles); each of its
// banks keeps one row open — a transfer to the open row completes after
// the row-hit latency, any other row pays the full access latency.
type Controller struct {
	q               *event.Queue
	run             *stats.Run
	missLatency     event.Cycle // precharge + activate + CAS
	hitLatency      event.Cycle // CAS only (open row)
	occupancy       event.Cycle
	banksPerChannel int // L3 banks per channel
	nextFree        []event.Cycle
	openRow         [][]uint64 // [channel][dramBank] -> open row id + 1 (0 = none)

	// RowHits/RowMisses report the row-buffer behaviour of the run.
	RowHits, RowMisses uint64
}

// NewController builds a timing model with the given channel count, the
// number of L3 banks feeding each channel, the row-miss access latency,
// and per-line channel occupancy (all in cycles). The row-hit latency is
// half the miss latency, floor 1.
func NewController(q *event.Queue, run *stats.Run, channels, l3Banks, latency, occupancy int) *Controller {
	if channels < 1 || l3Banks < channels || l3Banks%channels != 0 {
		panic("dram: bad channel/bank geometry")
	}
	hit := latency / 2
	if hit < 1 {
		hit = 1
	}
	c := &Controller{
		q:               q,
		run:             run,
		missLatency:     event.Cycle(latency),
		hitLatency:      event.Cycle(hit),
		occupancy:       event.Cycle(occupancy),
		banksPerChannel: l3Banks / channels,
		nextFree:        make([]event.Cycle, channels),
		openRow:         make([][]uint64, channels),
	}
	for i := range c.openRow {
		c.openRow[i] = make([]uint64, BanksPerChannel)
	}
	return c
}

// ChannelForBank maps an L3 bank to its DRAM channel (four banks per
// channel in the Table 3 configuration).
func (c *Controller) ChannelForBank(bank int) int { return bank / c.banksPerChannel }

// Access schedules a line read or write from the given L3 bank and runs
// done when the transfer completes. Timing only; data movement is the
// caller's job via Store.
func (c *Controller) Access(bank int, line addr.Line, write bool, done func()) {
	ch := c.ChannelForBank(bank)
	start := c.q.Now()
	if c.nextFree[ch] > start {
		start = c.nextFree[ch]
	}
	c.nextFree[ch] = start + c.occupancy

	rowID := uint64(line.Base()) >> rowShift
	dramBank := int(rowID % BanksPerChannel)
	row := rowID/BanksPerChannel + 1 // +1 so 0 means "no open row"
	latency := c.missLatency
	if c.openRow[ch][dramBank] == row {
		latency = c.hitLatency
		c.RowHits++
	} else {
		c.openRow[ch][dramBank] = row
		c.RowMisses++
	}

	if c.run != nil {
		if write {
			c.run.DRAMWrites++
		} else {
			c.run.DRAMReads++
		}
	}
	c.q.At(start+latency, done)
}

// QueueDelay reports how far ahead of now the channel for bank is booked;
// useful for tests asserting the bandwidth model engages.
func (c *Controller) QueueDelay(bank int) event.Cycle {
	ch := c.ChannelForBank(bank)
	if c.nextFree[ch] <= c.q.Now() {
		return 0
	}
	return c.nextFree[ch] - c.q.Now()
}
