// Fingerprint fast path for the dense fine-grain-table segment.
//
// The Cohesion preset writes the region table across the whole incoherent
// heap, so end-of-run fingerprints mix ~32K table lines whose content is
// almost always uniform (every word 0xffffffff or 0). Mixing them byte by
// byte is a serial FNV-1a dependency chain — ~72 dependent multiplies per
// line, about 2ms per fingerprint at Table 3 scale — and was the single
// largest contributor to Cohesion-mode finalize time.
//
// FNV-1a is affine per low-byte lane: one byte step is
//
//	h' = (h ^ b) * p
//
// and since b < 256, the xor only disturbs the low 8 bits, so
// (h ^ b) = h + d where d = ((h&0xff) ^ b) - (h&0xff) depends only on h's
// low byte. The low byte itself evolves independently of the rest of h
// (lo' = ((lo^b)*byte(p)) & 0xff). Folding a fixed byte sequence into h is
// therefore exactly
//
//	h_out = h_in * p^n + C[h_in & 0xff]
//
// for a 256-entry constant table C. These lane transforms compose, so one
// table per 64-line block (one tblWritten word) collapses ~4600 dependent
// multiplies into a multiply and an add, bit-identical to the byte loop.
//
// Block transforms depend only on the block index and the uniform word
// pattern — not on the Store — so they are cached process-wide: every
// machine in a bench or test process shares one build (~40µs per block).
package dram

import (
	"sync"

	"cohesion/internal/addr"
)

const (
	blockLines = 64 // lines per tblWritten word
	blockWords = blockLines * addr.WordsPerLine
)

// blockXform is the composed affine transform of mixing one fully-written
// uniform 64-line block: apply as h = h*mult + add[h&0xff].
type blockXform struct {
	mult uint64
	add  [256]uint64
}

type blockKey struct {
	wi      int    // block index (tblWritten word index)
	pattern uint32 // uniform content of all words in the block
}

var (
	xformMu    sync.Mutex
	xformCache = map[blockKey]*blockXform{}
)

// powPrime returns fnv64Prime^n mod 2^64.
func powPrime(n int) uint64 {
	r := uint64(1)
	for i := 0; i < n; i++ {
		r *= fnv64Prime
	}
	return r
}

// mixTail folds the per-block-constant byte suffix of one table line into
// h: line-number bytes 1-3, the zero upper half of the widened line
// number, then the eight words of a uniform block's pattern. This is
// mixLine minus the leading low line-number byte (71 prime multiplies).
func mixTail(h uint64, b1, b2, b3 byte, pattern uint32) uint64 {
	h ^= uint64(b1)
	h *= fnv64Prime
	h ^= uint64(b2)
	h *= fnv64Prime
	h ^= uint64(b3)
	h *= fnv64Prime
	h *= fnv64Prime4
	for w := 0; w < addr.WordsPerLine; w++ {
		v := uint64(pattern)
		for i := 0; i < 4; i++ {
			h ^= v & 0xff
			h *= fnv64Prime
			v >>= 8
		}
		h *= fnv64Prime4
	}
	return h
}

// blockXformFor returns the (cached) transform for block wi filled
// uniformly with pattern.
func blockXformFor(wi int, pattern uint32) *blockXform {
	k := blockKey{wi, pattern}
	xformMu.Lock()
	defer xformMu.Unlock()
	if x := xformCache[k]; x != nil {
		return x
	}
	x := buildBlockXform(wi, pattern)
	xformCache[k] = x
	return x
}

func buildBlockXform(wi int, pattern uint32) *blockXform {
	// A 64-aligned 64-line run never crosses a 256-line boundary, so the
	// upper line-number bytes are constant across the block; only the low
	// byte varies (and without carry).
	ln := uint64(tblLine0) + uint64(wi*blockLines)
	b1, b2, b3 := byte(ln>>8), byte(ln>>16), byte(ln>>24)

	// Lane table for the shared tail: tail(h) = h*tailMult + tailAdd[lo].
	// The representative h = lo is exact: the transform is affine per lane.
	tailMult := powPrime(71)
	var tailAdd [256]uint64
	for lo := 0; lo < 256; lo++ {
		tailAdd[lo] = mixTail(uint64(lo), b1, b2, b3, pattern) - uint64(lo)*tailMult
	}

	// Fold the 64 line transforms (low-byte step, then tail) into one.
	lineMult := fnv64Prime * tailMult
	x := &blockXform{mult: 1}
	for j := 0; j < blockLines; j++ {
		b0 := uint64(byte(ln + uint64(j)))
		newMult := x.mult * lineMult
		var add [256]uint64
		for lo := 0; lo < 256; lo++ {
			v := uint64(lo)*x.mult + x.add[lo] // acc applied to the lane representative
			v = (v ^ b0) * fnv64Prime          // line-number low byte
			v = v*tailMult + tailAdd[v&0xff]   // shared tail
			add[lo] = v - uint64(lo)*newMult
		}
		x.mult, x.add = newMult, add
	}
	return x
}

// markTblDirty flags the block holding table line li as changed since its
// last uniformity scan.
func (s *Store) markTblDirty(li uint) {
	bi := li / blockLines
	s.tblDirty[bi/64] |= 1 << (bi % 64)
}

// blockUniform reports whether block wi (which must be fully written) is
// a single repeated word, rescanning it if written since the last scan.
func (s *Store) blockUniform(wi int) (uint32, bool) {
	if s.tblDirty[wi/64]&(1<<(wi%64)) != 0 {
		s.rescanBlock(wi)
	}
	if s.tblUniform[wi/64]&(1<<(wi%64)) == 0 {
		return 0, false
	}
	return s.tblPattern[wi], true
}

// SummarizeTable refreshes the uniformity summary of every written block
// whose content changed since its last scan. The machine calls it after
// bulk table presets so the ~1MB scan lands at load time (host-side,
// untimed) rather than in the first end-of-run fingerprint; Fingerprint
// then only rescans blocks the run itself dirtied. Safe to call at any
// time — summaries are consulted lazily and re-validated per dirty bit.
func (s *Store) SummarizeTable() {
	if s.tbl == nil {
		return
	}
	for wi := range s.tblWritten {
		if s.tblWritten[wi] != 0 && s.tblDirty[wi/64]&(1<<(wi%64)) != 0 {
			s.rescanBlock(wi)
		}
	}
}

func (s *Store) rescanBlock(wi int) {
	s.tblDirty[wi/64] &^= 1 << (wi % 64)
	w0 := wi * blockWords
	p := s.tbl[w0]
	for _, v := range s.tbl[w0+1 : w0+blockWords] {
		if v != p {
			s.tblUniform[wi/64] &^= 1 << (wi % 64)
			return
		}
	}
	s.tblPattern[wi] = p
	s.tblUniform[wi/64] |= 1 << (wi % 64)
}
