// Package config describes a simulated machine: sizing, timing, directory
// organization, and which coherence model the run uses. Table3 reproduces
// the paper's Table 3 exactly; scaled presets keep tests and benches fast
// while exercising identical mechanisms.
package config

import (
	"errors"
	"fmt"

	"cohesion/internal/addr"
)

// Mode selects the memory model for a run (the paper's four design points).
type Mode uint8

const (
	// SWcc: software-managed coherence only. No directory; all sharing is
	// handled by explicit flush/invalidate at task boundaries.
	SWcc Mode = iota
	// HWcc: hardware-managed (MSI directory) coherence for all of memory.
	HWcc
	// Cohesion: hybrid. Default HWcc, with region tables moving lines into
	// the SWcc domain and back at run time.
	Cohesion
)

func (m Mode) String() string {
	switch m {
	case SWcc:
		return "SWcc"
	case HWcc:
		return "HWcc"
	case Cohesion:
		return "Cohesion"
	}
	return fmt.Sprintf("Mode(%d)", uint8(m))
}

// DirKind selects the directory organization (paper §3.2, §4.1).
type DirKind uint8

const (
	// DirNone: no directory (SWcc runs).
	DirNone DirKind = iota
	// DirInfinite: optimistic full-map directory with unbounded capacity and
	// full associativity; zero-conflict (the paper's "HWcc ideal").
	DirInfinite
	// DirSparse: realistic sparse set-associative full-map directory
	// (16K entries × 128 ways per L3 bank by default).
	DirSparse
	// DirLimited4B: Dir4B limited-pointer directory: four sharer pointers
	// per entry; overflow sets a broadcast bit (sparse storage).
	DirLimited4B
)

func (k DirKind) String() string {
	switch k {
	case DirNone:
		return "none"
	case DirInfinite:
		return "full-map (infinite)"
	case DirSparse:
		return "sparse full-map"
	case DirLimited4B:
		return "Dir4B sparse"
	}
	return fmt.Sprintf("DirKind(%d)", uint8(k))
}

// Machine is the full description of a simulated processor. All sizes are
// bytes unless suffixed otherwise; all latencies are core cycles.
type Machine struct {
	// Topology.
	Clusters        int // number of 8-core clusters
	CoresPerCluster int
	L3Banks         int
	DRAMChannels    int

	// Caches.
	L1ISize, L1IAssoc int
	L1DSize, L1DAssoc int
	L2Size, L2Assoc   int
	L3Size, L3Assoc   int // L3Size is the total across banks

	// L2MSHRs bounds each cluster's outstanding L2 misses (miss-status
	// holding registers); further misses stall at the L2 until a slot
	// frees. The eight blocking cores of a cluster need at most eight.
	L2MSHRs int

	// Latencies (cycles) and bandwidth.
	L1Latency         int
	L2Latency         int
	L3Latency         int
	TreeLatency       int // cluster -> tree root, one way
	XbarLatency       int // tree root -> L3 bank, one way
	DRAMLatency       int // controller + device access
	DRAMCyclesPerLine int // per-line occupancy of a channel (bandwidth model)

	// Directory.
	Directory         DirKind
	DirEntriesPerBank int // sparse/limited capacity; ignored for infinite
	DirAssoc          int // sparse/limited associativity; 0 = fully associative

	// Memory model.
	Mode Mode

	// SWcc/Cohesion behaviour toggles (ablations; defaults match the paper).
	ReadReleases    bool // HWcc sends read releases on clean evictions
	CoarseTable     bool // Cohesion uses the coarse-grain region table
	TableCachedInL3 bool // fine-grain region table lookups may hit in L3

	// NetJitter, when positive, adds up to this many random extra cycles
	// of occupancy to every link traversal (seeded by NetJitterSeed).
	// Per-link FIFO ordering is preserved; only cross-link interleavings
	// change. Robustness-testing aid, off by default.
	NetJitter     int
	NetJitterSeed int64

	// TrapOnRace makes the directory signal an exception with the
	// transition acknowledgement when a SW-to-HW capture finds the same
	// word dirty in multiple L2s (paper §3.6: "For debugging, it may be
	// useful to have the directory signal an exception with its return
	// message to the requesting core").
	TrapOnRace bool

	// Runtime sizing.
	StackBytesPerCore int

	// Label names the configuration in reports.
	Label string
}

// Table3 returns the paper's full 1024-core baseline configuration
// (Table 3), with the realistic sparse directory.
func Table3() Machine {
	return Machine{
		Clusters:        128,
		CoresPerCluster: 8,
		L3Banks:         32,
		DRAMChannels:    8,

		L1ISize: 2 << 10, L1IAssoc: 2,
		L1DSize: 1 << 10, L1DAssoc: 2,
		L2Size: 64 << 10, L2Assoc: 16,
		L3Size: 4 << 20, L3Assoc: 8,

		L2MSHRs:           16,
		L1Latency:         1,
		L2Latency:         4,
		L3Latency:         16,
		TreeLatency:       6,
		XbarLatency:       4,
		DRAMLatency:       100,
		DRAMCyclesPerLine: 4, // 32 B / (192 GB/s / 8 ch / 1.5 GHz) ≈ 2; 4 adds command overhead

		Directory:         DirSparse,
		DirEntriesPerBank: 16 << 10,
		DirAssoc:          128,

		Mode:            HWcc,
		ReadReleases:    true,
		CoarseTable:     true,
		TableCachedInL3: true,

		StackBytesPerCore: 4 << 10,
		Label:             "table3",
	}
}

// Scaled returns a configuration with the same per-cluster geometry and
// timing as Table 3 but fewer clusters/banks/channels, for fast tests and
// benches. clusters must be a multiple of banks and banks a multiple of
// channels for even striding; Scaled picks sensible bank/channel counts.
func Scaled(clusters int) Machine {
	m := Table3()
	m.Clusters = clusters
	m.L3Banks = clusters / 4
	if m.L3Banks < 1 {
		m.L3Banks = 1
	}
	if m.L3Banks > 32 {
		m.L3Banks = 32
	}
	m.DRAMChannels = m.L3Banks / 4
	if m.DRAMChannels < 1 {
		m.DRAMChannels = 1
	}
	m.L3Size = m.L3Banks * (128 << 10) // keep 128 KB per bank, as in Table 3
	m.DirEntriesPerBank = 16 << 10
	m.Label = fmt.Sprintf("scaled-%dc", clusters*m.CoresPerCluster)
	return m
}

// Cores returns the total core count.
func (m Machine) Cores() int { return m.Clusters * m.CoresPerCluster }

// L3BankSize returns the per-bank L3 capacity in bytes.
func (m Machine) L3BankSize() int { return m.L3Size / m.L3Banks }

// L2Lines returns the number of lines in one L2.
func (m Machine) L2Lines() int { return m.L2Size / addr.LineBytes }

// WithMode returns a copy with the memory model (and matching directory
// default) switched: SWcc drops the directory, HWcc/Cohesion keep whatever
// directory is configured (or restore sparse if none).
func (m Machine) WithMode(mode Mode) Machine {
	m.Mode = mode
	switch mode {
	case SWcc:
		m.Directory = DirNone
	case HWcc, Cohesion:
		if m.Directory == DirNone {
			m.Directory = DirSparse
		}
	}
	return m
}

// WithDirectory returns a copy using the given directory organization and
// capacity. entriesPerBank and assoc are ignored for DirInfinite; assoc 0
// means fully associative.
func (m Machine) WithDirectory(kind DirKind, entriesPerBank, assoc int) Machine {
	m.Directory = kind
	m.DirEntriesPerBank = entriesPerBank
	m.DirAssoc = assoc
	return m
}

// Validate checks structural invariants the simulator depends on.
func (m Machine) Validate() error {
	switch {
	case m.Clusters < 1:
		return errors.New("config: need at least one cluster")
	case m.CoresPerCluster < 1:
		return errors.New("config: need at least one core per cluster")
	case m.L3Banks < 1:
		return errors.New("config: need at least one L3 bank")
	case m.DRAMChannels < 1:
		return errors.New("config: need at least one DRAM channel")
	case m.L3Banks%m.DRAMChannels != 0:
		return fmt.Errorf("config: L3 banks (%d) must be a multiple of DRAM channels (%d)", m.L3Banks, m.DRAMChannels)
	case m.L3Banks&(m.L3Banks-1) != 0:
		return fmt.Errorf("config: L3 banks (%d) must be a power of two for address striding", m.L3Banks)
	}
	for _, c := range []struct {
		name        string
		size, assoc int
	}{
		{"L1I", m.L1ISize, m.L1IAssoc},
		{"L1D", m.L1DSize, m.L1DAssoc},
		{"L2", m.L2Size, m.L2Assoc},
		{"L3 bank", m.L3BankSize(), m.L3Assoc},
	} {
		lines := c.size / addr.LineBytes
		if c.size%addr.LineBytes != 0 || lines < c.assoc || c.assoc < 1 || lines%c.assoc != 0 {
			return fmt.Errorf("config: bad %s geometry: %d bytes, %d-way", c.name, c.size, c.assoc)
		}
	}
	if m.Mode != SWcc && m.Directory == DirNone {
		return fmt.Errorf("config: mode %v requires a directory", m.Mode)
	}
	if m.Mode == SWcc && m.Directory != DirNone {
		return errors.New("config: SWcc mode must not configure a directory")
	}
	if (m.Directory == DirSparse || m.Directory == DirLimited4B) && m.DirEntriesPerBank < 1 {
		return errors.New("config: sparse/limited directory needs DirEntriesPerBank >= 1")
	}
	if m.DirAssoc > 0 && m.DirEntriesPerBank%m.DirAssoc != 0 {
		return fmt.Errorf("config: directory entries (%d) must be a multiple of associativity (%d)", m.DirEntriesPerBank, m.DirAssoc)
	}
	if m.StackBytesPerCore < addr.LineBytes {
		return errors.New("config: stacks must hold at least one line")
	}
	if m.L2MSHRs < 1 {
		return errors.New("config: need at least one L2 MSHR")
	}
	return nil
}
