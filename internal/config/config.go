// Package config describes a simulated machine: sizing, timing, directory
// organization, and which coherence model the run uses. Table3 reproduces
// the paper's Table 3 exactly; scaled presets keep tests and benches fast
// while exercising identical mechanisms.
package config

import (
	"fmt"

	"cohesion/internal/addr"
	"cohesion/internal/simerr"
)

// Mode selects the memory model for a run (the paper's four design points).
type Mode uint8

const (
	// SWcc: software-managed coherence only. No directory; all sharing is
	// handled by explicit flush/invalidate at task boundaries.
	SWcc Mode = iota
	// HWcc: hardware-managed (MSI directory) coherence for all of memory.
	HWcc
	// Cohesion: hybrid. Default HWcc, with region tables moving lines into
	// the SWcc domain and back at run time.
	Cohesion
)

func (m Mode) String() string {
	switch m {
	case SWcc:
		return "SWcc"
	case HWcc:
		return "HWcc"
	case Cohesion:
		return "Cohesion"
	}
	return fmt.Sprintf("Mode(%d)", uint8(m))
}

// DirKind selects the directory organization (paper §3.2, §4.1).
type DirKind uint8

const (
	// DirNone: no directory (SWcc runs).
	DirNone DirKind = iota
	// DirInfinite: optimistic full-map directory with unbounded capacity and
	// full associativity; zero-conflict (the paper's "HWcc ideal").
	DirInfinite
	// DirSparse: realistic sparse set-associative full-map directory
	// (16K entries × 128 ways per L3 bank by default).
	DirSparse
	// DirLimited4B: Dir4B limited-pointer directory: four sharer pointers
	// per entry; overflow sets a broadcast bit (sparse storage).
	DirLimited4B
)

func (k DirKind) String() string {
	switch k {
	case DirNone:
		return "none"
	case DirInfinite:
		return "full-map (infinite)"
	case DirSparse:
		return "sparse full-map"
	case DirLimited4B:
		return "Dir4B sparse"
	}
	return fmt.Sprintf("DirKind(%d)", uint8(k))
}

// Machine is the full description of a simulated processor. All sizes are
// bytes unless suffixed otherwise; all latencies are core cycles.
type Machine struct {
	// Topology.
	Clusters        int // number of 8-core clusters
	CoresPerCluster int
	L3Banks         int
	DRAMChannels    int

	// Caches.
	L1ISize, L1IAssoc int
	L1DSize, L1DAssoc int
	L2Size, L2Assoc   int
	L3Size, L3Assoc   int // L3Size is the total across banks

	// L2MSHRs bounds each cluster's outstanding L2 misses (miss-status
	// holding registers); further misses stall at the L2 until a slot
	// frees. The eight blocking cores of a cluster need at most eight.
	L2MSHRs int

	// Latencies (cycles) and bandwidth.
	L1Latency         int
	L2Latency         int
	L3Latency         int
	TreeLatency       int // cluster -> tree root, one way
	XbarLatency       int // tree root -> L3 bank, one way
	DRAMLatency       int // controller + device access
	DRAMCyclesPerLine int // per-line occupancy of a channel (bandwidth model)

	// Directory.
	Directory         DirKind
	DirEntriesPerBank int // sparse/limited capacity; ignored for infinite
	DirAssoc          int // sparse/limited associativity; 0 = fully associative

	// Memory model.
	Mode Mode

	// SWcc/Cohesion behaviour toggles (ablations; defaults match the paper).
	ReadReleases    bool // HWcc sends read releases on clean evictions
	CoarseTable     bool // Cohesion uses the coarse-grain region table
	TableCachedInL3 bool // fine-grain region table lookups may hit in L3

	// NetJitter, when positive, adds up to this many random extra cycles
	// of occupancy to every link traversal (seeded by NetJitterSeed).
	// Per-link FIFO ordering is preserved; only cross-link interleavings
	// change. Robustness-testing aid, off by default.
	NetJitter     int
	NetJitterSeed int64

	// Faults configures deterministic fault injection at the interconnect
	// and directory layers (drops, duplicate deliveries, delay spikes,
	// capacity NACKs). Zero value = no faults.
	Faults FaultPlan

	// OracleEnabled attaches the online coherence oracle (internal/oracle):
	// a shadow sequential memory plus per-line domain/ownership model that
	// observes every completed load, store, atomic, grant, probe, writeback
	// and domain transition, and fails the run with ErrProtocolInvariant at
	// the first violating event instead of at quiescence. Checking only; no
	// timing or protocol behaviour changes.
	OracleEnabled bool

	// TraceRingSize, when positive, enables the protocol trace ring with
	// this capacity at machine construction (equivalent to calling
	// EnableTrace). The ring is included in deadlock diagnostics and in
	// fuzzer repro files.
	TraceRingSize int

	// WatchdogCycles is the forward-progress window: if no operation
	// completes for this many cycles while cores are still active, the run
	// fails with a structured deadlock diagnostic instead of hanging.
	// 0 selects the default window; negative disables the watchdog.
	WatchdogCycles int64

	// L2RetryTimeout is the cycle count after which an outstanding L2
	// request is retransmitted (0 = default). Timeout-driven retransmission
	// is armed only when Faults.Enabled && Faults.Recovery; spurious
	// retransmissions are harmless because the home deduplicates by
	// transaction ID.
	L2RetryTimeout int

	// L2RetryLimit bounds timeout retransmissions per transaction
	// (0 = default); exhaustion fails the run with ErrRetryExhausted.
	L2RetryLimit int

	// DirNackOnCapacity makes a home bank NACK a request when every
	// candidate directory way is pinned by in-flight transactions, instead
	// of the default silent internal retry loop. Requesters back off and
	// retransmit.
	DirNackOnCapacity bool

	// TrapOnRace makes the directory signal an exception with the
	// transition acknowledgement when a SW-to-HW capture finds the same
	// word dirty in multiple L2s (paper §3.6: "For debugging, it may be
	// useful to have the directory signal an exception with its return
	// message to the requesting core").
	TrapOnRace bool

	// Runtime sizing.
	StackBytesPerCore int

	// Label names the configuration in reports.
	Label string
}

// FaultPlan configures the deterministic fault-injection layer. All
// probabilities are in permille (0..1000) and are drawn from a PRNG
// seeded by Seed, so the same plan on the same workload reproduces the
// same faults bit-for-bit.
//
// Drops and duplicates apply only to retryable requests (reads, writes,
// instruction fetches — see msg.ReqKind.Retryable); delay spikes apply to
// every link traversal as extra occupancy, which preserves per-link FIFO
// ordering exactly like NetJitter does.
type FaultPlan struct {
	// Enabled turns the fault layer on.
	Enabled bool

	// Recovery arms the L2 timeout/retransmission machinery. With it off,
	// an injected drop wedges the requester and the watchdog reports the
	// deadlock — useful for exercising the diagnostic path.
	Recovery bool

	// Seed seeds the fault plan's PRNG.
	Seed int64

	// DropPermille is the chance a retryable request vanishes in flight
	// (it still occupies its links; the receiver never sees it).
	DropPermille int

	// DupPermille is the chance a retryable request is delivered twice.
	DupPermille int

	// DelayPermille is the chance one link traversal suffers a delay
	// spike of 1..DelayMax extra occupancy cycles.
	DelayPermille int

	// DelayMax bounds the delay spike (cycles).
	DelayMax int

	// NackPermille is the chance the home NACKs a directory allocation,
	// simulating capacity pressure; the requester backs off and retries.
	NackPermille int

	// MaxDrops and MaxDups bound the total injected faults of each kind
	// (0 = a generous default), keeping plans from starving a retry budget.
	MaxDrops int
	MaxDups  int
}

// DefaultFaultPlan returns a plan with recovery enabled and moderate
// fault rates: ~2% drops, ~2% duplicates, ~1% delay spikes up to 200
// cycles, ~0.5% allocation NACKs.
func DefaultFaultPlan(seed int64) FaultPlan {
	return FaultPlan{
		Enabled:       true,
		Recovery:      true,
		Seed:          seed,
		DropPermille:  20,
		DupPermille:   20,
		DelayPermille: 10,
		DelayMax:      200,
		NackPermille:  5,
	}
}

// Table3 returns the paper's full 1024-core baseline configuration
// (Table 3), with the realistic sparse directory.
func Table3() Machine {
	return Machine{
		Clusters:        128,
		CoresPerCluster: 8,
		L3Banks:         32,
		DRAMChannels:    8,

		L1ISize: 2 << 10, L1IAssoc: 2,
		L1DSize: 1 << 10, L1DAssoc: 2,
		L2Size: 64 << 10, L2Assoc: 16,
		L3Size: 4 << 20, L3Assoc: 8,

		L2MSHRs:           16,
		L1Latency:         1,
		L2Latency:         4,
		L3Latency:         16,
		TreeLatency:       6,
		XbarLatency:       4,
		DRAMLatency:       100,
		DRAMCyclesPerLine: 4, // 32 B / (192 GB/s / 8 ch / 1.5 GHz) ≈ 2; 4 adds command overhead

		Directory:         DirSparse,
		DirEntriesPerBank: 16 << 10,
		DirAssoc:          128,

		Mode:            HWcc,
		ReadReleases:    true,
		CoarseTable:     true,
		TableCachedInL3: true,

		StackBytesPerCore: 4 << 10,
		Label:             "table3",
	}
}

// Scaled returns a configuration with the same per-cluster geometry and
// timing as Table 3 but fewer clusters/banks/channels, for fast tests and
// benches. clusters must be a multiple of banks and banks a multiple of
// channels for even striding; Scaled picks sensible bank/channel counts.
func Scaled(clusters int) Machine {
	m := Table3()
	m.Clusters = clusters
	m.L3Banks = clusters / 4
	if m.L3Banks < 1 {
		m.L3Banks = 1
	}
	if m.L3Banks > 32 {
		m.L3Banks = 32
	}
	m.DRAMChannels = m.L3Banks / 4
	if m.DRAMChannels < 1 {
		m.DRAMChannels = 1
	}
	m.L3Size = m.L3Banks * (128 << 10) // keep 128 KB per bank, as in Table 3
	m.DirEntriesPerBank = 16 << 10
	m.Label = fmt.Sprintf("scaled-%dc", clusters*m.CoresPerCluster)
	return m
}

// Cores returns the total core count.
func (m Machine) Cores() int { return m.Clusters * m.CoresPerCluster }

// L3BankSize returns the per-bank L3 capacity in bytes.
func (m Machine) L3BankSize() int { return m.L3Size / m.L3Banks }

// L2Lines returns the number of lines in one L2.
func (m Machine) L2Lines() int { return m.L2Size / addr.LineBytes }

// WithMode returns a copy with the memory model (and matching directory
// default) switched: SWcc drops the directory, HWcc/Cohesion keep whatever
// directory is configured (or restore sparse if none).
func (m Machine) WithMode(mode Mode) Machine {
	m.Mode = mode
	switch mode {
	case SWcc:
		m.Directory = DirNone
	case HWcc, Cohesion:
		if m.Directory == DirNone {
			m.Directory = DirSparse
		}
	}
	return m
}

// WithDirectory returns a copy using the given directory organization and
// capacity. entriesPerBank and assoc are ignored for DirInfinite; assoc 0
// means fully associative.
func (m Machine) WithDirectory(kind DirKind, entriesPerBank, assoc int) Machine {
	m.Directory = kind
	m.DirEntriesPerBank = entriesPerBank
	m.DirAssoc = assoc
	return m
}

// Validate checks structural invariants the simulator depends on. All
// rejections wrap simerr.ErrConfig.
func (m Machine) Validate() error {
	switch {
	case m.Clusters < 1:
		return simerr.Config("need at least one cluster")
	case m.CoresPerCluster < 1:
		return simerr.Config("need at least one core per cluster")
	case m.L3Banks < 1:
		return simerr.Config("need at least one L3 bank")
	case m.DRAMChannels < 1:
		return simerr.Config("need at least one DRAM channel")
	case m.L3Banks%m.DRAMChannels != 0:
		return simerr.Config("L3 banks (%d) must be a multiple of DRAM channels (%d)", m.L3Banks, m.DRAMChannels)
	case m.L3Banks&(m.L3Banks-1) != 0:
		return simerr.Config("L3 banks (%d) must be a power of two for address striding", m.L3Banks)
	}
	for _, c := range []struct {
		name        string
		size, assoc int
	}{
		{"L1I", m.L1ISize, m.L1IAssoc},
		{"L1D", m.L1DSize, m.L1DAssoc},
		{"L2", m.L2Size, m.L2Assoc},
		{"L3 bank", m.L3BankSize(), m.L3Assoc},
	} {
		lines := c.size / addr.LineBytes
		if c.size%addr.LineBytes != 0 || lines < c.assoc || c.assoc < 1 || lines%c.assoc != 0 {
			return simerr.Config("bad %s geometry: %d bytes, %d-way", c.name, c.size, c.assoc)
		}
	}
	if m.Mode != SWcc && m.Directory == DirNone {
		return simerr.Config("mode %v requires a directory", m.Mode)
	}
	if m.Mode == SWcc && m.Directory != DirNone {
		return simerr.Config("SWcc mode must not configure a directory")
	}
	if (m.Directory == DirSparse || m.Directory == DirLimited4B) && m.DirEntriesPerBank < 1 {
		return simerr.Config("sparse/limited directory needs DirEntriesPerBank >= 1")
	}
	if m.DirAssoc > 0 && m.DirEntriesPerBank%m.DirAssoc != 0 {
		return simerr.Config("directory entries (%d) must be a multiple of associativity (%d)", m.DirEntriesPerBank, m.DirAssoc)
	}
	if m.StackBytesPerCore < addr.LineBytes {
		return simerr.Config("stacks must hold at least one line")
	}
	if m.L2MSHRs < 1 {
		return simerr.Config("need at least one L2 MSHR")
	}
	if m.L2RetryTimeout < 0 || m.L2RetryLimit < 0 {
		return simerr.Config("L2 retry knobs must be non-negative")
	}
	if m.TraceRingSize < 0 {
		return simerr.Config("TraceRingSize must be non-negative")
	}
	if f := m.Faults; f.Enabled {
		for _, p := range []struct {
			name string
			v    int
		}{
			{"DropPermille", f.DropPermille},
			{"DupPermille", f.DupPermille},
			{"DelayPermille", f.DelayPermille},
			{"NackPermille", f.NackPermille},
		} {
			if p.v < 0 || p.v > 1000 {
				return simerr.Config("fault %s = %d outside [0, 1000]", p.name, p.v)
			}
		}
		if f.DelayMax < 0 || f.MaxDrops < 0 || f.MaxDups < 0 {
			return simerr.Config("fault bounds must be non-negative")
		}
		if f.DelayPermille > 0 && f.DelayMax == 0 {
			return simerr.Config("DelayPermille set with DelayMax = 0")
		}
		if f.DropPermille > 0 && !f.Recovery && m.WatchdogCycles < 0 {
			return simerr.Config("drops without recovery need the watchdog to detect the wedge")
		}
	}
	return nil
}
