package config

import (
	"errors"
	"testing"

	"cohesion/internal/simerr"
)

func TestTable3MatchesPaper(t *testing.T) {
	m := Table3()
	if m.Cores() != 1024 {
		t.Errorf("cores = %d, want 1024", m.Cores())
	}
	if m.Clusters != 128 || m.CoresPerCluster != 8 {
		t.Errorf("topology = %d x %d", m.Clusters, m.CoresPerCluster)
	}
	if m.L2Size != 64<<10 || m.L2Assoc != 16 {
		t.Errorf("L2 = %d bytes %d-way", m.L2Size, m.L2Assoc)
	}
	if m.L3Size != 4<<20 || m.L3Banks != 32 || m.L3Assoc != 8 {
		t.Errorf("L3 = %d bytes, %d banks, %d-way", m.L3Size, m.L3Banks, m.L3Assoc)
	}
	if m.L3BankSize() != 128<<10 {
		t.Errorf("L3 bank = %d bytes, want 128K", m.L3BankSize())
	}
	if m.L2Lines() != 2048 {
		t.Errorf("L2 lines = %d, want 2048 (paper §4.4)", m.L2Lines())
	}
	if m.DirEntriesPerBank != 16<<10 || m.DirAssoc != 128 {
		t.Errorf("directory = %d entries %d-way", m.DirEntriesPerBank, m.DirAssoc)
	}
	if m.DRAMChannels != 8 {
		t.Errorf("channels = %d", m.DRAMChannels)
	}
	if m.L2Latency != 4 || m.L3Latency != 16 {
		t.Errorf("latencies L2=%d L3=%d", m.L2Latency, m.L3Latency)
	}
	if err := m.Validate(); err != nil {
		t.Fatalf("Table3 invalid: %v", err)
	}
}

func TestScaledValidAcrossSizes(t *testing.T) {
	for _, clusters := range []int{1, 2, 4, 8, 16, 32, 64, 128} {
		m := Scaled(clusters)
		if err := m.Validate(); err != nil {
			t.Errorf("Scaled(%d) invalid: %v", clusters, err)
		}
		if m.Cores() != clusters*8 {
			t.Errorf("Scaled(%d) cores = %d", clusters, m.Cores())
		}
	}
}

func TestWithMode(t *testing.T) {
	m := Scaled(4).WithMode(SWcc)
	if m.Directory != DirNone {
		t.Error("SWcc kept a directory")
	}
	if err := m.Validate(); err != nil {
		t.Fatalf("SWcc config invalid: %v", err)
	}
	m = m.WithMode(Cohesion)
	if m.Directory == DirNone {
		t.Error("Cohesion mode has no directory")
	}
	if err := m.Validate(); err != nil {
		t.Fatalf("Cohesion config invalid: %v", err)
	}
}

func TestWithDirectory(t *testing.T) {
	m := Scaled(4).WithDirectory(DirInfinite, 0, 0)
	if err := m.Validate(); err != nil {
		t.Fatalf("infinite dir invalid: %v", err)
	}
	m = m.WithDirectory(DirLimited4B, 1024, 128)
	if err := m.Validate(); err != nil {
		t.Fatalf("Dir4B invalid: %v", err)
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	bad := []func(*Machine){
		func(m *Machine) { m.Clusters = 0 },
		func(m *Machine) { m.CoresPerCluster = 0 },
		func(m *Machine) { m.L3Banks = 0 },
		func(m *Machine) { m.L3Banks = 3 },           // not a power of two
		func(m *Machine) { m.DRAMChannels = 3 },      // banks % channels != 0
		func(m *Machine) { m.L2Assoc = 7 },           // lines % assoc != 0
		func(m *Machine) { m.L2Size = 48 },           // fewer lines than ways
		func(m *Machine) { m.Directory = DirNone },   // HWcc without directory
		func(m *Machine) { m.DirEntriesPerBank = 0 }, // sparse without capacity
		func(m *Machine) { m.DirEntriesPerBank = 100; m.DirAssoc = 64 },
		func(m *Machine) { m.StackBytesPerCore = 8 },
	}
	for i, mut := range bad {
		m := Scaled(8)
		mut(&m)
		if err := m.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

// TestValidateKnobs covers the robustness knobs — fault injection,
// watchdog, trace ring — with named cases: every bad value must come back
// as a wrapped simerr.ErrConfig, never a panic, and the good values must
// pass.
func TestValidateKnobs(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Machine)
		ok   bool
	}{
		{"default fault plan", func(m *Machine) { m.Faults = DefaultFaultPlan(1) }, true},
		{"disabled plan ignores bad rates", func(m *Machine) { m.Faults.DropPermille = -5 }, true},
		{"negative drop rate", func(m *Machine) { m.Faults.Enabled = true; m.Faults.DropPermille = -1 }, false},
		{"drop rate over 1000", func(m *Machine) { m.Faults.Enabled = true; m.Faults.DropPermille = 1001 }, false},
		{"dup rate over 1000", func(m *Machine) { m.Faults.Enabled = true; m.Faults.DupPermille = 2000 }, false},
		{"negative nack rate", func(m *Machine) { m.Faults.Enabled = true; m.Faults.NackPermille = -1 }, false},
		{"negative delay bound", func(m *Machine) { m.Faults.Enabled = true; m.Faults.DelayMax = -1 }, false},
		{"delay rate without bound", func(m *Machine) { m.Faults.Enabled = true; m.Faults.DelayPermille = 10 }, false},
		{"negative drop cap", func(m *Machine) { m.Faults.Enabled = true; m.Faults.MaxDrops = -1 }, false},
		{"drops with no recovery and no watchdog", func(m *Machine) {
			m.Faults.Enabled = true
			m.Faults.DropPermille = 10
			m.Faults.Recovery = false
			m.WatchdogCycles = -1
		}, false},
		{"drops with no recovery but watchdog armed", func(m *Machine) {
			m.Faults.Enabled = true
			m.Faults.DropPermille = 10
			m.Faults.Recovery = false
			m.WatchdogCycles = 0
		}, true},
		{"watchdog disabled", func(m *Machine) { m.WatchdogCycles = -1 }, true},
		{"negative retry timeout", func(m *Machine) { m.L2RetryTimeout = -1 }, false},
		{"negative retry limit", func(m *Machine) { m.L2RetryLimit = -1 }, false},
		{"negative trace ring", func(m *Machine) { m.TraceRingSize = -1 }, false},
		{"trace ring set", func(m *Machine) { m.TraceRingSize = 512 }, true},
		{"oracle enabled", func(m *Machine) { m.OracleEnabled = true }, true},
	}
	for _, tc := range cases {
		m := Scaled(8)
		tc.mut(&m)
		err := m.Validate()
		if tc.ok && err != nil {
			t.Errorf("%s: rejected: %v", tc.name, err)
		}
		if !tc.ok && !errors.Is(err, simerr.ErrConfig) {
			t.Errorf("%s: err = %v, want a wrapped simerr.ErrConfig", tc.name, err)
		}
	}
}

func TestModeAndDirKindStrings(t *testing.T) {
	if SWcc.String() != "SWcc" || HWcc.String() != "HWcc" || Cohesion.String() != "Cohesion" {
		t.Error("mode strings wrong")
	}
	if Mode(9).String() != "Mode(9)" {
		t.Error("unknown mode string")
	}
	for k, want := range map[DirKind]string{
		DirNone: "none", DirInfinite: "full-map (infinite)",
		DirSparse: "sparse full-map", DirLimited4B: "Dir4B sparse",
	} {
		if k.String() != want {
			t.Errorf("%d.String() = %q", k, k.String())
		}
	}
	if DirKind(9).String() != "DirKind(9)" {
		t.Error("unknown dir kind string")
	}
}
