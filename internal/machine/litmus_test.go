package machine

import (
	"testing"

	"cohesion/internal/addr"
	"cohesion/internal/cluster"
)

// Classic memory-model litmus tests, run under hardware coherence. The
// machine's cores are in-order and blocking (one outstanding operation),
// and the directory serializes each line's transitions, so the forbidden
// outcomes of these litmus patterns must never appear. Each test runs the
// pattern many times with varied skew to shake out interleavings.

const litmusRounds = 24

// litmus2 runs a two-thread pattern on two clusters repeatedly. Each round
// gets fresh addresses so rounds are independent.
func litmus2(t *testing.T, body func(round int, x, y addr.Addr, c0, c1 func(func(c *cluster.Core)))) {
	t.Helper()
	m := newMachine(t, hwccCfg(2))
	type job struct{ fn func(c *cluster.Core) }
	var q0, q1 []job
	c0 := func(fn func(c *cluster.Core)) { q0 = append(q0, job{fn}) }
	c1 := func(fn func(c *cluster.Core)) { q1 = append(q1, job{fn}) }
	for r := 0; r < litmusRounds; r++ {
		x := addr.Addr(addr.HeapBase) + addr.Addr(r*0x100)
		y := x + 0x40
		body(r, x, y, c0, c1)
	}
	barrier := func(c *cluster.Core, round int) {
		// Simple two-party round barrier on an uncached word pair.
		me := addr.Addr(addr.GlobalBase+0x1000) + addr.Addr(8*round)
		atomic(c, me, 0, 1) // AtomicAdd 1
		for uncLoad(c, me) != 2 {
			c.Do(cluster.Op{Kind: cluster.OpWork, Cycles: 15})
		}
	}
	program(m, 0, func(c *cluster.Core) {
		for r, j := range q0 {
			j.fn(c)
			barrier(c, r)
		}
	})
	program(m, 8, func(c *cluster.Core) {
		for r, j := range q1 {
			j.fn(c)
			barrier(c, r)
		}
	})
	simulate(t, m)
}

// MP (message passing): after observing the flag, the data must be
// visible. flag is written with an uncached store (the runtime's
// publication idiom); data travels through the coherent caches.
func TestLitmusMessagePassing(t *testing.T) {
	violations := 0
	litmus2(t, func(r int, x, y addr.Addr, c0, c1 func(func(c *cluster.Core))) {
		skew := (r % 5) * 7
		c0(func(c *cluster.Core) {
			st(c, x, uint32(r)+1)
			uncStore(c, y, 1)
		})
		c1(func(c *cluster.Core) {
			c.Do(cluster.Op{Kind: cluster.OpWork, Cycles: int64(skew + 1)})
			if uncLoad(c, y) == 1 {
				if ld(c, x) != uint32(r)+1 {
					violations++
				}
			}
		})
	})
	if violations != 0 {
		t.Fatalf("%d message-passing violations (stale data after flag)", violations)
	}
}

// CoRR (coherent read-read): two reads of the same location by one core
// must not observe values in reverse coherence order. With a single writer
// incrementing the location, later reads never see smaller values.
func TestLitmusCoRR(t *testing.T) {
	violations := 0
	litmus2(t, func(r int, x, y addr.Addr, c0, c1 func(func(c *cluster.Core))) {
		c0(func(c *cluster.Core) {
			st(c, x, 1)
			st(c, x, 2)
		})
		c1(func(c *cluster.Core) {
			a := ld(c, x)
			b := ld(c, x)
			if b < a {
				violations++
			}
		})
	})
	if violations != 0 {
		t.Fatalf("%d coherence-order violations (read-read regression)", violations)
	}
}

// Atomicity: concurrent read-modify-writes to one word never lose updates
// even when the word's line keeps moving between the clusters' caches via
// ordinary loads/stores in between.
func TestLitmusAtomicityUnderMigration(t *testing.T) {
	m := newMachine(t, hwccCfg(2))
	ctr := addr.Addr(addr.HeapBase)
	const per = 60
	worker := func(c *cluster.Core) {
		for i := 0; i < per; i++ {
			atomic(c, ctr, 0, 1)    // AtomicAdd 1
			_ = ld(c, ctr)          // pull the line into this cluster's L2
			st(c, ctr+4, uint32(i)) // dirty the line too
		}
	}
	program(m, 0, worker)
	program(m, 8, worker)
	simulate(t, m)
	m.DrainToMemory()
	if got := m.Store.ReadWord(ctr); got != 2*per {
		t.Fatalf("counter = %d, want %d (lost updates)", got, 2*per)
	}
}

// SB-analogue (store buffering): with blocking in-order cores there is no
// store buffer, so both threads cannot read 0 after both stores committed
// round-robin through a synchronizing barrier. This is checked implicitly
// by MP; here we check the weaker "writes eventually visible" property:
// after the round barrier both observers agree on both locations.
func TestLitmusBothWritesVisibleAfterBarrier(t *testing.T) {
	violations := 0
	litmus2(t, func(r int, x, y addr.Addr, c0, c1 func(func(c *cluster.Core))) {
		c0(func(c *cluster.Core) {
			st(c, x, 7)
		})
		c1(func(c *cluster.Core) {
			st(c, y+4, 9)
		})
		// Next round's bodies observe the previous round's stores after the
		// barrier between rounds.
		c0(func(c *cluster.Core) {
			if ld(c, y+4) != 9 {
				violations++
			}
		})
		c1(func(c *cluster.Core) {
			if ld(c, x) != 7 {
				violations++
			}
		})
	})
	if violations != 0 {
		t.Fatalf("%d visibility violations after synchronization", violations)
	}
}
