package machine

import (
	"errors"
	"strings"
	"testing"

	"cohesion/internal/addr"
	"cohesion/internal/cluster"
	"cohesion/internal/config"
	"cohesion/internal/msg"
	"cohesion/internal/region"
)

// --- tiny op helpers for hand-written test programs ---

func ld(c *cluster.Core, a addr.Addr) uint32 {
	return c.Do(cluster.Op{Kind: cluster.OpLoad, Addr: a})
}
func st(c *cluster.Core, a addr.Addr, v uint32) {
	c.Do(cluster.Op{Kind: cluster.OpStore, Addr: a, Value: v})
}
func flush(c *cluster.Core, a addr.Addr) {
	c.Do(cluster.Op{Kind: cluster.OpFlush, Addr: a})
}
func inv(c *cluster.Core, a addr.Addr) {
	c.Do(cluster.Op{Kind: cluster.OpInv, Addr: a})
}
func atomic(c *cluster.Core, a addr.Addr, op msg.AtomicOp, v uint32) uint32 {
	return c.Do(cluster.Op{Kind: cluster.OpAtomic, Addr: a, AOp: op, Value: v})
}
func uncLoad(c *cluster.Core, a addr.Addr) uint32 {
	return c.Do(cluster.Op{Kind: cluster.OpUncLoad, Addr: a})
}
func uncStore(c *cluster.Core, a addr.Addr, v uint32) {
	c.Do(cluster.Op{Kind: cluster.OpUncStore, Addr: a, Value: v})
}
func spinUntil(c *cluster.Core, a addr.Addr, want uint32) {
	for uncLoad(c, a) != want {
		c.Do(cluster.Op{Kind: cluster.OpWork, Cycles: 20})
	}
}

const syncWord = addr.GlobalBase + 0x100 // uncached sync flag used by tests

func newMachine(t *testing.T, cfg config.Machine) *Machine {
	t.Helper()
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func simulate(t *testing.T, m *Machine) {
	t.Helper()
	if err := m.Simulate(50_000_000); err != nil {
		t.Fatal(err)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatalf("invariants violated: %v", err)
	}
}

func program(m *Machine, coreID int, body func(c *cluster.Core)) {
	m.StartProgram(coreID, func(c *cluster.Core) {
		c.SetCode(addr.CodeBase, 256)
		body(c)
	})
}

func hwccCfg(clusters int) config.Machine {
	return config.Scaled(clusters).WithMode(config.HWcc).WithDirectory(config.DirInfinite, 0, 0)
}

// --- basic single-core behaviour ---

func TestHWccStoreLoadSameCore(t *testing.T) {
	m := newMachine(t, hwccCfg(2))
	a := addr.Addr(addr.HeapBase)
	var got uint32
	program(m, 0, func(c *cluster.Core) {
		st(c, a, 42)
		st(c, a+4, 7)
		got = ld(c, a)
	})
	simulate(t, m)
	if got != 42 {
		t.Fatalf("load = %d, want 42", got)
	}
	m.DrainToMemory()
	if m.Store.ReadWord(a) != 42 || m.Store.ReadWord(a+4) != 7 {
		t.Fatal("drained values wrong")
	}
}

func TestHWccProducerConsumerAcrossClusters(t *testing.T) {
	m := newMachine(t, hwccCfg(2))
	a := addr.Addr(addr.HeapBase)
	var got uint32
	program(m, 0, func(c *cluster.Core) { // cluster 0
		st(c, a, 1234)
		uncStore(c, syncWord, 1)
	})
	program(m, 8, func(c *cluster.Core) { // cluster 1
		spinUntil(c, syncWord, 1)
		got = ld(c, a) // must recall the dirty line from cluster 0
	})
	simulate(t, m)
	if got != 1234 {
		t.Fatalf("consumer read %d, want 1234", got)
	}
}

func TestHWccWriteInvalidatesSharers(t *testing.T) {
	m := newMachine(t, hwccCfg(2))
	a := addr.Addr(addr.HeapBase)
	m.Store.WriteWord(a, 5)
	var got0, got1 uint32
	program(m, 0, func(c *cluster.Core) {
		got0 = ld(c, a) // both become sharers
		uncStore(c, syncWord, 1)
		spinUntil(c, syncWord, 2)
		st(c, a, 99) // invalidates cluster 1
		uncStore(c, syncWord, 3)
	})
	program(m, 8, func(c *cluster.Core) {
		spinUntil(c, syncWord, 1)
		_ = ld(c, a)
		uncStore(c, syncWord, 2)
		spinUntil(c, syncWord, 3)
		got1 = ld(c, a) // must see the new value via the directory
	})
	simulate(t, m)
	if got0 != 5 || got1 != 99 {
		t.Fatalf("got0=%d got1=%d, want 5, 99", got0, got1)
	}
}

// --- SWcc behaviour ---

func swccCfg(clusters int) config.Machine {
	return config.Scaled(clusters).WithMode(config.SWcc)
}

func TestSWccWriteAllocateNoMessages(t *testing.T) {
	m := newMachine(t, swccCfg(1))
	a := addr.Addr(addr.HeapBase)
	program(m, 0, func(c *cluster.Core) {
		st(c, a, 10) // write-allocate: no message at all
		if v := ld(c, a); v != 10 {
			t.Errorf("local readback = %d", v)
		}
	})
	simulate(t, m)
	if n := m.Run.Messages[msg.WriteReq]; n != 0 {
		t.Fatalf("SWcc store sent %d write requests, want 0", n)
	}
}

func TestSWccFlushInvPropagates(t *testing.T) {
	m := newMachine(t, swccCfg(2))
	a := addr.Addr(addr.HeapBase)
	m.Store.WriteWord(a, 1) // initial value
	var got, stale uint32
	program(m, 0, func(c *cluster.Core) {
		st(c, a, 77)
		flush(c, a) // push to L3
		uncStore(c, syncWord, 1)
	})
	program(m, 8, func(c *cluster.Core) {
		stale = ld(c, a) // may cache the old value
		spinUntil(c, syncWord, 1)
		inv(c, a)      // drop the stale copy
		got = ld(c, a) // refetch from L3
	})
	simulate(t, m)
	if got != 77 {
		t.Fatalf("after flush+inv read %d, want 77 (stale first read %d)", got, stale)
	}
	if m.Run.Messages[msg.SWFlush] == 0 {
		t.Fatal("no software flush message counted")
	}
}

func TestSWccPartialLineMerge(t *testing.T) {
	// Two cores in different clusters write disjoint words of one line,
	// flush, and the L3 merge keeps both (the paper's per-word dirty bits).
	m := newMachine(t, swccCfg(2))
	base := addr.Addr(addr.HeapBase)
	program(m, 0, func(c *cluster.Core) {
		st(c, base, 11)
		flush(c, base)
		uncStore(c, syncWord, 1)
	})
	program(m, 8, func(c *cluster.Core) {
		st(c, base+4, 22)
		flush(c, base+4)
		spinUntil(c, syncWord, 1)
	})
	simulate(t, m)
	if m.Store.ReadWord(base) != 11 || m.Store.ReadWord(base+4) != 22 {
		t.Fatalf("merge lost a word: %d %d", m.Store.ReadWord(base), m.Store.ReadWord(base+4))
	}
}

func TestSWccPartialLineLoadFetchesRest(t *testing.T) {
	m := newMachine(t, swccCfg(1))
	base := addr.Addr(addr.HeapBase)
	m.Store.WriteWord(base+8, 333) // word 2 pre-set in memory
	var got, own uint32
	program(m, 0, func(c *cluster.Core) {
		st(c, base, 1)      // partial write-allocate (word 0)
		got = ld(c, base+8) // word 2 invalid locally: fetch-merge
		own = ld(c, base)   // locally dirty word must survive the merge
	})
	simulate(t, m)
	if got != 333 || own != 1 {
		t.Fatalf("got=%d own=%d, want 333, 1", got, own)
	}
}

// --- atomics ---

func TestAtomicsSerializeAcrossClusters(t *testing.T) {
	m := newMachine(t, hwccCfg(4))
	ctr := addr.Addr(addr.GlobalBase + 0x200)
	perCore := 50
	for i := 0; i < 4; i++ {
		program(m, i*8, func(c *cluster.Core) {
			for k := 0; k < perCore; k++ {
				atomic(c, ctr, msg.AtomicAdd, 1)
			}
		})
	}
	simulate(t, m)
	if got := m.Store.ReadWord(ctr); got != uint32(4*perCore) {
		t.Fatalf("counter = %d, want %d", got, 4*perCore)
	}
}

func TestAtomicRecallsCachedLine(t *testing.T) {
	// An atomic to a word cached Modified in another cluster must observe
	// the cached (newest) value.
	m := newMachine(t, hwccCfg(2))
	a := addr.Addr(addr.HeapBase)
	var old uint32
	program(m, 0, func(c *cluster.Core) {
		st(c, a, 500) // cached dirty in cluster 0
		uncStore(c, syncWord, 1)
		spinUntil(c, syncWord, 2)
	})
	program(m, 8, func(c *cluster.Core) {
		spinUntil(c, syncWord, 1)
		old = atomic(c, a, msg.AtomicAdd, 1) // must recall 500 first
		uncStore(c, syncWord, 2)
	})
	simulate(t, m)
	if old != 500 {
		t.Fatalf("atomic observed %d, want 500", old)
	}
	if m.Store.ReadWord(a) != 501 {
		t.Fatalf("final value %d, want 501", m.Store.ReadWord(a))
	}
}

// --- Cohesion transitions ---

func cohesionCfg(clusters int) config.Machine {
	return config.Scaled(clusters).WithMode(config.Cohesion).WithDirectory(config.DirInfinite, 0, 0)
}

// transition toggles the fine-grain table bit for line a (set = SWcc).
func transition(c *cluster.Core, a addr.Addr, banks int, toSW bool) {
	wa := region.TblWordAddr(a, banks)
	bit := uint32(1) << region.TblBitIndex(a)
	if toSW {
		c.Do(cluster.Op{Kind: cluster.OpAtomic, Addr: wa, AOp: msg.AtomicOr, Value: bit})
	} else {
		c.Do(cluster.Op{Kind: cluster.OpAtomic, Addr: wa, AOp: msg.AtomicAnd, Value: ^bit})
	}
}

func TestCohesionDefaultIsHWcc(t *testing.T) {
	m := newMachine(t, cohesionCfg(2))
	a := addr.Addr(addr.HeapBase) // coherent heap: bits clear
	var got uint32
	program(m, 0, func(c *cluster.Core) {
		st(c, a, 9)
		uncStore(c, syncWord, 1)
	})
	program(m, 8, func(c *cluster.Core) {
		spinUntil(c, syncWord, 1)
		got = ld(c, a)
	})
	simulate(t, m)
	if got != 9 {
		t.Fatalf("HWcc-domain read %d, want 9", got)
	}
	if m.DirectoryEntries() == 0 {
		t.Fatal("no directory entries for HWcc-domain data")
	}
}

func TestCohesionSWccDomainLinesNotTracked(t *testing.T) {
	m := newMachine(t, cohesionCfg(2))
	a := addr.Addr(addr.CohHeapBase)
	m.PresetSWcc(addr.Range{Base: a, Size: 64})
	program(m, 0, func(c *cluster.Core) {
		st(c, a, 3)
		flush(c, a)
	})
	simulate(t, m)
	// The SWcc-domain line must have no directory entry (sync word and
	// instruction lines may, under the infinite directory).
	bank := region.HomeBankOfLine(addr.LineOf(a), m.Cfg.L3Banks)
	if m.Homes[bank].Directory().Lookup(addr.LineOf(a)) != nil {
		t.Fatal("SWcc-domain line acquired a directory entry")
	}
	if m.Store.ReadWord(a) != 3 {
		t.Fatal("flush did not reach memory")
	}
}

func TestCohesionSWtoHWCapturesDirtyData(t *testing.T) {
	// Figure 7b Case 4b: one dirty writer; the transition upgrades it to
	// owner with no writeback, and a later reader pulls the data via HWcc.
	m := newMachine(t, cohesionCfg(2))
	a := addr.Addr(addr.CohHeapBase)
	m.PresetSWcc(addr.Range{Base: a, Size: 32})
	banks := m.Cfg.L3Banks
	var got uint32
	program(m, 0, func(c *cluster.Core) {
		st(c, a, 321)                  // dirty, incoherent, unflushed
		transition(c, a, banks, false) // SW -> HW: capture
		uncStore(c, syncWord, 1)
	})
	program(m, 8, func(c *cluster.Core) {
		spinUntil(c, syncWord, 1)
		got = ld(c, a) // HWcc pull of the captured line
	})
	simulate(t, m)
	if got != 321 {
		t.Fatalf("captured read %d, want 321", got)
	}
	if m.Run.TransitionsToHW != 1 {
		t.Fatalf("TransitionsToHW = %d, want 1", m.Run.TransitionsToHW)
	}
}

func TestCohesionHWtoSWWritesBackModified(t *testing.T) {
	// Figure 7a Case 3a: HW->SW transition of a line dirty in an L2 forces
	// a writeback; afterwards software reads it incoherently from the L3.
	m := newMachine(t, cohesionCfg(2))
	a := addr.Addr(addr.CohHeapBase + 0x1000) // starts HWcc (bit clear)
	banks := m.Cfg.L3Banks
	var got uint32
	program(m, 0, func(c *cluster.Core) {
		st(c, a, 654)                 // Modified in cluster 0 under HWcc
		transition(c, a, banks, true) // HW -> SW: writeback + invalidate
		uncStore(c, syncWord, 1)
	})
	program(m, 8, func(c *cluster.Core) {
		spinUntil(c, syncWord, 1)
		got = ld(c, a) // incoherent fetch must see 654
	})
	simulate(t, m)
	if got != 654 {
		t.Fatalf("post-transition read %d, want 654", got)
	}
	if m.Run.TransitionsToSW != 1 {
		t.Fatalf("TransitionsToSW = %d, want 1", m.Run.TransitionsToSW)
	}
	bank := region.HomeBankOfLine(addr.LineOf(a), banks)
	if m.Homes[bank].Directory().Lookup(addr.LineOf(a)) != nil {
		t.Fatal("directory entry survived HW->SW transition")
	}
}

func TestCohesionSWtoHWMergesDisjointWriters(t *testing.T) {
	// Figure 7b Case 3b: two clusters dirty disjoint words; the capture
	// writes both back and the L3 merge keeps both.
	m := newMachine(t, cohesionCfg(2))
	a := addr.Addr(addr.CohHeapBase)
	m.PresetSWcc(addr.Range{Base: a, Size: 32})
	banks := m.Cfg.L3Banks
	program(m, 0, func(c *cluster.Core) {
		st(c, a, 71)
		uncStore(c, syncWord, 1)
		spinUntil(c, syncWord, 2)
		transition(c, a, banks, false)
		uncStore(c, syncWord, 3)
	})
	program(m, 8, func(c *cluster.Core) {
		st(c, a+4, 72)
		spinUntil(c, syncWord, 1)
		uncStore(c, syncWord, 2)
		spinUntil(c, syncWord, 3)
	})
	simulate(t, m)
	if m.Store.ReadWord(a) != 71 || m.Store.ReadWord(a+4) != 72 {
		t.Fatalf("merge lost a word: %d %d", m.Store.ReadWord(a), m.Store.ReadWord(a+4))
	}
	if m.Run.OverlapRaces != 0 {
		t.Fatalf("disjoint writers flagged as overlap race")
	}
}

func TestCohesionOverlapRaceDetected(t *testing.T) {
	// Figure 7b Case 5b: the same word dirty in two clusters is a software
	// race; the capture must flag it (and still converge).
	m := newMachine(t, cohesionCfg(2))
	a := addr.Addr(addr.CohHeapBase)
	m.PresetSWcc(addr.Range{Base: a, Size: 32})
	banks := m.Cfg.L3Banks
	program(m, 0, func(c *cluster.Core) {
		st(c, a, 1)
		uncStore(c, syncWord, 1)
		spinUntil(c, syncWord, 2)
		transition(c, a, banks, false)
	})
	program(m, 8, func(c *cluster.Core) {
		st(c, a, 2)
		spinUntil(c, syncWord, 1)
		uncStore(c, syncWord, 2)
	})
	simulate(t, m)
	if m.Run.OverlapRaces != 1 {
		t.Fatalf("OverlapRaces = %d, want 1", m.Run.OverlapRaces)
	}
	if v := m.Store.ReadWord(a); v != 1 && v != 2 {
		t.Fatalf("raced word = %d, want 1 or 2", v)
	}
}

func TestCohesionCoarseRegionsBypassDirectory(t *testing.T) {
	m := newMachine(t, cohesionCfg(1))
	stackAddr := addr.Addr(addr.StackBase)
	if err := m.AddCoarseRegion(addr.Range{Base: addr.StackBase, Size: 1 << 20}); err != nil {
		t.Fatal(err)
	}
	program(m, 0, func(c *cluster.Core) {
		st(c, stackAddr, 5)
		if v := ld(c, stackAddr); v != 5 {
			t.Errorf("stack readback = %d", v)
		}
	})
	simulate(t, m)
	bank := region.HomeBankOfLine(addr.LineOf(stackAddr), m.Cfg.L3Banks)
	if m.Homes[bank].Directory().Lookup(addr.LineOf(stackAddr)) != nil {
		t.Fatal("coarse-region line acquired a directory entry")
	}
}

// --- directory pressure ---

func TestSparseDirectoryEvictionsInvalidate(t *testing.T) {
	// A tiny directory forces evictions; reads must still always see the
	// latest values and invariants must hold.
	cfg := config.Scaled(2).WithMode(config.HWcc).WithDirectory(config.DirSparse, 16, 0)
	m := newMachine(t, cfg)
	base := addr.Addr(addr.HeapBase)
	n := 64 // lines touched: far more than 16 entries/bank
	var bad int
	program(m, 0, func(c *cluster.Core) {
		for i := 0; i < n; i++ {
			st(c, base+addr.Addr(i*32), uint32(i+1))
		}
		for i := 0; i < n; i++ {
			if ld(c, base+addr.Addr(i*32)) != uint32(i+1) {
				bad++
			}
		}
	})
	simulate(t, m)
	if bad != 0 {
		t.Fatalf("%d reads returned wrong values under directory pressure", bad)
	}
	if m.Run.DirEvictions == 0 {
		t.Fatal("expected directory evictions with a 16-entry directory")
	}
}

func TestDir4BBroadcastOnOverflow(t *testing.T) {
	cfg := config.Scaled(8).WithMode(config.HWcc).WithDirectory(config.DirLimited4B, 1024, 0)
	m := newMachine(t, cfg)
	a := addr.Addr(addr.HeapBase)
	m.Store.WriteWord(a, 7)
	readers := 6 // > 4 pointers
	var got uint32
	for i := 0; i < readers; i++ {
		i := i
		program(m, i*8, func(c *cluster.Core) {
			_ = ld(c, a)
			atomic(c, syncWord, msg.AtomicAdd, 1)
			if i == 0 {
				spinUntil(c, syncWord, uint32(readers))
				st(c, a, 100) // must broadcast invalidations
				uncStore(c, syncWord+4, 1)
			} else {
				spinUntil(c, syncWord+4, 1)
				if v := ld(c, a); i == 1 {
					got = v
				}
			}
		})
	}
	simulate(t, m)
	if m.Run.DirBroadcasts == 0 {
		t.Fatal("no broadcast recorded for overflowed Dir4B entry")
	}
	if got != 100 {
		t.Fatalf("reader saw %d after broadcast invalidate, want 100", got)
	}
}

// --- read releases & message accounting ---

func TestReadReleaseFreesDirectoryEntry(t *testing.T) {
	m := newMachine(t, hwccCfg(1))
	// Touch enough distinct lines to overflow one L2 set (16 ways) so a
	// clean line is evicted and released.
	base := addr.Addr(addr.HeapBase)
	setStride := addr.Addr(m.Cfg.L2Size / m.Cfg.L2Assoc) // same-set stride
	program(m, 0, func(c *cluster.Core) {
		for i := 0; i < 20; i++ {
			_ = ld(c, base+addr.Addr(i)*setStride)
		}
	})
	simulate(t, m)
	if m.Run.Messages[msg.ReadRel] == 0 {
		t.Fatal("no read releases sent")
	}
	// The released lines' entries must be gone (entries only for the ~16
	// still-resident lines plus code/sync lines).
	if got := m.DirectoryEntries(); got > 20 {
		t.Fatalf("directory holds %d entries, release did not deallocate", got)
	}
}

func TestAblationNoReadReleases(t *testing.T) {
	cfg := hwccCfg(1)
	cfg.ReadReleases = false
	m := newMachine(t, cfg)
	base := addr.Addr(addr.HeapBase)
	setStride := addr.Addr(m.Cfg.L2Size / m.Cfg.L2Assoc)
	var bad int
	program(m, 0, func(c *cluster.Core) {
		for i := 0; i < 40; i++ {
			if ld(c, base+addr.Addr(i)*setStride) != 0 {
				bad++
			}
		}
	})
	if err := m.Simulate(50_000_000); err != nil {
		t.Fatal(err)
	}
	// Invariants other than directory<->L2 agreement for stale sharers
	// cannot be checked here: stale entries are the point of the ablation.
	if bad != 0 {
		t.Fatalf("%d wrong reads", bad)
	}
	if m.Run.Messages[msg.ReadRel] != 0 {
		t.Fatal("read releases sent despite ablation")
	}
}

func TestSWccFewerMessagesThanHWccOnPrivateWrites(t *testing.T) {
	// The core of Figure 2: on private write-dominated work SWcc sends far
	// fewer messages than HWcc.
	workload := func(c *cluster.Core) {
		base := addr.Addr(addr.HeapBase)
		for i := 0; i < 400; i++ {
			st(c, base+addr.Addr(i*4), uint32(i))
		}
	}
	mSW := newMachine(t, swccCfg(1))
	program(mSW, 0, workload)
	simulate(t, mSW)

	mHW := newMachine(t, hwccCfg(1))
	program(mHW, 0, workload)
	simulate(t, mHW)

	sw, hw := mSW.Run.TotalMessages(), mHW.Run.TotalMessages()
	if hw <= sw {
		t.Fatalf("HWcc messages (%d) not above SWcc (%d)", hw, sw)
	}
}

func TestDeterministicRuns(t *testing.T) {
	build := func() *Machine {
		m := newMachine(t, hwccCfg(2))
		for i := 0; i < 2; i++ {
			i := i
			program(m, i*8, func(c *cluster.Core) {
				base := addr.Addr(addr.HeapBase)
				for k := 0; k < 100; k++ {
					st(c, base+addr.Addr(((k*7+i)%64)*4), uint32(k))
					_ = ld(c, base+addr.Addr((k%64)*4))
				}
				atomic(c, syncWord, msg.AtomicAdd, 1)
			})
		}
		simulate(t, m)
		return m
	}
	a, b := build(), build()
	if a.Run.Cycles != b.Run.Cycles || a.Run.TotalMessages() != b.Run.TotalMessages() {
		t.Fatalf("nondeterminism: cycles %d vs %d, messages %d vs %d",
			a.Run.Cycles, b.Run.Cycles, a.Run.TotalMessages(), b.Run.TotalMessages())
	}
}

func TestOccupancySampled(t *testing.T) {
	m := newMachine(t, hwccCfg(1))
	program(m, 0, func(c *cluster.Core) {
		base := addr.Addr(addr.HeapBase)
		for i := 0; i < 200; i++ {
			st(c, base+addr.Addr(i*32), 1)
			c.Do(cluster.Op{Kind: cluster.OpWork, Cycles: 50})
		}
	})
	simulate(t, m)
	if m.Run.Occupancy.Samples() == 0 {
		t.Fatal("no occupancy samples taken")
	}
	if m.Run.Occupancy.MaxTotal() == 0 {
		t.Fatal("sampler saw an always-empty directory")
	}
}

func TestInstructionFetchTraffic(t *testing.T) {
	m := newMachine(t, hwccCfg(1))
	program(m, 0, func(c *cluster.Core) {
		c.SetCode(addr.CodeBase, 8<<10) // footprint larger than the 2KB L1I
		for i := 0; i < 3000; i++ {
			c.Do(cluster.Op{Kind: cluster.OpWork, Cycles: 1})
		}
	})
	simulate(t, m)
	if m.Run.Messages[msg.InstrReq] == 0 {
		t.Fatal("no instruction requests with an 8KB footprint")
	}
}

func TestTraceCapturesProtocolEvents(t *testing.T) {
	m := newMachine(t, hwccCfg(2))
	m.EnableTrace(64)
	a := addr.Addr(addr.HeapBase)
	program(m, 0, func(c *cluster.Core) {
		st(c, a, 1)
		uncStore(c, syncWord, 1)
	})
	program(m, 8, func(c *cluster.Core) {
		spinUntil(c, syncWord, 1)
		_ = ld(c, a) // forces a recall: probe + writeback events
	})
	simulate(t, m)
	dump := m.Run.Trace.Dump()
	for _, want := range []string{"WrReq", "RdReq", "ProbeWB", "recall", "grant"} {
		if !strings.Contains(dump, want) {
			t.Fatalf("trace missing %q:\n%s", want, dump)
		}
	}
}

func TestSimulateCycleLimit(t *testing.T) {
	m := newMachine(t, hwccCfg(1))
	program(m, 0, func(c *cluster.Core) {
		for { // never terminates
			c.Do(cluster.Op{Kind: cluster.OpWork, Cycles: 100})
		}
	})
	err := m.Simulate(5_000)
	if err == nil || !errors.Is(err, ErrCycleLimit) {
		t.Fatalf("err = %v, want ErrCycleLimit", err)
	}
}

func TestCoarseRegionRejectsOverlap(t *testing.T) {
	m := newMachine(t, cohesionCfg(1))
	if err := m.AddCoarseRegion(addr.Range{Base: addr.StackBase, Size: 4096}); err != nil {
		t.Fatal(err)
	}
	if err := m.AddCoarseRegion(addr.Range{Base: addr.StackBase + 64, Size: 64}); err == nil {
		t.Fatal("overlapping coarse region accepted")
	}
	// Outside Cohesion the calls are no-ops and never fail.
	hm := newMachine(t, hwccCfg(1))
	if err := hm.AddCoarseRegion(addr.Range{Base: 0, Size: 1}); err != nil {
		t.Fatal(err)
	}
	hm.PresetSWcc(addr.Range{Base: 0, Size: 1}) // no-op without a fine table
}

// CheckInvariants must actually detect corruption: fabricate disagreement
// between an L2 and the directory and confirm the checker fires.
func TestCheckInvariantsDetectsCorruption(t *testing.T) {
	m := newMachine(t, hwccCfg(2))
	a := addr.Addr(addr.HeapBase)
	program(m, 0, func(c *cluster.Core) {
		st(c, a, 1) // Modified in cluster 0, tracked
	})
	simulate(t, m)

	// Corrupt: flip the owner's cached line to "incoherent" — a coherent
	// directory entry now points at an incoherent L2 line.
	e := m.Clusters[0].L2().Peek(addr.LineOf(a))
	if e == nil {
		t.Fatal("setup failed")
	}
	e.Incoherent = true
	if err := m.CheckInvariants(); err == nil {
		t.Fatal("corruption not detected")
	}
	e.Incoherent = false
	if err := m.CheckInvariants(); err != nil {
		t.Fatalf("restored state still flagged: %v", err)
	}

	// Corrupt the other direction: drop the directory entry under a live
	// coherent line.
	bank := region.HomeBankOfLine(addr.LineOf(a), m.Cfg.L3Banks)
	m.Homes[bank].Directory().Remove(addr.LineOf(a))
	if err := m.CheckInvariants(); err == nil {
		t.Fatal("orphaned coherent line not detected")
	}
}
