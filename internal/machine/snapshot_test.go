package machine

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"testing"

	"cohesion/internal/addr"
	"cohesion/internal/cluster"
	"cohesion/internal/runctl"
	"cohesion/internal/simerr"
	"cohesion/internal/snapshot"
)

// startMixers loads a machine with cores sharing lines (some contention,
// some private traffic), finishing after a bounded number of operations.
func startMixers(m *Machine, cores, rounds int) {
	for core := 0; core < cores; core++ {
		core := core
		shared := addr.Addr(addr.HeapBase)
		private := addr.HeapBase + addr.Addr((core+1)*64*addr.LineBytes)
		m.StartProgram(core, func(c *cluster.Core) {
			c.SetCode(addr.CodeBase, 256)
			for i := 0; i < rounds; i++ {
				st(c, private+addr.Addr(4*(i%16)), uint32(core<<16|i))
				ld(c, shared)
				if i%3 == core%3 {
					st(c, shared+addr.Addr(4*(core%8)), uint32(i))
				}
			}
		})
	}
}

// TestDigestsDeterministicAtEventCount runs the same workload twice to
// the same event budget and asserts the full per-layer digest vector
// matches — the foundation of the verified-replay resume contract.
func TestDigestsDeterministicAtEventCount(t *testing.T) {
	capture := func() snapshot.Digests {
		m := newMachine(t, hwccCfg(2))
		startMixers(m, 8, 200)
		err := m.SimulateCtx(context.Background(), 10_000_000, runctl.Limits{MaxEvents: 6_000})
		if !errors.Is(err, simerr.ErrBudgetExhausted) {
			t.Fatalf("SimulateCtx = %v, want ErrBudgetExhausted", err)
		}
		return m.Digests()
	}
	d1, d2 := capture(), capture()
	if diff := d1.Diff(d2); diff != nil {
		t.Fatalf("digest vectors diverged across identical replays: %v", diff)
	}
	if d1.Events != 6_000 {
		t.Fatalf("digests recorded %d events, want the 6000-event budget", d1.Events)
	}
	if d1.Mem == 0 || d1.L2 == 0 {
		t.Fatal("digest layers look uncomputed")
	}
}

// TestCaptureStateDeterministic compares full serialized machine states
// across identical replays, item by item.
func TestCaptureStateDeterministic(t *testing.T) {
	capture := func() *snapshot.MachineState {
		m := newMachine(t, cohesionCfg(2))
		startMixers(m, 8, 400)
		err := m.SimulateCtx(context.Background(), 10_000_000, runctl.Limits{MaxEvents: 5_000})
		if !errors.Is(err, simerr.ErrBudgetExhausted) {
			t.Fatalf("SimulateCtx = %v, want ErrBudgetExhausted", err)
		}
		return m.CaptureState()
	}
	s1, s2 := capture(), capture()
	if diff := snapshot.DiffStates(s1, s2); diff != nil {
		t.Fatalf("machine states diverged across identical replays: %v", diff)
	}
	if !reflect.DeepEqual(s1, s2) {
		t.Fatal("machine states differ in a layer DiffStates does not cover")
	}
}

// TestCheckpointCallbackFiresAtExactCounts asserts the deterministic
// schedule: CheckpointEvery multiples plus CheckpointAt one-shots, each
// exactly once, in order.
func TestCheckpointCallbackFiresAtExactCounts(t *testing.T) {
	m := newMachine(t, hwccCfg(2))
	startMixers(m, 8, 200)
	var fired []uint64
	m.SetCheckpointFunc(func(events, cycle uint64) error {
		fired = append(fired, events)
		return nil
	})
	err := m.SimulateCtx(context.Background(), 10_000_000,
		runctl.Limits{MaxEvents: 5_000, CheckpointEvery: 1_000, CheckpointAt: []uint64{2_500, 777, 777}})
	if !errors.Is(err, simerr.ErrBudgetExhausted) {
		t.Fatalf("SimulateCtx = %v, want ErrBudgetExhausted", err)
	}
	// Periodic at 1000..4000, one-shots at 777 and 2500, and the
	// checkpoint-on-stop at the 5000-event budget. The 5000 periodic
	// point coincides with the stop: Check returns the stop before the
	// loop reaches CheckpointDue, so only the stop checkpoint fires.
	want := []uint64{777, 1_000, 2_000, 2_500, 3_000, 4_000, 5_000}
	if !reflect.DeepEqual(fired, want) {
		t.Fatalf("checkpoints fired at %v, want %v", fired, want)
	}
}

// TestCheckpointObservabilityNeutral runs the same workload with and
// without a digest-capturing checkpoint callback and asserts the final
// memory fingerprint and event count are bit-identical — checkpointing
// must be a pure observer.
func TestCheckpointObservabilityNeutral(t *testing.T) {
	run := func(every uint64) (uint64, uint64) {
		m := newMachine(t, cohesionCfg(2))
		startMixers(m, 8, 120)
		if every > 0 {
			m.SetCheckpointFunc(func(events, cycle uint64) error {
				_ = m.CaptureState() // exercise the full capture path mid-run
				return nil
			})
		}
		lim := runctl.Limits{CheckpointEvery: every}
		if err := m.SimulateCtx(context.Background(), 50_000_000, lim); err != nil {
			t.Fatalf("SimulateCtx = %v, want clean run", err)
		}
		m.DrainToMemory()
		return m.Store.Fingerprint(), m.Q.Fired()
	}
	bareFP, bareEvents := run(0)
	ckptFP, ckptEvents := run(2_000)
	if bareFP != ckptFP || bareEvents != ckptEvents {
		t.Fatalf("checkpointing perturbed the run: bare (%#x, %d events) vs checkpointed (%#x, %d events)",
			bareFP, bareEvents, ckptFP, ckptEvents)
	}
}

// TestCheckpointErrorAbortsRun asserts a failing checkpoint write ends
// the run with the callback's error and still joins every goroutine.
func TestCheckpointErrorAbortsRun(t *testing.T) {
	m := newMachine(t, hwccCfg(2))
	startSpinners(m, 8)
	boom := fmt.Errorf("disk full")
	m.SetCheckpointFunc(func(events, cycle uint64) error { return boom })
	err := m.SimulateCtx(context.Background(), 10_000_000, runctl.Limits{CheckpointEvery: 1_000})
	if !errors.Is(err, boom) {
		t.Fatalf("SimulateCtx = %v, want the checkpoint error", err)
	}
}

// TestCheckpointOnStopKeepsSentinel asserts that when the stop-time
// checkpoint write fails, the returned error still matches the stop
// sentinel (callers rely on errors.Is for partial-result handling).
func TestCheckpointOnStopKeepsSentinel(t *testing.T) {
	m := newMachine(t, hwccCfg(2))
	startSpinners(m, 8)
	boom := fmt.Errorf("disk full")
	m.SetCheckpointFunc(func(events, cycle uint64) error { return boom })
	err := m.SimulateCtx(context.Background(), 10_000_000, runctl.Limits{MaxEvents: 3_000})
	if !errors.Is(err, simerr.ErrBudgetExhausted) {
		t.Fatalf("SimulateCtx = %v, want ErrBudgetExhausted preserved", err)
	}
	if !errors.Is(err, boom) {
		t.Fatalf("SimulateCtx = %v, want the checkpoint write error joined", err)
	}
}
