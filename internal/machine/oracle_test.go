package machine

import (
	"errors"
	"strings"
	"testing"

	"cohesion/internal/addr"
	"cohesion/internal/cache"
	"cohesion/internal/cluster"
	"cohesion/internal/simerr"
)

// The fabrication tests corrupt machine state host-side between program
// operations (the machine is paused while a program body runs) and verify
// the online oracle catches the corruption at the violating event — the
// run's Simulate returns ErrProtocolInvariant instead of completing.
//
// A failing run strands its program goroutines inside Do; that leak is
// confined to the test process.

func expectViolation(t *testing.T, m *Machine, substr string) {
	t.Helper()
	err := m.Simulate(50_000_000)
	if err == nil {
		t.Fatalf("corrupted run completed cleanly; want ErrProtocolInvariant containing %q", substr)
	}
	if !errors.Is(err, simerr.ErrProtocolInvariant) {
		t.Fatalf("got %v, want ErrProtocolInvariant", err)
	}
	if !strings.Contains(err.Error(), substr) {
		t.Fatalf("violation message %q does not contain %q", err.Error(), substr)
	}
}

// TestOracleDetectsStaleRead doctors an L2 data word after a store so a
// later load returns a value the protocol never produced.
func TestOracleDetectsStaleRead(t *testing.T) {
	cfg := hwccCfg(2)
	cfg.OracleEnabled = true
	m := newMachine(t, cfg)
	a := addr.Addr(addr.HeapBase)
	line := addr.LineOf(a)
	program(m, 0, func(c *cluster.Core) {
		st(c, a, 1)
		st(c, a, 2)
		// Corrupt the cached copy: flip the word back to the stale value.
		m.Clusters[0].L2().Peek(line).Data[addr.WordIndex(a)] = 1
		ld(c, a)
	})
	expectViolation(t, m, "stale read")
}

// TestOracleDetectsDoubleOwner fabricates a second Modified copy of a line
// the directory granted exclusively to another cluster.
func TestOracleDetectsDoubleOwner(t *testing.T) {
	cfg := hwccCfg(2)
	cfg.OracleEnabled = true
	m := newMachine(t, cfg)
	a := addr.Addr(addr.HeapBase)
	line := addr.LineOf(a)
	program(m, 0, func(c *cluster.Core) {
		st(c, a, 7) // cluster 0 becomes the legitimate owner
		uncStore(c, syncWord, 1)
	})
	program(m, 8, func(c *cluster.Core) {
		spinUntil(c, syncWord, 1)
		// Fabricate an M copy in cluster 1 without any directory grant.
		e, _, _ := m.Clusters[1].L2().Allocate(line)
		e.State = cache.StateModified
		e.ValidMask = cache.FullMask
		st(c, a, 9) // hits the fabricated M entry: two owners now write
	})
	expectViolation(t, m, "double owner")
}

// TestOracleDetectsIllegalCleanCapture clears the dirty mask of a dirty
// incoherent line so a SWcc=>HWcc capture illegally replies "clean",
// silently discarding the uncommitted store (paper Figure 7b forbids it:
// dirty copies must write back or upgrade).
func TestOracleDetectsIllegalCleanCapture(t *testing.T) {
	cfg := cohesionCfg(2)
	cfg.OracleEnabled = true
	m := newMachine(t, cfg)
	a := addr.Addr(addr.CohHeapBase)
	line := addr.LineOf(a)
	m.PresetSWcc(addr.Range{Base: a, Size: addr.LineBytes})
	banks := m.Cfg.L3Banks
	program(m, 0, func(c *cluster.Core) {
		st(c, a, 5) // dirty incoherent copy
		// Corrupt the bookkeeping: the cache now believes the line is clean.
		m.Clusters[0].L2().Peek(line).DirtyMask = 0
		transition(c, a, banks, false) // SWcc => HWcc capture broadcast
	})
	expectViolation(t, m, "illegal SWcc→HWcc flip")
}
