package machine

import (
	"errors"
	"runtime"
	"testing"
	"time"

	"cohesion/internal/addr"
	"cohesion/internal/cluster"
	"cohesion/internal/simerr"
)

// goroutinesSettleTo waits for the process goroutine count to drop back to
// at most base, tolerating the scheduler's exit lag.
func goroutinesSettleTo(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= base {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines did not settle: %d > baseline %d", runtime.NumGoroutine(), base)
		}
		runtime.Gosched()
		time.Sleep(time.Millisecond)
	}
}

// TestNoGoroutineLeakOnCycleLimit forces an aborted run (programs that
// never finish hit the cycle limit) and asserts every program goroutine is
// released and joined: before the shutdown path existed, each aborted run
// leaked one blocked goroutine per started core — fatal for a parallel
// harness running thousands of simulations in one process.
func TestNoGoroutineLeakOnCycleLimit(t *testing.T) {
	base := runtime.NumGoroutine()
	for iter := 0; iter < 3; iter++ {
		m := newMachine(t, hwccCfg(2))
		for core := 0; core < 8; core++ {
			a := addr.HeapBase + addr.Addr(core*addr.LineBytes)
			m.StartProgram(core, func(c *cluster.Core) {
				for { // never completes: the cycle limit must abort the run
					ld(c, a)
					st(c, a, 1)
				}
			})
		}
		err := m.Simulate(20_000)
		if !errors.Is(err, ErrCycleLimit) {
			t.Fatalf("Simulate = %v, want ErrCycleLimit", err)
		}
	}
	goroutinesSettleTo(t, base)
}

// TestNoGoroutineLeakOnDeadlock aborts a run whose only core is a
// spin-waiting poller — it completes operations forever (so the watchdog
// sees progress) but never finishes. Whether such a run ends as a
// watchdog deadlock or at the cycle limit, the core is blocked
// mid-operation at abort time and its goroutines must be released.
func TestNoGoroutineLeakOnDeadlock(t *testing.T) {
	base := runtime.NumGoroutine()
	cfg := hwccCfg(1)
	cfg.WatchdogCycles = 5_000
	m := newMachine(t, cfg)
	// Core 0 waits forever on a sync word nobody writes; the spin keeps
	// completing operations, so the watchdog's stuck-transaction check
	// stays quiet — the cycle limit is the backstop that aborts the run
	// with the core still blocked mid-operation.
	m.StartProgram(0, func(c *cluster.Core) {
		spinUntil(c, syncWord, 0xdead)
	})
	err := m.Simulate(200_000)
	if err == nil {
		t.Fatal("Simulate succeeded, want an aborted run")
	}
	if !errors.Is(err, ErrCycleLimit) && !errors.Is(err, simerr.ErrDeadlock) {
		t.Fatalf("Simulate = %v, want cycle-limit or deadlock", err)
	}
	goroutinesSettleTo(t, base)
}

// TestShutdownIdempotent double-shutdown must be safe, including on a
// machine whose programs all completed normally.
func TestShutdownIdempotent(t *testing.T) {
	m := newMachine(t, hwccCfg(1))
	program(m, 0, func(c *cluster.Core) { st(c, addr.HeapBase, 7) })
	simulate(t, m)
	m.Shutdown()
	m.Shutdown()
}
