package machine

import (
	"testing"

	"cohesion/internal/addr"
	"cohesion/internal/cluster"
	"cohesion/internal/config"
	"cohesion/internal/trace"
)

// covered reports whether the edge fired at least once in the run.
func covered(m *Machine, e trace.EdgeID) bool {
	return m.Run.Coverage != nil && m.Run.Coverage.Count(e) > 0
}

// TestDirectoryCapacityEviction streams more distinct lines through a home
// bank than its directory can hold. Every organization with finite storage
// must evict (recalling the L2 copies, since the directory is inclusive)
// and still return the right data on re-read; the infinite directory is
// the control row and must never evict.
func TestDirectoryCapacityEviction(t *testing.T) {
	const lines = 16
	cases := []struct {
		name          string
		kind          config.DirKind
		entries       int
		assoc         int
		wantEvictions bool
	}{
		{"sparse-set-assoc", config.DirSparse, 4, 2, true},
		{"sparse-fully-assoc", config.DirSparse, 4, 0, true},
		{"dir4b-limited", config.DirLimited4B, 4, 2, true},
		{"infinite-control", config.DirInfinite, 0, 0, false},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			cfg := hwccCfg(1).WithDirectory(tc.kind, tc.entries, tc.assoc)
			m := newMachine(t, cfg)
			m.Run.Coverage = trace.NewCoverage()
			var got [lines]uint32
			program(m, 0, func(c *cluster.Core) {
				for i := 0; i < lines; i++ {
					st(c, addr.Addr(addr.HeapBase)+addr.Addr(32*i), uint32(100+i))
				}
				for i := 0; i < lines; i++ {
					got[i] = ld(c, addr.Addr(addr.HeapBase)+addr.Addr(32*i))
				}
			})
			simulate(t, m)
			for i, v := range got {
				if v != uint32(100+i) {
					t.Fatalf("line %d read %d, want %d", i, v, 100+i)
				}
			}
			if tc.wantEvictions {
				if m.Run.DirEvictions == 0 {
					t.Fatal("finite directory under 4x pressure never evicted")
				}
				if !covered(m, trace.EdgeDirCapacityEvict) {
					t.Fatal("evictions counted but dir.capacity_evict never fired")
				}
			} else {
				if m.Run.DirEvictions != 0 {
					t.Fatalf("infinite directory evicted %d entries", m.Run.DirEvictions)
				}
			}
		})
	}
}

// TestDirNackOnCapacity drives two clusters at a one-entry directory so
// that one request always finds the only way pinned by the other's
// in-flight transaction. With DirNackOnCapacity the home bounces the
// requester (who must back off and retransmit); without it the home
// silently retries the allocation itself. Both must converge to the same
// final data.
func TestDirNackOnCapacity(t *testing.T) {
	const lines = 8
	run := func(t *testing.T, nackOnCapacity bool) *Machine {
		t.Helper()
		cfg := hwccCfg(2).WithDirectory(config.DirSparse, 1, 1)
		cfg.DirNackOnCapacity = nackOnCapacity
		m := newMachine(t, cfg)
		m.Run.Coverage = trace.NewCoverage()
		for core, base := range map[int]addr.Addr{0: addr.HeapBase, 8: addr.HeapBase + 32*lines} {
			base := base
			program(m, core, func(c *cluster.Core) {
				for i := 0; i < lines; i++ {
					st(c, base+addr.Addr(32*i), uint32(base)+uint32(i))
				}
			})
		}
		simulate(t, m)
		m.DrainToMemory()
		for _, base := range []addr.Addr{addr.HeapBase, addr.HeapBase + 32*lines} {
			for i := 0; i < lines; i++ {
				if v := m.Store.ReadWord(base + addr.Addr(32*i)); v != uint32(base)+uint32(i) {
					t.Fatalf("word %d at base %#x drained as %d", i, uint64(base), v)
				}
			}
		}
		return m
	}

	for _, tc := range []struct {
		name string
		nack bool
	}{
		{"nack-on-capacity", true},
		{"silent-retry", false},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			m := run(t, tc.nack)
			if tc.nack {
				if m.Run.NacksSent == 0 {
					t.Fatal("capacity starvation sent no NACKs")
				}
				if m.Run.NackRetries == 0 {
					t.Fatal("NACKs sent but no requester retransmitted")
				}
				if !covered(m, trace.EdgeDirCapacityNack) {
					t.Fatal("dir.capacity_nack never fired")
				}
			} else {
				if m.Run.NacksSent != 0 {
					t.Fatalf("no fault plan and no capacity NACKs configured, yet %d NACKs sent", m.Run.NacksSent)
				}
				if !covered(m, trace.EdgeDirAllocRetryPinned) {
					t.Fatal("dir.alloc_retry_pinned never fired")
				}
			}
		})
	}
}

// TestDirectoryEvictionRecallsDirtyOwner pins down the data path of a
// capacity eviction: a dirty line recalled by an eviction must write its
// data back before the entry is reused, so a later read returns the
// stored value even though the owner's L2 copy was invalidated.
func TestDirectoryEvictionRecallsDirtyOwner(t *testing.T) {
	cfg := hwccCfg(1).WithDirectory(config.DirSparse, 1, 1)
	m := newMachine(t, cfg)
	a := addr.Addr(addr.HeapBase)
	var got uint32
	program(m, 0, func(c *cluster.Core) {
		st(c, a, 777) // dirty in cluster 0, directory entry Modified
		for i := 1; i <= 4; i++ {
			_ = ld(c, a+addr.Addr(2048*i)) // each evicts the previous entry
		}
		got = ld(c, a) // must refetch the written-back value
	})
	simulate(t, m)
	if got != 777 {
		t.Fatalf("read-after-eviction = %d, want 777", got)
	}
	if m.Run.DirEvictions == 0 {
		t.Fatal("no evictions occurred")
	}
}
