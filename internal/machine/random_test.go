package machine

import (
	"math/rand"
	"testing"

	"cohesion/internal/addr"
	"cohesion/internal/cluster"
	"cohesion/internal/config"
	"cohesion/internal/region"
)

// TestRandomHWccMonotonicReads is a randomized coherence checker: each
// word has a single writer core that stores strictly increasing version
// numbers; every reader's observation sequence per word must then be
// nondecreasing (per-location sequential consistency, which MSI + a
// serializing directory must provide). Stale regressions — reading an
// older version after a newer one — are coherence violations.
func TestRandomHWccMonotonicReads(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		seed := seed
		m := newMachine(t, hwccCfg(4))
		const (
			words   = 32
			workers = 8
			opsEach = 300
		)
		base := addr.Addr(addr.HeapBase)
		wordAddr := func(w int) addr.Addr { return base + addr.Addr(4*w) }

		type obs struct {
			word int
			val  uint32
		}
		observed := make([][]obs, workers)
		versions := make([]uint32, words)

		for wk := 0; wk < workers; wk++ {
			wk := wk
			// Spread across all four clusters.
			program(m, wk*4, func(c *cluster.Core) {
				rng := rand.New(rand.NewSource(seed*100 + int64(wk)))
				for i := 0; i < opsEach; i++ {
					w := rng.Intn(words)
					if w%workers == wk && rng.Intn(2) == 0 {
						// This worker owns the word: write the next version.
						versions[w]++ // host-side bookkeeping is safe: single writer
						st(c, wordAddr(w), uint32(wk)<<24|versions[w])
					} else {
						v := ld(c, wordAddr(w))
						observed[wk] = append(observed[wk], obs{w, v})
					}
				}
			})
		}
		simulate(t, m)

		for wk, seq := range observed {
			last := map[int]uint32{}
			for i, o := range seq {
				if o.val == 0 {
					continue // never written yet
				}
				owner := int(o.val >> 24)
				if owner != o.word%workers {
					t.Fatalf("seed %d: worker %d read word %d with wrong owner tag %d", seed, wk, o.word, owner)
				}
				ver := o.val & 0xffffff
				if prev, ok := last[o.word]; ok && ver < prev {
					t.Fatalf("seed %d: worker %d observation %d: word %d regressed from version %d to %d",
						seed, wk, i, o.word, prev, ver)
				}
				last[o.word] = ver
			}
		}
	}
}

// TestRandomTransitionRoundsPreserveValues stress-tests the transition
// protocol: a producer writes random values into a block under SWcc and
// flushes; a consumer migrates the block to HWcc, reads and checks every
// word, then migrates it back; repeat with fresh random data. Any lost or
// stale word is a transition-protocol bug.
func TestRandomTransitionRoundsPreserveValues(t *testing.T) {
	m := newMachine(t, cohesionCfg(2))
	const (
		blockWords = 24
		rounds     = 12
	)
	block := addr.Addr(addr.CohHeapBase)
	m.PresetSWcc(addr.Range{Base: block, Size: blockWords * 4})
	banks := m.Cfg.L3Banks
	rng := rand.New(rand.NewSource(99))
	expected := make([][]uint32, rounds)
	for r := range expected {
		expected[r] = make([]uint32, blockWords)
		for w := range expected[r] {
			expected[r][w] = rng.Uint32() | 1 // nonzero
		}
	}
	mismatches := 0

	transitionRange := func(c *cluster.Core, toSW bool) {
		for w := 0; w < blockWords; w += 8 { // one call per line
			transition(c, block+addr.Addr(4*w), banks, toSW)
		}
	}

	program(m, 0, func(c *cluster.Core) { // producer
		for r := 0; r < rounds; r++ {
			spinUntil(c, syncWord, uint32(2*r)) // wait for "block is SWcc"
			for w := 0; w < blockWords; w++ {
				st(c, block+addr.Addr(4*w), expected[r][w])
			}
			// Half the rounds flush eagerly; the other half leave the lines
			// dirty so the capture protocol has to collect them.
			if r%2 == 0 {
				for w := 0; w < blockWords; w += 8 {
					flush(c, block+addr.Addr(4*w))
				}
			}
			uncStore(c, syncWord, uint32(2*r+1))
		}
	})
	program(m, 8, func(c *cluster.Core) { // consumer/migrator
		for r := 0; r < rounds; r++ {
			spinUntil(c, syncWord, uint32(2*r+1))
			transitionRange(c, false) // SW -> HW: capture
			for w := 0; w < blockWords; w++ {
				if got := ld(c, block+addr.Addr(4*w)); got != expected[r][w] {
					mismatches++
				}
			}
			// Drop our coherent copies cleanly, then hand the block back.
			for w := 0; w < blockWords; w += 8 {
				inv(c, block+addr.Addr(4*w))
			}
			transitionRange(c, true) // HW -> SW
			uncStore(c, syncWord, uint32(2*r+2))
		}
	})
	simulate(t, m)
	if mismatches != 0 {
		t.Fatalf("%d stale/lost words across %d transition rounds", mismatches, rounds)
	}
	wantTrans := uint64(rounds * (blockWords / 8))
	if m.Run.TransitionsToHW != wantTrans || m.Run.TransitionsToSW != wantTrans {
		t.Fatalf("transitions = %d/%d, want %d each", m.Run.TransitionsToHW, m.Run.TransitionsToSW, wantTrans)
	}
}

// TestSWccStalenessIsReal is the negative control: without an invalidate,
// a consumer that cached a line under SWcc keeps reading the stale value
// even after the producer flushed a new one. If this test fails, the
// simulator is secretly coherent and every SWcc measurement is wrong.
func TestSWccStalenessIsReal(t *testing.T) {
	m := newMachine(t, swccCfg(2))
	a := addr.Addr(addr.HeapBase)
	m.Store.WriteWord(a, 1)
	var stale uint32
	program(m, 0, func(c *cluster.Core) {
		_ = ld(c, a) // cache the old value
		uncStore(c, syncWord, 1)
		spinUntil(c, syncWord, 2)
		stale = ld(c, a) // no INV: must still see the old value
	})
	program(m, 8, func(c *cluster.Core) {
		spinUntil(c, syncWord, 1) // the reader has cached the line
		st(c, a, 2)
		flush(c, a)
		uncStore(c, syncWord, 2)
	})
	simulate(t, m)
	if stale != 1 {
		t.Fatalf("read %d; SWcc should have served the stale cached value 1", stale)
	}
}

// TestSWccUnflushedWriteInvisible: without a flush, another cluster's
// fresh fetch sees the old memory value (the producer's write sits in its
// local L2 only).
func TestSWccUnflushedWriteInvisible(t *testing.T) {
	m := newMachine(t, swccCfg(2))
	a := addr.Addr(addr.HeapBase)
	m.Store.WriteWord(a, 5)
	var got uint32
	program(m, 0, func(c *cluster.Core) {
		st(c, a, 6) // never flushed
		uncStore(c, syncWord, 1)
	})
	program(m, 8, func(c *cluster.Core) {
		spinUntil(c, syncWord, 1)
		got = ld(c, a)
	})
	simulate(t, m)
	if got != 5 {
		t.Fatalf("read %d; unflushed SWcc write must be invisible (want 5)", got)
	}
}

// TestCohesionHWccDomainNeverStale: the same producer/consumer pattern on
// the coherent heap under Cohesion must always see the latest value — the
// positive control for the two tests above.
func TestCohesionHWccDomainNeverStale(t *testing.T) {
	m := newMachine(t, cohesionCfg(2))
	a := addr.Addr(addr.HeapBase)
	m.Store.WriteWord(a, 5)
	var got uint32
	program(m, 0, func(c *cluster.Core) {
		_ = ld(c, a)
		uncStore(c, syncWord, 1)
		spinUntil(c, syncWord, 2)
		got = ld(c, a) // directory invalidated our copy; must see 6
	})
	program(m, 8, func(c *cluster.Core) {
		spinUntil(c, syncWord, 1) // the reader has cached the line
		st(c, a, 6)
		uncStore(c, syncWord, 2)
	})
	simulate(t, m)
	if got != 6 {
		t.Fatalf("read %d under HWcc domain, want 6", got)
	}
}

// TestRandomDirectoryPressureCorrectness runs a random multi-writer
// workload on a pathologically small sparse directory and checks that the
// single-writer-per-word values all land correctly despite constant
// directory evictions.
func TestRandomDirectoryPressureCorrectness(t *testing.T) {
	cfg := config.Scaled(2).WithMode(config.HWcc).WithDirectory(config.DirSparse, 8, 0)
	m := newMachine(t, cfg)
	const words = 256
	base := addr.Addr(addr.HeapBase)
	final := make([]uint32, words)
	for wk := 0; wk < 4; wk++ {
		wk := wk
		program(m, wk*4, func(c *cluster.Core) {
			rng := rand.New(rand.NewSource(int64(wk)))
			for i := 0; i < 400; i++ {
				w := rng.Intn(words/4)*4 + wk // own every 4th word
				v := rng.Uint32()
				st(c, base+addr.Addr(4*w), v)
				final[w] = v
			}
		})
	}
	simulate(t, m)
	m.DrainToMemory()
	for w := 0; w < words; w++ {
		if got := m.Store.ReadWord(base + addr.Addr(4*w)); got != final[w] {
			t.Fatalf("word %d = %#x, want %#x (directory pressure corrupted data)", w, got, final[w])
		}
	}
	if m.Run.DirEvictions == 0 {
		t.Fatal("test did not actually pressure the directory")
	}
}

// TestTransitionWhileOtherClusterReads exercises the queueing of regular
// requests behind an in-flight transition: a reader hammers a line while
// another core toggles its domain repeatedly; every read must return the
// (never-changing) value.
func TestTransitionWhileOtherClusterReads(t *testing.T) {
	m := newMachine(t, cohesionCfg(2))
	a := addr.Addr(addr.CohHeapBase)
	m.PresetSWcc(addr.Range{Base: a, Size: 32})
	m.Store.WriteWord(a, 77)
	banks := m.Cfg.L3Banks
	bad := 0
	program(m, 0, func(c *cluster.Core) { // toggler
		for i := 0; i < 20; i++ {
			transition(c, a, banks, i%2 == 0) // toHW, toSW, ...
		}
		uncStore(c, syncWord, 1)
	})
	program(m, 8, func(c *cluster.Core) { // reader
		for uncLoad(c, syncWord) != 1 {
			inv(c, a) // drop any copy so each read refetches
			if ld(c, a) != 77 {
				bad++
			}
		}
	})
	simulate(t, m)
	if bad != 0 {
		t.Fatalf("%d reads returned wrong values during transitions", bad)
	}
}

var _ = region.TblWordAddr // keep region import if transition helper moves
