// Package machine assembles the full simulated processor: clusters of
// cores, the two-level interconnect, the L3/directory home banks, the
// DRAM substrate, and — under Cohesion — the region tables. It owns the
// event queue, runs simulations to quiescence, and provides the
// end-of-run invariant checks the test suite leans on.
package machine

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"cohesion/internal/addr"
	"cohesion/internal/cache"
	"cohesion/internal/cluster"
	"cohesion/internal/config"
	"cohesion/internal/core"
	"cohesion/internal/directory"
	"cohesion/internal/dram"
	"cohesion/internal/event"
	"cohesion/internal/fault"
	"cohesion/internal/interconnect"
	"cohesion/internal/msg"
	"cohesion/internal/oracle"
	"cohesion/internal/region"
	"cohesion/internal/runctl"
	"cohesion/internal/simerr"
	"cohesion/internal/stats"
	"cohesion/internal/trace"
)

// Machine is one assembled processor plus its measurement state.
type Machine struct {
	Cfg      config.Machine
	Q        *event.Queue
	Run      *stats.Run
	Store    *dram.Store
	Mem      *dram.Controller
	Net      *interconnect.Network
	Homes    []*core.Home
	Clusters []*cluster.Cluster
	Coarse   *region.CoarseTable
	Fine     *region.FineTable

	// RegionCaches holds one host-side fine-table lookup cache per cluster
	// (Cohesion mode only; nil otherwise). The runtime's FlushIfSWcc /
	// InvIfSWcc answer domain queries through the querying cluster's cache;
	// CheckInvariants verifies live entries against the table at quiescence.
	RegionCaches []*region.Cache

	faults *fault.Plan    // nil unless Cfg.Faults.Enabled
	oracle *oracle.Oracle // nil unless Cfg.OracleEnabled

	// Free lists for the pooled network-delivery records (see netReq /
	// netProbe); steady-state request and probe traffic recycles them
	// instead of allocating a closure per network hop.
	freeReq   *netReq
	freeProbe *netProbe

	activeCores  int
	started      int
	lastDone     event.Cycle // cycle when the final core's program completed
	lastProgress uint64      // watchdog: Run.ForwardProgress at the last check

	// stop, once set, ends the event loop after the current event: the
	// watchdog records its deadlock diagnostic here instead of panicking
	// through the event stack, and SimulateCtx returns it. The loop's
	// only steady-state cost is one nil compare per event.
	stop *simerr.Error

	// ckpt, when set via SetCheckpointFunc, is invoked between events
	// whenever the controller's deterministic checkpoint schedule comes
	// due, and once more before a lifecycle stop returns (while program
	// coroutines are still parked, before Shutdown).
	ckpt func(events, cycle uint64) error
}

// New builds a machine from a validated configuration.
func New(cfg config.Machine) (*Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	m := &Machine{
		Cfg:   cfg,
		Q:     &event.Queue{},
		Run:   &stats.Run{},
		Store: dram.NewStore(),
	}
	m.Mem = dram.NewController(m.Q, m.Run, cfg.DRAMChannels, cfg.L3Banks, cfg.DRAMLatency, cfg.DRAMCyclesPerLine)
	m.Net = interconnect.New(m.Q, cfg.Clusters, cfg.L3Banks, cfg.TreeLatency, cfg.XbarLatency)
	if cfg.NetJitter > 0 {
		m.Net.SetJitter(cfg.NetJitter, cfg.NetJitterSeed)
	}
	m.faults = fault.NewPlan(cfg.Faults, m.Run)
	if m.faults != nil {
		m.Net.SetDelayFunc(m.faults.DelaySpike)
	}

	if cfg.Mode == config.Cohesion {
		m.Fine = region.NewFineTable(m.Store, cfg.L3Banks)
		if cfg.CoarseTable {
			m.Coarse = &region.CoarseTable{}
		}
	}
	if cfg.OracleEnabled {
		m.oracle = oracle.New(cfg, m.Q, m.Store, m.Coarse, m.Fine)
	}
	if cfg.TraceRingSize > 0 {
		m.EnableTrace(cfg.TraceRingSize)
	}

	for b := 0; b < cfg.L3Banks; b++ {
		var dir directory.Directory
		switch cfg.Directory {
		case config.DirNone:
		case config.DirInfinite:
			dir = directory.NewInfinite()
		case config.DirSparse:
			dir = directory.NewSparse(cfg.DirEntriesPerBank, cfg.DirAssoc, false)
		case config.DirLimited4B:
			dir = directory.NewSparse(cfg.DirEntriesPerBank, cfg.DirAssoc, true)
		}
		bank := b
		probe := func(cl int, p msg.Probe, onReply func(msg.ProbeReply)) {
			m.deliverProbe(bank, cl, p, onReply)
		}
		h := core.NewHome(bank, cfg, m.Q, m.Run, m.Store, m.Mem, dir, m.Coarse, m.Fine, probe, m.faults)
		if m.oracle != nil {
			h.SetOracle(m.oracle)
		}
		m.Homes = append(m.Homes, h)
	}

	for c := 0; c < cfg.Clusters; c++ {
		cl := cluster.New(c, cfg, m.Q, m.Run)
		clusterID := c
		cl.Wire(
			func(req msg.Req, onResp func(msg.Resp)) { m.deliverReq(clusterID, req, onResp) },
			func() {
				m.activeCores--
				if m.activeCores == 0 {
					m.lastDone = m.Q.Now()
				}
			},
		)
		if m.oracle != nil {
			cl.SetOracle(m.oracle)
		}
		m.Clusters = append(m.Clusters, cl)
	}
	if m.Fine != nil {
		m.RegionCaches = make([]*region.Cache, cfg.Clusters)
		for c := range m.RegionCaches {
			m.RegionCaches[c] = region.NewCache(m.Fine)
		}
	}
	return m, nil
}

// Oracle returns the online coherence oracle, or nil when disabled.
func (m *Machine) Oracle() *oracle.Oracle { return m.oracle }

// nop is the shared no-op completion for deliveries whose arrival needs
// no action (dropped requests occupy their links but never arrive).
func nop() {}

// netReq carries one request delivery across the interconnect and its
// response back, replacing the four closures the round trip used to
// allocate. Records are pooled on the machine: the continuation funcs are
// bound once per record and the per-delivery state (request, response,
// route) is rewritten on reuse. A record is freed when its response is
// delivered — or, for one-way traffic (evictions, releases), as soon as
// it arrives at the bank. The rare fault-injected duplicate delivery gets
// its own record; if the home dedups it without replying, that record is
// simply dropped to the garbage collector rather than returned.
type netReq struct {
	m         *Machine
	bank      int
	clusterID int
	req       msg.Req
	onResp    func(msg.Resp)
	resp      msg.Resp

	deliverFn     func()         // fires at the bank: hand to the home
	replyFn       func(msg.Resp) // home's reply: route the response back
	deliverRespFn func()         // fires at the cluster: complete onResp

	nextFree *netReq
}

func (m *Machine) allocNetReq() *netReq {
	r := m.freeReq
	if r == nil {
		r = &netReq{m: m}
		r.deliverFn = func() { r.deliver() }
		r.replyFn = func(resp msg.Resp) { r.reply(resp) }
		r.deliverRespFn = func() { r.deliverResp() }
		return r
	}
	m.freeReq = r.nextFree
	r.nextFree = nil
	return r
}

func (m *Machine) freeNetReq(r *netReq) {
	r.onResp = nil
	r.nextFree = m.freeReq
	m.freeReq = r
}

func (r *netReq) deliver() {
	if r.onResp == nil {
		// One-way message: free the record before handing off (HandleReq
		// stages its work, so nothing here runs under the home's lock-step).
		m, bank, req := r.m, r.bank, r.req
		m.freeNetReq(r)
		m.Homes[bank].HandleReq(req, nil)
		return
	}
	r.m.Homes[r.bank].HandleReq(r.req, r.replyFn)
}

func (r *netReq) reply(resp msg.Resp) {
	r.resp = resp
	r.m.Net.ToCluster(r.bank, r.clusterID, resp.Bytes(), r.deliverRespFn)
}

func (r *netReq) deliverResp() {
	// Free before completing: the continuation may synchronously issue a
	// follow-up request that reuses this record.
	onResp, resp := r.onResp, r.resp
	r.m.freeNetReq(r)
	onResp(resp)
}

// netProbe is netReq's analogue for directory probes (home → cluster →
// counted reply → home).
type netProbe struct {
	m         *Machine
	bank      int
	clusterID int
	p         msg.Probe
	onReply   func(msg.ProbeReply)
	rep       msg.ProbeReply

	deliverFn    func()               // fires at the cluster: HandleProbe
	replyFn      func(msg.ProbeReply) // cluster's reply: count + route back
	deliverRepFn func()               // fires at the bank: complete onReply

	nextFree *netProbe
}

func (m *Machine) allocNetProbe() *netProbe {
	pr := m.freeProbe
	if pr == nil {
		pr = &netProbe{m: m}
		pr.deliverFn = func() { pr.deliver() }
		pr.replyFn = func(rep msg.ProbeReply) { pr.reply(rep) }
		pr.deliverRepFn = func() { pr.deliverRep() }
		return pr
	}
	m.freeProbe = pr.nextFree
	pr.nextFree = nil
	return pr
}

func (m *Machine) freeNetProbe(pr *netProbe) {
	pr.onReply = nil
	pr.nextFree = m.freeProbe
	m.freeProbe = pr
}

func (pr *netProbe) deliver() {
	pr.m.Clusters[pr.clusterID].HandleProbe(pr.p, pr.replyFn)
}

func (pr *netProbe) reply(rep msg.ProbeReply) {
	pr.m.Run.CountMessage(msg.ProbeResp)
	pr.rep = rep
	pr.m.Net.ToBank(pr.clusterID, pr.bank, rep.Bytes(), pr.deliverRepFn)
}

func (pr *netProbe) deliverRep() {
	onReply, rep := pr.onReply, pr.rep
	pr.m.freeNetProbe(pr)
	onReply(rep)
}

// deliverReq routes an L2 request to its line's home bank over the network
// and routes the response back. When fault injection is enabled, retryable
// requests may be dropped (they occupy their links but never arrive) or
// delivered twice; the L2's retransmission and the home's dedup-by-ID
// absorb both.
func (m *Machine) deliverReq(clusterID int, req msg.Req, onResp func(msg.Resp)) {
	bank := region.HomeBankOfLine(req.Line, m.Cfg.L3Banks)
	if m.faults != nil && req.Kind.Retryable() && req.ID != 0 {
		switch m.faults.RequestVerdict() {
		case fault.Drop:
			m.Run.Edge(trace.EdgeRecNetDrop)
			m.Run.TraceEvent(uint64(m.Q.Now()), "net", "drop %v line=%#x cl%d id=%#x",
				req.Kind, uint64(req.Line.Base()), clusterID, req.ID)
			m.Net.ToBank(clusterID, bank, req.Bytes(), nop)
			return
		case fault.Duplicate:
			m.Run.Edge(trace.EdgeRecNetDup)
			m.Run.TraceEvent(uint64(m.Q.Now()), "net", "dup %v line=%#x cl%d id=%#x",
				req.Kind, uint64(req.Line.Base()), clusterID, req.ID)
			dup := m.allocNetReq()
			dup.bank, dup.clusterID, dup.req, dup.onResp = bank, clusterID, req, onResp
			m.Net.ToBank(clusterID, bank, req.Bytes(), dup.deliverFn)
		}
	}
	r := m.allocNetReq()
	r.bank, r.clusterID, r.req, r.onResp = bank, clusterID, req, onResp
	m.Net.ToBank(clusterID, bank, req.Bytes(), r.deliverFn)
}

// deliverProbe routes a directory probe to a cluster and its (counted)
// reply back to the home bank.
func (m *Machine) deliverProbe(bank, clusterID int, p msg.Probe, onReply func(msg.ProbeReply)) {
	pr := m.allocNetProbe()
	pr.bank, pr.clusterID, pr.p, pr.onReply = bank, clusterID, p, onReply
	m.Net.ToCluster(bank, clusterID, msg.CtrlBytes, pr.deliverFn)
}

// AddCoarseRegion registers a permanently software-coherent range in the
// on-die coarse-grain table (no-op outside Cohesion or when the coarse
// table is disabled).
func (m *Machine) AddCoarseRegion(r addr.Range) error {
	if m.Coarse == nil {
		return nil
	}
	return m.Coarse.Add(r)
}

// PresetSWcc marks a range's fine-grain table bits software-coherent
// before simulation starts (the runtime's load-time table initialization,
// paper §3.5 — performed by the bootstrap core before timing begins).
func (m *Machine) PresetSWcc(r addr.Range) {
	if m.Fine == nil {
		return
	}
	m.Fine.SetRange(r)
	// The bulk preset just painted most of the table; refresh the
	// fingerprint's per-block uniformity summaries now, host-side and
	// untimed, so the end-of-run fingerprint only rescans blocks the run
	// itself dirtied.
	m.Store.SummarizeTable()
}

// StartProgram launches a workload program on a global core index.
func (m *Machine) StartProgram(coreID int, program func(*cluster.Core)) {
	cl := m.Clusters[coreID/m.Cfg.CoresPerCluster]
	m.activeCores++
	m.started++
	cl.StartCore(coreID%m.Cfg.CoresPerCluster, program)
}

// ErrCycleLimit reports a simulation that exceeded its cycle budget.
var ErrCycleLimit = errors.New("machine: cycle limit exceeded")

// defaultWatchdogCycles is the forward-progress window used when the
// configuration leaves WatchdogCycles at zero: far longer than any
// legitimate stall (a full recall chain is thousands of cycles), short
// enough that a wedged run fails promptly instead of spinning to the
// cycle limit.
const defaultWatchdogCycles = 4_000_000

// Simulate runs the event loop until every started program completes and
// all in-flight traffic drains, periodically sampling directory occupancy.
// maxCycles guards against livelock (0 means a generous default).
//
// Abnormal ends are structured diagnostics: a *simerr.Error wrapping
// ErrDeadlock (watchdog or drain-time wedge, with per-cluster and per-bank
// stuck-transaction reports), ErrRetryExhausted (an L2 gave up), or
// ErrProtocolInvariant (protocol code panicked with a diagnostic, which is
// recovered here and returned as an error).
func (m *Machine) Simulate(maxCycles uint64) error {
	return m.SimulateCtx(context.Background(), maxCycles, runctl.Limits{})
}

// SimulateCtx is Simulate with a run-lifecycle layer: cooperative
// cancellation through ctx and the resource budgets in lim, both checked
// at the event-loop boundary. Deterministic budgets (max events, max
// sim-cycles) are evaluated every event so a budget-stopped run ends at
// an exact, reproducible point; cancellation, wall-clock, and memory
// checks are amortized (lim.CheckEvery) so an unbudgeted run pays only a
// nil compare per event. Cancellation and budget ends return a
// *simerr.Error wrapping simerr.ErrCanceled or simerr.ErrBudgetExhausted
// whose detail carries the same stuck-style snapshot a deadlock gets
// (outstanding transactions, trace ring); the machine is shut down, its
// partial Run stats and memory image remain readable, and non-
// deterministic stops are tagged non-reproducible in the diagnostic.
func (m *Machine) SimulateCtx(ctx context.Context, maxCycles uint64, lim runctl.Limits) (err error) {
	// Registered first so it runs after the recover defer below has
	// settled err: an abnormal end leaves program coroutines parked in
	// Do, and Shutdown winds them down before Simulate returns.
	defer func() {
		m.Run.Events = m.Q.Fired()
		if err != nil {
			m.Shutdown()
		}
	}()
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		se, ok := simerr.FromPanic(r)
		if !ok {
			panic(r) // foreign panic: a real bug, let it crash loudly
		}
		if se.Cycle == 0 {
			se.Cycle = uint64(m.Q.Now())
		}
		err = se
	}()
	if maxCycles == 0 {
		maxCycles = 2_000_000_000
	}
	ctl := runctl.New(ctx, lim)
	if m.hasDirectory() {
		m.scheduleSample()
	}
	if m.Cfg.WatchdogCycles >= 0 {
		window := event.Cycle(m.Cfg.WatchdogCycles)
		if window == 0 {
			window = defaultWatchdogCycles
		}
		m.lastProgress = m.Run.ForwardProgress
		m.scheduleWatchdog(window)
	}
	for m.Q.Step() {
		if m.stop != nil {
			return m.stop // watchdog-detected deadlock
		}
		if ctl != nil {
			if s := ctl.Check(m.Q.Fired(), uint64(m.Q.Now())); s != nil {
				if m.ckpt != nil {
					// Checkpoint-on-stop: capture the partial state before
					// abortError stamps the stats and before the deferred
					// Shutdown tears the core coroutines down, so the
					// snapshot is bit-identical to a periodic checkpoint at
					// the same event count. A failed write must not mask
					// the stop sentinel.
					if cerr := m.ckpt(m.Q.Fired(), uint64(m.Q.Now())); cerr != nil {
						return errors.Join(m.abortError(s), fmt.Errorf("machine: checkpoint at stop: %w", cerr))
					}
				}
				return m.abortError(s)
			}
			if m.ckpt != nil && ctl.CheckpointDue(m.Q.Fired()) {
				if cerr := m.ckpt(m.Q.Fired(), uint64(m.Q.Now())); cerr != nil {
					return fmt.Errorf("machine: checkpoint at event %d: %w", m.Q.Fired(), cerr)
				}
			}
		}
		// The limit guards against runaway runs; housekeeping stragglers
		// (the last watchdog or sampler event after completion) are benign.
		if uint64(m.Q.Now()) > maxCycles && m.outstandingWork() {
			return fmt.Errorf("%w at cycle %d (%d cores still active)", ErrCycleLimit, m.Q.Now(), m.activeCores)
		}
	}
	if m.outstandingWork() {
		return m.deadlockError("event queue drained with work outstanding")
	}
	// Report the cycle the last program completed; straggler events (the
	// occupancy sampler, in-flight writebacks) do not extend "run time".
	m.Run.Cycles = uint64(m.lastDone)
	m.Run.NetMessages = m.Net.MessagesUp + m.Net.MessagesDown
	m.Run.NetBytes = m.Net.BytesUp + m.Net.BytesDown
	return nil
}

// Shutdown winds down program coroutines left parked mid-operation by an
// aborted run. Simulate calls it on every abnormal-end path; it is
// idempotent and safe to call again from library users that abandon a
// machine without simulating it to quiescence.
func (m *Machine) Shutdown() {
	for _, cl := range m.Clusters {
		cl.Shutdown()
	}
}

// outstandingWork reports whether any program or protocol transaction is
// still unfinished.
func (m *Machine) outstandingWork() bool {
	if m.activeCores != 0 {
		return true
	}
	for _, h := range m.Homes {
		if h.Pending() {
			return true
		}
	}
	for _, cl := range m.Clusters {
		if cl.Pending() {
			return true
		}
	}
	return false
}

// scheduleWatchdog re-checks liveness every window cycles while work is
// outstanding, with two triggers. An L2 transaction outstanding longer
// than the window is a wedge even when other cores keep completing
// operations (spin-waiting pollers count as "progress" but heal
// nothing). A window with no completed operation at all catches stalls
// that never issued a transaction. Either way the run fails with a
// diagnostic naming the stuck transactions rather than hanging: the
// diagnostic is captured eagerly (so its snapshot reflects the cycle the
// watchdog fired) and reported through the same stop path cancellation
// uses — the event loop returns it after this event, with no panic
// unwinding through the event stack.
func (m *Machine) scheduleWatchdog(window event.Cycle) {
	m.Q.After(window, func() {
		if !m.outstandingWork() {
			return // idle: stop rescheduling so the queue can drain
		}
		now := m.Q.Now()
		for _, cl := range m.Clusters {
			if age, line, ok := cl.OldestTxn(now); ok && age > window {
				m.stop = m.deadlockError(fmt.Sprintf(
					"cl%d transaction for line %#x outstanding %d cycles (watchdog window %d)",
					cl.ID, uint64(line.Base()), age, window))
				return
			}
		}
		if m.Run.ForwardProgress == m.lastProgress {
			m.stop = m.deadlockError(fmt.Sprintf("no forward progress for %d cycles", window))
			return
		}
		m.lastProgress = m.Run.ForwardProgress
		m.scheduleWatchdog(window)
	})
}

// diagnostic builds the stuck-style snapshot shared by every early end:
// which clusters and home banks hold unfinished transactions (line,
// kind, age, directory state), plus the protocol trace ring when tracing
// is enabled.
func (m *Machine) diagnostic(reason string) string {
	now := m.Q.Now()
	var lines []string
	for _, cl := range m.Clusters {
		lines = append(lines, cl.StuckReport(now)...)
	}
	for _, h := range m.Homes {
		lines = append(lines, h.StuckReport(now)...)
	}
	if len(lines) == 0 {
		lines = append(lines, "no outstanding transactions recorded (cores wedged before issuing?)")
	}
	detail := fmt.Sprintf("%s; %d of %d started cores unfinished\n  %s",
		reason, m.activeCores, m.started, strings.Join(lines, "\n  "))
	if m.Run.Trace != nil {
		if dump := m.Run.Trace.Dump(); dump != "" {
			detail += "\n--- protocol trace (most recent last) ---\n" + dump
		}
	}
	return detail
}

// deadlockError builds the structured deadlock diagnostic.
func (m *Machine) deadlockError(reason string) *simerr.Error {
	return simerr.New(simerr.ErrDeadlock, uint64(m.Q.Now()), "machine", 0, "%s", m.diagnostic(reason))
}

// abortError ends a run on a lifecycle stop (cancellation or budget):
// the same stuck-style snapshot a deadlock gets, wrapped in the stop's
// sentinel. Partial run stats stay readable: Cycles is set to the stop
// cycle so callers snapshotting m.Run see how far the run got.
func (m *Machine) abortError(s *runctl.Stop) *simerr.Error {
	m.Run.Cycles = uint64(m.Q.Now())
	return simerr.New(s.Sentinel, uint64(m.Q.Now()), "machine", 0, "%s", m.diagnostic(s.Reason))
}

// EnableTrace retains the last capacity protocol events (home-side request
// service, probes, transitions; L2-side installs and probe handling) for
// post-mortem inspection via Run.Trace.
func (m *Machine) EnableTrace(capacity int) {
	m.Run.Trace = stats.NewTraceLog(capacity)
}

func (m *Machine) hasDirectory() bool { return m.Cfg.Directory != config.DirNone }

// scheduleSample samples aggregate directory occupancy every SamplePeriod
// cycles while programs are running (Fig 9c's time-averaged counts).
func (m *Machine) scheduleSample() {
	m.Q.After(stats.SamplePeriod, func() {
		if m.activeCores == 0 {
			return
		}
		var byClass [addr.NumClasses]uint64
		for _, h := range m.Homes {
			if d := h.Directory(); d != nil {
				c := d.CountByClass()
				for i := range byClass {
					byClass[i] += c[i]
				}
			}
		}
		m.Run.Occupancy.Sample(byClass)
		var total uint64
		for _, n := range byClass {
			total += n
		}
		if mm := m.Run.Metrics; mm != nil {
			mm.DirOccupancy.Observe(total)
		}
		if len(m.Run.Timeline) < 1<<16 {
			m.Run.Timeline = append(m.Run.Timeline, stats.TimelineSample{
				Cycle:      uint64(m.Q.Now()),
				Messages:   m.Run.TotalMessages(),
				Probes:     m.Run.ProbesSent,
				DirEntries: total,
			})
		}
		m.scheduleSample()
	})
}

// DrainToMemory force-writes every dirty L2 word to the backing store so
// host-side verification observes final values. It models the exit flush
// a real runtime performs and must only be called after Simulate.
func (m *Machine) DrainToMemory() {
	for _, cl := range m.Clusters {
		cl.DrainDirty(func(line addr.Line, mask uint8, data [addr.WordsPerLine]uint32) {
			m.Store.MergeLine(line, mask, data)
		})
	}
}

// CheckInvariants validates protocol state at quiescence:
//
//   - every Modified directory entry has exactly its owner holding the
//     line in Modified state;
//   - every sharer recorded in a (non-broadcast) Shared entry that still
//     holds the line holds it coherently;
//   - every hardware-coherent line in an L2 is covered by a directory
//     entry naming that cluster (directory inclusivity);
//   - Modified L2 lines match their directory entry's owner;
//   - no L2 line is simultaneously coherent and incoherent with its
//     domain: under Cohesion an incoherent line's region-table state must
//     say SWcc, a coherent line's must say HWcc.
func (m *Machine) CheckInvariants() error {
	for c, rc := range m.RegionCaches {
		if err := rc.Check(); err != nil {
			return fmt.Errorf("cluster %d: %w", c, err)
		}
	}
	if m.oracle != nil {
		// The oracle's domain model must agree with the region tables at
		// quiescence (runs for every mode, including directory-less SWcc).
		if err := m.oracle.CheckDomains(m.isSWccDomain); err != nil {
			return err
		}
	}
	if !m.hasDirectory() {
		return nil
	}
	holds := func(clusterID int, line addr.Line) *cache.Entry {
		return m.Clusters[clusterID].L2().Peek(line)
	}
	for b, h := range m.Homes {
		d := h.Directory()
		var err error
		d.ForEach(func(e *directory.Entry) {
			if err != nil {
				return
			}
			if e.Pinned {
				err = fmt.Errorf("bank %d line %#x: pinned entry at quiescence", b, uint64(e.Line))
				return
			}
			if e.State == directory.Modified {
				le := holds(e.Owner, e.Line)
				if le == nil {
					err = fmt.Errorf("bank %d line %#x: M entry but owner %d does not hold it", b, uint64(e.Line), e.Owner)
					return
				}
				if le.Incoherent || le.State != cache.StateModified {
					err = fmt.Errorf("bank %d line %#x: owner %d holds line in wrong state", b, uint64(e.Line), e.Owner)
				}
				return
			}
			if e.Broadcast {
				return // sharer set is conservative by design
			}
			e.Sharers.ForEach(func(c int) {
				if err != nil {
					return
				}
				if le := holds(c, e.Line); le != nil && le.Incoherent {
					err = fmt.Errorf("bank %d line %#x: sharer %d holds line incoherently", b, uint64(e.Line), c)
				}
			})
		})
		if err != nil {
			return err
		}
	}
	// Reverse direction: L2 contents covered by the directory.
	for cid, cl := range m.Clusters {
		var err error
		cl.L2().ForEach(func(le *cache.Entry) {
			if err != nil {
				return
			}
			line := le.Line
			bank := region.HomeBankOfLine(line, m.Cfg.L3Banks)
			d := m.Homes[bank].Directory()
			if le.Incoherent {
				if d.Lookup(line) != nil {
					err = fmt.Errorf("cluster %d line %#x: incoherent line has a directory entry", cid, uint64(line))
					return
				}
				if m.Cfg.Mode == config.Cohesion && !m.isSWccDomain(line) {
					err = fmt.Errorf("cluster %d line %#x: incoherent line in HWcc domain", cid, uint64(line))
				}
				return
			}
			e := d.Lookup(line)
			if e == nil {
				err = fmt.Errorf("cluster %d line %#x: coherent line with no directory entry", cid, uint64(line))
				return
			}
			if le.State == cache.StateModified {
				if e.State != directory.Modified || e.Owner != cid {
					err = fmt.Errorf("cluster %d line %#x: L2 Modified but directory disagrees", cid, uint64(line))
				}
				return
			}
			if !e.Broadcast && !e.Sharers.Has(cid) {
				err = fmt.Errorf("cluster %d line %#x: sharer missing from directory entry", cid, uint64(line))
			}
		})
		if err != nil {
			return err
		}
	}
	return nil
}

func (m *Machine) isSWccDomain(line addr.Line) bool {
	base := line.Base()
	if m.Coarse != nil && m.Coarse.Contains(base) {
		return true
	}
	return m.Fine != nil && m.Fine.IsSWcc(base)
}

// DirectoryEntries reports the current total allocated entries (for tests).
func (m *Machine) DirectoryEntries() int {
	n := 0
	for _, h := range m.Homes {
		if d := h.Directory(); d != nil {
			n += d.Count()
		}
	}
	return n
}
