package machine

import (
	"context"
	"errors"
	"runtime"
	"testing"

	"cohesion/internal/addr"
	"cohesion/internal/cluster"
	"cohesion/internal/runctl"
	"cohesion/internal/simerr"
)

// startSpinners loads a machine with cores that never finish, so only a
// lifecycle stop (cancellation, budget) can end the run.
func startSpinners(m *Machine, cores int) {
	for core := 0; core < cores; core++ {
		a := addr.HeapBase + addr.Addr(core*addr.LineBytes)
		m.StartProgram(core, func(c *cluster.Core) {
			for {
				ld(c, a)
				st(c, a, 1)
			}
		})
	}
}

// TestNoGoroutineLeakOnCanceledRun cancels runs at the event-loop boundary
// and asserts every program goroutine is joined — cancellation must flow
// through the same Shutdown path as a completed run, or a harness that
// cancels thousands of simulations leaks a goroutine per started core.
func TestNoGoroutineLeakOnCanceledRun(t *testing.T) {
	base := runtime.NumGoroutine()
	for iter := 0; iter < 3; iter++ {
		m := newMachine(t, hwccCfg(2))
		startSpinners(m, 8)
		ctx, cancel := context.WithCancel(context.Background())
		cancel() // canceled before the first event: stops at the first check
		err := m.SimulateCtx(ctx, 1_000_000, runctl.Limits{CheckEvery: 16})
		if !errors.Is(err, simerr.ErrCanceled) {
			t.Fatalf("iter %d: SimulateCtx = %v, want ErrCanceled", iter, err)
		}
	}
	goroutinesSettleTo(t, base)
}

// TestNoGoroutineLeakOnBudgetExhausted ends runs at several event budgets
// — including one so small the cores are still warming up — and asserts
// the abort path joins every goroutine each time.
func TestNoGoroutineLeakOnBudgetExhausted(t *testing.T) {
	base := runtime.NumGoroutine()
	for _, budget := range []uint64{1, 500, 5_000, 50_000} {
		m := newMachine(t, hwccCfg(2))
		startSpinners(m, 8)
		err := m.SimulateCtx(context.Background(), 10_000_000, runctl.Limits{MaxEvents: budget})
		if !errors.Is(err, simerr.ErrBudgetExhausted) {
			t.Fatalf("budget %d: SimulateCtx = %v, want ErrBudgetExhausted", budget, err)
		}
		if fired := m.Q.Fired(); fired != budget {
			t.Fatalf("budget %d: stopped after %d events, want exactly the budget", budget, fired)
		}
	}
	goroutinesSettleTo(t, base)
}

// TestCycleBudgetStopsRun exercises the deterministic sim-cycle budget:
// the run must end with ErrBudgetExhausted (not the runaway guard) and
// record the stop cycle in the stats.
func TestCycleBudgetStopsRun(t *testing.T) {
	base := runtime.NumGoroutine()
	m := newMachine(t, hwccCfg(1))
	startSpinners(m, 4)
	err := m.SimulateCtx(context.Background(), 10_000_000, runctl.Limits{MaxCycles: 3_000})
	if !errors.Is(err, simerr.ErrBudgetExhausted) {
		t.Fatalf("SimulateCtx = %v, want ErrBudgetExhausted", err)
	}
	if errors.Is(err, ErrCycleLimit) {
		t.Fatal("cycle budget must not report the ErrCycleLimit runaway guard")
	}
	if m.Run.Cycles == 0 || m.Run.Cycles > 4_000 {
		t.Fatalf("stats cycle %d not near the 3000-cycle budget", m.Run.Cycles)
	}
	goroutinesSettleTo(t, base)
}

// TestBudgetStopIsDeterministic runs the same spinners under the same
// event budget twice and asserts the stop cycle and event count agree —
// the machine-level half of the reproducible-partial-results contract.
func TestBudgetStopIsDeterministic(t *testing.T) {
	run := func() (uint64, uint64) {
		m := newMachine(t, hwccCfg(2))
		startSpinners(m, 8)
		err := m.SimulateCtx(context.Background(), 10_000_000, runctl.Limits{MaxEvents: 9_999})
		if !errors.Is(err, simerr.ErrBudgetExhausted) {
			t.Fatalf("SimulateCtx = %v, want ErrBudgetExhausted", err)
		}
		return m.Run.Cycles, m.Q.Fired()
	}
	c1, f1 := run()
	c2, f2 := run()
	if c1 != c2 || f1 != f2 {
		t.Fatalf("budget stop diverged: run1 (cycle %d, %d events), run2 (cycle %d, %d events)", c1, f1, c2, f2)
	}
}

// TestSimulateCtxCleanRunUnaffected checks the no-limits fast path: a
// SimulateCtx call with a background context and zero limits must behave
// exactly like Simulate, including a nil lifecycle controller.
func TestSimulateCtxCleanRunUnaffected(t *testing.T) {
	m := newMachine(t, hwccCfg(1))
	program(m, 0, func(c *cluster.Core) { st(c, addr.HeapBase, 7) })
	if err := m.SimulateCtx(context.Background(), 0, runctl.Limits{}); err != nil {
		t.Fatalf("SimulateCtx = %v, want clean run", err)
	}
}
