package machine

import (
	"sort"

	"cohesion/internal/cache"
	"cohesion/internal/directory"
	"cohesion/internal/snapshot"
)

// SetCheckpointFunc installs the callback SimulateCtx invokes whenever
// the run controller's deterministic checkpoint schedule (CheckpointEvery
// / CheckpointAt in runctl.Limits) comes due, and once more when a
// lifecycle stop (budget, cancellation) ends the run. It runs at the
// between-events boundary — the machine is quiescent mid-loop, no event
// is executing — so the callback may capture a consistent MachineState.
// A non-nil error from the callback aborts the run.
func (m *Machine) SetCheckpointFunc(fn func(events, cycle uint64) error) { m.ckpt = fn }

// Digests captures the per-layer digest vector of the machine's complete
// data state at the current between-events boundary. It never mutates
// the machine (in particular it does not drain dirty cache lines), so it
// is safe to call mid-run from a checkpoint callback.
func (m *Machine) Digests() snapshot.Digests {
	d := snapshot.Digests{
		Events:   m.Q.Fired(),
		Cycle:    uint64(m.Q.Now()),
		QueueLen: uint64(m.Q.Pending()),
		Mem:      m.Store.Fingerprint(),
		Stats:    m.Run.Digest(),
	}

	h := snapshot.NewHasher()
	for _, cl := range m.collectL2() {
		mixCacheLine(h, cl)
	}
	d.L2 = h.Sum()

	h = snapshot.NewHasher()
	for _, e := range m.collectDir() {
		mixDirEntry(h, e)
	}
	d.Dir = h.Sum()

	h = snapshot.NewHasher()
	if m.Coarse != nil {
		for _, r := range m.Coarse.Ranges() {
			h.U64(uint64(r.Base))
			h.U64(r.Size)
		}
	}
	d.Region = h.Sum()

	if m.oracle != nil {
		d.Oracle = m.oracle.Fingerprint()
	}

	h = snapshot.NewHasher()
	for _, line := range m.inflightReport() {
		h.String(line)
	}
	d.Inflight = h.Sum()
	return d
}

// CaptureState serializes the machine's complete data state at the
// current between-events boundary: the DRAM image, every valid L2 entry
// (dirty and clean), every allocated directory entry, the coarse region
// table (the fine-grain bitmap lives inside the DRAM image), the
// outstanding-transaction report, cumulative stats, and the digest
// vector over all of it. Like Digests it never mutates the machine.
func (m *Machine) CaptureState() *snapshot.MachineState {
	st := &snapshot.MachineState{
		Events:   m.Q.Fired(),
		Cycle:    uint64(m.Q.Now()),
		Digests:  m.Digests(),
		L2:       m.collectL2(),
		Dir:      m.collectDir(),
		Inflight: m.inflightReport(),
		Stats:    m.Run.Snapshot(),
	}
	for _, line := range m.Store.Lines() {
		st.Mem = append(st.Mem, snapshot.MemLine{Line: uint64(line), Data: m.Store.ReadLine(line)})
	}
	if m.Coarse != nil {
		for _, r := range m.Coarse.Ranges() {
			st.Coarse = append(st.Coarse, snapshot.RegionRange{Base: uint64(r.Base), Size: r.Size})
		}
	}
	return st
}

// collectL2 gathers every valid L2 entry across clusters, sorted by
// (cluster, line) so the serialization is independent of cache-internal
// iteration order.
func (m *Machine) collectL2() []snapshot.CacheLine {
	var out []snapshot.CacheLine
	for cid, cl := range m.Clusters {
		cl.L2().ForEach(func(e *cache.Entry) {
			out = append(out, snapshot.CacheLine{
				Cluster:    cid,
				Line:       uint64(e.Line),
				State:      e.State,
				Incoherent: e.Incoherent,
				Pinned:     e.Pinned,
				ValidMask:  e.ValidMask,
				DirtyMask:  e.DirtyMask,
				Data:       e.Data,
			})
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Cluster != out[j].Cluster {
			return out[i].Cluster < out[j].Cluster
		}
		return out[i].Line < out[j].Line
	})
	return out
}

// collectDir gathers every allocated directory entry across home banks,
// sorted by (bank, line); the infinite directory iterates a map, so the
// sort is what makes the serialization deterministic.
func (m *Machine) collectDir() []snapshot.DirEntry {
	var out []snapshot.DirEntry
	for b, h := range m.Homes {
		d := h.Directory()
		if d == nil {
			continue
		}
		bank := b
		d.ForEach(func(e *directory.Entry) {
			var sharers []int
			e.Sharers.ForEach(func(c int) { sharers = append(sharers, c) })
			out = append(out, snapshot.DirEntry{
				Bank:      bank,
				Line:      uint64(e.Line),
				State:     uint8(e.State),
				Owner:     e.Owner,
				Sharers:   sharers,
				Broadcast: e.Broadcast,
				Pinned:    e.Pinned,
			})
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Bank != out[j].Bank {
			return out[i].Bank < out[j].Bank
		}
		return out[i].Line < out[j].Line
	})
	return out
}

// inflightReport is the deterministic outstanding-transaction report
// (cluster order then bank order, each internally deterministic).
func (m *Machine) inflightReport() []string {
	now := m.Q.Now()
	var lines []string
	for _, cl := range m.Clusters {
		lines = append(lines, cl.StuckReport(now)...)
	}
	for _, h := range m.Homes {
		lines = append(lines, h.StuckReport(now)...)
	}
	return lines
}

func mixCacheLine(h *snapshot.Hasher, c snapshot.CacheLine) {
	h.Int(c.Cluster)
	h.U64(c.Line)
	h.U8(c.State)
	h.Bool(c.Incoherent)
	h.Bool(c.Pinned)
	h.U8(c.ValidMask)
	h.U8(c.DirtyMask)
	for _, w := range c.Data {
		h.U32(w)
	}
}

func mixDirEntry(h *snapshot.Hasher, e snapshot.DirEntry) {
	h.Int(e.Bank)
	h.U64(e.Line)
	h.U8(e.State)
	h.Int(e.Owner)
	h.Int(len(e.Sharers))
	for _, c := range e.Sharers {
		h.Int(c)
	}
	h.Bool(e.Broadcast)
	h.Bool(e.Pinned)
}
