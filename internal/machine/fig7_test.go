package machine

import (
	"testing"

	"cohesion/internal/addr"
	"cohesion/internal/cluster"
	"cohesion/internal/region"
)

// Directed tests for every coherence-domain transition case of the
// paper's Figure 7. Each drives one line into the exact pre-transition
// state, performs the transition through the fine-grain region table, and
// checks the post-transition system state the figure specifies.

func fig7Machine(t *testing.T) (*Machine, addr.Addr) {
	t.Helper()
	m := newMachine(t, cohesionCfg(2))
	return m, addr.Addr(addr.CohHeapBase)
}

func dirEntryFor(m *Machine, a addr.Addr) bool {
	bank := region.HomeBankOfLine(addr.LineOf(a), m.Cfg.L3Banks)
	return m.Homes[bank].Directory().Lookup(addr.LineOf(a)) != nil
}

// Case 1a: HW->SW transition of a line with no directory entry: nothing
// to do beyond the table write.
func TestFig7Case1a(t *testing.T) {
	m, a := fig7Machine(t)
	program(m, 0, func(c *cluster.Core) {
		transition(c, a, m.Cfg.L3Banks, true)
	})
	simulate(t, m)
	if m.Run.TransitionsToSW != 1 {
		t.Fatalf("transitions = %d", m.Run.TransitionsToSW)
	}
	if m.Run.ProbesSent != 0 {
		t.Fatalf("case 1a sent %d probes, want 0", m.Run.ProbesSent)
	}
}

// Case 2a: HW->SW of a Shared line: all sharers are invalidated; memory
// already held the current value.
func TestFig7Case2a(t *testing.T) {
	m, a := fig7Machine(t)
	a += 0x2000 // an HWcc-domain address (bit clear)
	m.Store.WriteWord(a, 55)
	var after uint32
	program(m, 0, func(c *cluster.Core) { // cluster 0: sharer
		_ = ld(c, a)
		uncStore(c, syncWord, 1)
		spinUntil(c, syncWord, 2)
		after = ld(c, a) // incoherent refetch after the transition
	})
	program(m, 8, func(c *cluster.Core) { // cluster 1: sharer, then initiator
		_ = ld(c, a)
		spinUntil(c, syncWord, 1)
		transition(c, a, m.Cfg.L3Banks, true)
		uncStore(c, syncWord, 2)
	})
	simulate(t, m)
	if dirEntryFor(m, a) {
		t.Fatal("directory entry survived case 2a")
	}
	if after != 55 {
		t.Fatalf("post-transition read = %d, want 55", after)
	}
	// Both sharers received invalidation probes.
	if m.Run.ProbesSent < 2 {
		t.Fatalf("probes = %d, want >= 2", m.Run.ProbesSent)
	}
}

// Case 3a: HW->SW of a Modified line: the owner writes back; L3/memory
// holds the newest value and no L2 holds the line.
func TestFig7Case3a(t *testing.T) {
	m, a := fig7Machine(t)
	a += 0x2000
	program(m, 0, func(c *cluster.Core) {
		st(c, a, 99) // Modified in cluster 0
		transition(c, a, m.Cfg.L3Banks, true)
	})
	simulate(t, m)
	if dirEntryFor(m, a) {
		t.Fatal("directory entry survived case 3a")
	}
	if got := m.Store.ReadWord(a); got != 99 {
		t.Fatalf("memory = %d after modified writeback, want 99", got)
	}
	if e := m.Clusters[0].L2().Peek(addr.LineOf(a)); e != nil {
		t.Fatal("line still present in owner's L2 after case 3a")
	}
}

// Case 1b: SW->HW of a line cached nowhere: memory already current, no
// directory entry is created.
func TestFig7Case1b(t *testing.T) {
	m, a := fig7Machine(t)
	m.PresetSWcc(addr.Range{Base: a, Size: 32})
	m.Store.WriteWord(a, 7)
	program(m, 0, func(c *cluster.Core) {
		transition(c, a, m.Cfg.L3Banks, false)
	})
	simulate(t, m)
	if m.Run.TransitionsToHW != 1 {
		t.Fatalf("transitions = %d", m.Run.TransitionsToHW)
	}
	if dirEntryFor(m, a) {
		t.Fatal("case 1b allocated a directory entry for an uncached line")
	}
	if m.Store.ReadWord(a) != 7 {
		t.Fatal("memory changed")
	}
}

// Case 2b: SW->HW of a line cached clean: the caches keep their copies
// and become hardware sharers in place (no eviction, no data movement).
func TestFig7Case2b(t *testing.T) {
	m, a := fig7Machine(t)
	m.PresetSWcc(addr.Range{Base: a, Size: 32})
	m.Store.WriteWord(a, 11)
	program(m, 0, func(c *cluster.Core) {
		_ = ld(c, a) // clean incoherent copy
		uncStore(c, syncWord, 1)
		spinUntil(c, syncWord, 2)
	})
	program(m, 8, func(c *cluster.Core) {
		_ = ld(c, a) // clean incoherent copy
		spinUntil(c, syncWord, 1)
		transition(c, a, m.Cfg.L3Banks, false)
		uncStore(c, syncWord, 2)
	})
	simulate(t, m)
	bank := region.HomeBankOfLine(addr.LineOf(a), m.Cfg.L3Banks)
	e := m.Homes[bank].Directory().Lookup(addr.LineOf(a))
	if e == nil {
		t.Fatal("case 2b: no directory entry for clean sharers")
	}
	if !e.Sharers.Has(0) || !e.Sharers.Has(1) {
		t.Fatalf("case 2b: sharers = %v, want clusters 0 and 1", e.Sharers)
	}
	for cl := 0; cl < 2; cl++ {
		le := m.Clusters[cl].L2().Peek(addr.LineOf(a))
		if le == nil {
			t.Fatalf("case 2b: cluster %d lost its copy", cl)
		}
		if le.Incoherent {
			t.Fatalf("case 2b: cluster %d still incoherent", cl)
		}
	}
}

// Case 4b (the paper's single-dirty-writer optimization within the 2b/3b
// family): one cache holds the line dirty and nobody else has it; the
// directory upgrades that cache to owner and no writeback occurs.
func TestFig7Case4bUpgradeNoWriteback(t *testing.T) {
	m, a := fig7Machine(t)
	m.PresetSWcc(addr.Range{Base: a, Size: 32})
	program(m, 0, func(c *cluster.Core) {
		st(c, a, 123) // dirty incoherent, never flushed
		transition(c, a, m.Cfg.L3Banks, false)
	})
	simulate(t, m)
	bank := region.HomeBankOfLine(addr.LineOf(a), m.Cfg.L3Banks)
	e := m.Homes[bank].Directory().Lookup(addr.LineOf(a))
	if e == nil {
		t.Fatal("case 4b: no directory entry")
	}
	if e.Owner != 0 {
		t.Fatalf("case 4b: owner = %d, want 0", e.Owner)
	}
	le := m.Clusters[0].L2().Peek(addr.LineOf(a))
	if le == nil || le.Incoherent || le.DirtyMask == 0 {
		t.Fatal("case 4b: owner's line not upgraded in place with dirty data")
	}
	// No writeback occurred: memory still has the old (zero) value; the
	// dirty data lives only in the owner's L2 under hardware coherence.
	if m.Store.ReadWord(a) != 0 {
		t.Fatal("case 4b: writeback occurred despite single-writer upgrade")
	}
	m.DrainToMemory()
	if m.Store.ReadWord(a) != 123 {
		t.Fatal("case 4b: dirty data lost")
	}
}

// Case 3b: SW->HW with a dirty writer and a clean reader: readers are
// invalidated, the writer's data is written back, and the line ends up
// uncached with memory current.
func TestFig7Case3bMixed(t *testing.T) {
	m, a := fig7Machine(t)
	m.PresetSWcc(addr.Range{Base: a, Size: 32})
	m.Store.WriteWord(a+4, 5) // word 1 pre-set, read by the clean sharer
	program(m, 0, func(c *cluster.Core) {
		st(c, a, 77) // dirty word 0
		uncStore(c, syncWord, 1)
		spinUntil(c, syncWord, 2)
		transition(c, a, m.Cfg.L3Banks, false)
	})
	program(m, 8, func(c *cluster.Core) {
		spinUntil(c, syncWord, 1)
		_ = ld(c, a+4) // clean sharer
		uncStore(c, syncWord, 2)
	})
	simulate(t, m)
	if dirEntryFor(m, a) {
		t.Fatal("case 3b: entry should not remain for an uncached line")
	}
	for cl := 0; cl < 2; cl++ {
		if m.Clusters[cl].L2().Peek(addr.LineOf(a)) != nil {
			t.Fatalf("case 3b: cluster %d still holds the line", cl)
		}
	}
	if m.Store.ReadWord(a) != 77 || m.Store.ReadWord(a+4) != 5 {
		t.Fatalf("case 3b: memory = %d/%d, want 77/5", m.Store.ReadWord(a), m.Store.ReadWord(a+4))
	}
}

// Case 5b: two caches dirty the same word under SWcc (a software race).
// The transition must converge, flag the race, and keep one of the values.
// (TestCohesionOverlapRaceDetected covers the value outcome; here we check
// the post-state is fully consistent.)
func TestFig7Case5bPostState(t *testing.T) {
	m, a := fig7Machine(t)
	m.PresetSWcc(addr.Range{Base: a, Size: 32})
	program(m, 0, func(c *cluster.Core) {
		st(c, a, 1)
		uncStore(c, syncWord, 1)
		spinUntil(c, syncWord, 2)
		transition(c, a, m.Cfg.L3Banks, false)
	})
	program(m, 8, func(c *cluster.Core) {
		st(c, a, 2)
		spinUntil(c, syncWord, 1)
		uncStore(c, syncWord, 2)
	})
	simulate(t, m)
	if m.Run.OverlapRaces != 1 {
		t.Fatalf("races detected = %d, want 1", m.Run.OverlapRaces)
	}
	if dirEntryFor(m, a) {
		t.Fatal("case 5b: entry remains")
	}
	for cl := 0; cl < 2; cl++ {
		if m.Clusters[cl].L2().Peek(addr.LineOf(a)) != nil {
			t.Fatalf("case 5b: cluster %d still holds the line", cl)
		}
	}
}

// The "safe zeroing" idiom from §3.6: after a forced SW->HW transition the
// runtime can zero racy words, discarding both divergent values.
func TestFig7SafeZeroAfterRace(t *testing.T) {
	m, a := fig7Machine(t)
	m.PresetSWcc(addr.Range{Base: a, Size: 32})
	program(m, 0, func(c *cluster.Core) {
		st(c, a, 1)
		uncStore(c, syncWord, 1)
		spinUntil(c, syncWord, 2)
		transition(c, a, m.Cfg.L3Banks, false)
		st(c, a, 0) // zero under HWcc: deterministic final state
	})
	program(m, 8, func(c *cluster.Core) {
		st(c, a, 2)
		spinUntil(c, syncWord, 1)
		uncStore(c, syncWord, 2)
	})
	simulate(t, m)
	m.DrainToMemory()
	if got := m.Store.ReadWord(a); got != 0 {
		t.Fatalf("zeroed word = %d", got)
	}
}

// TrapOnRace: with the paper's debugging aid enabled, the transition's
// acknowledgement carries an exception to the requesting core.
func TestFig7Case5bTrapOnRace(t *testing.T) {
	cfg := cohesionCfg(2)
	cfg.TrapOnRace = true
	m := newMachine(t, cfg)
	a := addr.Addr(addr.CohHeapBase)
	m.PresetSWcc(addr.Range{Base: a, Size: 32})
	var trapped, cleanTrap bool
	program(m, 0, func(c *cluster.Core) {
		st(c, a, 1)
		uncStore(c, syncWord, 1)
		spinUntil(c, syncWord, 2)
		transition(c, a, m.Cfg.L3Banks, false)
		trapped = c.TakeRaceTrap()
		// A second, race-free round trip must not trap.
		transition(c, a, m.Cfg.L3Banks, true)
		transition(c, a, m.Cfg.L3Banks, false)
		cleanTrap = c.TakeRaceTrap()
	})
	program(m, 8, func(c *cluster.Core) {
		st(c, a, 2)
		spinUntil(c, syncWord, 1)
		uncStore(c, syncWord, 2)
	})
	simulate(t, m)
	if !trapped {
		t.Fatal("race exception not delivered to the transitioning core")
	}
	if cleanTrap {
		t.Fatal("race-free transition raised an exception")
	}
}

// Without TrapOnRace (the default), the same race converges silently and
// is only visible in the statistics.
func TestFig7Case5bNoTrapByDefault(t *testing.T) {
	m, a := fig7Machine(t)
	m.PresetSWcc(addr.Range{Base: a, Size: 32})
	var trapped bool
	program(m, 0, func(c *cluster.Core) {
		st(c, a, 1)
		uncStore(c, syncWord, 1)
		spinUntil(c, syncWord, 2)
		transition(c, a, m.Cfg.L3Banks, false)
		trapped = c.TakeRaceTrap()
	})
	program(m, 8, func(c *cluster.Core) {
		st(c, a, 2)
		spinUntil(c, syncWord, 1)
		uncStore(c, syncWord, 2)
	})
	simulate(t, m)
	if trapped {
		t.Fatal("exception raised without TrapOnRace")
	}
	if m.Run.OverlapRaces != 1 {
		t.Fatal("race not counted")
	}
}
