package machine

import (
	"errors"
	"strings"
	"testing"

	"cohesion/internal/addr"
	"cohesion/internal/cluster"
	"cohesion/internal/config"
	"cohesion/internal/simerr"
)

// A single dropped request with recovery disabled must wedge the machine;
// the watchdog has to detect the stall and fail with a structured
// deadlock diagnostic naming the stuck cluster and the protocol trace.
func TestWatchdogReportsDeadlock(t *testing.T) {
	cfg := hwccCfg(2)
	cfg.Faults = config.FaultPlan{Enabled: true, Recovery: false, Seed: 1, DropPermille: 1000, MaxDrops: 1}
	cfg.WatchdogCycles = 20_000
	m := newMachine(t, cfg)
	m.EnableTrace(64)
	a := addr.Addr(addr.HeapBase)
	program(m, 0, func(c *cluster.Core) {
		_ = ld(c, a)
	})
	err := m.Simulate(50_000_000)
	if err == nil {
		t.Fatal("wedged machine simulated to completion")
	}
	if !errors.Is(err, simerr.ErrDeadlock) {
		t.Fatalf("err = %v, want ErrDeadlock", err)
	}
	msg := err.Error()
	for _, want := range []string{"no forward progress", "cl0", "line=", "protocol trace"} {
		if !strings.Contains(msg, want) {
			t.Fatalf("diagnostic missing %q:\n%s", want, msg)
		}
	}
}

// A wedged transaction must be detected even when other cores keep
// completing operations (spin-waiting pollers look like forward
// progress but heal nothing) — the age-based watchdog trigger.
func TestWatchdogCatchesWedgeDespiteSpinners(t *testing.T) {
	cfg := hwccCfg(2)
	cfg.Faults = config.FaultPlan{Enabled: true, Recovery: false, Seed: 1, DropPermille: 1000, MaxDrops: 1}
	cfg.WatchdogCycles = 20_000
	m := newMachine(t, cfg)
	a := addr.Addr(addr.HeapBase)
	program(m, 0, func(c *cluster.Core) { // wedges on its first fetch/load
		_ = ld(c, a)
	})
	program(m, 8, func(c *cluster.Core) { // spins forever, completing ops
		spinUntil(c, syncWord, 1)
	})
	err := m.Simulate(50_000_000)
	if !errors.Is(err, simerr.ErrDeadlock) {
		t.Fatalf("err = %v, want ErrDeadlock", err)
	}
	if !strings.Contains(err.Error(), "transaction for line") {
		t.Fatalf("expected the age-based trigger to name the stuck transaction:\n%s", err)
	}
	if !strings.Contains(err.Error(), "cl0") {
		t.Fatalf("diagnostic does not name the wedged cluster:\n%s", err)
	}
}

// Drops without recovery and without the watchdog would hang silently;
// the configuration must be rejected up front.
func TestConfigRejectsDropsWithoutWatchdog(t *testing.T) {
	cfg := hwccCfg(1)
	cfg.Faults = config.FaultPlan{Enabled: true, Recovery: false, Seed: 1, DropPermille: 10}
	cfg.WatchdogCycles = -1
	if _, err := New(cfg); !errors.Is(err, simerr.ErrConfig) {
		t.Fatalf("err = %v, want ErrConfig", err)
	}
}

// The drain-time deadlock report must degrade gracefully when no
// transaction state was recorded (cores wedged before issuing anything).
func TestDeadlockErrorFallsBackWhenNothingRecorded(t *testing.T) {
	m := newMachine(t, hwccCfg(1))
	err := m.deadlockError("event queue drained with work outstanding")
	if !errors.Is(err, simerr.ErrDeadlock) {
		t.Fatalf("err = %v, want ErrDeadlock", err)
	}
	if !strings.Contains(err.Error(), "no outstanding transactions recorded") {
		t.Fatalf("missing fallback line:\n%s", err)
	}
}

// With recovery armed, timeout retransmission must absorb dropped
// requests: the run completes, values are architecturally correct, and
// the stats show both the injected drops and the retries that healed them.
func TestRecoveryFromDroppedRequests(t *testing.T) {
	cfg := hwccCfg(2)
	cfg.Faults = config.FaultPlan{Enabled: true, Recovery: true, Seed: 3, DropPermille: 300}
	cfg.L2RetryTimeout = 2_000
	m := newMachine(t, cfg)
	a := addr.Addr(addr.HeapBase)
	const n = 16
	var got [n]uint32
	program(m, 0, func(c *cluster.Core) { // producer, cluster 0
		for i := 0; i < n; i++ {
			st(c, a+addr.Addr(32*i), uint32(100+i))
		}
		uncStore(c, syncWord, 1)
	})
	program(m, 8, func(c *cluster.Core) { // consumer, cluster 1
		spinUntil(c, syncWord, 1)
		for i := 0; i < n; i++ {
			got[i] = ld(c, a+addr.Addr(32*i))
		}
	})
	simulate(t, m)
	for i, v := range got {
		if v != uint32(100+i) {
			t.Fatalf("got[%d] = %d, want %d", i, v, 100+i)
		}
	}
	if m.Run.FaultDrops == 0 {
		t.Fatal("plan injected no drops")
	}
	if m.Run.L2Retries == 0 {
		t.Fatal("drops were injected but no timeout retransmission fired")
	}
}

// When every attempt is dropped the retry budget must run out and the
// run must fail with ErrRetryExhausted rather than spin forever.
func TestRetryExhaustionFails(t *testing.T) {
	cfg := hwccCfg(1)
	cfg.Faults = config.FaultPlan{Enabled: true, Recovery: true, Seed: 1, DropPermille: 1000}
	cfg.L2RetryTimeout = 100
	cfg.L2RetryLimit = 2
	m := newMachine(t, cfg)
	program(m, 0, func(c *cluster.Core) {
		_ = ld(c, addr.Addr(addr.HeapBase))
	})
	err := m.Simulate(50_000_000)
	if !errors.Is(err, simerr.ErrRetryExhausted) {
		t.Fatalf("err = %v, want ErrRetryExhausted", err)
	}
}

// Duplicate deliveries must be absorbed by the home's transaction-ID
// dedup: directory state mutates at most once per transaction, the run
// verifies, and the duplicates show up in the dedup counter.
func TestDuplicateDeliveriesDeduplicated(t *testing.T) {
	cfg := hwccCfg(2)
	cfg.Faults = config.FaultPlan{Enabled: true, Recovery: true, Seed: 2, DupPermille: 1000}
	m := newMachine(t, cfg)
	a := addr.Addr(addr.HeapBase)
	var got uint32
	program(m, 0, func(c *cluster.Core) {
		st(c, a, 4321)
		uncStore(c, syncWord, 1)
	})
	program(m, 8, func(c *cluster.Core) {
		spinUntil(c, syncWord, 1)
		got = ld(c, a)
	})
	simulate(t, m)
	if got != 4321 {
		t.Fatalf("consumer read %d, want 4321", got)
	}
	if m.Run.FaultDups == 0 {
		t.Fatal("plan injected no duplicates")
	}
	if m.Run.DupsDropped == 0 {
		t.Fatal("duplicates were injected but the home deduplicated none")
	}
}

// Injected directory-allocation NACKs must be survivable: requesters
// back off and retransmit until the allocation succeeds.
func TestNackRecovery(t *testing.T) {
	cfg := hwccCfg(1)
	cfg.Faults = config.FaultPlan{Enabled: true, Recovery: true, Seed: 5, NackPermille: 500}
	m := newMachine(t, cfg)
	a := addr.Addr(addr.HeapBase)
	const n = 16
	var got [n]uint32
	program(m, 0, func(c *cluster.Core) {
		for i := 0; i < n; i++ {
			st(c, a+addr.Addr(32*i), uint32(7*i+1))
		}
		for i := 0; i < n; i++ {
			got[i] = ld(c, a+addr.Addr(32*i))
		}
	})
	simulate(t, m)
	for i, v := range got {
		if v != uint32(7*i+1) {
			t.Fatalf("got[%d] = %d, want %d", i, v, 7*i+1)
		}
	}
	if m.Run.NacksSent == 0 {
		t.Fatal("plan injected no NACKs")
	}
	if m.Run.NackRetries == 0 {
		t.Fatal("NACKs were sent but no requester retried")
	}
}
