package interconnect

import (
	"testing"

	"cohesion/internal/event"
)

func TestUnloadedLatency(t *testing.T) {
	var q event.Queue
	n := New(&q, 4, 2, 6, 4)
	if n.OneWayLatency() != 10 {
		t.Fatalf("OneWayLatency = %d", n.OneWayLatency())
	}
	var arrived event.Cycle
	n.ToBank(0, 0, 8, func() { arrived = q.Now() })
	q.Run(0)
	// Ctrl message: leaf departs 0, +6 tree latency, trunk departs 6, bank
	// port departs 6, +4 crossbar latency = 10.
	if arrived != 10 {
		t.Fatalf("arrival at %d, want 10", arrived)
	}
}

func TestRoundTrip(t *testing.T) {
	var q event.Queue
	n := New(&q, 4, 2, 6, 4)
	var done event.Cycle
	n.ToBank(1, 1, 8, func() {
		n.ToCluster(1, 1, 40, func() { done = q.Now() })
	})
	q.Run(0)
	if done != 20 {
		t.Fatalf("round trip at %d, want 20", done)
	}
	if n.MessagesUp != 1 || n.MessagesDown != 1 || n.BytesUp != 8 || n.BytesDown != 40 {
		t.Fatalf("counters up=%d/%d down=%d/%d", n.MessagesUp, n.BytesUp, n.MessagesDown, n.BytesDown)
	}
}

func TestLinkContentionSerializes(t *testing.T) {
	var q event.Queue
	n := New(&q, 1, 1, 0, 0) // zero hop latency isolates occupancy
	var arrivals []event.Cycle
	for i := 0; i < 3; i++ {
		n.ToBank(0, 0, 40, func() { arrivals = append(arrivals, q.Now()) }) // 5-cycle occupancy
	}
	q.Run(0)
	if len(arrivals) != 3 {
		t.Fatalf("arrivals = %v", arrivals)
	}
	// Same-source messages serialize on the cluster-up link: departures at
	// 0, 5, 10; the bank-up link adds no extra delay beyond its own FIFO.
	want := []event.Cycle{0, 5, 10}
	for i, w := range want {
		if arrivals[i] != w {
			t.Fatalf("arrival %d at %d, want %d (all %v)", i, arrivals[i], w, arrivals)
		}
	}
}

func TestSameTreeClustersContendOnTrunk(t *testing.T) {
	// Two clusters under one tree root share the trunk link: their
	// same-cycle messages serialize by one occupancy slot.
	var q event.Queue
	n := New(&q, 2, 2, 3, 3)
	var a, b event.Cycle
	n.ToBank(0, 0, 8, func() { a = q.Now() })
	n.ToBank(1, 1, 8, func() { b = q.Now() })
	q.Run(0)
	// First: leaf departs 0, trunk departs 3, bank port departs 3, +3 = 6.
	// Second: trunk busy until 4 -> departs 4, arrives 7.
	if a != 6 || b != 7 {
		t.Fatalf("arrivals a=%d b=%d, want 6 and 7 (trunk contention)", a, b)
	}
}

func TestDifferentTreesFullyParallel(t *testing.T) {
	// Clusters 0 and 16 are under different tree roots: no shared links.
	var q event.Queue
	n := New(&q, 32, 2, 3, 3)
	var a, b event.Cycle
	n.ToBank(0, 0, 8, func() { a = q.Now() })
	n.ToBank(16, 1, 8, func() { b = q.Now() })
	q.Run(0)
	if a != 6 || b != 6 {
		t.Fatalf("arrivals a=%d b=%d, want both 6", a, b)
	}
}

func TestPointToPointOrdering(t *testing.T) {
	// Messages from one source to one destination must arrive in send
	// order even with mixed sizes.
	var q event.Queue
	n := New(&q, 1, 1, 6, 4)
	var order []int
	n.ToBank(0, 0, 40, func() { order = append(order, 0) })
	n.ToBank(0, 0, 8, func() { order = append(order, 1) })
	n.ToBank(0, 0, 40, func() { order = append(order, 2) })
	q.Run(0)
	for i, v := range order {
		if v != i {
			t.Fatalf("delivery order %v", order)
		}
	}
}

func TestZeroByteMessageStillOccupies(t *testing.T) {
	var q event.Queue
	n := New(&q, 1, 1, 0, 0)
	var arr []event.Cycle
	n.ToBank(0, 0, 0, func() { arr = append(arr, q.Now()) })
	n.ToBank(0, 0, 0, func() { arr = append(arr, q.Now()) })
	q.Run(0)
	if arr[0] != 0 || arr[1] != 1 {
		t.Fatalf("arrivals %v, want [0 1]", arr)
	}
}

func TestJitterPreservesPointToPointOrdering(t *testing.T) {
	var q event.Queue
	n := New(&q, 1, 1, 6, 4)
	n.SetJitter(9, 123)
	var order []int
	for i := 0; i < 50; i++ {
		i := i
		n.ToBank(0, 0, 8+(i%2)*32, func() { order = append(order, i) })
	}
	q.Run(0)
	for i, v := range order {
		if v != i {
			t.Fatalf("jitter reordered same-path messages: %v", order[:i+1])
		}
	}
}

func TestJitterDeterministicPerSeed(t *testing.T) {
	run := func(seed int64) event.Cycle {
		var q event.Queue
		n := New(&q, 2, 2, 6, 4)
		n.SetJitter(5, seed)
		var last event.Cycle
		for i := 0; i < 20; i++ {
			n.ToBank(i%2, i%2, 40, func() { last = q.Now() })
		}
		q.Run(0)
		return last
	}
	if run(7) != run(7) {
		t.Fatal("same seed diverged")
	}
	if run(7) == run(8) {
		t.Fatal("different seeds identical (jitter inert)")
	}
	// SetJitter(0) disables.
	var q event.Queue
	n := New(&q, 1, 1, 0, 0)
	n.SetJitter(0, 1)
	var at event.Cycle
	n.ToBank(0, 0, 8, func() { at = q.Now() })
	q.Run(0)
	if at != 0 {
		t.Fatalf("disabled jitter still delayed: %d", at)
	}
}
