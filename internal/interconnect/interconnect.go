// Package interconnect models the two-level network between the clusters
// and the L3 cache banks (paper §3.1): a tree stage that combines the
// traffic of sixteen clusters, whose roots feed a crossbar connected to
// the L3 banks.
//
// Each directed link is a FIFO resource: a message occupies the link for
// size/bandwidth cycles and arrives after the link's hop latency. A
// message from a cluster to a bank crosses three links — the cluster's
// private tree leaf link, its tree's shared trunk (where the sixteen
// clusters of one tree contend), and the target bank's crossbar port —
// and the mirror-image path coming back. Because reservations are made in
// send order and every (source, destination) pair uses a fixed path, the
// network preserves point-to-point ordering, which the coherence protocol
// relies on (the directory's response to a requester cannot be overtaken
// by a later probe to the same requester).
package interconnect

import (
	"math/rand"

	"cohesion/internal/event"
)

// BytesPerCycle is the per-link bandwidth: a control message occupies a
// link for one cycle, a line-bearing message for five.
const BytesPerCycle = 8

// ClustersPerTree is the fan-in of one tree stage (paper: sixteen).
const ClustersPerTree = 16

type link struct {
	nextFree event.Cycle
}

// reserve books the link starting no earlier than start, for occ cycles,
// and returns the departure time.
func (l *link) reserve(start event.Cycle, occ event.Cycle) event.Cycle {
	if l.nextFree > start {
		start = l.nextFree
	}
	l.nextFree = start + occ
	return start
}

// Network connects clusters to L3 banks.
type Network struct {
	q           *event.Queue
	treeLatency event.Cycle
	xbarLatency event.Cycle

	// Directed links, indexed by endpoint. The trunk links are shared by
	// the ClustersPerTree clusters under one tree root.
	clusterUp   []link // cluster -> its tree leaf
	clusterDown []link // tree leaf -> cluster
	trunkUp     []link // tree root -> crossbar (shared per tree)
	trunkDown   []link // crossbar -> tree root (shared per tree)
	bankUp      []link // crossbar -> bank
	bankDown    []link // bank -> crossbar

	// Precomputed routing: trunkOf[cluster] is the tree trunk index (folds
	// the per-message divide), occTab[bytes] the unloaded link occupancy
	// for every message size the protocol emits. A hop is then two array
	// reads and an add; the divide fallback only runs for oversized
	// test-constructed messages.
	trunkOf []int32
	occTab  []event.Cycle

	// Counters for network-load reporting.
	MessagesUp, MessagesDown uint64
	BytesUp, BytesDown       uint64

	// jitter, when non-nil, draws a random extra occupancy (0..jitterMax)
	// for every link traversal. Because jitter is applied as occupancy,
	// per-link FIFO ordering — which the protocol depends on — is
	// preserved; only interleavings across links change. Deterministic
	// for a given seed.
	jitter    *rand.Rand
	jitterMax int

	// delayFn, when non-nil, supplies an extra occupancy for every link
	// traversal (the fault layer's delay spikes). Same FIFO-preserving
	// occupancy mechanism as jitter.
	delayFn func() event.Cycle
}

// New builds a network for the given topology. treeLatency is the one-way
// cluster<->root delay; xbarLatency the one-way root<->bank delay.
func New(q *event.Queue, clusters, banks, treeLatency, xbarLatency int) *Network {
	trees := (clusters + ClustersPerTree - 1) / ClustersPerTree
	n := &Network{
		q:           q,
		treeLatency: event.Cycle(treeLatency),
		xbarLatency: event.Cycle(xbarLatency),
		clusterUp:   make([]link, clusters),
		clusterDown: make([]link, clusters),
		trunkUp:     make([]link, trees),
		trunkDown:   make([]link, trees),
		bankUp:      make([]link, banks),
		bankDown:    make([]link, banks),
		trunkOf:     make([]int32, clusters),
		occTab:      make([]event.Cycle, 2*BytesPerCycle*8+1),
	}
	for c := range n.trunkOf {
		n.trunkOf[c] = int32(c / ClustersPerTree)
	}
	for b := range n.occTab {
		c := event.Cycle((b + BytesPerCycle - 1) / BytesPerCycle)
		if c == 0 {
			c = 1
		}
		n.occTab[b] = c
	}
	return n
}

// SetJitter enables randomized per-traversal link occupancy of up to max
// extra cycles, seeded deterministically. Used by robustness tests to
// perturb event interleavings without breaking per-link ordering.
func (n *Network) SetJitter(max int, seed int64) {
	if max <= 0 {
		n.jitter, n.jitterMax = nil, 0
		return
	}
	n.jitter = rand.New(rand.NewSource(seed))
	n.jitterMax = max
}

// SetDelayFunc installs a per-traversal extra-occupancy source (the fault
// layer's delay spikes). nil disables it.
func (n *Network) SetDelayFunc(fn func() event.Cycle) { n.delayFn = fn }

func (n *Network) occupancy(bytes int) event.Cycle {
	var c event.Cycle
	if bytes < len(n.occTab) {
		c = n.occTab[bytes]
	} else {
		c = event.Cycle((bytes + BytesPerCycle - 1) / BytesPerCycle)
	}
	if n.jitter != nil {
		c += event.Cycle(n.jitter.Intn(n.jitterMax + 1))
	}
	if n.delayFn != nil {
		c += n.delayFn()
	}
	return c
}

// ToBank sends a message of the given size from a cluster to an L3 bank
// and runs deliver on arrival. The path is leaf link, shared trunk,
// crossbar port.
func (n *Network) ToBank(cluster, bank, bytes int, deliver func()) {
	occ := n.occupancy(bytes)
	depart := n.clusterUp[cluster].reserve(n.q.Now(), occ)
	atRoot := depart + n.treeLatency
	depart2 := n.trunkUp[n.trunkOf[cluster]].reserve(atRoot, occ)
	depart3 := n.bankUp[bank].reserve(depart2, occ)
	n.MessagesUp++
	n.BytesUp += uint64(bytes)
	n.q.At(depart3+n.xbarLatency, deliver)
}

// ToCluster sends a message from an L3 bank back to a cluster.
func (n *Network) ToCluster(bank, cluster, bytes int, deliver func()) {
	occ := n.occupancy(bytes)
	depart := n.bankDown[bank].reserve(n.q.Now(), occ)
	atXbar := depart + n.xbarLatency
	depart2 := n.trunkDown[n.trunkOf[cluster]].reserve(atXbar, occ)
	depart3 := n.clusterDown[cluster].reserve(depart2, occ)
	n.MessagesDown++
	n.BytesDown += uint64(bytes)
	n.q.At(depart3+n.treeLatency, deliver)
}

// OneWayLatency reports the unloaded cluster->bank delay, for tests and
// timing documentation.
func (n *Network) OneWayLatency() event.Cycle {
	return n.treeLatency + n.xbarLatency
}
