package fault

import (
	"testing"

	"cohesion/internal/config"
	"cohesion/internal/stats"
)

func TestNewPlanDisabled(t *testing.T) {
	if p := NewPlan(config.FaultPlan{}, &stats.Run{}); p != nil {
		t.Fatal("disabled plan should be nil")
	}
}

// MaxDrops/MaxDups must cap the injected faults even at permille 1000.
func TestBudgetsBound(t *testing.T) {
	run := &stats.Run{}
	p := NewPlan(config.FaultPlan{
		Enabled: true, Seed: 1,
		DropPermille: 500, DupPermille: 500,
		MaxDrops: 3, MaxDups: 2,
	}, run)
	for i := 0; i < 10_000; i++ {
		p.RequestVerdict()
	}
	if run.FaultDrops != 3 || run.FaultDups != 2 {
		t.Fatalf("budgets not enforced: drops=%d dups=%d", run.FaultDrops, run.FaultDups)
	}
}

// The same seed must reproduce the same verdict and delay sequence.
func TestPlanDeterministic(t *testing.T) {
	cfg := config.DefaultFaultPlan(9)
	a := NewPlan(cfg, &stats.Run{})
	b := NewPlan(cfg, &stats.Run{})
	for i := 0; i < 10_000; i++ {
		if va, vb := a.RequestVerdict(), b.RequestVerdict(); va != vb {
			t.Fatalf("verdict %d diverged: %v vs %v", i, va, vb)
		}
		if da, db := a.DelaySpike(), b.DelaySpike(); da != db {
			t.Fatalf("delay %d diverged: %d vs %d", i, da, db)
		}
		if na, nb := a.NackAlloc(), b.NackAlloc(); na != nb {
			t.Fatalf("nack %d diverged", i)
		}
	}
}
