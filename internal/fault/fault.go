// Package fault implements the deterministic fault-injection layer: a
// per-seed plan of message drops, duplicate deliveries, link delay spikes,
// and directory-allocation NACKs, injected at the interconnect and
// directory layers of the machine.
//
// Determinism: the plan draws every decision from one PRNG seeded by the
// configuration, and the simulation consumes decisions in a fixed order
// (the event engine is single-threaded and deterministic), so a given
// (workload, machine, fault seed) triple reproduces the exact same fault
// schedule bit-for-bit.
//
// Safety: the fault model is chosen so that recovery restores the
// fault-free architectural outcome.
//
//   - Drops and duplicates apply only to retryable requests (reads,
//     writes, instruction fetches). A dropped request was never seen by
//     the home, so its retransmission is indistinguishable from the
//     original; a duplicated or spuriously retransmitted request is
//     dropped at the home by transaction-ID dedup, so directory state is
//     mutated at most once per transaction. Data-bearing writebacks and
//     non-idempotent atomics are never dropped or duplicated.
//   - Delay spikes are applied as extra link occupancy, exactly like
//     configured network jitter, so per-link point-to-point FIFO ordering
//     — which the coherence protocol relies on — is preserved; only
//     cross-link interleavings change.
//   - NACKs refuse a directory allocation before any state changes; the
//     requester backs off and retransmits.
package fault

import (
	"math/rand"

	"cohesion/internal/config"
	"cohesion/internal/event"
	"cohesion/internal/stats"
)

// Verdict is the plan's decision for one retryable request delivery.
type Verdict uint8

const (
	// Deliver: pass the message through unchanged.
	Deliver Verdict = iota
	// Drop: the message occupies its links but never arrives.
	Drop
	// Duplicate: the message is delivered twice.
	Duplicate
)

// Default budgets for plans that leave MaxDrops/MaxDups zero: generous
// enough to never matter on test-scale runs, bounded so an adversarial
// permille cannot starve a retry budget forever.
const defaultBudget = 1 << 20

// Plan is one run's fault schedule. It is not safe for concurrent use;
// the simulation engine is single-threaded.
type Plan struct {
	cfg config.FaultPlan
	rng *rand.Rand
	run *stats.Run

	drops, dups int
}

// NewPlan builds the plan for a run, recording injected-fault counts into
// run. Returns nil when the configuration has faults disabled.
func NewPlan(cfg config.FaultPlan, run *stats.Run) *Plan {
	if !cfg.Enabled {
		return nil
	}
	if cfg.MaxDrops == 0 {
		cfg.MaxDrops = defaultBudget
	}
	if cfg.MaxDups == 0 {
		cfg.MaxDups = defaultBudget
	}
	return &Plan{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed)), run: run}
}

// Recovery reports whether the plan expects the L2 retransmission
// machinery to be armed.
func (p *Plan) Recovery() bool { return p.cfg.Recovery }

// RequestVerdict decides the fate of one retryable request delivery.
func (p *Plan) RequestVerdict() Verdict {
	roll := p.rng.Intn(1000)
	if roll < p.cfg.DropPermille {
		if p.drops < p.cfg.MaxDrops {
			p.drops++
			p.run.FaultDrops++
			return Drop
		}
		return Deliver
	}
	if roll < p.cfg.DropPermille+p.cfg.DupPermille {
		if p.dups < p.cfg.MaxDups {
			p.dups++
			p.run.FaultDups++
			return Duplicate
		}
	}
	return Deliver
}

// DelaySpike returns the extra occupancy for one link traversal (usually
// zero). Applied as occupancy, it preserves per-link FIFO ordering.
func (p *Plan) DelaySpike() event.Cycle {
	if p.cfg.DelayPermille == 0 {
		return 0
	}
	if p.rng.Intn(1000) >= p.cfg.DelayPermille {
		return 0
	}
	p.run.FaultDelays++
	return event.Cycle(1 + p.rng.Intn(p.cfg.DelayMax))
}

// NackAlloc decides whether a home bank should NACK a directory
// allocation, simulating capacity pressure.
func (p *Plan) NackAlloc() bool {
	if p.cfg.NackPermille == 0 {
		return false
	}
	return p.rng.Intn(1000) < p.cfg.NackPermille
}
