// Package simerr defines the simulator's structured diagnostic errors.
//
// Every abnormal end of a simulation — a protocol wedge detected by the
// watchdog, an exhausted retry budget, a violated protocol invariant, a
// rejected configuration — is reported as an *Error wrapping one of the
// sentinel errors below, so callers can dispatch with errors.Is while the
// message still carries the full diagnostic context (cycle, site, line
// address, directory state).
//
// Protocol code deep inside event callbacks cannot return errors through
// the callback chain; instead it panics with an *Error (see Invariant) and
// machine.Simulate recovers the panic into an ordinary error return. Any
// other panic value is re-raised untouched.
package simerr

import (
	"errors"
	"fmt"
)

// Sentinel errors, matched with errors.Is.
var (
	// ErrDeadlock reports a simulation that stopped making forward
	// progress: the watchdog found cores still active with no operations
	// completing, or the event queue drained with programs unfinished.
	ErrDeadlock = errors.New("simerr: deadlock")

	// ErrRetryExhausted reports an L2 transaction that used up its retry
	// budget (timeout retransmissions or directory NACK backoffs).
	ErrRetryExhausted = errors.New("simerr: retry budget exhausted")

	// ErrProtocolInvariant reports a violated coherence-protocol invariant:
	// state the protocol guarantees can never occur was observed.
	ErrProtocolInvariant = errors.New("simerr: protocol invariant violated")

	// ErrConfig reports a rejected machine configuration.
	ErrConfig = errors.New("simerr: invalid configuration")

	// ErrCanceled reports a run ended early by cooperative cancellation:
	// its context was canceled (SIGINT/SIGTERM on the CLIs, a parent
	// sweep shutting down). The machine state at the stop point depends
	// on wall-clock timing, so canceled runs are not reproducible.
	ErrCanceled = errors.New("simerr: run canceled")

	// ErrBudgetExhausted reports a run ended early by a resource budget
	// (max events, max sim-cycles, wall-clock deadline, or memory soft
	// limit). Event and sim-cycle budgets stop at a deterministic point
	// in the event sequence, so two runs with the same seed and budget
	// leave bit-identical partial state; wall-clock and memory budgets
	// are non-reproducible and their diagnostics say so.
	ErrBudgetExhausted = errors.New("simerr: budget exhausted")

	// ErrRunPanicked reports a simulation that panicked with a foreign
	// (non-simerr) value and was contained by a supervising layer (the
	// experiment pool, the fuzz batch) instead of killing the process.
	ErrRunPanicked = errors.New("simerr: run panicked")
)

// Error is a structured simulator diagnostic. It wraps one of the
// sentinels (Unwrap, so errors.Is works) and records where and when the
// failure happened in simulated time.
type Error struct {
	Sentinel error  // one of the Err* sentinels above
	Cycle    uint64 // simulated cycle, 0 if unknown (filled in on recovery)
	Site     string // emitting component, e.g. "home3", "cl0", "machine"
	Line     uint64 // line base address, 0 when not line-specific
	Detail   string // free-form diagnostic: op, directory state, dump
}

func (e *Error) Error() string {
	s := e.Sentinel.Error()
	if e.Site != "" {
		s += " at " + e.Site
	}
	if e.Cycle != 0 {
		s += fmt.Sprintf(" cycle %d", e.Cycle)
	}
	if e.Line != 0 {
		s += fmt.Sprintf(" line %#x", e.Line)
	}
	if e.Detail != "" {
		s += ": " + e.Detail
	}
	return s
}

func (e *Error) Unwrap() error { return e.Sentinel }

// New builds a structured diagnostic wrapping the given sentinel.
func New(sentinel error, cycle uint64, site string, line uint64, format string, args ...any) *Error {
	return &Error{
		Sentinel: sentinel,
		Cycle:    cycle,
		Site:     site,
		Line:     line,
		Detail:   fmt.Sprintf(format, args...),
	}
}

// Invariant builds a protocol-invariant diagnostic. Protocol code panics
// with the returned value; machine.Simulate recovers it into an error.
func Invariant(cycle uint64, site string, line uint64, format string, args ...any) *Error {
	return New(ErrProtocolInvariant, cycle, site, line, format, args...)
}

// Config builds a configuration-rejection diagnostic.
func Config(format string, args ...any) *Error {
	return New(ErrConfig, 0, "", 0, format, args...)
}

// FromPanic extracts a simulator diagnostic from a recovered panic value.
// It reports false for foreign panics, which callers must re-raise.
func FromPanic(v any) (*Error, bool) {
	e, ok := v.(*Error)
	return e, ok
}

// Panicked builds a contained-panic diagnostic from a recovered foreign
// panic value and its goroutine stack. Supervising layers that must not
// die with one run (the fuzz batch, stress replay) use it to turn a
// crash into an ordinary ErrRunPanicked error.
func Panicked(v any, stack []byte) *Error {
	return New(ErrRunPanicked, 0, "", 0, "panic: %v\n%s", v, stack)
}
