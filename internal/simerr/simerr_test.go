package simerr

import (
	"errors"
	"fmt"
	"strings"
	"testing"
)

func TestErrorsIsThroughWrapping(t *testing.T) {
	base := New(ErrDeadlock, 123, "machine", 0x8000, "stuck")
	if !errors.Is(base, ErrDeadlock) {
		t.Fatal("errors.Is failed on direct Error")
	}
	wrapped := fmt.Errorf("run failed: %w", base)
	if !errors.Is(wrapped, ErrDeadlock) {
		t.Fatal("errors.Is failed through fmt.Errorf wrapping")
	}
	if errors.Is(wrapped, ErrRetryExhausted) {
		t.Fatal("errors.Is matched the wrong sentinel")
	}
	var se *Error
	if !errors.As(wrapped, &se) || se.Cycle != 123 || se.Line != 0x8000 {
		t.Fatalf("errors.As lost structure: %+v", se)
	}
}

func TestErrorMessageCarriesContext(t *testing.T) {
	e := Invariant(77, "home3", 0x1a40, "M entry but owner %d absent", 5)
	msg := e.Error()
	for _, want := range []string{"home3", "cycle 77", "0x1a40", "owner 5 absent", "invariant"} {
		if !strings.Contains(msg, want) {
			t.Fatalf("message %q missing %q", msg, want)
		}
	}
	if !errors.Is(e, ErrProtocolInvariant) {
		t.Fatal("Invariant did not wrap ErrProtocolInvariant")
	}
}

func TestConfigSentinel(t *testing.T) {
	e := Config("need at least %d cluster", 1)
	if !errors.Is(e, ErrConfig) {
		t.Fatal("Config did not wrap ErrConfig")
	}
}

func TestFromPanic(t *testing.T) {
	e := Invariant(1, "cl0", 0, "boom")
	got, ok := FromPanic(any(e))
	if !ok || got != e {
		t.Fatal("FromPanic failed to recognize a simerr value")
	}
	if _, ok := FromPanic("some other panic"); ok {
		t.Fatal("FromPanic accepted a foreign panic value")
	}
}
