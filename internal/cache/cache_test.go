package cache

import (
	"math/rand"
	"testing"
	"testing/quick"

	"cohesion/internal/addr"
)

func TestGeometry(t *testing.T) {
	c := New(64<<10, 16) // the Table-3 L2
	if c.Lines() != 2048 || c.Sets() != 128 || c.Ways() != 16 {
		t.Fatalf("geometry = %d lines, %d sets, %d ways", c.Lines(), c.Sets(), c.Ways())
	}
}

func TestBadGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad geometry accepted")
		}
	}()
	New(96, 4) // 3 lines, 4 ways
}

func TestAllocateLookupInvalidate(t *testing.T) {
	c := New(1<<10, 2)
	e, _, ev := c.Allocate(7)
	if ev {
		t.Fatal("eviction from empty cache")
	}
	e.State = StateShared
	e.ValidMask = FullMask
	if c.Count() != 1 {
		t.Fatalf("Count = %d", c.Count())
	}
	got := c.Lookup(7)
	if got == nil || got.State != StateShared {
		t.Fatal("Lookup lost state")
	}
	if c.Lookup(8) != nil {
		t.Fatal("phantom hit")
	}
	d, was := c.Invalidate(7)
	if !was || d.State != StateShared {
		t.Fatal("Invalidate lost entry")
	}
	if c.Count() != 0 || c.Peek(7) != nil {
		t.Fatal("entry survived invalidation")
	}
	if _, was := c.Invalidate(7); was {
		t.Fatal("double invalidate reported a drop")
	}
}

func TestAllocateResidentPanics(t *testing.T) {
	c := New(1<<10, 2)
	c.Allocate(3)
	defer func() {
		if recover() == nil {
			t.Fatal("double allocate accepted")
		}
	}()
	c.Allocate(3)
}

func TestLRUEviction(t *testing.T) {
	c := New(64, 2) // one set, two ways
	c.Allocate(0)
	c.Allocate(2)
	c.Lookup(0) // 0 now MRU; 2 is LRU
	_, victim, ev := c.Allocate(4)
	if !ev || victim.Line != 2 {
		t.Fatalf("evicted %v (ev=%v), want line 2", victim.Line, ev)
	}
	if c.Peek(0) == nil || c.Peek(4) == nil || c.Peek(2) != nil {
		t.Fatal("post-eviction contents wrong")
	}
}

func TestPinnedNotEvicted(t *testing.T) {
	c := New(64, 2)
	a, _, _ := c.Allocate(0)
	a.Pinned = true
	c.Allocate(2)
	_, victim, ev := c.Allocate(4) // must evict 2 even though 0 is LRU
	if !ev || victim.Line != 2 {
		t.Fatalf("evicted line %d, want 2", victim.Line)
	}
	if c.Peek(0) == nil {
		t.Fatal("pinned line evicted")
	}
}

func TestFullyPinnedPanics(t *testing.T) {
	c := New(64, 2)
	a, _, _ := c.Allocate(0)
	b, _, _ := c.Allocate(2)
	a.Pinned, b.Pinned = true, true
	defer func() {
		if recover() == nil {
			t.Fatal("allocation into fully pinned set succeeded")
		}
	}()
	c.Allocate(4)
}

func TestVictimCopyIndependent(t *testing.T) {
	c := New(64, 1)
	e, _, _ := c.Allocate(1)
	e.Data[3] = 99
	e.DirtyMask = 1 << 3
	_, victim, ev := c.Allocate(3) // same set as line 1 in a 2-set cache
	if !ev || victim.Data[3] != 99 || victim.DirtyMask != 1<<3 {
		t.Fatal("victim copy lost data")
	}
	// Mutating the new resident must not affect the victim copy.
	c.Lookup(3).Data[3] = 1
	if victim.Data[3] != 99 {
		t.Fatal("victim aliases live entry")
	}
}

func TestForEach(t *testing.T) {
	c := New(1<<10, 4)
	for i := addr.Line(0); i < 10; i++ {
		c.Allocate(i)
	}
	n := 0
	c.ForEach(func(e *Entry) { n++ })
	if n != 10 {
		t.Fatalf("ForEach visited %d, want 10", n)
	}
}

func TestWordBit(t *testing.T) {
	if WordBit(0x100) != 1 || WordBit(0x104) != 2 || WordBit(0x11c) != 0x80 {
		t.Fatal("WordBit wrong")
	}
}

// Property: the cache agrees with a map-based golden model under a random
// stream of allocate/lookup/invalidate operations, as long as the model
// evicts the same victims (we feed the model the cache's reported victims).
func TestQuickGoldenModel(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := New(512, 2) // 16 lines, 8 sets
		model := map[addr.Line]uint32{}
		for op := 0; op < 2000; op++ {
			line := addr.Line(rng.Intn(64))
			switch rng.Intn(3) {
			case 0: // allocate or touch
				if e := c.Lookup(line); e != nil {
					if model[line] != e.Data[0] {
						return false
					}
					continue
				}
				e, victim, ev := c.Allocate(line)
				if ev {
					if model[victim.Line] != victim.Data[0] {
						return false
					}
					delete(model, victim.Line)
				}
				v := rng.Uint32()
				e.Data[0] = v
				model[line] = v
			case 1: // lookup
				e := c.Peek(line)
				_, inModel := model[line]
				if (e != nil) != inModel {
					return false
				}
				if e != nil && model[line] != e.Data[0] {
					return false
				}
			case 2: // invalidate
				d, was := c.Invalidate(line)
				_, inModel := model[line]
				if was != inModel {
					return false
				}
				if was && model[line] != d.Data[0] {
					return false
				}
				delete(model, line)
			}
			if c.Count() != len(model) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: a line is always found in the set its index maps to, and
// capacity is never exceeded.
func TestQuickCapacity(t *testing.T) {
	f := func(lines []uint16) bool {
		c := New(256, 4) // 8 lines
		for _, l := range lines {
			line := addr.Line(l)
			if c.Lookup(line) == nil {
				c.Allocate(line)
			}
			if c.Count() > c.Lines() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
