// Package cache implements the set-associative cache arrays used at every
// level of the simulated hierarchy (L1I, L1D, L2, L3 tags).
//
// Entries carry the metadata the Cohesion protocols need beyond a plain
// cache: per-word valid and dirty bit vectors (the paper's non-inclusive
// hierarchy keeps per-word dirty/valid bits so SWcc write-allocates can
// complete without fetching, and so the L3 can merge disjoint write sets),
// the per-line "incoherent" bit that marks SWcc lines in an L2 (paper
// §3.4), and a protocol state byte interpreted by the coherence engine.
package cache

import (
	"fmt"
	"math/bits"

	"cohesion/internal/addr"
)

// MSI states stored in Entry.State for lines in the HWcc domain. Lines in
// the SWcc domain are Valid with Incoherent set and State tracking nothing.
const (
	StateInvalid uint8 = iota
	StateShared
	StateModified
)

// Entry is one cache line's worth of state. The Data words are only
// meaningful where ValidMask has the corresponding bit set.
type Entry struct {
	Line       addr.Line
	Valid      bool
	Pinned     bool // a transaction is in flight; not evictable
	Incoherent bool // line belongs to the SWcc domain (paper's per-line bit)
	State      uint8
	ValidMask  uint8 // bit w: word w holds valid data
	DirtyMask  uint8 // bit w: word w is dirty locally
	Data       [addr.WordsPerLine]uint32

	lastUse uint64
}

// FullMask has the valid/dirty bit set for every word of a line.
const FullMask = uint8(1<<addr.WordsPerLine - 1)

// Cache is a set-associative array with LRU replacement.
type Cache struct {
	sets   [][]Entry
	ways   int
	mask   uint64 // nsets-1 when nsets is a power of two, else 0
	tick   uint64
	valid  int
	pinned int

	// occ has one bit per slot (set*ways+way), set while the slot holds a
	// valid entry. ForEach scans it instead of streaming the whole entry
	// array: end-of-run sweeps (invariant checks, dirty drains) touch only
	// live entries, which for a sparsely used cache is orders of magnitude
	// less memory traffic.
	occ []uint64
}

// New builds a cache of sizeBytes capacity and the given associativity.
// sizeBytes must be a multiple of assoc lines.
func New(sizeBytes, assoc int) *Cache {
	lines := sizeBytes / addr.LineBytes
	if lines < 1 || assoc < 1 || lines%assoc != 0 {
		panic(fmt.Sprintf("cache: bad geometry %d bytes %d-way", sizeBytes, assoc))
	}
	nsets := lines / assoc
	c := &Cache{sets: make([][]Entry, nsets), ways: assoc, occ: make([]uint64, (lines+63)/64)}
	if nsets&(nsets-1) == 0 {
		c.mask = uint64(nsets - 1)
	}
	for i := range c.sets {
		c.sets[i] = make([]Entry, assoc)
	}
	return c
}

// Sets and Ways report the geometry; Lines the total capacity in lines.
func (c *Cache) Sets() int  { return len(c.sets) }
func (c *Cache) Ways() int  { return c.ways }
func (c *Cache) Lines() int { return len(c.sets) * c.ways }

// Count reports how many entries are currently valid.
func (c *Cache) Count() int { return c.valid }

// set returns the set for a line. Set counts are powers of two in every
// real geometry, so indexing is a mask; the modulo fallback (a hardware
// divide, measurably hot at one per cache access) only runs for odd
// test-constructed geometries.
func (c *Cache) set(line addr.Line) []Entry {
	return c.sets[c.setIdx(line)]
}

func (c *Cache) setIdx(line addr.Line) uint64 {
	if c.mask != 0 || len(c.sets) == 1 {
		return uint64(line) & c.mask
	}
	return uint64(line) % uint64(len(c.sets))
}

// markSlot and clearSlot maintain the occupancy bitmap for slot w of the
// given set.
func (c *Cache) markSlot(setIdx uint64, w int) {
	i := setIdx*uint64(c.ways) + uint64(w)
	c.occ[i>>6] |= 1 << (i & 63)
}

func (c *Cache) clearSlot(setIdx uint64, w int) {
	i := setIdx*uint64(c.ways) + uint64(w)
	c.occ[i>>6] &^= 1 << (i & 63)
}

// Lookup returns the entry holding line and refreshes its LRU position, or
// nil on a miss. The returned pointer stays valid until the entry is
// evicted; callers mutate protocol state through it.
func (c *Cache) Lookup(line addr.Line) *Entry {
	set := c.set(line)
	for i := range set {
		if set[i].Valid && set[i].Line == line {
			c.tick++
			set[i].lastUse = c.tick
			return &set[i]
		}
	}
	return nil
}

// Peek is Lookup without the LRU refresh; used by probes and invariant
// checks so observation does not perturb replacement.
func (c *Cache) Peek(line addr.Line) *Entry {
	set := c.set(line)
	for i := range set {
		if set[i].Valid && set[i].Line == line {
			return &set[i]
		}
	}
	return nil
}

// Allocate installs line, evicting the LRU non-pinned way if the set is
// full. It returns the (reset) entry for the new line and, if a valid line
// was displaced, a copy of the victim so the caller can issue writebacks or
// release messages. Allocating a line that is already present panics: the
// controller must Lookup first.
//
// The new entry starts Valid with empty masks, StateInvalid protocol state,
// and the incoherent bit clear; the caller fills it in.
func (c *Cache) Allocate(line addr.Line) (entry *Entry, victim Entry, evicted bool) {
	si := c.setIdx(line)
	set := c.sets[si]
	slotW := -1
	for i := range set {
		e := &set[i]
		if e.Valid && e.Line == line {
			panic(fmt.Sprintf("cache: Allocate of resident line %#x", uint64(line)))
		}
		if e.Valid {
			if e.Pinned {
				continue
			}
			if slotW < 0 || (set[slotW].Valid && e.lastUse < set[slotW].lastUse) {
				slotW = i
			}
		} else if slotW < 0 || set[slotW].Valid {
			slotW = i // always prefer an invalid way
		}
	}
	if slotW < 0 {
		panic(fmt.Sprintf("cache: set for line %#x fully pinned", uint64(line)))
	}
	slot := &set[slotW]
	if slot.Valid {
		victim, evicted = *slot, true
		c.valid--
	}
	c.tick++
	*slot = Entry{Line: line, Valid: true, lastUse: c.tick}
	c.valid++
	c.markSlot(si, slotW)
	return slot, victim, evicted
}

// Invalidate drops line if present, returning a copy of the dropped entry.
func (c *Cache) Invalidate(line addr.Line) (dropped Entry, was bool) {
	si := c.setIdx(line)
	set := c.sets[si]
	for i := range set {
		if set[i].Valid && set[i].Line == line {
			dropped, was = set[i], true
			set[i] = Entry{}
			c.valid--
			c.clearSlot(si, i)
			return
		}
	}
	return
}

// ForEach calls fn for every valid entry, in set then way order. fn may
// mutate entries but must not invalidate or allocate.
func (c *Cache) ForEach(fn func(*Entry)) {
	ways := uint64(c.ways)
	for wi, word := range c.occ {
		for ; word != 0; word &= word - 1 {
			i := uint64(wi)<<6 + uint64(bits.TrailingZeros64(word))
			fn(&c.sets[i/ways][i%ways])
		}
	}
}

// WordBit returns the dirty/valid mask bit for the word containing a.
func WordBit(a addr.Addr) uint8 { return 1 << addr.WordIndex(a) }
