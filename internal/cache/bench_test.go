package cache

import (
	"testing"

	"cohesion/internal/addr"
)

// Substrate micro-benchmarks: the cache array is on the critical path of
// every simulated memory operation, so its host-side cost bounds
// simulation throughput.

func BenchmarkLookupHit(b *testing.B) {
	c := New(64<<10, 16)
	for i := 0; i < 2048; i++ {
		c.Allocate(addr.Line(i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if c.Lookup(addr.Line(i&2047)) == nil {
			b.Fatal("miss")
		}
	}
}

func BenchmarkLookupMiss(b *testing.B) {
	c := New(64<<10, 16)
	for i := 0; i < 2048; i++ {
		c.Allocate(addr.Line(i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if c.Lookup(addr.Line(1<<20+i&2047)) != nil {
			b.Fatal("phantom hit")
		}
	}
}

func BenchmarkAllocateEvict(b *testing.B) {
	c := New(64<<10, 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		line := addr.Line(i)
		if c.Peek(line) == nil {
			c.Allocate(line)
		}
	}
}
