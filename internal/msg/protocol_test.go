package msg

import "testing"

func TestReqKindClassTotal(t *testing.T) {
	want := map[ReqKind]Kind{
		ReqRead: ReadReq, ReqWrite: WriteReq, ReqInstr: InstrReq,
		ReqAtomic: Atomic, ReqUncLoad: Atomic, ReqUncStore: Atomic,
		ReqEvict: Eviction, ReqReadRel: ReadRel, ReqSWFlush: SWFlush,
	}
	for k, w := range want {
		if k.Class() != w {
			t.Errorf("%v.Class() = %v, want %v", k, k.Class(), w)
		}
		if k.String() == "" {
			t.Errorf("%v has empty name", uint8(k))
		}
	}
}

func TestHasDataAndBytes(t *testing.T) {
	if !ReqEvict.HasData() || !ReqSWFlush.HasData() || ReqRead.HasData() {
		t.Fatal("HasData wrong")
	}
	if (Req{Kind: ReqEvict}).Bytes() != DataBytes || (Req{Kind: ReqRead}).Bytes() != CtrlBytes {
		t.Fatal("Req.Bytes wrong")
	}
	if (Resp{HasData: true}).Bytes() != DataBytes || (Resp{}).Bytes() != CtrlBytes {
		t.Fatal("Resp.Bytes wrong")
	}
	if (ProbeReply{Kind: ReplyData}).Bytes() != DataBytes || (ProbeReply{Kind: ReplyAck}).Bytes() != CtrlBytes {
		t.Fatal("ProbeReply.Bytes wrong")
	}
}

func TestAtomicOps(t *testing.T) {
	cases := []struct {
		op             AtomicOp
		old, a, b, new uint32
	}{
		{AtomicAdd, 10, 5, 0, 15},
		{AtomicAdd, ^uint32(0), 1, 0, 0}, // wraps
		{AtomicOr, 0b1010, 0b0101, 0, 0b1111},
		{AtomicAnd, 0b1110, 0b0111, 0, 0b0110},
		{AtomicXchg, 99, 7, 0, 7},
		{AtomicCAS, 5, 5, 8, 8}, // matches: swapped
		{AtomicCAS, 5, 6, 8, 5}, // no match: unchanged
		{AtomicMin, 10, 3, 0, 3},
		{AtomicMin, 3, 10, 0, 3},
		{AtomicMax, 3, 10, 0, 10},
		{AtomicMax, 10, 3, 0, 10},
	}
	for _, c := range cases {
		if got := c.op.Apply(c.old, c.a, c.b); got != c.new {
			t.Errorf("op %d Apply(%d,%d,%d) = %d, want %d", c.op, c.old, c.a, c.b, got, c.new)
		}
	}
}

func TestProtocolStrings(t *testing.T) {
	for _, s := range []fmt_Stringer{
		GrantShared, GrantModified, GrantIncoherent, GrantNone,
		ProbeInv, ProbeWB, ProbeCapture, ProbeUpgradeOwner,
		ReplyAck, ReplyData, ReplyNotPresent, ReplyClean, ReplyDirty,
	} {
		if s.String() == "" {
			t.Errorf("%T has empty String()", s)
		}
	}
	if Grant(9).String() == "" || ProbeKind(9).String() == "" || ReplyKind(9).String() == "" || ReqKind(99).String() == "" {
		t.Error("unknown-value strings empty")
	}
}

type fmt_Stringer interface{ String() string }
