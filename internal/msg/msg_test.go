package msg

import "testing"

func TestKindsCoversAllOnce(t *testing.T) {
	ks := Kinds()
	if len(ks) != NumKinds {
		t.Fatalf("Kinds() has %d entries, want %d", len(ks), NumKinds)
	}
	seen := map[Kind]bool{}
	for _, k := range ks {
		if seen[k] {
			t.Fatalf("kind %v listed twice", k)
		}
		seen[k] = true
	}
}

func TestStringsDistinct(t *testing.T) {
	seen := map[string]bool{}
	for _, k := range Kinds() {
		s := k.String()
		if s == "" || seen[s] {
			t.Fatalf("kind %d has bad/duplicate name %q", k, s)
		}
		seen[s] = true
	}
	if Kind(200).String() != "Kind(200)" {
		t.Errorf("unknown kind String = %q", Kind(200).String())
	}
}

func TestSizes(t *testing.T) {
	for _, k := range Kinds() {
		sz := k.Size()
		switch k {
		case Eviction, SWFlush:
			if sz != DataBytes {
				t.Errorf("%v size = %d, want %d", k, sz, DataBytes)
			}
		default:
			if sz != CtrlBytes {
				t.Errorf("%v size = %d, want %d", k, sz, CtrlBytes)
			}
		}
	}
}
