// Package msg defines the message taxonomy used throughout the memory
// system. The eight Kind values are exactly the legend of the paper's
// Figures 2 and 8: the classes of messages an L2 cache sends toward the
// global L3/directory. Probe traffic flowing the other way (directory to
// L2) is tracked separately because the figures count only L2 output.
package msg

import "fmt"

// Kind classifies an L2-output message for accounting (Figs 2 and 8).
type Kind uint8

const (
	// ReadReq is a coherent or incoherent data read request (load miss).
	ReadReq Kind = iota
	// WriteReq is a coherent write request/upgrade sent to the directory.
	WriteReq
	// InstrReq is an instruction fetch miss forwarded to the L3.
	InstrReq
	// Atomic covers uncached loads/stores and atomic read-modify-write
	// operations performed at the L3 ("Uncached/Atomic Operations").
	Atomic
	// Eviction is a dirty-line writeback caused by a cache replacement
	// ("Cache Evictions").
	Eviction
	// SWFlush is a dirty-word writeback caused by an explicit software
	// flush instruction ("Software Flushes").
	SWFlush
	// ReadRel is a read release: notification that a clean line was evicted
	// under HWcc ("Read Releases").
	ReadRel
	// ProbeResp is any L2 response to a directory probe: invalidation acks,
	// writeback data, and clean-capture acks ("Probe Responses").
	ProbeResp

	numKinds
)

// NumKinds is the number of L2-output message classes.
const NumKinds = int(numKinds)

// Kinds lists all classes in the order the paper's figure legends use
// (bottom of the stacked bar first).
func Kinds() []Kind {
	return []Kind{ReadReq, WriteReq, InstrReq, Atomic, Eviction, SWFlush, ReadRel, ProbeResp}
}

func (k Kind) String() string {
	switch k {
	case ReadReq:
		return "Read Requests"
	case WriteReq:
		return "Write Requests"
	case InstrReq:
		return "Instruction Requests"
	case Atomic:
		return "Uncached/Atomic Operations"
	case Eviction:
		return "Cache Evictions"
	case SWFlush:
		return "Software Flushes"
	case ReadRel:
		return "Read Releases"
	case ProbeResp:
		return "Probe Responses"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Control and data message sizes in bytes, used by the interconnect's
// occupancy model. A data message carries a 32-byte line plus header.
const (
	CtrlBytes = 8
	DataBytes = 40
)

// Size returns the nominal size in bytes of a message of kind k, assuming
// data-bearing kinds carry a full line.
func (k Kind) Size() int {
	switch k {
	case Eviction, SWFlush:
		return DataBytes
	default:
		return CtrlBytes
	}
}
