package msg

import (
	"fmt"

	"cohesion/internal/addr"
)

// ReqKind enumerates the request messages an L2 sends to a line's home
// L3/directory bank.
type ReqKind uint8

const (
	// ReqRead asks for a readable copy of a line (load/ifetch miss).
	ReqRead ReqKind = iota
	// ReqWrite asks for a writable copy or an upgrade (store miss/hit-S).
	ReqWrite
	// ReqInstr is a read for an instruction line (separately accounted).
	ReqInstr
	// ReqAtomic is an uncached atomic read-modify-write performed at the L3.
	ReqAtomic
	// ReqUncLoad and ReqUncStore are uncached word accesses at the L3.
	ReqUncLoad
	// ReqUncStore is an uncached word store performed at the L3.
	ReqUncStore
	// ReqEvict writes back the dirty words of an evicted line.
	ReqEvict
	// ReqReadRel releases a clean line on eviction (HWcc read release).
	ReqReadRel
	// ReqSWFlush writes back dirty words in response to a software flush.
	ReqSWFlush
)

func (k ReqKind) String() string {
	switch k {
	case ReqRead:
		return "RdReq"
	case ReqWrite:
		return "WrReq"
	case ReqInstr:
		return "InstrReq"
	case ReqAtomic:
		return "Atomic"
	case ReqUncLoad:
		return "UncLoad"
	case ReqUncStore:
		return "UncStore"
	case ReqEvict:
		return "Evict"
	case ReqReadRel:
		return "RdRel"
	case ReqSWFlush:
		return "SWFlush"
	}
	return fmt.Sprintf("ReqKind(%d)", uint8(k))
}

// Class maps a request kind to its Figure-2/8 accounting class.
func (k ReqKind) Class() Kind {
	switch k {
	case ReqRead:
		return ReadReq
	case ReqWrite:
		return WriteReq
	case ReqInstr:
		return InstrReq
	case ReqAtomic, ReqUncLoad, ReqUncStore:
		return Atomic
	case ReqEvict:
		return Eviction
	case ReqReadRel:
		return ReadRel
	case ReqSWFlush:
		return SWFlush
	}
	panic("msg: unclassifiable request kind")
}

// HasData reports whether the request carries line data (affects network
// occupancy).
func (k ReqKind) HasData() bool { return k == ReqEvict || k == ReqSWFlush }

// Retryable reports whether a request may be safely dropped in flight and
// retransmitted by the requester: the home either never saw it (dropped)
// or deduplicates it by ID (retransmitted after a slow response), and
// servicing it is value-idempotent. Data-bearing writebacks and atomics
// are excluded: they are fire-and-forget or non-idempotent, so the fault
// layer never drops or duplicates them (delay spikes still apply).
func (k ReqKind) Retryable() bool {
	return k == ReqRead || k == ReqWrite || k == ReqInstr
}

// AtomicOp is the operation of a ReqAtomic request, performed on a single
// word at the L3 (the paper's atom.* instructions).
type AtomicOp uint8

const (
	AtomicAdd AtomicOp = iota
	AtomicOr
	AtomicAnd
	AtomicXchg
	AtomicCAS // Operand = compare, Operand2 = swap
	AtomicMin
	AtomicMax
)

// Apply computes the new word value from the old one. For AtomicCAS the
// word is replaced only when it equals Operand.
func (op AtomicOp) Apply(old, operand, operand2 uint32) uint32 {
	switch op {
	case AtomicAdd:
		return old + operand
	case AtomicOr:
		return old | operand
	case AtomicAnd:
		return old & operand
	case AtomicXchg:
		return operand
	case AtomicCAS:
		if old == operand {
			return operand2
		}
		return old
	case AtomicMin:
		if operand < old {
			return operand
		}
		return old
	case AtomicMax:
		if operand > old {
			return operand
		}
		return old
	}
	panic("msg: unknown atomic op")
}

// Req is a request message from an L2 (cluster) to a home bank.
type Req struct {
	Kind    ReqKind
	Cluster int
	Line    addr.Line
	Addr    addr.Addr // word address for atomic/uncached ops
	Mask    uint8     // dirty-word mask for Evict/SWFlush
	Data    [addr.WordsPerLine]uint32

	// ID is the requester's transaction identifier, unique across the
	// machine and shared by every retransmission of the same transaction.
	// The home uses it to drop duplicate deliveries; the requester uses it
	// to discard stale responses. 0 means untracked (non-retryable kinds).
	ID uint64

	Op       AtomicOp
	Operand  uint32
	Operand2 uint32
}

// Bytes returns the network size of the request.
func (r Req) Bytes() int {
	if r.Kind.HasData() {
		return DataBytes
	}
	return CtrlBytes
}

// Grant describes the coherence permission a response confers.
type Grant uint8

const (
	// GrantShared: line is HWcc, readable (MSI Shared).
	GrantShared Grant = iota
	// GrantModified: line is HWcc, writable (MSI Modified).
	GrantModified
	// GrantIncoherent: line is in the SWcc domain; the L2 sets the
	// incoherent bit and manages the line in software.
	GrantIncoherent
	// GrantNone: the response carries no line permission (acks, atomics).
	GrantNone
	// GrantNack: the home refused the request (directory capacity pressure
	// or an injected fault); the requester must back off and retransmit.
	GrantNack
)

func (g Grant) String() string {
	switch g {
	case GrantShared:
		return "S"
	case GrantModified:
		return "M"
	case GrantIncoherent:
		return "inc"
	case GrantNone:
		return "-"
	case GrantNack:
		return "nack"
	}
	return fmt.Sprintf("Grant(%d)", uint8(g))
}

// Resp is the home bank's response to a Req.
type Resp struct {
	Grant   Grant
	HasData bool
	Data    [addr.WordsPerLine]uint32
	Value   uint32 // atomic/uncached-load result

	// ID echoes the transaction ID of the request being answered (0 for
	// untracked requests). The requesting L2 uses it to discard late
	// responses that would otherwise alias a recycled transaction record
	// on the same line.
	ID uint64

	// RaceException is set on a region-table write's acknowledgement when
	// a SW-to-HW transition detected the Figure 7 Case 5b software race
	// and the machine is configured to trap on it.
	RaceException bool
}

// Bytes returns the network size of the response.
func (r Resp) Bytes() int {
	if r.HasData {
		return DataBytes
	}
	return CtrlBytes
}

// ProbeKind enumerates directory-to-L2 probes.
type ProbeKind uint8

const (
	// ProbeInv: invalidate the line and ack.
	ProbeInv ProbeKind = iota
	// ProbeWB: write back dirty words (if any), invalidate, and ack.
	ProbeWB
	// ProbeCapture: SW-to-HW transition broadcast. If the line is present
	// and clean, clear the incoherent bit (the line becomes a hardware-
	// coherent sharer, still cached) and report clean; if dirty, report the
	// dirty mask without writing back; if absent, report not-present.
	ProbeCapture
	// ProbeUpgradeOwner: second phase of a single-dirty-writer capture —
	// the L2 keeps the line, clears the incoherent bit, and becomes the
	// MSI owner without a writeback (paper §3.6, "the sharer is upgraded
	// to owner at the directory and no writeback occurs").
	ProbeUpgradeOwner
)

func (k ProbeKind) String() string {
	switch k {
	case ProbeInv:
		return "ProbeInv"
	case ProbeWB:
		return "ProbeWB"
	case ProbeCapture:
		return "ProbeCapture"
	case ProbeUpgradeOwner:
		return "ProbeUpgradeOwner"
	}
	return fmt.Sprintf("ProbeKind(%d)", uint8(k))
}

// Probe is a directory-to-L2 coherence probe.
type Probe struct {
	Kind ProbeKind
	Line addr.Line
}

// ReplyKind enumerates L2 responses to probes.
type ReplyKind uint8

const (
	// ReplyAck: the probe was applied; no data follows (line was absent or
	// clean, as appropriate for the probe).
	ReplyAck ReplyKind = iota
	// ReplyData: the probe captured dirty words, carried in Data/Mask.
	ReplyData
	// ReplyNotPresent: capture probe found the line absent.
	ReplyNotPresent
	// ReplyClean: capture probe found the line present and clean; the L2
	// is now a hardware sharer.
	ReplyClean
	// ReplyDirty: capture probe found dirty words; the L2 reports the mask
	// and awaits the directory's second phase.
	ReplyDirty
)

func (k ReplyKind) String() string {
	switch k {
	case ReplyAck:
		return "Ack"
	case ReplyData:
		return "AckData"
	case ReplyNotPresent:
		return "NotPresent"
	case ReplyClean:
		return "Clean"
	case ReplyDirty:
		return "Dirty"
	}
	return fmt.Sprintf("ReplyKind(%d)", uint8(k))
}

// ProbeReply is an L2's answer to a probe. Probe replies are counted in
// the ProbeResp class of Figures 2 and 8.
type ProbeReply struct {
	Kind    ReplyKind
	Cluster int
	Line    addr.Line
	Mask    uint8
	Data    [addr.WordsPerLine]uint32
}

// Bytes returns the network size of the reply.
func (r ProbeReply) Bytes() int {
	if r.Kind == ReplyData {
		return DataBytes
	}
	return CtrlBytes
}
