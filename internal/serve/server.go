package serve

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime/debug"
	"sort"
	"sync"
	"time"

	"cohesion/internal/pool"
	"cohesion/internal/runctl"
	"cohesion/internal/simerr"
)

// State is a job's lifecycle state.
type State string

// Job lifecycle states. queued → running → {done, canceled, failed}.
const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateCanceled State = "canceled"
	StateFailed   State = "failed"
)

// Terminal reports whether a job in this state can never run again.
func (s State) Terminal() bool {
	return s == StateDone || s == StateCanceled || s == StateFailed
}

// Outcome is the client-visible result of a finished (or partially
// finished) job. Fingerprint and digest are hex strings: uint64 values
// above 2^53 do not survive JSON number decoding in most clients.
type Outcome struct {
	MemFingerprint string `json:"mem_fingerprint"`
	StatsDigest    string `json:"stats_digest"`
	Cycles         uint64 `json:"cycles"`
	Events         uint64 `json:"events"`
	Instructions   uint64 `json:"instructions"`
	MessagesTotal  uint64 `json:"messages_total"`

	// Partial marks an outcome captured at an early stop (cancellation or
	// budget); StopReason carries the trigger.
	Partial    bool   `json:"partial,omitempty"`
	StopReason string `json:"stop_reason,omitempty"`
}

// Engine executes one job. The root cohesion package implements it over
// RunWithCheckpoints/ResumeRun; unit tests fake it.
type Engine interface {
	// Execute runs spec under lim, writing crash-safe checkpoints to
	// ckptPath every ckptEvery events. When resume is true and ckptPath
	// holds a usable snapshot, the engine continues from it instead of
	// starting over — bit-identical either way, by the verified-replay
	// contract. The bool reports whether a snapshot was actually used.
	// Canceled and budget-ended jobs return a partial Outcome alongside
	// the sentinel error.
	Execute(ctx context.Context, spec JobSpec, ckptPath string, ckptEvery uint64, lim runctl.Limits, resume bool) (*Outcome, bool, error)
}

// Options configures a Server. The zero value of each field selects the
// documented default.
type Options struct {
	StateDir        string        // job records + run checkpoints (required)
	Workers         int           // concurrent simulations; 0 = GOMAXPROCS
	QueueDepth      int           // admission queue beyond the workers; 0 = 16
	CheckpointEvery uint64        // events between run checkpoints; 0 = 25000
	MaxJobLimits    runctl.Limits // server-wide ceilings clamped onto every job
	RetryAfter      time.Duration // advisory Retry-After on 429; 0 = 1s
	Logf            func(format string, args ...any)
}

// Errors the admission path distinguishes; the HTTP layer maps them to
// 429 and 503.
var (
	ErrSaturated = errors.New("serve: queue full")
	ErrDraining  = errors.New("serve: server is draining")
)

// Job is the server's record of one submission. Fields are guarded by
// the server mutex; the exported snapshot type is JobView.
type Job struct {
	ID   string
	Spec JobSpec

	State    State
	Resumed  bool // recovered from a previous process's state dir
	Outcome  *Outcome
	Error    string
	Revision uint64

	SubmittedMS int64
	StartedMS   int64
	EndedMS     int64

	cancel         context.CancelFunc
	clientCanceled bool
}

// JobView is an immutable snapshot of a job for status responses.
type JobView struct {
	ID          string   `json:"id"`
	Spec        JobSpec  `json:"spec"`
	State       State    `json:"state"`
	Resumed     bool     `json:"resumed,omitempty"`
	Outcome     *Outcome `json:"outcome,omitempty"`
	Error       string   `json:"error,omitempty"`
	SubmittedMS int64    `json:"submitted_ms"`
	StartedMS   int64    `json:"started_ms,omitempty"`
	EndedMS     int64    `json:"ended_ms,omitempty"`
}

// Server is the job service: admission, a bounded worker pool, job
// state, persistence, and metrics. Construct with New, serve HTTP via
// Handler, stop with Drain.
type Server struct {
	opt Options
	eng Engine

	ctx    context.Context // base context every job context derives from
	cancel context.CancelFunc

	mu     sync.Mutex
	jobs   map[string]*Job
	order  []string
	nextID uint64

	runner   *pool.Runner[string]
	draining bool
	metrics  *Metrics
	started  time.Time
}

// New builds a server over eng: it creates the state directory, recovers
// every persisted job (re-queuing the ones a previous process left
// queued or running), and starts the worker pool.
func New(eng Engine, opt Options) (*Server, error) {
	if opt.StateDir == "" {
		return nil, fmt.Errorf("serve: Options.StateDir is required")
	}
	if opt.Workers <= 0 {
		opt.Workers = pool.Workers(0)
	}
	if opt.QueueDepth <= 0 {
		opt.QueueDepth = 16
	}
	if opt.CheckpointEvery == 0 {
		opt.CheckpointEvery = 25_000
	}
	if opt.RetryAfter <= 0 {
		opt.RetryAfter = time.Second
	}
	if opt.Logf == nil {
		opt.Logf = func(string, ...any) {}
	}
	for _, dir := range []string{jobsDir(opt.StateDir), ckptDir(opt.StateDir)} {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("serve: %w", err)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		opt:     opt,
		eng:     eng,
		ctx:     ctx,
		cancel:  cancel,
		jobs:    map[string]*Job{},
		metrics: newMetrics(),
		started: time.Now(),
	}
	recovered, err := s.recoverJobs()
	if err != nil {
		cancel()
		return nil, err
	}
	s.runner = pool.NewRunner(opt.Workers, opt.QueueDepth+len(recovered), s.execute)
	for _, id := range recovered {
		if !s.runner.TrySubmit(id) {
			// Cannot happen: the queue was sized to hold every recovered
			// job; fail loudly rather than silently stranding one.
			cancel()
			return nil, fmt.Errorf("serve: recovered job %s did not fit the queue", id)
		}
	}
	if n := len(recovered); n > 0 {
		opt.Logf("recovered %d unfinished job(s) from %s", n, opt.StateDir)
	}
	return s, nil
}

// recoverJobs loads every persisted job record and returns the IDs to
// re-enqueue (previous-process queued and running jobs), in ID order so
// recovery is deterministic.
func (s *Server) recoverJobs() ([]string, error) {
	recs, err := loadAllRecords(s.opt.StateDir)
	if err != nil {
		return nil, err
	}
	var requeue []string
	for _, rec := range recs {
		j := rec.job()
		switch j.State {
		case StateQueued:
			requeue = append(requeue, j.ID)
		case StateRunning:
			// The previous process died mid-run; its checkpoint (if any)
			// lets the engine resume instead of replaying from scratch.
			j.State = StateQueued
			j.Resumed = true
			requeue = append(requeue, j.ID)
		}
		s.jobs[j.ID] = j
		s.order = append(s.order, j.ID)
		if n := idNumber(j.ID); n >= s.nextID {
			s.nextID = n + 1
		}
		s.metrics.recovered(j)
	}
	sort.Strings(requeue)
	sort.Strings(s.order)
	return requeue, nil
}

// Submit validates and admits one job. It returns ErrSaturated when the
// queue is full (the HTTP layer's 429) and ErrDraining after Drain began.
func (s *Server) Submit(spec JobSpec) (string, error) {
	if err := spec.Validate(); err != nil {
		return "", err
	}
	spec = spec.Normalized()

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return "", ErrDraining
	}
	id := fmt.Sprintf("j-%06d", s.nextID)
	s.nextID++
	j := &Job{ID: id, Spec: spec, State: StateQueued, SubmittedMS: nowMS()}
	s.jobs[id] = j
	s.order = append(s.order, id)
	rec := recordOf(j)
	s.mu.Unlock()

	// Persist before enqueuing: once a worker can see the job, a SIGKILL
	// at any instant must leave a record to recover it from.
	if err := saveRecord(s.opt.StateDir, rec); err != nil {
		s.forget(id)
		return "", err
	}
	if !s.runner.TrySubmit(id) {
		s.forget(id)
		_ = removeRecord(s.opt.StateDir, id)
		s.metrics.rejected()
		return "", ErrSaturated
	}
	s.metrics.submitted()
	return id, nil
}

// forget removes a job that never became visible to a client.
func (s *Server) forget(id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.jobs, id)
	for i, o := range s.order {
		if o == id {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
}

// execute runs one queued job to a terminal state. It is the worker-pool
// processing function; a panicking engine is contained here so one bad
// job cannot take the service down.
func (s *Server) execute(id string) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	if !ok || j.State != StateQueued || s.draining {
		// Canceled while queued, or the server is draining: leave the
		// persisted record as-is (a draining server's queued jobs resume
		// on the next start).
		s.mu.Unlock()
		return
	}
	j.State = StateRunning
	j.StartedMS = nowMS()
	ctx, cancel := context.WithCancel(s.ctx)
	j.cancel = cancel
	spec, resume := j.Spec, j.Resumed
	rec := recordOf(j)
	s.mu.Unlock()
	defer cancel()

	// The on-disk record must say "running" before the run starts, so a
	// SIGKILL during the run is recovered as a resume.
	if err := saveRecord(s.opt.StateDir, rec); err != nil {
		s.finish(id, nil, fmt.Errorf("serve: persisting job record: %w", err))
		return
	}

	lim := runctl.Clamp(runctl.Limits{
		MaxEvents:  uint64(spec.MaxEvents),
		WallBudget: time.Duration(spec.MaxWallMS) * time.Millisecond,
	}, s.opt.MaxJobLimits)

	out, usedCkpt, err := func() (out *Outcome, usedCkpt bool, err error) {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("%w: job %s panicked: %v\n%s", simerr.ErrRunPanicked, id, r, debug.Stack())
			}
		}()
		return s.eng.Execute(ctx, spec, ckptPath(s.opt.StateDir, id), s.opt.CheckpointEvery, lim, resume)
	}()
	if usedCkpt {
		s.metrics.resumed()
	}
	s.finish(id, out, err)
}

// finish moves a job to its terminal state, persists it, and updates the
// metrics. A cancellation caused by server drain (rather than a client
// DELETE) is *not* persisted: the on-disk record keeps saying "running"
// so the next process resumes the job from its last checkpoint.
func (s *Server) finish(id string, out *Outcome, err error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		return
	}
	j.EndedMS = nowMS()
	j.Outcome = out
	switch {
	case err == nil:
		j.State = StateDone
		j.Error = ""
	case errors.Is(err, simerr.ErrCanceled) && !j.clientCanceled:
		// Server-initiated stop (drain): the engine already wrote a final
		// checkpoint at the stop point. Leave the job recoverable.
		j.State = StateQueued
		j.Resumed = true
		j.Outcome = nil
		s.mu.Unlock()
		return
	case errors.Is(err, simerr.ErrCanceled):
		j.State = StateCanceled
		j.Error = err.Error()
	default:
		// Budget exhaustion, divergence, protocol failures, contained
		// panics: all terminal failures, with whatever partial outcome the
		// engine salvaged.
		j.State = StateFailed
		j.Error = err.Error()
	}
	rec := recordOf(j)
	view := j.view()
	s.mu.Unlock()

	if perr := saveRecord(s.opt.StateDir, rec); perr != nil {
		s.opt.Logf("job %s: persisting terminal record: %v", id, perr)
	}
	if view.State == StateDone {
		// The checkpoint has served its purpose; keep the state dir tidy.
		removeCheckpoint(s.opt.StateDir, id)
	}
	s.metrics.finished(view)
	s.opt.Logf("job %s %s (%s/%s)", id, view.State, view.Spec.Kernel, view.Spec.Mode)
}

// Cancel cancels a job: a queued job is terminally canceled on the spot,
// a running one has its context canceled and reaches StateCanceled with
// a partial outcome when the event loop observes the cancellation. The
// returned view is the job's state at return time; ok is false for an
// unknown ID.
func (s *Server) Cancel(id string) (JobView, bool) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		return JobView{}, false
	}
	j.clientCanceled = true
	switch j.State {
	case StateQueued:
		j.State = StateCanceled
		j.EndedMS = nowMS()
		j.Error = "canceled while queued"
		rec := recordOf(j)
		view := j.view()
		s.mu.Unlock()
		if err := saveRecord(s.opt.StateDir, rec); err != nil {
			s.opt.Logf("job %s: persisting cancel: %v", id, err)
		}
		removeCheckpoint(s.opt.StateDir, id)
		s.metrics.finished(view)
		return view, true
	case StateRunning:
		if j.cancel != nil {
			j.cancel()
		}
	}
	view := j.view()
	s.mu.Unlock()
	return view, true
}

// Job returns a snapshot of one job.
func (s *Server) Job(id string) (JobView, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return JobView{}, false
	}
	return j.view(), true
}

// Jobs lists every job in submission order.
func (s *Server) Jobs() []JobView {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]JobView, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id].view())
	}
	return out
}

// Draining reports whether Drain has begun.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Drain gracefully stops the server: intake closes (Submit returns
// ErrDraining, the HTTP layer 503s), running jobs are cooperatively
// canceled — each writes a final checkpoint at its stop point — and the
// worker pool is joined. Queued jobs are left persisted as queued; both
// they and the interrupted running jobs resume on the next start,
// bit-identically. ctx bounds the wait.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil
	}
	s.draining = true
	s.mu.Unlock()

	s.cancel() // cascades to every running job's context

	done := make(chan struct{})
	go func() {
		s.runner.Close()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("serve: drain: %w", ctx.Err())
	}
}

func (j *Job) view() JobView {
	v := JobView{
		ID:          j.ID,
		Spec:        j.Spec,
		State:       j.State,
		Resumed:     j.Resumed,
		Error:       j.Error,
		SubmittedMS: j.SubmittedMS,
		StartedMS:   j.StartedMS,
		EndedMS:     j.EndedMS,
	}
	if j.Outcome != nil {
		out := *j.Outcome
		v.Outcome = &out
	}
	return v
}

func nowMS() int64 { return time.Now().UnixMilli() }

// idNumber extracts the numeric suffix of a job ID ("j-000042" → 42);
// 0 for malformed IDs.
func idNumber(id string) uint64 {
	var n uint64
	for i := len("j-"); i < len(id); i++ {
		c := id[i]
		if c < '0' || c > '9' {
			return 0
		}
		n = n*10 + uint64(c-'0')
	}
	return n
}

func jobsDir(state string) string        { return filepath.Join(state, "jobs") }
func ckptDir(state string) string        { return filepath.Join(state, "ckpt") }
func ckptPath(state, id string) string   { return filepath.Join(ckptDir(state), id+".ckpt") }
func recordPath(state, id string) string { return filepath.Join(jobsDir(state), id+".job") }
