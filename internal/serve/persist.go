package serve

import (
	"fmt"
	"os"
	"sort"
	"strings"

	"cohesion/internal/snapshot"
)

// jobRecord is the persisted form of a Job: everything the next process
// needs to report the job's history and decide whether to re-run it.
// Records ride the snapshot envelope (KindJob), so every write is
// atomic (temp + fsync + rename) and every read is checksummed — a
// SIGKILL mid-write leaves the previous revision readable.
type jobRecord struct {
	ID          string   `json:"id"`
	Spec        JobSpec  `json:"spec"`
	State       State    `json:"state"`
	Resumed     bool     `json:"resumed,omitempty"`
	Outcome     *Outcome `json:"outcome,omitempty"`
	Error       string   `json:"error,omitempty"`
	SubmittedMS int64    `json:"submitted_ms"`
	StartedMS   int64    `json:"started_ms,omitempty"`
	EndedMS     int64    `json:"ended_ms,omitempty"`
	Revision    uint64   `json:"revision"`
}

// recordOf snapshots a job for persistence, bumping its revision (the
// envelope Seq, so LoadRecover adopts the newest of a torn pair).
// Callers hold the server mutex.
func recordOf(j *Job) jobRecord {
	j.Revision++
	return jobRecord{
		ID:          j.ID,
		Spec:        j.Spec,
		State:       j.State,
		Resumed:     j.Resumed,
		Outcome:     j.Outcome,
		Error:       j.Error,
		SubmittedMS: j.SubmittedMS,
		StartedMS:   j.StartedMS,
		EndedMS:     j.EndedMS,
		Revision:    j.Revision,
	}
}

// job rebuilds the in-memory form.
func (r jobRecord) job() *Job {
	return &Job{
		ID:          r.ID,
		Spec:        r.Spec,
		State:       r.State,
		Resumed:     r.Resumed,
		Outcome:     r.Outcome,
		Error:       r.Error,
		Revision:    r.Revision,
		SubmittedMS: r.SubmittedMS,
		StartedMS:   r.StartedMS,
		EndedMS:     r.EndedMS,
	}
}

// saveRecord atomically persists one job record.
func saveRecord(stateDir string, rec jobRecord) error {
	return snapshot.WriteAtomic(recordPath(stateDir, rec.ID), snapshot.KindJob, rec.Revision, rec)
}

// removeRecord deletes a job record (used only for jobs that were never
// admitted, e.g. a 429 after the speculative persist).
func removeRecord(stateDir, id string) error {
	path := recordPath(stateDir, id)
	err := os.Remove(path)
	if rerr := os.Remove(snapshot.TmpPath(path)); err == nil {
		err = rerr
	}
	if err != nil && os.IsNotExist(err) {
		return nil
	}
	return err
}

// removeCheckpoint deletes a job's run checkpoint pair, ignoring
// missing files.
func removeCheckpoint(stateDir, id string) {
	path := ckptPath(stateDir, id)
	_ = os.Remove(path)
	_ = os.Remove(snapshot.TmpPath(path))
}

// loadAllRecords scans the jobs directory, recovering each record from
// its newest valid file (main or .tmp). A record that is torn in both
// places is reported, not silently dropped: job history must not vanish
// without a trace.
func loadAllRecords(stateDir string) ([]jobRecord, error) {
	entries, err := os.ReadDir(jobsDir(stateDir))
	if err != nil {
		return nil, fmt.Errorf("serve: scanning %s: %w", jobsDir(stateDir), err)
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if strings.HasSuffix(name, ".job") {
			names = append(names, strings.TrimSuffix(name, ".job"))
		} else if strings.HasSuffix(name, ".job.tmp") {
			// A crash before the first rename leaves only the .tmp.
			names = append(names, strings.TrimSuffix(name, ".job.tmp"))
		}
	}
	sort.Strings(names)
	var recs []jobRecord
	seen := map[string]bool{}
	for _, id := range names {
		if seen[id] {
			continue
		}
		seen[id] = true
		var rec jobRecord
		if _, _, err := snapshot.LoadRecover(recordPath(stateDir, id), snapshot.KindJob, &rec); err != nil {
			return nil, fmt.Errorf("serve: recovering job %s: %w", id, err)
		}
		recs = append(recs, rec)
	}
	return recs, nil
}
