package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"cohesion/internal/runctl"
	"cohesion/internal/simerr"
)

// fakeEngine is a scriptable Engine for unit tests: it blocks until
// released (so tests can hold a worker busy), honors cancellation, and
// fabricates a deterministic outcome from the spec.
type fakeEngine struct {
	mu      sync.Mutex
	block   chan struct{} // when non-nil, Execute waits for close or ctx
	started chan string   // receives job kernel when Execute begins, if non-nil
	fail    error         // returned (with a partial outcome) when set
}

func (f *fakeEngine) Execute(ctx context.Context, spec JobSpec, ckptPath string, every uint64, lim runctl.Limits, resume bool) (*Outcome, bool, error) {
	f.mu.Lock()
	block, started, fail := f.block, f.started, f.fail
	f.mu.Unlock()
	if started != nil {
		started <- spec.Kernel
	}
	if block != nil {
		select {
		case <-block:
		case <-ctx.Done():
			return &Outcome{MemFingerprint: "0xpartial", Partial: true, StopReason: "canceled"},
				false, fmt.Errorf("fake: %w", simerr.ErrCanceled)
		}
	}
	if fail != nil {
		return &Outcome{Partial: true, StopReason: "failed"}, false, fail
	}
	// Deterministic fingerprint derived from the spec so bit-correctness
	// can be asserted without a real simulator.
	return &Outcome{
		MemFingerprint: fmt.Sprintf("0x%s-%s-%d", spec.Kernel, spec.Mode, spec.Seed),
		StatsDigest:    "0xdead",
		Events:         100,
		Cycles:         200,
	}, resume, nil
}

func newTestServer(t *testing.T, eng Engine, opt Options) *Server {
	t.Helper()
	if opt.StateDir == "" {
		opt.StateDir = t.TempDir()
	}
	if opt.Workers == 0 {
		opt.Workers = 2
	}
	if opt.QueueDepth == 0 {
		opt.QueueDepth = 4
	}
	s, err := New(eng, opt)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := s.Drain(ctx); err != nil {
			t.Errorf("Drain: %v", err)
		}
	})
	return s
}

func goodSpec() JobSpec {
	return JobSpec{Kernel: "heat", Mode: "cohesion", Clusters: 2, Scale: 1, Seed: 42}
}

func waitState(t *testing.T, s *Server, id string, want State) JobView {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		v, ok := s.Job(id)
		if ok && v.State == want {
			return v
		}
		time.Sleep(2 * time.Millisecond)
	}
	v, _ := s.Job(id)
	t.Fatalf("job %s never reached %s (last: %+v)", id, want, v)
	return JobView{}
}

func TestServeSubmitRunsToDone(t *testing.T) {
	s := newTestServer(t, &fakeEngine{}, Options{})
	id, err := s.Submit(goodSpec())
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	v := waitState(t, s, id, StateDone)
	if v.Outcome == nil || v.Outcome.MemFingerprint != "0xheat-cohesion-42" {
		t.Fatalf("outcome = %+v, want fake fingerprint", v.Outcome)
	}
}

func TestServeValidationHTTP(t *testing.T) {
	s := newTestServer(t, &fakeEngine{}, Options{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	cases := []struct {
		name       string
		body       string
		wantFields []string
	}{
		{"malformed JSON", `{"kernel": `, []string{"body"}},
		{"unknown field", `{"kernel":"heat","mode":"cohesion","bogus":1}`, []string{"bogus"}},
		{"unknown kernel", `{"kernel":"nope","mode":"cohesion"}`, []string{"kernel"}},
		{"unknown mode", `{"kernel":"heat","mode":"mesi"}`, []string{"mode"}},
		{"negative budgets", `{"kernel":"heat","mode":"swcc","max_events":-1,"max_wall_ms":-5}`,
			[]string{"max_events", "max_wall_ms"}},
		{"scale out of range", `{"kernel":"heat","mode":"swcc","scale":9999}`, []string{"scale"}},
		{"several at once", `{"kernel":"nope","mode":"mesi","clusters":-3}`,
			[]string{"kernel", "mode", "clusters"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(tc.body))
			if err != nil {
				t.Fatalf("POST: %v", err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status = %d, want 400", resp.StatusCode)
			}
			var eb errorBody
			if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
				t.Fatalf("decoding error body: %v", err)
			}
			got := map[string]bool{}
			for _, f := range eb.Fields {
				if f.Field == "" || f.Msg == "" {
					t.Fatalf("unnamed field error: %+v", f)
				}
				got[f.Field] = true
			}
			for _, want := range tc.wantFields {
				if !got[want] {
					t.Errorf("missing field error %q in %+v", want, eb.Fields)
				}
			}
		})
	}
}

func TestServeSaturationSheds429(t *testing.T) {
	eng := &fakeEngine{block: make(chan struct{}), started: make(chan string, 1)}
	s := newTestServer(t, eng, Options{Workers: 1, QueueDepth: 1, RetryAfter: 2 * time.Second})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer close(eng.block)

	submit := func() *http.Response {
		body, _ := json.Marshal(goodSpec())
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatalf("POST: %v", err)
		}
		return resp
	}

	// First job occupies the single worker...
	resp := submit()
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit = %d, want 202", resp.StatusCode)
	}
	<-eng.started // worker is now provably inside Execute
	// ...second fills the queue slot...
	resp = submit()
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("second submit = %d, want 202", resp.StatusCode)
	}
	// ...third must be shed, never queued or hung.
	resp = submit()
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated submit = %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "2" {
		t.Errorf("Retry-After = %q, want \"2\"", ra)
	}
	var eb errorBody
	if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
		t.Fatalf("decoding 429 body: %v", err)
	}
	if eb.RetryAfterMS != 2000 {
		t.Errorf("retry_after_ms = %d, want 2000", eb.RetryAfterMS)
	}
}

func TestServeCancelQueuedAndRunning(t *testing.T) {
	eng := &fakeEngine{block: make(chan struct{}), started: make(chan string, 2)}
	s := newTestServer(t, eng, Options{Workers: 1, QueueDepth: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	running, err := s.Submit(goodSpec())
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	<-eng.started
	queued, err := s.Submit(goodSpec())
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}

	doDelete := func(id string) *http.Response {
		req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+id, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("DELETE: %v", err)
		}
		return resp
	}

	// Canceling a queued job is immediate and terminal.
	resp := doDelete(queued)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("cancel queued = %d, want 202", resp.StatusCode)
	}
	v := waitState(t, s, queued, StateCanceled)
	if v.Error == "" {
		t.Error("canceled-while-queued job should carry an error message")
	}

	// Canceling the running job stops it cooperatively with a partial
	// outcome; /result answers 200 with the partial-result shape.
	resp = doDelete(running)
	resp.Body.Close()
	waitState(t, s, running, StateCanceled)
	rresp, err := http.Get(ts.URL + "/v1/jobs/" + running + "/result")
	if err != nil {
		t.Fatalf("GET result: %v", err)
	}
	defer rresp.Body.Close()
	if rresp.StatusCode != http.StatusOK {
		t.Fatalf("result of canceled job = %d, want 200", rresp.StatusCode)
	}
	var body struct {
		State   State    `json:"state"`
		Outcome *Outcome `json:"outcome"`
		Error   string   `json:"error"`
	}
	if err := json.NewDecoder(rresp.Body).Decode(&body); err != nil {
		t.Fatalf("decoding result: %v", err)
	}
	if body.State != StateCanceled || body.Outcome == nil || !body.Outcome.Partial || body.Error == "" {
		t.Fatalf("partial-result shape = %+v, want canceled + partial outcome + error", body)
	}

	// Unfinished jobs 409 on /result: submit one more and check before release.
	close(eng.block)
}

func TestServeResultLifecycle(t *testing.T) {
	eng := &fakeEngine{block: make(chan struct{}), started: make(chan string, 1)}
	s := newTestServer(t, eng, Options{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	id, err := s.Submit(goodSpec())
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	<-eng.started
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/result")
	if err != nil {
		t.Fatalf("GET result: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("result while running = %d, want 409", resp.StatusCode)
	}
	close(eng.block)
	waitState(t, s, id, StateDone)
	resp, err = http.Get(ts.URL + "/v1/jobs/" + id + "/result")
	if err != nil {
		t.Fatalf("GET result: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result when done = %d, want 200", resp.StatusCode)
	}

	if resp, err := http.Get(ts.URL + "/v1/jobs/j-999999/result"); err == nil {
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("result of unknown job = %d, want 404", resp.StatusCode)
		}
	}
}

func TestServeFailedJobKeepsPartialOutcome(t *testing.T) {
	eng := &fakeEngine{fail: fmt.Errorf("boom: %w", simerr.ErrBudgetExhausted)}
	s := newTestServer(t, eng, Options{})
	id, err := s.Submit(goodSpec())
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	v := waitState(t, s, id, StateFailed)
	if v.Outcome == nil || !v.Outcome.Partial || v.Error == "" {
		t.Fatalf("failed job view = %+v, want partial outcome + error", v)
	}
}

func TestServePanickingEngineIsContained(t *testing.T) {
	eng := &panicEngine{}
	s := newTestServer(t, eng, Options{Workers: 1})
	id, err := s.Submit(goodSpec())
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	v := waitState(t, s, id, StateFailed)
	if !strings.Contains(v.Error, "panicked") {
		t.Fatalf("error = %q, want contained panic", v.Error)
	}
	// The worker survived: the next job still runs.
	id2, err := s.Submit(JobSpec{Kernel: "heat", Mode: "swcc"})
	if err != nil {
		t.Fatalf("Submit after panic: %v", err)
	}
	waitState(t, s, id2, StateFailed) // panics again, but is processed
}

type panicEngine struct{}

func (panicEngine) Execute(context.Context, JobSpec, string, uint64, runctl.Limits, bool) (*Outcome, bool, error) {
	panic("kernel exploded")
}

func TestServePersistenceRoundTrip(t *testing.T) {
	dir := t.TempDir()
	eng := &fakeEngine{}
	s := newTestServer(t, eng, Options{StateDir: dir})
	id, err := s.Submit(goodSpec())
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	done := waitState(t, s, id, StateDone)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}

	// A new server over the same dir reports the finished job unchanged
	// and does not re-run it.
	s2, err := New(&fakeEngine{fail: fmt.Errorf("must not run")}, Options{StateDir: dir, Workers: 1})
	if err != nil {
		t.Fatalf("New over old state: %v", err)
	}
	defer s2.Drain(context.Background())
	v, ok := s2.Job(id)
	if !ok || v.State != StateDone {
		t.Fatalf("recovered job = %+v, want done", v)
	}
	if v.Outcome == nil || v.Outcome.MemFingerprint != done.Outcome.MemFingerprint {
		t.Fatalf("recovered outcome = %+v, want %+v", v.Outcome, done.Outcome)
	}

	// New submissions on the recovered server get fresh, non-colliding IDs.
	id2, err := s2.Submit(goodSpec())
	if err != nil {
		t.Fatalf("Submit on recovered server: %v", err)
	}
	if id2 == id {
		t.Fatalf("recovered server reused job ID %s", id)
	}
}

func TestServeRecoveryRequeuesUnfinished(t *testing.T) {
	dir := t.TempDir()
	eng := &fakeEngine{block: make(chan struct{}), started: make(chan string, 2)}
	s, err := New(eng, Options{StateDir: dir, Workers: 1, QueueDepth: 2})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	idRunning, err := s.Submit(goodSpec())
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	<-eng.started
	idQueued, err := s.Submit(JobSpec{Kernel: "stencil", Mode: "hwcc"})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	// Drain without letting the blocked job finish: the drain path leaves
	// the on-disk records saying running/queued — the exact state a
	// SIGKILL would have left — while joining every goroutine.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}

	s2, err := New(&fakeEngine{}, Options{StateDir: dir, Workers: 1})
	if err != nil {
		t.Fatalf("New over crashed state: %v", err)
	}
	defer s2.Drain(context.Background())
	vr := waitState(t, s2, idRunning, StateDone)
	if !vr.Resumed {
		t.Error("previously-running job should be marked resumed")
	}
	vq := waitState(t, s2, idQueued, StateDone)
	if vq.Outcome == nil || vq.Outcome.MemFingerprint != "0xstencil-hwcc-0" {
		t.Fatalf("requeued job outcome = %+v", vq.Outcome)
	}
}

func TestServeDrainingRefusesIntake(t *testing.T) {
	s := newTestServer(t, &fakeEngine{}, Options{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	body, _ := json.Marshal(goodSpec())
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining = %d, want 503", resp.StatusCode)
	}
	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatalf("GET healthz: %v", err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz while draining = %d, want 503", hresp.StatusCode)
	}
}

func TestServeMetricsEndpoint(t *testing.T) {
	s := newTestServer(t, &fakeEngine{}, Options{Workers: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	id, err := s.Submit(goodSpec())
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	waitState(t, s, id, StateDone)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET metrics: %v", err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatalf("reading metrics: %v", err)
	}
	text := buf.String()
	for _, want := range []string{
		"cohesion_serve_queue_depth ",
		"cohesion_serve_jobs_submitted_total 1",
		`cohesion_serve_jobs_total{state="done"} 1`,
		"cohesion_serve_sim_events_total 100",
		`cohesion_serve_job_latency_ms_count{kernel="heat"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q in:\n%s", want, text)
		}
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("metrics Content-Type = %q", ct)
	}
}
