package serve

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"
)

// FuzzDecodeSpec drives arbitrary bytes through the job-spec decoder.
// The contract under fuzz: never panic, never hang, and classify every
// input as either a fully valid spec or a *SpecError whose field errors
// are all named — the structured-400 guarantee of the HTTP layer.
func FuzzDecodeSpec(f *testing.F) {
	f.Add(`{"kernel":"heat","mode":"cohesion","clusters":2,"scale":1,"seed":42,"verify":true}`)
	f.Add(`{"kernel":"dmm","mode":"swcc","max_events":1000,"max_wall_ms":50}`)
	f.Add(`{"kernel":"nope","mode":"mesi","clusters":-1}`)
	f.Add(`{"kernel": `)
	f.Add(`null`)
	f.Add(`[]`)
	f.Add(`{"kernel":"heat","mode":"hwcc"} trailing`)
	f.Add(`{"unknown_key":1}`)
	f.Add(`{"seed":-9223372036854775808,"scale":99999999999}`)
	f.Add(strings.Repeat("[", 1000))

	f.Fuzz(func(t *testing.T, body string) {
		spec, err := DecodeSpec(strings.NewReader(body))
		if err != nil {
			var se *SpecError
			if !errors.As(err, &se) {
				t.Fatalf("DecodeSpec returned a non-SpecError: %v", err)
			}
			if len(se.Fields) == 0 {
				t.Fatalf("SpecError with no field errors for %q", body)
			}
			for _, fe := range se.Fields {
				if fe.Field == "" || fe.Msg == "" {
					t.Fatalf("unnamed field error %+v for %q", fe, body)
				}
			}
			if se.Error() == "" {
				t.Fatal("SpecError has an empty message")
			}
			return
		}
		// Accepted specs must round-trip validation: DecodeSpec promises a
		// spec the server will admit without further checks.
		if verr := spec.Validate(); verr != nil {
			t.Fatalf("DecodeSpec accepted %q but Validate rejects: %v", body, verr)
		}
		// And they must be JSON-serializable (they go straight into the
		// persisted job record).
		if _, merr := json.Marshal(spec); merr != nil {
			t.Fatalf("accepted spec does not marshal: %v", merr)
		}
	})
}
