// Package serve is the job-service layer: an HTTP/JSON front door over
// the simulator shaped like an inference-serving stack — admission
// control with a bounded queue (429 + Retry-After under saturation),
// per-job budgets clamped by server-wide ceilings (runctl), crash-safe
// job records and run checkpoints (snapshot) so a SIGKILL'd server
// resumes its queued and running jobs bit-identically on restart, and
// Prometheus-style text metrics.
//
// The package deliberately does not know how to build a machine: the
// root cohesion package implements Engine (it owns RunConfig and the
// checkpoint facade) and injects it, which also lets the unit tests
// drive every admission/cancel/drain path with a fake engine and no
// simulation at all.
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strings"

	"cohesion/internal/config"
	"cohesion/internal/kernels"
)

// MaxSpecBytes bounds a submitted job-spec body.
const MaxSpecBytes = 1 << 20

// Spec limits enforced at validation; generous, but they keep a typo'd
// spec from asking for a machine the process cannot build.
const (
	MaxClusters = 128 // the paper's Table 3 machine
	MaxScale    = 64
)

// JobSpec is the wire form of one job: which kernel on which machine,
// with optional per-job budgets. The zero values of the optional fields
// select the server defaults (2 clusters, scale 1).
type JobSpec struct {
	Kernel   string `json:"kernel"`
	Mode     string `json:"mode"`               // swcc | hwcc | cohesion
	Clusters int    `json:"clusters,omitempty"` // 0 = 2
	Scale    int    `json:"scale,omitempty"`    // 0 = 1
	Seed     int64  `json:"seed,omitempty"`
	Workers  int    `json:"workers,omitempty"` // 0 = 4 per cluster
	Verify   bool   `json:"verify,omitempty"`

	// MaxEvents and MaxWallMS are per-job budgets (0 = none), clamped by
	// the server's ceilings. They are int64 on the wire so a negative
	// value is rejected with a named field instead of wrapping.
	MaxEvents int64 `json:"max_events,omitempty"`
	MaxWallMS int64 `json:"max_wall_ms,omitempty"`
}

// FieldError names one invalid field of a submitted spec.
type FieldError struct {
	Field string `json:"field"`
	Msg   string `json:"msg"`
}

// SpecError aggregates every invalid field of a spec, mirroring the
// named-field semantics of stress.Repro.Validate: the client learns all
// problems in one round trip, each anchored to the field that caused it.
type SpecError struct {
	Fields []FieldError `json:"fields"`
}

func (e *SpecError) Error() string {
	parts := make([]string, len(e.Fields))
	for i, f := range e.Fields {
		parts[i] = f.Field + ": " + f.Msg
	}
	return "invalid job spec: " + strings.Join(parts, "; ")
}

// specErrorf builds a single-field SpecError.
func specErrorf(field, format string, args ...any) *SpecError {
	return &SpecError{Fields: []FieldError{{Field: field, Msg: fmt.Sprintf(format, args...)}}}
}

// ParseMode maps a wire mode string to the machine Mode.
func ParseMode(s string) (config.Mode, bool) {
	switch strings.ToLower(s) {
	case "swcc":
		return config.SWcc, true
	case "hwcc":
		return config.HWcc, true
	case "cohesion":
		return config.Cohesion, true
	}
	return 0, false
}

// Normalized returns the spec with defaulted fields made explicit, so
// persisted records and run configs agree on the actual parameters.
func (s JobSpec) Normalized() JobSpec {
	if s.Clusters == 0 {
		s.Clusters = 2
	}
	if s.Scale == 0 {
		s.Scale = 1
	}
	s.Mode = strings.ToLower(s.Mode)
	return s
}

// Validate checks every field, collecting one FieldError per problem.
// A spec that passes cannot send machine construction into a config
// error: the 400 happens at admission, not inside a worker.
func (s JobSpec) Validate() error {
	var e SpecError
	add := func(field, format string, args ...any) {
		e.Fields = append(e.Fields, FieldError{Field: field, Msg: fmt.Sprintf(format, args...)})
	}
	names := kernels.Names()
	known := false
	for _, n := range names {
		if n == s.Kernel {
			known = true
			break
		}
	}
	if s.Kernel == "" {
		add("kernel", "required; one of %s", strings.Join(names, ", "))
	} else if !known {
		add("kernel", "unknown kernel %q; one of %s", s.Kernel, strings.Join(names, ", "))
	}
	if _, ok := ParseMode(s.Mode); !ok {
		if s.Mode == "" {
			add("mode", "required; one of swcc, hwcc, cohesion")
		} else {
			add("mode", "unknown mode %q; one of swcc, hwcc, cohesion", s.Mode)
		}
	}
	if s.Clusters < 0 || s.Clusters > MaxClusters {
		add("clusters", "%d outside [0, %d] (0 = default)", s.Clusters, MaxClusters)
	}
	if s.Scale < 0 || s.Scale > MaxScale {
		add("scale", "%d outside [0, %d] (0 = default)", s.Scale, MaxScale)
	}
	if s.Workers < 0 {
		add("workers", "%d is negative", s.Workers)
	} else if s.Clusters >= 0 && s.Clusters <= MaxClusters {
		if cores := config.Scaled(s.Normalized().Clusters).Cores(); s.Workers > cores {
			add("workers", "%d exceeds the machine's %d cores", s.Workers, cores)
		}
	}
	if s.MaxEvents < 0 {
		add("max_events", "%d is negative", s.MaxEvents)
	}
	if s.MaxWallMS < 0 {
		add("max_wall_ms", "%d is negative", s.MaxWallMS)
	}
	if len(e.Fields) == 0 {
		return nil
	}
	return &e
}

// DecodeSpec reads and validates one job spec from an HTTP body. Every
// failure — malformed JSON, an unknown field, out-of-range values —
// comes back as a *SpecError naming the offending field ("body" for
// syntax-level problems), so the handler can return a structured 400.
func DecodeSpec(r io.Reader) (JobSpec, error) {
	var spec JobSpec
	dec := json.NewDecoder(io.LimitReader(r, MaxSpecBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		return JobSpec{}, decodeError(err)
	}
	// Trailing garbage after the object is a malformed body too.
	if err := dec.Decode(&struct{}{}); err != io.EOF {
		return JobSpec{}, specErrorf("body", "trailing data after the job object")
	}
	if err := spec.Validate(); err != nil {
		return JobSpec{}, err
	}
	return spec.Normalized(), nil
}

// decodeError converts a json.Decoder failure into a field-named
// *SpecError.
func decodeError(err error) *SpecError {
	var ute *json.UnmarshalTypeError
	if errors.As(err, &ute) && ute.Field != "" {
		return specErrorf(ute.Field, "wrong type: got %s, want %s", ute.Value, ute.Type)
	}
	// encoding/json reports unknown fields only via the error text:
	// `json: unknown field "xyz"`.
	if msg := err.Error(); strings.Contains(msg, "unknown field") {
		field := "body"
		if i := strings.IndexByte(msg, '"'); i >= 0 {
			// An empty key ({"": 0}) must still produce a named error.
			if j := strings.IndexByte(msg[i+1:], '"'); j > 0 {
				field = msg[i+1 : i+1+j]
			}
		}
		return specErrorf(field, "unknown field")
	}
	return specErrorf("body", "malformed JSON: %v", err)
}
