package serve

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"cohesion/internal/stats"
)

// Metrics is the server's serving-side instrumentation: admission
// counters, terminal-state counts, cumulative simulated work, and a
// per-kernel wall-latency histogram (stats.Histogram, exposed through
// its Prometheus writer). Sim-time metrics stay where they were — in
// each run's stats.Metrics; this registry measures the service itself.
type Metrics struct {
	mu             sync.Mutex
	submittedTotal uint64
	rejectedTotal  uint64
	resumedTotal   uint64
	byState        map[State]uint64
	simEvents      uint64
	simCycles      uint64
	latencyMS      map[string]*stats.Histogram // by kernel
}

func newMetrics() *Metrics {
	return &Metrics{byState: map[State]uint64{}, latencyMS: map[string]*stats.Histogram{}}
}

func (m *Metrics) submitted() {
	m.mu.Lock()
	m.submittedTotal++
	m.mu.Unlock()
}

func (m *Metrics) rejected() {
	m.mu.Lock()
	m.rejectedTotal++
	m.mu.Unlock()
}

func (m *Metrics) resumed() {
	m.mu.Lock()
	m.resumedTotal++
	m.mu.Unlock()
}

// recovered accounts for jobs loaded from a previous process's state
// dir: terminal ones keep their terminal counts; unfinished ones count
// as submissions again (they will run in this process).
func (m *Metrics) recovered(j *Job) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.submittedTotal++
	if j.State.Terminal() {
		m.byState[j.State]++
	}
}

// finished records one job reaching a terminal state.
func (m *Metrics) finished(v JobView) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.byState[v.State]++
	if v.Outcome != nil {
		m.simEvents += v.Outcome.Events
		m.simCycles += v.Outcome.Cycles
	}
	if v.StartedMS > 0 && v.EndedMS >= v.StartedMS {
		h := m.latencyMS[v.Spec.Kernel]
		if h == nil {
			h = &stats.Histogram{}
			m.latencyMS[v.Spec.Kernel] = h
		}
		h.Observe(uint64(v.EndedMS - v.StartedMS))
	}
}

// WriteProm renders the whole registry in Prometheus text exposition
// format. The queue gauges are passed in by the server so the registry
// itself stays lock-ordering-trivial.
func (m *Metrics) WriteProm(w io.Writer, queueDepth, queueCap, inflight, workers int, uptime time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()

	fmt.Fprintf(w, "# TYPE cohesion_serve_queue_depth gauge\n")
	fmt.Fprintf(w, "cohesion_serve_queue_depth %d\n", queueDepth)
	fmt.Fprintf(w, "cohesion_serve_queue_capacity %d\n", queueCap)
	fmt.Fprintf(w, "cohesion_serve_inflight %d\n", inflight)
	fmt.Fprintf(w, "cohesion_serve_workers %d\n", workers)
	fmt.Fprintf(w, "cohesion_serve_uptime_seconds %.3f\n", uptime.Seconds())

	fmt.Fprintf(w, "# TYPE cohesion_serve_jobs_submitted_total counter\n")
	fmt.Fprintf(w, "cohesion_serve_jobs_submitted_total %d\n", m.submittedTotal)
	fmt.Fprintf(w, "cohesion_serve_jobs_rejected_total %d\n", m.rejectedTotal)
	fmt.Fprintf(w, "cohesion_serve_jobs_resumed_total %d\n", m.resumedTotal)

	fmt.Fprintf(w, "# TYPE cohesion_serve_jobs_total counter\n")
	for _, st := range []State{StateDone, StateCanceled, StateFailed} {
		fmt.Fprintf(w, "cohesion_serve_jobs_total{state=%q} %d\n", string(st), m.byState[st])
	}

	fmt.Fprintf(w, "# TYPE cohesion_serve_sim_events_total counter\n")
	fmt.Fprintf(w, "cohesion_serve_sim_events_total %d\n", m.simEvents)
	fmt.Fprintf(w, "cohesion_serve_sim_cycles_total %d\n", m.simCycles)
	if secs := uptime.Seconds(); secs > 0 {
		fmt.Fprintf(w, "cohesion_serve_sim_events_per_second %.1f\n", float64(m.simEvents)/secs)
	}

	kernels := make([]string, 0, len(m.latencyMS))
	for k := range m.latencyMS {
		kernels = append(kernels, k)
	}
	sort.Strings(kernels)
	if len(kernels) > 0 {
		fmt.Fprintf(w, "# TYPE cohesion_serve_job_latency_ms histogram\n")
	}
	for _, k := range kernels {
		m.latencyMS[k].WriteProm(w, "cohesion_serve_job_latency_ms", fmt.Sprintf("kernel=%q", k))
	}
}
