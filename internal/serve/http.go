package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"
)

// Handler returns the service's HTTP API:
//
//	POST   /v1/jobs             submit a job (202; 400 named fields; 429 saturated; 503 draining)
//	GET    /v1/jobs             list jobs
//	GET    /v1/jobs/{id}        job status
//	GET    /v1/jobs/{id}/result result of a finished job (409 while unfinished)
//	DELETE /v1/jobs/{id}        cancel (queued: immediate; running: cooperative)
//	GET    /healthz             liveness (503 while draining)
//	GET    /metrics             Prometheus text exposition
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

// errorBody is the JSON shape of every non-2xx response.
type errorBody struct {
	Error  string       `json:"error"`
	State  State        `json:"state,omitempty"`
	Fields []FieldError `json:"fields,omitempty"`

	// RetryAfterMS accompanies 429s, mirroring the Retry-After header for
	// clients that do not read headers.
	RetryAfterMS int64 `json:"retry_after_ms,omitempty"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	spec, err := DecodeSpec(r.Body)
	if err != nil {
		var se *SpecError
		if errors.As(err, &se) {
			writeJSON(w, http.StatusBadRequest, errorBody{Error: "invalid job spec", Fields: se.Fields})
			return
		}
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}
	id, err := s.Submit(spec)
	switch {
	case errors.Is(err, ErrSaturated):
		// Load shedding, not queuing: the client owns the retry.
		retry := s.opt.RetryAfter
		w.Header().Set("Retry-After", fmt.Sprintf("%d", int(retry.Seconds()+0.999)))
		writeJSON(w, http.StatusTooManyRequests, errorBody{
			Error:        "queue full",
			RetryAfterMS: retry.Milliseconds(),
		})
		return
	case errors.Is(err, ErrDraining):
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: "server is draining"})
		return
	case err != nil:
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]any{"id": id, "state": StateQueued})
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"jobs": s.Jobs()})
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	v, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "no such job"})
		return
	}
	writeJSON(w, http.StatusOK, v)
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	v, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "no such job"})
		return
	}
	if !v.State.Terminal() {
		writeJSON(w, http.StatusConflict, errorBody{Error: "job not finished", State: v.State})
		return
	}
	// Terminal states all answer 200: done with the full outcome,
	// canceled/failed with the partial outcome (when one was salvaged)
	// and the error — the partial-result shape clients poll for after a
	// cancellation.
	writeJSON(w, http.StatusOK, map[string]any{
		"id":      v.ID,
		"state":   v.State,
		"outcome": v.Outcome,
		"error":   v.Error,
	})
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	v, ok := s.Cancel(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "no such job"})
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]any{"id": v.ID, "state": v.State})
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok"})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.metrics.WriteProm(w,
		s.runner.QueueLen(), s.runner.Cap(), s.runner.InFlight(), s.opt.Workers,
		time.Since(s.started))
}
