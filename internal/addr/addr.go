// Package addr defines the single 32-bit address space shared by every core
// in the simulated machine, along with line/word arithmetic helpers.
//
// Following the paper (§3.5) there is one application and physical addresses
// equal virtual addresses. The runtime lays out segments as follows:
//
//	0x0000_1000  code segment                (coarse-grain SWcc region)
//	0x1000_0000  immutable globals/constants (coarse-grain SWcc region)
//	0x2000_0000  coherent heap               (always HWcc; libc-style malloc)
//	0x4000_0000  incoherent heap             (Cohesion-managed; coh_malloc)
//	0x7000_0000  per-core stacks             (coarse-grain SWcc region)
//	0xF000_0000  fine-grain region table     (16 MB bitmap, 1 bit / 32 B line)
package addr

import "fmt"

// Fundamental geometry of the memory system (paper Table 3: 32-byte lines;
// the Rigel ISA is 32-bit, so words are 4 bytes).
const (
	WordBytes    = 4
	LineBytes    = 32
	WordsPerLine = LineBytes / WordBytes

	LineShift = 5 // log2(LineBytes)
	WordShift = 2 // log2(WordBytes)
)

// Segment base addresses. See the package comment for the map.
const (
	CodeBase    Addr = 0x0000_1000
	GlobalBase  Addr = 0x1000_0000
	HeapBase    Addr = 0x2000_0000
	CohHeapBase Addr = 0x4000_0000
	StackBase   Addr = 0x7000_0000
	TableBase   Addr = 0xF000_0000

	// TableBytes is the size of the fine-grain region table: one bit per
	// 32-byte line over a 4 GB address space = 16 MB (paper §3.4).
	TableBytes = 1 << 24
)

// Addr is a byte address in the single 32-bit address space. It is stored
// in a uint64 so table-offset arithmetic cannot overflow, but valid
// addresses always fit in 32 bits.
type Addr uint64

// Line identifies a 32-byte cache line (Addr >> LineShift).
type Line uint64

// LineOf returns the cache line containing a.
func LineOf(a Addr) Line { return Line(a >> LineShift) }

// Base returns the address of the first byte of the line.
func (l Line) Base() Addr { return Addr(l) << LineShift }

// WordIndex returns the index (0..7) of the word containing a within its line.
func WordIndex(a Addr) uint { return uint(a>>WordShift) & (WordsPerLine - 1) }

// WordAlign rounds a down to a word boundary.
func WordAlign(a Addr) Addr { return a &^ (WordBytes - 1) }

// LineAlign rounds a down to a line boundary.
func LineAlign(a Addr) Addr { return a &^ (LineBytes - 1) }

// LineAlignUp rounds a up to a line boundary.
func LineAlignUp(a Addr) Addr { return (a + LineBytes - 1) &^ (LineBytes - 1) }

// LinesCovering returns the lines overlapping [a, a+size).
func LinesCovering(a Addr, size uint64) []Line {
	if size == 0 {
		return nil
	}
	first := LineOf(a)
	last := LineOf(a + Addr(size) - 1)
	lines := make([]Line, 0, last-first+1)
	for l := first; l <= last; l++ {
		lines = append(lines, l)
	}
	return lines
}

// Class categorizes an address by segment, for the directory-occupancy
// breakdown of Figure 9c (code / stack / heap+global).
type Class uint8

const (
	ClassCode Class = iota
	ClassHeapGlobal
	ClassStack
	ClassTable
	numClasses
)

// NumClasses is the number of address classes.
const NumClasses = int(numClasses)

func (c Class) String() string {
	switch c {
	case ClassCode:
		return "code"
	case ClassHeapGlobal:
		return "heap/global"
	case ClassStack:
		return "stack"
	case ClassTable:
		return "table"
	}
	return fmt.Sprintf("Class(%d)", uint8(c))
}

// Classify maps an address to its Figure-9c class. Globals are grouped with
// the heap, as in the paper ("heap allocations and static global data").
func Classify(a Addr) Class {
	switch {
	case a >= TableBase:
		return ClassTable
	case a >= StackBase:
		return ClassStack
	case a >= GlobalBase:
		return ClassHeapGlobal
	default:
		return ClassCode
	}
}

// Range is a half-open address interval [Base, Base+Size).
type Range struct {
	Base Addr
	Size uint64
}

// Contains reports whether a falls inside the range.
func (r Range) Contains(a Addr) bool {
	return a >= r.Base && a < r.Base+Addr(r.Size)
}

// End returns the first address past the range.
func (r Range) End() Addr { return r.Base + Addr(r.Size) }

// Overlaps reports whether two ranges share any byte.
func (r Range) Overlaps(o Range) bool {
	return r.Base < o.End() && o.Base < r.End()
}

func (r Range) String() string {
	return fmt.Sprintf("[%#x,%#x)", uint64(r.Base), uint64(r.End()))
}
