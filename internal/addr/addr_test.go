package addr

import (
	"testing"
	"testing/quick"
)

func TestLineArithmetic(t *testing.T) {
	a := Addr(0x1234)
	l := LineOf(a)
	if l.Base() != 0x1220 {
		t.Fatalf("Base = %#x, want 0x1220", uint64(l.Base()))
	}
	if LineAlign(a) != 0x1220 {
		t.Fatalf("LineAlign = %#x", uint64(LineAlign(a)))
	}
	if LineAlignUp(a) != 0x1240 {
		t.Fatalf("LineAlignUp = %#x", uint64(LineAlignUp(a)))
	}
	if LineAlignUp(0x1220) != 0x1220 {
		t.Fatal("LineAlignUp not idempotent on aligned address")
	}
	if WordIndex(0x1234) != 5 {
		t.Fatalf("WordIndex(0x1234) = %d, want 5", WordIndex(0x1234))
	}
	if WordAlign(0x1237) != 0x1234 {
		t.Fatalf("WordAlign = %#x", uint64(WordAlign(0x1237)))
	}
}

func TestLinesCovering(t *testing.T) {
	if got := LinesCovering(0x100, 0); got != nil {
		t.Fatalf("zero size: %v", got)
	}
	got := LinesCovering(0x10, 0x30) // spans [0x10,0x40): lines 0 and 1
	if len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("LinesCovering = %v", got)
	}
	got = LinesCovering(0x20, 32) // exactly line 1
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("LinesCovering aligned = %v", got)
	}
}

func TestClassify(t *testing.T) {
	cases := []struct {
		a Addr
		c Class
	}{
		{CodeBase, ClassCode},
		{CodeBase + 0x100, ClassCode},
		{GlobalBase, ClassHeapGlobal},
		{HeapBase + 4, ClassHeapGlobal},
		{CohHeapBase + 64, ClassHeapGlobal},
		{StackBase, ClassStack},
		{StackBase + 0x1000, ClassStack},
		{TableBase, ClassTable},
		{TableBase + 100, ClassTable},
	}
	for _, c := range cases {
		if got := Classify(c.a); got != c.c {
			t.Errorf("Classify(%#x) = %v, want %v", uint64(c.a), got, c.c)
		}
	}
}

func TestClassString(t *testing.T) {
	for c, want := range map[Class]string{
		ClassCode: "code", ClassHeapGlobal: "heap/global",
		ClassStack: "stack", ClassTable: "table",
	} {
		if c.String() != want {
			t.Errorf("%d.String() = %q, want %q", c, c.String(), want)
		}
	}
	if Class(99).String() != "Class(99)" {
		t.Errorf("unknown class String = %q", Class(99).String())
	}
}

func TestRange(t *testing.T) {
	r := Range{Base: 0x100, Size: 0x40}
	if !r.Contains(0x100) || !r.Contains(0x13f) || r.Contains(0x140) || r.Contains(0xff) {
		t.Fatal("Contains wrong at boundaries")
	}
	if r.End() != 0x140 {
		t.Fatalf("End = %#x", uint64(r.End()))
	}
	if !r.Overlaps(Range{0x13f, 1}) || r.Overlaps(Range{0x140, 8}) || r.Overlaps(Range{0x0, 0x100}) {
		t.Fatal("Overlaps wrong")
	}
	if r.String() != "[0x100,0x140)" {
		t.Fatalf("String = %q", r.String())
	}
}

// Property: every address belongs to the line LineOf reports, word index is
// always in range, and alignment helpers are consistent.
func TestQuickLineProperties(t *testing.T) {
	f := func(raw uint32) bool {
		a := Addr(raw)
		l := LineOf(a)
		if a < l.Base() || a >= l.Base()+LineBytes {
			return false
		}
		if WordIndex(a) >= WordsPerLine {
			return false
		}
		if LineOf(LineAlign(a)) != l || LineAlign(a) != l.Base() {
			return false
		}
		up := LineAlignUp(a)
		if up < a || up-a >= LineBytes {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: LinesCovering covers exactly the bytes of the range.
func TestQuickLinesCovering(t *testing.T) {
	f := func(raw uint32, sz uint16) bool {
		a, size := Addr(raw), uint64(sz)
		lines := LinesCovering(a, size)
		if size == 0 {
			return lines == nil
		}
		// Contiguity and coverage.
		if lines[0] != LineOf(a) || lines[len(lines)-1] != LineOf(a+Addr(size)-1) {
			return false
		}
		for i := 1; i < len(lines); i++ {
			if lines[i] != lines[i-1]+1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
