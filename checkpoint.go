package cohesion

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"sort"
	"strings"

	"cohesion/internal/snapshot"
	"cohesion/internal/stats"
)

// RunSpec is the serializable description of one simulation — everything
// needed to rebuild the identical machine and workload. It is recorded
// in every run snapshot so a resume can reconstruct the run without the
// original command line.
type RunSpec struct {
	Machine   MachineConfig `json:"machine"`
	Kernel    string        `json:"kernel"`
	Scale     int           `json:"scale"`
	Seed      int64         `json:"seed"`
	Workers   int           `json:"workers"`
	Verify    bool          `json:"verify"`
	MaxCycles uint64        `json:"max_cycles,omitempty"`
}

// specOf extracts the reproducible subset of a RunConfig (limits and
// observability attachments are per-process choices, not run identity).
func specOf(rc RunConfig) RunSpec {
	return RunSpec{
		Machine:   rc.Machine,
		Kernel:    rc.Kernel,
		Scale:     rc.Scale,
		Seed:      rc.Seed,
		Workers:   rc.Workers,
		Verify:    rc.Verify,
		MaxCycles: rc.MaxCycles,
	}
}

// runConfig rebuilds a RunConfig from the spec.
func (s RunSpec) runConfig() RunConfig {
	return RunConfig{
		Machine:   s.Machine,
		Kernel:    s.Kernel,
		Scale:     s.Scale,
		Seed:      s.Seed,
		Workers:   s.Workers,
		Verify:    s.Verify,
		MaxCycles: s.MaxCycles,
	}
}

// RunSnapshot is the payload of a KindRun snapshot file: the run's spec,
// the exact executed-event count of the capture, and the complete
// serialized machine state with its per-layer digest vector.
//
// Resume follows the verified-deterministic-replay contract (see the
// internal/snapshot package doc): the event queue holds closures and
// core programs are goroutines parked in their next operation, so
// continuations are not serialized. Instead ResumeRun rebuilds the
// machine from Spec, replays deterministically to Events, verifies every
// layer digest against State, and only then continues — so a resumed run
// is provably bit-identical to an uninterrupted one, and any divergence
// is caught at the resume point and named by layer.
type RunSnapshot struct {
	Spec   RunSpec                `json:"spec"`
	Events uint64                 `json:"events"`
	Cycle  uint64                 `json:"cycle"`
	State  *snapshot.MachineState `json:"state"`
}

// CheckpointConfig asks RunWithCheckpoints to persist snapshots.
type CheckpointConfig struct {
	// Path is the snapshot file (written atomically: staged in
	// Path+".tmp", fsynced, renamed).
	Path string
	// Every, when non-zero, writes a checkpoint at each multiple of this
	// many executed events (deterministic). Independent of Every, a
	// lifecycle stop (event/cycle budget, cancellation) always writes a
	// final checkpoint at the stop point.
	Every uint64
}

// RunWithCheckpoints is RunCtx plus crash-safe snapshots: periodic ones
// on the deterministic CheckpointEvery schedule, and one at any budget
// or cancellation stop, each written atomically to ck.Path. A process
// killed mid-run (even mid-write) leaves a resumable snapshot behind for
// ResumeRun.
func RunWithCheckpoints(ctx context.Context, rc RunConfig, ck CheckpointConfig) (*Result, error) {
	if ck.Path == "" {
		return nil, fmt.Errorf("cohesion: checkpointing requires a snapshot path")
	}
	rc.Limits.CheckpointEvery = ck.Every
	p, err := prepareRun(rc)
	if err != nil {
		return nil, err
	}
	spec := specOf(rc)
	p.m.SetCheckpointFunc(func(events, cycle uint64) error {
		snap := RunSnapshot{Spec: spec, Events: events, Cycle: cycle, State: p.m.CaptureState()}
		return snapshot.WriteAtomic(ck.Path, snapshot.KindRun, events, snap)
	})
	return p.run(ctx)
}

// ErrDiverged reports a resumed run whose replayed state did not match
// the state recorded in its snapshot; match with errors.Is. The full
// error is a *DivergenceError naming the differing layers.
var ErrDiverged = snapshot.ErrDiverged

// DivergenceError reports that a resumed run failed its digest
// self-verification: the replayed machine state at the snapshot's event
// count does not match the recorded one. It wraps snapshot.ErrDiverged.
type DivergenceError struct {
	// Events is the snapshot's executed-event count (the verification
	// point), or the replay's final event count when the replay ended
	// before ever reaching the snapshot point.
	Events uint64
	// Layers names the digest layers that differ (empty when the replay
	// ended early instead).
	Layers []string
	// Path is the snapshot file the resume loaded.
	Path string
}

func (e *DivergenceError) Error() string {
	if len(e.Layers) == 0 {
		return fmt.Sprintf("%v: replay of %s ended at event %d before reaching the snapshot point",
			snapshot.ErrDiverged, e.Path, e.Events)
	}
	return fmt.Sprintf("%v: %s at event %d: layers %s",
		snapshot.ErrDiverged, e.Path, e.Events, strings.Join(e.Layers, ", "))
}

func (e *DivergenceError) Unwrap() error { return snapshot.ErrDiverged }

// ResumeOptions adjusts a resumed run. The zero value resumes to
// completion with no further checkpoints.
type ResumeOptions struct {
	// Every continues periodic checkpointing (to the same path) after
	// the resume point. 0 = only checkpoint again on a lifecycle stop.
	Every uint64
	// Limits bounds the resumed run. A MaxEvents at or below the
	// snapshot's event count is rejected (the run would end before the
	// resume point).
	Limits RunLimits
	// Coverage and Metrics re-attach live observability instruments.
	Coverage *Coverage
	Metrics  bool
}

// ResumeInfo describes what a resume actually did.
type ResumeInfo struct {
	Source string // snapshot file used (path or its .tmp after a torn write)
	Events uint64 // snapshot's executed-event count (the verified resume point)
	Cycle  uint64 // snapshot's cycle
}

// ResumeRun continues a checkpointed run from its latest valid snapshot
// (recovering from a torn last write automatically) and returns the
// completed run's Result, bit-identical to an uninterrupted run. The
// machine is rebuilt from the recorded spec and replayed to the
// snapshot's exact event count, where every layer digest is verified
// against the recorded state; a mismatch aborts with a *DivergenceError
// (errors.Is(err, snapshot.ErrDiverged)) rather than continuing from
// state that cannot be trusted.
func ResumeRun(ctx context.Context, path string, opt ResumeOptions) (*Result, *ResumeInfo, error) {
	var snap RunSnapshot
	env, src, err := snapshot.LoadRecover(path, snapshot.KindRun, &snap)
	if err != nil {
		return nil, nil, err
	}
	if snap.State == nil || snap.Events == 0 || snap.Events != env.Seq {
		return nil, nil, fmt.Errorf("snapshot file %s: inconsistent run snapshot (events=%d seq=%d)", src, snap.Events, env.Seq)
	}
	info := &ResumeInfo{Source: src, Events: snap.Events, Cycle: snap.Cycle}

	if max := opt.Limits.MaxEvents; max != 0 && max <= snap.Events {
		return nil, info, fmt.Errorf("cohesion: resume event budget %d is not past the snapshot's %d events", max, snap.Events)
	}
	rc := snap.Spec.runConfig()
	rc.Limits = opt.Limits
	rc.Limits.CheckpointEvery = opt.Every
	rc.Limits.CheckpointAt = append(rc.Limits.CheckpointAt, snap.Events)
	rc.Coverage = opt.Coverage
	rc.Metrics = opt.Metrics

	p, err := prepareRun(rc)
	if err != nil {
		return nil, info, err
	}
	verified := false
	var diverged *DivergenceError
	p.m.SetCheckpointFunc(func(events, cycle uint64) error {
		if events == snap.Events {
			d := p.m.Digests()
			if testDigestPerturb != nil {
				testDigestPerturb(&d)
			}
			if diff := d.Diff(snap.State.Digests); len(diff) > 0 {
				diverged = &DivergenceError{Events: snap.Events, Layers: diff, Path: src}
				return diverged
			}
			verified = true
			return nil
		}
		if !verified || events < snap.Events {
			return nil // not yet at the resume point; nothing worth persisting
		}
		next := RunSnapshot{Spec: snap.Spec, Events: events, Cycle: cycle, State: p.m.CaptureState()}
		return snapshot.WriteAtomic(path, snapshot.KindRun, events, next)
	})
	res, err := p.run(ctx)
	if diverged != nil {
		return nil, info, diverged
	}
	if err == nil && !verified {
		// The replay reached quiescence before the snapshot's event count:
		// the event sequence itself diverged.
		return nil, info, &DivergenceError{Events: p.m.Q.Fired(), Path: src}
	}
	return res, info, err
}

// testDigestPerturb, when set by a test, corrupts the replayed digest
// vector before the resume verification — exercising the divergence path
// without needing real nondeterminism.
var testDigestPerturb func(*snapshot.Digests)

// SelfCheckReport is the outcome of one SelfCheckResume harness run.
type SelfCheckReport struct {
	TotalEvents uint64   // straight-through run length in events
	Depths      []uint64 // checkpoint depths exercised
	Resumed     int      // depths that resumed and matched bit-for-bit

	// Set when a divergence was found:
	Diverged       bool
	DivergentDepth uint64   // checkpoint depth that exposed it
	FirstEvent     uint64   // first divergent event (bisected), 0 if bisect failed
	Layers         []string // digest layers differing at FirstEvent
	DumpA, DumpB   string   // diagnostic MachineState snapshot files
}

// SelfCheckResume is the resume-divergence self-check harness: it runs
// rc straight through, then for each of n interior checkpoint depths it
// interrupts a fresh run at that event count (writing a snapshot),
// resumes from the snapshot, and compares the final memory fingerprint,
// cumulative stats, and edge-coverage set against the straight-through
// run. On any mismatch it bisects to the first event at which two
// independent replays disagree, dumps both diagnostic machine states
// under dir, and reports the divergence (errors.Is(err,
// snapshot.ErrDiverged)). Snapshot and dump files are written under dir.
func SelfCheckResume(ctx context.Context, rc RunConfig, n int, dir string) (*SelfCheckReport, error) {
	if n < 1 {
		n = 3
	}
	rc.Limits = RunLimits{}
	refCov := NewCoverage()
	refRC := rc
	refRC.Coverage = refCov
	ref, err := RunCtx(ctx, refRC)
	if err != nil {
		return nil, fmt.Errorf("cohesion: self-check straight-through run: %w", err)
	}
	report := &SelfCheckReport{TotalEvents: ref.Stats.Events}
	refStats := ref.Stats.Digest()
	refEdges := refCov.CountsByName()

	for i := 1; i <= n; i++ {
		d := ref.Stats.Events * uint64(i) / uint64(n+1)
		if d == 0 || (len(report.Depths) > 0 && report.Depths[len(report.Depths)-1] == d) {
			continue
		}
		report.Depths = append(report.Depths, d)

		ckptPath := filepath.Join(dir, fmt.Sprintf("selfcheck-%s-%d.ckpt", rc.Kernel, d))
		interrupted := rc
		interrupted.Limits = RunLimits{MaxEvents: d}
		if _, err := RunWithCheckpoints(ctx, interrupted, CheckpointConfig{Path: ckptPath}); !errors.Is(err, ErrBudgetExhausted) {
			return report, fmt.Errorf("cohesion: self-check interrupt at %d events: %v", d, err)
		}

		cov := NewCoverage()
		res, _, err := ResumeRun(ctx, ckptPath, ResumeOptions{Coverage: cov})
		if err != nil {
			if errors.Is(err, snapshot.ErrDiverged) {
				return report, report.diagnose(ctx, rc, d, dir, err)
			}
			return report, fmt.Errorf("cohesion: self-check resume from %d events: %w", d, err)
		}

		var mismatch []string
		if res.MemFingerprint != ref.MemFingerprint {
			mismatch = append(mismatch, fmt.Sprintf("memory fingerprint %#x vs %#x", res.MemFingerprint, ref.MemFingerprint))
		}
		if got := res.Stats.Digest(); got != refStats {
			mismatch = append(mismatch, fmt.Sprintf("stats digest %#x vs %#x", got, refStats))
		}
		if diff := edgeSetDiff(cov.CountsByName(), refEdges); diff != "" {
			mismatch = append(mismatch, "edge coverage: "+diff)
		}
		if len(mismatch) > 0 {
			return report, report.diagnose(ctx, rc, d, dir,
				fmt.Errorf("%w: resumed run differs from straight-through: %s", snapshot.ErrDiverged, strings.Join(mismatch, "; ")))
		}
		report.Resumed++
	}
	return report, nil
}

// diagnose bisects to the first event at which two independent replays
// disagree and dumps both machine states for post-mortem comparison.
func (r *SelfCheckReport) diagnose(ctx context.Context, rc RunConfig, depth uint64, dir string, cause error) error {
	r.Diverged = true
	r.DivergentDepth = depth

	capture := func(replay int, at uint64) (*snapshot.MachineState, error) {
		probe := rc
		probe.Limits = RunLimits{MaxEvents: at}
		p, err := prepareRun(probe)
		if err != nil {
			return nil, err
		}
		if err := p.m.SimulateCtx(ctx, probe.MaxCycles, probe.Limits); err != nil && !errors.Is(err, ErrBudgetExhausted) {
			return nil, err
		}
		st := p.m.CaptureState()
		if testReplayPerturb != nil {
			testReplayPerturb(replay, st)
		}
		return st, nil
	}
	var lastA, lastB *snapshot.MachineState
	first, err := snapshot.Bisect(0, r.TotalEvents, func(at uint64) (bool, error) {
		a, err := capture(0, at)
		if err != nil {
			return false, err
		}
		b, err := capture(1, at)
		if err != nil {
			return false, err
		}
		if diff := a.Digests.Diff(b.Digests); len(diff) > 0 {
			lastA, lastB = a, b
			return false, nil
		}
		return true, nil
	})
	if err != nil || lastA == nil {
		// Replays agree everywhere (or bisect itself failed): the
		// divergence is between replay and snapshot content, not between
		// replays; report the original cause without a bisected event.
		return cause
	}
	r.FirstEvent = first
	r.Layers = lastA.Digests.Diff(lastB.Digests)

	// Re-capture both states at the first divergent event and dump them.
	a, errA := capture(0, first)
	b, errB := capture(1, first)
	if errA == nil && errB == nil {
		r.DumpA = filepath.Join(dir, fmt.Sprintf("diverge-%s-%d-a.json", rc.Kernel, first))
		r.DumpB = filepath.Join(dir, fmt.Sprintf("diverge-%s-%d-b.json", rc.Kernel, first))
		_ = snapshot.WriteAtomic(r.DumpA, snapshot.KindRun, first, a)
		_ = snapshot.WriteAtomic(r.DumpB, snapshot.KindRun, first, b)
	}
	return fmt.Errorf("%w; first divergent event %d (layers %s), states dumped to %s / %s",
		cause, first, strings.Join(r.Layers, ", "), r.DumpA, r.DumpB)
}

// testReplayPerturb, when set by a test, corrupts one replay's captured
// state during bisection — exercising the bisect-and-dump path.
var testReplayPerturb func(replay int, st *snapshot.MachineState)

// edgeSetDiff compares two coverage maps, returning "" when identical.
func edgeSetDiff(got, want map[string]uint64) string {
	var names []string
	for n := range got {
		names = append(names, n)
	}
	for n := range want {
		if _, ok := got[n]; !ok {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	var diffs []string
	for _, n := range names {
		if got[n] != want[n] {
			diffs = append(diffs, fmt.Sprintf("%s %d vs %d", n, got[n], want[n]))
		}
	}
	return strings.Join(diffs, ", ")
}

// statsDigestOf exposes the stats digest for table-level comparisons in
// the CLIs (avoids exporting internal/stats further).
func statsDigestOf(r *stats.Run) uint64 { return r.Digest() }
