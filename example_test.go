package cohesion_test

import (
	"fmt"

	"cohesion"
)

// ExampleRun simulates one benchmark kernel under the hybrid memory model
// and verifies its numeric output against the golden reference.
func ExampleRun() {
	res, err := cohesion.Run(cohesion.RunConfig{
		Machine: cohesion.ScaledConfig(2).WithMode(cohesion.Cohesion),
		Kernel:  "heat",
		Scale:   1,
		Seed:    42,
		Verify:  true,
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(res.Kernel, res.Mode, res.TotalMessages() > 0, res.Cycles() > 0)
	// Output: heat Cohesion true true
}

// ExampleNewSystem programs directly against the memory model: software-
// coherent writes, an explicit flush, and a Table 2 domain transition.
func ExampleNewSystem() {
	sys, err := cohesion.NewSystem(cohesion.ScaledConfig(2).WithMode(cohesion.Cohesion), 1)
	if err != nil {
		fmt.Println(err)
		return
	}
	rt := sys.Runtime()
	buf := rt.CohMalloc(64) // incoherent heap: starts in the SWcc domain
	var readBack uint32
	sys.Spawn(0, 1024, func(x *cohesion.Ctx) {
		x.Store(buf, 42)         // SWcc write: no directory involvement
		x.FlushRange(buf, 4)     // explicit writeback
		x.CohHWccRegion(buf, 64) // migrate the lines to hardware coherence
		readBack = x.Load(buf)   // now an ordinary coherent load
	})
	if err := sys.Simulate(); err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(readBack, sys.Stats().TransitionsToHW)
	// Output: 42 2
}

// ExampleAreaEstimates reproduces the paper's §4.4 directory storage
// accounting for the Table 3 machine.
func ExampleAreaEstimates() {
	for _, e := range cohesion.AreaEstimates()[:2] {
		fmt.Println(e)
	}
	// Output:
	// sparse full-map              146 bits x  524288 entries =    9.125 MB (114.1% of L2)
	// Dir4B sparse                  46 bits x  524288 entries =    2.875 MB ( 35.9% of L2)
}

// ExampleKernelNames lists the paper's eight benchmark kernels.
func ExampleKernelNames() {
	fmt.Println(cohesion.KernelNames())
	// Output: [cg dmm gjk heat kmeans mri sobel stencil]
}
