package cohesion

import (
	"errors"
	"fmt"
	"path/filepath"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"

	"cohesion/internal/simerr"
)

// TestSweepCheckpointResumesOnlyFailedCells is the degraded-sweep resume
// acceptance check: a sweep in which one cell fails records every other
// cell to the checkpoint, and the resumed sweep re-runs ONLY the failed
// cell — every cached cell is served from disk and the final table is
// bit-identical to a clean uninterrupted sweep.
func TestSweepCheckpointResumesOnlyFailedCells(t *testing.T) {
	defer func() { runForTest = nil }()
	path := filepath.Join(t.TempDir(), "sweep.ckpt")
	p := ExpParams{Kernels: []string{"heat", "fft", "sobel"}, Parallel: 4}

	// Reference: a clean sweep with no checkpoint at all.
	runForTest = func(job runJob, _ ExpParams) (*Result, error) {
		return fakeCellResult(job.kernel, job.name), nil
	}
	clean, err := Fig8(p)
	if err != nil {
		t.Fatalf("clean sweep failed: %v", err)
	}

	// Pass 1: same sweep, checkpointed, with one cell failing on budget.
	var firstCalls atomic.Int64
	runForTest = func(job runJob, _ ExpParams) (*Result, error) {
		firstCalls.Add(1)
		if job.kernel == "fft" && job.name == "Cohesion" {
			return nil, fmt.Errorf("%s/%s: %w", job.kernel, job.name, simerr.ErrBudgetExhausted)
		}
		return fakeCellResult(job.kernel, job.name), nil
	}
	ck, err := OpenSweepCheckpoint(path, p, false)
	if err != nil {
		t.Fatalf("OpenSweepCheckpoint: %v", err)
	}
	p.Checkpoint = ck
	if _, err := Fig8(p); !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("degraded sweep error = %v, want ErrBudgetExhausted", err)
	}
	total := int(firstCalls.Load())
	if ck.Cells() != total-1 {
		t.Fatalf("checkpoint holds %d cells after %d runs with 1 failure", ck.Cells(), total)
	}

	// Pass 2: resume. Only the failed cell may reach the runner.
	var resumeCalls atomic.Int64
	var resumedCell string
	runForTest = func(job runJob, _ ExpParams) (*Result, error) {
		resumeCalls.Add(1)
		resumedCell = job.kernel + "/" + job.name
		return fakeCellResult(job.kernel, job.name), nil
	}
	ck2, err := OpenSweepCheckpoint(path, p, true)
	if err != nil {
		t.Fatalf("OpenSweepCheckpoint(resume): %v", err)
	}
	if ck2.Cells() != total-1 {
		t.Fatalf("resumed checkpoint holds %d cells, want %d", ck2.Cells(), total-1)
	}
	p.Checkpoint = ck2
	resumed, err := Fig8(p)
	if err != nil {
		t.Fatalf("resumed sweep failed: %v", err)
	}
	if n := resumeCalls.Load(); n != 1 {
		t.Fatalf("resume re-ran %d cells, want only the failed one", n)
	}
	if resumedCell != "fft/Cohesion" {
		t.Fatalf("resume re-ran %s, want fft/Cohesion", resumedCell)
	}
	if ck2.Reused() != total-1 {
		t.Fatalf("resume served %d cells from cache, want %d", ck2.Reused(), total-1)
	}
	if ck2.Cells() != total {
		t.Fatalf("completed resume holds %d cells, want %d", ck2.Cells(), total)
	}
	if !reflect.DeepEqual(clean, resumed) {
		t.Fatalf("resumed sweep table differs from clean run:\nclean   %+v\nresumed %+v", clean, resumed)
	}
}

// TestSweepCheckpointRejectsForeignSpec: resuming against a checkpoint
// written by a sweep with different parameters must fail loudly instead
// of silently serving cells from an incompatible run.
func TestSweepCheckpointRejectsForeignSpec(t *testing.T) {
	defer func() { runForTest = nil }()
	runForTest = func(job runJob, _ ExpParams) (*Result, error) {
		return fakeCellResult(job.kernel, job.name), nil
	}
	path := filepath.Join(t.TempDir(), "sweep.ckpt")
	p := ExpParams{Kernels: []string{"heat"}, Seed: 1, Parallel: 2}
	ck, err := OpenSweepCheckpoint(path, p, false)
	if err != nil {
		t.Fatalf("OpenSweepCheckpoint: %v", err)
	}
	p.Checkpoint = ck
	if _, err := Fig2(p); err != nil {
		t.Fatalf("seed sweep failed: %v", err)
	}

	other := ExpParams{Kernels: []string{"heat"}, Seed: 2, Parallel: 2}
	if _, err := OpenSweepCheckpoint(path, other, true); err == nil ||
		!strings.Contains(err.Error(), "different sweep") {
		t.Fatalf("foreign-spec resume error = %v, want spec-mismatch rejection", err)
	}

	// A missing file is a fresh start, not an error.
	fresh, err := OpenSweepCheckpoint(filepath.Join(t.TempDir(), "none.ckpt"), p, true)
	if err != nil || fresh.Cells() != 0 {
		t.Fatalf("missing-file resume = (%v cells, %v), want empty fresh start", fresh.Cells(), err)
	}
}
