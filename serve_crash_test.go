package cohesion

import (
	"bufio"
	"context"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"strings"
	"testing"
	"time"
)

// The crash test SIGKILLs a live job server mid-batch in a subprocess
// and restarts it on the same state directory: every job — the one that
// finished before the kill, the one that was running, and the ones that
// were still queued — must come out with fingerprints bit-identical to
// uninterrupted reference runs. This is the serving-layer face of the
// resume-or-rerun equivalence the checkpoint layer guarantees.

const (
	crashHelperEnv = "COHESION_SERVE_CRASH_HELPER"
	crashStateEnv  = "COHESION_SERVE_CRASH_STATE"
)

// TestServeCrashHelper is not a test: it is the subprocess body, gated
// on an environment variable, re-executed from the test binary. It runs
// a real job server until the parent kills it.
func TestServeCrashHelper(t *testing.T) {
	if os.Getenv(crashHelperEnv) != "1" {
		t.Skip("subprocess helper")
	}
	err := Serve(context.Background(), ServeOptions{
		Addr:     "127.0.0.1:0",
		StateDir: os.Getenv(crashStateEnv),
		Workers:  1,
		// Frequent checkpoints so the kill lands between two of them.
		CheckpointEvery: 200_000,
		QueueDepth:      8,
		Logf: func(format string, args ...any) {
			fmt.Printf(format+"\n", args...)
		},
	})
	// Serve only returns on failure here (the parent SIGKILLs us).
	fmt.Printf("serve exited: %v\n", err)
	os.Exit(1)
}

// startCrashHelper launches the helper subprocess and waits for its
// "listening on" line, returning the process and the base URL.
func startCrashHelper(t *testing.T, stateDir string) (*exec.Cmd, string) {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run=TestServeCrashHelper$", "-test.v")
	cmd.Env = append(os.Environ(), crashHelperEnv+"=1", crashStateEnv+"="+stateDir)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatalf("starting helper: %v", err)
	}
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			if rest, ok := strings.CutPrefix(line, "listening on "); ok {
				addrCh <- strings.TrimSpace(rest)
			}
		}
	}()
	select {
	case addr := <-addrCh:
		return cmd, "http://" + addr
	case <-time.After(30 * time.Second):
		_ = cmd.Process.Kill()
		t.Fatal("helper never reported its listen address")
		return nil, ""
	}
}

func TestServeCrashRestartBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess crash test")
	}
	golden := loadGoldenFingerprints(t)
	stateDir := t.TempDir()

	// Uninterrupted reference for the long job (no golden entry at this
	// scale); the short jobs are covered by the golden matrix.
	longSpec := JobSpec{Kernel: "dmm", Mode: "cohesion", Clusters: 2, Scale: 12, Seed: 42}
	refRes, err := Run(RunConfig{
		Machine: ScaledConfig(longSpec.Clusters).WithMode(Cohesion),
		Kernel:  longSpec.Kernel,
		Scale:   longSpec.Scale,
		Seed:    longSpec.Seed,
	})
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}
	refLong := fmt.Sprintf("%#016x", refRes.MemFingerprint)

	// Phase A: a live server takes a batch.
	cmdA, base := startCrashHelper(t, stateDir)
	c := &serveTestClient{t: t, base: base}

	// One job finishes cleanly before the crash...
	doneID, resp := c.submit(JobSpec{Kernel: "heat", Mode: "swcc", Clusters: 2, Scale: 1, Seed: 42, Verify: true})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit pre-crash job: %d", resp.StatusCode)
	}
	if st := c.waitTerminal(doneID, 120*time.Second); st != "done" {
		t.Fatalf("pre-crash job state = %s", st)
	}
	preCrash, _ := c.result(doneID)

	// ...one is running when the kill lands...
	longID, resp := c.submit(longSpec)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit long job: %d", resp.StatusCode)
	}
	for st, _ := c.jobState(longID); st != "running"; st, _ = c.jobState(longID) {
		time.Sleep(2 * time.Millisecond)
	}

	// ...and two are still queued behind the single worker.
	q1, resp1 := c.submit(JobSpec{Kernel: "stencil", Mode: "hwcc", Clusters: 2, Scale: 1, Seed: 42, Verify: true})
	q2, resp2 := c.submit(JobSpec{Kernel: "cg", Mode: "cohesion", Clusters: 2, Scale: 1, Seed: 42, Verify: true})
	if resp1.StatusCode != http.StatusAccepted || resp2.StatusCode != http.StatusAccepted {
		t.Fatalf("queued submissions: %d, %d", resp1.StatusCode, resp2.StatusCode)
	}

	// Give the running job time to write a few checkpoints, then SIGKILL:
	// no drain, no goodbye, exactly what a OOM-kill or power cut does.
	time.Sleep(1 * time.Second)
	if err := cmdA.Process.Kill(); err != nil {
		t.Fatalf("killing helper: %v", err)
	}
	_ = cmdA.Wait()

	// Phase B: restart on the same state dir; everything unfinished must
	// complete with bit-identical results.
	cmdB, base := startCrashHelper(t, stateDir)
	defer func() {
		_ = cmdB.Process.Kill()
		_ = cmdB.Wait()
	}()
	c = &serveTestClient{t: t, base: base}

	// The finished job's record survived untouched.
	rb, code := c.result(doneID)
	if code != http.StatusOK || rb.State != "done" {
		t.Fatalf("pre-crash done job after restart: code %d, %+v", code, rb)
	}
	if rb.Outcome == nil || preCrash.Outcome == nil || rb.Outcome.MemFingerprint != preCrash.Outcome.MemFingerprint {
		t.Fatalf("pre-crash outcome changed across restart: %+v vs %+v", rb.Outcome, preCrash.Outcome)
	}

	// The interrupted and queued jobs run to completion.
	for _, chk := range []struct{ id, want, what string }{
		{longID, refLong, "interrupted dmm/Cohesion"},
		{q1, golden["stencil/HWcc"], "queued stencil/HWcc"},
		{q2, golden["cg/Cohesion"], "queued cg/Cohesion"},
	} {
		if st := c.waitTerminal(chk.id, 240*time.Second); st != "done" {
			rb, _ := c.result(chk.id)
			t.Fatalf("%s after restart: state %s, error %q", chk.what, st, rb.Error)
		}
		rb, _ := c.result(chk.id)
		if rb.Outcome == nil || rb.Outcome.MemFingerprint != chk.want {
			t.Errorf("%s: fingerprint after crash-restart = %+v, want %s (bit-identical to uninterrupted)",
				chk.what, rb.Outcome, chk.want)
		}
		if rb.Outcome != nil && rb.Outcome.Partial {
			t.Errorf("%s: resumed job reported a partial outcome", chk.what)
		}
	}
}
