package cohesion

import (
	"fmt"
	"testing"
)

// The benchmark harness regenerates each of the paper's tables and figures
// once per iteration at a reduced scale, reporting the headline metric of
// each experiment alongside wall-clock cost. Run the cohesion-experiments
// command for full-resolution tables.

func benchParams(kernels ...string) ExpParams {
	return ExpParams{Clusters: 4, Workers: 8, Scale: 2, Kernels: kernels, Seed: 42}
}

// BenchmarkFig2MessageTraffic regenerates Figure 2 (SWcc vs optimistic
// HWcc message counts) and reports the mean HWcc/SWcc message ratio.
func BenchmarkFig2MessageTraffic(b *testing.B) {
	b.ReportAllocs()
	p := benchParams("heat", "kmeans", "stencil")
	for i := 0; i < b.N; i++ {
		rows, err := Fig2(p)
		if err != nil {
			b.Fatal(err)
		}
		var ratio float64
		var n int
		for _, r := range rows {
			if r.Config == "HWcc" {
				ratio += r.Relative
				n++
			}
		}
		b.ReportMetric(ratio/float64(n), "hwcc/swcc-msgs")
	}
}

// BenchmarkFig3FlushEfficiency regenerates Figure 3 (useful SWcc
// coherence instructions vs L2 size) and reports the largest-L2 useful
// invalidation fraction.
func BenchmarkFig3FlushEfficiency(b *testing.B) {
	b.ReportAllocs()
	p := benchParams("heat")
	for i := 0; i < b.N; i++ {
		rows, err := Fig3(p)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[len(rows)-1].UsefulInv, "useful-inv@32K")
	}
}

// BenchmarkFig8MessageTraffic regenerates Figure 8 (four design points)
// and reports the mean Cohesion-relative message count.
func BenchmarkFig8MessageTraffic(b *testing.B) {
	b.ReportAllocs()
	p := benchParams("heat", "kmeans")
	for i := 0; i < b.N; i++ {
		rows, err := Fig8(p)
		if err != nil {
			b.Fatal(err)
		}
		var coh float64
		var n int
		for _, r := range rows {
			if r.Config == "Cohesion" {
				coh += r.Relative
				n++
			}
		}
		b.ReportMetric(coh/float64(n), "cohesion/swcc-msgs")
	}
}

// BenchmarkFig9aDirectorySweepHWcc regenerates Figure 9a and reports the
// worst slowdown at the smallest directory.
func BenchmarkFig9aDirectorySweepHWcc(b *testing.B) {
	b.ReportAllocs()
	p := benchParams("sobel")
	p.Scale = 3
	p.DirSizes = []int{16, 128, 512}
	for i := 0; i < b.N; i++ {
		pts, err := Fig9Sweep(p, HWcc)
		if err != nil {
			b.Fatal(err)
		}
		worst := 0.0
		for _, pt := range pts {
			if pt.Slowdown > worst {
				worst = pt.Slowdown
			}
		}
		b.ReportMetric(worst, "worst-slowdown")
	}
}

// BenchmarkFig9bDirectorySweepCohesion regenerates Figure 9b and reports
// Cohesion's worst slowdown (should stay ~1.0).
func BenchmarkFig9bDirectorySweepCohesion(b *testing.B) {
	b.ReportAllocs()
	p := benchParams("sobel")
	p.Scale = 3
	p.DirSizes = []int{16, 128, 512}
	for i := 0; i < b.N; i++ {
		pts, err := Fig9Sweep(p, Cohesion)
		if err != nil {
			b.Fatal(err)
		}
		worst := 0.0
		for _, pt := range pts {
			if pt.Slowdown > worst {
				worst = pt.Slowdown
			}
		}
		b.ReportMetric(worst, "worst-slowdown")
	}
}

// BenchmarkFig9cOccupancy regenerates Figure 9c and reports the aggregate
// HWcc/Cohesion mean-occupancy ratio (paper: ~2.1x).
func BenchmarkFig9cOccupancy(b *testing.B) {
	b.ReportAllocs()
	p := benchParams("cg", "kmeans", "heat")
	for i := 0; i < b.N; i++ {
		rows, err := Fig9c(p)
		if err != nil {
			b.Fatal(err)
		}
		var hw, coh float64
		for _, r := range rows {
			if r.Config == "HWcc" {
				hw += r.MeanTotal
			} else {
				coh += r.MeanTotal
			}
		}
		b.ReportMetric(hw/coh, "dir-reduction")
	}
}

// BenchmarkFig10Runtime regenerates Figure 10 and reports the mean
// HWcc-real runtime normalized to Cohesion.
func BenchmarkFig10Runtime(b *testing.B) {
	b.ReportAllocs()
	p := benchParams("heat", "sobel")
	for i := 0; i < b.N; i++ {
		rows, err := Fig10(p)
		if err != nil {
			b.Fatal(err)
		}
		var hw float64
		var n int
		for _, r := range rows {
			if r.Config == "HWccReal" {
				hw += r.Normalized
				n++
			}
		}
		b.ReportMetric(hw/float64(n), "hwccreal/cohesion-time")
	}
}

// BenchmarkTableArea regenerates the §4.4 storage estimates.
func BenchmarkTableArea(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows := AreaEstimates()
		b.ReportMetric(rows[0].PercentOfL2, "fullmap-%L2")
	}
}

// BenchmarkKernel measures one simulation per iteration for every kernel
// and memory model (simulated cycles reported as the metric).
func BenchmarkKernel(b *testing.B) {
	b.ReportAllocs()
	for _, kernel := range KernelNames() {
		for _, mode := range []Mode{SWcc, HWcc, Cohesion} {
			kernel, mode := kernel, mode
			b.Run(fmt.Sprintf("%s/%v", kernel, mode), func(b *testing.B) {
				b.ReportAllocs()
				cfg := ScaledConfig(2).WithMode(mode)
				var cycles uint64
				for i := 0; i < b.N; i++ {
					res, err := Run(RunConfig{Machine: cfg, Kernel: kernel, Scale: 1, Seed: 42})
					if err != nil {
						b.Fatal(err)
					}
					cycles = res.Cycles()
				}
				b.ReportMetric(float64(cycles), "sim-cycles")
			})
		}
	}
}

// --- ablation benches for the design choices DESIGN.md calls out ---

// BenchmarkAblationReadRelease compares HWcc with and without read
// releases: without them the directory silts up with stale sharers and
// invalidation probes go to clusters that no longer hold the line.
func BenchmarkAblationReadRelease(b *testing.B) {
	b.ReportAllocs()
	for _, on := range []bool{true, false} {
		on := on
		b.Run(fmt.Sprintf("releases=%v", on), func(b *testing.B) {
			b.ReportAllocs()
			cfg := ScaledConfig(4).WithMode(HWcc)
			cfg.L2Size = 8 << 10
			cfg.L3Size = cfg.L3Banks * (32 << 10)
			cfg.ReadReleases = on
			for i := 0; i < b.N; i++ {
				res, err := Run(RunConfig{Machine: cfg, Kernel: "sobel", Scale: 3, Seed: 42})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.TotalMessages()), "messages")
				b.ReportMetric(float64(res.Stats.ProbesSent), "probes")
			}
		})
	}
}

// BenchmarkAblationCoarseTable compares Cohesion with and without the
// coarse-grain region table: without it, code/stack/immutable lines fall
// through to the fine-grain table and the directory.
func BenchmarkAblationCoarseTable(b *testing.B) {
	b.ReportAllocs()
	for _, on := range []bool{true, false} {
		on := on
		b.Run(fmt.Sprintf("coarse=%v", on), func(b *testing.B) {
			b.ReportAllocs()
			cfg := ScaledConfig(4).WithMode(Cohesion).WithDirectory(DirInfinite, 0, 0)
			cfg.CoarseTable = on
			for i := 0; i < b.N; i++ {
				res, err := Run(RunConfig{Machine: cfg, Kernel: "heat", Scale: 2, Seed: 42})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.Stats.Occupancy.MeanTotal(), "dir-entries")
			}
		})
	}
}

// BenchmarkAblationTableCaching compares fine-grain region-table lookups
// served from the L3 versus always going to DRAM (paper §3.4 considers
// the table "amenable to on-die caching").
func BenchmarkAblationTableCaching(b *testing.B) {
	b.ReportAllocs()
	for _, on := range []bool{true, false} {
		on := on
		b.Run(fmt.Sprintf("cached=%v", on), func(b *testing.B) {
			b.ReportAllocs()
			cfg := ScaledConfig(4).WithMode(Cohesion).WithDirectory(DirInfinite, 0, 0)
			cfg.TableCachedInL3 = on
			for i := 0; i < b.N; i++ {
				res, err := Run(RunConfig{Machine: cfg, Kernel: "stencil", Scale: 2, Seed: 42})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.Cycles()), "sim-cycles")
			}
		})
	}
}

// BenchmarkAblationMSHR varies the cluster's outstanding-miss budget: a
// single MSHR serializes all eight cores' misses.
func BenchmarkAblationMSHR(b *testing.B) {
	b.ReportAllocs()
	for _, mshrs := range []int{1, 2, 4, 16} {
		mshrs := mshrs
		b.Run(fmt.Sprintf("mshrs=%d", mshrs), func(b *testing.B) {
			b.ReportAllocs()
			cfg := ScaledConfig(4).WithMode(Cohesion)
			cfg.L2MSHRs = mshrs
			for i := 0; i < b.N; i++ {
				res, err := Run(RunConfig{Machine: cfg, Kernel: "stencil", Scale: 2, Seed: 42})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.Cycles()), "sim-cycles")
			}
		})
	}
}

// BenchmarkAblationTaskQueue compares the central atomic task queue with
// the distributed per-worker-counter variant on a fine-grained task
// workload (the paper's gjk is bound by task scheduling overhead, §4.5).
// Measured result: at simulated scales the central fetch-and-add queue is
// NOT the bottleneck — its dequeues pipeline through the bank port — and
// the distributed variant's O(workers^2) termination scan costs more than
// the contention it removes. The knob exists to measure that tradeoff.
func BenchmarkAblationTaskQueue(b *testing.B) {
	b.ReportAllocs()
	run := func(b *testing.B, distributed bool) {
		b.ReportAllocs()
		const workers = 16
		for i := 0; i < b.N; i++ {
			sys, err := NewSystem(ScaledConfig(8).WithMode(Cohesion), workers)
			if err != nil {
				b.Fatal(err)
			}
			for w := 0; w < workers; w++ {
				sys.Spawn(w*4, 1024, func(x *Ctx) {
					body := func(task int) { x.Work(20) } // tiny tasks
					if distributed {
						x.ParallelForDistributed(512, body)
					} else {
						x.ParallelFor(512, body)
					}
				})
			}
			if err := sys.Simulate(); err != nil {
				b.Fatal(err)
			}
			st := sys.Stats()
			b.ReportMetric(float64(st.Cycles), "sim-cycles")
			b.ReportMetric(float64(st.Messages[MsgAtomic]), "atomics")
		}
	}
	b.Run("central", func(b *testing.B) { run(b, false) })
	b.Run("distributed", func(b *testing.B) { run(b, true) })
}
