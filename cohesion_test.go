package cohesion

import (
	"strings"
	"testing"
)

// Small parameters keep the shape tests fast while preserving the
// qualitative claims under test.
func tiny(kernels ...string) ExpParams {
	return ExpParams{Clusters: 4, Workers: 8, Scale: 2, Kernels: kernels, Seed: 7}
}

func TestRunVerifiesEveryKernelCohesion(t *testing.T) {
	for _, k := range KernelNames() {
		k := k
		t.Run(k, func(t *testing.T) {
			t.Parallel()
			res, err := Run(RunConfig{
				Machine: ScaledConfig(2).WithMode(Cohesion),
				Kernel:  k,
				Scale:   1,
				Verify:  true,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.Cycles() == 0 || res.TotalMessages() == 0 {
				t.Fatal("empty result")
			}
		})
	}
}

func TestRunRejectsBadConfigs(t *testing.T) {
	if _, err := Run(RunConfig{Machine: ScaledConfig(2), Kernel: "nope"}); err == nil {
		t.Fatal("unknown kernel accepted")
	}
	if _, err := Run(RunConfig{Machine: ScaledConfig(2), Kernel: "heat", Workers: 1000}); err == nil {
		t.Fatal("impossible worker count accepted")
	}
	bad := ScaledConfig(2)
	bad.Clusters = 0
	if _, err := Run(RunConfig{Machine: bad, Kernel: "heat"}); err == nil {
		t.Fatal("invalid machine accepted")
	}
}

func TestFig2Shape(t *testing.T) {
	rows, err := Fig2(tiny("heat", "kmeans"))
	if err != nil {
		t.Fatal(err)
	}
	rel := map[string]map[string]float64{}
	for _, r := range rows {
		if rel[r.Kernel] == nil {
			rel[r.Kernel] = map[string]float64{}
		}
		rel[r.Kernel][r.Config] = r.Relative
	}
	// heat: hardware coherence costs significantly more messages.
	if rel["heat"]["HWcc"] < 1.1 {
		t.Fatalf("heat HWcc relative = %.2f, want > 1.1", rel["heat"]["HWcc"])
	}
	// kmeans: atomics dominate, so the two are close (the paper's
	// exception).
	if r := rel["kmeans"]["HWcc"]; r < 0.8 || r > 1.2 {
		t.Fatalf("kmeans HWcc relative = %.2f, want ~1.0", r)
	}
	// SWcc rows must show flushes and no probe responses; HWcc the reverse.
	for _, r := range rows {
		if r.Config == "SWcc" && r.Counts[MsgProbeResp] != 0 {
			t.Fatal("SWcc produced probe responses")
		}
		if r.Config == "HWcc" && r.Counts[MsgSWFlush] != 0 {
			t.Fatal("HWcc produced software flushes")
		}
	}
}

func TestFig3Shape(t *testing.T) {
	rows, err := Fig3(ExpParams{Clusters: 4, Workers: 8, Scale: 3, Kernels: []string{"heat"}, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("%d rows, want 5 L2 sizes", len(rows))
	}
	// Usefulness must not decrease as the L2 grows, and must span a real
	// range (small caches waste coherence instructions).
	for i := 1; i < len(rows); i++ {
		if rows[i].UsefulInv+0.05 < rows[i-1].UsefulInv {
			t.Fatalf("useful-inv fell from %.3f to %.3f as L2 grew", rows[i-1].UsefulInv, rows[i].UsefulInv)
		}
	}
	if rows[len(rows)-1].UsefulInv <= rows[0].UsefulInv {
		t.Fatalf("useful-inv flat across L2 sizes: %.3f vs %.3f", rows[0].UsefulInv, rows[len(rows)-1].UsefulInv)
	}
	for _, r := range rows {
		if r.UsefulInv < 0 || r.UsefulInv > 1 || r.UsefulWB < 0 || r.UsefulWB > 1 {
			t.Fatalf("fractions out of range: %+v", r)
		}
	}
}

func TestFig8Shape(t *testing.T) {
	rows, err := Fig8(tiny("heat", "kmeans"))
	if err != nil {
		t.Fatal(err)
	}
	rel := map[string]map[string]float64{}
	for _, r := range rows {
		if rel[r.Kernel] == nil {
			rel[r.Kernel] = map[string]float64{}
		}
		rel[r.Kernel][r.Config] = r.Relative
	}
	// Cohesion sits at or below HWcc for heat...
	if rel["heat"]["Cohesion"] > rel["heat"]["HWccIdeal"] {
		t.Fatalf("heat: Cohesion (%.2f) above HWccIdeal (%.2f)", rel["heat"]["Cohesion"], rel["heat"]["HWccIdeal"])
	}
	// ...and kmeans is the one kernel where Cohesion beats SWcc (§4.2).
	if rel["kmeans"]["Cohesion"] >= 1.0 {
		t.Fatalf("kmeans: Cohesion relative = %.2f, want < 1 (the paper's exception)", rel["kmeans"]["Cohesion"])
	}
}

func TestFig9SweepShape(t *testing.T) {
	p := tiny("sobel")
	p.Scale = 3
	p.DirSizes = []int{16, 512}
	hw, err := Fig9Sweep(p, HWcc)
	if err != nil {
		t.Fatal(err)
	}
	coh, err := Fig9Sweep(p, Cohesion)
	if err != nil {
		t.Fatal(err)
	}
	find := func(pts []DirSweepPoint, entries int) float64 {
		for _, pt := range pts {
			if pt.EntriesPerBank == entries {
				return pt.Slowdown
			}
		}
		t.Fatalf("missing sweep point %d", entries)
		return 0
	}
	// HWcc: precipitous falloff at tiny directories (paper Fig 9a).
	if find(hw, 16) < 1.5 {
		t.Fatalf("HWcc slowdown at 16 entries = %.2f, want precipitous", find(hw, 16))
	}
	if find(hw, 16) <= find(hw, 512) {
		t.Fatal("HWcc slowdown not monotone with pressure")
	}
	// Cohesion: robust to directory sizing (paper Fig 9b).
	if s := find(coh, 16); s > 1.25 {
		t.Fatalf("Cohesion slowdown at 16 entries = %.2f, want flat", s)
	}
	if _, err := Fig9Sweep(p, SWcc); err == nil {
		t.Fatal("Fig9Sweep accepted SWcc")
	}
}

func TestFig9cShape(t *testing.T) {
	rows, err := Fig9c(tiny("heat", "cg"))
	if err != nil {
		t.Fatal(err)
	}
	byKC := map[string]OccupancyRow{}
	for _, r := range rows {
		byKC[r.Kernel+"/"+r.Config] = r
	}
	for _, k := range []string{"heat", "cg"} {
		hw, coh := byKC[k+"/HWcc"], byKC[k+"/Cohesion"]
		if hw.MeanTotal <= coh.MeanTotal {
			t.Fatalf("%s: HWcc occupancy (%.0f) not above Cohesion (%.0f)", k, hw.MeanTotal, coh.MeanTotal)
		}
		if hw.MaxTotal < uint64(hw.MeanTotal) {
			t.Fatalf("%s: max below mean", k)
		}
		// Under Cohesion stacks and code live in coarse SWcc regions.
		if coh.MeanStack != 0 || coh.MeanCode != 0 {
			t.Fatalf("%s: Cohesion tracks stack/code lines (%f/%f)", k, coh.MeanStack, coh.MeanCode)
		}
		// Under HWcc the stack is tracked.
		if hw.MeanStack == 0 {
			t.Fatalf("%s: HWcc stack entries missing", k)
		}
	}
}

func TestFig10Shape(t *testing.T) {
	rows, err := Fig10(tiny("heat"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("%d rows, want 6 configurations", len(rows))
	}
	byCfg := map[string]RuntimeRow{}
	for _, r := range rows {
		byCfg[r.Config] = r
	}
	if byCfg["Cohesion"].Normalized != 1.0 {
		t.Fatal("normalization base wrong")
	}
	// Cohesion must be competitive with the optimistic bound (paper: within
	// a few percent for most kernels; allow slack at this tiny scale).
	if n := byCfg["Cohesion"].Cycles; float64(n) > 1.5*float64(byCfg["HWccOpt"].Cycles) {
		t.Fatalf("Cohesion (%d cycles) far above HWccOpt (%d)", n, byCfg["HWccOpt"].Cycles)
	}
	for _, r := range rows {
		if r.Cycles == 0 || r.Normalized <= 0 {
			t.Fatalf("degenerate row %+v", r)
		}
	}
}

func TestAreaEstimates(t *testing.T) {
	rows := AreaEstimates()
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	if !strings.Contains(rows[0].Scheme, "full-map") {
		t.Fatalf("unexpected first scheme %q", rows[0].Scheme)
	}
	// The §4.4 ordering: full-map > Dir4B > one duplicate-tag replica.
	if !(rows[0].Bytes > rows[1].Bytes && rows[1].Bytes > rows[2].Bytes) {
		t.Fatal("area ordering wrong")
	}
}

func TestHeadlineSummary(t *testing.T) {
	s, err := HeadlineSummary(tiny("heat", "kmeans", "cg"))
	if err != nil {
		t.Fatal(err)
	}
	if s.MessageReduction <= 1.0 {
		t.Fatalf("message reduction %.2f, want > 1 (paper: ~2x)", s.MessageReduction)
	}
	if s.DirectoryReduction <= 1.5 {
		t.Fatalf("directory reduction %.2f, want > 1.5 (paper: ~2.1x)", s.DirectoryReduction)
	}
}

func TestBreakdownTableRendering(t *testing.T) {
	rows := []MessageBreakdown{{Kernel: "heat", Config: "SWcc", Total: 10, Relative: 1}}
	s := BreakdownTable(rows).String()
	if !strings.Contains(s, "heat") || !strings.Contains(s, "Read Requests") {
		t.Fatalf("table missing content:\n%s", s)
	}
}

func TestCSVRenderers(t *testing.T) {
	br := BreakdownCSV([]MessageBreakdown{{Kernel: "heat", Config: "SWcc", Total: 5, Relative: 1}})
	if !strings.HasPrefix(br, "kernel,config,total,relative,read_requests") || !strings.Contains(br, "heat,SWcc,5,1.0000") {
		t.Fatalf("BreakdownCSV:\n%s", br)
	}
	fe := FlushEfficiencyCSV([]FlushEfficiency{{Kernel: "cg", L2KB: 8, UsefulInv: 0.5, UsefulWB: 1}})
	if !strings.Contains(fe, "cg,8,0.5000,1.0000") {
		t.Fatalf("FlushEfficiencyCSV:\n%s", fe)
	}
	ds := DirSweepCSV([]DirSweepPoint{{Kernel: "sobel", EntriesPerBank: 32, Cycles: 10, Slowdown: 2.5}})
	if !strings.Contains(ds, "sobel,32,10,2.5000") {
		t.Fatalf("DirSweepCSV:\n%s", ds)
	}
	oc := OccupancyCSV([]OccupancyRow{{Kernel: "cg", Config: "HWcc", MeanTotal: 10.5, MaxTotal: 20}})
	if !strings.Contains(oc, "cg,HWcc,10.50,0.00,0.00,0.00,20") {
		t.Fatalf("OccupancyCSV:\n%s", oc)
	}
	rt := RuntimeCSV([]RuntimeRow{{Kernel: "mri", Config: "SWcc", Cycles: 7, Normalized: 0.9}})
	if !strings.Contains(rt, "mri,SWcc,7,0.9000") {
		t.Fatalf("RuntimeCSV:\n%s", rt)
	}
}

func TestScalingStudyShape(t *testing.T) {
	rows, err := ScalingStudy("heat", []int{2, 8}, 7, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("%d rows, want 6", len(rows))
	}
	get := func(cfg string, clusters int) ScalingPoint {
		for _, r := range rows {
			if r.Config == cfg && r.Clusters == clusters {
				return r
			}
		}
		t.Fatalf("missing %s@%d", cfg, clusters)
		return ScalingPoint{}
	}
	// The paper's motivation: the HWcc-to-SWcc message ratio widens as the
	// machine grows (hardware coherence scales worse).
	small := float64(get("HWcc", 2).Messages) / float64(get("SWcc", 2).Messages)
	large := float64(get("HWcc", 8).Messages) / float64(get("SWcc", 8).Messages)
	if large <= small {
		t.Fatalf("HWcc/SWcc message ratio did not widen: %.2f -> %.2f", small, large)
	}
	// Cohesion stays below HWcc at the large size.
	if get("Cohesion", 8).Messages >= get("HWcc", 8).Messages {
		t.Fatal("Cohesion messages not below HWcc at scale")
	}
	csv := ScalingCSV(rows)
	if !strings.HasPrefix(csv, "kernel,config,clusters") || !strings.Contains(csv, "heat,SWcc,2,16") {
		t.Fatalf("ScalingCSV:\n%s", csv)
	}
}

// TestTable3FullMachineBoot runs a small kernel on the paper's full
// 1024-core Table 3 configuration — 128 clusters, 32 banks, 8 channels —
// to prove the machinery works at full scale (64 worker cores keep the
// run short).
func TestTable3FullMachineBoot(t *testing.T) {
	if testing.Short() {
		t.Skip("full-machine boot is slow")
	}
	res, err := Run(RunConfig{
		Machine: Table3Config().WithMode(Cohesion),
		Kernel:  "dmm",
		Scale:   2,
		Workers: 64,
		Verify:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Config.Cores() != 1024 {
		t.Fatalf("cores = %d", res.Config.Cores())
	}
	if res.Cycles() == 0 {
		t.Fatal("no work done")
	}
}

func TestCoScheduleIsolationShape(t *testing.T) {
	mk := func(mode Mode) MachineConfig {
		cfg := ScaledConfig(4).WithMode(mode)
		cfg.L2Size = 8 << 10
		cfg.L3Size = cfg.L3Banks * (32 << 10)
		if mode != SWcc {
			cfg = cfg.WithDirectory(DirSparse, 128, 0)
		}
		return cfg
	}
	res, err := CoSchedule(mk(Cohesion), "heat", "sobel", 2, 7, true)
	if err != nil {
		t.Fatal(err)
	}
	if res.CyclesA == 0 || res.CyclesB == 0 {
		t.Fatal("empty co-schedule result")
	}
	if res.KernelA != "heat" || res.KernelB != "sobel" {
		t.Fatal("labels wrong")
	}
	// Both workloads' traffic lands in the one shared Stats.
	if res.Stats.TotalMessages() == 0 {
		t.Fatal("no traffic recorded")
	}
	if _, err := CoSchedule(ScaledConfig(1), "heat", "sobel", 1, 1, false); err == nil {
		t.Fatal("single-cluster co-schedule accepted")
	}
}
