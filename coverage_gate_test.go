package cohesion

import (
	"fmt"
	"strings"
	"testing"

	"cohesion/internal/stress"
)

// TestProtocolEdgeCoverageGate is the coverage gate: the kernel suite run
// under all three memory models, plus a fixed-seed stress batch aimed at
// the pressure-only paths (tiny directories, pointer overflow, MSHR
// starvation, fault recovery), must together exercise every registered
// protocol-transition edge. A gap means either dead protocol code or a
// test hole; the failure message lists exactly which edges never fired.
func TestProtocolEdgeCoverageGate(t *testing.T) {
	cov := NewCoverage()

	t.Run("kernels", func(t *testing.T) {
		for _, kernel := range KernelNames() {
			for _, mode := range []Mode{SWcc, HWcc, Cohesion} {
				kernel, mode := kernel, mode
				t.Run(fmt.Sprintf("%s/%v", kernel, mode), func(t *testing.T) {
					t.Parallel()
					_, err := Run(RunConfig{
						Machine:  ScaledConfig(2).WithMode(mode),
						Kernel:   kernel,
						Scale:    1,
						Seed:     42,
						Verify:   true,
						Coverage: cov,
					})
					if err != nil {
						t.Fatal(err)
					}
				})
			}
		}
	})

	// The stress batch reaches edges the well-behaved kernels cannot:
	// capacity-starved directories, Dir4B pointer overflow, MSHR stalls,
	// and the fault-recovery paths.
	batch := []stress.Config{
		{Seed: 101, Mode: "cohesion"},
		{Seed: 102, Mode: "hwcc"},
		// 64 SWcc lines against a 32-line L2: incoherent evictions, both
		// dirty writebacks and silent clean drops.
		{Seed: 103, Mode: "swcc", Lines: 64, OpsPerCore: 200},
		// A long fault-injected run: enough allocations for the ~0.5%
		// injected-NACK rate to fire, plus drop/dup recovery paths.
		{Seed: 104, Mode: "cohesion", Faults: true, FaultSeed: 9, OpsPerCore: 400},
		// Dir4B with >4 sharing clusters: pointer overflow, then broadcast
		// probe fan-out (which also invalidates never-sharing clusters).
		{Seed: 105, Mode: "hwcc", Clusters: 6, WorkersPerCluster: 2, Lines: 4, OpsPerCore: 300, Dir: "dir4b"},
		// A 4-entry directory under 8 hot lines: constant capacity evictions
		// and, with every way pinned, allocation retries.
		{Seed: 106, Mode: "hwcc", Lines: 8, Dir: "sparse", DirEntries: 4, DirAssoc: 2},
		// Same starvation with NACK-on-capacity: the requester is bounced.
		{Seed: 107, Mode: "hwcc", Lines: 8, Dir: "sparse", DirEntries: 4, DirAssoc: 2, NackOnCapacity: true},
		// Two MSHRs under four workers per cluster: misses must stall.
		{Seed: 108, Mode: "cohesion", MSHRs: 2},
		// Two heavily contended lines with frequent domain flips: a request
		// races ahead of the SW=>HW transition, which must tear its freshly
		// allocated entry down first.
		{Seed: 112, Mode: "cohesion", Clusters: 4, Lines: 2, OpsPerCore: 300},
	}
	t.Run("stress", func(t *testing.T) {
		for i, cfg := range batch {
			i, cfg := i, cfg
			t.Run(fmt.Sprintf("%d-%s", i, cfg.Mode), func(t *testing.T) {
				t.Parallel()
				p, err := stress.Generate(cfg)
				if err != nil {
					t.Fatal(err)
				}
				res := stress.RunProgramOpts(p, stress.RunOpts{Coverage: cov})
				if res.Err != nil {
					t.Fatalf("stress run failed: %v", res.Err)
				}
			})
		}
	})

	if un := cov.Uncovered(); len(un) > 0 {
		t.Fatalf("%d/%d protocol edges never fired:\n  %s",
			len(un), cov.Total(), strings.Join(un, "\n  "))
	}
}
