// Coschedule: two applications sharing one chip (paper §2.3: "A hybrid
// memory model provides the runtime with a mechanism for managing
// coherence needs across applications").
//
// heat (a well-behaved BSP stencil) runs on one half of the machine while
// sobel (whose streaming reads churn the directory) runs on the other. They share the
// L3, the directory, and DRAM. Under pure hardware coherence, sobel's
// entry churn and heat's own directory entries contend in the shared (small)
// directory; under Cohesion, heat's data lives in the SWcc domain and
// never touches the directory, insulating it from its noisy neighbor.
package main

import (
	"fmt"
	"log"

	"cohesion"
)

func main() {
	const scale = 3
	// A deliberately tight directory so sharing it hurts.
	mk := func(mode cohesion.Mode) cohesion.MachineConfig {
		cfg := cohesion.ScaledConfig(8).WithMode(mode)
		cfg.L2Size = 8 << 10
		cfg.L3Size = cfg.L3Banks * (32 << 10)
		if mode != cohesion.SWcc {
			cfg = cfg.WithDirectory(cohesion.DirSparse, 192, 0)
		}
		return cfg
	}

	solo := func(mode cohesion.Mode) uint64 {
		res, err := cohesion.Run(cohesion.RunConfig{
			Machine: mk(mode), Kernel: "heat", Scale: scale, Seed: 42,
			Workers: 8, Verify: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		return res.Cycles()
	}

	fmt.Println("heat co-scheduled with sobel on a shared, tight directory")
	fmt.Printf("%-10s %14s %14s %12s\n", "model", "heat solo", "heat co-run", "interference")
	for _, mode := range []cohesion.Mode{cohesion.HWcc, cohesion.Cohesion} {
		s := solo(mode)
		co, err := cohesion.CoSchedule(mk(mode), "heat", "sobel", scale, 42, true)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10v %14d %14d %11.2fx\n", mode, s, co.CyclesA, float64(co.CyclesA)/float64(s))
	}
	fmt.Println("\nCohesion keeps heat's working set out of the shared directory, so")
	fmt.Println("the noisy neighbor costs it far less (the paper's multi-application")
	fmt.Println("motivation, §2.3).")
}
