// Quickstart: run one benchmark kernel under all three memory models —
// software coherence (SWcc), hardware coherence (HWcc), and the hybrid
// Cohesion model — and compare message traffic and run time.
package main

import (
	"fmt"
	"log"

	"cohesion"
)

func main() {
	kernel := "heat"
	fmt.Printf("Running %s on a 64-core scaled machine under three memory models\n\n", kernel)

	type point struct {
		name string
		cfg  cohesion.MachineConfig
	}
	base := cohesion.ScaledConfig(8)
	points := []point{
		{"SWcc", base.WithMode(cohesion.SWcc)},
		{"HWcc (optimistic)", base.WithMode(cohesion.HWcc).WithDirectory(cohesion.DirInfinite, 0, 0)},
		{"Cohesion", base.WithMode(cohesion.Cohesion)},
	}

	var swccMsgs uint64
	for i, pt := range points {
		res, err := cohesion.Run(cohesion.RunConfig{
			Machine: pt.cfg,
			Kernel:  kernel,
			Scale:   2,
			Seed:    42,
			Verify:  true, // every run checks its numeric output
		})
		if err != nil {
			log.Fatal(err)
		}
		if i == 0 {
			swccMsgs = res.TotalMessages()
		}
		fmt.Printf("%-18s cycles=%-8d messages=%-6d (%.2fx SWcc)  flushes=%d releases=%d probes=%d\n",
			pt.name, res.Cycles(), res.TotalMessages(),
			float64(res.TotalMessages())/float64(swccMsgs),
			res.Messages(cohesion.MsgSWFlush), res.Messages(cohesion.MsgReadRel), res.Stats.ProbesSent)
	}

	fmt.Println("\nAll three runs produced verified, bit-identical kernel results.")
}
