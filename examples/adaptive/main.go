// Adaptive: the "more elaborate coherence domain remapping strategies"
// the paper leaves as future work (§4.2), demonstrated on a statically
// partitioned 1D Jacobi relaxation.
//
// With static block ownership, a worker's interior cells are read and
// written only by itself — its own L2 always holds the current copy, so
// *neither* coherence regime needs to move that data at all. Only the
// block-edge lines are truly shared, with exactly one reader each. That
// makes three placements interesting:
//
//	all-SWcc   flush every written line + invalidate every read line,
//	           every sweep (the safe, port-everything default);
//	all-HWcc   migrate everything into the directory's care;
//	adaptive   migrate ONLY the block-edge lines to HWcc (one
//	           CohHWccRegion per edge, once), leave interiors SWcc with
//	           no flushes or invalidates at all.
//
// The adaptive placement eliminates nearly all coherence traffic while
// every variant computes bit-identical results.
package main

import (
	"fmt"
	"log"

	"cohesion"
)

const (
	workers    = 8
	lineWords  = 8
	blockLines = 4 // per worker
	blockWords = blockLines * lineWords
	totalWords = workers * blockWords
	iters      = 6
)

type strategy int

const (
	allSWcc strategy = iota
	allHWcc
	adaptive
)

func (s strategy) String() string {
	return [...]string{"all-SWcc", "all-HWcc", "adaptive (edges HWcc)"}[s]
}

func run(s strategy, golden []float32) {
	cfg := cohesion.ScaledConfig(4).WithMode(cohesion.Cohesion)
	sys, err := cohesion.NewSystem(cfg, workers)
	if err != nil {
		log.Fatal(err)
	}
	rt := sys.Runtime()
	grid := [2]cohesion.Addr{rt.CohMalloc(4 * totalWords), rt.CohMalloc(4 * totalWords)}
	cell := func(g cohesion.Addr, i int) cohesion.Addr { return g + cohesion.Addr(4*i) }
	for i := 0; i < totalWords; i++ {
		init := float32((i*37)%100) / 10
		rt.WriteF32(cell(grid[0], i), init)
		rt.WriteF32(cell(grid[1], i), init)
	}

	for w := 0; w < workers; w++ {
		w := w
		sys.Spawn(w*4, 2048, func(x *cohesion.Ctx) {
			lo, hi := w*blockWords, (w+1)*blockWords
			// Placement, once, before the first sweep.
			switch s {
			case allHWcc:
				if w == 0 {
					x.CohHWccRegion(grid[0], 4*totalWords)
					x.CohHWccRegion(grid[1], 4*totalWords)
				}
			case adaptive:
				// Only this block's first and last lines are ever shared.
				for _, g := range grid {
					x.CohHWccRegion(cell(g, lo), 4*lineWords)
					x.CohHWccRegion(cell(g, hi-lineWords), 4*lineWords)
				}
			}
			x.Barrier()

			for t := 0; t < iters; t++ {
				src, dst := grid[t%2], grid[(t+1)%2]
				if s == allSWcc {
					// Lazy invalidation of everything this sweep reads that
					// others may have written: own block + neighbor edges.
					x.InvIfSWcc(cell(src, lo), 4*blockWords)
					if w > 0 {
						x.InvIfSWcc(cell(src, lo-lineWords), 4*lineWords)
					}
					if w < workers-1 {
						x.InvIfSWcc(cell(src, hi), 4*lineWords)
					}
				}
				for i := lo; i < hi; i++ {
					left, right := i-1, i+1
					var l, r float32
					if left >= 0 {
						l = x.LoadF32(cell(src, left))
					}
					if right < totalWords {
						r = x.LoadF32(cell(src, right))
					}
					mid := x.LoadF32(cell(src, i))
					x.Work(3)
					x.StoreF32(cell(dst, i), (l+mid+r)/3)
				}
				if s == allSWcc {
					x.FlushIfSWcc(cell(dst, lo), 4*blockWords)
				}
				// adaptive: nothing to flush — interiors are private to this
				// worker's cluster, edges are hardware-coherent.
				x.Barrier()
			}
		})
	}
	if err := sys.Simulate(); err != nil {
		log.Fatal(s, ": ", err)
	}

	final := grid[iters%2]
	for i := 0; i < totalWords; i++ {
		if got := rt.ReadF32(cell(final, i)); got != golden[i] {
			log.Fatalf("%v: cell %d = %v, want %v", s, i, got, golden[i])
		}
	}
	st := sys.Stats()
	fmt.Printf("%-24s messages=%-6d flushes=%-5d invs(issued)=%-5d probes=%-5d transitions=%d cycles=%d\n",
		s, st.TotalMessages(), st.Messages[cohesion.MsgSWFlush],
		st.InvIssued, st.ProbesSent, st.TransitionsToHW, st.Cycles)
}

func main() {
	// Golden sweep in float32.
	cur := make([]float32, totalWords)
	next := make([]float32, totalWords)
	for i := range cur {
		cur[i] = float32((i*37)%100) / 10
	}
	for t := 0; t < iters; t++ {
		for i := range cur {
			var l, r float32
			if i > 0 {
				l = cur[i-1]
			}
			if i < totalWords-1 {
				r = cur[i+1]
			}
			next[i] = (l + cur[i] + r) / 3
		}
		cur, next = next, cur
	}

	fmt.Printf("1D Jacobi, %d workers x %d lines, %d sweeps — three Cohesion placements\n\n",
		workers, blockLines, iters)
	for _, s := range []strategy{allSWcc, allHWcc, adaptive} {
		run(s, cur)
	}
	fmt.Println("\nAdaptive remapping keeps private interiors out of BOTH coherence")
	fmt.Println("regimes: no flush/invalidate instructions AND no directory traffic.")
}
