// Dirsizing: the paper's Figure 9 experiment in miniature — how run time
// degrades as the on-die directory shrinks, under pure hardware coherence
// versus Cohesion. HWcc falls off precipitously once the directory can no
// longer cover the working set (every miss evicts an entry and
// invalidates its sharers); Cohesion barely notices, because most lines
// never enter the directory at all.
package main

import (
	"fmt"
	"log"

	"cohesion"
)

func main() {
	p := cohesion.ExpParams{
		Kernels:  []string{"sobel"},
		DirSizes: []int{16, 32, 64, 128, 256, 1024},
	}

	fmt.Println("sobel: slowdown vs directory entries per L3 bank (1.00 = infinite directory)")
	fmt.Printf("%-10s %12s %12s\n", "entries", "HWcc", "Cohesion")

	hw, err := cohesion.Fig9Sweep(p, cohesion.HWcc)
	if err != nil {
		log.Fatal(err)
	}
	coh, err := cohesion.Fig9Sweep(p, cohesion.Cohesion)
	if err != nil {
		log.Fatal(err)
	}
	for i := range hw {
		label := fmt.Sprint(hw[i].EntriesPerBank)
		if hw[i].EntriesPerBank == 0 {
			label = "infinite"
		}
		fmt.Printf("%-10s %11.2fx %11.2fx\n", label, hw[i].Slowdown, coh[i].Slowdown)
	}

	fmt.Println("\nCohesion keeps performance flat where HWcc thrashes — the paper's")
	fmt.Println("\"greater robustness to on-die directory capacity\" (Figures 9a/9b).")
}
