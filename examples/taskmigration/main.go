// Taskmigration: the paper's §2.3 thread-swap scenario — "Threads that
// sleep on one core and resume execution on another must have their local
// modified stack data available, forcing coherence actions at each thread
// swap under SWcc. ... HWcc allows ... data to be pulled using HWcc."
//
// A task builds 64 words of private state on one cluster, suspends, and
// resumes on another cluster that touches only a few of those words.
// Two migration strategies on the same Cohesion machine:
//
//	push (SWcc style)  the suspending core flushes the whole state and the
//	                   resuming core invalidates + refetches what it reads;
//	pull (Cohesion)    the suspending core issues one CohHWccRegion; the
//	                   resuming core's loads pull just the lines it needs
//	                   through hardware coherence.
//
// When the resume touches a small fraction of the state, the pull
// strategy moves far less data.
package main

import (
	"fmt"
	"log"

	"cohesion"
)

const (
	stateWords = 64 // 8 lines of task-private state
	touched    = 4  // words the resumed task actually reads
)

func migrate(pull bool) {
	cfg := cohesion.ScaledConfig(2).WithMode(cohesion.Cohesion)
	sys, err := cohesion.NewSystem(cfg, 2)
	if err != nil {
		log.Fatal(err)
	}
	rt := sys.Runtime()
	state := rt.CohMalloc(4 * stateWords) // task-private, SWcc
	handoff := rt.Malloc(64)              // HWcc mailbox

	var got uint32
	sys.Spawn(0, 1024, func(x *cohesion.Ctx) { // cluster 0: runs the task
		for i := 0; i < stateWords; i++ {
			x.Store(state+cohesion.Addr(4*i), uint32(1000+i))
		}
		// Suspend: make the state available to wherever the task resumes.
		if pull {
			x.CohHWccRegion(state, 4*stateWords) // one transition, no data moved
		} else {
			x.FlushRange(state, 4*stateWords) // push everything out
		}
		x.Store(handoff, 1) // signal "task parked" through HWcc
	})
	sys.Spawn(8, 1024, func(x *cohesion.Ctx) { // cluster 1: resumes the task
		for x.Load(handoff) != 1 {
			x.Work(30)
			x.InvLine(handoff) // refresh the coherent mailbox politely
		}
		if !pull {
			x.InvRange(state, 4*stateWords) // drop any stale copies
		}
		for i := 0; i < touched; i++ {
			got += x.Load(state + cohesion.Addr(4*i*2)) // sparse touch
		}
	})
	if err := sys.Simulate(); err != nil {
		log.Fatal(err)
	}
	st := sys.Stats()
	name := "push (flush+inv)"
	if pull {
		name = "pull (CohHWccRegion)"
	}
	fmt.Printf("%-22s resumed-sum=%d  messages=%-4d flushes=%-3d data-msgs=%-3d transitions=%d cycles=%d\n",
		name, got, st.TotalMessages(), st.Messages[cohesion.MsgSWFlush],
		st.Messages[cohesion.MsgSWFlush]+st.Messages[cohesion.MsgEviction], st.TransitionsToHW, st.Cycles)
}

func main() {
	fmt.Printf("migrating a task with %d words of state; resume touches %d words\n\n", stateWords, touched)
	migrate(false)
	migrate(true)
	fmt.Println("\nPulling via HWcc moves only the touched lines — the paper's case for")
	fmt.Println("hardware coherence under task migration (§2.3).")
}
