// Hybridtuning: coherence placement as a performance knob (paper §4.6:
// "Cohesion makes explicit coherence management for accelerators an
// optimization opportunity and not a correctness burden").
//
// The same reduction workload runs three ways on one Cohesion machine
// configuration:
//
//  1. histogramming with uncached atomics (how an SWcc-only machine must
//     do it — the paper's kmeans pattern);
//  2. per-worker partials on the hardware-coherent heap, merged with
//     plain cached loads (exploiting HWcc);
//  3. the same partials on the *incoherent* heap with explicit
//     flush/invalidate (exploiting SWcc placement).
//
// All three produce the identical sum; their traffic differs sharply.
package main

import (
	"fmt"
	"log"

	"cohesion"
)

const (
	workers = 16
	items   = 4096
)

var per = items / workers

type strategy func(sys *cohesion.System, total cohesion.Addr) // builds worker programs

func measure(name string, build strategy) {
	cfg := cohesion.ScaledConfig(8).WithMode(cohesion.Cohesion)
	sys, err := cohesion.NewSystem(cfg, workers)
	if err != nil {
		log.Fatal(err)
	}
	total := sys.Runtime().Malloc(64)
	build(sys, total)
	if err := sys.Simulate(); err != nil {
		log.Fatal(name, ": ", err)
	}
	st := sys.Stats()
	want := uint32(items * (items - 1) / 2)
	got := sys.Runtime().ReadWord(total)
	status := "ok"
	if got != want {
		status = fmt.Sprintf("WRONG (want %d)", want)
	}
	fmt.Printf("%-22s sum=%-9d %-4s messages=%-6d atomics=%-5d flushes=%-4d cycles=%d\n",
		name, got, status, st.TotalMessages(), st.Messages[cohesion.MsgAtomic],
		st.Messages[cohesion.MsgSWFlush], st.Cycles)
}

func main() {
	fmt.Printf("summing %d items across %d workers, three coherence strategies\n\n", items, workers)

	measure("uncached atomics", func(sys *cohesion.System, total cohesion.Addr) {
		for wkr := 0; wkr < workers; wkr++ {
			wkr := wkr
			sys.Spawn(wkr*4, 1024, func(x *cohesion.Ctx) {
				for i := 0; i < per; i++ {
					x.AtomicAdd(total, uint32(wkr*per+i))
				}
			})
		}
	})

	measure("HWcc partials", func(sys *cohesion.System, total cohesion.Addr) {
		partials := sys.Runtime().Malloc(32 * workers) // one line per worker
		for wkr := 0; wkr < workers; wkr++ {
			wkr := wkr
			sys.Spawn(wkr*4, 1024, func(x *cohesion.Ctx) {
				var s uint32
				for i := 0; i < per; i++ {
					s += uint32(wkr*per + i)
				}
				x.Work(per)
				x.Store(partials+cohesion.Addr(32*wkr), s)
				x.Barrier()
				if wkr == 0 {
					var t uint32
					for p := 0; p < workers; p++ {
						t += x.Load(partials + cohesion.Addr(32*p)) // HWcc pulls dirty lines
					}
					x.Store(total, t)
				}
			})
		}
	})

	measure("SWcc partials+flush", func(sys *cohesion.System, total cohesion.Addr) {
		partials := sys.Runtime().CohMalloc(32 * workers)
		for wkr := 0; wkr < workers; wkr++ {
			wkr := wkr
			sys.Spawn(wkr*4, 1024, func(x *cohesion.Ctx) {
				var s uint32
				for i := 0; i < per; i++ {
					s += uint32(wkr*per + i)
				}
				x.Work(per)
				x.Store(partials+cohesion.Addr(32*wkr), s)
				x.FlushRange(partials+cohesion.Addr(32*wkr), 4)
				x.Barrier()
				if wkr == 0 {
					x.InvRange(partials, 32*workers)
					var t uint32
					for p := 0; p < workers; p++ {
						t += x.Load(partials + cohesion.Addr(32*p))
					}
					x.Store(total, t)
				}
			})
		}
	})

	fmt.Println("\nSame answer every time; coherence strategy is a tuning choice.")
}
