// Heterogeneous: the paper's motivating use case (§2.3) — accelerator-style
// cores producing data under cheap software coherence, then handing it to
// a consumer that needs hardware coherence for fine-grained, unpredictable
// access, with no copies and a single address space.
//
// Producer clusters fill a frame buffer on the incoherent heap (SWcc: no
// directory entries, no probe traffic, silent clean drops). The producers
// then call CohHWccRegion — the Table 2 API — and the directory captures
// the dirty lines in place. A "host-like" consumer core immediately walks
// the frame in a data-dependent order that would be impractical to flush/
// invalidate around, relying on hardware coherence to pull each line.
package main

import (
	"fmt"
	"log"

	"cohesion"
)

func main() {
	cfg := cohesion.ScaledConfig(4).WithMode(cohesion.Cohesion)
	const producers = 8 // two per cluster on clusters 0..3
	sys, err := cohesion.NewSystem(cfg, producers+1)
	if err != nil {
		log.Fatal(err)
	}
	rt := sys.Runtime()

	const frameWords = 1024
	frame := rt.CohMalloc(4 * frameWords) // starts in the SWcc domain
	sum := rt.Malloc(64)                  // consumer's result, always HWcc

	chunk := frameWords / producers
	for p := 0; p < producers; p++ {
		p := p
		sys.Spawn(p*2, 2048, func(x *cohesion.Ctx) {
			// Produce: pure SWcc writes — no coherence traffic at all.
			for i := p * chunk; i < (p+1)*chunk; i++ {
				x.Store(frame+cohesion.Addr(4*i), uint32(i*3+1))
			}
			x.Barrier()
			// Hand off: producer 0 migrates the frame to the HWcc domain.
			// The directory captures every dirty line without a copy.
			if p == 0 {
				x.CohHWccRegion(frame, 4*frameWords)
			}
			x.Barrier()
		})
	}
	// The consumer walks the frame in a value-dependent order (a pointer
	// chase), the access pattern hardware coherence exists for.
	sys.Spawn(31, 2048, func(x *cohesion.Ctx) {
		x.Barrier() // production complete
		x.Barrier() // domain transition complete
		var total uint32
		i := uint32(0)
		for steps := 0; steps < frameWords; steps++ {
			v := x.Load(frame + cohesion.Addr(4*i))
			total += v
			i = v % frameWords
		}
		x.Store(sum, total)
	})

	if err := sys.Simulate(); err != nil {
		log.Fatal(err)
	}

	st := sys.Stats()
	fmt.Printf("produced %d words under SWcc, migrated to HWcc in place, consumed by pointer-chase\n", frameWords)
	fmt.Printf("  SW->HW line transitions: %d (one per dirty frame line)\n", st.TransitionsToHW)
	fmt.Printf("  consumer checksum: %d\n", rt.ReadWord(sum))
	fmt.Printf("  total messages: %d, probes: %d, cycles: %d\n", st.TotalMessages(), st.ProbesSent, st.Cycles)
	if st.TransitionsToHW == 0 {
		log.Fatal("expected domain transitions")
	}
}
