package cohesion

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"sync"

	"cohesion/internal/snapshot"
	"cohesion/internal/stats"
)

// sweepCell is one completed sweep cell's persisted measurements: enough
// to reconstruct the cell's table row bit-for-bit without re-running the
// simulation. (Metrics histograms are not persisted, which is why
// LatencyTable does not participate in sweep checkpointing.)
type sweepCell struct {
	Stats          stats.Snapshot `json:"stats"`
	MemFingerprint uint64         `json:"mem_fingerprint"`
}

// sweepState is the payload of a KindSweep snapshot file.
type sweepState struct {
	// SpecHash fingerprints the sweep parameters that determine cell
	// results (clusters, workers, scale, seed, kernel list, directory
	// sizes, verify, deterministic limits). A checkpoint written under a
	// different spec is rejected on resume instead of silently mixing
	// incompatible results.
	SpecHash string               `json:"spec_hash"`
	Cells    map[string]sweepCell `json:"cells"`
}

// SweepCheckpoint caches completed sweep-cell results on disk so an
// interrupted or degraded experiment sweep resumes only its failed and
// unfinished cells. Attach one to ExpParams.Checkpoint: every cell that
// completes is recorded (atomic temp-file+rename write per cell), and
// every cell already recorded is served from the cache — its table row is
// bit-identical to the original run's, since the full stats snapshot and
// memory fingerprint are persisted. Cells keyed by kernel, configuration
// label, and a machine-configuration digest are shared across figures
// that run the identical simulation.
type SweepCheckpoint struct {
	path string

	mu     sync.Mutex
	state  sweepState
	seq    uint64
	reused int
}

// sweepSpecHash digests the ExpParams fields that determine cell results.
// Ctx, Parallel, and Checkpoint are per-process execution choices, not
// sweep identity.
func sweepSpecHash(p ExpParams) string {
	p = p.withDefaults()
	spec := struct {
		Clusters int       `json:"clusters"`
		Workers  int       `json:"workers"`
		Scale    int       `json:"scale"`
		Seed     int64     `json:"seed"`
		Kernels  []string  `json:"kernels"`
		DirSizes []int     `json:"dir_sizes"`
		Verify   bool      `json:"verify"`
		Limits   RunLimits `json:"limits"`
	}{p.Clusters, p.Workers, p.Scale, p.Seed, p.Kernels, p.DirSizes, p.Verify, p.Limits}
	b, err := json.Marshal(spec)
	if err != nil {
		return "unhashable"
	}
	h := fnv.New64a()
	h.Write(b)
	return fmt.Sprintf("%016x", h.Sum64())
}

// cellKey names one sweep cell: kernel, configuration label, and a digest
// of the full machine configuration (labels alone can collide across
// figures that tweak the machine, e.g. Fig3's L2 sweep).
func cellKey(job runJob) string {
	b, err := json.Marshal(job.cfg)
	if err != nil {
		return job.kernel + "/" + job.name + "/unhashable"
	}
	h := fnv.New64a()
	h.Write(b)
	return fmt.Sprintf("%s/%s/%016x", job.kernel, job.name, h.Sum64())
}

// OpenSweepCheckpoint opens (or creates) the sweep checkpoint at path for
// the given parameters. With resume false any existing file is ignored
// and overwritten by the first recorded cell. With resume true the latest
// valid snapshot is loaded (recovering from a torn last write); a missing
// file is a fresh start, but a checkpoint written under different sweep
// parameters is an error — its cells would not match this sweep.
func OpenSweepCheckpoint(path string, p ExpParams, resume bool) (*SweepCheckpoint, error) {
	c := &SweepCheckpoint{
		path:  path,
		state: sweepState{SpecHash: sweepSpecHash(p), Cells: map[string]sweepCell{}},
	}
	if !resume {
		return c, nil
	}
	var st sweepState
	env, src, err := snapshot.LoadRecover(path, snapshot.KindSweep, &st)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return c, nil // nothing to resume: fresh start
		}
		return nil, fmt.Errorf("cohesion: sweep checkpoint: %w", err)
	}
	if st.SpecHash != c.state.SpecHash {
		return nil, fmt.Errorf("cohesion: sweep checkpoint %s was written by a different sweep (spec %s, this sweep %s); delete it or rerun without resume",
			src, st.SpecHash, c.state.SpecHash)
	}
	if st.Cells == nil {
		st.Cells = map[string]sweepCell{}
	}
	c.state = st
	c.seq = env.Seq
	return c, nil
}

// Path is the snapshot file backing this checkpoint.
func (c *SweepCheckpoint) Path() string { return c.path }

// Cells is the number of completed cells currently recorded.
func (c *SweepCheckpoint) Cells() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.state.Cells)
}

// Reused is the number of cells served from the cache instead of re-run.
func (c *SweepCheckpoint) Reused() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.reused
}

// lookup serves a cell from the cache, reconstructing its Result.
func (c *SweepCheckpoint) lookup(job runJob) (*Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	cell, ok := c.state.Cells[cellKey(job)]
	if !ok {
		return nil, false
	}
	c.reused++
	return &Result{
		Kernel:         job.kernel,
		Mode:           job.cfg.Mode,
		Config:         job.cfg,
		Stats:          cell.Stats.ToRun(),
		MemFingerprint: cell.MemFingerprint,
	}, true
}

// record persists a completed cell, rewriting the checkpoint atomically.
func (c *SweepCheckpoint) record(job runJob, res *Result) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.state.Cells[cellKey(job)] = sweepCell{Stats: res.Stats.Snapshot(), MemFingerprint: res.MemFingerprint}
	c.seq++
	if err := snapshot.WriteAtomic(c.path, snapshot.KindSweep, c.seq, c.state); err != nil {
		return fmt.Errorf("cohesion: sweep checkpoint: %w", err)
	}
	return nil
}
