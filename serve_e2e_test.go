package cohesion

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"
)

// The end-to-end serving tests drive the real engine through the real
// HTTP API: submit → poll → result, asserting the service returns the
// exact same memory fingerprints as running the simulator directly
// (testdata/fingerprints.json, the tier-1 golden matrix).

// resultBody is the JSON shape of GET /v1/jobs/{id}/result.
type resultBody struct {
	ID      string      `json:"id"`
	State   string      `json:"state"`
	Outcome *JobOutcome `json:"outcome"`
	Error   string      `json:"error"`
}

// serveTestClient wraps the raw HTTP API for tests.
type serveTestClient struct {
	t    *testing.T
	base string
}

func (c *serveTestClient) submit(spec JobSpec) (string, *http.Response) {
	c.t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		c.t.Fatalf("marshaling spec: %v", err)
	}
	resp, err := http.Post(c.base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		c.t.Fatalf("POST /v1/jobs: %v", err)
	}
	defer resp.Body.Close()
	var out struct {
		ID string `json:"id"`
	}
	_ = json.NewDecoder(resp.Body).Decode(&out)
	return out.ID, resp
}

func (c *serveTestClient) jobState(id string) (string, bool) {
	c.t.Helper()
	resp, err := http.Get(c.base + "/v1/jobs/" + id)
	if err != nil {
		c.t.Fatalf("GET /v1/jobs/%s: %v", id, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		return "", false
	}
	var v struct {
		State string `json:"state"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		c.t.Fatalf("decoding job view: %v", err)
	}
	return v.State, true
}

func (c *serveTestClient) waitTerminal(id string, timeout time.Duration) string {
	c.t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		st, ok := c.jobState(id)
		if !ok {
			c.t.Fatalf("job %s vanished while polling", id)
		}
		switch st {
		case "done", "canceled", "failed":
			return st
		}
		time.Sleep(10 * time.Millisecond)
	}
	st, _ := c.jobState(id)
	c.t.Fatalf("job %s did not finish within %v (state %s)", id, timeout, st)
	return ""
}

func (c *serveTestClient) result(id string) (resultBody, int) {
	c.t.Helper()
	resp, err := http.Get(c.base + "/v1/jobs/" + id + "/result")
	if err != nil {
		c.t.Fatalf("GET result: %v", err)
	}
	defer resp.Body.Close()
	var rb resultBody
	_ = json.NewDecoder(resp.Body).Decode(&rb)
	return rb, resp.StatusCode
}

func (c *serveTestClient) cancel(id string) int {
	c.t.Helper()
	req, err := http.NewRequest(http.MethodDelete, c.base+"/v1/jobs/"+id, nil)
	if err != nil {
		c.t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		c.t.Fatalf("DELETE: %v", err)
	}
	resp.Body.Close()
	return resp.StatusCode
}

// loadGoldenFingerprints reads the tier-1 golden matrix the direct-run
// test maintains; serving the same spec must reproduce these exactly.
func loadGoldenFingerprints(t *testing.T) map[string]string {
	t.Helper()
	data, err := os.ReadFile(fingerprintsFile)
	if err != nil {
		t.Fatalf("reading %s: %v", fingerprintsFile, err)
	}
	golden := map[string]string{}
	if err := json.Unmarshal(data, &golden); err != nil {
		t.Fatalf("parsing %s: %v", fingerprintsFile, err)
	}
	return golden
}

// newE2EServer starts a real JobServer (real engine) behind httptest.
func newE2EServer(t *testing.T, opt ServeOptions) (*JobServer, *serveTestClient) {
	t.Helper()
	if opt.StateDir == "" {
		opt.StateDir = t.TempDir()
	}
	js, err := NewJobServer(opt)
	if err != nil {
		t.Fatalf("NewJobServer: %v", err)
	}
	ts := httptest.NewServer(js.Handler())
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		if err := js.Drain(ctx); err != nil {
			t.Errorf("Drain: %v", err)
		}
		ts.Close()
	})
	return js, &serveTestClient{t: t, base: ts.URL}
}

// TestServeE2EGoldenMatrix submits every kernel under every mode through
// the HTTP API and checks each job's fingerprint against the golden
// file — the service must be a transparent front door, bit for bit.
func TestServeE2EGoldenMatrix(t *testing.T) {
	golden := loadGoldenFingerprints(t)
	_, c := newE2EServer(t, ServeOptions{Workers: 4, QueueDepth: 64})

	type submitted struct{ id, key string }
	var jobs []submitted
	for _, r := range fingerprintRuns() {
		spec := JobSpec{
			Kernel:   r.Kernel,
			Mode:     strings.ToLower(r.Mode.String()),
			Clusters: 2,
			Scale:    1,
			Seed:     42,
			Verify:   true,
		}
		id, resp := c.submit(spec)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %s/%v: status %d", r.Kernel, r.Mode, resp.StatusCode)
		}
		jobs = append(jobs, submitted{id, fmt.Sprintf("%s/%v", r.Kernel, r.Mode)})
	}
	for _, j := range jobs {
		if st := c.waitTerminal(j.id, 120*time.Second); st != "done" {
			rb, _ := c.result(j.id)
			t.Fatalf("%s (%s): state %s, error %q", j.key, j.id, st, rb.Error)
		}
		rb, code := c.result(j.id)
		if code != http.StatusOK {
			t.Fatalf("%s: result status %d", j.key, code)
		}
		want, ok := golden[j.key]
		if !ok {
			t.Fatalf("no golden fingerprint for %s", j.key)
		}
		if rb.Outcome == nil || rb.Outcome.MemFingerprint != want {
			t.Errorf("%s: served fingerprint = %+v, golden %s", j.key, rb.Outcome, want)
		}
		if rb.Outcome != nil && rb.Outcome.Partial {
			t.Errorf("%s: completed job marked partial", j.key)
		}
	}
}

// TestServeE2ECancelMidRun cancels a long-running job and checks the
// partial-result shape: 200 from /result with state canceled, a partial
// outcome, and a non-empty error.
func TestServeE2ECancelMidRun(t *testing.T) {
	_, c := newE2EServer(t, ServeOptions{Workers: 1, QueueDepth: 4})

	// dmm at scale 12 runs multiple seconds — a wide-open cancel window.
	id, resp := c.submit(JobSpec{Kernel: "dmm", Mode: "cohesion", Clusters: 2, Scale: 12, Seed: 42})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}
	deadline := time.Now().Add(60 * time.Second)
	for {
		st, _ := c.jobState(id)
		if st == "running" {
			break
		}
		if st == "done" || time.Now().After(deadline) {
			t.Fatalf("job reached %s before it could be canceled", st)
		}
		time.Sleep(2 * time.Millisecond)
	}

	// /result while running answers 409 with the current state.
	if _, code := c.result(id); code != http.StatusConflict {
		t.Fatalf("result while running = %d, want 409", code)
	}

	if code := c.cancel(id); code != http.StatusAccepted {
		t.Fatalf("cancel = %d, want 202", code)
	}
	if st := c.waitTerminal(id, 60*time.Second); st != "canceled" {
		t.Fatalf("state after cancel = %s, want canceled", st)
	}
	rb, code := c.result(id)
	if code != http.StatusOK {
		t.Fatalf("result of canceled job = %d, want 200", code)
	}
	if rb.State != "canceled" || rb.Error == "" {
		t.Fatalf("partial-result shape = %+v, want canceled + error", rb)
	}
	if rb.Outcome == nil || !rb.Outcome.Partial {
		t.Fatalf("canceled job outcome = %+v, want a partial outcome", rb.Outcome)
	}
	if rb.Outcome.Events == 0 {
		t.Error("partial outcome reports zero executed events")
	}
}
