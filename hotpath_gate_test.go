package cohesion

import (
	"context"
	"testing"
)

// TestRunAllocsPerEventGate locks in the zero-allocation hot path for the
// complete Run pipeline, not just the event engine: cores, caches, the
// coherence protocol, the interconnect, and the stats layer together.
// Each measured pass simulates a freshly prepared machine, so the only
// tolerated allocations are the warm-up fills of the per-machine free
// lists (message records, transactions, service slots, recall records)
// and the first touch of each architectural store line — fixed counts
// amortized over tens of thousands of events. The gate is 0.05 allocs
// per event against a measured ~0.02, so a per-event allocation sneaking
// back into any subsystem (one alloc/event = 20x the gate, and even an
// alloc on a 10%-frequency path doubles the figure) fails loudly here
// rather than as a slow bench drift.
func TestRunAllocsPerEventGate(t *testing.T) {
	for _, mode := range []Mode{SWcc, HWcc, Cohesion} {
		t.Run(mode.String(), func(t *testing.T) {
			rc := RunConfig{
				Machine: ScaledConfig(2).WithMode(mode),
				Kernel:  "cg",
				Scale:   2,
				Seed:    42,
			}
			// AllocsPerRun invokes the function rounds+1 times (one
			// warm-up call) and a prepared run is single-use, so stage
			// one machine per invocation up front; construction is
			// outside the measured closure.
			const rounds = 5
			preps := make([]*preparedRun, rounds+1)
			for i := range preps {
				p, err := prepareRun(rc)
				if err != nil {
					t.Fatalf("prepareRun: %v", err)
				}
				preps[i] = p
			}
			next := 0
			var events uint64
			allocs := testing.AllocsPerRun(rounds, func() {
				p := preps[next]
				next++
				if _, err := p.run(context.Background()); err != nil {
					panic(err)
				}
				events = p.m.Run.Events
			})
			perEvent := allocs / float64(events)
			t.Logf("%v: %.0f allocs over %d events = %.4f allocs/event", mode, allocs, events, perEvent)
			const gate = 0.05
			if perEvent > gate {
				t.Errorf("%v: %.4f allocs/event, gate is %.2f — a hot-path allocation crept back in", mode, perEvent, gate)
			}
		})
	}
}

// TestPooledRecyclingDeterminism stresses the protocol free lists on
// their hardest recycling paths — fault injection drops and duplicates
// retryable requests, so network records and transactions are retired
// and reissued out of the usual lockstep — and demands bit-identical
// outcomes: three straight runs must agree on fingerprint, event count,
// and cycle count, and a run interrupted at three interior depths must
// resume from its snapshot to the same fingerprint (SelfCheckResume
// verifies the replayed per-layer digests at the resume point). A pooled
// record leaking state between lives would diverge one of these legs.
// The kernel suite runs this under -race in CI, covering the pools'
// aliasing discipline as well.
func TestPooledRecyclingDeterminism(t *testing.T) {
	for _, mode := range []Mode{HWcc, Cohesion} {
		t.Run(mode.String(), func(t *testing.T) {
			t.Parallel()
			cfg := ScaledConfig(2).WithMode(mode)
			cfg.Faults = DefaultFaultPlan(99)
			rc := RunConfig{Machine: cfg, Kernel: "cg", Scale: 1, Seed: 7, Verify: true}

			ref, err := RunCtx(context.Background(), rc)
			if err != nil {
				t.Fatalf("reference run: %v", err)
			}
			if ref.Stats.FaultDrops+ref.Stats.FaultDups == 0 {
				t.Fatalf("fault plan injected no drops or duplicates; the recycling stress is vacuous")
			}
			for i := 0; i < 2; i++ {
				res, err := RunCtx(context.Background(), rc)
				if err != nil {
					t.Fatalf("repeat run %d: %v", i, err)
				}
				if res.MemFingerprint != ref.MemFingerprint ||
					res.Stats.Events != ref.Stats.Events ||
					res.Cycles() != ref.Cycles() {
					t.Fatalf("repeat run %d diverged: fingerprint %#x/%#x events %d/%d cycles %d/%d",
						i, res.MemFingerprint, ref.MemFingerprint,
						res.Stats.Events, ref.Stats.Events, res.Cycles(), ref.Cycles())
				}
			}

			report, err := SelfCheckResume(context.Background(), rc, 3, t.TempDir())
			if err != nil {
				t.Fatalf("SelfCheckResume under faults: %v", err)
			}
			if report.Resumed != len(report.Depths) || len(report.Depths) < 3 {
				t.Fatalf("resumed %d of depths %v, want 3 clean resumes", report.Resumed, report.Depths)
			}
		})
	}
}
