package cohesion

import (
	"context"
	"fmt"
	"math"
	"strings"

	"cohesion/internal/addr"
	"cohesion/internal/config"
	"cohesion/internal/directory"
	"cohesion/internal/msg"
	"cohesion/internal/pool"
	"cohesion/internal/simerr"
	"cohesion/internal/stats"
)

// ExpParams scales the experiment harness. The zero value gives a
// laptop-sized machine that preserves the paper's qualitative shapes; the
// cohesion-experiments tool can raise everything toward Table 3 sizes.
type ExpParams struct {
	Clusters int      // simulated clusters (default 8 = 64 cores)
	Workers  int      // cores running each kernel (default 2 per cluster)
	Scale    int      // kernel data-set scale (default 2)
	Seed     int64    // workload seed
	Kernels  []string // default: all eight
	DirSizes []int    // Fig 9 sweep, entries per bank (default 32..1024)
	Verify   bool     // verify kernel outputs on every run

	// Parallel is the number of host goroutines running independent
	// simulations (0 = GOMAXPROCS, 1 = serial). Every simulation is
	// self-contained, and results are slotted by job index, so the
	// assembled tables are bit-identical at any setting.
	Parallel int

	// Ctx, when non-nil, cancels the sweep cooperatively: cells already
	// running end early with ErrCanceled, cells not yet started fail
	// fast, and the figure assembles with those cells marked failed.
	Ctx context.Context

	// Limits bounds every cell of the sweep (see RunLimits).
	Limits RunLimits

	// Checkpoint, when non-nil, records every completed cell to disk and
	// serves already-recorded cells from the cache, so an interrupted or
	// degraded sweep resumes only its failed/unfinished cells (see
	// OpenSweepCheckpoint). LatencyTable ignores it: the metrics
	// histograms it reports are not persisted.
	Checkpoint *SweepCheckpoint
}

func (p ExpParams) withDefaults() ExpParams {
	if p.Clusters == 0 {
		p.Clusters = 8
	}
	if p.Workers == 0 {
		p.Workers = 2 * p.Clusters
	}
	if p.Scale == 0 {
		p.Scale = 4
	}
	if len(p.Kernels) == 0 {
		p.Kernels = KernelNames()
	}
	if len(p.DirSizes) == 0 {
		// Fractions of the realistic directory capacity matching the
		// paper's 256..16384-per-bank sweep against its 16K realistic size.
		p.DirSizes = []int{32, 64, 128, 256, 512, 1024, 2048}
	}
	return p
}

// expMachine is ScaledConfig with the memory system shrunk in proportion
// to the scaled data sets, preserving the paper's working-set-to-cache
// ratios (the paper's kernels dwarf a 64 KB L2; scale-4 data sets dwarf an
// 8 KB one the same way). Associativities, line size, latencies, and the
// 2x directory provisioning of Table 3 are kept.
func (p ExpParams) expMachine() MachineConfig {
	c := ScaledConfig(p.Clusters)
	c.L2Size = 8 << 10
	c.L3Size = c.L3Banks * (32 << 10)
	totalL2Lines := p.Clusters * c.L2Size / 32
	c.DirEntriesPerBank = 2 * totalL2Lines / c.L3Banks // paper: 512K entries vs 256K lines
	c.DirAssoc = 128
	if c.DirAssoc > c.DirEntriesPerBank {
		c.DirAssoc = c.DirEntriesPerBank
	}
	c.Label = fmt.Sprintf("exp-%dc", c.Cores())
	return c
}

// Named machine configurations used across the figures.
func (p ExpParams) swccCfg() MachineConfig { return p.expMachine().WithMode(SWcc) }
func (p ExpParams) hwccIdealCfg() MachineConfig {
	return p.expMachine().WithMode(HWcc).WithDirectory(DirInfinite, 0, 0)
}
func (p ExpParams) hwccRealCfg() MachineConfig {
	return p.expMachine().WithMode(HWcc) // sparse full-map, 2x-provisioned
}
func (p ExpParams) hwccDir4BCfg() MachineConfig {
	c := p.expMachine().WithMode(HWcc)
	return c.WithDirectory(DirLimited4B, c.DirEntriesPerBank, c.DirAssoc)
}
func (p ExpParams) cohesionRealCfg() MachineConfig {
	return p.expMachine().WithMode(Cohesion)
}
func (p ExpParams) cohesionIdealCfg() MachineConfig {
	return p.expMachine().WithMode(Cohesion).WithDirectory(DirInfinite, 0, 0)
}
func (p ExpParams) cohesionDir4BCfg() MachineConfig {
	c := p.expMachine().WithMode(Cohesion)
	return c.WithDirectory(DirLimited4B, c.DirEntriesPerBank, c.DirAssoc)
}

func (p ExpParams) ctx() context.Context {
	if p.Ctx != nil {
		return p.Ctx
	}
	return context.Background()
}

func (p ExpParams) run(kernel string, cfg MachineConfig) (*Result, error) {
	return RunCtx(p.ctx(), RunConfig{
		Machine: cfg,
		Kernel:  kernel,
		Scale:   p.Scale,
		Seed:    p.Seed,
		Workers: p.Workers,
		Verify:  p.Verify,
		Limits:  p.Limits,
	})
}

// runJob names one simulation of a figure's sweep.
type runJob struct {
	kernel string
	name   string // configuration label, used in error messages
	cfg    MachineConfig
}

// CellFailure is one failed simulation of a sweep: which cell, and why.
type CellFailure struct {
	Index  int    // job index within the sweep
	Kernel string // kernel name
	Config string // configuration label
	Err    error  // the cell's failure (panics contained as ErrRunPanicked)
}

// SweepError aggregates every failed cell of a figure sweep. The figure
// still assembles — failed cells render as failed(<reason>) and every
// other cell's numbers are bit-identical to a clean run — but the sweep
// as a whole reports failure so callers exit nonzero. errors.Is matches
// any cell's error chain (Unwrap []error).
type SweepError struct {
	Total int // cells in the sweep
	Cells []CellFailure
}

func (e *SweepError) Error() string {
	// Cell errors already carry their kernel/config prefix (runAll wraps
	// them), so only the count is added here.
	s := fmt.Sprintf("%d of %d sweep cells failed; first: %v", len(e.Cells), e.Total, e.Cells[0].Err)
	for _, c := range e.Cells[1:] {
		s += "\nalso failed: " + failureTag(c.Err)
	}
	return s
}

// Unwrap exposes every cell failure to errors.Is/errors.As.
func (e *SweepError) Unwrap() []error {
	errs := make([]error, len(e.Cells))
	for i, c := range e.Cells {
		errs[i] = c.Err
	}
	return errs
}

// orNil converts a typed-nil *SweepError into a genuinely nil error.
func (e *SweepError) orNil() error {
	if e == nil {
		return nil
	}
	return e
}

// cell returns the failure for a job index (nil when that cell passed).
func (e *SweepError) cell(i int) error {
	if e == nil {
		return nil
	}
	for _, c := range e.Cells {
		if c.Index == i {
			return c.Err
		}
	}
	return nil
}

// failureTag renders a cell failure as the compact failed(<reason>)
// marker used in table and CSV cells: the first line of the error,
// truncated. The kernel/config wrapping prefix is dropped when the error
// chain carries a structured simerr diagnostic — the row already names
// the cell, so the tag leads with the failure class instead.
func failureTag(err error) string {
	reason := err.Error()
	if i := strings.IndexByte(reason, '\n'); i >= 0 {
		reason = reason[:i]
	}
	if i := strings.Index(reason, "simerr: "); i > 0 {
		reason = reason[i:]
	}
	if len(reason) > 80 {
		reason = reason[:77] + "..."
	}
	return "failed(" + reason + ")"
}

// runForTest, when non-nil, replaces p.run for one sweep — the test seam
// that injects cell failures (including panics) without a real
// simulation. Nil in production.
var runForTest func(job runJob, p ExpParams) (*Result, error)

// runAll executes a figure's independent simulations across p.Parallel
// host goroutines, returning results slotted by job index. The job list
// fully determines each simulation (configuration, kernel, seed), so the
// result slice — and everything derived from it — is identical at any
// parallelism. Failures degrade gracefully: a failed (or panicked) cell
// leaves a nil Result in its slot and an entry in the returned
// SweepError, while every other cell runs to completion — one bad
// configuration no longer discards an hour-long sweep.
func (p ExpParams) runAll(jobs []runJob) ([]*Result, *SweepError) {
	ctx := p.ctx()
	results, errs := pool.MapCatch(len(jobs), p.Parallel, func(i int) (*Result, error) {
		if ck := p.Checkpoint; ck != nil {
			// A cached cell costs nothing to serve, even mid-cancellation:
			// a re-interrupted resume still fills every cell it can.
			if res, ok := ck.lookup(jobs[i]); ok {
				return res, nil
			}
		}
		if err := ctx.Err(); err != nil {
			// Canceled mid-sweep: fail remaining cells fast instead of
			// building and aborting a machine per cell.
			return nil, fmt.Errorf("%s/%s: %w", jobs[i].kernel, jobs[i].name, simerr.ErrCanceled)
		}
		var res *Result
		var err error
		if runForTest != nil {
			res, err = runForTest(jobs[i], p)
		} else if res, err = p.run(jobs[i].kernel, jobs[i].cfg); err != nil {
			err = fmt.Errorf("%s/%s: %w", jobs[i].kernel, jobs[i].name, err)
		}
		if err != nil {
			return nil, err
		}
		if ck := p.Checkpoint; ck != nil {
			if cerr := ck.record(jobs[i], res); cerr != nil {
				return nil, fmt.Errorf("%s/%s: %w", jobs[i].kernel, jobs[i].name, cerr)
			}
		}
		return res, nil
	})
	var sw *SweepError
	for i, err := range errs {
		if err == nil {
			continue
		}
		if sw == nil {
			sw = &SweepError{Total: len(jobs)}
		}
		results[i] = nil // partial Results from budget-ended cells don't enter tables
		sw.Cells = append(sw.Cells, CellFailure{Index: i, Kernel: jobs[i].kernel, Config: jobs[i].name, Err: err})
	}
	return results, sw
}

// MessageBreakdown is one stacked bar of Figures 2 and 8: a kernel's
// L2-output message counts under one configuration, with the total
// normalized to the same kernel's SWcc total.
type MessageBreakdown struct {
	Kernel   string
	Config   string
	Counts   [msg.NumKinds]uint64
	Total    uint64
	Relative float64 // Total / SWcc total for the kernel
	Failed   string  // failed(<reason>) when this cell's run failed; "" otherwise
}

func breakdownRows(p ExpParams, configs []struct {
	name string
	cfg  MachineConfig
}) ([]MessageBreakdown, error) {
	var jobs []runJob
	for _, k := range p.Kernels {
		for _, c := range configs {
			jobs = append(jobs, runJob{kernel: k, name: c.name, cfg: c.cfg})
		}
	}
	results, sw := p.runAll(jobs)
	var out []MessageBreakdown
	for ki, k := range p.Kernels {
		var swccTotal uint64
		for ci, c := range configs {
			idx := ki*len(configs) + ci
			row := MessageBreakdown{Kernel: k, Config: c.name}
			if res := results[idx]; res != nil {
				row.Counts = res.Stats.Messages
				row.Total = res.TotalMessages()
			} else {
				row.Failed = failureTag(sw.cell(idx))
			}
			if ci == 0 {
				swccTotal = row.Total
			}
			if swccTotal > 0 && row.Failed == "" {
				row.Relative = float64(row.Total) / float64(swccTotal)
			}
			out = append(out, row)
		}
	}
	return out, sw.orNil()
}

// Fig2 reproduces Figure 2: L2-to-L3 message counts for SWcc and
// optimistic (infinite-directory) HWcc, normalized to SWcc.
func Fig2(p ExpParams) ([]MessageBreakdown, error) {
	p = p.withDefaults()
	return breakdownRows(p, []struct {
		name string
		cfg  MachineConfig
	}{
		{"SWcc", p.swccCfg()},
		{"HWcc", p.hwccIdealCfg()},
	})
}

// Fig8 reproduces Figure 8: message counts for SWcc, Cohesion, optimistic
// HWcc, and realistic (sparse-directory) HWcc, normalized to SWcc.
func Fig8(p ExpParams) ([]MessageBreakdown, error) {
	p = p.withDefaults()
	return breakdownRows(p, []struct {
		name string
		cfg  MachineConfig
	}{
		{"SWcc", p.swccCfg()},
		{"Cohesion", p.cohesionRealCfg()},
		{"HWccIdeal", p.hwccIdealCfg()},
		{"HWccReal", p.hwccRealCfg()},
	})
}

// FlushEfficiency is one group of Figure 3: the fraction of software
// invalidations and writebacks that found their line valid in the L2, as
// the L2 grows.
type FlushEfficiency struct {
	Kernel              string
	L2KB                int
	UsefulInv, UsefulWB float64
	Failed              string // failed(<reason>) when this cell's run failed
}

// Fig3 reproduces Figure 3 by sweeping the L2 size under SWcc. The paper
// sweeps 8K..128K around its 64K default; with the harness's scaled
// memory system (8K default L2) the equivalent 16x sweep is 2K..32K.
func Fig3(p ExpParams) ([]FlushEfficiency, error) {
	p = p.withDefaults()
	l2kbs := []int{2, 4, 8, 16, 32}
	var jobs []runJob
	for _, k := range p.Kernels {
		for _, kb := range l2kbs {
			cfg := p.swccCfg()
			cfg.L2Size = kb << 10
			jobs = append(jobs, runJob{kernel: k, name: fmt.Sprintf("L2=%dK", kb), cfg: cfg})
		}
	}
	results, sw := p.runAll(jobs)
	var out []FlushEfficiency
	for ki, k := range p.Kernels {
		for kbi, kb := range l2kbs {
			idx := ki*len(l2kbs) + kbi
			row := FlushEfficiency{Kernel: k, L2KB: kb}
			if res := results[idx]; res != nil {
				row.UsefulInv = res.Stats.UsefulInvFraction()
				row.UsefulWB = res.Stats.UsefulWBFraction()
			} else {
				row.Failed = failureTag(sw.cell(idx))
			}
			out = append(out, row)
		}
	}
	return out, sw.orNil()
}

// DirSweepPoint is one point of Figures 9a/9b: run time with a
// fully-associative directory of the given per-bank capacity, normalized
// to the same kernel with an infinite directory.
type DirSweepPoint struct {
	Kernel         string
	EntriesPerBank int // 0 = infinite baseline
	Cycles         uint64
	Slowdown       float64
	Failed         string // failed(<reason>) when this cell's run failed
}

// Fig9Sweep reproduces Figure 9a (mode HWcc) or 9b (mode Cohesion).
func Fig9Sweep(p ExpParams, mode Mode) ([]DirSweepPoint, error) {
	p = p.withDefaults()
	if mode != HWcc && mode != Cohesion {
		return nil, fmt.Errorf("cohesion: Fig9 sweeps HWcc or Cohesion, not %v", mode)
	}
	stride := 1 + len(p.DirSizes) // infinite baseline + each directory size
	var jobs []runJob
	for _, k := range p.Kernels {
		base := p.hwccIdealCfg()
		if mode == Cohesion {
			base = p.cohesionIdealCfg()
		}
		jobs = append(jobs, runJob{kernel: k, name: "infinite", cfg: base})
		for _, entries := range p.DirSizes {
			cfg := base.WithDirectory(DirSparse, entries, 0) // fully associative
			jobs = append(jobs, runJob{kernel: k, name: fmt.Sprint(entries), cfg: cfg})
		}
	}
	results, sw := p.runAll(jobs)
	var out []DirSweepPoint
	for ki, k := range p.Kernels {
		ref := results[ki*stride]
		refRow := DirSweepPoint{Kernel: k, EntriesPerBank: 0, Slowdown: 1}
		if ref != nil {
			refRow.Cycles = ref.Cycles()
		} else {
			refRow.Failed = failureTag(sw.cell(ki * stride))
			refRow.Slowdown = 0
		}
		out = append(out, refRow)
		for di, entries := range p.DirSizes {
			idx := ki*stride + 1 + di
			row := DirSweepPoint{Kernel: k, EntriesPerBank: entries}
			if res := results[idx]; res != nil {
				row.Cycles = res.Cycles()
				if ref != nil {
					row.Slowdown = float64(res.Cycles()) / float64(ref.Cycles())
				}
			} else {
				row.Failed = failureTag(sw.cell(idx))
			}
			out = append(out, row)
		}
	}
	return out, sw.orNil()
}

// OccupancyRow is one bar group of Figure 9c: time-averaged and maximum
// directory entries allocated, split by address class, under an unbounded
// directory.
type OccupancyRow struct {
	Kernel, Config                string
	MeanCode, MeanHeap, MeanStack float64
	MeanTotal                     float64
	MaxTotal                      uint64
	Failed                        string // failed(<reason>) when this cell's run failed
}

// Fig9c reproduces Figure 9c for Cohesion and HWcc with unbounded
// directories.
func Fig9c(p ExpParams) ([]OccupancyRow, error) {
	p = p.withDefaults()
	configs := []struct {
		name string
		cfg  MachineConfig
	}{
		{"Cohesion", p.cohesionIdealCfg()},
		{"HWcc", p.hwccIdealCfg()},
	}
	var jobs []runJob
	for _, k := range p.Kernels {
		for _, c := range configs {
			jobs = append(jobs, runJob{kernel: k, name: c.name, cfg: c.cfg})
		}
	}
	results, sw := p.runAll(jobs)
	var out []OccupancyRow
	for ki, k := range p.Kernels {
		for ci, c := range configs {
			idx := ki*len(configs) + ci
			row := OccupancyRow{Kernel: k, Config: c.name}
			if res := results[idx]; res != nil {
				o := &res.Stats.Occupancy
				row.MeanCode = o.MeanClass(addr.ClassCode)
				row.MeanHeap = o.MeanClass(addr.ClassHeapGlobal)
				row.MeanStack = o.MeanClass(addr.ClassStack)
				row.MeanTotal = o.MeanTotal()
				row.MaxTotal = o.MaxTotal()
			} else {
				row.Failed = failureTag(sw.cell(idx))
			}
			out = append(out, row)
		}
	}
	return out, sw.orNil()
}

// RuntimeRow is one bar of Figure 10: run time under one configuration,
// normalized to Cohesion with the full-map sparse directory.
type RuntimeRow struct {
	Kernel, Config string
	Cycles         uint64
	Normalized     float64
	Failed         string // failed(<reason>) when this cell's run failed
}

// Fig10 reproduces Figure 10: relative run time for Cohesion (full-map),
// Cohesion (Dir4B), SWcc, optimistic HWcc, realistic HWcc (full-map
// sparse), and HWcc (Dir4B), normalized to the first.
func Fig10(p ExpParams) ([]RuntimeRow, error) {
	p = p.withDefaults()
	configs := []struct {
		name string
		cfg  MachineConfig
	}{
		{"Cohesion", p.cohesionRealCfg()},
		{"Cohesion(Dir4B)", p.cohesionDir4BCfg()},
		{"SWcc", p.swccCfg()},
		{"HWccOpt", p.hwccIdealCfg()},
		{"HWccReal", p.hwccRealCfg()},
		{"HWcc(Dir4B)", p.hwccDir4BCfg()},
	}
	var jobs []runJob
	for _, k := range p.Kernels {
		for _, c := range configs {
			jobs = append(jobs, runJob{kernel: k, name: c.name, cfg: c.cfg})
		}
	}
	results, sw := p.runAll(jobs)
	var out []RuntimeRow
	for ki, k := range p.Kernels {
		var base uint64
		if ref := results[ki*len(configs)]; ref != nil {
			base = ref.Cycles()
		}
		for ci, c := range configs {
			idx := ki*len(configs) + ci
			row := RuntimeRow{Kernel: k, Config: c.name}
			if res := results[idx]; res != nil {
				row.Cycles = res.Cycles()
				if base > 0 {
					row.Normalized = float64(res.Cycles()) / float64(base)
				}
			} else {
				row.Failed = failureTag(sw.cell(idx))
			}
			out = append(out, row)
		}
	}
	return out, sw.orNil()
}

// MsgLatencyRow is one row of the message-latency table: the
// issue-to-settle sim-time distribution of one L2-output message class for
// one kernel under one configuration, from the metrics registry.
type MsgLatencyRow struct {
	Kernel, Config, Class string
	Count                 uint64
	Mean                  float64
	P50, P90, P99, Max    uint64
	Failed                string // failed(<reason>) when this cell's run failed
}

// LatencyTable runs each kernel under SWcc, realistic HWcc, and Cohesion
// with the metrics registry attached and reports per-class L2 transaction
// latency (one row per non-empty message class). It does not participate
// in sweep checkpointing (p.Checkpoint is ignored): the histograms it
// reports are live metrics state, which checkpoints do not persist.
func LatencyTable(p ExpParams) ([]MsgLatencyRow, error) {
	p = p.withDefaults()
	configs := []struct {
		name string
		cfg  MachineConfig
	}{
		{"SWcc", p.swccCfg()},
		{"HWccReal", p.hwccRealCfg()},
		{"Cohesion", p.cohesionRealCfg()},
	}
	var jobs []runJob
	for _, k := range p.Kernels {
		for _, c := range configs {
			jobs = append(jobs, runJob{kernel: k, name: c.name, cfg: c.cfg})
		}
	}
	ctx := p.ctx()
	results, errs := pool.MapCatch(len(jobs), p.Parallel, func(i int) (*Result, error) {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("%s/%s: %w", jobs[i].kernel, jobs[i].name, simerr.ErrCanceled)
		}
		res, err := RunCtx(ctx, RunConfig{
			Machine: jobs[i].cfg,
			Kernel:  jobs[i].kernel,
			Scale:   p.Scale,
			Seed:    p.Seed,
			Workers: p.Workers,
			Verify:  p.Verify,
			Metrics: true,
			Limits:  p.Limits,
		})
		if err != nil {
			return nil, fmt.Errorf("%s/%s: %w", jobs[i].kernel, jobs[i].name, err)
		}
		return res, nil
	})
	var sw *SweepError
	var out []MsgLatencyRow
	for ji, job := range jobs {
		if errs[ji] != nil {
			if sw == nil {
				sw = &SweepError{Total: len(jobs)}
			}
			sw.Cells = append(sw.Cells, CellFailure{Index: ji, Kernel: job.kernel, Config: job.name, Err: errs[ji]})
			out = append(out, MsgLatencyRow{Kernel: job.kernel, Config: job.name, Failed: failureTag(errs[ji])})
			continue
		}
		m := results[ji].Stats.Metrics
		for _, k := range msg.Kinds() {
			h := &m.MsgLatency[k]
			if h.Count == 0 {
				continue
			}
			s := h.Summarize()
			out = append(out, MsgLatencyRow{
				Kernel: job.kernel,
				Config: job.name,
				Class:  k.String(),
				Count:  s.Count,
				Mean:   s.Mean,
				P50:    s.P50,
				P90:    s.P90,
				P99:    s.P99,
				Max:    s.Max,
			})
		}
	}
	return out, sw.orNil()
}

// AreaEstimates reproduces the §4.4 directory-area accounting for the
// paper's Table 3 machine.
func AreaEstimates() []directory.AreaEstimate {
	return directory.AreaTable(directory.PaperAreaInputs())
}

// Summary holds the paper's two headline aggregates (abstract/§4.6).
type Summary struct {
	// MessageReduction is the geometric-mean ratio of optimistic-HWcc to
	// Cohesion L2-output messages (paper: ~2x).
	MessageReduction float64
	// DirectoryReduction is the geometric-mean ratio of HWcc to Cohesion
	// time-averaged directory occupancy (paper: ~2.1x).
	DirectoryReduction float64
}

// HeadlineSummary computes the two headline ratios over all kernels.
func HeadlineSummary(p ExpParams) (*Summary, error) {
	p = p.withDefaults()
	fig8, err := Fig8(p)
	if err != nil {
		return nil, err
	}
	msgRatio, n := 1.0, 0
	byKernel := map[string]map[string]uint64{}
	for _, row := range fig8 {
		if byKernel[row.Kernel] == nil {
			byKernel[row.Kernel] = map[string]uint64{}
		}
		byKernel[row.Kernel][row.Config] = row.Total
	}
	for _, k := range p.Kernels {
		hw, coh := byKernel[k]["HWccIdeal"], byKernel[k]["Cohesion"]
		if hw > 0 && coh > 0 {
			msgRatio *= float64(hw) / float64(coh)
			n++
		}
	}
	s := &Summary{}
	if n > 0 {
		s.MessageReduction = pow(msgRatio, 1/float64(n))
	}
	occ, err := Fig9c(p)
	if err != nil {
		return nil, err
	}
	// Aggregate utilization ratio (sum over kernels); per-kernel ratios can
	// be unbounded for kernels whose Cohesion port leaves the directory
	// empty, so the aggregate is the robust analogue of the paper's 2.1x.
	var hwSum, cohSum float64
	for _, row := range occ {
		switch row.Config {
		case "HWcc":
			hwSum += row.MeanTotal
		case "Cohesion":
			cohSum += row.MeanTotal
		}
	}
	if cohSum > 0 {
		s.DirectoryReduction = hwSum / cohSum
	}
	return s, nil
}

func pow(x, y float64) float64 {
	if x <= 0 {
		return 0
	}
	return math.Pow(x, y)
}

// BreakdownTable renders Figure 2/8 rows as an aligned text table.
func BreakdownTable(rows []MessageBreakdown) *stats.Table {
	t := &stats.Table{Header: []string{"kernel", "config", "total", "rel"}}
	for _, k := range msg.Kinds() {
		t.Header = append(t.Header, k.String())
	}
	for _, r := range rows {
		if r.Failed != "" {
			cells := []string{r.Kernel, r.Config, r.Failed, "-"}
			for range msg.Kinds() {
				cells = append(cells, "-")
			}
			t.Add(cells...)
			continue
		}
		cells := []string{r.Kernel, r.Config, fmt.Sprint(r.Total), fmt.Sprintf("%.2f", r.Relative)}
		for _, k := range msg.Kinds() {
			cells = append(cells, fmt.Sprint(r.Counts[k]))
		}
		t.Add(cells...)
	}
	return t
}

var _ = config.Table3 // keep the import pinned for the type aliases above
