package cohesion

import (
	"fmt"

	"cohesion/internal/kernels"
	"cohesion/internal/machine"
	"cohesion/internal/rt"
	"cohesion/internal/stats"
)

// CoScheduleResult reports a two-application co-scheduled run: each
// kernel's own completion time plus the shared machine's statistics.
type CoScheduleResult struct {
	KernelA, KernelB string
	CyclesA, CyclesB uint64
	Stats            stats.Run
}

// CoSchedule runs two kernels concurrently on disjoint halves of one
// machine — the paper's §2.3 scenario of a runtime managing the coherence
// needs of multiple applications on shared hardware. Each application gets
// its own runtime partition (heaps, barrier, task queue) and half the
// clusters; they share the L3, the directory, the region tables, and the
// DRAM channels, so coherence interference between them is real.
func CoSchedule(cfg MachineConfig, kernelA, kernelB string, scale int, seed int64, verify bool) (*CoScheduleResult, error) {
	if cfg.Clusters < 2 {
		return nil, fmt.Errorf("cohesion: co-scheduling needs at least two clusters")
	}
	m, err := machine.New(cfg)
	if err != nil {
		return nil, err
	}
	half := cfg.Clusters / 2
	workersEach := 2 * half

	type app struct {
		name         string
		slot         int
		firstCluster int
		finish       uint64
	}
	apps := []*app{
		{name: kernelA, slot: 0, firstCluster: 0},
		{name: kernelB, slot: 1, firstCluster: half},
	}
	verifiers := make([]func() error, len(apps))
	for i, a := range apps {
		a := a
		r, err := rt.NewPartition(m, workersEach, a.slot, 2)
		if err != nil {
			return nil, err
		}
		inst, err := kernels.Build(a.name, r, kernels.Params{Scale: scale, Seed: seed + int64(a.slot)})
		if err != nil {
			return nil, err
		}
		rr := r
		verifiers[i] = func() error { return inst.Verify(rr) }
		for w := 0; w < workersEach; w++ {
			cluster := a.firstCluster + w%half
			core := cluster*cfg.CoresPerCluster + w/half
			r.Spawn(core, inst.CodeBytes, func(x *rt.Ctx) {
				inst.Worker(x)
				if c := uint64(m.Q.Now()); c > a.finish {
					a.finish = c
				}
			})
		}
	}
	if err := m.Simulate(0); err != nil {
		return nil, err
	}
	if err := m.CheckInvariants(); err != nil {
		return nil, err
	}
	m.DrainToMemory()
	if verify {
		for i, v := range verifiers {
			if err := v(); err != nil {
				return nil, fmt.Errorf("cohesion: co-scheduled %s: %w", apps[i].name, err)
			}
		}
	}
	return &CoScheduleResult{
		KernelA: kernelA, KernelB: kernelB,
		CyclesA: apps[0].finish, CyclesB: apps[1].finish,
		Stats: *m.Run,
	}, nil
}
