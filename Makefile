# Cohesion reproduction — convenience targets. Everything is plain `go`
# underneath; no target does anything you could not type yourself.

GO ?= go

.PHONY: all build test race serve serve-test bench bench-short bench-check profile microbench experiments examples fmt vet cover clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Run the job service locally (state under ./serve-state; Ctrl-C drains).
serve:
	$(GO) run ./cmd/cohesion-serve -addr 127.0.0.1:8080 -state serve-state

# The serving-layer test battery: unit, e2e, load, and crash/restart,
# all under the race detector (what CI's serve-robustness job runs).
serve-test:
	$(GO) test -race -run 'TestServe|TestRunner|TestClamp' -timeout 15m \
		. ./internal/serve/ ./internal/pool/ ./internal/runctl/

# Performance-tracking harness: event-engine ns+allocs/event, per-kernel
# events/sec, the per-subsystem allocation breakdown, and the
# serial-vs-parallel fan-out speedup, written to BENCH_results.json for
# commit-to-commit comparison.
bench:
	$(GO) run ./cmd/cohesion-bench

# The CI smoke variant: two kernels, small sweep.
bench-short:
	$(GO) run ./cmd/cohesion-bench -short

# The regression gate: short suite compared against the committed
# baseline; a >10% ns/event or allocs/event regression exits 2.
bench-check:
	$(GO) run ./cmd/cohesion-bench -short -max-ns-regress 10 \
		-out BENCH_current.json -baseline BENCH_baseline.json

# Hot-path profiling: ~10s of simulated event loop (all kernels x all
# modes, bench-parity config) under the pprof CPU and allocation
# profilers. Prints the top flat costs and leaves cpu.pprof/alloc.pprof
# for `go tool pprof`.
profile:
	$(GO) run ./cmd/cohesion-profile -seconds 10 -top 15 \
		-cpu cpu.pprof -alloc alloc.pprof

# The go-test micro-benchmarks (per-package, -benchmem).
microbench:
	$(GO) test -bench=. -benchmem ./...

cover:
	$(GO) test -cover ./...

fmt:
	gofmt -w .

vet:
	$(GO) vet ./...

# Regenerate every table and figure of the paper's evaluation.
experiments:
	$(GO) run ./cmd/cohesion-experiments -fig all

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/heterogeneous
	$(GO) run ./examples/dirsizing
	$(GO) run ./examples/hybridtuning
	$(GO) run ./examples/adaptive
	$(GO) run ./examples/coschedule
	$(GO) run ./examples/taskmigration

clean:
	$(GO) clean ./...
