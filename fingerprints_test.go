package cohesion

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"cohesion/internal/pool"
)

var update = flag.Bool("update", false, "rewrite testdata golden files")

const fingerprintsFile = "testdata/fingerprints.json"

// fingerprintRuns lists the golden matrix: every kernel under every memory
// model at a fixed small scale. The parameters here are frozen; changing
// them invalidates the golden file.
func fingerprintRuns() []struct {
	Kernel string
	Mode   Mode
} {
	var out []struct {
		Kernel string
		Mode   Mode
	}
	for _, k := range KernelNames() {
		for _, m := range []Mode{SWcc, HWcc, Cohesion} {
			out = append(out, struct {
				Kernel string
				Mode   Mode
			}{k, m})
		}
	}
	return out
}

// TestGoldenFingerprints regenerates the kernel x mode memory-fingerprint
// matrix and diffs it against testdata/fingerprints.json. The fingerprint
// hashes every word of simulated memory after the run drains, so any
// change to protocol behavior, timing that alters data movement, or the
// kernels themselves shows up here — while pure observability (tracing,
// metrics, coverage) must not. Run with -update to bless a new golden
// file after an intentional change.
func TestGoldenFingerprints(t *testing.T) {
	runs := fingerprintRuns()
	type outcome struct {
		key string
		fp  uint64
	}
	results, err := pool.MapErr(len(runs), 0, func(i int) (outcome, error) {
		r := runs[i]
		res, err := Run(RunConfig{
			Machine: ScaledConfig(2).WithMode(r.Mode),
			Kernel:  r.Kernel,
			Scale:   1,
			Seed:    42,
			Verify:  true,
		})
		if err != nil {
			return outcome{}, fmt.Errorf("%s/%v: %w", r.Kernel, r.Mode, err)
		}
		return outcome{key: fmt.Sprintf("%s/%v", r.Kernel, r.Mode), fp: res.MemFingerprint}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]string{}
	for _, o := range results {
		got[o.key] = fmt.Sprintf("%#016x", o.fp)
	}

	if *update {
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(fingerprintsFile), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(fingerprintsFile, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d fingerprints to %s", len(got), fingerprintsFile)
		return
	}

	data, err := os.ReadFile(fingerprintsFile)
	if err != nil {
		t.Fatalf("%v (run with -update to create it)", err)
	}
	want := map[string]string{}
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatalf("corrupt golden file: %v", err)
	}

	var diffs []string
	keys := make([]string, 0, len(want))
	for k := range want {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		switch g, ok := got[k]; {
		case !ok:
			diffs = append(diffs, fmt.Sprintf("  %-16s missing from this run", k))
		case g != want[k]:
			diffs = append(diffs, fmt.Sprintf("  %-16s golden %s, got %s", k, want[k], g))
		}
	}
	for k := range got {
		if _, ok := want[k]; !ok {
			diffs = append(diffs, fmt.Sprintf("  %-16s not in golden file", k))
		}
	}
	sort.Strings(diffs)
	if len(diffs) > 0 {
		t.Fatalf("memory fingerprints diverged from %s (%d of %d):\n%s\n"+
			"if the behavior change is intentional, bless it with: go test -run TestGoldenFingerprints -update .",
			fingerprintsFile, len(diffs), len(want), joinLines(diffs))
	}
}

// TestObservabilityDoesNotPerturbSimulation runs the same simulation bare
// and with every observability consumer attached (trace sink, edge
// coverage, metrics, trace ring). The observers only read sim state, so
// cycles and the memory fingerprint must be bit-identical.
func TestObservabilityDoesNotPerturbSimulation(t *testing.T) {
	base := RunConfig{
		Machine: ScaledConfig(2).WithMode(Cohesion),
		Kernel:  "heat",
		Scale:   1,
		Seed:    42,
		Verify:  true,
	}
	plain, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	instr := base
	instr.TraceSink = NewTraceSink(0)
	instr.Coverage = NewCoverage()
	instr.Metrics = true
	instr.TraceCapacity = 128
	traced, err := Run(instr)
	if err != nil {
		t.Fatal(err)
	}
	if plain.MemFingerprint != traced.MemFingerprint {
		t.Fatalf("instrumentation changed the fingerprint: %#x vs %#x",
			plain.MemFingerprint, traced.MemFingerprint)
	}
	if plain.Cycles() != traced.Cycles() {
		t.Fatalf("instrumentation changed the cycle count: %d vs %d",
			plain.Cycles(), traced.Cycles())
	}
	if instr.TraceSink.Total() == 0 {
		t.Fatal("instrumented run recorded no trace events")
	}
	if instr.Coverage.Covered() == 0 {
		t.Fatal("instrumented run marked no edges")
	}
	if traced.Stats.Metrics == nil || traced.Stats.Metrics.MsgLatency[MsgReadReq].Count == 0 {
		t.Fatal("instrumented run collected no latency observations")
	}
}

func joinLines(lines []string) string {
	out := ""
	for i, l := range lines {
		if i > 0 {
			out += "\n"
		}
		out += l
	}
	return out
}
